#!/usr/bin/env bash
# fabric-gate: kill-and-resume byte-reproducibility gate for the sweep
# fabric (internal/fabric, cmd/gfc-sweepd, gfc-serve worker mode).
#
# The gate runs a sharded classify sweep across two local gfc-serve
# workers whose -fabric-cell-delay stretches the grid long enough to
# kill processes mid-sweep, then:
#
#   1. computes the single-process oracle result set (no ledger),
#   2. starts the coordinator against both workers,
#   3. SIGKILLs worker B once the ledger holds a few chained records,
#   4. SIGKILLs the coordinator itself (possibly mid-append: a torn
#      ledger tail is part of what resume must absorb),
#   5. restarts worker B and resumes from the ledger — worker A is left
#      running so the resume also has to ride over its stale, expired
#      leases from the dead coordinator,
#   6. verifies the resumed ledger's hash chain (complete, duplicate
#      free) and compares its derived result set byte-for-byte against
#      the oracle.
#
# Any damaged chain, duplicate cell, missing cell, or byte difference
# fails the gate. Tunables (env): FABRIC_MAXLEN, FABRIC_MAXD,
# FABRIC_CELL_DELAY, FABRIC_KILL_BYTES, FABRIC_PORT_A, FABRIC_PORT_B.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
MAXLEN=${FABRIC_MAXLEN:-3}
MAXD=${FABRIC_MAXD:-8}
DELAY=${FABRIC_CELL_DELAY:-150ms}
KILL_BYTES=${FABRIC_KILL_BYTES:-2048}
PORT_A=${FABRIC_PORT_A:-8097}
PORT_B=${FABRIC_PORT_B:-8098}
GRID=(-op classify -minlen 1 -maxlen "$MAXLEN" -mind 1 -maxd "$MAXD" -method exact)

bindir=$(mktemp -d)
work=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
	rm -rf "$bindir" "$work"
}
trap cleanup EXIT

wait_ready() { # host port
	for _ in $(seq 1 100); do
		if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then exec 3>&-; return 0; fi
		sleep 0.1
	done
	echo "fabric-gate: worker on $1:$2 never came up" >&2
	return 1
}

echo "== build gfc-serve + gfc-sweepd"
$GO build -o "$bindir/gfc-serve" ./cmd/gfc-serve
$GO build -o "$bindir/gfc-sweepd" ./cmd/gfc-sweepd

echo "== oracle result set (single process, no ledger, no delay)"
"$bindir/gfc-sweepd" -oracle "${GRID[@]}" -workers 2 -out "$work/oracle.ndjson"

echo "== start workers A:$PORT_A B:$PORT_B (cell delay $DELAY)"
"$bindir/gfc-serve" -addr "127.0.0.1:$PORT_A" -fabric-cell-delay "$DELAY" \
	>"$work/worker-a.log" 2>&1 & pids+=($!) && disown
"$bindir/gfc-serve" -addr "127.0.0.1:$PORT_B" -fabric-cell-delay "$DELAY" \
	>"$work/worker-b.log" 2>&1 & pids+=($!) && disown
worker_b=$!
wait_ready 127.0.0.1 "$PORT_A"
wait_ready 127.0.0.1 "$PORT_B"

echo "== start coordinator (fresh ledger)"
"$bindir/gfc-sweepd" -ledger "$work/run.gfcl" "${GRID[@]}" \
	-remote "http://127.0.0.1:$PORT_A" -remote "http://127.0.0.1:$PORT_B" \
	-lease-ttl 2s -poll 50ms -out "$work/first.ndjson" \
	>"$work/coordinator-1.log" 2>&1 & pids+=($!) && disown
coord=$!

# Wait until the ledger holds a handful of chained records, proving the
# kill lands mid-grid rather than before any work happened.
for _ in $(seq 1 300); do
	size=$( { wc -c <"$work/run.gfcl"; } 2>/dev/null || echo 0)
	[ "$size" -ge "$KILL_BYTES" ] && break
	if ! kill -0 "$coord" 2>/dev/null; then
		echo "fabric-gate: coordinator exited before the kill point; raise FABRIC_CELL_DELAY" >&2
		cat "$work/coordinator-1.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [ "$size" -lt "$KILL_BYTES" ]; then
	echo "fabric-gate: ledger never reached $KILL_BYTES bytes (got $size)" >&2
	exit 1
fi

echo "== SIGKILL worker B, then the coordinator (ledger at $size bytes)"
kill -9 "$worker_b"
sleep 0.3
if ! kill -0 "$coord" 2>/dev/null; then
	echo "fabric-gate: coordinator died with worker B; it must survive worker loss" >&2
	cat "$work/coordinator-1.log" >&2
	exit 1
fi
kill -9 "$coord"

if [ -s "$work/first.ndjson" ]; then
	echo "fabric-gate: first run wrote a result set despite being killed" >&2
	exit 1
fi

echo "== restart worker B and resume from the ledger (worker A kept running)"
"$bindir/gfc-serve" -addr "127.0.0.1:$PORT_B" -fabric-cell-delay "$DELAY" \
	>"$work/worker-b2.log" 2>&1 & pids+=($!) && disown
wait_ready 127.0.0.1 "$PORT_B"

"$bindir/gfc-sweepd" -resume "$work/run.gfcl" "${GRID[@]}" \
	-remote "http://127.0.0.1:$PORT_A" -remote "http://127.0.0.1:$PORT_B" \
	-lease-ttl 2s -poll 50ms -out "$work/resumed.ndjson" \
	2>"$work/coordinator-2.log"
cat "$work/coordinator-2.log"

inherited=$(grep -o '[0-9][0-9]* valid cells inherited' "$work/coordinator-2.log" | head -1 | cut -d' ' -f1)
if [ -z "${inherited:-}" ] || [ "$inherited" -lt 1 ]; then
	echo "fabric-gate: resume inherited no cells — the kill did not land mid-grid" >&2
	exit 1
fi
echo "== resume inherited $inherited cells from the interrupted run"

echo "== verify the resumed ledger's hash chain"
"$bindir/gfc-sweepd" -verify "$work/run.gfcl"

echo "== compare resumed result set against the oracle"
if ! cmp "$work/resumed.ndjson" "$work/oracle.ndjson"; then
	echo "fabric-gate: resumed result set differs from the single-process oracle" >&2
	exit 1
fi

cells=$(wc -l <"$work/oracle.ndjson")
echo "fabric-gate OK: $cells cells, resume inherited $inherited, result set byte-identical to the oracle"
