// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md, "Experiment index", and EXPERIMENTS.md for the
// paper-vs-measured record). Each BenchmarkEXX_* corresponds to one
// experiment ID; the Ablation benchmarks measure the design choices called
// out in DESIGN.md.
package gfcube

import (
	"fmt"
	"math/big"
	"testing"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/hamilton"
	"gfcube/internal/isometry"
	"gfcube/internal/lucas"
	"gfcube/internal/network"
)

// E1 - Figure 1: construction and structural summary of Q_4(101).
func BenchmarkE01_Fig1_Q4_101(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := core.New(4, bitstr.MustParse("101"))
		st := c.Graph().Stats()
		if c.N() != 12 || !st.Connected {
			b.Fatal("Fig. 1 structure wrong")
		}
	}
}

// E2 - Table 1: classify every factor of length <= 5 for d = 1..9, exactly.
func BenchmarkE02_Table1_Classification(b *testing.B) {
	rows := core.Table1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, row := range rows {
			f := row.Word()
			for d := 1; d <= 9; d++ {
				res := core.New(d, f).IsIsometric()
				if (row.VerdictFor(d) == core.Isometric) != res.Isometric {
					b.Fatalf("Table 1 mismatch at %s d=%d", row.Factor, d)
				}
			}
		}
	}
}

// E3 - Eqs (1)-(3): vertex/edge/square sequences of Q_d(111) to d = 40,
// recurrence vs transfer-matrix DP.
func BenchmarkE03_Counting_Q111(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := core.RecurrenceQ111(40)
		dp := core.CountSeq(40, bitstr.MustParse("111"))
		for d := 0; d <= 40; d++ {
			if rec[d].V.Cmp(dp[d].V) != 0 || rec[d].E.Cmp(dp[d].E) != 0 || rec[d].S.Cmp(dp[d].S) != 0 {
				b.Fatal("recurrence mismatch")
			}
		}
	}
}

// E4 - Eqs (4)-(6) and Propositions 6.2/6.3: Q_d(110) counts to d = 40.
func BenchmarkE04_Counting_Q110(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := core.RecurrenceQ110(40)
		for d := 0; d <= 40; d++ {
			cf := core.ClosedFormsQ110(d)
			if cf.V.Cmp(rec[d].V) != 0 || cf.E.Cmp(rec[d].E) != 0 || cf.S.Cmp(rec[d].S) != 0 {
				b.Fatal("closed form mismatch")
			}
		}
	}
}

// E5 - Figure 2: Γ_{d+1} vs Q_d(110) comparison across d = 1..10.
func BenchmarkE05_Fig2_Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for d := 1; d <= 10; d++ {
			gamma := core.Fibonacci(d + 1)
			h := core.New(d, bitstr.MustParse("110"))
			if gamma.N() != h.N()+1 || gamma.M() != h.M()+1 {
				b.Fatal("Fig. 2 identities broken")
			}
			if gamma.Graph().CountSquares() != h.Graph().CountSquares() {
				b.Fatal("square identity broken")
			}
		}
	}
}

// E6 - Proposition 6.1: max degree and diameter equal d for embeddable f.
func BenchmarkE06_DegreeDiameter(b *testing.B) {
	factors := []string{"11", "111", "110", "1010", "11010"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, fs := range factors {
			c := core.New(9, bitstr.MustParse(fs))
			st := c.Graph().Stats()
			if c.Graph().MaxDegree() != 9 || st.Diameter != 9 {
				b.Fatalf("Prop 6.1 fails for %s", fs)
			}
		}
	}
}

// E7 - Proposition 6.4: median closure of |f| = 2 vs |f| >= 3.
func BenchmarkE07_MedianClosure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := core.Fibonacci(6).IsMedianClosed(); !ok {
			b.Fatal("Γ_6 must be median closed")
		}
		if ok, _ := core.New(6, bitstr.MustParse("110")).IsMedianClosed(); ok {
			b.Fatal("Q_6(110) must not be median closed")
		}
	}
}

// E8 - Section 8: Winkler analysis showing Q_d(101) is in no hypercube.
func BenchmarkE08_PartialCube_Q101(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := isometry.Analyze(core.New(6, bitstr.MustParse("101")).Graph())
		if a.IsPartialCube() {
			b.Fatal("Q_6(101) must not be a partial cube")
		}
	}
}

// E9 - Section 7: f-dimension of the standard guests under f = 11.
func BenchmarkE09_FDimension(b *testing.B) {
	guests := []*graph.Graph{graph.Path(4), graph.Cycle(4), graph.Star(3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, g := range guests {
			res := isometry.FDim(g, bitstr.Ones(2), 5)
			if !res.Found {
				b.Fatal("f-dimension not found")
			}
		}
	}
}

// E10 - Sections 3-5 series: verify an embeddable and a non-embeddable
// family member at scale, via witness pairs and exact checks.
func BenchmarkE10_SeriesVerification(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Theorem 4.3 member, embeddable for all d.
		if res := core.New(10, bitstr.TwoOnesBlocks(2)).IsIsometric(); !res.Isometric {
			b.Fatal("Thm 4.3 member must embed")
		}
		// Proposition 4.2 member with proof witness.
		f := bitstr.AlternatingMid(1, 1)
		c := core.New(7, f)
		bw, cw := core.WitnessProp42(1, 1, 7)
		if !c.IsCriticalPair(bw, cw) {
			b.Fatal("Prop 4.2 witness must be critical")
		}
	}
}

// E11 - Conjecture 8.1: doubling good factors stays good (tested range).
func BenchmarkE11_Conjecture81(b *testing.B) {
	good := []string{"11", "10", "110"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, fs := range good {
			f := bitstr.MustParse(fs)
			ff := f.Concat(f)
			if res := core.New(9, ff).IsIsometric(); !res.Isometric {
				b.Fatalf("Conjecture 8.1 fails for %s", fs)
			}
		}
	}
}

// E12 - interconnection-network evaluation on Γ_d (ICPP'93 context).

func BenchmarkE12_NetworkMetrics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := network.NewFibonacci(10)
		m := n.Metrics()
		if int(m.Diameter) != 10 {
			b.Fatal("Γ_10 diameter wrong")
		}
	}
}

func BenchmarkE12_RoutingUniform(b *testing.B) {
	n := network.NewFibonacci(12)
	r := network.NewGreedyRouter(n)
	pairs := n.UniformPairs(1024, 42)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := n.EvaluateRouting(r, pairs)
		if st.SuccessRate() != 1 {
			b.Fatal("greedy must succeed on Γ_12")
		}
	}
}

func BenchmarkE12_SimulatePermutation(b *testing.B) {
	n := network.NewFibonacci(10)
	r := network.NewOracleRouter(n)
	pairs := n.PermutationPairs(7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := n.Simulate(network.MakePackets(pairs), r, network.SimConfig{})
		if res.Delivered != len(pairs) {
			b.Fatal("permutation traffic must deliver")
		}
	}
}

func BenchmarkE12_Broadcast(b *testing.B) {
	n := network.NewFibonacci(12)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := n.Broadcast(0)
		if res.Reached != n.Size() {
			b.Fatal("broadcast must reach all")
		}
	}
}

func BenchmarkE12_FaultTolerance(b *testing.B) {
	n := network.NewFibonacci(9)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := n.RandomFaults(5, 10, 3)
		if st.MeanRoutable <= 0 {
			b.Fatal("fault stats degenerate")
		}
	}
}

// Hamiltonian search on the ICPP'93 family (reference [15]).
func BenchmarkHamiltonianPathFibonacci(b *testing.B) {
	g := core.Fibonacci(10).Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, res := hamilton.Path(g, 0); res != hamilton.Found {
			b.Fatal("Γ_10 should have a Hamiltonian path")
		}
	}
}

// Ablation benches: the design choices called out in DESIGN.md.

// DFA-pruned enumeration vs filtering all 2^d words.
func BenchmarkAblation_EnumerationDFA(b *testing.B) {
	a := automaton.New(bitstr.Ones(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		a.Enumerate(22, func(bitstr.Word) bool { count++; return true })
		if count != 46368 { // F_24
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkAblation_EnumerationFilter(b *testing.B) {
	f := bitstr.Ones(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		bitstr.ForEach(22, func(w bitstr.Word) bool {
			if !w.HasFactor(f) {
				count++
			}
			return true
		})
		if count != 46368 {
			b.Fatal("wrong count")
		}
	}
}

// Critical-word screening vs full BFS isometry check on a non-isometric
// instance (the screen finds a 2-critical pair quickly).
func BenchmarkAblation_CriticalScreen(b *testing.B) {
	c := core.New(11, bitstr.MustParse("101"))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.HasCriticalPair(3); !ok {
			b.Fatal("screen must find a pair")
		}
	}
}

func BenchmarkAblation_ExactIsometry(b *testing.B) {
	c := core.New(11, bitstr.MustParse("101"))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := c.IsIsometric(); res.Isometric {
			b.Fatal("Q_11(101) must not be isometric")
		}
	}
}

// Parallel vs serial exact isometry check on an isometric instance (the
// worst case: every pair is verified).
func BenchmarkAblation_IsometryParallel(b *testing.B) {
	c := core.Fibonacci(14)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := c.IsIsometric(); !res.Isometric {
			b.Fatal("Γ_14 must be isometric")
		}
	}
}

func BenchmarkAblation_IsometrySerial(b *testing.B) {
	c := core.Fibonacci(14)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := c.IsIsometricSerial(); !res.Isometric {
			b.Fatal("Γ_14 must be isometric")
		}
	}
}

// Transfer-matrix counting vs explicit construction for |E(Q_d(f))|.
func BenchmarkAblation_CountDP(b *testing.B) {
	f := bitstr.MustParse("110")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if core.Count(18, f).E.Sign() <= 0 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkAblation_CountExplicit(b *testing.B) {
	f := bitstr.MustParse("110")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := core.New(18, f)
		if c.M() <= 0 {
			b.Fatal("bad count")
		}
	}
}

// E13 - extension: length-6 census via the critical-word screen.
func BenchmarkE13_SurveyLength6(b *testing.B) {
	classes := bitstr.CanonicalOfLen(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		good := 0
		for _, f := range classes {
			isGood := true
			for d := 7; d <= 10; d++ {
				if _, found := core.New(d, f).HasCriticalPair(3); found {
					isGood = false
					break
				}
			}
			if isGood {
				good++
			}
		}
		if good < 6 {
			b.Fatalf("screen found only %d good classes", good)
		}
	}
}

// E14 - extension: subcube capacity of Γ_7.
func BenchmarkE14_SubcubeCapacity(b *testing.B) {
	host := core.Fibonacci(7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if isometry.LargestHypercube(host, 5) != 4 {
			b.Fatal("Γ_7 should host exactly Q_4")
		}
	}
}

// Lucas cube construction and isometry (the cyclic sibling family).
func BenchmarkLucasCube(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := lucas.New(12)
		if int64(c.N()) != 322 { // L_12
			b.Fatal("wrong Lucas order")
		}
	}
}

// Misrouting recovery on the non-isometric Q_8(101).
func BenchmarkDerouteRecovery(b *testing.B) {
	n := network.New(core.New(8, bitstr.MustParse("101")))
	pairs := n.UniformPairs(256, 9)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := n.EvaluateDeroute(pairs)
		if st.SuccessRate() < 0.9 {
			b.Fatal("deroute success collapsed")
		}
	}
}

// Exact Wiener index of Γ_100 (isometric, so Hamming = graph distance).
func BenchmarkWienerGamma100(b *testing.B) {
	f := bitstr.Ones(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if core.WienerHamming(100, f).Sign() <= 0 {
			b.Fatal("bad Wiener value")
		}
	}
}

// The bit-parallel multi-source distance engine vs one serial BFS per
// source, on the full eccentricity/Wiener aggregation of Γ_16 (n = 2584).
// The engine path is what Stats, DistanceHistogram, IsIsometric and the
// Θ analysis all run on.
func BenchmarkMSBFS(b *testing.B) {
	g := core.Fibonacci(16).Graph()
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := g.Stats()
			if st.Diameter != 16 {
				b.Fatal("Γ_16 diameter wrong")
			}
		}
	})
	b.Run("serialBFS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := graph.NewTraverser(g)
			dist := make([]int32, g.N())
			var sum uint64
			diam := int32(0)
			for src := 0; src < g.N(); src++ {
				t.BFS(src, dist)
				for v, d := range dist {
					if v > src {
						sum += uint64(d)
					}
					if d > diam {
						diam = d
					}
				}
			}
			// Consume both aggregates so neither half of the serial
			// baseline can be dead-code eliminated.
			if diam != 16 || sum == 0 {
				b.Fatal("Γ_16 stats wrong")
			}
		}
	})
}

// Streaming Θ-relation analysis (Winkler partial-cube test) on Γ_12: the
// Section 7-8 machinery that formerly materialized an n×n distance matrix.
func BenchmarkThetaAnalyze(b *testing.B) {
	g := core.Fibonacci(12).Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := isometry.Analyze(g)
		if a.Idim() != 12 {
			b.Fatal("idim(Γ_12) wrong")
		}
	}
}

// Zeckendorf addressing: rank+unrank round trip at d = 60.
func BenchmarkRankUnrankD60(b *testing.B) {
	r := automaton.NewRanker(bitstr.Ones(2), 60)
	idx := new(big.Int).Rsh(r.Total(), 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := r.Unrank(idx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Rank(w); err != nil {
			b.Fatal(err)
		}
	}
}

// Cube construction scaling, the workhorse of every experiment.
func BenchmarkConstructCube(b *testing.B) {
	for _, d := range []int{8, 12, 16, 20} {
		b.Run(fmt.Sprintf("Fibonacci_d%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := core.Fibonacci(d)
				if c.N() == 0 {
					b.Fatal("empty cube")
				}
			}
		})
	}
}

// Column construction: building the whole Fibonacci column Q_1(11) ..
// Q_20(11) — the access pattern of every grid sweep — incrementally
// through core.ColumnBuilder versus from scratch per cell. The gated
// speedup target is >= 1.5x (see ISSUE 9); the incremental path replaces
// each cell's enumeration + ranked edge pass with an O(|V|+|E|) filter
// over the previous cube.
func BenchmarkColumnBuild(b *testing.B) {
	const maxD = 20
	f := bitstr.Ones(2)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col := core.NewColumnBuilder()
			for d := 1; d <= maxD; d++ {
				if col.Advance(d, f).N() == 0 {
					b.Fatal("empty cube")
				}
			}
		}
	})
	b.Run("fromscratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for d := 1; d <= maxD; d++ {
				if core.New(d, f).N() == 0 {
					b.Fatal("empty cube")
				}
			}
		}
	})
}
