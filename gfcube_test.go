package gfcube

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	// The README quickstart, as a test: build Q_4(101) (Fig. 1), inspect it,
	// check isometry, count a large instance.
	c := New(4, MustWord("101"))
	if c.N() != 12 {
		t.Fatalf("|V(Q_4(101))| = %d", c.N())
	}
	if res := c.IsIsometric(); res.Isometric {
		_ = res
	}
	big := Count(60, MustWord("101"))
	if big.V.Sign() <= 0 || big.E.Sign() <= 0 {
		t.Error("large counts should be positive")
	}
}

func TestFacadeFibonacci(t *testing.T) {
	c := FibonacciCube(10)
	if uint64(c.N()) != FibonacciNumber(12) {
		t.Errorf("|V(Γ_10)| = %d, want F_12 = %d", c.N(), FibonacciNumber(12))
	}
}

func TestFacadeClassify(t *testing.T) {
	cl := Classify(MustWord("11"), 50)
	if cl.Verdict != Isometric {
		t.Errorf("Fibonacci factor should be isometric: %+v", cl)
	}
	cl = Classify(MustWord("101"), 50)
	if cl.Verdict != NotIsometric {
		t.Errorf("101 should be non-isometric at d=50: %+v", cl)
	}
}

func TestFacadeTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 22 {
		t.Errorf("Table 1 has %d rows, want 22", len(rows))
	}
}

func TestFacadeIsIsometric(t *testing.T) {
	if res := IsIsometric(6, MustWord("1100")); !res.Isometric {
		t.Error("Q_6(1100) is isometric (computer check)")
	}
	if res := IsIsometric(7, MustWord("1100")); res.Isometric {
		t.Error("Q_7(1100) is not isometric")
	}
}

func TestFacadeDimensions(t *testing.T) {
	p4 := PathGraph(4)
	if got := Idim(p4); got != 3 {
		t.Errorf("idim(P_4) = %d", got)
	}
	res := FDim(p4, Ones(2), 5)
	if !res.Found || res.Dim != 3 {
		t.Errorf("dim_11(P_4) = %+v", res)
	}
	if a := AnalyzePartialCube(CycleGraph(5)); a.IsPartialCube() {
		t.Error("C_5 is not a partial cube")
	}
	if g := GridGraph(2, 3); Idim(g) != 3 {
		t.Error("idim(2x3 grid) should be 3")
	}
	if g := StarGraph(4); Idim(g) != 4 {
		t.Error("idim(K_{1,4}) should be 4")
	}
}

func TestFacadeNetwork(t *testing.T) {
	n := NewNetwork(FibonacciCube(6))
	greedy := NewGreedyRouter(n)
	oracle := NewOracleRouter(n)
	for _, r := range []Router{greedy, oracle} {
		res := n.Route(r, 0, n.Size()-1, 0)
		if !res.Delivered {
			t.Errorf("%s failed to deliver", r.Name())
		}
	}
	if n.Metrics().Diameter != 6 {
		t.Error("Γ_6 diameter should be 6")
	}
}

func TestFacadeHamilton(t *testing.T) {
	order, res := HamiltonianPath(FibonacciCube(6), 0)
	if res != HamiltonFound || len(order) != FibonacciCube(6).N() {
		t.Errorf("Hamiltonian path on Γ_6: %v", res)
	}
	if _, res := HamiltonianCycle(New(2, MustWord("11")), 0); res != HamiltonNone {
		t.Error("Γ_2 has no Hamiltonian cycle")
	}
}

func TestFacadeWords(t *testing.T) {
	w, err := ParseWord("11010")
	if err != nil || w.Len() != 5 {
		t.Fatal("ParseWord failed")
	}
	if Ones(3).String() != "111" || Zeros(2).String() != "00" {
		t.Error("Ones/Zeros wrong")
	}
	if HypercubeGraph(3).N() != 8 {
		t.Error("hypercube graph wrong")
	}
}
