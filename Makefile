# Makefile for gfcube. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make ci` locally means a green pipeline.

# pipefail so `go test | tee` targets fail when go test fails, not tee.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO       ?= go
BENCH    ?= .
TESTJSON ?= test-report.json
BENCHOUT ?= bench.txt

# Benchmark-regression gate settings. BENCHFULL selects the gated
# benchmarks (the paper-experiment E-suite, the sweep engine fixture,
# cube construction — the DFA-rank edge build — the column-incremental
# builder vs from-scratch, the rank/unrank addressing hot path, the
# MS-BFS distance engine and the streaming Θ analysis); the full run
# uses real iteration counts so bench-full numbers are comparable,
# unlike the 1-iteration smoke run.
BENCHFULL      ?= BenchmarkE[0-9]|BenchmarkSweep|BenchmarkConstructCube|BenchmarkColumnBuild|BenchmarkRankUnrank|BenchmarkMSBFS|BenchmarkThetaAnalyze
BENCHFULLOUT   ?= bench-full.txt
BENCHBASELINE  ?= bench-baseline.txt
BENCHTHRESHOLD ?= 1.25

# Coverage floor for internal/...: the seed's measured coverage (93.1%),
# with a one-decimal guard for timing-dependent branches in the
# concurrency tests.
COVERMIN  ?= 93.0
COVEROUT  ?= cover.out

# Per-target budget for the fuzz smoke gate.
FUZZTIME  ?= 30s

# Latency-SLO gate settings: gfc-loadgen drives a local gfc-serve with a
# mixed endpoint profile and checks the committed thresholds.
SLOBASELINE ?= slo-baseline.json
SLODUR      ?= 30s
SLOCONC     ?= 32
SLOOUT      ?= loadgen-report.json
SLOADDR     ?= 127.0.0.1:8093

# Iso-gate settings: the byte-identity check for the iso-dedup sweep
# path (scripts/iso-gate.sh). The |f| <= 5, d <= 7 grid is the one the
# golden congruence-group counts and the >= 2x cell-reduction claim in
# docs/iso-classes.md are stated for.
ISOMAXLEN ?= 5
ISOMAXD   ?= 7

# Fabric-gate settings: the kill-and-resume byte-reproducibility check
# for the sweep fabric (scripts/fabric-gate.sh). FABRICDELAY stretches
# each leased cell so the SIGKILLs land mid-grid even on fast machines.
FABRICMAXLEN ?= 3
FABRICMAXD   ?= 8
FABRICDELAY  ?= 150ms

# Warm-start pack and store-gate settings. PACKDIR is where `make pack`
# writes the shipped |f| <= 5, d <= 12 pack; the store gate builds its
# own throwaway pack over the smaller STOREMAXLEN/STOREMAXD grid.
PACKDIR       ?= packs/default
STOREBASELINE ?= store-baseline.json
STOREOUT      ?= store-report.json
STOREMAXLEN   ?= 4
STOREMAXD     ?= 10

.PHONY: all build test race test-json lint fmt vet bench bench-full bench-gate bench-baseline fuzz-smoke cover slo loadgen-compare pack store-gate fabric-gate iso-gate serve clean ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Machine-readable test output for trajectory tracking; the exit status is
# go test's, so failures still fail the target.
test-json:
	$(GO) test -race -count=1 -json ./... > $(TESTJSON)

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# One iteration of every benchmark: a compile-and-run smoke test. Numbers
# from this run are NOISY (single iteration); regression decisions use
# bench-full.
bench:
	$(GO) test -run='^$$' -bench=$(BENCH) -benchtime=1x ./... | tee $(BENCHOUT)

# Real measurements for the regression gate: 1s per benchmark, five
# repetitions; the comparator takes the per-benchmark minimum.
bench-full:
	$(GO) test -run='^$$' -bench='$(BENCHFULL)' -benchtime=1s -count=5 ./... | tee $(BENCHFULLOUT)

# The CI benchmark-regression gate: fail when any gated benchmark is more
# than BENCHTHRESHOLD x slower than the committed baseline. To refresh the
# baseline (after an intended slowdown or a runner change):
#     make bench-full && cp bench-full.txt bench-baseline.txt
bench-gate: bench-full
	$(GO) run ./internal/tools/benchcmp \
		-baseline $(BENCHBASELINE) -current $(BENCHFULLOUT) \
		-threshold $(BENCHTHRESHOLD) -filter '$(BENCHFULL)'

# Regenerate the committed baseline with the exact flags the gate uses
# (-benchtime=1s -count=5). Run on a quiet machine after an intended
# slowdown, a deliberate speedup, or a runner-class change, and commit
# the refreshed bench-baseline.txt so the gate measures future PRs
# honestly.
bench-baseline: bench-full
	cp $(BENCHFULLOUT) $(BENCHBASELINE)

# Short fuzz runs of every Fuzz target in the module (go test accepts a
# single -fuzz pattern per package invocation, hence the loop). The
# targets are cross-checking properties (DFA vs naive scan, rank/unrank
# inversion, implicit vs explicit backend), so even $(FUZZTIME) per
# target catches representation bugs quickly.
fuzz-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		targets=$$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "== fuzz $$pkg $$t ($(FUZZTIME))"; \
			$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

# Coverage gate on the library packages: fails below COVERMIN%.
cover:
	$(GO) test -count=1 -coverprofile=$(COVEROUT) ./internal/...
	@total=$$($(GO) tool cover -func=$(COVEROUT) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "coverage: $$total% (floor $(COVERMIN)%)"; \
	awk -v t="$$total" -v min="$(COVERMIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVERMIN)% floor"; exit 1; }

# Latency-SLO gate: build gfc-serve and gfc-loadgen, run a $(SLODUR)
# mixed-profile load at concurrency $(SLOCONC) against a local server,
# and fail when the committed $(SLOBASELINE) thresholds are breached.
# The loadgen report (JSON) lands in $(SLOOUT) for the CI step summary.
slo:
	@set -e; bindir=$$(mktemp -d); \
	$(GO) build -o $$bindir/gfc-serve ./cmd/gfc-serve; \
	$(GO) build -o $$bindir/gfc-loadgen ./cmd/gfc-loadgen; \
	$$bindir/gfc-serve -addr $(SLOADDR) & srv=$$!; \
	trap "kill $$srv 2>/dev/null || true; rm -rf $$bindir" EXIT; \
	$$bindir/gfc-loadgen -addr http://$(SLOADDR) -waitready 15s \
		-duration $(SLODUR) -concurrency $(SLOCONC) -profile mixed \
		-f 11 -d 32 -slo $(SLOBASELINE) | tee $(SLOOUT)

# In-process batched-vs-unbatched A/B for one (d, f) class at high
# concurrency — the comparison committed in docs/loadgen-comparison.md.
# In-process transport isolates the service stack from loopback-TCP
# noise; see that document for the methodology.
loadgen-compare:
	@set -e; bindir=$$(mktemp -d); \
	trap "rm -rf $$bindir" EXIT; \
	$(GO) build -o $$bindir/gfc-loadgen ./cmd/gfc-loadgen; \
	for seed in 1 2 3 4 5; do \
		echo "== pair $$seed: batched"; \
		$$bindir/gfc-loadgen -inprocess -duration 10s -warmup 2s \
			-concurrency 32 -profile rank -f 11 -d 32 -seed $$seed; \
		echo "== pair $$seed: unbatched"; \
		$$bindir/gfc-loadgen -inprocess -batch-disabled -duration 10s -warmup 2s \
			-concurrency 32 -profile rank -f 11 -d 32 -seed $$seed; \
	done

# Build the shipped warm-start pack: artifacts + verdict sidecar for
# every |f| <= 5, d <= 12 cell. Mount it with gfc-serve -warm-pack.
pack:
	$(GO) run ./cmd/gfc-pack -dir $(PACKDIR)

# Cold-vs-warm A/B for server restarts: the `first` profile sweeps every
# canonical class cell of the gate grid exactly once, so every request
# pays first-touch backend resolution — a build on the cold server, an
# artifact mmap-load on the warm one. The cold pass is printed for
# comparison; the warm pass is the gate, checked against the committed
# $(STOREBASELINE) first-request p99 threshold.
store-gate:
	@set -e; bindir=$$(mktemp -d); packdir=$$(mktemp -d); \
	trap "rm -rf $$bindir $$packdir" EXIT; \
	$(GO) build -o $$bindir/gfc-pack ./cmd/gfc-pack; \
	$(GO) build -o $$bindir/gfc-loadgen ./cmd/gfc-loadgen; \
	echo "== building gate pack (|f| <= $(STOREMAXLEN), d <= $(STOREMAXD))"; \
	$$bindir/gfc-pack -dir $$packdir -maxflen $(STOREMAXLEN) -maxd $(STOREMAXD) >/dev/null; \
	echo "== cold restart sweep (no store)"; \
	$$bindir/gfc-loadgen -inprocess -profile first \
		-first-maxlen $(STOREMAXLEN) -first-maxd $(STOREMAXD); \
	echo "== warm restart sweep (-warm-pack)"; \
	$$bindir/gfc-loadgen -inprocess -profile first \
		-first-maxlen $(STOREMAXLEN) -first-maxd $(STOREMAXD) \
		-warm-pack $$packdir -slo $(STOREBASELINE) | tee $(STOREOUT)

# Kill-and-resume gate for the sweep fabric: a sharded sweep across two
# local gfc-serve workers, SIGKILL of one worker and then the
# coordinator mid-grid, restart, resume from the hash-chained ledger,
# and a byte-for-byte comparison of the resumed result set against the
# single-process oracle. Fails on chain damage, duplicate or missing
# cells, or any byte difference.
fabric-gate:
	FABRIC_MAXLEN=$(FABRICMAXLEN) FABRIC_MAXD=$(FABRICMAXD) \
	FABRIC_CELL_DELAY=$(FABRICDELAY) GO=$(GO) ./scripts/fabric-gate.sh

# Byte-identity gate for the iso-dedup sweep path: survey and classify
# runs with and without iso dedup compared byte-for-byte, and the
# per-dimension congruence-group counts checked against the golden
# |f| <= 5 partition (2, 3, 5, 8, 11, 17, 22 groups at d = 1..7).
iso-gate:
	ISO_MAXLEN=$(ISOMAXLEN) ISO_MAXD=$(ISOMAXD) GO=$(GO) ./scripts/iso-gate.sh

serve: build
	$(GO) run ./cmd/gfc-serve

clean:
	rm -f $(TESTJSON) $(BENCHOUT) $(BENCHFULLOUT) $(COVEROUT) $(SLOOUT) $(STOREOUT)

ci: lint build test-json bench
