# Makefile for gfcube. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make ci` locally means a green pipeline.

# pipefail so `go test | tee` targets fail when go test fails, not tee.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO       ?= go
BENCH    ?= .
TESTJSON ?= test-report.json
BENCHOUT ?= bench.txt

# Benchmark-regression gate settings. BENCHFULL selects the gated
# benchmarks (the paper-experiment E-suite plus the sweep engine fixture);
# the full run uses real iteration counts so bench-full numbers are
# comparable, unlike the 1-iteration smoke run.
BENCHFULL      ?= BenchmarkE[0-9]|BenchmarkSweep
BENCHFULLOUT   ?= bench-full.txt
BENCHBASELINE  ?= bench-baseline.txt
BENCHTHRESHOLD ?= 1.25

# Coverage floor for internal/...: the seed's measured coverage (93.1%),
# with a one-decimal guard for timing-dependent branches in the
# concurrency tests.
COVERMIN  ?= 93.0
COVEROUT  ?= cover.out

.PHONY: all build test race test-json lint fmt vet bench bench-full bench-gate cover serve clean ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Machine-readable test output for trajectory tracking; the exit status is
# go test's, so failures still fail the target.
test-json:
	$(GO) test -race -count=1 -json ./... > $(TESTJSON)

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# One iteration of every benchmark: a compile-and-run smoke test. Numbers
# from this run are NOISY (single iteration); regression decisions use
# bench-full.
bench:
	$(GO) test -run='^$$' -bench=$(BENCH) -benchtime=1x ./... | tee $(BENCHOUT)

# Real measurements for the regression gate: 1s per benchmark, five
# repetitions; the comparator takes the per-benchmark minimum.
bench-full:
	$(GO) test -run='^$$' -bench='$(BENCHFULL)' -benchtime=1s -count=5 ./... | tee $(BENCHFULLOUT)

# The CI benchmark-regression gate: fail when any gated benchmark is more
# than BENCHTHRESHOLD x slower than the committed baseline. To refresh the
# baseline (after an intended slowdown or a runner change):
#     make bench-full && cp bench-full.txt bench-baseline.txt
bench-gate: bench-full
	$(GO) run ./internal/tools/benchcmp \
		-baseline $(BENCHBASELINE) -current $(BENCHFULLOUT) \
		-threshold $(BENCHTHRESHOLD) -filter '$(BENCHFULL)'

# Coverage gate on the library packages: fails below COVERMIN%.
cover:
	$(GO) test -count=1 -coverprofile=$(COVEROUT) ./internal/...
	@total=$$($(GO) tool cover -func=$(COVEROUT) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "coverage: $$total% (floor $(COVERMIN)%)"; \
	awk -v t="$$total" -v min="$(COVERMIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVERMIN)% floor"; exit 1; }

serve: build
	$(GO) run ./cmd/gfc-serve

clean:
	rm -f $(TESTJSON) $(BENCHOUT) $(BENCHFULLOUT) $(COVEROUT)

ci: lint build test-json bench
