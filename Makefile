# Makefile for gfcube. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make ci` locally means a green pipeline.

# pipefail so `go test | tee` targets fail when go test fails, not tee.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO       ?= go
BENCH    ?= .
TESTJSON ?= test-report.json
BENCHOUT ?= bench.txt

.PHONY: all build test race test-json lint fmt vet bench serve clean ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Machine-readable test output for trajectory tracking; the exit status is
# go test's, so failures still fail the target.
test-json:
	$(GO) test -race -count=1 -json ./... > $(TESTJSON)

lint: fmt vet

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# One iteration of every benchmark: a compile-and-run smoke test.
bench:
	$(GO) test -run='^$$' -bench=$(BENCH) -benchtime=1x ./... | tee $(BENCHOUT)

serve: build
	$(GO) run ./cmd/gfc-serve

clean:
	rm -f $(TESTJSON) $(BENCHOUT)

ci: lint build test-json bench
