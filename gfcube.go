// Package gfcube is a library for generalized Fibonacci cubes: the graphs
// Q_d(f) obtained from the d-dimensional hypercube Q_d by removing every
// vertex whose binary string contains a fixed factor f (Ilić, Klavžar, Rho,
// "Generalized Fibonacci cubes"; the Fibonacci cube Γ_d = Q_d(11) was
// introduced as an interconnection topology by Hsu, and the ICPP'93 line of
// work studied the Q_d(1^s) family).
//
// The package is a facade over the internal implementation and exposes:
//
//   - binary words and the forbidden-factor families of the paper,
//   - explicit construction of Q_d(f) with exact isometric-embeddability
//     testing and p-critical word search,
//   - the implicit DFA-rank backend (Implicit) answering order, rank/unrank
//     addressing, membership, degree and neighbor queries for any d up to 62
//     from O(|f|·d) memory, behind the shared CubeView interface,
//   - exact vertex/edge/square counting for arbitrary dimension via
//     transfer-matrix DP, with the paper's recurrences and closed forms,
//   - the embeddability classification theory of Sections 3-5 (Table 1),
//   - partial-cube recognition (Winkler's theorem), isometric dimension and
//     the f-dimension of Section 7,
//   - an interconnection-network simulator (routing, broadcast, traffic,
//     fault injection), and
//   - Hamiltonian path/cycle search.
//
// The expensive entry points have context-aware variants in the internal
// packages (core.CountCtx, Cube.IsIsometricCtx, network.SimulateCtx,
// hamilton.PathCtx, isometry.FDimCtx), and cmd/gfc-serve exposes all of the
// above as a concurrent HTTP JSON API behind a sharded singleflight LRU
// cache and a bounded worker pool; see internal/README.md.
package gfcube

import (
	"context"
	"math/big"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/fib"
	"gfcube/internal/graph"
	"gfcube/internal/hamilton"
	"gfcube/internal/hypercube"
	"gfcube/internal/isometry"
	"gfcube/internal/lucas"
	"gfcube/internal/network"
	"gfcube/internal/sweep"
)

// Word is a fixed-length binary string, the vertex alphabet of hypercubes
// and their generalized Fibonacci subcubes.
type Word = bitstr.Word

// ParseWord converts a string of '0'/'1' characters to a Word.
func ParseWord(s string) (Word, error) { return bitstr.Parse(s) }

// MustWord is ParseWord for constant strings; it panics on invalid input.
func MustWord(s string) Word { return bitstr.MustParse(s) }

// Ones returns the word 1^s; Ones(2) is the Fibonacci factor.
func Ones(s int) Word { return bitstr.Ones(s) }

// Zeros returns the word 0^s.
func Zeros(s int) Word { return bitstr.Zeros(s) }

// Graph is a finite simple undirected graph (used for guests of embedding
// computations and for direct structural access to cubes).
type Graph = graph.Graph

// Cube is an explicitly constructed generalized Fibonacci cube Q_d(f).
type Cube = core.Cube

// New constructs Q_d(f).
func New(d int, f Word) *Cube { return core.New(d, f) }

// FibonacciCube returns Γ_d = Q_d(11).
func FibonacciCube(d int) *Cube { return core.Fibonacci(d) }

// HypercubeGraph returns the full hypercube Q_d as a graph.
func HypercubeGraph(d int) *Graph { return hypercube.Build(d) }

// IsometryResult reports an exact embeddability check; see Cube.IsIsometric.
type IsometryResult = core.IsometryResult

// IsIsometric builds Q_d(f) and checks whether it is an isometric subgraph
// of Q_d.
func IsIsometric(d int, f Word) IsometryResult { return core.New(d, f).IsIsometric() }

// Verdict is a theoretical embeddability verdict.
type Verdict = core.Verdict

// Re-exported verdict values.
const (
	Isometric    = core.Isometric
	NotIsometric = core.NotIsometric
	Unknown      = core.Unknown
)

// Classification is a verdict plus the supporting result of the paper.
type Classification = core.Classification

// Classify applies the paper's classification theory to (f, d).
func Classify(f Word, d int) Classification { return core.Classify(f, d) }

// Table1Row and Table1 expose the paper's Table 1 (classification for
// factors of length at most 5).
type Table1Row = core.Table1Row

// Table1 is the transcription of the paper's Table 1.
func Table1() []Table1Row { return core.Table1 }

// CriticalPair is a pair of p-critical words (Lemma 2.4 witnesses).
type CriticalPair = core.CriticalPair

// Scratch holds reusable construction/BFS buffers for grid sweeps; one per
// goroutine.
type Scratch = core.Scratch

// NewScratch returns an empty scratch area.
func NewScratch() *Scratch { return core.NewScratch() }

// FactorClass is a complement/reversal equivalence class of forbidden
// factors (Lemmas 2.2/2.3): all members yield isomorphic cubes.
type FactorClass = core.Class

// FactorClasses returns the canonical classes of every factor length in
// [minLen, maxLen] in deterministic grid order.
func FactorClasses(minLen, maxLen int) []FactorClass { return core.Classes(minLen, maxLen) }

// GridCell is the decided classification of one (factor class, d) cell.
type GridCell = core.Cell

// GridOptions bounds a classification grid; see core.GridOptions.
type GridOptions = core.GridOptions

// ClassifyAll classifies the full (d, f) grid up to factor length maxLen,
// deduplicated by symmetry — the Table 1 computation with arbitrary
// bounds, serial reference implementation. The sweep engine
// (internal/sweep, surfaced below) computes the identical grid in
// parallel.
func ClassifyAll(maxLen int, opts GridOptions) []GridCell { return core.ClassifyAll(maxLen, opts) }

// SweepOptions tunes the parallel sweep engine (workers, progress).
type SweepOptions = sweep.Options

// SweepGridSpec bounds a sweep grid (factor lengths, dimensions, method).
type SweepGridSpec = sweep.GridSpec

// SweepSurveyRow is a first-failure survey row.
type SweepSurveyRow = sweep.SurveyRow

// ClassifyGrid evaluates the classification grid on the parallel sweep
// engine with deterministic result ordering; identical to ClassifyAll on
// the same bounds.
func ClassifyGrid(ctx context.Context, spec SweepGridSpec, opts SweepOptions) ([]GridCell, error) {
	return sweep.ClassifyGrid(ctx, spec, opts)
}

// SweepSurvey computes the first non-isometric dimension per factor class
// in parallel (the gfc-survey workload).
func SweepSurvey(ctx context.Context, spec SweepGridSpec, opts SweepOptions) ([]SweepSurveyRow, error) {
	return sweep.Survey(ctx, spec, opts)
}

// BigCounts holds exact |V|, |E|, |S| for arbitrary dimension.
type BigCounts = core.BigCounts

// Count returns the exact number of vertices, edges and squares of Q_d(f)
// without constructing the graph.
func Count(d int, f Word) BigCounts { return core.Count(d, f) }

// CountSeq returns Count(d, f) for d = 0..dmax.
func CountSeq(dmax int, f Word) []BigCounts { return core.CountSeq(dmax, f) }

// RecurrenceQ111 evaluates the paper's recurrences (1)-(3) for Q_d(111).
func RecurrenceQ111(dmax int) []BigCounts { return core.RecurrenceQ111(dmax) }

// RecurrenceQ110 evaluates the paper's recurrences (4)-(6) for Q_d(110).
func RecurrenceQ110(dmax int) []BigCounts { return core.RecurrenceQ110(dmax) }

// ClosedFormsQ110 evaluates |V(H_d)| = F_{d+3}-1 and the closed forms of
// Propositions 6.2 and 6.3 for H_d = Q_d(110).
func ClosedFormsQ110(d int) BigCounts { return core.ClosedFormsQ110(d) }

// WienerHamming returns the exact sum of pairwise Hamming distances of the
// vertices of Q_d(f); for isometric cubes this is the Wiener index. It
// needs no graph construction, so any d works. Cube.WienerExact is the
// BFS ground truth on constructed cubes: equal on isometric cubes,
// strictly larger on connected non-isometric ones.
func WienerHamming(d int, f Word) *big.Int { return core.WienerHamming(d, f) }

// MeanHammingDistance returns the exact mean pairwise Hamming distance of
// Q_d(f) as a rational; for isometric cubes this is the network's mean
// shortest-path distance.
func MeanHammingDistance(d int, f Word) *big.Rat { return core.MeanHammingDistance(d, f) }

// FibonacciNumber returns F_n with F_1 = F_2 = 1 (uint64 range).
func FibonacciNumber(n int) uint64 { return fib.F(n) }

// PartialCubeAnalysis is the Θ-relation analysis of a graph (Winkler
// machinery of Sections 7-8).
type PartialCubeAnalysis = isometry.Analysis

// AnalyzePartialCube computes Θ, Θ*, bipartiteness and the Winkler
// transitivity test for a graph.
func AnalyzePartialCube(g *Graph) *PartialCubeAnalysis { return isometry.Analyze(g) }

// Idim returns the isometric dimension of a graph, or -1 if it embeds in no
// hypercube.
func Idim(g *Graph) int { return isometry.Analyze(g).Idim() }

// FDimResult reports an f-dimension computation.
type FDimResult = isometry.FDimResult

// FDim computes dim_f(G) exactly by bounded search (Section 7).
func FDim(g *Graph, f Word, maxD int) FDimResult { return isometry.FDim(g, f, maxD) }

// Network is a generalized Fibonacci cube as an interconnection network.
type Network = network.Network

// NewNetwork wraps a cube as a network.
func NewNetwork(c *Cube) *Network { return network.New(c) }

// Router forwards packets hop by hop.
type Router = network.Router

// NewOracleRouter returns the shortest-path baseline router.
func NewOracleRouter(n *Network) Router { return network.NewOracleRouter(n) }

// NewGreedyRouter returns the canonical greedy bit-fixing router.
func NewGreedyRouter(n *Network) Router { return network.NewGreedyRouter(n) }

// Packet is a unit of simulated traffic.
type Packet = network.Packet

// SimConfig controls the synchronous network simulator.
type SimConfig = network.SimConfig

// SimResult aggregates a simulation run.
type SimResult = network.SimResult

// MakePackets converts (src, dst) pairs into simulator packets.
func MakePackets(pairs [][2]int) []Packet { return network.MakePackets(pairs) }

// HamiltonResult classifies a Hamiltonian search outcome.
type HamiltonResult = hamilton.Result

// Re-exported Hamiltonian search outcomes.
const (
	HamiltonFound        = hamilton.Found
	HamiltonNone         = hamilton.None
	HamiltonInconclusive = hamilton.Inconclusive
)

// HamiltonianPath searches for a Hamiltonian path in the cube (bounded
// backtracking; budget 0 uses a generous default).
func HamiltonianPath(c *Cube, budget int64) ([]int32, HamiltonResult) {
	return hamilton.Path(c.Graph(), budget)
}

// HamiltonianCycle searches for a Hamiltonian cycle in the cube.
func HamiltonianCycle(c *Cube, budget int64) ([]int32, HamiltonResult) {
	return hamilton.Cycle(c.Graph(), budget)
}

// LucasCube is the cyclic sibling Λ_d of the Fibonacci cube: no two
// consecutive 1s circularly; |V(Λ_d)| is the Lucas number L_d.
type LucasCube = lucas.Cube

// NewLucasCube constructs Λ_d.
func NewLucasCube(d int) *LucasCube { return lucas.New(d) }

// NewGeneralLucasCube constructs the generalized Lucas cube Λ_d(f): vertices
// avoid f circularly. Λ_d(11) recovers the classical Lucas cube.
func NewGeneralLucasCube(d int, f Word) *LucasCube { return lucas.NewGeneral(d, f) }

// Ranker maps f-free words to their index in the sorted enumeration and
// back, in O(d) per query after O(d·|f|) preprocessing — the generalized
// Zeckendorf node addressing of Fibonacci-cube networks.
type Ranker = automaton.Ranker

// NewRanker prepares rank/unrank tables for words of length d avoiding f.
func NewRanker(f Word, d int) *Ranker { return automaton.NewRanker(f, d) }

// WordRouter routes between vertex words of any dimension with purely local
// decisions (no cube construction): the distributed greedy router.
type WordRouter = network.WordRouter

// NewWordRouter builds a word-level router for the factor f.
func NewWordRouter(f Word) *WordRouter { return network.NewWordRouter(f) }

// CubeView is the backend-independent query interface over Q_d(f): order,
// membership, rank/unrank addressing, degrees and neighbor iteration,
// served by either the explicit Cube or the implicit DFA-rank backend.
type CubeView = core.CubeView

// Implicit is the implicit DFA-rank backend: CubeView queries for any
// d <= 62 from O(|f|·d) memory, never enumerating the vertex set.
type Implicit = core.Implicit

// NewImplicit builds the implicit backend for Q_d(f).
func NewImplicit(d int, f Word) *Implicit { return core.NewImplicit(d, f) }

// NewCubeView returns a query backend for Q_d(f): explicit up to maxBuild
// (clamped to core.MaxBuildDim = 30), implicit beyond.
func NewCubeView(d int, f Word, maxBuild int) CubeView { return core.NewView(d, f, maxBuild) }

// Hop is one step of a rank-addressed route trace.
type Hop = network.Hop

// ViewRouter routes over any cube backend and reports rank-addressed
// traces; see examples/implicit for a d = 62 walkthrough.
type ViewRouter = network.ViewRouter

// NewViewRouter builds a rank-addressed router over the backend v.
func NewViewRouter(v CubeView) *ViewRouter { return network.NewViewRouter(v) }

// NewDerouteRouter returns the greedy router with misrouting recovery; see
// Network.EvaluateDeroute.
func NewDerouteRouter(n *Network) *network.DerouteRouter { return network.NewDerouteRouter(n) }

// PathGraph, CycleGraph, StarGraph and GridGraph build the standard guest
// graphs used in dimension experiments.
func PathGraph(n int) *Graph { return graph.Path(n) }

// CycleGraph returns the cycle C_n.
func CycleGraph(n int) *Graph { return graph.Cycle(n) }

// StarGraph returns the star K_{1,n}.
func StarGraph(n int) *Graph { return graph.Star(n) }

// GridGraph returns the p x q grid.
func GridGraph(p, q int) *Graph { return graph.Grid(p, q) }
