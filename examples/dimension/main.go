// Dimension: the Section 7 experiments. Compute isometric dimensions and
// f-dimensions of standard guest graphs, verify the Proposition 7.1 bounds
// idim(G) <= dim_f(G) <= 3 idim(G) - 2, and reproduce the Section 8 result
// that Q_d(101) embeds isometrically in no hypercube at all.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube"
)

func main() {
	log.SetFlags(0)

	guests := []struct {
		name string
		g    *gfcube.Graph
	}{
		{"P_3", gfcube.PathGraph(3)},
		{"P_4", gfcube.PathGraph(4)},
		{"P_5", gfcube.PathGraph(5)},
		{"C_4", gfcube.CycleGraph(4)},
		{"C_6", gfcube.CycleGraph(6)},
		{"K_{1,3}", gfcube.StarGraph(3)},
		{"2x3 grid", gfcube.GridGraph(2, 3)},
	}
	factors := []string{"11", "111", "110"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "guest\tidim\tdim_11\tdim_111\tdim_110\tbounds ok")
	for _, guest := range guests {
		idim := gfcube.Idim(guest.g)
		row := fmt.Sprintf("%s\t%d", guest.name, idim)
		ok := true
		for _, fs := range factors {
			f := gfcube.MustWord(fs)
			res := gfcube.FDim(guest.g, f, 2*idim-1)
			if !res.Found {
				row += "\t?"
				ok = false
				continue
			}
			if res.Dim < idim || res.Dim > 3*idim-2 {
				ok = false
			}
			row += fmt.Sprintf("\t%d", res.Dim)
		}
		fmt.Fprintf(w, "%s\t%v\n", row, ok)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// An odd cycle embeds in no hypercube: idim = infinity, dim_f undefined.
	fmt.Printf("\nidim(C_5) = %d (negative means: not a partial cube)\n", gfcube.Idim(gfcube.CycleGraph(5)))

	// Section 8: Q_d(101) itself is not a partial cube for d >= 4 - it is
	// not an isometric subgraph of ANY hypercube, not merely of Q_d.
	for d := 3; d <= 6; d++ {
		cube := gfcube.New(d, gfcube.MustWord("101"))
		a := gfcube.AnalyzePartialCube(cube.Graph())
		fmt.Printf("Q_%d(101): bipartite=%v Θ-transitive=%v partial cube=%v\n",
			d, a.Bipartite, a.ThetaTransitive, a.IsPartialCube())
	}
}
