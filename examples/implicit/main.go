// Implicit backend: the DFA-rank addressing layer serves the full-width
// Fibonacci cube Q_62(11) — about 10^13 nodes — with O(d) rank/unrank,
// O(d^2) neighbor sweeps and purely local routing, from O(|f|·d) memory:
// no vertex set, no edge list, no tables proportional to the graph. The
// same CubeView interface is served by the explicit cube at small d, and
// the two backends agree exactly, which this walkthrough checks last.
package main

import (
	"fmt"
	"log"

	"gfcube"
)

func main() {
	log.SetFlags(0)
	const d = 62
	f := gfcube.Ones(2) // the Fibonacci factor

	im := gfcube.NewImplicit(d, f)
	fmt.Printf("Q_%d(%s) has %d nodes (= F_%d), backend memory O(|f|·d)\n",
		d, f, im.Order(), d+2)

	// Unrank two node addresses spread across the numeration.
	a, b := im.Order()/7, 5*im.Order()/7
	src, ok := im.UnrankWord(a)
	if !ok {
		log.Fatal("unrank src failed")
	}
	dst, ok := im.UnrankWord(b)
	if !ok {
		log.Fatal("unrank dst failed")
	}
	fmt.Printf("node %d -> %s\n", a, src)
	fmt.Printf("node %d -> %s\n", b, dst)

	// Rank is the exact inverse, and local degree probes need no graph.
	if back, ok := im.RankWord(src); !ok || back != a {
		log.Fatalf("rank/unrank mismatch: %d vs %d", back, a)
	}
	deg, _ := im.DegreeOf(src)
	fmt.Printf("deg(%d) = %d; first neighbors:\n", a, deg)
	shown := 0
	im.NeighborsOf(src, func(rank int64, u gfcube.Word) bool {
		fmt.Printf("  rank %d  word %s\n", rank, u)
		shown++
		return shown < 3
	})

	// Route between the two addresses: every hop is a local factor test,
	// every address translation an O(d) table walk. On the isometric Γ_d
	// the walk is distance-optimal.
	router := gfcube.NewViewRouter(im)
	hops, ok, err := router.RouteRanks(a, b, 0)
	if err != nil || !ok {
		log.Fatalf("routing failed: %v", err)
	}
	fmt.Printf("routed %d -> %d in %d hops (Hamming distance %d)\n",
		a, b, len(hops)-1, src.HammingDistance(dst))
	fmt.Printf("first hops: %d %s\n            %d %s\n            %d %s\n",
		hops[0].Rank, hops[0].Word, hops[1].Rank, hops[1].Word, hops[2].Rank, hops[2].Word)
	if len(hops)-1 != src.HammingDistance(dst) {
		log.Fatal("route not distance-optimal") // doubles as a smoke test
	}

	// Cross-check: at a small dimension the explicit cube (a materialized
	// CSR graph) and the implicit backend are the same cube, vertex for
	// vertex, rank for rank.
	const small = 12
	ex := gfcube.New(small, f)
	sm := gfcube.NewImplicit(small, f)
	if ex.Order() != sm.Order() {
		log.Fatalf("order mismatch at d=%d: %d vs %d", small, ex.Order(), sm.Order())
	}
	for r := int64(0); r < ex.Order(); r++ {
		ew, _ := ex.UnrankWord(r)
		iw, _ := sm.UnrankWord(r)
		if ew != iw {
			log.Fatalf("address %d disagrees: %s vs %s", r, ew, iw)
		}
		ed, _ := ex.DegreeOf(ew)
		id, _ := sm.DegreeOf(iw)
		if ed != id {
			log.Fatalf("degree of %s disagrees: %d vs %d", ew, ed, id)
		}
	}
	fmt.Printf("explicit and implicit backends agree on all %d vertices of Q_%d(%s)\n",
		ex.Order(), small, f)
}
