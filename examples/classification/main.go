// Classification: regenerate the paper's Table 1 through the public API and
// verify every row against exact computation on explicitly built cubes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube"
)

func main() {
	log.SetFlags(0)
	const maxD = 9

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "factor\ttable says\tcomputed agreement")
	mismatches := 0
	for _, row := range gfcube.Table1() {
		f := row.Word()
		status := "agrees"
		for d := 1; d <= maxD; d++ {
			want := row.VerdictFor(d) == gfcube.Isometric
			got := gfcube.IsIsometric(d, f).Isometric
			if want != got {
				status = fmt.Sprintf("MISMATCH at d=%d", d)
				mismatches++
				break
			}
		}
		upTo := "all d"
		if row.UpTo >= 0 {
			upTo = fmt.Sprintf("d <= %d", row.UpTo)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", row.Factor, upTo, status)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d rows checked exactly for d = 1..%d, %d mismatches\n",
		len(gfcube.Table1()), maxD, mismatches)
	if mismatches > 0 {
		os.Exit(1)
	}

	// Beyond the table: the classification theory also covers infinite
	// families. A few samples at dimensions far beyond explicit
	// construction:
	for _, s := range []string{"111111", "11010", "101010", "1110111"} {
		f := gfcube.MustWord(s)
		cl := gfcube.Classify(f, 50)
		fmt.Printf("Q_50(%s): %s [%s]\n", s, cl.Verdict, cl.Reason)
	}
}
