// Fault tolerance: kill random nodes of Γ_d and measure connectivity,
// routable pairs and diameter inflation - the interconnection-network
// robustness experiment of the ICPP'93 setting (cf. reference [9] of the
// paper on the fault tolerance of Fibonacci cubes).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube"
)

func main() {
	log.SetFlags(0)
	const d = 10
	const trials = 30

	n := gfcube.NewNetwork(gfcube.FibonacciCube(d))
	m := n.Metrics()
	fmt.Printf("Γ_%d: %d nodes, %d links, diameter %d\n\n", d, m.Nodes, m.Links, m.Diameter)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "killed\tconnected trials\tmean routable\tworst routable\tmean diameter after")
	for _, kill := range []int{1, 2, 4, 8, 16, 32} {
		st := n.RandomFaults(kill, trials, int64(kill)*101)
		fmt.Fprintf(w, "%d\t%d/%d\t%.4f\t%.4f\t%.1f\n",
			kill, st.ConnectedTrials, st.Trials, st.MeanRoutable, st.WorstRoutable, st.MeanDiameterAfter)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsingle-node articulation-free fraction of Γ_%d: %.4f\n", d, n.ArticulationFreeFraction())

	// Compare against a path network - the worst topology for robustness.
	// Q_29(10) is the path on 30 nodes; every interior node is a cut vertex.
	p := gfcube.NewNetwork(gfcube.New(29, gfcube.MustWord("10")))
	fmt.Printf("path with %d nodes, articulation-free fraction: %.4f\n",
		p.Size(), p.ArticulationFreeFraction())
}
