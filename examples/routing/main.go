// Routing: the ICPP'93 scenario. Compare the Fibonacci cube Γ_d against the
// full hypercube Q_d and a non-isometric generalized Fibonacci cube as
// interconnection networks: topology metrics, greedy vs oracle routing, a
// synchronous permutation run, and broadcast.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube"
)

func main() {
	log.SetFlags(0)
	const d = 9

	topologies := []struct {
		name string
		cube *gfcube.Cube
	}{
		{"Q_9 (hypercube, f=1^10 unused)", gfcube.New(d, gfcube.Ones(10))},
		{"Γ_9 = Q_9(11)", gfcube.FibonacciCube(d)},
		{"Q_9(111)", gfcube.New(d, gfcube.Ones(3))},
		{"Q_9(101) (non-isometric)", gfcube.New(d, gfcube.MustWord("101"))},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "topology\tnodes\tlinks\tdeg\tdiam\tavg dist\tgreedy ok\tgreedy stretch\toracle ok")
	for _, tp := range topologies {
		n := gfcube.NewNetwork(tp.cube)
		m := n.Metrics()
		pairs := n.UniformPairs(400, 17)
		greedy := n.EvaluateRouting(gfcube.NewGreedyRouter(n), pairs)
		oracle := n.EvaluateRouting(gfcube.NewOracleRouter(n), pairs)
		fmt.Fprintf(w, "%s\t%d\t%d\t[%d,%d]\t%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
			tp.name, m.Nodes, m.Links, m.MinDegree, m.MaxDegree, m.Diameter, m.AvgDistance,
			greedy.SuccessRate(), greedy.AvgStretch(), oracle.SuccessRate())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Synchronous store-and-forward permutation run on Γ_9.
	n := gfcube.NewNetwork(gfcube.FibonacciCube(d))
	pairs := n.PermutationPairs(23)
	res := n.Simulate(gfcube.MakePackets(pairs), gfcube.NewGreedyRouter(n), gfcube.SimConfig{})
	fmt.Printf("\nΓ_9 permutation simulation (greedy): %s\n", res)

	// Broadcast from the all-zero node: the natural root of Γ_d.
	zero, ok := n.Cube().Rank(gfcube.Zeros(d))
	if !ok {
		log.Fatal("0^d must be a vertex")
	}
	bc := n.Broadcast(zero)
	fmt.Printf("Γ_9 broadcast from 0^9: rounds=%d messages=%d reached=%d/%d\n",
		bc.Rounds, bc.Messages, bc.Reached, n.Size())

	// Throughput-vs-load: how Γ_9 saturates as injection grows.
	fmt.Println("\nsaturation sweep (greedy, uniform traffic):")
	fmt.Println("load  packets  rounds  avg latency  max queue")
	for _, p := range n.Saturation([]int{1, 2, 4, 8, 16}, gfcube.NewGreedyRouter(n), 31) {
		fmt.Printf("%4d  %7d  %6d  %11.2f  %9d\n", p.Load, p.Packets, p.Rounds, p.AvgLatency, p.MaxQueue)
	}
}
