// Enumeration: regenerate the Section 6 results - the recurrences (1)-(6)
// for Q_d(111) and Q_d(110), the closed forms of Propositions 6.2/6.3, and
// the Fibonacci-cube identities of the final remark.
package main

import (
	"fmt"
	"log"
	"math/big"
	"os"
	"text/tabwriter"

	"gfcube"
)

func main() {
	log.SetFlags(0)
	const maxD = 16

	fmt.Println("H_d = Q_d(110): recurrences (4)-(6) vs closed forms vs DP")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "d\t|V|=F_{d+3}-1\t|E| (Prop 6.2)\t|S| (Prop 6.3)\tagree\t")
	rec := gfcube.RecurrenceQ110(maxD)
	dp := gfcube.CountSeq(maxD, gfcube.MustWord("110"))
	for d := 0; d <= maxD; d++ {
		cf := gfcube.ClosedFormsQ110(d)
		agree := "ok"
		if cf.V.Cmp(rec[d].V) != 0 || cf.E.Cmp(rec[d].E) != 0 || cf.S.Cmp(rec[d].S) != 0 ||
			cf.V.Cmp(dp[d].V) != 0 || cf.E.Cmp(dp[d].E) != 0 || cf.S.Cmp(dp[d].S) != 0 {
			agree = "MISMATCH"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t\n", d, cf.V, cf.E, cf.S, agree)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nG_d = Q_d(111): recurrences (1)-(3) vs DP")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "d\t|V|\t|E|\t|S|\tagree\t")
	rec3 := gfcube.RecurrenceQ111(maxD)
	dp3 := gfcube.CountSeq(maxD, gfcube.MustWord("111"))
	for d := 0; d <= maxD; d++ {
		agree := "ok"
		if rec3[d].V.Cmp(dp3[d].V) != 0 || rec3[d].E.Cmp(dp3[d].E) != 0 || rec3[d].S.Cmp(dp3[d].S) != 0 {
			agree = "MISMATCH"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t\n", d, rec3[d].V, rec3[d].E, rec3[d].S, agree)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Final remark: Q_d(110) vs Γ_{d+1} = Q_{d+1}(11).
	fmt.Println("\nfinal-remark identities: |V(H_d)| = |V(Γ_{d+1})|-1, |E(H_d)| = |E(Γ_{d+1})|-1, |S(H_d)| = |S(Γ_{d+1})|")
	one := big.NewInt(1)
	holds := true
	for d := 0; d <= maxD; d++ {
		h := gfcube.Count(d, gfcube.MustWord("110"))
		g := gfcube.Count(d+1, gfcube.MustWord("11"))
		if new(big.Int).Add(h.V, one).Cmp(g.V) != 0 ||
			new(big.Int).Add(h.E, one).Cmp(g.E) != 0 ||
			h.S.Cmp(g.S) != 0 {
			holds = false
		}
	}
	fmt.Printf("identities hold for d = 0..%d: %v\n", maxD, holds)
	if !holds {
		os.Exit(1)
	}
}
