// Example: running a Table 1 census on the sweep engine.
//
// The sweep package fans (d, f)-grid work across a worker pool with
// per-worker scratch buffers and deterministic result ordering. This
// example reproduces the length-4 slice of the paper's Table 1 two ways:
// as a full classification grid (every (class, d) cell) and as a
// first-failure survey (one scan per class), then checks them against the
// transcribed table.
package main

import (
	"context"
	"fmt"
	"log"

	"gfcube/internal/core"
	"gfcube/internal/sweep"
)

func main() {
	ctx := context.Background()
	spec := sweep.GridSpec{MaxLen: 4, MaxD: 8, Method: core.MethodExact}

	// Full grid: cells arrive in deterministic order (classes shortest
	// first, d ascending), regardless of worker interleaving.
	cells, err := sweep.ClassifyGrid(ctx, spec, sweep.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification grid: %d cells over %d classes\n",
		len(cells), len(core.Classes(1, 4)))
	for _, cell := range cells {
		if row, ok := core.Table1Lookup(cell.Rep); ok {
			if want := row.VerdictFor(cell.D) == core.Isometric; want != cell.Isometric {
				log.Fatalf("Table 1 mismatch at f=%s d=%d", cell.Rep, cell.D)
			}
		}
	}
	fmt.Println("all cells agree with the paper's Table 1")

	// First-failure survey: one task per class, scanning d until the first
	// non-isometric dimension; progress arrives as classes complete.
	rows, err := sweep.Survey(ctx, spec, sweep.Options{
		Workers:  4,
		Progress: func(done, total int) { fmt.Printf("  surveyed %d/%d classes\n", done, total) },
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		status := "good up to d=8"
		if r.FirstFail > 0 {
			status = fmt.Sprintf("first failure at d=%d", r.FirstFail)
		}
		fmt.Printf("  f=%-6s (class of %d): %-22s %s\n", r.Class.Rep, r.Class.Size, status, r.Theory)
	}
}
