// Quickstart: build the generalized Fibonacci cube of the paper's Figure 1,
// inspect its structure, test isometric embeddability, and count a large
// instance without building it.
package main

import (
	"fmt"
	"log"

	"gfcube"
)

func main() {
	log.SetFlags(0)

	// Q_4(101): the 4-cube with every vertex containing "101" removed
	// (Figure 1 of the paper).
	f := gfcube.MustWord("101")
	cube := gfcube.New(4, f)
	fmt.Printf("Q_4(%s): %d vertices, %d edges\n", f, cube.N(), cube.M())

	// Is it an isometric subgraph of Q_4? No: d = 4 is the first dimension
	// where Proposition 3.2 bites (Q_d(101) is isometric only for d <= 3).
	res := cube.IsIsometric()
	fmt.Printf("isometric in Q_4: %v\n", res.Isometric)

	// Same verdict one dimension higher, with an explicit witness pair.
	res5 := gfcube.IsIsometric(5, f)
	fmt.Printf("isometric in Q_5: %v (witness %s -- %s: cube distance %d, Hamming %d)\n",
		res5.Isometric, res5.U, res5.V, res5.CubeDist, res5.HammingDist)

	// The theory agrees.
	cl := gfcube.Classify(f, 5)
	fmt.Printf("theory: %s [%s]\n", cl.Verdict, cl.Reason)

	// The Fibonacci cube is the special case f = 11; its order is a
	// Fibonacci number.
	gamma := gfcube.FibonacciCube(10)
	fmt.Printf("Γ_10: %d vertices (= F_12 = %d)\n", gamma.N(), gfcube.FibonacciNumber(12))

	// Counting without construction: Q_60(101) is far too large to build,
	// but its exact order, size and number of squares take microseconds.
	counts := gfcube.Count(60, f)
	fmt.Printf("Q_60(101): |V| = %s, |E| = %s, |S| = %s\n", counts.V, counts.E, counts.S)

	if cube.N() != 12 {
		log.Fatal("unexpected vertex count") // the quickstart doubles as a smoke test
	}
}
