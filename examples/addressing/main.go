// Addressing: Fibonacci-cube networks address their nodes with the
// Zeckendorf numeration - node i is the i-th binary string without 11. This
// example exercises the generalized rank/unrank machinery and the
// distributed word-level router at dimension 48, far beyond any explicit
// construction: every routing decision is a local O(d·|f|) computation.
package main

import (
	"fmt"
	"log"
	"math/big"

	"gfcube"
)

func main() {
	log.SetFlags(0)
	const d = 48
	f := gfcube.Ones(2) // the Fibonacci factor

	r := gfcube.NewRanker(f, d)
	fmt.Printf("Γ_%d has %s nodes (= F_%d)\n", d, r.Total(), d+2)

	// Unrank two node addresses.
	a := new(big.Int).Div(r.Total(), big.NewInt(7))
	b := new(big.Int).Div(new(big.Int).Mul(r.Total(), big.NewInt(5)), big.NewInt(7))
	src, err := r.Unrank(a)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := r.Unrank(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %s -> word %s\n", a, src)
	fmt.Printf("node %s -> word %s\n", b, dst)

	// Rank is the exact inverse.
	back, err := r.Rank(src)
	if err != nil || back.Cmp(a) != 0 {
		log.Fatalf("rank/unrank mismatch: %s vs %s", back, a)
	}

	// Route between them with purely local decisions (no global state):
	// on the isometric Γ_d the walk is distance-optimal.
	router := gfcube.NewWordRouter(f)
	path, ok := router.Route(src, dst, 0)
	if !ok {
		log.Fatal("routing failed")
	}
	fmt.Printf("routed in %d hops (Hamming distance %d)\n", len(path)-1, src.HammingDistance(dst))
	fmt.Printf("first hops: %s\n            %s\n            %s\n", path[0], path[1], path[2])
	if len(path)-1 != src.HammingDistance(dst) {
		log.Fatal("route not distance-optimal") // doubles as a smoke test
	}
}
