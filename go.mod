module gfcube

go 1.23
