package gfcube_test

import (
	"math/big"
	"testing"

	"gfcube"
)

// Cross-module pipeline: theory -> construction -> isometry -> network ->
// dimensions, exercised end to end through the public API, pinning the
// numbers recorded in EXPERIMENTS.md (deterministic seeds).

func TestIntegrationE12RoutingTable(t *testing.T) {
	const d = 9
	const pairsN = 400
	const seed = 17
	type rowWant struct {
		factor    string
		nodes     int
		diameter  int32
		delivered int // greedy, out of 400
	}
	rows := []rowWant{
		{"1111111111", 512, 9, pairsN}, // f longer than d: the full hypercube
		{"11", 89, 9, pairsN},
		{"111", 274, 9, pairsN},
		{"101", 200, 10, 348},
	}
	for _, row := range rows {
		n := gfcube.NewNetwork(gfcube.New(d, gfcube.MustWord(row.factor)))
		m := n.Metrics()
		if m.Nodes != row.nodes {
			t.Errorf("f=%s: nodes %d, want %d", row.factor, m.Nodes, row.nodes)
		}
		if m.Diameter != row.diameter {
			t.Errorf("f=%s: diameter %d, want %d", row.factor, m.Diameter, row.diameter)
		}
		pairs := n.UniformPairs(pairsN, seed)
		greedy := n.EvaluateRouting(gfcube.NewGreedyRouter(n), pairs)
		oracle := n.EvaluateRouting(gfcube.NewOracleRouter(n), pairs)
		if oracle.Delivered != pairsN {
			t.Errorf("f=%s: oracle delivered %d", row.factor, oracle.Delivered)
		}
		if greedy.Delivered != row.delivered {
			t.Errorf("f=%s: greedy delivered %d, want %d (EXPERIMENTS.md pin)",
				row.factor, greedy.Delivered, row.delivered)
		}
	}
}

func TestIntegrationFig2Pipeline(t *testing.T) {
	// Build Γ_5 and Q_4(110), confirm the Fig. 2 relations from three
	// independent directions: explicit graphs, counting DP, and closed
	// forms.
	gamma := gfcube.FibonacciCube(5)
	h := gfcube.New(4, gfcube.MustWord("110"))

	if gamma.N() != 13 || h.N() != 12 || gamma.M() != 20 || h.M() != 19 {
		t.Fatalf("Fig. 2 explicit counts wrong: Γ_5 (%d,%d), H_4 (%d,%d)",
			gamma.N(), gamma.M(), h.N(), h.M())
	}
	dpG := gfcube.Count(5, gfcube.MustWord("11"))
	dpH := gfcube.Count(4, gfcube.MustWord("110"))
	if dpG.V.Int64() != 13 || dpH.V.Int64() != 12 {
		t.Error("DP counts disagree with explicit")
	}
	cf := gfcube.ClosedFormsQ110(4)
	if cf.V.Cmp(dpH.V) != 0 || cf.E.Cmp(dpH.E) != 0 || cf.S.Cmp(dpH.S) != 0 {
		t.Error("closed forms disagree with DP")
	}
	// Both are partial cubes of full isometric dimension.
	if got := gfcube.Idim(gamma.Graph()); got != 5 {
		t.Errorf("idim(Γ_5) = %d", got)
	}
	if got := gfcube.Idim(h.Graph()); got != 4 {
		t.Errorf("idim(Q_4(110)) = %d", got)
	}
}

func TestIntegrationAddressingAndRouting(t *testing.T) {
	// Rank -> word -> route -> rank, at d = 32 (never constructing the
	// cube), with hop count equal to Hamming distance on the isometric Γ.
	const d = 32
	r := gfcube.NewRanker(gfcube.Ones(2), d)
	total := r.Total()
	// F_34 = 5702887.
	if total.Cmp(big.NewInt(5702887)) != 0 {
		t.Fatalf("|V(Γ_32)| = %s, want 5702887", total)
	}
	src, err := r.UnrankInt(123456)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := r.UnrankInt(4444444)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := gfcube.NewWordRouter(gfcube.Ones(2)).Route(src, dst, 0)
	if !ok {
		t.Fatal("route failed")
	}
	if len(path)-1 != src.HammingDistance(dst) {
		t.Errorf("hops %d, Hamming %d", len(path)-1, src.HammingDistance(dst))
	}
	back, err := r.Rank(path[len(path)-1])
	if err != nil || back.Int64() != 4444444 {
		t.Errorf("final vertex ranks to %v", back)
	}
}

func TestIntegrationClassifyConstructVerify(t *testing.T) {
	// For every Table 1 factor: theory at d = 8, explicit check at d = 8,
	// and the Lemma 2.4 screen must tell one consistent story.
	for _, row := range gfcube.Table1() {
		f := row.Word()
		cube := gfcube.New(8, f)
		exact := cube.IsIsometric().Isometric
		if want := row.VerdictFor(8) == gfcube.Isometric; exact != want {
			t.Errorf("%s: exact %v, table %v", row.Factor, exact, want)
		}
		cl := gfcube.Classify(f, 8)
		if cl.Verdict != gfcube.Unknown && (cl.Verdict == gfcube.Isometric) != exact {
			t.Errorf("%s: classifier %v vs exact %v", row.Factor, cl.Verdict, exact)
		}
		_, hasCrit := cube.HasCriticalPair(3)
		if hasCrit == exact {
			t.Errorf("%s: screen and exact check disagree", row.Factor)
		}
	}
}
