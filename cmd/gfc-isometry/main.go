// Command gfc-isometry decides whether Q_d(f) is an isometric subgraph of
// Q_d: it reports the theoretical verdict (the paper's classification), runs
// the exact check on the explicitly built cube, and on a negative answer
// prints p-critical word witnesses (Lemma 2.4).
//
// Usage:
//
//	gfc-isometry -f FACTOR -d DIM [-witnesses N]
package main

import (
	"flag"
	"fmt"
	"log"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-isometry: ")
	factor := flag.String("f", "101", "forbidden factor (binary string)")
	dim := flag.Int("d", 4, "dimension")
	witnesses := flag.Int("witnesses", 3, "max critical pairs to print")
	flag.Parse()

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}

	cl := core.Classify(f, *dim)
	fmt.Printf("theory:   Q_%d(%s) %s  [%s]\n", *dim, f, cl.Verdict, cl.Reason)

	c := core.New(*dim, f)
	fmt.Printf("cube:     |V| = %d, |E| = %d\n", c.N(), c.M())
	res := c.IsIsometric()
	if res.Isometric {
		fmt.Printf("computed: isometric in Q_%d\n", *dim)
	} else {
		fmt.Printf("computed: NOT isometric in Q_%d\n", *dim)
		fmt.Printf("          witness pair %s -- %s: cube distance %d, Hamming distance %d\n",
			res.U, res.V, res.CubeDist, res.HammingDist)
	}
	if cl.Verdict != core.Unknown && (cl.Verdict == core.Isometric) != res.Isometric {
		log.Fatal("theory and computation DISAGREE - this is a bug")
	}

	if !res.Isometric && *witnesses > 0 {
		for p := 2; p <= 3; p++ {
			pairs := c.CriticalPairs(p, *witnesses)
			for _, pr := range pairs {
				fmt.Printf("%d-critical: %s -- %s\n", pr.P, pr.B, pr.C)
			}
			if len(pairs) > 0 {
				break
			}
		}
	}
}
