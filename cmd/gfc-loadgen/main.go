// Command gfc-loadgen drives synthetic load at a running gfc-serve
// instance and reports latency quantiles, throughput, and error rate as
// JSON. It is the measurement half of the service's micro-batching
// front: pointed at one (f, d) class with enough concurrency it shows
// batch coalescing directly (batch occupancy on /metrics, throughput in
// its own report), and in CI it acts as the SLO gate — `-slo
// slo-baseline.json` makes it exit nonzero when the measured quantiles
// breach the committed thresholds.
//
// Usage:
//
//	gfc-loadgen [-addr http://localhost:8080] [-duration 30s]
//	            [-concurrency 32] [-profile mixed] [-f 11] [-d 32]
//	            [-warmup 2s] [-waitready 10s] [-seed 1] [-slo file.json]
//
// Profiles:
//
//	mixed      rank 40% / unrank 25% / neighbors 15% / count 15% / route 5%
//	rank, unrank, neighbors, count, route
//	           single-endpoint load (100% of requests)
//	first      one sequential pass over every canonical factor class and
//	           dimension in [-first-maxlen, -first-maxd]: one /v1/rank and
//	           one /v1/isometric per cell, so every request is the FIRST
//	           for its (f, d). Measures restart cost: cold servers build
//	           each backend, warm servers (-warm-pack) load artifacts.
//
// The generator constructs valid f-free query words client-side (greedy
// suffix avoidance: appending a bit never completes f, because at most
// one of the two bit choices can), and learns |V(Q_d(f))| from /v1/count
// once at startup so unrank draws uniform ranks in range.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gfcube/internal/core"
	"gfcube/internal/service"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the gfc-serve instance")
	duration := flag.Duration("duration", 30*time.Second, "measured load duration")
	concurrency := flag.Int("concurrency", 32, "concurrent client workers")
	profile := flag.String("profile", "mixed", "endpoint mix: mixed|rank|unrank|neighbors|count|route")
	factor := flag.String("f", "11", "forbidden factor (all load targets one class)")
	dim := flag.Int("d", 32, "cube dimension")
	warmup := flag.Duration("warmup", 2*time.Second, "unmeasured warm-up period")
	waitReady := flag.Duration("waitready", 10*time.Second, "poll /healthz this long before starting (0 = don't)")
	seed := flag.Int64("seed", 1, "PRNG seed for the request stream")
	sloPath := flag.String("slo", "", "SLO baseline JSON; exit nonzero on breach")
	inprocess := flag.Bool("inprocess", false, "spin up the service in-process and drive its handler directly (no TCP): isolates the service stack from loopback/client noise on small machines")
	batchDisabled := flag.Bool("batch-disabled", false, "with -inprocess: serve requests on the unbatched per-request path")
	storeDir := flag.String("store-dir", "", "with -inprocess: artifact store directory for the service")
	warmPack := flag.String("warm-pack", "", "with -inprocess: warm-start pack directory for the service")
	storeDisabled := flag.Bool("store-disabled", false, "with -inprocess: force the service to pure compute")
	firstMaxLen := flag.Int("first-maxlen", 4, "first profile: largest factor length swept")
	firstMaxD := flag.Int("first-maxd", 10, "first profile: largest dimension swept")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gfc-loadgen: "+format+"\n", args...)
		os.Exit(1)
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}
	if *inprocess {
		srv, err := service.New(service.Config{
			Addr:          ":0",
			BatchDisabled: *batchDisabled,
			StoreDir:      *storeDir,
			WarmPack:      *warmPack,
			StoreDisabled: *storeDisabled,
		})
		if err != nil {
			fail("%v", err)
		}
		client = &http.Client{Transport: handlerTransport{h: srv.Handler()}}
		*addr = "http://inprocess"
		*waitReady = 0
	}

	if *waitReady > 0 {
		if err := awaitReady(client, *addr, *waitReady); err != nil {
			fail("%v", err)
		}
	}

	if *profile == "first" {
		start := time.Now()
		ws := runFirst(client, *addr, *firstMaxLen, *firstMaxD)
		report := buildReport(*addr, *profile, "grid", *firstMaxD, 1, time.Since(start), []*workerStats{ws})
		finish(report, *sloPath, fail)
		return
	}

	order, err := fetchOrder(client, *addr, *factor, *dim)
	if err != nil {
		fail("learning |V| from /v1/count: %v", err)
	}
	if order <= 0 {
		fail("Q_%d(%s) has no vertices; pick a different f/d", *dim, *factor)
	}

	mix, err := profileMix(*profile)
	if err != nil {
		fail("%v", err)
	}

	// Warm-up: populate the implicit-view cache and JIT the hot path so the
	// measured window reflects steady state.
	if *warmup > 0 {
		runLoad(client, *addr, *factor, *dim, order, mix, 4, *warmup, *seed+1)
	}

	start := time.Now()
	workers := runLoad(client, *addr, *factor, *dim, order, mix, *concurrency, *duration, *seed)
	elapsed := time.Since(start)

	report := buildReport(*addr, *profile, *factor, *dim, *concurrency, elapsed, workers)
	finish(report, *sloPath, fail)
}

// finish renders the report, applies the optional SLO gate, and exits
// nonzero on breach.
func finish(report Report, sloPath string, fail func(string, ...any)) {
	var breaches []string
	if sloPath != "" {
		slo, err := loadSLO(sloPath)
		if err != nil {
			fail("%v", err)
		}
		breaches = slo.check(&report)
		report.SLO = &SLOResult{Baseline: sloPath, Pass: len(breaches) == 0, Breaches: breaches}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fail("%v", err)
	}
	if len(breaches) > 0 {
		fail("SLO breach:\n  %s", strings.Join(breaches, "\n  "))
	}
}

// runFirst walks every canonical factor class with |f| <= maxLen and
// every d in [1, maxD], issuing exactly one /v1/rank and one
// /v1/isometric per cell — so every request is the first its server has
// seen for that (f, d) and pays the full backend resolution (build on a
// cold server, artifact load on a warm one). Sequential on purpose:
// first-request latency is the quantity, concurrency would let slow
// builds overlap and hide.
func runFirst(client *http.Client, addr string, maxLen, maxD int) *workerStats {
	ws := &workerStats{lat: make(map[string][]time.Duration), errors: make(map[string]int64)}
	r := rand.New(rand.NewSource(1)) // deterministic words: identical cold and warm streams
	get := func(op, url string) {
		t0 := time.Now()
		resp, err := client.Get(url)
		ok := err == nil
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
		ws.lat[op] = append(ws.lat[op], time.Since(t0))
		if !ok {
			ws.errors[op]++
		}
	}
	for _, cl := range core.Classes(1, maxLen) {
		f := cl.Rep.String()
		for d := 1; d <= maxD; d++ {
			get("rank", fmt.Sprintf("%s/v1/rank?f=%s&d=%d&w=%s", addr, f, d, randomWord(r, f, d)))
			get("isometric", fmt.Sprintf("%s/v1/isometric?f=%s&d=%d", addr, f, d))
		}
	}
	return ws
}

// handlerTransport satisfies http.RoundTripper by invoking an
// http.Handler directly — the -inprocess mode's "network".
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// awaitReady polls /healthz until it answers 200 or the window expires.
func awaitReady(client *http.Client, addr string, window time.Duration) error {
	deadline := time.Now().Add(window)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v", addr, window)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchOrder asks /v1/count for |V(Q_d(f))|. Ranks are decimal strings in
// the API; d <= 62 keeps them within int64.
func fetchOrder(client *http.Client, addr, f string, d int) (int64, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/count?f=%s&d=%d", addr, f, d))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("count returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var cr struct {
		V string `json:"v"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		return 0, err
	}
	return strconv.ParseInt(cr.V, 10, 64)
}

// opShare is one endpoint's share of the generated stream.
type opShare struct {
	name   string
	weight int
}

func profileMix(profile string) ([]opShare, error) {
	switch profile {
	case "mixed":
		return []opShare{
			{"rank", 40}, {"unrank", 25}, {"neighbors", 15}, {"count", 15}, {"route", 5},
		}, nil
	case "rank", "unrank", "neighbors", "count", "route":
		return []opShare{{profile, 1}}, nil
	}
	return nil, fmt.Errorf("unknown profile %q", profile)
}

// pick draws an operation from the mix.
func pick(r *rand.Rand, mix []opShare) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := r.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.name
		}
		n -= m.weight
	}
	return mix[len(mix)-1].name
}

// randomWord builds a uniform-ish f-free word of length d by greedy
// suffix avoidance: if the appended bit completes f as a suffix, the
// opposite bit cannot (f's last character is fixed), so flip it.
func randomWord(r *rand.Rand, f string, d int) string {
	b := make([]byte, 0, d)
	for len(b) < d {
		bit := byte('0' + r.Intn(2))
		b = append(b, bit)
		if len(b) >= len(f) && string(b[len(b)-len(f):]) == f {
			b[len(b)-1] ^= 1 // '0' <-> '1'
		}
	}
	return string(b)
}

// buildURL renders one request for op against the target class.
func buildURL(r *rand.Rand, addr, op, f string, d int, order int64) string {
	base := fmt.Sprintf("%s/v1/%s?f=%s&d=%d", addr, op, f, d)
	switch op {
	case "rank", "neighbors":
		return base + "&w=" + randomWord(r, f, d)
	case "unrank":
		return base + "&r=" + strconv.FormatInt(r.Int63n(order), 10)
	case "route":
		return base + "&router=word&src=" + randomWord(r, f, d) + "&dst=" + randomWord(r, f, d)
	default: // count
		return base
	}
}

// workerStats is one worker's flat sample log, merged after the run.
type workerStats struct {
	lat    map[string][]time.Duration
	errors map[string]int64
}

// runLoad fires workers at the target until the window closes and
// returns their per-endpoint latency logs.
func runLoad(client *http.Client, addr, f string, d int, order int64, mix []opShare, concurrency int, window time.Duration, seed int64) []*workerStats {
	var stop atomic.Bool
	time.AfterFunc(window, func() { stop.Store(true) })
	workers := make([]*workerStats, concurrency)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		ws := &workerStats{lat: make(map[string][]time.Duration), errors: make(map[string]int64)}
		workers[w] = ws
		wg.Add(1)
		go func(ws *workerStats, seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				op := pick(r, mix)
				url := buildURL(r, addr, op, f, d, order)
				t0 := time.Now()
				resp, err := client.Get(url)
				ok := err == nil
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
				ws.lat[op] = append(ws.lat[op], time.Since(t0))
				if !ok {
					ws.errors[op]++
				}
			}
		}(ws, seed+int64(w)*7919)
	}
	wg.Wait()
	return workers
}

// EndpointReport is the per-operation slice of the loadgen report.
type EndpointReport struct {
	Endpoint  string  `json:"endpoint"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"errorRate"`
	P50Ms     float64 `json:"p50Ms"`
	P99Ms     float64 `json:"p99Ms"`
	P999Ms    float64 `json:"p999Ms"`
	MaxMs     float64 `json:"maxMs"`
}

// Report is the loadgen's JSON output.
type Report struct {
	Target        string           `json:"target"`
	Profile       string           `json:"profile"`
	Factor        string           `json:"factor"`
	Dim           int              `json:"dim"`
	Concurrency   int              `json:"concurrency"`
	DurationSec   float64          `json:"durationSec"`
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	ErrorRate     float64          `json:"errorRate"`
	ThroughputRPS float64          `json:"throughputRps"`
	P50Ms         float64          `json:"p50Ms"`
	P99Ms         float64          `json:"p99Ms"`
	P999Ms        float64          `json:"p999Ms"`
	MaxMs         float64          `json:"maxMs"`
	Endpoints     []EndpointReport `json:"endpoints"`
	SLO           *SLOResult       `json:"slo,omitempty"`
}

// SLOResult reports the outcome of the -slo check.
type SLOResult struct {
	Baseline string   `json:"baseline"`
	Pass     bool     `json:"pass"`
	Breaches []string `json:"breaches,omitempty"`
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(q * float64(len(sorted)-1))
	return float64(sorted[k]) / 1e6
}

func buildReport(addr, profile, f string, d, concurrency int, elapsed time.Duration, workers []*workerStats) Report {
	byOp := make(map[string][]time.Duration)
	errsByOp := make(map[string]int64)
	for _, ws := range workers {
		for op, xs := range ws.lat {
			byOp[op] = append(byOp[op], xs...)
		}
		for op, n := range ws.errors {
			errsByOp[op] += n
		}
	}
	var all []time.Duration
	var totalErrs int64
	rep := Report{
		Target: addr, Profile: profile, Factor: f, Dim: d,
		Concurrency: concurrency, DurationSec: elapsed.Seconds(),
	}
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		xs := byOp[op]
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		all = append(all, xs...)
		totalErrs += errsByOp[op]
		rep.Endpoints = append(rep.Endpoints, EndpointReport{
			Endpoint:  "/v1/" + op,
			Requests:  int64(len(xs)),
			Errors:    errsByOp[op],
			ErrorRate: rate(errsByOp[op], int64(len(xs))),
			P50Ms:     quantileMs(xs, 0.50),
			P99Ms:     quantileMs(xs, 0.99),
			P999Ms:    quantileMs(xs, 0.999),
			MaxMs:     quantileMs(xs, 1.0),
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Requests = int64(len(all))
	rep.Errors = totalErrs
	rep.ErrorRate = rate(totalErrs, rep.Requests)
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	rep.P50Ms = quantileMs(all, 0.50)
	rep.P99Ms = quantileMs(all, 0.99)
	rep.P999Ms = quantileMs(all, 0.999)
	rep.MaxMs = quantileMs(all, 1.0)
	return rep
}

func rate(errs, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(errs) / float64(total)
}

// SLO is the committed baseline the CI gate enforces. Zero-valued fields
// are not checked.
type SLO struct {
	Description      string  `json:"description,omitempty"`
	MaxP50Ms         float64 `json:"max_p50_ms"`
	MaxP99Ms         float64 `json:"max_p99_ms"`
	MaxErrorRate     float64 `json:"max_error_rate"`
	MinThroughputRPS float64 `json:"min_throughput_rps"`
}

func loadSLO(path string) (*SLO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s SLO
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &s, nil
}

func (s *SLO) check(r *Report) []string {
	var breaches []string
	if s.MaxP50Ms > 0 && r.P50Ms > s.MaxP50Ms {
		breaches = append(breaches, fmt.Sprintf("p50 %.2fms > limit %.2fms", r.P50Ms, s.MaxP50Ms))
	}
	if s.MaxP99Ms > 0 && r.P99Ms > s.MaxP99Ms {
		breaches = append(breaches, fmt.Sprintf("p99 %.2fms > limit %.2fms", r.P99Ms, s.MaxP99Ms))
	}
	if s.MaxErrorRate > 0 && r.ErrorRate > s.MaxErrorRate {
		breaches = append(breaches, fmt.Sprintf("error rate %.4f > limit %.4f", r.ErrorRate, s.MaxErrorRate))
	}
	if s.MinThroughputRPS > 0 && r.ThroughputRPS < s.MinThroughputRPS {
		breaches = append(breaches, fmt.Sprintf("throughput %.1f rps < floor %.1f rps", r.ThroughputRPS, s.MinThroughputRPS))
	}
	return breaches
}
