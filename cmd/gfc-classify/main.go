// Command gfc-classify regenerates the paper's Table 1 (classification of
// embeddability of generalized Fibonacci cubes) and optionally extends it to
// longer forbidden factors, cross-checking the theory against exact
// computation on explicitly built cubes.
//
// Usage:
//
//	gfc-classify [-maxlen N] [-maxd D] [-verify]
//
// With -verify every theoretical verdict is recomputed exactly for
// dimensions up to -maxd; disagreements (there are none) would be flagged.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func main() {
	maxLen := flag.Int("maxlen", 5, "largest forbidden-factor length to classify")
	maxD := flag.Int("maxd", 9, "largest dimension for exact verification")
	verify := flag.Bool("verify", true, "recompute every verdict exactly up to -maxd")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "len\tfactor\tisometric for\tsource\tverified")
	defer w.Flush()

	for length := 1; length <= *maxLen; length++ {
		for _, f := range bitstr.CanonicalOfLen(length) {
			display := f
			if row, ok := core.Table1Lookup(f); ok {
				// Print the representative as it appears in the paper.
				display = row.Word()
			}
			rangeDesc, source := describe(f, *maxD)
			verdict := "-"
			if *verify {
				verdict = verifyRow(f, *maxD)
			}
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\n", length, display, rangeDesc, source, verdict)
		}
	}
}

// describe summarizes for which d the factor yields an isometric subgraph,
// according to the theory (or Table 1 for |f| <= 5).
func describe(f bitstr.Word, maxD int) (string, string) {
	if row, ok := core.Table1Lookup(f); ok {
		if row.UpTo == core.AllD {
			return "all d", row.Citation
		}
		return fmt.Sprintf("d <= %d", row.UpTo), row.Citation
	}
	// Longer factors: scan the theory for a threshold pattern.
	lastIso, firstNon := 0, -1
	unknown := false
	source := ""
	for d := 1; d <= maxD+6; d++ {
		cl := core.Classify(f, d)
		switch cl.Verdict {
		case core.Isometric:
			lastIso = d
			if source == "" && d > f.Len() {
				source = cl.Reason
			}
		case core.NotIsometric:
			if firstNon == -1 {
				firstNon = d
				source = cl.Reason
			}
		case core.Unknown:
			unknown = true
		}
	}
	switch {
	case firstNon == -1 && !unknown:
		return "all d", source
	case unknown:
		return fmt.Sprintf("d <= %d known; gaps open", lastIso), source
	default:
		return fmt.Sprintf("d <= %d", firstNon-1), source
	}
}

// verifyRow recomputes the verdict exactly for d = 1..maxD and reports
// "ok(d<=maxD)" or the first disagreement.
func verifyRow(f bitstr.Word, maxD int) string {
	for d := 1; d <= maxD; d++ {
		cl := core.Classify(f, d)
		if cl.Verdict == core.Unknown {
			continue
		}
		res := core.New(d, f).IsIsometric()
		if res.Isometric != (cl.Verdict == core.Isometric) {
			return fmt.Sprintf("MISMATCH at d=%d", d)
		}
	}
	return fmt.Sprintf("ok (d<=%d)", maxD)
}
