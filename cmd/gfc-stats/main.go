// Command gfc-stats prints the exact order, size and number of squares of
// Q_d(f) for a range of dimensions, regenerating the enumeration results of
// Section 6 of the paper. For f = 110 and f = 111 it also cross-checks the
// paper's recurrences (1)-(6) and the closed forms of Propositions 6.2/6.3.
//
// Usage:
//
//	gfc-stats [-f FACTOR] [-maxd D] [-wiener]
//
// With -wiener, an exact Wiener index column is added: the true sum of
// shortest-path distances of Q_d(f) from a full MS-BFS sweep of the
// explicit graph, cross-checked against the Hamming-distance sum (the two
// agree exactly when Q_d(f) is isometric in Q_d). Exact sweeps build the
// cube, so -maxd is capped at the explicit construction limit in this
// mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-stats: ")
	factor := flag.String("f", "110", "forbidden factor (binary string)")
	maxD := flag.Int("maxd", 20, "largest dimension")
	wiener := flag.Bool("wiener", false, "add exact BFS Wiener index vs Hamming sum (builds each cube)")
	flag.Parse()
	if *wiener && *maxD > core.MaxBuildDim {
		log.Printf("capping -maxd to %d: -wiener builds each cube explicitly", core.MaxBuildDim)
		*maxD = core.MaxBuildDim
	}

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}

	seq := core.CountSeq(*maxD, f)
	var rec []core.BigCounts
	recName := ""
	switch *factor {
	case "110":
		rec = core.RecurrenceQ110(*maxD)
		recName = "recurrences (4)-(6) + Props 6.2/6.3"
	case "111":
		rec = core.RecurrenceQ111(*maxD)
		recName = "recurrences (1)-(3)"
	}

	// One scratch across the d-loop: the factor DFA and the
	// enumeration/edge arenas are reused for every cube of the column.
	scratch := core.NewScratch()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	if *wiener {
		fmt.Fprintf(w, "d\t|V|\t|E|\t|S|\tmean Hamming dist\tcross-check\tWiener (exact)\tWiener (Hamming)\tisom?\t\n")
	} else {
		fmt.Fprintf(w, "d\t|V|\t|E|\t|S|\tmean Hamming dist\tcross-check\t\n")
	}
	for d := 0; d <= *maxD; d++ {
		check := "-"
		if rec != nil {
			if rec[d].V.Cmp(seq[d].V) == 0 && rec[d].E.Cmp(seq[d].E) == 0 && rec[d].S.Cmp(seq[d].S) == 0 {
				check = "ok"
			} else {
				check = "MISMATCH"
			}
		}
		if *factor == "110" {
			cf := core.ClosedFormsQ110(d)
			if cf.V.Cmp(seq[d].V) != 0 || cf.E.Cmp(seq[d].E) != 0 || cf.S.Cmp(seq[d].S) != 0 {
				check = "CLOSED-FORM MISMATCH"
			}
		}
		mean, _ := core.MeanHammingDistance(d, f).Float64()
		if *wiener {
			exact, connected := scratch.WienerExact(scratch.Cube(context.Background(), d, f))
			ham := core.WienerHamming(d, f)
			verdict := "="
			switch {
			case !connected:
				verdict = "disconnected"
			case exact.Cmp(ham) != 0:
				verdict = "> Hamming"
			}
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%.4f\t%s\t%s\t%s\t%s\t\n",
				d, seq[d].V, seq[d].E, seq[d].S, mean, check, exact, ham, verdict)
		} else {
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%.4f\t%s\t\n", d, seq[d].V, seq[d].E, seq[d].S, mean, check)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if recName != "" {
		fmt.Printf("\ncross-check column: transfer-matrix DP vs %s\n", recName)
	}
	fmt.Println("mean Hamming dist equals the mean shortest-path distance exactly when Q_d(f) is isometric in Q_d")
	if *wiener {
		fmt.Println("Wiener (exact) is the BFS shortest-path sum; '=' marks cells where it equals the Hamming sum")
	}
}
