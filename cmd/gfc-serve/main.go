// Command gfc-serve runs the generalized-Fibonacci-cube query service: an
// HTTP JSON API over the library's expensive computations (exact counting,
// classification, isometry checks, f-dimension, routing, traffic simulation,
// broadcast, Hamiltonian search) behind a sharded LRU cache with
// singleflight deduplication and a bounded worker pool.
//
// Usage:
//
//	gfc-serve [-addr :8080] [-workers N] [-timeout 30s] [-cache 256]
//	          [-maxdim 20] [-maxcountdim 100000]
//	          [-batch-size 32] [-batch-wait 500µs] [-batch-queue 128]
//	          [-batch-disabled]
//	          [-store-dir DIR] [-warm-pack DIR] [-store-max-bytes N]
//	          [-store-disabled]
//	          [-fabric-disabled] [-fabric-workers 1] [-fabric-max-leases 16]
//	          [-fabric-cell-delay 0]
//
// The hot query endpoints (count, rank, unrank, neighbors, word-mode
// route) sit behind a micro-batching front: concurrent requests for the
// same (f, d) lane are coalesced into one backend invocation. Tune with
// the -batch-* flags or turn it off with -batch-disabled.
//
// With -store-dir the expensive backends (explicit cube adjacency, DFA
// ranker tables) persist as content-addressed artifacts: restarts load
// them zero-copy via mmap instead of rebuilding. -warm-pack additionally
// mounts a read-only pack built by gfc-pack, preloading its precomputed
// verdicts at startup. Corrupt artifacts always fall back to compute.
//
// The server also runs in fabric worker mode by default: a gfc-sweepd
// coordinator can lease sweep-grid shards to it over the /v1/fabric
// endpoints (POST/DELETE /v1/fabric/lease, GET /v1/fabric/report) and the
// leased cells compute through the same artifact-store provider as
// interactive traffic. Disable with -fabric-disabled; -fabric-cell-delay
// exists for fault-injection tests (the fabric-gate CI job stretches a
// small grid long enough to kill processes mid-sweep).
//
// Endpoints (all GET unless noted, JSON responses; see internal/README.md
// for details):
//
//	/healthz                          liveness probe
//	/stats                            cache / worker-pool / batcher / store metrics
//	/metrics                          Prometheus text exposition
//	/v1/count?f=11&d=100              exact |V|, |E|, |S| of Q_d(f)
//	/v1/classify?f=1100&d=9           paper classification + Table 1 row
//	/v1/isometric?f=101&d=6           exact embeddability with witness
//	/v1/fdim?f=11&graph=cycle&n=6     f-dimension of a guest graph
//	/v1/route?f=11&d=8&src=..&dst=..  routed walk (word|greedy|oracle|deroute)
//	/v1/simulate?f=11&d=8             store-and-forward traffic simulation
//	/v1/broadcast?f=11&d=8&root=..    one-to-all BFS-tree broadcast
//	/v1/hamilton?f=11&d=8             bounded Hamiltonian path/cycle search
//	/v1/fabric/lease (POST/DELETE)    grant, renew or revoke a sweep-shard lease
//	/v1/fabric/report                 fetch completed lease cells by cursor
//	/v1/admin/store                   artifact-store inventory and counters
//	/v1/admin/warm (POST)             preload backends from the store/pack
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gfcube/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent heavy jobs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-job compute deadline")
	cache := flag.Int("cache", 256, "result-cache capacity per shard")
	maxDim := flag.Int("maxdim", 20, "largest d for explicit cube construction")
	maxCountDim := flag.Int("maxcountdim", 100000, "largest d for the counting DP")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown drain period")
	batchSize := flag.Int("batch-size", 0, "max requests coalesced per backend call (0 = default 32)")
	batchWait := flag.Duration("batch-wait", 0, "batch window: how long the first request waits for followers (0 = default 500µs)")
	batchQueue := flag.Int("batch-queue", 0, "queued requests per lane before shedding (0 = default 4×batch-size)")
	batchDisabled := flag.Bool("batch-disabled", false, "serve every query request individually (no coalescing)")
	storeDir := flag.String("store-dir", "", "artifact store directory: load precomputed backends, write back misses")
	warmPack := flag.String("warm-pack", "", "read-only warm-start pack directory built by gfc-pack")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "store directory size cap in bytes (0 = uncapped)")
	storeDisabled := flag.Bool("store-disabled", false, "force pure-compute operation even with -store-dir/-warm-pack")
	fabricDisabled := flag.Bool("fabric-disabled", false, "turn off fabric worker mode (/v1/fabric endpoints answer 404)")
	fabricWorkers := flag.Int("fabric-workers", 0, "sweep workers per fabric lease (0 = default 1)")
	fabricMaxLeases := flag.Int("fabric-max-leases", 0, "concurrently live fabric leases (0 = default 16)")
	fabricCellDelay := flag.Duration("fabric-cell-delay", 0, "fault-injection pause before each leased cell (tests only)")
	flag.Parse()

	srv, err := service.New(service.Config{
		Addr:          *addr,
		Workers:       *workers,
		JobTimeout:    *timeout,
		CacheCapacity: *cache,
		MaxBuildDim:   *maxDim,
		MaxCountDim:   *maxCountDim,
		Batch: service.BatcherConfig{
			BatchSize:  *batchSize,
			MaxWait:    *batchWait,
			QueueLimit: *batchQueue,
		},
		BatchDisabled:   *batchDisabled,
		StoreDir:        *storeDir,
		WarmPack:        *warmPack,
		StoreMaxBytes:   *storeMaxBytes,
		StoreDisabled:   *storeDisabled,
		FabricDisabled:  *fabricDisabled,
		FabricWorkers:   *fabricWorkers,
		FabricMaxLeases: *fabricMaxLeases,
		FabricCellDelay: *fabricCellDelay,
	})
	if err != nil {
		log.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("received %v, draining for up to %v", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("bye")
	}
}
