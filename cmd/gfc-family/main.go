// Command gfc-family characterizes the ICPP'93 family Q_d(1^s) - the
// original "generalized Fibonacci cubes" of order s - as interconnection
// topologies: order (the s-bonacci numbers), size, degree range, diameter,
// average distance, Hamiltonian-path existence, and the largest hypercube
// hosted isometrically.
//
// Usage:
//
//	gfc-family [-s ORDER] [-maxd D]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/hamilton"
	"gfcube/internal/isometry"
	"gfcube/internal/network"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-family: ")
	s := flag.Int("s", 2, "order of the family (forbidden factor 1^s)")
	maxD := flag.Int("maxd", 10, "largest dimension")
	flag.Parse()
	if *s < 1 {
		log.Fatal("order must be at least 1")
	}
	f := bitstr.Ones(*s)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "d\t|V|\t|E|\tdeg\tdiam\tavg dist\tham path\tmax subcube")
	for d := 1; d <= *maxD; d++ {
		c := core.New(d, f)
		n := network.New(c)
		m := n.Metrics()
		_, ham := hamilton.Path(c.Graph(), 0)
		sub := "-"
		if d <= 8 {
			sub = fmt.Sprintf("Q_%d", isometry.LargestHypercube(c, d))
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t[%d,%d]\t%d\t%.3f\t%s\t%s\n",
			d, m.Nodes, m.Links, m.MinDegree, m.MaxDegree, m.Diameter, m.AvgDistance, ham, sub)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ_d(1^%d): vertices are the d-digit strings without %d consecutive 1s;\n", *s, *s)
	fmt.Printf("orders follow the %d-bonacci recurrence (Proposition 3.1: isometric for every d)\n", *s)
}
