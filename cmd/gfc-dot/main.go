// Command gfc-dot emits Q_d(f) in Graphviz DOT format with vertices labelled
// by their binary strings, regenerating the paper's Figure 1 (Q_4(101)) and
// Figure 2 (Q_5(11) vs Q_4(110)).
//
// Usage:
//
//	gfc-dot -f FACTOR -d DIM > out.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-dot: ")
	factor := flag.String("f", "101", "forbidden factor (binary string)")
	dim := flag.Int("d", 4, "dimension")
	flag.Parse()

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}
	c := core.New(*dim, f)
	name := fmt.Sprintf("Q_%d(%s)", *dim, f)
	if err := c.Graph().WriteDOT(os.Stdout, name, func(v int) string { return c.Word(v).String() }); err != nil {
		log.Fatal(err)
	}
}
