// Command gfc-hamilton searches for Hamiltonian paths and cycles in Q_d(f),
// reproducing the "generalized Fibonacci cubes are mostly Hamiltonian"
// companion claims for the Q_d(1^s) family (reference [15] of the paper).
//
// Usage:
//
//	gfc-hamilton [-f FACTOR] [-d DIM] [-cycle] [-budget N]
package main

import (
	"flag"
	"fmt"
	"log"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/hamilton"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-hamilton: ")
	factor := flag.String("f", "11", "forbidden factor (binary string)")
	dim := flag.Int("d", 8, "dimension")
	cycle := flag.Bool("cycle", false, "search for a cycle instead of a path")
	budget := flag.Int64("budget", 0, "backtracking budget (0 = default)")
	flag.Parse()

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}
	c := core.New(*dim, f)
	kind := "path"
	search := hamilton.Path
	if *cycle {
		kind, search = "cycle", hamilton.Cycle
	}
	order, res := search(c.Graph(), *budget)
	fmt.Printf("Q_%d(%s): |V| = %d, Hamiltonian %s: %s\n", *dim, f, c.N(), kind, res)
	if res != hamilton.Found {
		return
	}
	if !hamilton.Verify(c.Graph(), order, *cycle) {
		log.Fatal("returned order failed verification - this is a bug")
	}
	for i, v := range order {
		sep := " "
		if (i+1)%8 == 0 {
			sep = "\n"
		}
		fmt.Printf("%s%s", c.Word(int(v)), sep)
	}
	fmt.Println()
}
