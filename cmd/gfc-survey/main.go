// Command gfc-survey extends the paper's Table 1 beyond length 5: for every
// complement/reversal class of forbidden factors of a given length it
// computes the first dimension at which Q_d(f) stops being an isometric
// subgraph of Q_d (or reports "good" if none is found up to -maxd). The
// histogram of first failures addresses the density questions behind the
// paper's concluding conjectures.
//
// Usage:
//
//	gfc-survey [-len L] [-maxd D] [-method exact|screen]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-survey: ")
	length := flag.Int("len", 6, "forbidden-factor length to survey")
	maxD := flag.Int("maxd", 11, "largest dimension to test")
	method := flag.String("method", "exact", "exact (BFS) or screen (2/3-critical words)")
	flag.Parse()
	if *length < 1 || *length > 10 {
		log.Fatalf("length %d out of range [1,10]", *length)
	}

	check := func(d int, f bitstr.Word) bool {
		c := core.New(d, f)
		if *method == "screen" {
			_, found := c.HasCriticalPair(3)
			return !found
		}
		return c.IsIsometric().Isometric
	}

	type row struct {
		factor    bitstr.Word
		firstFail int // 0 = good up to maxD
		theory    string
	}
	var rows []row
	good := 0
	for _, f := range bitstr.CanonicalOfLen(*length) {
		r := row{factor: f}
		for d := f.Len() + 1; d <= *maxD; d++ {
			if !check(d, f) {
				r.firstFail = d
				break
			}
		}
		if cl := core.Classify(f, *maxD); cl.Verdict != core.Unknown {
			r.theory = cl.Reason
		} else {
			r.theory = "-"
		}
		if r.firstFail == 0 {
			good++
		}
		rows = append(rows, r)
	}

	sort.Slice(rows, func(i, j int) bool {
		fi, fj := rows[i].firstFail, rows[j].firstFail
		if fi == 0 {
			fi = 1 << 30
		}
		if fj == 0 {
			fj = 1 << 30
		}
		if fi != fj {
			return fi < fj
		}
		return rows[i].factor.Less(rows[j].factor)
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "factor\tfirst non-isometric d\ttheory")
	hist := map[int]int{}
	for _, r := range rows {
		ff := "good (all d <= maxd)"
		if r.firstFail > 0 {
			ff = fmt.Sprintf("%d", r.firstFail)
		}
		hist[r.firstFail]++
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.factor, ff, r.theory)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nclasses of length %d: %d; good up to d=%d: %d (%.1f%%)\n",
		*length, len(rows), *maxD, good, 100*float64(good)/float64(len(rows)))
	var keys []int
	for k := range hist {
		if k > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	fmt.Print("first-failure histogram:")
	for _, k := range keys {
		fmt.Printf("  d=%d:%d", k, hist[k])
	}
	fmt.Println()
}
