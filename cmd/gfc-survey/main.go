// Command gfc-survey extends the paper's Table 1 beyond length 5: for every
// complement/reversal class of forbidden factors of a given length it
// computes the first dimension at which Q_d(f) stops being an isometric
// subgraph of Q_d (or reports "good" if none is found up to -maxd). The
// histogram of first failures addresses the density questions behind the
// paper's concluding conjectures.
//
// The census runs on the sweep engine: one task per factor class, fanned
// across -parallel workers with per-worker scratch buffers, deterministic
// result ordering and live progress reporting.
//
// Usage:
//
//	gfc-survey [-len L] [-minlen L0] [-maxd D] [-method exact|screen|quick]
//	           [-parallel N] [-json] [-progress] [-store-dir DIR]
//	           [-resume LEDGER] [-iso]
//
// With -iso the in-process sweep decides each scan once per verified
// iso-congruence group and fans the verdict out to the member classes
// (docs/iso-classes.md); the rendered rows are byte-identical to a plain
// run. Fabric runs (-resume) always schedule iso-affine shards and
// ignore the flag.
//
// With -resume the census runs through the sweep fabric into an
// append-only hash-chained ledger at the given path (created when
// missing): every finished class is durable immediately, and re-running
// the same command after a crash or Ctrl-C recomputes only the classes
// the ledger does not hold. The rendered output is identical either way.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"text/tabwriter"

	"gfcube/internal/core"
	"gfcube/internal/fabric"
	"gfcube/internal/store"
	"gfcube/internal/sweep"
)

// row is one output line; the JSON shape matches the /v1/sweep/survey
// endpoint rows.
type row struct {
	Factor    string `json:"factor"`
	ClassSize int    `json:"classSize"`
	FirstFail int    `json:"firstFail"` // 0 = good up to maxd
	Theory    string `json:"theory"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-survey: ")
	length := flag.Int("len", 6, "largest forbidden-factor length to survey")
	minLen := flag.Int("minlen", 0, "smallest factor length (default: same as -len)")
	maxD := flag.Int("maxd", 11, "largest dimension to test")
	methodName := flag.String("method", "exact", "cell decision: exact (BFS), screen (2/3-critical words) or quick (screen + exact confirmation)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep workers")
	jsonOut := flag.Bool("json", false, "emit rows as a JSON array instead of a table")
	progress := flag.Bool("progress", false, "report per-class progress on stderr")
	storeDir := flag.String("store-dir", "", "artifact store directory: load precomputed cubes and write back misses")
	resume := flag.String("resume", "", "run through the sweep fabric into this ledger, resuming it if it exists")
	isoDedup := flag.Bool("iso", false, "decide once per iso-congruence group and fan out (in-process sweep only)")
	flag.Parse()
	if *length < 1 || *length > 10 {
		log.Fatalf("length %d out of range [1,10]", *length)
	}
	if *minLen == 0 {
		*minLen = *length
	}
	if *minLen < 1 || *minLen > *length {
		log.Fatalf("minlen %d out of range [1,%d]", *minLen, *length)
	}
	if *maxD <= *length {
		log.Fatalf("maxd %d must exceed the factor length %d", *maxD, *length)
	}
	method, err := core.ParseMethod(*methodName)
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels the sweep cooperatively: in-flight classes finish,
	// pending ones are abandoned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := sweep.Options{Workers: *parallel, IsoDedup: *isoDedup}
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		opts.Provider = store.NewProvider(st)
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rclasses %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var rows []row
	if *resume != "" {
		rows, err = fabricSurvey(ctx, *resume, *minLen, *length, *maxD, method, *parallel, opts.Provider, *progress)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		spec := sweep.GridSpec{MinLen: *minLen, MaxLen: *length, MaxD: *maxD, Method: method}
		surveyed, err := sweep.Survey(ctx, spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range surveyed {
			rows = append(rows, row{
				Factor:    r.Class.Rep.String(),
				ClassSize: r.Class.Size,
				FirstFail: r.FirstFail,
				Theory:    r.Theory,
			})
		}
	}
	good := 0
	for _, r := range rows {
		if r.FirstFail == 0 {
			good++
		}
	}
	// Failing classes first (earliest failure first), good classes last;
	// ties stay in grid (factor) order.
	sort.SliceStable(rows, func(i, j int) bool {
		fi, fj := rows[i].FirstFail, rows[j].FirstFail
		if fi == 0 {
			fi = 1 << 30
		}
		if fj == 0 {
			fj = 1 << 30
		}
		return fi < fj
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "factor\tfirst non-isometric d\ttheory")
	hist := map[int]int{}
	for _, r := range rows {
		ff := "good (all d <= maxd)"
		if r.FirstFail > 0 {
			ff = fmt.Sprintf("%d", r.FirstFail)
		}
		hist[r.FirstFail]++
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Factor, ff, r.Theory)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nclasses of length %d..%d: %d; good up to d=%d: %d (%.1f%%)\n",
		*minLen, *length, len(rows), *maxD, good, 100*float64(good)/float64(len(rows)))
	var keys []int
	for k := range hist {
		if k > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	fmt.Print("first-failure histogram:")
	for _, k := range keys {
		fmt.Printf("  d=%d:%d", k, hist[k])
	}
	fmt.Println()
}

// fabricSurvey runs (or resumes) the census through the sweep fabric:
// one ledger cell per class, durable as soon as it is computed. The
// ledger at path is created when missing and must carry the same grid
// bounds when it exists.
func fabricSurvey(ctx context.Context, path string, minLen, maxLen, maxD int, method core.Method, parallel int, provider core.Provider, progress bool) ([]row, error) {
	sp, err := fabric.Spec{
		Op: fabric.OpSurvey, MinLen: minLen, MaxLen: maxLen,
		MinD: 1, MaxD: maxD, Method: method.String(),
	}.Normalize()
	if err != nil {
		return nil, err
	}
	l, err := fabric.OpenLedger(path, &sp)
	if errors.Is(err, fs.ErrNotExist) {
		l, err = fabric.CreateLedger(path, sp)
	}
	if err != nil {
		return nil, err
	}
	defer l.Close()
	if n := len(l.Records()); n > 0 {
		fmt.Fprintf(os.Stderr, "resuming: %d/%d classes already in %s\n", n, len(sp.Cells()), path)
	}

	if parallel < 1 {
		parallel = 1
	}
	var workers []fabric.Worker
	for i := 0; i < parallel; i++ {
		h := fabric.NewHost(fabric.HostConfig{Provider: provider})
		defer h.Close()
		workers = append(workers, fabric.NewLocalWorker(fmt.Sprintf("local%d", i), h))
	}
	opts := fabric.Options{Workers: workers}
	if progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rclasses %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	co, err := fabric.NewCoordinator(sp, l, opts)
	if err != nil {
		return nil, err
	}
	if err := co.Run(ctx); err != nil {
		return nil, fmt.Errorf("%w (finished classes are saved; rerun to resume)", err)
	}

	// Ledger records are in completion order; restore grid order (the
	// non-fabric path's natural order) by cell index before the display
	// sort.
	recs := append([]fabric.Record(nil), l.Records()...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].I < recs[j].I })
	rows := make([]row, 0, len(recs))
	for _, rec := range recs {
		var v fabric.SurveyValue
		if err := json.Unmarshal(rec.V, &v); err != nil {
			return nil, err
		}
		rows = append(rows, row{Factor: rec.F, ClassSize: rec.ClassSize, FirstFail: v.FirstFail, Theory: v.Theory})
	}
	return rows, nil
}
