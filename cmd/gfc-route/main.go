// Command gfc-route evaluates Q_d(f) as an interconnection network (the
// ICPP'93 setting): static topology metrics, routing under uniform and
// permutation traffic with the greedy bit-fixing and shortest-path oracle
// routers, one-to-all broadcast, and random-fault tolerance.
//
// When endpoints are given (-src/-dst words or -srcrank/-dstrank
// addresses), or when -d exceeds the explicit-construction ceiling, the
// command switches to the implicit DFA-rank backend and prints a single
// rank-addressed route trace instead: every hop is decided by local factor
// tests and every address translated in O(d) table lookups, so routes on
// Q_62(11) — about 10^13 nodes — print instantly with no construction.
//
// Usage:
//
//	gfc-route [-f FACTOR] [-d DIM] [-packets N] [-faults K] [-trials T] [-seed S]
//	gfc-route [-f FACTOR] [-d DIM] [-src WORD] [-dst WORD]
//	gfc-route [-f FACTOR] [-d DIM] [-srcrank R1] [-dstrank R2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/network"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-route: ")
	factor := flag.String("f", "11", "forbidden factor (binary string)")
	dim := flag.Int("d", 10, "dimension")
	packets := flag.Int("packets", 512, "packets for uniform traffic")
	faults := flag.Int("faults", 3, "random node faults per trial")
	trials := flag.Int("trials", 25, "fault trials")
	seed := flag.Int64("seed", 42, "workload seed")
	srcWord := flag.String("src", "", "route source word (implicit single-route mode)")
	dstWord := flag.String("dst", "", "route destination word (implicit single-route mode)")
	srcRank := flag.Int64("srcrank", -1, "route source rank (implicit single-route mode)")
	dstRank := flag.Int64("dstrank", -1, "route destination rank (implicit single-route mode)")
	flag.Parse()

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}

	singleRoute := *srcWord != "" || *dstWord != "" || *srcRank >= 0 || *dstRank >= 0
	if singleRoute || *dim > core.MaxBuildDim {
		routeImplicit(f, *dim, *srcWord, *dstWord, *srcRank, *dstRank)
		return
	}

	n := network.New(core.New(*dim, f))
	fmt.Printf("network Q_%d(%s): %s\n\n", *dim, f, n.Metrics())

	greedy := network.NewGreedyRouter(n)
	oracle := network.NewOracleRouter(n)
	uniform := n.UniformPairs(*packets, *seed)
	perm := n.PermutationPairs(*seed)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\trouter\tsuccess\tavg stretch\tmax hops")
	for _, row := range []struct {
		name  string
		pairs [][2]int
		r     network.Router
	}{
		{"uniform", uniform, greedy},
		{"uniform", uniform, oracle},
		{"permutation", perm, greedy},
		{"permutation", perm, oracle},
	} {
		st := n.EvaluateRouting(row.r, row.pairs)
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%d\n",
			row.name, row.r.Name(), st.SuccessRate(), st.AvgStretch(), st.MaxHops)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	sim := n.Simulate(network.MakePackets(perm), oracle, network.SimConfig{})
	fmt.Printf("\nsynchronous permutation run (oracle): %s\n", sim)

	bc := n.Broadcast(0)
	fmt.Printf("broadcast from node 0: rounds=%d messages=%d reached=%d/%d\n",
		bc.Rounds, bc.Messages, bc.Reached, n.Size())

	fs := n.RandomFaults(*faults, *trials, *seed)
	fmt.Printf("faults: kill=%d trials=%d connected=%d/%d mean_routable=%.4f worst=%.4f\n",
		fs.Killed, fs.Trials, fs.ConnectedTrials, fs.Trials, fs.MeanRoutable, fs.WorstRoutable)
	fmt.Printf("single-node articulation-free fraction: %.4f\n", n.ArticulationFreeFraction())
}

// routeImplicit resolves the endpoints against the implicit backend and
// prints one rank-addressed route trace.
func routeImplicit(f bitstr.Word, d int, srcWord, dstWord string, srcRank, dstRank int64) {
	if d < 1 || d > bitstr.MaxLen {
		log.Fatalf("implicit routing needs 1 <= d <= %d, got %d", bitstr.MaxLen, d)
	}
	im := core.NewImplicit(d, f)
	order := im.Order()
	fmt.Printf("implicit Q_%d(%s): %d nodes, DFA-rank addressed, no construction\n", d, f, order)
	if order == 0 {
		log.Fatal("the cube has no vertices")
	}

	// Endpoint resolution: explicit words win, then ranks, then defaults
	// spread across the address space.
	resolve := func(name, word string, rank, def int64) bitstr.Word {
		if word != "" {
			w, err := bitstr.Parse(word)
			if err != nil {
				log.Fatalf("invalid %s word %q: %v", name, word, err)
			}
			if !im.Contains(w) {
				log.Fatalf("%s=%s is not a vertex of Q_%d(%s)", name, word, d, f)
			}
			return w
		}
		if rank < 0 {
			rank = def
		}
		w, ok := im.UnrankWord(rank)
		if !ok {
			log.Fatalf("%s rank %d out of range [0, %d)", name, rank, order)
		}
		return w
	}
	// order/7*5, not 5*order/7: orders approach 2^62, so the product
	// first would overflow int64.
	src := resolve("src", srcWord, srcRank, order/7)
	dst := resolve("dst", dstWord, dstRank, order/7*5)

	router := network.NewViewRouter(im)
	hops, ok := router.RouteWords(src, dst, 0)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "hop\trank\tword")
	for i, h := range hops {
		fmt.Fprintf(w, "%d\t%d\t%s\n", i, h.Rank, h.Word)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("routing failed (non-isometric instance or hop budget exceeded)")
	}
	hd := src.HammingDistance(dst)
	fmt.Printf("delivered in %d hops (Hamming distance %d, stretch %.3f)\n",
		len(hops)-1, hd, float64(len(hops)-1)/float64(max(hd, 1)))
}
