// Command gfc-route evaluates Q_d(f) as an interconnection network (the
// ICPP'93 setting): static topology metrics, routing under uniform and
// permutation traffic with the greedy bit-fixing and shortest-path oracle
// routers, one-to-all broadcast, and random-fault tolerance.
//
// Usage:
//
//	gfc-route [-f FACTOR] [-d DIM] [-packets N] [-faults K] [-trials T] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/network"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-route: ")
	factor := flag.String("f", "11", "forbidden factor (binary string)")
	dim := flag.Int("d", 10, "dimension")
	packets := flag.Int("packets", 512, "packets for uniform traffic")
	faults := flag.Int("faults", 3, "random node faults per trial")
	trials := flag.Int("trials", 25, "fault trials")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}

	n := network.New(core.New(*dim, f))
	fmt.Printf("network Q_%d(%s): %s\n\n", *dim, f, n.Metrics())

	greedy := network.NewGreedyRouter(n)
	oracle := network.NewOracleRouter(n)
	uniform := n.UniformPairs(*packets, *seed)
	perm := n.PermutationPairs(*seed)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\trouter\tsuccess\tavg stretch\tmax hops")
	for _, row := range []struct {
		name  string
		pairs [][2]int
		r     network.Router
	}{
		{"uniform", uniform, greedy},
		{"uniform", uniform, oracle},
		{"permutation", perm, greedy},
		{"permutation", perm, oracle},
	} {
		st := n.EvaluateRouting(row.r, row.pairs)
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%d\n",
			row.name, row.r.Name(), st.SuccessRate(), st.AvgStretch(), st.MaxHops)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	sim := n.Simulate(network.MakePackets(perm), oracle, network.SimConfig{})
	fmt.Printf("\nsynchronous permutation run (oracle): %s\n", sim)

	bc := n.Broadcast(0)
	fmt.Printf("broadcast from node 0: rounds=%d messages=%d reached=%d/%d\n",
		bc.Rounds, bc.Messages, bc.Reached, n.Size())

	fs := n.RandomFaults(*faults, *trials, *seed)
	fmt.Printf("faults: kill=%d trials=%d connected=%d/%d mean_routable=%.4f worst=%.4f\n",
		fs.Killed, fs.Trials, fs.ConnectedTrials, fs.Trials, fs.MeanRoutable, fs.WorstRoutable)
	fmt.Printf("single-node articulation-free fraction: %.4f\n", n.ArticulationFreeFraction())
}
