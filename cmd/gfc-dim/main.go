// Command gfc-dim computes graph dimensions from Section 7 of the paper:
// the isometric dimension idim(G) (number of Θ*-classes, Winkler machinery)
// and the f-dimension dim_f(G) (smallest d with G isometric in Q_d(f)) for
// the standard guest families, verifying the Proposition 7.1 bounds
// idim(G) <= dim_f(G) <= 3 idim(G) - 2.
//
// Usage:
//
//	gfc-dim [-f FACTOR] [-guest path|cycle|star|grid] [-n N] [-m M]
package main

import (
	"flag"
	"fmt"
	"log"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
	"gfcube/internal/isometry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-dim: ")
	factor := flag.String("f", "11", "forbidden factor (binary string)")
	guest := flag.String("guest", "path", "guest family: path, cycle, star or grid")
	n := flag.Int("n", 4, "guest size parameter")
	m := flag.Int("m", 2, "second grid parameter")
	flag.Parse()

	f, err := bitstr.Parse(*factor)
	if err != nil || f.Len() == 0 {
		log.Fatalf("invalid factor %q: %v", *factor, err)
	}

	var g *graph.Graph
	var name string
	switch *guest {
	case "path":
		g, name = graph.Path(*n), fmt.Sprintf("P_%d", *n)
	case "cycle":
		g, name = graph.Cycle(*n), fmt.Sprintf("C_%d", *n)
	case "star":
		g, name = graph.Star(*n), fmt.Sprintf("K_{1,%d}", *n)
	case "grid":
		g, name = graph.Grid(*m, *n), fmt.Sprintf("%dx%d grid", *m, *n)
	default:
		log.Fatalf("unknown guest %q", *guest)
	}

	a := isometry.Analyze(g)
	idim := a.Idim()
	fmt.Printf("guest %s: n=%d m=%d\n", name, g.N(), g.M())
	if idim < 0 {
		fmt.Println("idim = infinity (not a partial cube); dim_f undefined")
		return
	}
	fmt.Printf("idim = %d (Θ*-classes)\n", idim)

	upper := 3*idim - 2
	if f.HasFactor(bitstr.MustParse("11")) || f.HasFactor(bitstr.MustParse("00")) {
		upper = 2*idim - 1
	}
	res := isometry.FDim(g, f, upper)
	if !res.Found {
		fmt.Printf("dim_%s not found within the Proposition 7.1 bound %d\n", f, upper)
		return
	}
	fmt.Printf("dim_%s = %d  (Prop 7.1 bounds: %d <= dim <= %d)\n", f, res.Dim, idim, upper)
	fmt.Println("embedding:")
	for v, word := range res.Embedding {
		fmt.Printf("  vertex %d -> %s\n", v, word)
	}
	if err := isometry.VerifyEmbedding(g, f, res.Embedding); err != nil {
		log.Fatalf("embedding failed verification: %v", err)
	}
	fmt.Println("embedding verified isometric")
}
