// Command gfc-pack builds a warm-start pack: a directory of
// content-addressed backend artifacts (DFA ranker tables, explicit cube
// CSR arenas) plus a JSON sidecar of precomputed verdicts (exact counts,
// paper classification, isometry with witnesses) covering every factor
// with |f| <= -maxflen and every dimension d <= -maxd.
//
// Usage:
//
//	gfc-pack -dir packs/default [-minflen 1] [-maxflen 5] [-maxd 12] [-iso]
//
// Mount the result read-only on a service instance with
// `gfc-serve -warm-pack DIR`: restarts then serve every packed class by
// mmap-loading artifacts instead of rebuilding, and the verdict sidecar
// preloads the result cache at startup. The artifact format is
// documented in docs/artifact-format.md; every artifact is checksummed
// and re-verified on load, so a damaged pack degrades to recompute,
// never to wrong answers.
//
// With -iso the pack carries artifacts only for iso-congruence group
// representatives (one ranker/cube per verified congruence group per
// dimension, per docs/iso-classes.md) plus an isoclasses.json membership
// manifest; the verdict sidecar still covers every class, byte-identical
// to a full pack's. Iso packs are much smaller; unpacked member classes
// rebuild on demand.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"gfcube/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-pack: ")
	dir := flag.String("dir", "", "output pack directory (created if missing)")
	minLen := flag.Int("minflen", 1, "smallest factor length packed")
	maxLen := flag.Int("maxflen", 5, "largest factor length packed")
	maxD := flag.Int("maxd", 12, "largest dimension packed")
	isoPack := flag.Bool("iso", false, "pack only iso-congruence group representatives plus a membership manifest")
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	m, err := store.Generate(*dir, store.PackOptions{
		MinLen: *minLen,
		MaxLen: *maxLen,
		MaxD:   *maxD,
		Iso:    *isoPack,
	})
	if err != nil {
		log.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		log.Fatal(err)
	}
}
