// Command gfc-sweepd coordinates a sharded sweep across fabric workers,
// streaming every completed cell into an append-only hash-chained results
// ledger. Interrupted runs (crash, SIGKILL, power loss) resume from the
// last valid chained record with -resume; the derived result set is
// byte-identical to a single-process sweep regardless of worker count,
// scheduling, stealing or how many times the run was interrupted.
//
// Usage:
//
//	gfc-sweepd -ledger run.gfcl [-op classify] [-minlen 1] [-maxlen 4]
//	           [-mind 1] [-maxd 9] [-method exact]
//	           [-remote URL]... [-workers N] [-shards N]
//	           [-lease-ttl 10s] [-poll 100ms] [-steal-threshold 4]
//	           [-store-dir DIR] [-metrics-addr :9090]
//	           [-out results.ndjson] [-progress]
//	gfc-sweepd -resume run.gfcl [flags as above]
//	gfc-sweepd -verify run.gfcl
//	gfc-sweepd -dump run.gfcl [-out results.ndjson]
//	gfc-sweepd -oracle [-op ...] [grid flags] [-out results.ndjson]
//
// Workers are either remote gfc-serve instances (-remote, repeatable) or
// in-process compute workers (-workers N when no -remote is given). The
// grid is partitioned into shards by canonical factor class — the same
// class always lands on the same shard slot — and shards are leased to
// workers with TTL-enforced leases, renewed while reports flow and
// requeued when a worker dies. Idle workers steal the tails of straggler
// shards; the coordinator's ledger dedupe keeps every cell single-copy.
//
// -verify walks the ledger's hash chain and exits nonzero on damage,
// duplicate cells, or an incomplete grid. -dump re-derives the canonical
// result set (cells sorted by grid index) from a complete ledger. -oracle
// computes the same result set single-process, no ledger involved — the
// fabric-gate CI job diffs the two byte-for-byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gfcube/internal/core"
	"gfcube/internal/fabric"
	"gfcube/internal/store"
)

// repeatedFlag collects a repeatable string flag.
type repeatedFlag []string

func (f *repeatedFlag) String() string     { return strings.Join(*f, ",") }
func (f *repeatedFlag) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfc-sweepd: ")

	op := flag.String("op", "classify", "sweep operation: classify|survey|degrees|wiener")
	minLen := flag.Int("minlen", 1, "smallest factor length")
	maxLen := flag.Int("maxlen", 4, "largest factor length")
	minD := flag.Int("mind", 1, "smallest dimension")
	maxD := flag.Int("maxd", 9, "largest dimension")
	method := flag.String("method", "exact", "cell method: exact|screen|quick")
	ledgerPath := flag.String("ledger", "", "create this ledger and run the sweep into it")
	resumePath := flag.String("resume", "", "resume an interrupted sweep from this ledger")
	verifyPath := flag.String("verify", "", "verify a ledger's hash chain and completeness, then exit")
	dumpPath := flag.String("dump", "", "derive the canonical result set from a complete ledger, then exit")
	oracle := flag.Bool("oracle", false, "compute the result set single-process (no ledger), then exit")
	var remotes repeatedFlag
	flag.Var(&remotes, "remote", "gfc-serve worker base URL (repeatable)")
	workers := flag.Int("workers", 2, "in-process workers when no -remote is given")
	shards := flag.Int("shards", 0, "primary shard slots (0 = 2×workers, min 4)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "lease TTL; renewed at TTL/3 while reports flow")
	poll := flag.Duration("poll", 100*time.Millisecond, "report-poll interval")
	stealThreshold := flag.Int("steal-threshold", 4, "minimum straggler remainder worth stealing")
	storeDir := flag.String("store-dir", "", "artifact store directory for in-process workers")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on this address while the sweep runs")
	out := flag.String("out", "", "write the result set here instead of stdout")
	progress := flag.Bool("progress", false, "log progress every 100 cells")
	flag.Parse()

	sp, err := parseSpec(*op, *minLen, *maxLen, *minD, *maxD, *method)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *verifyPath != "":
		os.Exit(verify(*verifyPath))
	case *dumpPath != "":
		if err := dump(*dumpPath, *out); err != nil {
			log.Fatal(err)
		}
	case *oracle:
		data, err := fabric.Oracle(context.Background(), sp, *workers, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeOut(*out, data); err != nil {
			log.Fatal(err)
		}
	case *ledgerPath != "" || *resumePath != "":
		if *ledgerPath != "" && *resumePath != "" {
			log.Fatal("-ledger and -resume are mutually exclusive")
		}
		if err := run(sp, runConfig{
			ledgerPath:     *ledgerPath,
			resumePath:     *resumePath,
			remotes:        remotes,
			workers:        *workers,
			shards:         *shards,
			leaseTTL:       *leaseTTL,
			poll:           *poll,
			stealThreshold: *stealThreshold,
			storeDir:       *storeDir,
			metricsAddr:    *metricsAddr,
			out:            *out,
			progress:       *progress,
		}); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -ledger, -resume, -verify, -dump or -oracle is required")
	}
}

func parseSpec(op string, minLen, maxLen, minD, maxD int, method string) (fabric.Spec, error) {
	o, err := fabric.ParseOp(op)
	if err != nil {
		return fabric.Spec{}, err
	}
	return fabric.Spec{Op: o, MinLen: minLen, MaxLen: maxLen, MinD: minD, MaxD: maxD, Method: method}.Normalize()
}

// verify walks the chain and reports; exit status 0 only for a clean,
// duplicate-free ledger whose record count matches its grid.
func verify(path string) int {
	scan, err := fabric.VerifyLedger(path)
	if err != nil {
		log.Printf("verify: %v", err)
		return 1
	}
	total := len(scan.Spec.Cells())
	log.Printf("spec: op=%s len=[%d,%d] d=[%d,%d] method=%s",
		scan.Spec.Op, scan.Spec.MinLen, scan.Spec.MaxLen, scan.Spec.MinD, scan.Spec.MaxD, scan.Spec.Method)
	log.Printf("records: %d/%d cells, %d duplicates, %d/%d bytes valid",
		len(scan.Records), total, scan.Duplicates, scan.ValidBytes, scan.TotalBytes)
	if scan.Damaged {
		log.Printf("DAMAGED: %s (resume recomputes from record %d)", scan.DamageReason, len(scan.Records))
		return 1
	}
	if scan.Duplicates != 0 {
		log.Printf("DUPLICATES: ledger holds %d duplicate cells", scan.Duplicates)
		return 1
	}
	if len(scan.Records) != total {
		log.Printf("INCOMPLETE: %d cells missing (resume with -resume %s)", total-len(scan.Records), path)
		return 1
	}
	log.Printf("OK: chain verified, complete, no duplicates")
	return 0
}

// dump derives the canonical result set from a complete ledger.
func dump(path, out string) error {
	scan, err := fabric.VerifyLedger(path)
	if err != nil {
		return err
	}
	if scan.Damaged {
		return fmt.Errorf("ledger is damaged (%s); -resume it first", scan.DamageReason)
	}
	if total := len(scan.Spec.Cells()); len(scan.Records) != total {
		return fmt.Errorf("ledger holds %d/%d cells; -resume it first", len(scan.Records), total)
	}
	data, err := fabric.ResultSet(scan.Records)
	if err != nil {
		return err
	}
	return writeOut(out, data)
}

func writeOut(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

type runConfig struct {
	ledgerPath     string
	resumePath     string
	remotes        []string
	workers        int
	shards         int
	leaseTTL       time.Duration
	poll           time.Duration
	stealThreshold int
	storeDir       string
	metricsAddr    string
	out            string
	progress       bool
}

// run drives one sweep (fresh or resumed) to completion and writes the
// derived result set.
func run(sp fabric.Spec, cfg runConfig) error {
	var l *fabric.Ledger
	var err error
	if cfg.resumePath != "" {
		l, err = fabric.OpenLedger(cfg.resumePath, &sp)
		if err != nil {
			return err
		}
		if l.Trimmed() > 0 {
			log.Printf("resume: trimmed %d damaged trailing bytes; %d valid cells inherited", l.Trimmed(), len(l.Records()))
		} else {
			log.Printf("resume: %d valid cells inherited", len(l.Records()))
		}
	} else {
		l, err = fabric.CreateLedger(cfg.ledgerPath, sp)
		if err != nil {
			return err
		}
	}
	defer l.Close()

	var ws []fabric.Worker
	var hosts []*fabric.Host
	if len(cfg.remotes) > 0 {
		for i, base := range cfg.remotes {
			ws = append(ws, fabric.NewRemoteWorker(fmt.Sprintf("remote%d", i), strings.TrimSuffix(base, "/"), nil, 0, 0))
		}
	} else {
		var provider core.Provider
		if cfg.storeDir != "" {
			st, err := store.Open(store.Config{Dir: cfg.storeDir})
			if err != nil {
				return err
			}
			defer st.Close()
			provider = store.NewProvider(st)
		}
		if cfg.workers < 1 {
			cfg.workers = 1
		}
		for i := 0; i < cfg.workers; i++ {
			h := fabric.NewHost(fabric.HostConfig{Provider: provider})
			hosts = append(hosts, h)
			ws = append(ws, fabric.NewLocalWorker(fmt.Sprintf("local%d", i), h))
		}
	}
	defer func() {
		for _, h := range hosts {
			h.Close()
		}
	}()

	opts := fabric.Options{
		Workers:        ws,
		Shards:         cfg.shards,
		LeaseTTL:       cfg.leaseTTL,
		Poll:           cfg.poll,
		StealThreshold: cfg.stealThreshold,
		Logf:           log.Printf,
	}
	if cfg.progress {
		opts.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				log.Printf("progress: %d/%d cells", done, total)
			}
		}
	}
	co, err := fabric.NewCoordinator(sp, l, opts)
	if err != nil {
		return err
	}

	if cfg.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = w.Write([]byte(co.Counters().RenderProm()))
		})
		go func() {
			if err := http.ListenAndServe(cfg.metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := co.Run(ctx); err != nil {
		log.Printf("run: %s", co.PendingSummary())
		return err
	}
	log.Printf("complete in %s: %s", time.Since(start).Round(time.Millisecond), co.Counters().Summary())

	data, err := fabric.ResultSet(l.Records())
	if err != nil {
		return err
	}
	return writeOut(cfg.out, data)
}
