package graph

// Unreachable is the distance value reported for vertices in a different
// component.
const Unreachable = int32(-1)

// BFS computes single-source shortest-path distances from src into dist,
// which must have length g.N(). Unreachable vertices get Unreachable. The
// queue buffer is allocated internally; use a Traverser to amortize
// allocations across many searches.
func (g *Graph) BFS(src int, dist []int32) {
	t := NewTraverser(g)
	t.BFS(src, dist)
}

// Distances returns a freshly allocated distance vector from src.
func (g *Graph) Distances(src int) []int32 {
	dist := make([]int32, g.N())
	g.BFS(src, dist)
	return dist
}

// Dist returns the shortest-path distance between u and v, or Unreachable.
func (g *Graph) Dist(u, v int) int32 {
	return g.Distances(u)[v]
}

// Traverser owns the scratch buffers for repeated BFS runs on one graph.
// It is not safe for concurrent use; allocate one per goroutine.
type Traverser struct {
	g     *Graph
	queue []int32
}

// NewTraverser returns a Traverser for g.
func NewTraverser(g *Graph) *Traverser {
	return &Traverser{g: g, queue: make([]int32, 0, g.N())}
}

// Reset retargets the traverser at a different graph, keeping its queue
// buffer. This is the allocation-free path for sweeping BFS over many
// graphs with one scratch area.
func (t *Traverser) Reset(g *Graph) {
	t.g = g
	if cap(t.queue) < g.N() {
		t.queue = make([]int32, 0, g.N())
	}
}

// BFS computes distances from src into dist (length g.N()).
func (t *Traverser) BFS(src int, dist []int32) {
	g := t.g
	if len(dist) != g.N() {
		panic("graph: distance buffer has wrong length")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	q := t.queue[:0]
	dist[src] = 0
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				q = append(q, v)
			}
		}
	}
	t.queue = q
}

// BFSTree computes distances and BFS-tree parents from src. parent[src] = -1,
// and parent[v] = -1 for unreachable v.
func (t *Traverser) BFSTree(src int, dist, parent []int32) {
	g := t.g
	if len(dist) != g.N() || len(parent) != g.N() {
		panic("graph: buffer has wrong length")
	}
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = -1
	}
	q := t.queue[:0]
	dist[src] = 0
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				parent[v] = u
				q = append(q, v)
			}
		}
	}
	t.queue = q
}

// IsConnected reports whether the graph is connected. The empty graph and
// the one-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	dist := make([]int32, g.N())
	g.BFS(0, dist)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the component id of every vertex (ids are 0-based,
// assigned in order of discovery) and the number of components.
func (g *Graph) Components() ([]int32, int) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	dist := make([]int32, g.N())
	t := NewTraverser(g)
	next := int32(0)
	for v := range comp {
		if comp[v] != -1 {
			continue
		}
		t.BFS(v, dist)
		for u, d := range dist {
			if d != Unreachable {
				comp[u] = next
			}
		}
		next++
	}
	return comp, int(next)
}

// IsBipartite reports whether the graph is bipartite, and returns a valid
// 2-coloring when it is. All generalized Fibonacci cubes are bipartite
// (they are subgraphs of hypercubes); this is used as a sanity check and by
// the partial-cube recognizer.
func (g *Graph) IsBipartite() (bool, []int8) {
	color := make([]int8, g.N())
	for i := range color {
		color[i] = -1
	}
	queue := make([]int32, 0, g.N())
	for s := 0; s < g.N(); s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.adj[u] {
				if color[v] == -1 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false, nil
				}
			}
		}
	}
	return true, color
}
