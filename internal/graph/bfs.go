package graph

// Unreachable is the distance value reported for vertices in a different
// component.
const Unreachable = int32(-1)

// BFS computes single-source shortest-path distances from src into dist,
// which must have length g.N(). Unreachable vertices get Unreachable. The
// queue buffer is allocated internally; use a Traverser to amortize
// allocations across many searches.
func (g *Graph) BFS(src int, dist []int32) {
	t := NewTraverser(g)
	t.BFS(src, dist)
}

// Distances returns a freshly allocated distance vector from src.
func (g *Graph) Distances(src int) []int32 {
	dist := make([]int32, g.N())
	g.BFS(src, dist)
	return dist
}

// Dist returns the shortest-path distance between u and v, or Unreachable.
// The search stops as soon as v is settled; callers computing many pairs
// should hold a Traverser and use its Dist to amortize the scratch buffer.
func (g *Graph) Dist(u, v int) int32 {
	return NewTraverser(g).Dist(u, v)
}

// Traverser owns the scratch buffers for repeated BFS runs on one graph.
// It is not safe for concurrent use; allocate one per goroutine.
type Traverser struct {
	g     *Graph
	queue []int32
	// Single-pair query scratch: dist[v] is only meaningful when seen[v]
	// holds the current epoch, so Dist never reinitializes the buffers.
	dist  []int32
	seen  []int32
	epoch int32
}

// NewTraverser returns a Traverser for g.
func NewTraverser(g *Graph) *Traverser {
	return &Traverser{g: g, queue: make([]int32, 0, g.N())}
}

// Reset retargets the traverser at a different graph, keeping its queue
// buffer. This is the allocation-free path for sweeping BFS over many
// graphs with one scratch area.
func (t *Traverser) Reset(g *Graph) {
	t.g = g
	if cap(t.queue) < g.N() {
		t.queue = make([]int32, 0, g.N())
	}
}

// Dist returns the distance between u and v, or Unreachable. Unlike a full
// BFS it exits as soon as v is settled, and visited marks are epoch
// stamps rather than a per-call buffer fill, so near pairs genuinely cost
// O(ball around u) rather than O(n); route verification sweeps rely on
// this.
func (t *Traverser) Dist(u, v int) int32 {
	if u == v {
		return 0
	}
	g := t.g
	n := g.N()
	if cap(t.dist) < n {
		t.dist = make([]int32, n)
		t.seen = make([]int32, n)
		t.epoch = 0
	}
	dist, seen := t.dist[:n], t.seen[:n]
	if t.epoch == 1<<31-1 {
		clear(t.seen)
		t.epoch = 0
	}
	t.epoch++
	ep := t.epoch
	q := t.queue[:0]
	dist[u] = 0
	seen[u] = ep
	q = append(q, int32(u))
	for head := 0; head < len(q); head++ {
		x := q[head]
		dx := dist[x]
		for _, w := range g.adj[x] {
			if seen[w] != ep {
				if int(w) == v {
					t.queue = q
					return dx + 1
				}
				seen[w] = ep
				dist[w] = dx + 1
				q = append(q, w)
			}
		}
	}
	t.queue = q
	return Unreachable
}

// BFS computes distances from src into dist (length g.N()).
func (t *Traverser) BFS(src int, dist []int32) {
	g := t.g
	if len(dist) != g.N() {
		panic("graph: distance buffer has wrong length")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	q := t.queue[:0]
	dist[src] = 0
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				q = append(q, v)
			}
		}
	}
	t.queue = q
}

// BFSTree computes distances and BFS-tree parents from src. parent[src] = -1,
// and parent[v] = -1 for unreachable v.
func (t *Traverser) BFSTree(src int, dist, parent []int32) {
	g := t.g
	if len(dist) != g.N() || len(parent) != g.N() {
		panic("graph: buffer has wrong length")
	}
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = -1
	}
	q := t.queue[:0]
	dist[src] = 0
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				parent[v] = u
				q = append(q, v)
			}
		}
	}
	t.queue = q
}

// IsConnected reports whether the graph is connected. The empty graph and
// the one-vertex graph are connected. The verdict comes from the BFS visit
// count (the length of the settled queue), not from scanning distances.
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	t := NewTraverser(g)
	dist := make([]int32, g.N())
	t.BFS(0, dist)
	return len(t.queue) == g.N()
}

// Components returns the component id of every vertex (ids are 0-based,
// assigned in order of discovery) and the number of components.
func (g *Graph) Components() ([]int32, int) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	dist := make([]int32, g.N())
	t := NewTraverser(g)
	next := int32(0)
	for v := range comp {
		if comp[v] != -1 {
			continue
		}
		t.BFS(v, dist)
		for u, d := range dist {
			if d != Unreachable {
				comp[u] = next
			}
		}
		next++
	}
	return comp, int(next)
}

// IsBipartite reports whether the graph is bipartite, and returns a valid
// 2-coloring when it is. All generalized Fibonacci cubes are bipartite
// (they are subgraphs of hypercubes); this is used as a sanity check and by
// the partial-cube recognizer.
func (g *Graph) IsBipartite() (bool, []int8) {
	color := make([]int8, g.N())
	for i := range color {
		color[i] = -1
	}
	queue := make([]int32, 0, g.N())
	for s := 0; s < g.N(); s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.adj[u] {
				if color[v] == -1 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false, nil
				}
			}
		}
	}
	return true, color
}
