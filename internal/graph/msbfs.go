package graph

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// MSBatchSize is the number of BFS sources processed by one engine run: one
// bit of a machine word per source, so every frontier/visited operation
// advances all sources of a batch at once (the MS-BFS technique).
const MSBatchSize = 64

// DistBlock is the result of one multi-source batch: up to MSBatchSize
// distance rows over the same graph, plus the per-source count of settled
// vertices. Blocks delivered by the batch drivers are reused after the
// callback returns; callers that need a row beyond the callback must copy
// it.
type DistBlock struct {
	// Batch is the index of this batch in the driver's batch list.
	Batch int
	// Sources lists the batch's BFS sources; Row(i) is the distance row of
	// Sources[i].
	Sources []int32
	// Reached[i] is the number of vertices settled from Sources[i]
	// (including the source itself); Reached[i] == N() means every vertex
	// is reachable, which is how consumers derive connectivity without
	// scanning rows for Unreachable.
	Reached []int32

	n    int
	dist []int32 // len(Sources) rows of width n
}

// N returns the row width (the graph's vertex count).
func (b *DistBlock) N() int { return b.n }

// Row returns the distance row of Sources[i]: Row(i)[v] is the distance
// from Sources[i] to v, or Unreachable. The slice aliases the block.
func (b *DistBlock) Row(i int) []int32 { return b.dist[i*b.n : (i+1)*b.n] }

// MSBFS is a batched multi-source BFS engine over one graph's CSR
// adjacency. It keeps three bitset planes (frontier, next, visited) with
// one word per vertex — bit i of a word tracks source i of the current
// batch — so one pass over the adjacency advances up to 64 searches. An
// engine is not safe for concurrent use; the batch drivers allocate one
// per worker, and sweep scratches keep one alive across graphs via Reset.
type MSBFS struct {
	g        *Graph
	frontier []uint64
	next     []uint64
	visited  []uint64
	block    DistBlock
}

// NewMSBFS returns an engine for g.
func NewMSBFS(g *Graph) *MSBFS {
	e := &MSBFS{}
	e.Reset(g)
	return e
}

// Reset retargets the engine at a different graph, retaining its planes
// and block storage. This is the allocation-free path for sweeping many
// graphs with one scratch engine.
func (e *MSBFS) Reset(g *Graph) {
	e.g = g
	if n := g.N(); cap(e.frontier) < n {
		e.frontier = make([]uint64, n)
		e.next = make([]uint64, n)
		e.visited = make([]uint64, n)
	}
}

// Run computes the batch into the engine's internal block, which stays
// valid until the next Run or RunInto call.
func (e *MSBFS) Run(batch int, sources []int32) *DistBlock {
	e.RunInto(batch, sources, &e.block)
	return &e.block
}

// RunAll sweeps every vertex of the engine's graph serially, in batches
// of MSBatchSize consecutive sources in rank order, invoking fn on each
// block (the engine's internal one, reused across batches). fn returning
// false stops the sweep. This is the shared serial path for scratch-based
// grid cells; the parallel drivers below fan batches across workers
// instead.
func (e *MSBFS) RunAll(fn func(*DistBlock) bool) {
	n := e.g.N()
	var buf [MSBatchSize]int32
	for lo := 0; lo < n; lo += MSBatchSize {
		hi := lo + MSBatchSize
		if hi > n {
			hi = n
		}
		src := buf[:hi-lo]
		for i := range src {
			src[i] = int32(lo + i)
		}
		if !fn(e.Run(lo/MSBatchSize, src)) {
			return
		}
	}
}

// RunInto computes distance rows for up to MSBatchSize sources into blk,
// growing blk's storage as needed. All sources advance in lockstep: level
// k of the search settles, for every source simultaneously, the vertices
// at distance k, using one bitwise pass over the adjacency per level.
func (e *MSBFS) RunInto(batch int, sources []int32, blk *DistBlock) {
	g := e.g
	n := g.N()
	if len(sources) == 0 || len(sources) > MSBatchSize {
		panic("graph: MS-BFS batch must have 1..64 sources")
	}
	blk.Batch = batch
	blk.Sources = append(blk.Sources[:0], sources...)
	blk.Reached = blk.Reached[:0]
	blk.n = n
	need := len(sources) * n
	if cap(blk.dist) < need {
		blk.dist = make([]int32, need)
	}
	blk.dist = blk.dist[:need]
	for i := range blk.dist {
		blk.dist[i] = Unreachable
	}
	fr := e.frontier[:n]
	nx := e.next[:n]
	vis := e.visited[:n]
	clear(fr)
	clear(nx)
	clear(vis)
	// Each source index owns its own bit, so even a duplicated source
	// vertex seeds every one of its searches independently.
	for i, s := range sources {
		bit := uint64(1) << uint(i)
		vis[s] |= bit
		fr[s] |= bit
		blk.dist[i*n+int(s)] = 0
		blk.Reached = append(blk.Reached, 1)
	}
	adj := g.adj
	for level := int32(1); ; level++ {
		// Push: propagate every frontier word to its neighbors, clearing
		// the frontier plane as it is consumed.
		for v, f := range fr {
			if f == 0 {
				continue
			}
			fr[v] = 0
			for _, w := range adj[v] {
				nx[w] |= f
			}
		}
		// Settle: newly discovered (source, vertex) pairs get this level;
		// the next plane is drained back to zero for the following round.
		any := false
		for v, nw := range nx {
			if nw == 0 {
				continue
			}
			nx[v] = 0
			nb := nw &^ vis[v]
			if nb == 0 {
				continue
			}
			vis[v] |= nb
			fr[v] = nb
			any = true
			for t := nb; t != 0; t &= t - 1 {
				i := bits.TrailingZeros64(t)
				blk.dist[i*n+v] = level
				blk.Reached[i]++
			}
		}
		if !any {
			return
		}
	}
}

// EdgeBatch groups consecutive edges of an edge list so that both endpoint
// rows of every owned edge land in a single DistBlock: batch b owns edges
// [Lo, Hi) of the list it was built from, and Rows[e-Lo] holds the block
// row indices of edge e's two endpoints.
type EdgeBatch struct {
	Sources []int32
	Lo, Hi  int
	Rows    [][2]uint8
}

// EdgeBatches greedily packs consecutive edges into MS-BFS batches of at
// most MSBatchSize distinct endpoint vertices. Sorted edge lists share
// endpoints heavily between neighbors, so the total BFS source count stays
// near the number of distinct endpoints rather than 2·len(edges). This is
// the batching used by the streaming Θ-relation analysis, which needs both
// endpoint rows of an edge at once.
func EdgeBatches(edges [][2]int32) []EdgeBatch {
	var out []EdgeBatch
	row := make(map[int32]uint8, MSBatchSize)
	cur := EdgeBatch{}
	flush := func(hi int) {
		if len(cur.Sources) == 0 {
			return
		}
		cur.Hi = hi
		out = append(out, cur)
		cur = EdgeBatch{Lo: hi}
		clear(row)
	}
	for e, xy := range edges {
		need := 0
		if _, ok := row[xy[0]]; !ok {
			need++
		}
		if _, ok := row[xy[1]]; !ok && xy[0] != xy[1] {
			need++
		}
		if len(cur.Sources)+need > MSBatchSize {
			flush(e)
		}
		var rr [2]uint8
		for s := 0; s < 2; s++ {
			idx, ok := row[xy[s]]
			if !ok {
				idx = uint8(len(cur.Sources))
				row[xy[s]] = idx
				cur.Sources = append(cur.Sources, xy[s])
			}
			rr[s] = idx
		}
		cur.Rows = append(cur.Rows, rr)
	}
	flush(len(edges))
	return out
}

// EdgeBatchSources extracts the per-batch source lists for ForEachBatch
// and ForEachBatchPar.
func EdgeBatchSources(batches []EdgeBatch) [][]int32 {
	out := make([][]int32, len(batches))
	for i, b := range batches {
		out[i] = b.Sources
	}
	return out
}

// MSOptions tunes the batch drivers. The zero value is usable.
type MSOptions struct {
	// Workers bounds the number of engines running concurrently; zero or
	// negative defaults to runtime.GOMAXPROCS(0). One worker runs the
	// batches inline with no goroutines.
	Workers int
	// Skip, when non-nil, is consulted immediately before a batch's BFS
	// runs; returning true drops the batch without computing it. Consumers
	// with early-exit semantics (first-violation searches) use it to shed
	// work that can no longer affect the result.
	Skip func(batch int) bool
}

func (o MSOptions) workers(batches int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > batches {
		w = batches
	}
	return w
}

// parWorkers returns the number of distinct worker ids
// ForEachSourceBatchPar will use for these sources (nil = every vertex):
// the slot count for per-worker accumulators. Keeping this beside the
// driver means accumulator sizing cannot drift from the batching and
// clamping rules. Callers with worker-indexed accumulators must pin the
// result back into MSOptions.Workers before calling the driver, so a
// GOMAXPROCS change between sizing and running cannot produce worker ids
// beyond the accumulator length.
func (g *Graph) parWorkers(sources []int32, opts MSOptions) int {
	n := len(sources)
	if sources == nil {
		n = g.N()
	}
	return opts.workers((n + MSBatchSize - 1) / MSBatchSize)
}

// chunkSources splits sources into consecutive batches of MSBatchSize.
// When sources is nil, every vertex of g is a source, in rank order.
func (g *Graph) chunkSources(sources []int32) [][]int32 {
	if sources == nil {
		sources = make([]int32, g.N())
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	batches := make([][]int32, 0, (len(sources)+MSBatchSize-1)/MSBatchSize)
	for len(sources) > MSBatchSize {
		batches = append(batches, sources[:MSBatchSize])
		sources = sources[MSBatchSize:]
	}
	if len(sources) > 0 {
		batches = append(batches, sources)
	}
	return batches
}

// ForEachSourceBatch streams multi-source BFS over the sources (nil means
// every vertex) in batches of MSBatchSize: batches are fanned across the
// worker pool, and fn consumes the resulting blocks sequentially in batch
// order, so runs are deterministic regardless of worker count. Peak memory
// is O(n · 64 · workers) — the blocks in flight — never O(n²). A non-nil
// error from fn stops the stream and is returned.
func (g *Graph) ForEachSourceBatch(sources []int32, opts MSOptions, fn func(*DistBlock) error) error {
	return g.ForEachBatch(g.chunkSources(sources), opts, fn)
}

// ForEachSourceBatchPar is ForEachSourceBatch without the ordering
// guarantee: fn may be called concurrently from different workers (worker
// identifies the caller, 0..Workers-1, for per-worker accumulators), and
// blocks arrive in completion order. This is the fastest path for
// commutative aggregations (eccentricities, distance sums, histograms).
func (g *Graph) ForEachSourceBatchPar(sources []int32, opts MSOptions, fn func(worker int, b *DistBlock) error) error {
	return g.ForEachBatchPar(g.chunkSources(sources), opts, fn)
}

// ForEachBatch is ForEachSourceBatch over caller-shaped batches (each with
// 1..MSBatchSize sources, possibly overlapping between batches). Consumers
// that need specific row groupings — e.g. both endpoints of an edge in one
// block for the Θ test — build their own batches and use this.
func (g *Graph) ForEachBatch(batches [][]int32, opts MSOptions, fn func(*DistBlock) error) error {
	nb := len(batches)
	if nb == 0 {
		return nil
	}
	if opts.workers(nb) == 1 {
		e := NewMSBFS(g)
		for i, src := range batches {
			if opts.Skip != nil && opts.Skip(i) {
				continue
			}
			if err := fn(e.Run(i, src)); err != nil {
				return err
			}
		}
		return nil
	}
	return g.forEachBatchOrdered(batches, opts, fn)
}

// forEachBatchOrdered pipelines BFS across workers while delivering blocks
// to the single consumer in batch order. Workers draw batch indices from a
// shared counter and buffers from a bounded pool, so at most
// workers + 2 blocks are in flight at a time.
func (g *Graph) forEachBatchOrdered(batches [][]int32, opts MSOptions, fn func(*DistBlock) error) error {
	nb := len(batches)
	workers := opts.workers(nb)
	type item struct {
		batch int
		blk   *DistBlock // nil when the batch was skipped
	}
	pool := make(chan *DistBlock, workers+2)
	for i := 0; i < cap(pool); i++ {
		pool <- &DistBlock{}
	}
	results := make(chan item, workers+2)
	var (
		cursor int64 = -1
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewMSBFS(g)
			for {
				// Acquire the buffer BEFORE claiming a batch index: claims
				// happen in cursor order, so batch `next` is always claimed
				// no later than any batch parked in the consumer's pending
				// map — and with the buffer in hand its worker can never
				// stall on an empty pool, which keeps the consumer (and
				// hence buffer recycling) live.
				blk := <-pool
				b := int(atomic.AddInt64(&cursor, 1))
				if b >= nb || stop.Load() {
					pool <- blk
					return
				}
				if opts.Skip != nil && opts.Skip(b) {
					pool <- blk
					results <- item{batch: b}
					continue
				}
				e.RunInto(b, batches[b], blk)
				results <- item{batch: b, blk: blk}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	var err error
	pending := make(map[int]item, workers+2)
	next := 0
	for it := range results {
		if err != nil {
			// Drain after failure, recycling buffers so workers finish.
			if it.blk != nil {
				pool <- it.blk
			}
			continue
		}
		pending[it.batch] = it
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if cur.blk == nil {
				continue
			}
			if e := fn(cur.blk); e != nil {
				err = e
				stop.Store(true)
			}
			pool <- cur.blk
			if err != nil {
				break
			}
		}
	}
	return err
}

// ForEachBatchPar runs caller-shaped batches across the worker pool with
// concurrent delivery: fn runs on the worker that computed the block. A
// non-nil error from fn stops new batches from being scheduled; the first
// error observed is returned.
func (g *Graph) ForEachBatchPar(batches [][]int32, opts MSOptions, fn func(worker int, b *DistBlock) error) error {
	nb := len(batches)
	if nb == 0 {
		return nil
	}
	workers := opts.workers(nb)
	if workers == 1 {
		e := NewMSBFS(g)
		for i, src := range batches {
			if opts.Skip != nil && opts.Skip(i) {
				continue
			}
			if err := fn(0, e.Run(i, src)); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor int64 = -1
		stop   atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e := NewMSBFS(g)
			for {
				b := int(atomic.AddInt64(&cursor, 1))
				if b >= nb || stop.Load() {
					return
				}
				if opts.Skip != nil && opts.Skip(b) {
					continue
				}
				if err := fn(worker, e.Run(b, batches[b])); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}
