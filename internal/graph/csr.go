package graph

import "fmt"

// CSRBuilder assembles a Graph directly in its final CSR arena, skipping
// the packed-edge accumulate-sort-dedupe pipeline of Builder. It is the
// fast path for callers that can announce every vertex degree up front
// and then emit each adjacency list already sorted — the contract the
// column-incremental cube builder satisfies, because lifting the edges of
// Q_d(f) through the order-preserving "append a trailing bit" map keeps
// every adjacency list sorted (see core.ColumnBuilder).
//
// Usage is two passes bracketed by Seal:
//
//	b.Reset(n)
//	b.AddDegree(v, k) ...   // announce degrees
//	b.Seal()                // carve the arena
//	b.Emit(v, w) ...        // fill lists, v ascending, w ascending per v
//	g := b.Build()
//
// The builder's degree scratch is retained across Reset calls; the arena
// itself is allocated fresh per build and handed off to the Graph, which
// owns it outright.
type CSRBuilder struct {
	n      int
	deg    []int32 // scratch: announced degrees, reused across builds
	flat   []int32
	adj    [][]int32
	m      int
	sealed bool
}

// NewCSRBuilder returns an empty builder; buffers grow on first use.
func NewCSRBuilder() *CSRBuilder { return &CSRBuilder{} }

// Reset starts a build for a graph on n vertices with all degrees zero.
func (b *CSRBuilder) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	b.n = n
	if cap(b.deg) < n {
		b.deg = make([]int32, n)
	} else {
		b.deg = b.deg[:n]
		for i := range b.deg {
			b.deg[i] = 0
		}
	}
	b.flat, b.adj, b.m, b.sealed = nil, nil, 0, false
}

// AddDegree adds k to vertex v's announced degree. Only valid before Seal.
func (b *CSRBuilder) AddDegree(v int, k int32) {
	if b.sealed {
		panic("graph: AddDegree after Seal")
	}
	b.deg[v] += k
}

// Seal carves the CSR arena from the announced degrees. The degree sum
// must be even: every undirected edge contributes to two lists.
func (b *CSRBuilder) Seal() {
	if b.sealed {
		panic("graph: CSRBuilder sealed twice")
	}
	total := 0
	for _, k := range b.deg {
		total += int(k)
	}
	if total%2 != 0 {
		panic(fmt.Sprintf("graph: odd adjacency-entry total %d", total))
	}
	flat := make([]int32, total)
	adj := make([][]int32, b.n)
	off := 0
	for v := 0; v < b.n; v++ {
		next := off + int(b.deg[v])
		// Three-index slices cap each list at its announced degree, so an
		// over-emit cannot silently bleed into a neighbor's list.
		adj[v] = flat[off:off:next]
		off = next
	}
	b.flat, b.adj, b.m, b.sealed = flat, adj, total/2, true
}

// Emit appends w to v's adjacency list. Callers fill lists in sorted
// order (w ascending within each v); emitting more entries than announced
// for a vertex reallocates that list off the arena, which Build rejects.
func (b *CSRBuilder) Emit(v, w int) {
	b.adj[v] = append(b.adj[v], int32(w))
}

// Build finalizes the graph, verifying every announced slot was filled,
// and detaches the arena so the builder can be reused via Reset.
func (b *CSRBuilder) Build() *Graph {
	if !b.sealed {
		panic("graph: Build before Seal")
	}
	for v := range b.adj {
		if len(b.adj[v]) != int(b.deg[v]) {
			panic(fmt.Sprintf("graph: vertex %d emitted %d of %d announced neighbors", v, len(b.adj[v]), b.deg[v]))
		}
	}
	g := &Graph{adj: b.adj, m: b.m}
	b.flat, b.adj, b.sealed = nil, nil, false
	return g
}
