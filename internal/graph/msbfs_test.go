package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// randomGraph builds a graph on n vertices with ~2n random edges.
func randomGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n*2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// checkBlockAgainstSerial compares every row of a block with a serial BFS
// from the same source, and the Reached counts with the settled queue.
func checkBlockAgainstSerial(t *testing.T, g *Graph, b *DistBlock) {
	t.Helper()
	if b.N() != g.N() {
		t.Fatalf("block width %d, graph order %d", b.N(), g.N())
	}
	want := make([]int32, g.N())
	tr := NewTraverser(g)
	for i, s := range b.Sources {
		tr.BFS(int(s), want)
		row := b.Row(i)
		reached := int32(0)
		for v := range want {
			if row[v] != want[v] {
				t.Fatalf("source %d: dist[%d] = %d, serial BFS %d", s, v, row[v], want[v])
			}
			if want[v] != Unreachable {
				reached++
			}
		}
		if b.Reached[i] != reached {
			t.Fatalf("source %d: Reached = %d, want %d", s, b.Reached[i], reached)
		}
	}
}

func TestMSBFSMatchesSerialOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(200)
		g := randomGraph(rng, n)
		err := g.ForEachSourceBatch(nil, MSOptions{}, func(b *DistBlock) error {
			checkBlockAgainstSerial(t, g, b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMSBFSEngineResetAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var e *MSBFS
	for iter := 0; iter < 10; iter++ {
		n := 1 + rng.Intn(80)
		g := randomGraph(rng, n)
		if e == nil {
			e = NewMSBFS(g)
		} else {
			e.Reset(g)
		}
		src := []int32{0, int32(n - 1), int32(n / 2)}
		b := e.Run(0, src)
		checkBlockAgainstSerial(t, g, b)
	}
}

func TestMSBFSDuplicateSources(t *testing.T) {
	g := Path(6)
	e := NewMSBFS(g)
	b := e.Run(0, []int32{2, 2, 5})
	checkBlockAgainstSerial(t, g, b)
	if b.Row(0)[5] != 3 || b.Row(1)[5] != 3 {
		t.Errorf("duplicate source rows disagree: %v vs %v", b.Row(0), b.Row(1))
	}
}

func TestMSBFSDisconnected(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3) // vertex 4 isolated
	g := b.Build()
	e := NewMSBFS(g)
	blk := e.Run(0, []int32{0, 4})
	if blk.Reached[0] != 2 || blk.Reached[1] != 1 {
		t.Errorf("Reached = %v", blk.Reached)
	}
	if blk.Row(0)[2] != Unreachable || blk.Row(1)[0] != Unreachable {
		t.Error("cross-component distances not Unreachable")
	}
	checkBlockAgainstSerial(t, g, blk)
}

// The ordered driver must deliver batches 0,1,2,... regardless of worker
// count, and the parallel driver must cover every source exactly once.
func TestMSBFSDriverOrderingAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 400)
	for _, workers := range []int{1, 2, 5} {
		next := 0
		err := g.ForEachSourceBatch(nil, MSOptions{Workers: workers}, func(b *DistBlock) error {
			if b.Batch != next {
				return fmt.Errorf("batch %d delivered at position %d", b.Batch, next)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if next != (400+MSBatchSize-1)/MSBatchSize {
			t.Fatalf("workers=%d: %d batches delivered", workers, next)
		}

		var covered [400]atomic.Bool
		err = g.ForEachSourceBatchPar(nil, MSOptions{Workers: workers}, func(_ int, b *DistBlock) error {
			for _, s := range b.Sources {
				if covered[s].Swap(true) {
					return fmt.Errorf("source %d delivered twice", s)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range covered {
			if !covered[s].Load() {
				t.Fatalf("workers=%d: source %d never delivered", workers, s)
			}
		}
	}
}

// Stress the ordered driver's buffer pool under a deliberately slow
// consumer: out-of-order blocks pile up in the resequencing map, which is
// exactly the regime where buffer starvation would deadlock.
func TestMSBFSOrderedDriverSlowConsumerStress(t *testing.T) {
	g := Path(20 * MSBatchSize) // 20 batches
	for iter := 0; iter < 30; iter++ {
		next := 0
		err := g.ForEachSourceBatch(nil, MSOptions{Workers: 6}, func(b *DistBlock) error {
			if b.Batch != next {
				return fmt.Errorf("batch %d at position %d", b.Batch, next)
			}
			next++
			if next == 1 {
				time.Sleep(time.Millisecond) // let workers run far ahead
			}
			return nil
		})
		if err != nil || next != 20 {
			t.Fatalf("iter %d: err=%v delivered=%d", iter, err, next)
		}
	}
}

func TestMSBFSDriverErrorStopsStream(t *testing.T) {
	g := Path(300)
	sentinel := errors.New("stop")
	for _, workers := range []int{1, 3} {
		calls := 0
		err := g.ForEachSourceBatch(nil, MSOptions{Workers: workers}, func(b *DistBlock) error {
			calls++
			if b.Batch == 1 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if calls < 2 {
			t.Fatalf("workers=%d: only %d calls before error", workers, calls)
		}
		if err := g.ForEachSourceBatchPar(nil, MSOptions{Workers: workers}, func(_ int, b *DistBlock) error {
			return sentinel
		}); !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: par err = %v", workers, err)
		}
	}
}

func TestMSBFSSkipShedsBatches(t *testing.T) {
	g := Path(300)
	for _, workers := range []int{1, 2} {
		var ran []int
		err := g.ForEachSourceBatch(nil, MSOptions{
			Workers: workers,
			Skip:    func(batch int) bool { return batch%2 == 1 },
		}, func(b *DistBlock) error {
			ran = append(ran, b.Batch)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ran {
			if b%2 == 1 {
				t.Fatalf("workers=%d: skipped batch %d was delivered", workers, b)
			}
		}
		if len(ran) != 3 { // batches 0, 2, 4 of ceil(300/64)=5
			t.Fatalf("workers=%d: ran %v", workers, ran)
		}
	}
}

func TestMSBFSEmptyAndTinyInputs(t *testing.T) {
	if err := NewBuilder(0).Build().ForEachSourceBatch(nil, MSOptions{}, func(*DistBlock) error {
		return errors.New("no batches expected")
	}); err != nil {
		t.Fatal(err)
	}
	g := NewBuilder(1).Build()
	count := 0
	if err := g.ForEachSourceBatch(nil, MSOptions{}, func(b *DistBlock) error {
		count++
		if b.Row(0)[0] != 0 || b.Reached[0] != 1 {
			return errors.New("singleton row wrong")
		}
		return nil
	}); err != nil || count != 1 {
		t.Fatalf("singleton: err=%v count=%d", err, count)
	}
}

func TestMSBFSRunRejectsBadBatch(t *testing.T) {
	g := Path(3)
	e := NewMSBFS(g)
	for _, src := range [][]int32{nil, make([]int32, MSBatchSize+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run accepted batch of %d sources", len(src))
				}
			}()
			e.Run(0, src)
		}()
	}
}

func TestEdgeBatchesCoverAndGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 10; iter++ {
		g := randomGraph(rng, 30+rng.Intn(200))
		edges := g.EdgeList()
		batches := EdgeBatches(edges)
		covered := 0
		for bi, eb := range batches {
			if len(eb.Sources) == 0 || len(eb.Sources) > MSBatchSize {
				t.Fatalf("batch %d has %d sources", bi, len(eb.Sources))
			}
			if eb.Lo != covered {
				t.Fatalf("batch %d starts at %d, want %d", bi, eb.Lo, covered)
			}
			for k := eb.Lo; k < eb.Hi; k++ {
				rows := eb.Rows[k-eb.Lo]
				if eb.Sources[rows[0]] != edges[k][0] || eb.Sources[rows[1]] != edges[k][1] {
					t.Fatalf("batch %d edge %d: row mapping wrong", bi, k)
				}
			}
			covered = eb.Hi
		}
		if covered != len(edges) {
			t.Fatalf("batches cover %d of %d edges", covered, len(edges))
		}
		srcs := EdgeBatchSources(batches)
		if len(srcs) != len(batches) {
			t.Fatal("source list length mismatch")
		}
	}
}

func TestEdgeBatchesEmpty(t *testing.T) {
	if got := EdgeBatches(nil); got != nil {
		t.Errorf("EdgeBatches(nil) = %v", got)
	}
}
