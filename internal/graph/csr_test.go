package graph

import (
	"testing"
)

// TestCSRBuilderMatchesBuilder assembles the same small graph through the
// sorted-emit CSR path and the generic sort-based builder and demands
// identical structure (a cycle with a chord: C5 plus edge 0-2).
func TestCSRBuilderMatchesBuilder(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {0, 2}}
	n := 5

	gb := NewBuilder(n)
	for _, e := range edges {
		gb.AddEdge(e[0], e[1])
	}
	want := gb.Build()

	cb := NewCSRBuilder()
	cb.Reset(n)
	for _, e := range edges {
		cb.AddDegree(e[0], 1)
		cb.AddDegree(e[1], 1)
	}
	cb.Seal()
	// Emit each adjacency list in sorted order, v ascending.
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := 0; v < n; v++ {
		ws := adj[v]
		for i := 1; i < len(ws); i++ {
			for j := i; j > 0 && ws[j] < ws[j-1]; j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
		for _, w := range ws {
			cb.Emit(v, w)
		}
	}
	got := cb.Build()

	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("CSR build: %d/%d vertices/edges, want %d/%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < n; v++ {
		gw, ww := got.Neighbors(v), want.Neighbors(v)
		if len(gw) != len(ww) {
			t.Fatalf("vertex %d: degree %d, want %d", v, len(gw), len(ww))
		}
		for i := range gw {
			if gw[i] != ww[i] {
				t.Fatalf("vertex %d neighbor %d: %d, want %d", v, i, gw[i], ww[i])
			}
		}
	}
}

// TestCSRBuilderReuse checks that Reset recycles the degree scratch and a
// second, smaller build is independent of the first.
func TestCSRBuilderReuse(t *testing.T) {
	cb := NewCSRBuilder()
	cb.Reset(3)
	for _, v := range []int{0, 1, 1, 2} {
		cb.AddDegree(v, 1)
	}
	cb.Seal()
	cb.Emit(0, 1)
	cb.Emit(1, 0)
	cb.Emit(1, 2)
	cb.Emit(2, 1)
	first := cb.Build()

	cb.Reset(2)
	cb.AddDegree(0, 1)
	cb.AddDegree(1, 1)
	cb.Seal()
	cb.Emit(0, 1)
	cb.Emit(1, 0)
	second := cb.Build()

	if first.M() != 2 || second.M() != 1 {
		t.Fatalf("edge counts %d/%d, want 2/1", first.M(), second.M())
	}
	if first.Neighbors(1)[1] != 2 || second.Neighbors(1)[0] != 0 {
		t.Fatal("reused builder corrupted an earlier or later graph")
	}
}

func wantPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestCSRBuilderMisuse covers the guard rails: odd degree totals, calls
// out of phase, and under-emitted adjacency lists must all panic rather
// than produce a malformed graph.
func TestCSRBuilderMisuse(t *testing.T) {
	wantPanic(t, "Reset(-1)", func() { NewCSRBuilder().Reset(-1) })
	wantPanic(t, "odd degree Seal", func() {
		b := NewCSRBuilder()
		b.Reset(2)
		b.AddDegree(0, 1)
		b.Seal()
	})
	wantPanic(t, "AddDegree after Seal", func() {
		b := NewCSRBuilder()
		b.Reset(1)
		b.Seal()
		b.AddDegree(0, 1)
	})
	wantPanic(t, "double Seal", func() {
		b := NewCSRBuilder()
		b.Reset(1)
		b.Seal()
		b.Seal()
	})
	wantPanic(t, "Build before Seal", func() {
		b := NewCSRBuilder()
		b.Reset(1)
		b.Build()
	})
	wantPanic(t, "under-emitted Build", func() {
		b := NewCSRBuilder()
		b.Reset(2)
		b.AddDegree(0, 1)
		b.AddDegree(1, 1)
		b.Seal()
		b.Emit(0, 1)
		b.Build()
	})
}
