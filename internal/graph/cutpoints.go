package graph

// ArticulationPoints returns the vertices whose removal disconnects their
// component, via Tarjan's low-link DFS in O(n + m). Used by the
// fault-tolerance experiments as the exact linear-time complement to
// trial-based fault injection.
func (g *Graph) ArticulationPoints() []int {
	n := g.N()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := int32(0)

	// Iterative DFS to avoid deep recursion on path-like graphs.
	type frame struct {
		v    int32
		next int // index into adjacency list
	}
	stack := make([]frame, 0, n)
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		rootChildren := 0
		disc[root] = timer
		low[root] = timer
		timer++
		stack = append(stack, frame{v: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.v]
			if f.next < len(adj) {
				u := adj[f.next]
				f.next++
				if disc[u] == -1 {
					parent[u] = f.v
					if int(f.v) == root {
						rootChildren++
					}
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{v: u})
				} else if u != parent[f.v] {
					if disc[u] < low[f.v] {
						low[f.v] = disc[u]
					}
				}
				continue
			}
			// Post-order: propagate low-link to the parent.
			stack = stack[:len(stack)-1]
			p := parent[f.v]
			if p != -1 {
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if int(p) != root && low[f.v] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isCut[root] = true
		}
	}
	var out []int
	for v, c := range isCut {
		if c {
			out = append(out, v)
		}
	}
	return out
}

// Bridges returns the edges whose removal disconnects their component
// (low-link criterion low[child] > disc[parent]), each as {u, v} with u < v.
func (g *Graph) Bridges() [][2]int32 {
	n := g.N()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := int32(0)
	var out [][2]int32

	type frame struct {
		v    int32
		next int
		// skippedParallel tracks whether one edge back to the parent was
		// already ignored (multigraphs are not built here, but a single
		// parent edge must be skipped exactly once).
		skippedParent bool
	}
	stack := make([]frame, 0, n)
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		disc[root] = timer
		low[root] = timer
		timer++
		stack = append(stack, frame{v: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.v]
			if f.next < len(adj) {
				u := adj[f.next]
				f.next++
				if u == parent[f.v] && !f.skippedParent {
					f.skippedParent = true
					continue
				}
				if disc[u] == -1 {
					parent[u] = f.v
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{v: u})
				} else if disc[u] < low[f.v] {
					low[f.v] = disc[u]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			p := parent[f.v]
			if p != -1 {
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if low[f.v] > disc[p] {
					a, b := p, f.v
					if a > b {
						a, b = b, a
					}
					out = append(out, [2]int32{a, b})
				}
			}
		}
	}
	return out
}

// DistanceHistogram returns hist where hist[k] is the number of unordered
// vertex pairs at distance k, and the count of unreachable pairs. The
// histogram length is diameter+1 for connected graphs (nil for graphs with
// fewer than two vertices, which have no pairs). Rows come from the MS-BFS
// engine, 64 sources per batch, merged from per-worker histograms.
func (g *Graph) DistanceHistogram() (hist []uint64, unreachable uint64) {
	n := g.N()
	if n < 2 {
		return nil, 0
	}
	// Pin the resolved worker count into opts so the driver cannot re-read
	// a changed GOMAXPROCS and hand out worker ids beyond len(parts).
	opts := MSOptions{}
	opts.Workers = g.parWorkers(nil, opts)
	type partial struct {
		hist        []uint64
		unreachable uint64
	}
	parts := make([]partial, opts.Workers)
	_ = g.ForEachSourceBatchPar(nil, opts, func(worker int, b *DistBlock) error {
		p := &parts[worker]
		for i, s := range b.Sources {
			row := b.Row(i)
			for v := int(s) + 1; v < n; v++ {
				d := row[v]
				if d == Unreachable {
					p.unreachable++
					continue
				}
				for int(d) >= len(p.hist) {
					p.hist = append(p.hist, 0)
				}
				p.hist[d]++
			}
		}
		return nil
	})
	for i := range parts {
		unreachable += parts[i].unreachable
		for d, c := range parts[i].hist {
			for d >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d] += c
		}
	}
	return hist, unreachable
}
