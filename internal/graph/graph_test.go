package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.M() != 2 {
		t.Errorf("M = %d, want 2 after dedup", g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Error("degrees wrong")
	}
}

func TestBuilderPanics(t *testing.T) {
	assert := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assert("self loop", func() { NewBuilder(2).AddEdge(1, 1) })
	assert("out of range", func() { NewBuilder(2).AddEdge(0, 2) })
	assert("negative n", func() { NewBuilder(-1) })
}

func TestHasEdgeAndNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatal("neighbors not sorted")
		}
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 3) || !g.HasEdge(2, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestEdgeList(t *testing.T) {
	g := Cycle(4)
	el := g.EdgeList()
	if len(el) != 4 {
		t.Fatalf("edge list %v", el)
	}
	for _, e := range el {
		if e[0] >= e[1] {
			t.Errorf("edge %v not ordered", e)
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := g.Distances(0)
	for v := 0; v < 5; v++ {
		if dist[v] != int32(v) {
			t.Errorf("dist[%d] = %d", v, dist[v])
		}
	}
	if g.Dist(1, 4) != 3 {
		t.Error("Dist wrong")
	}
}

// The early-exit pair query must agree with full BFS on every pair,
// including unreachable ones, and reuse one traverser across queries.
func TestTraverserDistPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var tr *Traverser // one traverser across all graphs, via Reset
	for iter := 0; iter < 10; iter++ {
		n := 2 + rng.Intn(60)
		b := NewBuilder(n)
		for i := 0; i < n; i++ { // sparse: disconnected cases likely
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		if tr == nil {
			tr = NewTraverser(g)
		} else {
			tr.Reset(g)
		}
		dist := make([]int32, n)
		for src := 0; src < n; src++ {
			g.BFS(src, dist)
			for v := 0; v < n; v++ {
				if got := tr.Dist(src, v); got != dist[v] {
					t.Fatalf("Dist(%d,%d) = %d, BFS %d", src, v, got, dist[v])
				}
			}
		}
	}
	if d := NewTraverser(Path(3)).Dist(1, 1); d != 0 {
		t.Errorf("Dist(v,v) = %d", d)
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	dist := g.Distances(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Error("unreachable not marked")
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	comp, k := g.Components()
	if k != 2 || comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Errorf("components %v (%d)", comp, k)
	}
}

func TestBFSTreeParents(t *testing.T) {
	g := Path(4)
	tr := NewTraverser(g)
	dist := make([]int32, 4)
	parent := make([]int32, 4)
	tr.BFSTree(1, dist, parent)
	if parent[1] != -1 || parent[0] != 1 || parent[2] != 1 || parent[3] != 2 {
		t.Errorf("parents %v", parent)
	}
}

func TestStatsPathAndCycle(t *testing.T) {
	st := Path(5).Stats()
	if st.Diameter != 4 || st.Radius != 2 || !st.Connected {
		t.Errorf("path stats %+v", st)
	}
	// Sum over pairs for P5: distances 1..4 from ends etc. = 20.
	if st.SumDist != 20 {
		t.Errorf("P5 SumDist = %d, want 20", st.SumDist)
	}
	st = Cycle(6).Stats()
	if st.Diameter != 3 || st.Radius != 3 {
		t.Errorf("cycle stats %+v", st)
	}
}

func TestStatsSingletonAndEmpty(t *testing.T) {
	st := NewBuilder(1).Build().Stats()
	if st.Diameter != 0 || st.Radius != 0 || !st.Connected {
		t.Errorf("singleton stats %+v", st)
	}
	st = NewBuilder(0).Build().Stats()
	if !st.Connected {
		t.Error("empty graph should be connected by convention")
	}
}

func TestStatsDisconnected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	st := b.Build().Stats()
	if st.Connected || st.Diameter != -1 || st.Radius != -1 {
		t.Errorf("disconnected stats %+v", st)
	}
}

func TestAvgDistance(t *testing.T) {
	// K4: every pair at distance 1.
	if got := Complete(4).AvgDistance(); got != 1 {
		t.Errorf("K4 avg distance %f", got)
	}
	// P3: distances 1,1,2 -> 4/3.
	if got := Path(3).AvgDistance(); got < 1.33 || got > 1.34 {
		t.Errorf("P3 avg distance %f", got)
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5)
	if g.MaxDegree() != 5 || g.MinDegree() != 1 {
		t.Error("star degrees wrong")
	}
	seq := g.DegreeSequence()
	if seq[0] != 5 || seq[5] != 1 || len(seq) != 6 {
		t.Errorf("degree sequence %v", seq)
	}
}

func TestIsBipartite(t *testing.T) {
	if ok, _ := Cycle(4).IsBipartite(); !ok {
		t.Error("C4 is bipartite")
	}
	if ok, _ := Cycle(5).IsBipartite(); ok {
		t.Error("C5 is not bipartite")
	}
	ok, color := Path(6).IsBipartite()
	if !ok {
		t.Fatal("path is bipartite")
	}
	Path(6).Edges(func(u, v int) {
		if color[u] == color[v] {
			t.Errorf("coloring invalid on edge {%d,%d}", u, v)
		}
	})
}

func TestCountSquares(t *testing.T) {
	if got := Cycle(4).CountSquares(); got != 1 {
		t.Errorf("C4 squares = %d", got)
	}
	if got := Cycle(6).CountSquares(); got != 0 {
		t.Errorf("C6 squares = %d", got)
	}
	// K4 contains 3 four-cycles.
	if got := Complete(4).CountSquares(); got != 3 {
		t.Errorf("K4 squares = %d", got)
	}
	// 2x3 grid: two unit squares.
	if got := Grid(2, 3).CountSquares(); got != 2 {
		t.Errorf("grid squares = %d", got)
	}
	// Q3: 6 faces.
	b := NewBuilder(8)
	for u := 0; u < 8; u++ {
		for i := 0; i < 3; i++ {
			v := u ^ (1 << i)
			if v > u {
				b.AddEdge(u, v)
			}
		}
	}
	if got := b.Build().CountSquares(); got != 6 {
		t.Errorf("Q3 squares = %d", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := Cycle(5)
	sub, old := g.Subgraph([]int{0, 1, 2})
	if sub.N() != 3 || sub.M() != 2 {
		t.Errorf("subgraph n=%d m=%d", sub.N(), sub.M())
	}
	if old[0] != 0 || old[2] != 2 {
		t.Errorf("old mapping %v", old)
	}
}

func TestStatsMatchesSerialOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 20; iter++ {
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		st := g.Stats()
		// Serial recomputation.
		dist := make([]int32, n)
		tr := NewTraverser(g)
		var sum uint64
		conn := true
		maxEcc, minEcc := int32(0), int32(1<<30)
		for src := 0; src < n; src++ {
			tr.BFS(src, dist)
			ecc := int32(0)
			for v, d := range dist {
				if d == Unreachable {
					conn = false
					continue
				}
				if v > src {
					sum += uint64(d)
				}
				if d > ecc {
					ecc = d
				}
			}
			if ecc > maxEcc {
				maxEcc = ecc
			}
			if ecc < minEcc {
				minEcc = ecc
			}
		}
		if st.Connected != conn || st.SumDist != sum {
			t.Fatalf("iter %d: parallel stats disagree: %+v vs conn=%v sum=%d", iter, st, conn, sum)
		}
		if conn && (st.Diameter != maxEcc || st.Radius != minEcc) {
			t.Fatalf("iter %d: diameter/radius disagree", iter)
		}
	}
}

func TestIsIsometricSubgraphOf(t *testing.T) {
	// P3 inside C6: vertices 0,1,2 of the cycle form an isometric path.
	c6 := Cycle(6)
	p3 := Path(3)
	hostDist := func(a, b int) int32 { return c6.Dist(a, b) }
	if ok, _, _ := p3.IsIsometricSubgraphOf(hostDist, []int{0, 1, 2}); !ok {
		t.Error("P3 should be isometric in C6")
	}
	// P4 on vertices 0,1,2,3 of C6 is not isometric: d_C6(0,3) = 3 = d_P4;
	// actually it is isometric. Use C4 instead: P4 0..3 in C4 means ends at
	// distance 3 in the path but 1 in the cycle.
	c4 := Cycle(4)
	p4 := Path(4)
	hostDist4 := func(a, b int) int32 { return c4.Dist(a, b) }
	ok, u, v := p4.IsIsometricSubgraphOf(hostDist4, []int{0, 1, 2, 3})
	if ok {
		t.Error("P4 should not be isometric in C4")
	}
	if u == v {
		t.Error("violating pair not reported")
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := Path(3).WriteDOT(&sb, "P3", func(v int) string { return string(rune('a' + v)) }); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph \"P3\"", "v0 [label=\"a\"]", "v0 -- v1", "v1 -- v2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestGenerators(t *testing.T) {
	if g := Grid(3, 4); g.N() != 12 || g.M() != 17 {
		t.Errorf("grid 3x4: n=%d m=%d", g.N(), g.M())
	}
	if g := Complete(5); g.M() != 10 {
		t.Errorf("K5 m=%d", g.M())
	}
	if g := Tree([]int{0, 0, 0, 1, 1}); g.N() != 5 || g.M() != 4 || g.Degree(0) != 2 {
		t.Error("tree generator wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}
