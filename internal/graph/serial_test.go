package graph

import (
	"encoding/binary"
	"testing"
)

// Serialize → load → reserialize must be byte-identical, and the loaded
// graph must answer structural queries exactly like the original.
func TestGraphSerialRoundTrip(t *testing.T) {
	for name, g := range map[string]*Graph{
		"cycle8":    Cycle(8),
		"path1":     Path(1),
		"star5":     Star(5),
		"grid3x4":   Grid(3, 4),
		"complete6": Complete(6),
	} {
		blob := g.AppendBinary(nil)
		got, err := LoadFrom(blob)
		if err != nil {
			t.Fatalf("%s: LoadFrom: %v", name, err)
		}
		if string(got.AppendBinary(nil)) != string(blob) {
			t.Fatalf("%s: reserialization differs", name)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("%s: size %d/%d, want %d/%d", name, got.N(), got.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if got.Degree(v) != g.Degree(v) {
				t.Fatalf("%s: degree(%d) differs", name, v)
			}
		}
	}
}

// Structural validation must reject every corruption class: a LoadFrom
// that succeeds is safe to answer distance and routing queries from.
func TestLoadFromRejectsCorruption(t *testing.T) {
	blob := Cycle(6).AppendBinary(nil)

	mut := func(name string, f func([]byte) []byte) {
		t.Helper()
		if _, err := LoadFrom(f(append([]byte(nil), blob...))); err == nil {
			t.Errorf("%s: corrupted payload accepted", name)
		}
	}

	mut("empty", func(b []byte) []byte { return nil })
	mut("truncated", func(b []byte) []byte { return b[:len(b)-4] })
	mut("padded", func(b []byte) []byte { return append(b, 0, 0, 0, 0) })
	mut("giant n", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b, 1<<40)
		return b
	})
	mut("giant m", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 1<<40)
		return b
	})
	mut("offset bounds", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16:], 1) // off[0] must be 0
		return b
	})
	mut("decreasing offsets", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[20:], 12) // off[1] > off[6] = 12 forces a later decrease
		binary.LittleEndian.PutUint32(b[24:], 2)
		return b
	})
	mut("self loop", func(b []byte) []byte {
		// First adjacency entry (vertex 0's first neighbor) set to 0.
		binary.LittleEndian.PutUint32(b[16+4*7:], 0)
		return b
	})
	mut("neighbor out of range", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16+4*7:], 99)
		return b
	})
	mut("row not increasing", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16+4*8:], 1) // vertex 0's row becomes [1, 1]
		return b
	})
}
