package graph

import (
	"math/rand"
	"testing"
)

func TestArticulationPointsPath(t *testing.T) {
	// Interior vertices of a path are articulation points.
	cuts := Path(5).ArticulationPoints()
	if len(cuts) != 3 {
		t.Fatalf("P_5 cuts = %v", cuts)
	}
	for _, v := range cuts {
		if v == 0 || v == 4 {
			t.Errorf("endpoint %d reported as cut", v)
		}
	}
}

func TestArticulationPointsCycleAndComplete(t *testing.T) {
	if cuts := Cycle(6).ArticulationPoints(); len(cuts) != 0 {
		t.Errorf("C_6 cuts = %v", cuts)
	}
	if cuts := Complete(5).ArticulationPoints(); len(cuts) != 0 {
		t.Errorf("K_5 cuts = %v", cuts)
	}
}

func TestArticulationPointsStar(t *testing.T) {
	cuts := Star(4).ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 0 {
		t.Errorf("K_{1,4} cuts = %v", cuts)
	}
}

func TestBridgesPathAndCycle(t *testing.T) {
	if br := Path(4).Bridges(); len(br) != 3 {
		t.Errorf("P_4 bridges = %v", br)
	}
	if br := Cycle(5).Bridges(); len(br) != 0 {
		t.Errorf("C_5 bridges = %v", br)
	}
}

func TestBridgesTwoTriangles(t *testing.T) {
	// Two triangles joined by one edge: exactly that edge is a bridge.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	g := b.Build()
	br := g.Bridges()
	if len(br) != 1 || br[0] != [2]int32{2, 3} {
		t.Errorf("bridges = %v", br)
	}
	cuts := g.ArticulationPoints()
	if len(cuts) != 2 {
		t.Errorf("cuts = %v, want {2, 3}", cuts)
	}
}

// Cross-check Tarjan against brute-force deletion on random graphs.
func TestArticulationAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		n := 3 + rng.Intn(12)
		b := NewBuilder(n)
		for i := 0; i < n+rng.Intn(2*n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		_, baseComponents := g.Components()
		want := map[int]bool{}
		for v := 0; v < n; v++ {
			keep := make([]int, 0, n-1)
			for u := 0; u < n; u++ {
				if u != v {
					keep = append(keep, u)
				}
			}
			sub, _ := g.Subgraph(keep)
			_, k := sub.Components()
			// v is a cut vertex iff removing it increases the number of
			// components (accounting for the removal of an isolated v).
			delta := k - baseComponents
			if g.Degree(v) == 0 {
				delta++ // removing an isolated vertex removes its component
			}
			if delta > 0 {
				want[v] = true
			}
		}
		got := map[int]bool{}
		for _, v := range g.ArticulationPoints() {
			got[v] = true
		}
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("iter %d: vertex %d: tarjan %v, brute %v (graph %v)",
					iter, v, got[v], want[v], g.EdgeList())
			}
		}
	}
}

func TestBridgesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 30; iter++ {
		n := 3 + rng.Intn(10)
		b := NewBuilder(n)
		for i := 0; i < n+rng.Intn(n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		_, baseComponents := g.Components()
		want := map[[2]int32]bool{}
		for _, e := range g.EdgeList() {
			nb := NewBuilder(n)
			g.Edges(func(u, v int) {
				if !(int32(u) == e[0] && int32(v) == e[1]) {
					nb.AddEdge(u, v)
				}
			})
			_, k := nb.Build().Components()
			if k > baseComponents {
				want[e] = true
			}
		}
		got := map[[2]int32]bool{}
		for _, e := range g.Bridges() {
			got[e] = true
		}
		for _, e := range g.EdgeList() {
			if got[e] != want[e] {
				t.Fatalf("iter %d: edge %v: tarjan %v, brute %v", iter, e, got[e], want[e])
			}
		}
	}
}

func TestDistanceHistogram(t *testing.T) {
	hist, unreachable := Path(4).DistanceHistogram()
	// P_4 pair distances: 1x3 pairs at d=1, 2 at d=2, 1 at d=3.
	want := []uint64{0, 3, 2, 1}
	if unreachable != 0 || len(hist) != len(want) {
		t.Fatalf("hist=%v unreachable=%d", hist, unreachable)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
	// Disconnected pairs are counted separately.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	hist, unreachable = b.Build().DistanceHistogram()
	if unreachable != 2 {
		t.Errorf("unreachable = %d, want 2", unreachable)
	}
	if len(hist) != 2 || hist[1] != 1 {
		t.Errorf("disconnected hist = %v", hist)
	}
}

func TestDistanceHistogramDegenerate(t *testing.T) {
	// No pairs at all: empty and single-vertex graphs.
	for n := 0; n <= 1; n++ {
		hist, unreachable := NewBuilder(n).Build().DistanceHistogram()
		if hist != nil || unreachable != 0 {
			t.Errorf("n=%d: hist=%v unreachable=%d", n, hist, unreachable)
		}
	}
	// All pairs unreachable: edgeless graph on 4 vertices.
	hist, unreachable := NewBuilder(4).Build().DistanceHistogram()
	if len(hist) != 0 || unreachable != 6 {
		t.Errorf("edgeless: hist=%v unreachable=%d", hist, unreachable)
	}
}

func TestDistanceHistogramMatchesStats(t *testing.T) {
	g := Grid(5, 7)
	hist, unreachable := g.DistanceHistogram()
	st := g.Stats()
	if unreachable != 0 {
		t.Fatalf("grid graph disconnected? unreachable=%d", unreachable)
	}
	var sum, pairs uint64
	for d, c := range hist {
		sum += uint64(d) * c
		pairs += c
	}
	if sum != st.SumDist {
		t.Errorf("histogram sum %d != SumDist %d", sum, st.SumDist)
	}
	n := uint64(g.N())
	if pairs != n*(n-1)/2 {
		t.Errorf("histogram covers %d pairs, want %d", pairs, n*(n-1)/2)
	}
	if int32(len(hist)-1) != st.Diameter {
		t.Errorf("histogram length %d vs diameter %d", len(hist), st.Diameter)
	}
}
