package graph

import (
	"encoding/binary"
	"fmt"
	"math"

	"gfcube/internal/memview"
)

// CSR serialization for the artifact store. The payload is little-endian
// and laid out so a mapped copy is usable in place:
//
//	uint64 n            vertex count
//	uint64 m            edge count
//	int32  off[n+1]     CSR row offsets into flat (off[0]=0, off[n]=2m)
//	int32  flat[2m]     concatenated sorted adjacency rows
//
// The header is 16 bytes, so when the payload itself starts 8-aligned
// (the store guarantees this) both int32 sections are naturally aligned
// and LoadFrom adopts them zero-copy on little-endian hosts.

// AppendBinary appends the graph's serialized CSR form to dst and
// returns the extended slice.
func (g *Graph) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(g.adj)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(g.m))
	off := int32(0)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	for v := range g.adj {
		off += int32(len(g.adj[v]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(off))
	}
	for v := range g.adj {
		for _, w := range g.adj[v] {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(w))
		}
	}
	return dst
}

// LoadFrom reconstructs a Graph from data written by AppendBinary,
// adopting the offset and adjacency arenas zero-copy when the platform
// allows. The structure is validated in full — monotonic offsets,
// strictly increasing rows, endpoints in range, no self-loops, mirrored
// degree sum — so any error means the caller must fall back to
// computing. The rows may alias read-only mapped memory; Graph never
// mutates them after construction.
func LoadFrom(data []byte) (*Graph, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("graph: payload %d bytes, want >= 16", len(data))
	}
	n64 := binary.LittleEndian.Uint64(data)
	m64 := binary.LittleEndian.Uint64(data[8:])
	if n64 > math.MaxInt32-1 || m64 > math.MaxInt32/2 {
		return nil, fmt.Errorf("graph: size %d vertices / %d edges exceeds int32 layout", n64, m64)
	}
	n, m := int(n64), int(m64)
	want := 16 + 4*uint64(n+1) + 8*m64
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("graph: payload %d bytes, layout needs %d", len(data), want)
	}
	off, ok := memview.Int32(data[16 : 16+4*(n+1)])
	if !ok {
		return nil, fmt.Errorf("graph: misaligned offset section")
	}
	flat, ok := memview.Int32(data[16+4*(n+1):])
	if !ok {
		return nil, fmt.Errorf("graph: misaligned adjacency section")
	}
	if off[0] != 0 || off[n] != int32(2*m) {
		return nil, fmt.Errorf("graph: offset bounds [%d, %d], want [0, %d]", off[0], off[n], 2*m)
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
		row := flat[lo:hi:hi]
		for i, w := range row {
			if w < 0 || w >= int32(n) || w == int32(v) {
				return nil, fmt.Errorf("graph: bad neighbor %d of vertex %d", w, v)
			}
			if i > 0 && row[i-1] >= w {
				return nil, fmt.Errorf("graph: adjacency row %d not strictly increasing", v)
			}
		}
		adj[v] = row
	}
	return &Graph{adj: adj, m: m}, nil
}
