package graph

import "testing"

// FuzzMSBFS cross-checks the bit-parallel MS-BFS engine against the serial
// Traverser.BFS on arbitrary graphs: the fuzz input encodes a vertex count
// and an edge list, and every row of every delivered block must be
// bit-identical to a fresh serial search from the same source.
func FuzzMSBFS(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 3, 4})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(130), []byte{0, 129, 5, 64, 64, 65})
	f.Fuzz(func(t *testing.T, nRaw uint8, edgeBytes []byte) {
		n := int(nRaw)
		if n == 0 {
			return
		}
		b := NewBuilder(n)
		for i := 0; i+1 < len(edgeBytes); i += 2 {
			u, v := int(edgeBytes[i])%n, int(edgeBytes[i+1])%n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		want := make([]int32, n)
		tr := NewTraverser(g)
		err := g.ForEachSourceBatch(nil, MSOptions{}, func(blk *DistBlock) error {
			for i, s := range blk.Sources {
				tr.BFS(int(s), want)
				row := blk.Row(i)
				reached := int32(0)
				for v := range want {
					if row[v] != want[v] {
						t.Fatalf("n=%d source %d: dist[%d] = %d, serial %d", n, s, v, row[v], want[v])
					}
					if want[v] != Unreachable {
						reached++
					}
				}
				if blk.Reached[i] != reached {
					t.Fatalf("n=%d source %d: Reached=%d want %d", n, s, blk.Reached[i], reached)
				}
				// The early-exit pair query must agree with the row too.
				v := (int(s) + n/2) % n
				if d := NewTraverser(g).Dist(int(s), v); d != row[v] {
					t.Fatalf("n=%d: Dist(%d,%d) = %d, row %d", n, s, v, d, row[v])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
