// Package graph implements the undirected-graph substrate used by the
// generalized Fibonacci cube library: compact adjacency-list graphs, breadth
// first search, parallel all-pairs distance computations, and the structural
// metrics reported in the paper's evaluation (order, size, degrees, diameter,
// radius, average distance, number of squares, bipartiteness).
//
// Vertices are integers 0..n-1; callers keep their own vertex labelling
// (for Q_d(f), the sorted list of f-free words).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a finite simple undirected graph with adjacency lists sorted in
// increasing order. Build one with a Builder.
type Graph struct {
	adj [][]int32
	m   int
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected;
// duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build produces the immutable graph. The builder may be reused afterwards
// but retains its edges.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	deg := make([]int32, b.n)
	m := 0
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
		m++
	}
	adj := make([][]int32, b.n)
	for v := range adj {
		adj[v] = make([]int32, 0, deg[v])
	}
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	return &Graph{adj: adj, m: m}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edges calls fn once for every edge {u,v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				fn(u, int(v))
			}
		}
	}
}

// EdgeList returns all edges {u,v} with u < v in lexicographic order.
func (g *Graph) EdgeList() [][2]int32 {
	out := make([][2]int32, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int32{int32(u), int32(v)}) })
	return out
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > best {
			best = d
		}
	}
	return best
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	best := len(g.adj[0])
	for v := range g.adj {
		if d := len(g.adj[v]); d < best {
			best = d
		}
	}
	return best
}

// DegreeSequence returns the sorted (descending) degree sequence; a cheap
// isomorphism invariant used by the Lemma 2.2/2.3 tests.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.N())
	for v := range g.adj {
		out[v] = len(g.adj[v])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Subgraph returns the induced subgraph on the given vertex set, together
// with the mapping from new vertex ids to old ones. Used by fault-injection
// experiments.
func (g *Graph) Subgraph(keep []int) (*Graph, []int) {
	idx := make(map[int]int, len(keep))
	old := make([]int, len(keep))
	for i, v := range keep {
		idx[v] = i
		old[i] = v
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := idx[int(w)]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), old
}
