// Package graph implements the undirected-graph substrate used by the
// generalized Fibonacci cube library: compact adjacency-list graphs, breadth
// first search, parallel all-pairs distance computations, and the structural
// metrics reported in the paper's evaluation (order, size, degrees, diameter,
// radius, average distance, number of squares, bipartiteness).
//
// Vertices are integers 0..n-1; callers keep their own vertex labelling
// (for Q_d(f), the sorted list of f-free words).
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is a finite simple undirected graph with adjacency lists sorted in
// increasing order. Build one with a Builder. The adjacency lists are views
// into one flat arena, so a graph costs O(1) allocations beyond its size.
type Graph struct {
	adj [][]int32
	m   int
}

// Builder accumulates edges and produces an immutable Graph. A Builder can
// be reused across many graphs via Reset, which retains its internal
// buffers; this is the allocation-free path used by grid sweeps.
type Builder struct {
	n     int
	edges []uint64 // packed uint64(u)<<32 | v with u < v
	off   []int32  // scratch: CSR offsets, reused across Build calls
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n}
}

// Reset clears the builder for a new graph on n vertices, retaining the
// edge and offset buffers of previous builds.
func (b *Builder) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	b.n = n
	b.edges = b.edges[:0]
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected;
// duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
}

// Build produces the immutable graph: adjacency lists are carved out of a
// single flat arena (CSR layout) so the only allocations are the arena and
// the header slice. The builder may be reused afterwards via Reset.
func (b *Builder) Build() *Graph {
	slices.Sort(b.edges)
	if cap(b.off) < b.n+1 {
		b.off = make([]int32, b.n+1)
	}
	off := b.off[:b.n+1]
	for i := range off {
		off[i] = 0
	}
	m := 0
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		off[int32(e>>32)+1]++
		off[int32(e)+1]++
		m++
	}
	for v := 0; v < b.n; v++ {
		off[v+1] += off[v]
	}
	flat := make([]int32, 2*m)
	adj := make([][]int32, b.n)
	for v := 0; v < b.n; v++ {
		adj[v] = flat[off[v]:off[v]:off[v+1]]
	}
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		u, v := int32(e>>32), int32(e)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	// Edges are sorted by (u, v), so adj[u] entries with v > u arrive in
	// order, but the mirrored v -> u entries interleave; sort each list.
	for v := range adj {
		slices.Sort(adj[v])
	}
	return &Graph{adj: adj, m: m}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edges calls fn once for every edge {u,v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				fn(u, int(v))
			}
		}
	}
}

// EdgeList returns all edges {u,v} with u < v in lexicographic order.
func (g *Graph) EdgeList() [][2]int32 {
	out := make([][2]int32, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int32{int32(u), int32(v)}) })
	return out
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > best {
			best = d
		}
	}
	return best
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	best := len(g.adj[0])
	for v := range g.adj {
		if d := len(g.adj[v]); d < best {
			best = d
		}
	}
	return best
}

// DegreeSequence returns the sorted (descending) degree sequence; a cheap
// isomorphism invariant used by the Lemma 2.2/2.3 tests.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.N())
	for v := range g.adj {
		out[v] = len(g.adj[v])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Subgraph returns the induced subgraph on the given vertex set, together
// with the mapping from new vertex ids to old ones. Used by fault-injection
// experiments.
func (g *Graph) Subgraph(keep []int) (*Graph, []int) {
	idx := make(map[int]int, len(keep))
	old := make([]int, len(keep))
	for i, v := range keep {
		idx[v] = i
		old[i] = v
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := idx[int(w)]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), old
}
