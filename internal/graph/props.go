package graph

import (
	"runtime"
	"sync"
)

// DistanceStats aggregates the all-pairs distance information reported in
// the evaluation tables: eccentricities (hence diameter and radius), the sum
// of pairwise distances, and connectivity.
type DistanceStats struct {
	Ecc       []int32 // per-vertex eccentricity; -1 if graph disconnected
	Diameter  int32
	Radius    int32
	SumDist   uint64 // sum of d(u,v) over unordered pairs
	Connected bool
}

// Stats computes distances from every vertex on the MS-BFS engine — 64
// sources per bitset batch, batches fanned across runtime.GOMAXPROCS(0)
// workers — and aggregates distance statistics. For a disconnected graph
// Connected is false, Diameter and Radius are -1 and SumDist counts only
// reachable pairs.
func (g *Graph) Stats() DistanceStats { return g.StatsWorkers(0) }

// StatsWorkers is Stats with an explicit engine worker count (0 = use the
// machine). Grid sweeps that already parallelize across cells pass 1 to
// keep each cell serial.
func (g *Graph) StatsWorkers(workers int) DistanceStats {
	n := g.N()
	st := DistanceStats{Ecc: make([]int32, n), Diameter: -1, Radius: -1, Connected: true}
	if n == 0 {
		return st
	}
	if n == 1 {
		st.Diameter, st.Radius = 0, 0
		return st
	}
	// Pin the resolved worker count into opts so the driver cannot re-read
	// a changed GOMAXPROCS and hand out worker ids beyond len(parts).
	opts := MSOptions{Workers: workers}
	opts.Workers = g.parWorkers(nil, opts)
	type partial struct {
		sum  uint64
		conn bool
		_    [48]byte // padding: partials are written from distinct workers
	}
	parts := make([]partial, opts.Workers)
	for i := range parts {
		parts[i].conn = true
	}
	// The engine driver guarantees each source appears in exactly one
	// block, so st.Ecc rows are written by exactly one worker.
	_ = g.ForEachSourceBatchPar(nil, opts, func(worker int, b *DistBlock) error {
		p := &parts[worker]
		for i, s := range b.Sources {
			row := b.Row(i)
			ecc := int32(0)
			if int(b.Reached[i]) == n {
				for v, d := range row {
					if d > ecc {
						ecc = d
					}
					if v > int(s) {
						p.sum += uint64(d)
					}
				}
			} else {
				p.conn = false
				for v, d := range row {
					if d == Unreachable {
						continue
					}
					if d > ecc {
						ecc = d
					}
					if v > int(s) {
						p.sum += uint64(d)
					}
				}
			}
			st.Ecc[s] = ecc
		}
		return nil
	})
	conn := true
	for i := range parts {
		st.SumDist += parts[i].sum
		conn = conn && parts[i].conn
	}
	st.Connected = conn
	if conn {
		st.Diameter, st.Radius = 0, st.Ecc[0]
		for _, e := range st.Ecc {
			if e > st.Diameter {
				st.Diameter = e
			}
			if e < st.Radius {
				st.Radius = e
			}
		}
	} else {
		for i := range st.Ecc {
			st.Ecc[i] = -1
		}
	}
	return st
}

// Diameter returns the diameter of a connected graph, or -1 if disconnected.
func (g *Graph) Diameter() int32 { return g.Stats().Diameter }

// AvgDistance returns the mean distance over unordered pairs of distinct
// vertices of a connected graph. It returns 0 for graphs with fewer than two
// vertices and -1 for disconnected graphs.
func (g *Graph) AvgDistance() float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	st := g.Stats()
	if !st.Connected {
		return -1
	}
	return float64(st.SumDist) / float64(n*(n-1)/2)
}

// CountSquares returns the number of 4-cycles. Each square is counted once.
// The method counts, for every ordered pair u < v, the number c of common
// neighbors and accumulates C(c,2); every square has exactly two diagonal
// pairs, so the total is halved.
func (g *Graph) CountSquares() uint64 {
	n := g.N()
	counts := make(map[int32]uint32)
	var total uint64
	for u := 0; u < n; u++ {
		clear(counts)
		for _, w := range g.adj[u] {
			for _, v := range g.adj[w] {
				if v > int32(u) {
					counts[v]++
				}
			}
		}
		for _, c := range counts {
			total += uint64(c) * uint64(c-1) / 2
		}
	}
	return total / 2
}

// IsIsometricSubgraphOf reports whether this graph, whose vertices are
// identified with vertices of the host via the injection hostID, has the
// same pairwise distances as the host on that vertex subset. dist(host) is
// computed by BFS per source; the check is parallelized across sources and
// exits early on the first violating pair, which it returns.
func (g *Graph) IsIsometricSubgraphOf(hostDist func(a, b int) int32, hostID []int) (ok bool, badU, badV int) {
	n := g.N()
	if len(hostID) != n {
		panic("graph: hostID length mismatch")
	}
	type violation struct{ u, v int }
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		found   *violation
		sources = make(chan int, n)
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := NewTraverser(g)
			dist := make([]int32, n)
			for src := range sources {
				mu.Lock()
				stop := found != nil
				mu.Unlock()
				if stop {
					continue // drain
				}
				t.BFS(src, dist)
				for v := 0; v < n; v++ {
					if v == src {
						continue
					}
					if dist[v] != hostDist(hostID[src], hostID[v]) {
						mu.Lock()
						if found == nil {
							found = &violation{src, v}
						}
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	for src := 0; src < n; src++ {
		sources <- src
	}
	close(sources)
	wg.Wait()
	if found != nil {
		return false, found.u, found.v
	}
	return true, -1, -1
}
