package graph

import (
	"runtime"
	"sync"
)

// DistanceStats aggregates the all-pairs distance information reported in
// the evaluation tables: eccentricities (hence diameter and radius), the sum
// of pairwise distances, and connectivity.
type DistanceStats struct {
	Ecc       []int32 // per-vertex eccentricity; -1 if graph disconnected
	Diameter  int32
	Radius    int32
	SumDist   uint64 // sum of d(u,v) over unordered pairs
	Connected bool
}

// Stats runs a BFS from every vertex, in parallel across
// runtime.GOMAXPROCS(0) workers, and aggregates distance statistics. For a
// disconnected graph Connected is false, Diameter and Radius are -1 and
// SumDist counts only reachable pairs.
func (g *Graph) Stats() DistanceStats {
	n := g.N()
	st := DistanceStats{Ecc: make([]int32, n), Diameter: -1, Radius: -1, Connected: true}
	if n == 0 {
		return st
	}
	if n == 1 {
		st.Diameter, st.Radius = 0, 0
		return st
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		next     = make(chan int, workers)
		sumTotal uint64
		conn     = true
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := NewTraverser(g)
			dist := make([]int32, n)
			var localSum uint64
			localConn := true
			for src := range next {
				t.BFS(src, dist)
				ecc := int32(0)
				for v, d := range dist {
					if d == Unreachable {
						localConn = false
						continue
					}
					if v > src {
						localSum += uint64(d)
					}
					if d > ecc {
						ecc = d
					}
				}
				st.Ecc[src] = ecc // each src written by exactly one worker
			}
			mu.Lock()
			sumTotal += localSum
			conn = conn && localConn
			mu.Unlock()
		}()
	}
	for src := 0; src < n; src++ {
		next <- src
	}
	close(next)
	wg.Wait()
	st.SumDist = sumTotal
	st.Connected = conn
	if conn {
		st.Diameter, st.Radius = 0, st.Ecc[0]
		for _, e := range st.Ecc {
			if e > st.Diameter {
				st.Diameter = e
			}
			if e < st.Radius {
				st.Radius = e
			}
		}
	} else {
		for i := range st.Ecc {
			st.Ecc[i] = -1
		}
	}
	return st
}

// Diameter returns the diameter of a connected graph, or -1 if disconnected.
func (g *Graph) Diameter() int32 { return g.Stats().Diameter }

// AvgDistance returns the mean distance over unordered pairs of distinct
// vertices of a connected graph. It returns 0 for graphs with fewer than two
// vertices and -1 for disconnected graphs.
func (g *Graph) AvgDistance() float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	st := g.Stats()
	if !st.Connected {
		return -1
	}
	return float64(st.SumDist) / float64(n*(n-1)/2)
}

// CountSquares returns the number of 4-cycles. Each square is counted once.
// The method counts, for every ordered pair u < v, the number c of common
// neighbors and accumulates C(c,2); every square has exactly two diagonal
// pairs, so the total is halved.
func (g *Graph) CountSquares() uint64 {
	n := g.N()
	counts := make(map[int32]uint32)
	var total uint64
	for u := 0; u < n; u++ {
		clear(counts)
		for _, w := range g.adj[u] {
			for _, v := range g.adj[w] {
				if v > int32(u) {
					counts[v]++
				}
			}
		}
		for _, c := range counts {
			total += uint64(c) * uint64(c-1) / 2
		}
	}
	return total / 2
}

// IsIsometricSubgraphOf reports whether this graph, whose vertices are
// identified with vertices of the host via the injection hostID, has the
// same pairwise distances as the host on that vertex subset. dist(host) is
// computed by BFS per source; the check is parallelized across sources and
// exits early on the first violating pair, which it returns.
func (g *Graph) IsIsometricSubgraphOf(hostDist func(a, b int) int32, hostID []int) (ok bool, badU, badV int) {
	n := g.N()
	if len(hostID) != n {
		panic("graph: hostID length mismatch")
	}
	type violation struct{ u, v int }
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		found   *violation
		sources = make(chan int, n)
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := NewTraverser(g)
			dist := make([]int32, n)
			for src := range sources {
				mu.Lock()
				stop := found != nil
				mu.Unlock()
				if stop {
					continue // drain
				}
				t.BFS(src, dist)
				for v := 0; v < n; v++ {
					if v == src {
						continue
					}
					if dist[v] != hostDist(hostID[src], hostID[v]) {
						mu.Lock()
						if found == nil {
							found = &violation{src, v}
						}
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	for src := 0; src < n; src++ {
		sources <- src
	}
	close(sources)
	wg.Wait()
	if found != nil {
		return false, found.u, found.v
	}
	return true, -1, -1
}
