package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format. label(v) supplies the
// node label for vertex v; pass nil to label vertices by index. Used to
// regenerate the paper's Figures 1 and 2.
func (g *Graph) WriteDOT(w io.Writer, name string, label func(int) string) error {
	bw := bufio.NewWriter(w)
	if label == nil {
		label = func(v int) string { return fmt.Sprintf("%d", v) }
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle fontsize=10];\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(bw, "  v%d [label=%q];\n", v, label(v)); err != nil {
			return err
		}
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "  v%d -- v%d;\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}

// Path returns the path graph P_n on n vertices (n-1 edges).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 vertices")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Star returns the star K_{1,n}: vertex 0 joined to 1..n.
func Star(n int) *Graph {
	b := NewBuilder(n + 1)
	for i := 1; i <= n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Grid returns the p x q grid graph (Cartesian product of paths).
func Grid(p, q int) *Graph {
	b := NewBuilder(p * q)
	id := func(i, j int) int { return i*q + j }
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			if i+1 < p {
				b.AddEdge(id(i, j), id(i+1, j))
			}
			if j+1 < q {
				b.AddEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Tree builds a tree from a parent vector: parent[0] is ignored (root), and
// for v > 0 the edge {v, parent[v]} is added.
func Tree(parent []int) *Graph {
	b := NewBuilder(len(parent))
	for v := 1; v < len(parent); v++ {
		b.AddEdge(v, parent[v])
	}
	return b.Build()
}
