package hamilton

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/hypercube"
)

func TestPathOnPathGraph(t *testing.T) {
	g := graph.Path(6)
	order, res := Path(g, 0)
	if res != Found || !Verify(g, order, false) {
		t.Fatalf("path graph: %v %v", order, res)
	}
	if _, res := Cycle(g, 0); res != None {
		t.Error("path graph has no Hamiltonian cycle")
	}
}

func TestCycleOnCycleGraph(t *testing.T) {
	g := graph.Cycle(8)
	order, res := Cycle(g, 0)
	if res != Found || !Verify(g, order, true) {
		t.Fatalf("cycle graph: %v %v", order, res)
	}
}

func TestHypercubeHamiltonian(t *testing.T) {
	// Q_d is Hamiltonian for d >= 2 (Gray codes).
	for d := 2; d <= 5; d++ {
		g := hypercube.Build(d)
		order, res := Cycle(g, 0)
		if res != Found || !Verify(g, order, true) {
			t.Fatalf("Q_%d: no Hamiltonian cycle found (%v)", d, res)
		}
	}
}

func TestStarHasNoHamiltonianPath(t *testing.T) {
	if _, res := Path(graph.Star(3), 0); res != None {
		t.Error("K_{1,3} has no Hamiltonian path")
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, res := Path(b.Build(), 0); res != None {
		t.Error("disconnected graph has no Hamiltonian path")
	}
}

func TestTinyGraphs(t *testing.T) {
	if order, res := Path(graph.NewBuilder(1).Build(), 0); res != Found || len(order) != 1 {
		t.Error("K_1 has the trivial Hamiltonian path")
	}
	if _, res := Cycle(graph.NewBuilder(1).Build(), 0); res != None {
		t.Error("K_1 has no Hamiltonian cycle")
	}
	if _, res := Path(graph.NewBuilder(0).Build(), 0); res != None {
		t.Error("empty graph: no path")
	}
}

// Fibonacci cubes contain a Hamiltonian path for every d (ICPP-era result;
// reference [15] of the paper).
func TestFibonacciCubesHavePaths(t *testing.T) {
	for d := 1; d <= 9; d++ {
		g := core.Fibonacci(d).Graph()
		order, res := Path(g, 0)
		if res != Found || !Verify(g, order, false) {
			t.Errorf("Γ_%d: Hamiltonian path not found (%v)", d, res)
		}
	}
}

// "Mostly Hamiltonian": Q_d(1^s) for s >= 3 has a Hamiltonian path in every
// tested dimension.
func TestThirdOrderCubesHavePaths(t *testing.T) {
	for _, s := range []int{3, 4} {
		f := bitstr.Ones(s)
		for d := 1; d <= 8; d++ {
			g := core.New(d, f).Graph()
			order, res := Path(g, 0)
			if res != Found || !Verify(g, order, false) {
				t.Errorf("Q_%d(1^%d): Hamiltonian path not found (%v)", d, s, res)
			}
		}
	}
}

// Γ_d has a Hamiltonian cycle only when its two partition classes are equal
// in size; verify the parity refutation engages (e.g. Γ_2 = P_3: |A|-|B|=1).
func TestFibonacciCycleParity(t *testing.T) {
	g := core.Fibonacci(2).Graph()
	if _, res := Cycle(g, 0); res != None {
		t.Error("Γ_2 = P_3 has no Hamiltonian cycle")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A tiny budget on a large instance must return Inconclusive, not block.
	g := core.Fibonacci(12).Graph()
	if _, res := Path(g, 3); res != Inconclusive {
		t.Errorf("budget 3 gave %v", res)
	}
}

func TestVerifyRejects(t *testing.T) {
	g := graph.Path(4)
	if Verify(g, []int32{0, 1, 2}, false) {
		t.Error("short order accepted")
	}
	if Verify(g, []int32{0, 1, 1, 2}, false) {
		t.Error("duplicate vertex accepted")
	}
	if Verify(g, []int32{0, 2, 1, 3}, false) {
		t.Error("non-adjacent consecutive pair accepted")
	}
	if Verify(g, []int32{0, 1, 2, 3}, true) {
		t.Error("open path accepted as cycle")
	}
}

func TestResultString(t *testing.T) {
	if Found.String() != "found" || None.String() != "none" || Inconclusive.String() != "inconclusive" {
		t.Error("result strings wrong")
	}
}
