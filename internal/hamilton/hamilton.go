// Package hamilton implements Hamiltonian path and cycle search for
// generalized Fibonacci cubes. The companion ICPP-era result (paper
// reference [15], "Generalized Fibonacci cubes are mostly Hamiltonian")
// concerns exactly these questions for Q_d(1^s); the experiments reproduce
// its claims on explicitly built cubes.
//
// The search is exact backtracking with a Warnsdorff-style ordering (fewest
// onward moves first) and an explicit node budget, so callers can
// distinguish "no Hamiltonian path exists" from "search gave up".
package hamilton

import (
	"context"
	"sort"

	"gfcube/internal/graph"
)

// Result classifies the outcome of a bounded search.
type Result int

const (
	// Found: a Hamiltonian path/cycle was found (returned explicitly).
	Found Result = iota
	// None: the exhaustive search proved none exists.
	None
	// Inconclusive: the node budget was exhausted before the search
	// completed.
	Inconclusive
)

func (r Result) String() string {
	switch r {
	case Found:
		return "found"
	case None:
		return "none"
	default:
		return "inconclusive"
	}
}

// Path searches for a Hamiltonian path. budget bounds the number of
// backtracking node expansions (0 means a generous default of 4 million).
// When the result is Found, the returned slice is a permutation of the
// vertices with consecutive entries adjacent.
func Path(g *graph.Graph, budget int64) ([]int32, Result) {
	return search(context.Background(), g, budget, false)
}

// Cycle searches for a Hamiltonian cycle; the returned order additionally
// has its last vertex adjacent to its first.
func Cycle(g *graph.Graph, budget int64) ([]int32, Result) {
	return search(context.Background(), g, budget, true)
}

// PathCtx is Path with cooperative cancellation: the backtracking search
// polls ctx periodically and returns Inconclusive once it is done.
func PathCtx(ctx context.Context, g *graph.Graph, budget int64) ([]int32, Result) {
	return search(ctx, g, budget, false)
}

// CycleCtx is Cycle with cooperative cancellation; see PathCtx.
func CycleCtx(ctx context.Context, g *graph.Graph, budget int64) ([]int32, Result) {
	return search(ctx, g, budget, true)
}

func search(ctx context.Context, g *graph.Graph, budget int64, cycle bool) ([]int32, Result) {
	n := g.N()
	if n == 0 {
		return nil, None
	}
	if n == 1 {
		if cycle {
			return nil, None
		}
		return []int32{0}, Found
	}
	if budget <= 0 {
		budget = 4_000_000
	}
	// Quick refutations. A bipartite graph with part sizes differing by
	// more than one has no Hamiltonian path (and by more than zero, no
	// cycle).
	if bip, color := g.IsBipartite(); bip {
		a := 0
		for _, c := range color {
			if c == 0 {
				a++
			}
		}
		b := n - a
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		if diff > 1 {
			return nil, None
		}
		if cycle && diff != 0 {
			return nil, None
		}
	}
	if !g.IsConnected() {
		return nil, None
	}

	visited := make([]bool, n)
	path := make([]int32, 0, n)
	var expansions int64
	exhausted := false

	unvisitedDeg := func(v int32) int {
		d := 0
		for _, u := range g.Neighbors(int(v)) {
			if !visited[u] {
				d++
			}
		}
		return d
	}

	var rec func(v int32) bool
	rec = func(v int32) bool {
		expansions++
		if expansions > budget {
			exhausted = true
			return false
		}
		if expansions&0xfff == 0 && ctx.Err() != nil {
			exhausted = true
			return false
		}
		visited[v] = true
		path = append(path, v)
		if len(path) == n {
			if !cycle || g.HasEdge(int(path[0]), int(v)) {
				return true
			}
			visited[v] = false
			path = path[:len(path)-1]
			return false
		}
		// Warnsdorff ordering: fewest onward moves first.
		nbrs := append([]int32(nil), g.Neighbors(int(v))...)
		sort.Slice(nbrs, func(i, j int) bool {
			return unvisitedDeg(nbrs[i]) < unvisitedDeg(nbrs[j])
		})
		for _, u := range nbrs {
			if visited[u] {
				continue
			}
			if rec(u) {
				return true
			}
			if exhausted {
				break
			}
		}
		visited[v] = false
		path = path[:len(path)-1]
		return false
	}

	starts := make([]int32, n)
	for i := range starts {
		starts[i] = int32(i)
	}
	if cycle {
		// A cycle through all vertices can be rooted anywhere.
		starts = starts[:1]
	} else {
		// Prefer low-degree starts: endpoints of a Hamiltonian path are
		// often forced to be degree-deficient vertices.
		sort.Slice(starts, func(i, j int) bool {
			return g.Degree(int(starts[i])) < g.Degree(int(starts[j]))
		})
	}
	for _, s := range starts {
		if rec(s) {
			return path, Found
		}
		if exhausted {
			return nil, Inconclusive
		}
	}
	return nil, None
}

// Verify checks that order is a Hamiltonian path (or cycle) of g.
func Verify(g *graph.Graph, order []int32, cycle bool) bool {
	n := g.N()
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 1; i < n; i++ {
		if !g.HasEdge(int(order[i-1]), int(order[i])) {
			return false
		}
	}
	if cycle && n > 1 && !g.HasEdge(int(order[n-1]), int(order[0])) {
		return false
	}
	return true
}
