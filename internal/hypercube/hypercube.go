// Package hypercube implements the d-cube Q_d substrate: Hamming distances,
// hypercube intervals I(b,c), canonical b,c-paths (Section 2 of the paper),
// bitwise medians, and explicit construction of Q_d as a graph.
package hypercube

import (
	"math/bits"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Dist returns the hypercube distance between two words of equal length,
// i.e. their Hamming distance.
func Dist(b, c bitstr.Word) int { return b.HammingDistance(c) }

// InInterval reports whether w lies on some shortest b,c-path in Q_d;
// equivalently, whether w agrees with b and c on every position where b and
// c agree.
func InInterval(w, b, c bitstr.Word) bool {
	return (b.Bits^w.Bits)&(w.Bits^c.Bits) == 0 && w.N == b.N && b.N == c.N
}

// Interval returns all vertices of I(b,c), the union of shortest b,c-paths,
// in increasing packed order. Its size is 2^{d(b,c)}.
func Interval(b, c bitstr.Word) []bitstr.Word {
	diff := b.Bits ^ c.Bits
	k := bits.OnesCount64(diff)
	// Positions (as single-bit masks) where b and c differ.
	masks := make([]uint64, 0, k)
	for m := diff; m != 0; m &= m - 1 {
		masks = append(masks, m&-m)
	}
	out := make([]bitstr.Word, 0, 1<<uint(k))
	base := b.Bits &^ diff
	for sub := uint64(0); sub < 1<<uint(k); sub++ {
		v := base
		for i, m := range masks {
			if sub&(1<<uint(i)) != 0 {
				v |= m
			}
		}
		out = append(out, bitstr.Word{Bits: v, N: b.N})
	}
	return out
}

// Median returns the bitwise majority of three words of equal length. In a
// hypercube the median of any triple is unique and equals the majority word.
func Median(u, v, w bitstr.Word) bitstr.Word {
	return bitstr.Word{Bits: (u.Bits & v.Bits) | (u.Bits & w.Bits) | (v.Bits & w.Bits), N: u.N}
}

// CanonicalPath returns the canonical b,c-path of Section 2: starting from b,
// first reverse (left to right) each bit where b has 1 and c has 0, then
// reverse (left to right) each bit where b has 0 and c has 1. The result has
// d(b,c)+1 vertices, starts at b and ends at c, and consecutive vertices are
// adjacent in Q_d.
func CanonicalPath(b, c bitstr.Word) []bitstr.Word {
	path := []bitstr.Word{b}
	cur := b
	for i := 0; i < b.N; i++ {
		if cur.Bit(i) == 1 && c.Bit(i) == 0 {
			cur = cur.Flip(i)
			path = append(path, cur)
		}
	}
	for i := 0; i < b.N; i++ {
		if cur.Bit(i) == 0 && c.Bit(i) == 1 {
			cur = cur.Flip(i)
			path = append(path, cur)
		}
	}
	return path
}

// Build returns the explicit hypercube Q_d as a graph; vertex v corresponds
// to the word whose packed value is v.
func Build(d int) *graph.Graph {
	if d < 0 || d > 26 {
		panic("hypercube: explicit construction limited to d <= 26")
	}
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			v := u ^ (1 << uint(i))
			if v > u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// Word converts an explicit-vertex id back into a bitstr.Word of length d.
func Word(v uint64, d int) bitstr.Word { return bitstr.Word{Bits: v, N: d} }

// GrayCode returns the binary reflected Gray code of length 2^d: a
// Hamiltonian cycle of Q_d (for d >= 2) in which consecutive words, and the
// last and first, differ in exactly one bit. It is the constructive
// counterpart to the search-based Hamiltonicity results on the generalized
// cubes.
func GrayCode(d int) []bitstr.Word {
	if d < 0 || d > 26 {
		panic("hypercube: Gray code limited to d <= 26")
	}
	out := make([]bitstr.Word, 1<<uint(d))
	for i := range out {
		v := uint64(i) ^ (uint64(i) >> 1)
		out[i] = bitstr.Word{Bits: v, N: d}
	}
	return out
}
