package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gfcube/internal/bitstr"
)

func w(s string) bitstr.Word { return bitstr.MustParse(s) }

func TestDist(t *testing.T) {
	if Dist(w("1010"), w("0110")) != 2 {
		t.Error("distance wrong")
	}
}

func TestInInterval(t *testing.T) {
	b, c := w("1100"), w("1010")
	// I(b,c) = {1100, 1110, 1000, 1010}.
	for _, s := range []string{"1100", "1110", "1000", "1010"} {
		if !InInterval(w(s), b, c) {
			t.Errorf("%s should be in I(%s,%s)", s, b, c)
		}
	}
	for _, s := range []string{"0100", "1111", "0000", "1011"} {
		if InInterval(w(s), b, c) {
			t.Errorf("%s should not be in I(%s,%s)", s, b, c)
		}
	}
}

func TestIntervalEnumeration(t *testing.T) {
	b, c := w("1100"), w("0110")
	iv := Interval(b, c)
	if len(iv) != 4 {
		t.Fatalf("interval size %d", len(iv))
	}
	for _, x := range iv {
		if !InInterval(x, b, c) {
			t.Errorf("%s not in interval", x)
		}
	}
	// Degenerate: b = c.
	if got := Interval(b, b); len(got) != 1 || got[0] != b {
		t.Error("I(b,b) != {b}")
	}
}

func TestQuickIntervalConsistency(t *testing.T) {
	prop := func(b, c bitstr.Word) bool {
		if c.N != b.N {
			c = bitstr.Word{Bits: c.Bits & (^uint64(0) >> uint(64-b.N)), N: b.N}
		}
		iv := Interval(b, c)
		if len(iv) != 1<<uint(Dist(b, c)) {
			return false
		}
		// Every enumerated vertex passes the membership predicate, and the
		// triangle equality d(b,x)+d(x,c) = d(b,c) holds.
		for _, x := range iv {
			if !InInterval(x, b, c) || Dist(b, x)+Dist(x, c) != Dist(b, c) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	m := Median(w("110"), w("101"), w("011"))
	if m != w("111") {
		t.Errorf("median = %s", m)
	}
	// The median lies in all three pairwise intervals.
	u, v, x := w("1100"), w("1010"), w("0110")
	m = Median(u, v, x)
	if !InInterval(m, u, v) || !InInterval(m, u, x) || !InInterval(m, v, x) {
		t.Error("median not in pairwise intervals")
	}
}

func TestQuickMedianProperties(t *testing.T) {
	prop := func(a, b, c bitstr.Word) bool {
		n := a.N
		mask := ^uint64(0) >> uint(64-n)
		b = bitstr.Word{Bits: b.Bits & mask, N: n}
		c = bitstr.Word{Bits: c.Bits & mask, N: n}
		m := Median(a, b, c)
		// Symmetric, idempotent on duplicates, in all intervals.
		return m == Median(b, a, c) && m == Median(c, b, a) &&
			Median(a, a, c) == a &&
			InInterval(m, a, b) && InInterval(m, a, c) && InInterval(m, b, c)
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCanonicalPath(t *testing.T) {
	b, c := w("1100"), w("0011")
	path := CanonicalPath(b, c)
	if len(path) != 5 {
		t.Fatalf("path length %d", len(path))
	}
	if path[0] != b || path[len(path)-1] != c {
		t.Error("endpoints wrong")
	}
	for i := 1; i < len(path); i++ {
		if Dist(path[i-1], path[i]) != 1 {
			t.Error("consecutive vertices not adjacent")
		}
	}
	// The canonical path goes through 0-heavy words first: 1100 -> 0100 ->
	// 0000 -> 0010 -> 0011 (1s dropped left to right, then 1s added).
	want := []string{"1100", "0100", "0000", "0010", "0011"}
	for i, s := range want {
		if path[i] != w(s) {
			t.Errorf("path[%d] = %s, want %s", i, path[i], s)
		}
	}
}

func TestQuickCanonicalPathIsGeodesic(t *testing.T) {
	prop := func(b, c bitstr.Word) bool {
		if c.N != b.N {
			c = bitstr.Word{Bits: c.Bits & (^uint64(0) >> uint(64-b.N)), N: b.N}
		}
		path := CanonicalPath(b, c)
		if len(path) != Dist(b, c)+1 {
			return false
		}
		for i := 1; i < len(path); i++ {
			if Dist(path[i-1], path[i]) != 1 {
				return false
			}
		}
		// Every vertex of a canonical path lies in I(b,c).
		for _, x := range path {
			if !InInterval(x, b, c) {
				return false
			}
		}
		return path[0] == b && path[len(path)-1] == c
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildQd(t *testing.T) {
	for d := 0; d <= 6; d++ {
		g := Build(d)
		if g.N() != 1<<uint(d) {
			t.Fatalf("Q%d has %d vertices", d, g.N())
		}
		wantM := 0
		if d > 0 {
			wantM = d << uint(d-1)
		}
		if g.M() != wantM {
			t.Errorf("Q%d has %d edges, want %d", d, g.M(), wantM)
		}
		if d >= 1 {
			st := g.Stats()
			if int(st.Diameter) != d {
				t.Errorf("Q%d diameter %d", d, st.Diameter)
			}
		}
	}
}

func TestGrayCodeIsHamiltonianCycle(t *testing.T) {
	for d := 0; d <= 8; d++ {
		code := GrayCode(d)
		if len(code) != 1<<uint(d) {
			t.Fatalf("d=%d: %d words", d, len(code))
		}
		seen := make(map[uint64]bool, len(code))
		for i, w := range code {
			if w.Len() != d || seen[w.Bits] {
				t.Fatalf("d=%d: invalid or repeated word at %d", d, i)
			}
			seen[w.Bits] = true
			if i > 0 && Dist(code[i-1], w) != 1 {
				t.Fatalf("d=%d: consecutive words not adjacent at %d", d, i)
			}
		}
		if d >= 2 && Dist(code[len(code)-1], code[0]) != 1 {
			t.Errorf("d=%d: Gray code does not close into a cycle", d)
		}
	}
}

func TestBuildDistMatchesHamming(t *testing.T) {
	d := 5
	g := Build(d)
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 50; iter++ {
		u := rng.Intn(g.N())
		v := rng.Intn(g.N())
		want := Dist(Word(uint64(u), d), Word(uint64(v), d))
		if got := int(g.Dist(u, v)); got != want {
			t.Fatalf("graph dist(%d,%d) = %d, Hamming = %d", u, v, got, want)
		}
	}
}
