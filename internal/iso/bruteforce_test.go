package iso

import (
	"sort"
	"testing"

	"gfcube/internal/automaton"
	"gfcube/internal/core"
	"gfcube/internal/graph"
)

// absIso decides ABSTRACT graph isomorphism by brute force: iterated
// Weisfeiler-Leman color refinement on the bare adjacency structure (no
// Hamming information), then a backtracking vertex-mapping search. It is
// deliberately independent of the congruence machinery — different
// invariants, different search — so agreement is a real cross-check.
// Returns (isomorphic, decided); decided is false if the node budget ran
// out before either a mapping or exhaustion.
func absIso(a, b *graph.Graph, budget int) (bool, bool) {
	n := a.N()
	if b.N() != n {
		return false, true
	}
	ca := absColors(a)
	cb := absColors(b)
	if !sameColorHistogram(ca, cb) {
		return false, true
	}
	// Backtracking over color-respecting bijections.
	cand := make(map[uint64][]int32, n)
	for j := 0; j < n; j++ {
		cand[cb[j]] = append(cand[cb[j]], int32(j))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		li, lj := len(cand[ca[i]]), len(cand[ca[j]])
		if li != lj {
			return li < lj
		}
		if ca[i] != ca[j] {
			return ca[i] < ca[j]
		}
		return i < j
	})
	img := make([]int32, n)
	for i := range img {
		img[i] = -1
	}
	used := make([]bool, n)
	next := make([]int, n)
	depth := 0
	for depth >= 0 {
		if depth == n {
			return true, true
		}
		v := order[depth]
		cs := cand[ca[v]]
		found := false
		for next[depth] < len(cs) {
			w := cs[next[depth]]
			next[depth]++
			if used[w] {
				continue
			}
			budget--
			if budget < 0 {
				return false, false
			}
			ok := true
			for k := 0; k < depth; k++ {
				u := order[k]
				if a.HasEdge(v, u) != b.HasEdge(int(w), int(img[u])) {
					ok = false
					break
				}
			}
			if ok {
				img[v] = w
				used[w] = true
				found = true
				break
			}
		}
		if found {
			depth++
			if depth < n {
				next[depth] = 0
			}
			continue
		}
		depth--
		if depth >= 0 {
			used[img[order[depth]]] = false
			img[order[depth]] = -1
		}
	}
	return false, true
}

// absColors runs abstract WL-1 to stabilization: initial color = degree,
// refined by the multiset of neighbor colors.
func absColors(g *graph.Graph) []uint64 {
	n := g.N()
	colors := make([]uint64, n)
	for i := 0; i < n; i++ {
		colors[i] = mix64(uint64(g.Degree(i)) + 1)
	}
	distinct := countDistinct(colors)
	next := make([]uint64, n)
	for round := 0; round < n; round++ {
		for i := 0; i < n; i++ {
			var acc uint64
			for _, j := range g.Neighbors(i) {
				acc += mix64(colors[j])
			}
			next[i] = mix64(colors[i] ^ acc)
		}
		colors, next = next, colors
		nd := countDistinct(colors)
		if nd == distinct {
			break
		}
		distinct = nd
	}
	return colors
}

func sameColorHistogram(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	hist := make(map[uint64]int, len(a))
	for _, c := range a {
		hist[c]++
	}
	for _, c := range b {
		hist[c]--
		if hist[c] < 0 {
			return false
		}
	}
	return true
}

// TestPartitionMatchesBruteForceIso cross-checks the congruence
// partition against brute-force ABSTRACT isomorphism over the full
// |f| <= 4, d <= 8 grid: every congruence merge must be confirmed
// isomorphic, and every split pair must be confirmed non-isomorphic —
// i.e. on this grid Hamming congruence and abstract isomorphism induce
// the same partition, so the stronger merge criterion gives up no dedup
// here while keeping verdict fan-out provable.
func TestPartitionMatchesBruteForceIso(t *testing.T) {
	classes := core.Classes(1, 4)
	for d := 1; d <= 8; d++ {
		p := At(d, classes)
		graphs := make(map[string]*graph.Graph, len(classes))
		for _, cl := range classes {
			graphs[cl.Rep.String()] = newSpace(d, automaton.New(cl.Rep).Vertices(d)).g
		}
		for i := 0; i < len(classes); i++ {
			for j := i + 1; j < len(classes); j++ {
				fi, fj := classes[i].Rep, classes[j].Rep
				merged := p.Leader(fi) == p.Leader(fj)
				iso, decided := absIso(graphs[fi.String()], graphs[fj.String()], 1<<26)
				if !decided {
					t.Fatalf("d=%d %s/%s: brute force ran out of budget", d, fi, fj)
				}
				if iso != merged {
					t.Errorf("d=%d %s/%s: brute-force iso=%v but congruence merge=%v", d, fi, fj, iso, merged)
				}
			}
		}
	}
}
