package iso

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"gfcube/internal/core"
)

// TestGenerateBakedTable prints the Go source of bakedPartitions from a
// fresh computation. It is a generator, not a test: run it with
//
//	ISO_BAKE=1 go test ./internal/iso -run TestGenerateBakedTable -v
//
// and replace the literal in table_data.go with its output. The baked
// data's correctness is enforced separately by
// TestBakedTableMatchesComputed.
func TestGenerateBakedTable(t *testing.T) {
	if os.Getenv("ISO_BAKE") == "" {
		t.Skip("set ISO_BAKE=1 to regenerate the baked partition table")
	}
	classes := core.Classes(1, bakedMaxLen)
	var sb strings.Builder
	sb.WriteString("var bakedPartitions = [bakedMaxD][][]string{\n")
	for d := 1; d <= bakedMaxD; d++ {
		p := computePartition(d, classes, Options{})
		fmt.Fprintf(&sb, "\t{ // d = %d: %d groups\n", d, p.NumGroups())
		for _, g := range p.Groups {
			sb.WriteString("\t\t{")
			for i, m := range g.Members {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%q", m.Rep.String())
			}
			sb.WriteString("},\n")
		}
		sb.WriteString("\t},\n")
	}
	sb.WriteString("}\n")
	t.Logf("generated table:\n%s", sb.String())
	fmt.Println(sb.String())
}
