package iso

import (
	"fmt"
	"testing"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// TestBakedTableMatchesComputed recomputes the partition from scratch
// and compares it against the committed baked data. The |f| <= 4, d <= 8
// sub-grid always runs; the full baked universe (|f| <= 5, d <= 12) is
// covered unless -short.
func TestBakedTableMatchesComputed(t *testing.T) {
	maxLen, maxD := 4, 8
	if !testing.Short() {
		maxLen, maxD = bakedMaxLen, bakedMaxD
	}
	classes := core.Classes(1, maxLen)
	for d := 1; d <= maxD; d++ {
		baked, ok := bakedAt(d, classes)
		if !ok {
			t.Fatalf("d=%d: baked table did not serve the census grid", d)
		}
		computed := computePartition(d, classes, Options{})
		if err := samePartition(baked, computed); err != nil {
			t.Errorf("d=%d: baked table drifted from fresh computation: %v", d, err)
		}
	}
}

func samePartition(a, b *Partition) error {
	if a.NumGroups() != b.NumGroups() {
		return fmt.Errorf("groups: %d vs %d", a.NumGroups(), b.NumGroups())
	}
	for gi, g := range a.Groups {
		h := b.Groups[gi]
		if g.Leader.Rep != h.Leader.Rep || len(g.Members) != len(h.Members) {
			return fmt.Errorf("group %d: leader %s/%d vs %s/%d", gi, g.Leader.Rep, len(g.Members), h.Leader.Rep, len(h.Members))
		}
		for mi, m := range g.Members {
			if m.Rep != h.Members[mi].Rep {
				return fmt.Errorf("group %d member %d: %s vs %s", gi, mi, m.Rep, h.Members[mi].Rep)
			}
		}
	}
	return nil
}

// TestPartitionShortcutTiers pins the two shortcut tiers: at d = 1 every
// factor longer than 1 never occurs, so all of them form one full-cube
// group; at d = |f| exactly one word contains each factor, so all
// classes of that length merge through the translation shortcut.
func TestPartitionShortcutTiers(t *testing.T) {
	classes := core.Classes(1, 5)
	p := At(1, classes)
	if p.NumGroups() != 2 {
		t.Fatalf("d=1: %d groups, want 2 (the length-1 class apart from one full-cube group)", p.NumGroups())
	}
	for _, cl := range classes {
		if cl.Rep.Len() == 1 {
			continue
		}
		if lead := p.Leader(cl.Rep); lead != bitstr.MustParse("00") {
			t.Errorf("d=1: leader of %s = %s, want 00", cl.Rep, lead)
		}
	}
	// d = 4: the six length-4 classes are Q_4 minus one vertex each.
	p = At(4, classes)
	g, ok := p.GroupOf(bitstr.MustParse("0000"))
	if !ok || len(g.Members) != 6 {
		t.Fatalf("d=4: length-4 group has %d members, want all 6", len(g.Members))
	}
}

// TestKnownSearchedMerge verifies one nontrivial merge end to end: at
// d = 5, Q_5(0001) and Q_5(0011) are congruent only via the searched
// bijection (orders match but neither shortcut applies), and the found
// mapping survives independent re-verification.
func TestKnownSearchedMerge(t *testing.T) {
	a := newSpace(5, automaton.New(bitstr.MustParse("0001")).Vertices(5))
	b := newSpace(5, automaton.New(bitstr.MustParse("0011")).Vertices(5))
	if a.n() != b.n() {
		t.Fatalf("orders differ: %d vs %d", a.n(), b.n())
	}
	if !a.fp.Equal(b.fp) {
		t.Fatalf("fingerprints differ for a known-congruent pair")
	}
	m, ok := findCongruence(a, b, 1<<24)
	if !ok {
		t.Fatalf("no congruence found for 0001/0011 at d=5")
	}
	if !verifyCongruence(a, b, m) {
		t.Fatalf("found mapping failed independent verification")
	}
	// And the partition agrees.
	p := At(5, core.Classes(4, 4))
	if p.Leader(bitstr.MustParse("0011")) != bitstr.MustParse("0001") {
		t.Errorf("partition did not merge 0011 into 0001 at d=5")
	}
}

// TestFingerprintSeparatesKnownDistinct pins a pair that ties on order
// but is provably non-congruent: the fingerprint (a true congruence
// invariant) must differ, because the paper's Table 1 gives the two
// cubes different isometry verdicts at d = 7 (Q_7(0001) embeds
// isometrically, Q_7(0011) does not; congruence would transfer the
// verdict).
func TestFingerprintSeparatesKnownDistinct(t *testing.T) {
	a := FingerprintSet(7, automaton.New(bitstr.MustParse("0001")).Vertices(7))
	b := FingerprintSet(7, automaton.New(bitstr.MustParse("0011")).Vertices(7))
	if a.N != b.N {
		t.Fatalf("expected an order tie, got %d vs %d", a.N, b.N)
	}
	if a.Equal(b) {
		t.Fatalf("fingerprints agree on a provably non-congruent pair")
	}
}

// TestBandIsMeet checks that the band partition merges exactly the
// classes congruent at every dimension of the band.
func TestBandIsMeet(t *testing.T) {
	classes := core.Classes(1, 5)
	// Band [1,4]: length-5 classes are full cubes at every d <= 4, so
	// they all merge; length-4 classes merge with them for d <= 3 but
	// split at d = 4 (minus-one vs full), so the meet separates them.
	p := Band(1, 4, classes)
	five := p.Leader(bitstr.MustParse("01110"))
	if five != bitstr.MustParse("00000") {
		t.Errorf("band [1,4]: length-5 classes should share one group, leader = %s", five)
	}
	if p.Leader(bitstr.MustParse("0000")) == five {
		t.Errorf("band [1,4]: length-4 classes must split from length-5 at d=4")
	}
	// Band [1,12] over the census: the per-d singletons at d >= 7 force
	// the meet down to per-class granularity except where every
	// dimension agrees.
	p = Band(1, 12, classes)
	for _, cl := range classes {
		if got := p.Leader(cl.Rep); got != cl.Rep {
			t.Errorf("band [1,12]: %s unexpectedly led by %s", cl.Rep, got)
		}
	}
}

// TestLeaderPrecedesMembers checks the grid-order guarantee sweeps rely
// on: in core.Classes order, a group's leader is always its first
// member, so the leader's cell is computed before any member's cell is
// fanned.
func TestLeaderPrecedesMembers(t *testing.T) {
	classes := core.Classes(1, 5)
	pos := make(map[bitstr.Word]int)
	for i, cl := range classes {
		pos[cl.Rep] = i
	}
	for d := 1; d <= 12; d++ {
		p := At(d, classes)
		for _, g := range p.Groups {
			if g.Members[0].Rep != g.Leader.Rep {
				t.Fatalf("d=%d: group leader %s is not its first member", d, g.Leader.Rep)
			}
			for _, m := range g.Members {
				if pos[m.Rep] < pos[g.Leader.Rep] {
					t.Fatalf("d=%d: member %s precedes leader %s in grid order", d, m.Rep, g.Leader.Rep)
				}
			}
		}
	}
}

// TestComputedPathOutsideBakedUniverse exercises the runtime compute
// path (and its memo cache) on a grid the baked table does not cover.
func TestComputedPathOutsideBakedUniverse(t *testing.T) {
	classes := core.Classes(6, 6)
	p := At(3, classes)
	// At d = 3 every length-6 factor is absent: one full-cube group.
	if p.NumGroups() != 1 {
		t.Fatalf("d=3 |f|=6: %d groups, want 1", p.NumGroups())
	}
	if q := At(3, classes); q != p {
		t.Errorf("memo cache miss on identical request")
	}
}

// TestVerifyCongruenceRejects feeds corrupted mappings to the verifier.
func TestVerifyCongruenceRejects(t *testing.T) {
	a := newSpace(5, automaton.New(bitstr.MustParse("0001")).Vertices(5))
	b := newSpace(5, automaton.New(bitstr.MustParse("0011")).Vertices(5))
	m, ok := findCongruence(a, b, 1<<24)
	if !ok {
		t.Fatal("search failed")
	}
	bad := append(Mapping(nil), m...)
	bad[0], bad[1] = bad[1], bad[0] // almost certainly breaks some pair
	if verifyCongruence(a, b, bad) {
		t.Errorf("verifier accepted a transposed mapping")
	}
	short := m[:len(m)-1]
	if verifyCongruence(a, b, short) {
		t.Errorf("verifier accepted a truncated mapping")
	}
	dup := append(Mapping(nil), m...)
	dup[0] = dup[1]
	if verifyCongruence(a, b, dup) {
		t.Errorf("verifier accepted a non-injective mapping")
	}
}
