package iso

import (
	"math/big"
	"strings"
	"sync"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Options tunes partition construction. The zero value uses the package
// defaults; they are the ones the baked table was generated with.
type Options struct {
	// MaxN caps the vertex-set size that is enumerated for fingerprints
	// and congruence searches (default 4096 = the full Q_12). Larger
	// cells merge only through the full-cube / minus-one shortcuts,
	// which need no enumeration.
	MaxN int
	// Budget caps pair-distance checks per congruence search; zero
	// derives 8·n² + 2^20 from the instance size, enough for every
	// successful search in the census while bounding adversarial
	// backtracking.
	Budget int64
}

func (o Options) withDefaults() Options {
	if o.MaxN <= 0 {
		o.MaxN = 4096
	}
	return o
}

// maxEnumD bounds enumeration: vertex words are packed uint64 bitstrings.
const maxEnumD = bitstr.MaxLen

// Group is one congruence class of canonical factor classes at a fixed
// dimension (or across a band): every member's Q_d(f) admits a verified
// Hamming-congruence onto the leader's.
type Group struct {
	// Leader is the first member in the caller's class order — for grid
	// sweeps the grid-first class, so a leader's cell always precedes
	// its members' cells.
	Leader core.Class
	// Members lists the whole group in caller order, Leader first.
	Members []core.Class
}

// Partition is the congruence partition of a class list at one dimension
// (D >= 0) or over a dimension band (D = -1, the per-dimension meet).
type Partition struct {
	D      int
	Groups []Group
	leader map[bitstr.Word]int // class rep -> group index
}

// Leader returns the group leader's class for a member representative;
// classes the partition has never seen lead themselves.
func (p *Partition) Leader(rep bitstr.Word) bitstr.Word {
	if gi, ok := p.leader[rep]; ok {
		return p.Groups[gi].Leader.Rep
	}
	return rep
}

// GroupOf returns the group containing rep, or false.
func (p *Partition) GroupOf(rep bitstr.Word) (Group, bool) {
	gi, ok := p.leader[rep]
	if !ok {
		return Group{}, false
	}
	return p.Groups[gi], true
}

// NumClasses is the number of factor classes partitioned.
func (p *Partition) NumClasses() int { return len(p.leader) }

// NumGroups is the number of congruence groups.
func (p *Partition) NumGroups() int { return len(p.Groups) }

func (p *Partition) index() {
	p.leader = make(map[bitstr.Word]int)
	for gi, g := range p.Groups {
		for _, m := range g.Members {
			p.leader[m.Rep] = gi
		}
	}
}

// At returns the verified congruence partition of the classes at
// dimension d. Classes must be listed in a deterministic order (grids
// pass core.Classes order); the first member of each group leads it.
// Results for the |f| <= 5, d <= 12 census come from the baked verified
// table; anything else is computed and memoized process-wide.
func At(d int, classes []core.Class) *Partition {
	return AtOpts(d, classes, Options{})
}

// AtOpts is At with explicit construction options. Options only affect
// the computed path; baked lookups ignore them.
func AtOpts(d int, classes []core.Class, opt Options) *Partition {
	if p, ok := bakedAt(d, classes); ok {
		return p
	}
	key := cacheKey(d, classes, opt)
	partMu.Lock()
	p, ok := partCache[key]
	partMu.Unlock()
	if ok {
		return p
	}
	p = computePartition(d, classes, opt)
	partMu.Lock()
	if len(partCache) > maxCachedPartitions {
		partCache = make(map[string]*Partition)
	}
	partCache[key] = p
	partMu.Unlock()
	return p
}

// Band returns the meet of the per-dimension partitions over
// [minD, maxD]: classes grouped together only when they are congruent at
// EVERY dimension of the band. This is the partition class-granular
// workloads (survey scans, fabric shard affinity) need — any dimension a
// member's scan visits is covered by the certificate.
func Band(minD, maxD int, classes []core.Class) *Partition {
	return BandOpts(minD, maxD, classes, Options{})
}

// BandOpts is Band with explicit construction options.
func BandOpts(minD, maxD int, classes []core.Class, opt Options) *Partition {
	if minD < 1 {
		minD = 1
	}
	p := &Partition{D: -1}
	if maxD < minD || len(classes) == 0 {
		p.index()
		return p
	}
	// sig[i] identifies class i's group tuple across the band.
	sigs := make([]string, len(classes))
	var sb strings.Builder
	for d := minD; d <= maxD; d++ {
		pd := AtOpts(d, classes, opt)
		for i, cl := range classes {
			sb.Reset()
			sb.WriteString(sigs[i])
			sb.WriteByte('|')
			sb.WriteString(pd.Leader(cl.Rep).String())
			sigs[i] = sb.String()
		}
	}
	bySig := make(map[string]int)
	for i, cl := range classes {
		gi, ok := bySig[sigs[i]]
		if !ok {
			gi = len(p.Groups)
			bySig[sigs[i]] = gi
			p.Groups = append(p.Groups, Group{Leader: cl})
		}
		p.Groups[gi].Members = append(p.Groups[gi].Members, cl)
	}
	p.index()
	return p
}

const maxCachedPartitions = 1 << 12

var (
	partMu    sync.Mutex
	partCache = map[string]*Partition{}
)

func cacheKey(d int, classes []core.Class, opt Options) string {
	var sb strings.Builder
	sb.WriteString("d=")
	sb.WriteString(big.NewInt(int64(d)).String())
	sb.WriteString("/n=")
	sb.WriteString(big.NewInt(int64(opt.MaxN)).String())
	sb.WriteString("/b=")
	sb.WriteString(big.NewInt(opt.Budget).String())
	for _, cl := range classes {
		sb.WriteByte(' ')
		sb.WriteString(cl.Rep.String())
	}
	return sb.String()
}

// classWork is the per-class state of one partition computation: the
// order (always computed) and the lazily built metric space.
type classWork struct {
	cl    core.Class
	order *big.Int
	full  bool // order == 2^d: the factor never occurs
	m1    bool // order == 2^d - 1: exactly one word contains the factor
	small bool // enumerable under MaxN and the word-packing cap
	sp    *space
}

func (w *classWork) space(d int) *space {
	if w.sp == nil {
		w.sp = newSpace(d, automaton.New(w.cl.Rep).Vertices(d))
	}
	return w.sp
}

// computePartition builds the partition from scratch, one verified merge
// at a time. Congruence is transitive (composition of Hamming-preserving
// bijections), so comparing each class against group leaders suffices.
func computePartition(d int, classes []core.Class, opt Options) *Partition {
	opt = opt.withDefaults()
	full := new(big.Int).Lsh(big.NewInt(1), uint(d))
	m1 := new(big.Int).Sub(full, big.NewInt(1))
	maxN := big.NewInt(int64(opt.MaxN))

	p := &Partition{D: d}
	var leaders []*classWork
	for _, cl := range classes {
		w := &classWork{cl: cl, order: automaton.New(cl.Rep).CountVertices(d)}
		w.full = w.order.Cmp(full) == 0
		w.m1 = w.order.Cmp(m1) == 0
		w.small = d <= maxEnumD && w.order.Cmp(maxN) <= 0
		gi := -1
		for li, lead := range leaders {
			if congruent(d, lead, w, opt) {
				gi = li
				break
			}
		}
		if gi < 0 {
			gi = len(p.Groups)
			p.Groups = append(p.Groups, Group{Leader: cl})
			leaders = append(leaders, w)
		}
		p.Groups[gi].Members = append(p.Groups[gi].Members, cl)
	}
	p.index()
	return p
}

// congruent runs the refinement ladder on one candidate pair. Every
// "true" is backed by an explicit congruence: set identity, an XOR
// translation, or a searched-and-reverified bijection.
func congruent(d int, a, b *classWork, opt Options) bool {
	if a.order.Cmp(b.order) != 0 {
		return false
	}
	// Both vertex sets are all of {0,1}^d: the identity is a congruence.
	if a.full {
		return true
	}
	// Both are Q_d minus a single word: x ↦ x ⊕ (w_a ⊕ w_b) translates
	// one missing word onto the other and preserves all Hamming
	// distances.
	if a.m1 {
		return true
	}
	if !a.small || !b.small {
		return false
	}
	sa, sb := a.space(d), b.space(d)
	if wordsEqual(sa.words, sb.words) {
		return true
	}
	if !sa.fp.Equal(sb.fp) {
		return false
	}
	budget := opt.Budget
	if budget <= 0 {
		n := int64(sa.n())
		budget = 8*n*n + 1<<20
	}
	m, ok := findCongruence(sa, sb, budget)
	return ok && verifyCongruence(sa, sb, m)
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}
