package iso

import (
	"testing"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
)

// FuzzIsoFingerprint checks the fingerprint's defining property:
// congruent inputs produce equal fingerprints. Every automorphism of the
// hypercube is a coordinate permutation composed with an XOR translation,
// so applying a random (π, t) to V(Q_d(f)) yields a congruent image set;
// the fingerprints must match bit for bit. On small instances the fuzz
// additionally drives the congruence search, which must rediscover a
// verifiable bijection between the set and its image.
func FuzzIsoFingerprint(f *testing.F) {
	f.Add(uint64(0b0011), uint8(4), uint8(6), uint64(12345), uint64(7))
	f.Add(uint64(0b101), uint8(3), uint8(5), uint64(99), uint64(0))
	f.Add(uint64(0b1), uint8(1), uint8(4), uint64(1), uint64(15))
	f.Add(uint64(0b00110), uint8(5), uint8(7), uint64(777), uint64(42))
	f.Fuzz(func(t *testing.T, fbits uint64, flen, dim uint8, permSeed, trans uint64) {
		n := int(flen)%5 + 1
		d := int(dim)%8 + 1
		factor := bitstr.New(fbits&((1<<uint(n))-1), n)
		words := automaton.New(factor).Vertices(d)

		perm := randPerm(d, permSeed)
		tr := trans & ((1 << uint(d)) - 1)
		image := make([]uint64, len(words))
		for i, w := range words {
			var x uint64
			for b := 0; b < d; b++ {
				x |= ((w >> uint(b)) & 1) << uint(perm[b])
			}
			image[i] = x ^ tr
		}

		a := newSpace(d, words)
		b := newSpace(d, image)
		if !a.fp.Equal(b.fp) {
			t.Fatalf("fingerprint not invariant: f=%s d=%d perm=%v trans=%b", factor, d, perm, tr)
		}
		if a.n() != b.n() {
			t.Fatalf("automorphism changed the order: %d vs %d", a.n(), b.n())
		}
		// The search must certify what we constructed, when the instance
		// is small enough to keep the fuzz round fast.
		if a.n() <= 128 {
			m, ok := findCongruence(a, b, 1<<24)
			if !ok {
				t.Fatalf("search missed a congruence that exists by construction: f=%s d=%d", factor, d)
			}
			if !verifyCongruence(a, b, m) {
				t.Fatalf("search produced an unverifiable mapping: f=%s d=%d", factor, d)
			}
		}
	})
}

// randPerm derives a deterministic permutation of 0..d-1 from the seed
// by Fisher-Yates over a splitmix64 stream.
func randPerm(d int, seed uint64) []int {
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	state := seed
	nextRand := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return mix64(state)
	}
	for i := d - 1; i > 0; i-- {
		j := int(nextRand() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// TestFingerprintDetectsPerturbation is the negative control for the
// fuzz property: swapping one vertex of Q_6(0011) for a word outside the
// set changes the metric space and must change the fingerprint.
func TestFingerprintDetectsPerturbation(t *testing.T) {
	words := automaton.New(bitstr.MustParse("0011")).Vertices(6)
	present := make(map[uint64]bool, len(words))
	for _, w := range words {
		present[w] = true
	}
	var outside uint64
	found := false
	for w := uint64(0); w < 1<<6; w++ {
		if !present[w] {
			outside, found = w, true
			break
		}
	}
	if !found {
		t.Skip("factor never occurs at this dimension")
	}
	mutated := append([]uint64(nil), words[1:]...)
	mutated = append(mutated, outside)
	if FingerprintSet(6, words).Equal(FingerprintSet(6, mutated)) {
		t.Fatalf("fingerprint blind to a vertex-set mutation")
	}
}
