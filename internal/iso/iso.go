// Package iso computes isomorphism-class fingerprints and verified
// congruence partitions for generalized Fibonacci cubes Q_d(f).
//
// The sweep engine already dedupes the (f, d) grid by the paper's
// complement/reversal symmetry (Lemmas 2.2 and 2.3, at most 4x). But many
// canonical factor classes that the symmetry keeps apart still yield
// isomorphic cubes (Azarija-Klavžar-Lee-Pantone-Rho, arXiv:1402.6377), so
// the grid recomputes work that is provably identical. This package
// partitions canonical classes into equivalence groups per dimension so
// the sweep computes one representative per group and fans the result out.
//
// # Hamming congruence, not bare graph isomorphism
//
// Two factors f, g are merged at dimension d only when there is a verified
// HAMMING-DISTANCE-PRESERVING bijection φ: V(Q_d(f)) → V(Q_d(g)) — a
// congruence of the induced metric spaces, strictly stronger than an
// abstract graph isomorphism. The distinction matters: the sweep's central
// verdict is "Q_d(f) is isometric in Q_d", which is a property of the
// natural embedding, not of the abstract graph. A congruence transfers it
// exactly: graph adjacency is Hamming distance 1, so φ is a graph
// isomorphism both ways, graph distances transfer (d_G(u,v) = d_G(φu,φv)),
// and hence d_G = H holds for all pairs in Q_d(f) iff it does in Q_d(g).
// The same argument transfers vertex/edge/square counts, degree profiles,
// connectivity, the exact Wiener index, the Hamming-Wiener sum, and the
// existence of Lemma 2.4 critical pairs (a p-critical pair is definable
// purely in the metric: the "flip toward the partner" vertices are exactly
// the w ∈ V with H(u,w) = 1 and H(v,w) = p-1). What does NOT transfer is
// anything naming concrete vertices — violating-pair witnesses — which
// consumers recompute per member.
//
// # Refinement ladder
//
// A candidate pair (f, g) at dimension d passes through ever-stronger
// filters; a verified congruence is only ever produced by the last two:
//
//  1. order: |V| must agree (transfer-matrix DP, any d).
//  2. full-cube shortcut: |V| = 2^d means neither factor occurs; both
//     vertex sets are all of {0,1}^d and the identity is a congruence.
//  3. minus-one shortcut: |V| = 2^d - 1 means exactly one word contains
//     the factor; the XOR translation x ↦ x ⊕ (w_f ⊕ w_g) is a congruence.
//  4. fingerprint: a congruence-invariant hash (order, degree histogram,
//     Hamming and graph distance pair histograms, iterated per-vertex
//     joint (H, d_G) Weisfeiler-Leman color refinement). Every component
//     is a true congruence invariant, so unequal fingerprints PROVE the
//     pair non-congruent; equal fingerprints prove nothing and only
//     admit the pair to the search.
//  5. search: a budget-capped backtracking search for an explicit
//     bijection, ordered most-constrained-color-first, checking every new
//     image against all previously mapped pairs. A completed mapping has
//     had every vertex pair verified, so it IS a congruence certificate.
//
// Any failure (order mismatch, fingerprint mismatch, exhausted budget,
// vertex sets too large to enumerate) keeps the classes separate, which
// costs duplicate compute but never correctness.
package iso

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"
	"sort"

	"gfcube/internal/graph"
)

// Fingerprint is the congruence-invariant signature of one vertex set
// V ⊆ {0,1}^d under the Hamming metric and the induced subgraph metric.
// Equal fingerprints are necessary but not sufficient for congruence.
type Fingerprint struct {
	// N is the order |V| and M the number of Hamming-distance-1 pairs
	// (the edge count of Q_d(f) when V is its vertex set).
	N int
	M int64
	// Hash digests d, the order, the degree histogram, the Hamming and
	// graph distance pair histograms, and the stable multiset of WL
	// refinement colors.
	Hash [sha256.Size]byte
}

// Equal reports whether two fingerprints are identical.
func (fp Fingerprint) Equal(o Fingerprint) bool {
	return fp.N == o.N && fp.M == o.M && fp.Hash == o.Hash
}

// wlRounds bounds the Weisfeiler-Leman refinement iterations after the
// initial joint-profile coloring. The initial colors already encode the
// full per-vertex (Hamming, graph) distance profile, so two rounds of
// neighborhood mixing settle every partition seen in the |f| <= 5 census.
const wlRounds = 2

// space is the working representation of one vertex set: sorted words,
// the induced graph, the dense graph-distance matrix and the final WL
// colors. It is the unit the congruence search operates on.
type space struct {
	d     int
	words []uint64 // ascending, deduplicated
	g     *graph.Graph
	// dist[i*n+j] is the graph distance between words i and j, -1 when
	// unreachable. int16 keeps the matrix at 2 bytes per pair; distances
	// in an n-vertex graph fit easily.
	dist   []int16
	colors []uint64
	fp     Fingerprint
}

// newSpace enumerates nothing itself: the caller supplies the words
// (from automaton.Vertices or a test harness). Words are copied, sorted
// and deduplicated, so the caller's slice is not retained.
func newSpace(d int, words []uint64) *space {
	s := &space{d: d, words: append([]uint64(nil), words...)}
	sort.Slice(s.words, func(i, j int) bool { return s.words[i] < s.words[j] })
	n := 0
	for i, w := range s.words {
		if i == 0 || w != s.words[n-1] {
			s.words[n] = w
			n++
		}
	}
	s.words = s.words[:n]
	s.buildGraph()
	s.computeDistances()
	s.computeColors()
	s.computeFingerprint()
	return s
}

func (s *space) n() int { return len(s.words) }

// indexOf locates a word by binary search, -1 when absent.
func (s *space) indexOf(w uint64) int {
	i := sort.Search(len(s.words), func(i int) bool { return s.words[i] >= w })
	if i < len(s.words) && s.words[i] == w {
		return i
	}
	return -1
}

// buildGraph connects words at Hamming distance 1. Each edge is added
// once, from its lexicographically smaller endpoint.
func (s *space) buildGraph() {
	b := graph.NewBuilder(s.n())
	for i, w := range s.words {
		for bit := 0; bit < s.d; bit++ {
			x := w ^ (1 << uint(bit))
			if x <= w {
				continue
			}
			if j := s.indexOf(x); j >= 0 {
				b.AddEdge(i, j)
			}
		}
	}
	s.g = b.Build()
}

// computeDistances fills the dense all-pairs graph-distance matrix with
// the MS-BFS engine (bit-parallel batches of sources).
func (s *space) computeDistances() {
	n := s.n()
	s.dist = make([]int16, n*n)
	eng := graph.NewMSBFS(s.g)
	eng.RunAll(func(b *graph.DistBlock) bool {
		for bi, src := range b.Sources {
			row := b.Row(bi)
			base := int(src) * n
			for j, dv := range row {
				if dv == graph.Unreachable {
					s.dist[base+j] = -1
				} else {
					s.dist[base+j] = int16(dv)
				}
			}
		}
		return true
	})
}

// mix64 is the splitmix64 finalizer: the stable mixing primitive of the
// WL refinement. All multiset accumulation is commutative (wrapping sums
// of mixed terms), so colors are invariant under vertex relabeling.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pairTerm encodes one (Hamming distance, graph distance) observation.
// Graph distance -1 (unreachable) maps to 0 after the +1 shift.
func pairTerm(h int, dg int16) uint64 {
	return mix64(uint64(h)<<32 | uint64(uint32(dg+1)))
}

// computeColors assigns each vertex its joint (H, d_G) profile color and
// then runs wlRounds of neighborhood-mixing refinement over the complete
// pair relation. Refinement stops early once the number of distinct
// colors stabilizes.
func (s *space) computeColors() {
	n := s.n()
	s.colors = make([]uint64, n)
	for i := 0; i < n; i++ {
		var acc uint64
		wi := s.words[i]
		base := i * n
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			acc += pairTerm(bits.OnesCount64(wi^s.words[j]), s.dist[base+j])
		}
		s.colors[i] = mix64(acc ^ uint64(n))
	}
	distinct := countDistinct(s.colors)
	next := make([]uint64, n)
	for round := 0; round < wlRounds && distinct < n; round++ {
		for i := 0; i < n; i++ {
			var acc uint64
			wi := s.words[i]
			base := i * n
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				acc += mix64(s.colors[j] + pairTerm(bits.OnesCount64(wi^s.words[j]), s.dist[base+j]))
			}
			next[i] = mix64(s.colors[i] ^ acc)
		}
		s.colors, next = next, s.colors
		nd := countDistinct(s.colors)
		if nd == distinct {
			break
		}
		distinct = nd
	}
}

func countDistinct(colors []uint64) int {
	seen := make(map[uint64]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// computeFingerprint digests every invariant the space computed: order,
// edge count, degree histogram, Hamming and graph distance histograms
// over ordered pairs, and the sorted WL color multiset.
func (s *space) computeFingerprint() {
	n := s.n()
	s.fp.N = n
	s.fp.M = int64(s.g.M())
	h := sha256.New()
	writeU64 := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(s.d))
	writeU64(uint64(n))
	writeU64(uint64(s.fp.M))
	degHist := make([]uint64, s.d+1)
	for i := 0; i < n; i++ {
		degHist[s.g.Degree(i)]++
	}
	for _, c := range degHist {
		writeU64(c)
	}
	hamHist := make([]uint64, s.d+1)
	// distHist[k+1] counts ordered pairs at graph distance k; slot 0
	// counts unreachable pairs. Graph distances never exceed n-1.
	distHist := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		wi := s.words[i]
		base := i * n
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			hamHist[bits.OnesCount64(wi^s.words[j])]++
			distHist[s.dist[base+j]+1]++
		}
	}
	for _, c := range hamHist {
		writeU64(c)
	}
	for k, c := range distHist {
		if c != 0 {
			writeU64(uint64(k))
			writeU64(c)
		}
	}
	sorted := append([]uint64(nil), s.colors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, c := range sorted {
		writeU64(c)
	}
	copy(s.fp.Hash[:], h.Sum(nil))
}

// FingerprintSet computes the congruence-invariant fingerprint of an
// arbitrary word set V ⊆ {0,1}^d. Exported for cross-checks and fuzzing;
// partition construction uses the richer internal space representation.
func FingerprintSet(d int, words []uint64) Fingerprint {
	return newSpace(d, words).fp
}
