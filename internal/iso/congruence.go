package iso

import (
	"math/bits"
	"sort"
)

// Mapping is a verified congruence certificate between two spaces:
// Mapping[i] is the index in the target's word list of the image of the
// source's i-th word. Every vertex pair was distance-checked during the
// search, so a returned Mapping is proof, not a candidate.
type Mapping []int32

// findCongruence searches for a Hamming-distance-preserving bijection
// from a onto b. The search maps vertices in most-constrained-color-first
// order and checks every candidate image against all previously mapped
// vertices, so a completed assignment has verified all n·(n-1)/2 pairs.
// The budget bounds the number of pair checks; exhausting it returns
// (nil, false), which callers treat as "not congruent" — a safe answer
// that only costs dedup.
func findCongruence(a, b *space, budget int64) (Mapping, bool) {
	n := a.n()
	if n != b.n() || a.d != b.d {
		return nil, false
	}
	if n == 0 {
		return Mapping{}, true
	}
	// Candidate images per color. Color multisets must agree (they do
	// when fingerprints match, but findCongruence does not assume its
	// caller checked).
	cand := make(map[uint64][]int32, n)
	for j := 0; j < n; j++ {
		cand[b.colors[j]] = append(cand[b.colors[j]], int32(j))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	classSize := make([]int, n)
	for i := 0; i < n; i++ {
		cs := cand[a.colors[i]]
		if cs == nil {
			return nil, false
		}
		classSize[i] = len(cs)
	}
	// Most-constrained first: small color classes pin the map early;
	// ties break on color then word value for determinism.
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if classSize[i] != classSize[j] {
			return classSize[i] < classSize[j]
		}
		if a.colors[i] != a.colors[j] {
			return a.colors[i] < a.colors[j]
		}
		return a.words[i] < a.words[j]
	})

	img := make(Mapping, n)
	for i := range img {
		img[i] = -1
	}
	used := make([]bool, n)
	// next[k] is the position in cand[color(order[k])] to try next when
	// the search returns to depth k.
	next := make([]int, n)
	depth := 0
	for depth >= 0 {
		if depth == n {
			return img, true
		}
		v := order[depth]
		cs := cand[a.colors[v]]
		found := false
		for next[depth] < len(cs) {
			w := cs[next[depth]]
			next[depth]++
			if used[w] {
				continue
			}
			ok := true
			wv := a.words[v]
			ww := b.words[w]
			for k := 0; k < depth; k++ {
				u := order[k]
				budget--
				if budget < 0 {
					return nil, false
				}
				if bits.OnesCount64(wv^a.words[u]) != bits.OnesCount64(ww^b.words[img[u]]) {
					ok = false
					break
				}
			}
			if ok {
				img[v] = w
				used[w] = true
				found = true
				break
			}
		}
		if found {
			depth++
			if depth < n {
				next[depth] = 0
			}
			continue
		}
		// Exhausted candidates at this depth: backtrack.
		depth--
		if depth >= 0 {
			v := order[depth]
			used[img[v]] = false
			img[v] = -1
		}
	}
	return nil, false
}

// verifyCongruence independently re-checks a mapping pair by pair. The
// search already guarantees this; tests use it as a second opinion and
// the baked-table generator runs it before committing a merge.
func verifyCongruence(a, b *space, m Mapping) bool {
	n := a.n()
	if b.n() != n || len(m) != n {
		return false
	}
	seen := make([]bool, n)
	for _, w := range m {
		if w < 0 || int(w) >= n || seen[w] {
			return false
		}
		seen[w] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if bits.OnesCount64(a.words[i]^a.words[j]) != bits.OnesCount64(b.words[m[i]]^b.words[m[j]]) {
				return false
			}
		}
	}
	return true
}
