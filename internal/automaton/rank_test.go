package automaton

import (
	"math/big"
	"math/rand"
	"testing"

	"gfcube/internal/bitstr"
)

func TestRankerRoundTripSmall(t *testing.T) {
	for _, fs := range []string{"11", "101", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		for d := 0; d <= 10; d++ {
			r := NewRanker(f, d)
			verts := New(f).Vertices(d)
			if r.Total().Int64() != int64(len(verts)) {
				t.Fatalf("f=%s d=%d: total %s, enumeration %d", fs, d, r.Total(), len(verts))
			}
			for i, v := range verts {
				w := bitstr.Word{Bits: v, N: d}
				rank, err := r.Rank(w)
				if err != nil {
					t.Fatalf("Rank(%s): %v", w, err)
				}
				if rank.Int64() != int64(i) {
					t.Fatalf("f=%s d=%d: Rank(%s) = %s, want %d", fs, d, w, rank, i)
				}
				back, err := r.UnrankInt(i)
				if err != nil {
					t.Fatalf("Unrank(%d): %v", i, err)
				}
				if back != w {
					t.Fatalf("f=%s d=%d: Unrank(%d) = %s, want %s", fs, d, i, back, w)
				}
			}
		}
	}
}

func TestRankerErrors(t *testing.T) {
	r := NewRanker(bitstr.MustParse("11"), 5)
	if _, err := r.Rank(bitstr.MustParse("1100")); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := r.Rank(bitstr.MustParse("11000")); err == nil {
		t.Error("factor-containing word accepted")
	}
	if _, err := r.Unrank(big.NewInt(-1)); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := r.Unrank(r.Total()); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestRankerLargeDimension(t *testing.T) {
	// Zeckendorf addressing far beyond explicit enumeration: d = 60.
	r := NewRanker(bitstr.Ones(2), 60)
	// |V(Γ_60)| = F_62.
	wantTotal := "4052739537881"
	if r.Total().String() != wantTotal {
		t.Fatalf("|V(Γ_60)| = %s, want %s", r.Total(), wantTotal)
	}
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		idx := new(big.Int).Rand(rng, r.Total())
		w, err := r.Unrank(idx)
		if err != nil {
			t.Fatal(err)
		}
		if w.HasFactor(bitstr.Ones(2)) {
			t.Fatalf("Unrank produced invalid word %s", w)
		}
		back, err := r.Rank(w)
		if err != nil || back.Cmp(idx) != 0 {
			t.Fatalf("round trip failed at %s", idx)
		}
	}
}

func TestRankerOrderPreserving(t *testing.T) {
	// Unrank is strictly increasing in the index (packed-value order).
	r := NewRanker(bitstr.MustParse("110"), 12)
	total := int(r.Total().Int64())
	prev := bitstr.Word{}
	for i := 0; i < total; i++ {
		w, err := r.UnrankInt(i)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !prev.Less(w) {
			t.Fatalf("order violated at %d: %s then %s", i, prev, w)
		}
		prev = w
	}
}

func TestRankerFibonacciZeckendorf(t *testing.T) {
	// For f = 11 the ranker realizes the Fibonacci (Zeckendorf) numeration:
	// the rank of a word b_1...b_d equals sum over set bits of F_{k+1} where
	// k is the number of positions to the right of the bit.
	r := NewRanker(bitstr.Ones(2), 10)
	fib := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for _, s := range []string{"0000000000", "0000000001", "0100100101", "1010101010"} {
		w := bitstr.MustParse(s)
		want := int64(0)
		for i := 0; i < w.Len(); i++ {
			if w.Bit(i) == 1 {
				k := w.Len() - 1 - i
				want += fib[k+1] // F_{k+2} with F_1 = F_2 = 1 shifted: count of 11-free words of length k ... verified below
			}
		}
		got, err := r.Rank(w)
		if err != nil {
			t.Fatalf("Rank(%s): %v", s, err)
		}
		if got.Int64() != want {
			t.Errorf("Zeckendorf rank of %s = %s, want %d", s, got, want)
		}
	}
}

func BenchmarkRankerUnrankD60(b *testing.B) {
	r := NewRanker(bitstr.Ones(2), 60)
	idx := new(big.Int).Div(r.Total(), big.NewInt(3))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Unrank(idx); err != nil {
			b.Fatal(err)
		}
	}
}
