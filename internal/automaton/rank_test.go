package automaton

import (
	"math/big"
	"math/rand"
	"testing"

	"gfcube/internal/bitstr"
)

func TestRankerRoundTripSmall(t *testing.T) {
	for _, fs := range []string{"11", "101", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		for d := 0; d <= 10; d++ {
			r := NewRanker(f, d)
			verts := New(f).Vertices(d)
			if r.Total().Int64() != int64(len(verts)) {
				t.Fatalf("f=%s d=%d: total %s, enumeration %d", fs, d, r.Total(), len(verts))
			}
			for i, v := range verts {
				w := bitstr.Word{Bits: v, N: d}
				rank, err := r.Rank(w)
				if err != nil {
					t.Fatalf("Rank(%s): %v", w, err)
				}
				if rank.Int64() != int64(i) {
					t.Fatalf("f=%s d=%d: Rank(%s) = %s, want %d", fs, d, w, rank, i)
				}
				back, err := r.UnrankInt(i)
				if err != nil {
					t.Fatalf("Unrank(%d): %v", i, err)
				}
				if back != w {
					t.Fatalf("f=%s d=%d: Unrank(%d) = %s, want %s", fs, d, i, back, w)
				}
			}
		}
	}
}

func TestRankerErrors(t *testing.T) {
	r := NewRanker(bitstr.MustParse("11"), 5)
	if r.D() != 5 {
		t.Errorf("D() = %d, want 5", r.D())
	}
	if _, err := r.Rank(bitstr.MustParse("1100")); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := r.RankU64(bitstr.MustParse("1100")); err == nil {
		t.Error("wrong length accepted by RankU64")
	}
	if _, err := r.Rank(bitstr.MustParse("11000")); err == nil {
		t.Error("factor-containing word accepted")
	}
	if _, err := r.Unrank(big.NewInt(-1)); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := r.UnrankInt(-1); err == nil {
		t.Error("negative int rank accepted")
	}
	if _, err := r.Unrank(r.Total()); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := r.Unrank(new(big.Int).Lsh(big.NewInt(1), 70)); err == nil {
		t.Error("non-uint64 rank accepted")
	}
}

func TestRankerLargeDimension(t *testing.T) {
	// Zeckendorf addressing far beyond explicit enumeration: d = 60.
	r := NewRanker(bitstr.Ones(2), 60)
	// |V(Γ_60)| = F_62.
	wantTotal := "4052739537881"
	if r.Total().String() != wantTotal {
		t.Fatalf("|V(Γ_60)| = %s, want %s", r.Total(), wantTotal)
	}
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		idx := new(big.Int).Rand(rng, r.Total())
		w, err := r.Unrank(idx)
		if err != nil {
			t.Fatal(err)
		}
		if w.HasFactor(bitstr.Ones(2)) {
			t.Fatalf("Unrank produced invalid word %s", w)
		}
		back, err := r.Rank(w)
		if err != nil || back.Cmp(idx) != 0 {
			t.Fatalf("round trip failed at %s", idx)
		}
	}
}

func TestRankerOrderPreserving(t *testing.T) {
	// Unrank is strictly increasing in the index (packed-value order).
	r := NewRanker(bitstr.MustParse("110"), 12)
	total := int(r.Total().Int64())
	prev := bitstr.Word{}
	for i := 0; i < total; i++ {
		w, err := r.UnrankInt(i)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !prev.Less(w) {
			t.Fatalf("order violated at %d: %s then %s", i, prev, w)
		}
		prev = w
	}
}

func TestRankerFibonacciZeckendorf(t *testing.T) {
	// For f = 11 the ranker realizes the Fibonacci (Zeckendorf) numeration:
	// the rank of a word b_1...b_d equals sum over set bits of F_{k+1} where
	// k is the number of positions to the right of the bit.
	r := NewRanker(bitstr.Ones(2), 10)
	fib := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for _, s := range []string{"0000000000", "0000000001", "0100100101", "1010101010"} {
		w := bitstr.MustParse(s)
		want := int64(0)
		for i := 0; i < w.Len(); i++ {
			if w.Bit(i) == 1 {
				k := w.Len() - 1 - i
				want += fib[k+1] // F_{k+2} with F_1 = F_2 = 1 shifted: count of 11-free words of length k ... verified below
			}
		}
		got, err := r.Rank(w)
		if err != nil {
			t.Fatalf("Rank(%s): %v", s, err)
		}
		if got.Int64() != want {
			t.Errorf("Zeckendorf rank of %s = %s, want %d", s, got, want)
		}
	}
}

func TestRankerU64PathMatchesBigAPI(t *testing.T) {
	for _, fs := range []string{"11", "101", "1100"} {
		f := bitstr.MustParse(fs)
		for _, d := range []int{0, 1, 7, 13} {
			r := NewRanker(f, d)
			if r.Total().Uint64() != r.TotalU64() {
				t.Fatalf("f=%s d=%d: Total %s != TotalU64 %d", fs, d, r.Total(), r.TotalU64())
			}
			for i := uint64(0); i < r.TotalU64(); i++ {
				w, err := r.UnrankU64(i)
				if err != nil {
					t.Fatal(err)
				}
				u, err := r.RankU64(w)
				if err != nil || u != i {
					t.Fatalf("RankU64(UnrankU64(%d)) = %d (err %v)", i, u, err)
				}
				bigRank, err := r.Rank(w)
				if err != nil || bigRank.Uint64() != i {
					t.Fatalf("big Rank disagrees at %d: %v (err %v)", i, bigRank, err)
				}
				if j, ok := r.RankBits(w.Bits); !ok || j != i {
					t.Fatalf("RankBits(%s) = %d, %v", w, j, ok)
				}
			}
			if _, err := r.UnrankU64(r.TotalU64()); err == nil {
				t.Fatalf("f=%s d=%d: out-of-range UnrankU64 accepted", fs, d)
			}
		}
	}
}

func TestRankerResetReuse(t *testing.T) {
	// One Ranker value reused across factors and dimensions (the scratch
	// pattern of cube construction) must agree with fresh rankers.
	var r Ranker
	for _, fs := range []string{"11", "1010", "110"} {
		f := bitstr.MustParse(fs)
		a := New(f)
		for _, d := range []int{9, 4, 11} {
			r.Reset(a, d)
			fresh := NewRanker(f, d)
			if r.TotalU64() != fresh.TotalU64() {
				t.Fatalf("f=%s d=%d: reused total %d, fresh %d", fs, d, r.TotalU64(), fresh.TotalU64())
			}
			for i := uint64(0); i < r.TotalU64(); i++ {
				a, err1 := r.UnrankU64(i)
				b, err2 := fresh.UnrankU64(i)
				if err1 != nil || err2 != nil || a != b {
					t.Fatalf("f=%s d=%d i=%d: reused %v/%v, fresh %v/%v", fs, d, i, a, err1, b, err2)
				}
			}
		}
	}
}

func TestRankerDimensionRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRanker accepted d > bitstr.MaxLen")
		}
	}()
	NewRanker(bitstr.Ones(2), bitstr.MaxLen+1)
}

// bigRanker is the pre-uint64 rank/unrank implementation (big.Int DP
// tables, allocating per query), kept as the reference point for the
// old-vs-new benchmarks below and as an independent cross-check.
type bigRanker struct {
	dfa    *DFA
	d      int
	suffix [][]*big.Int
	total  *big.Int
}

func newBigRanker(f bitstr.Word, d int) *bigRanker {
	dfa := New(f)
	m := dfa.m
	suffix := make([][]*big.Int, m)
	for s := range suffix {
		suffix[s] = make([]*big.Int, d+1)
		suffix[s][0] = big.NewInt(1)
	}
	for k := 1; k <= d; k++ {
		for s := 0; s < m; s++ {
			total := new(big.Int)
			for c := 0; c < 2; c++ {
				t := dfa.delta[s][c]
				if t == m {
					continue
				}
				total.Add(total, suffix[t][k-1])
			}
			suffix[s][k] = total
		}
	}
	return &bigRanker{dfa: dfa, d: d, suffix: suffix, total: new(big.Int).Set(suffix[0][d])}
}

func (r *bigRanker) rank(w bitstr.Word) *big.Int {
	rank := new(big.Int)
	s := 0
	for i := 0; i < r.d; i++ {
		bit := w.Bit(i)
		if bit == 1 {
			if t0 := r.dfa.delta[s][0]; t0 != r.dfa.m {
				rank.Add(rank, r.suffix[t0][r.d-1-i])
			}
		}
		s = r.dfa.delta[s][bit]
	}
	return rank
}

func (r *bigRanker) unrank(idx *big.Int) bitstr.Word {
	rem := new(big.Int).Set(idx)
	var bits uint64
	s := 0
	for i := 0; i < r.d; i++ {
		k := r.d - 1 - i
		t0 := r.dfa.delta[s][0]
		zeroCount := new(big.Int)
		if t0 != r.dfa.m {
			zeroCount = r.suffix[t0][k]
		}
		if rem.Cmp(zeroCount) < 0 {
			s = t0
		} else {
			rem.Sub(rem, zeroCount)
			bits |= 1 << uint(k)
			s = r.dfa.delta[s][1]
		}
	}
	return bitstr.Word{Bits: bits, N: r.d}
}

func TestRankerAgainstBigReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, fs := range []string{"11", "110", "10101"} {
		f := bitstr.MustParse(fs)
		fast := NewRanker(f, 60)
		ref := newBigRanker(f, 60)
		if fast.Total().Cmp(ref.total) != 0 {
			t.Fatalf("f=%s: totals %s vs %s", fs, fast.Total(), ref.total)
		}
		for iter := 0; iter < 100; iter++ {
			idx := new(big.Int).Rand(rng, ref.total)
			w, err := fast.Unrank(idx)
			if err != nil {
				t.Fatal(err)
			}
			if got := ref.unrank(idx); got != w {
				t.Fatalf("f=%s idx=%s: fast %s, reference %s", fs, idx, w, got)
			}
			if got := ref.rank(w); got.Cmp(idx) != 0 {
				t.Fatalf("f=%s: reference rank(%s) = %s, want %s", fs, w, got, idx)
			}
		}
	}
}

// BenchmarkRanker compares the retired big.Int rank/unrank path ("big")
// with the uint64 fast path ("u64") at d = 60 — the satellite measurement
// for the DFA-rank addressing layer.
func BenchmarkRanker(b *testing.B) {
	f := bitstr.Ones(2)
	fast := NewRanker(f, 60)
	ref := newBigRanker(f, 60)
	idx := new(big.Int).Div(ref.total, big.NewInt(3))
	w, err := fast.Unrank(idx)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rank/big", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ref.rank(w).Cmp(idx) != 0 {
				b.Fatal("wrong rank")
			}
		}
	})
	b.Run("rank/u64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r, ok := fast.RankBits(w.Bits); !ok || r != idx.Uint64() {
				b.Fatal("wrong rank")
			}
		}
	})
	b.Run("unrank/big", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ref.unrank(idx) != w {
				b.Fatal("wrong word")
			}
		}
	})
	b.Run("unrank/u64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got, err := fast.UnrankU64(idx.Uint64()); err != nil || got != w {
				b.Fatal("wrong word")
			}
		}
	})
}

func BenchmarkRankerUnrankD60(b *testing.B) {
	r := NewRanker(bitstr.Ones(2), 60)
	idx := new(big.Int).Div(r.Total(), big.NewInt(3))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Unrank(idx); err != nil {
			b.Fatal(err)
		}
	}
}
