// Package automaton implements the Knuth-Morris-Pratt factor automaton for a
// binary string f, together with transfer-matrix dynamic programs that count,
// exactly and for arbitrary dimension d, the vertices, edges and squares
// (4-cycles) of the generalized Fibonacci cube Q_d(f).
//
// The automaton has states 0..m where m = |f|. State s < m means "the longest
// suffix of the input read so far that is a prefix of f has length s"; state m
// means f has occurred as a factor. Words avoiding f are exactly those whose
// run never reaches state m, which turns vertex enumeration and counting in
// Q_d(f) into walks in a digraph with m states.
package automaton

import (
	"fmt"

	"gfcube/internal/bitstr"
)

// DFA is the factor automaton of a nonempty binary string.
type DFA struct {
	factor bitstr.Word
	m      int
	// delta[s][c] is the state reached from s on input bit c; states 0..m,
	// with m the absorbing "factor seen" state.
	delta [][2]int
}

// New builds the factor automaton of f. It panics if f is empty: the empty
// string is a factor of every word, making Q_d(ε) the empty graph.
func New(f bitstr.Word) *DFA {
	if f.Len() == 0 {
		panic("automaton: empty forbidden factor")
	}
	m := f.Len()
	// KMP failure function: fail[s] = length of the longest proper prefix of
	// f[0:s] that is also a suffix of it.
	fail := make([]int, m+1)
	for s := 2; s <= m; s++ {
		k := fail[s-1]
		for k > 0 && f.Bit(k) != f.Bit(s-1) {
			k = fail[k]
		}
		if f.Bit(k) == f.Bit(s-1) {
			k++
		}
		fail[s] = k
	}
	delta := make([][2]int, m+1)
	for s := 0; s <= m; s++ {
		for c := 0; c < 2; c++ {
			if s == m {
				delta[s][c] = m // absorbing
				continue
			}
			k := s
			for k > 0 && f.Bit(k) != uint64(c) {
				k = fail[k]
			}
			if f.Bit(k) == uint64(c) {
				k++
			}
			delta[s][c] = k
		}
	}
	return &DFA{factor: f, m: m, delta: delta}
}

// Factor returns the forbidden factor the automaton was built from.
func (a *DFA) Factor() bitstr.Word { return a.factor }

// States returns the number of live (non-absorbing) states, m = |f|.
func (a *DFA) States() int { return a.m }

// Step returns the state reached from s on input bit c.
func (a *DFA) Step(s int, c uint64) int { return a.delta[s][c&1] }

// Avoids reports whether w does not contain the factor; it is equivalent to
// !w.HasFactor(f) but runs in a single left-to-right scan.
func (a *DFA) Avoids(w bitstr.Word) bool {
	s := 0
	for i := 0; i < w.Len(); i++ {
		s = a.delta[s][w.Bit(i)]
		if s == a.m {
			return false
		}
	}
	return true
}

// Enumerate calls fn for every word of length d avoiding the factor, in
// increasing packed-value order, pruning the search tree with the automaton.
// It stops early if fn returns false. The visit order matches bitstr.ForEach
// filtered by Avoids, but the cost is proportional to the output, not to 2^d.
func (a *DFA) Enumerate(d int, fn func(bitstr.Word) bool) {
	if d < 0 || d > bitstr.MaxLen {
		panic(fmt.Sprintf("automaton: dimension %d out of range", d))
	}
	var rec func(prefix uint64, pos, state int) bool
	rec = func(prefix uint64, pos, state int) bool {
		if pos == d {
			return fn(bitstr.Word{Bits: prefix, N: d})
		}
		for c := uint64(0); c < 2; c++ {
			next := a.delta[state][c]
			if next == a.m {
				continue
			}
			if !rec(prefix<<1|c, pos+1, next) {
				return false
			}
		}
		return true
	}
	rec(0, 0, 0)
}

// Vertices returns the packed values of all words of length d avoiding the
// factor, in increasing order. These are exactly the vertices of Q_d(f).
func (a *DFA) Vertices(d int) []uint64 {
	return a.AppendVertices(make([]uint64, 0, 1024), d)
}

// AppendVertexStates is AppendVertices with the automaton run annotated:
// alongside each packed word appended to dst, the DFA state reached after
// reading that word is appended to states (always a live state < m, so it
// fits a byte: m <= bitstr.MaxLen). The two slices extend in lockstep.
//
// The annotation is what makes cube construction incremental: the f-free
// extensions of a word w by one trailing bit c are decided by one delta
// step from w's recorded state, so Q_{d+1}(f) is a filter over Q_d(f)
// instead of a fresh enumeration (see core.ColumnBuilder).
func (a *DFA) AppendVertexStates(dst []uint64, states []uint8, d int) ([]uint64, []uint8) {
	if d < 0 || d > bitstr.MaxLen {
		panic(fmt.Sprintf("automaton: dimension %d out of range", d))
	}
	var rec func(prefix uint64, pos, state int)
	rec = func(prefix uint64, pos, state int) {
		if pos == d {
			dst = append(dst, prefix)
			states = append(states, uint8(state))
			return
		}
		for c := uint64(0); c < 2; c++ {
			if next := a.delta[state][c]; next != a.m {
				rec(prefix<<1|c, pos+1, next)
			}
		}
	}
	rec(0, 0, 0)
	return dst, states
}

// StateBits returns the DFA state after reading the length-d word with
// packed value bits, stopping at the absorbing state m as soon as the
// factor occurs. A return value < m proves the word is f-free.
func (a *DFA) StateBits(bits uint64, d int) int {
	s := 0
	for k := d - 1; k >= 0; k-- {
		s = a.delta[s][bits>>uint(k)&1]
		if s == a.m {
			return s
		}
	}
	return s
}

// AppendVertices appends the packed values of all words of length d avoiding
// the factor to dst, in increasing order, and returns the extended slice.
// Passing a recycled dst[:0] amortizes the enumeration buffer across a grid
// sweep.
func (a *DFA) AppendVertices(dst []uint64, d int) []uint64 {
	a.Enumerate(d, func(w bitstr.Word) bool {
		dst = append(dst, w.Bits)
		return true
	})
	return dst
}
