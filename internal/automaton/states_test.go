package automaton

import (
	"testing"

	"gfcube/internal/bitstr"
)

// TestAppendVertexStates cross-checks the annotated enumeration against
// the plain one: same words in the same order, and each recorded state
// must equal an independent StateBits replay of the word.
func TestAppendVertexStates(t *testing.T) {
	for _, fs := range []string{"1", "11", "101", "1010", "0110"} {
		a := New(bitstr.MustParse(fs))
		for d := 0; d <= 9; d++ {
			verts, states := a.AppendVertexStates(nil, nil, d)
			plain := a.Vertices(d)
			if len(verts) != len(plain) || len(states) != len(plain) {
				t.Fatalf("f=%s d=%d: %d verts / %d states, want %d", fs, d, len(verts), len(states), len(plain))
			}
			for i := range verts {
				if verts[i] != plain[i] {
					t.Fatalf("f=%s d=%d: vertex %d = %b, want %b", fs, d, i, verts[i], plain[i])
				}
				if got := a.StateBits(verts[i], d); got != int(states[i]) {
					t.Fatalf("f=%s d=%d: state of %b recorded %d, replay %d", fs, d, verts[i], states[i], got)
				}
				if int(states[i]) >= a.States() {
					t.Fatalf("f=%s d=%d: recorded absorbing state for a live vertex", fs, d)
				}
			}
		}
	}
}

// TestAppendVertexStatesAppends verifies the lockstep-append contract:
// existing prefixes of both slices are preserved.
func TestAppendVertexStatesAppends(t *testing.T) {
	a := New(bitstr.MustParse("11"))
	verts, states := a.AppendVertexStates([]uint64{99}, []uint8{7}, 2)
	if verts[0] != 99 || states[0] != 7 {
		t.Fatal("AppendVertexStates clobbered the existing prefix")
	}
	if len(verts) != 4 || len(states) != 4 { // 3 f-free words of length 2
		t.Fatalf("lengths %d/%d, want 4/4", len(verts), len(states))
	}
}

// TestStateBitsAbsorbing checks the early absorbing-state return on a
// word containing the factor, including one where the factor occurs
// strictly inside the word.
func TestStateBitsAbsorbing(t *testing.T) {
	a := New(bitstr.MustParse("11"))
	if got := a.StateBits(0b0110, 4); got != a.States() {
		t.Fatalf("StateBits(0110) = %d, want absorbing %d", got, a.States())
	}
	if got := a.StateBits(0b0101, 4); got == a.States() {
		t.Fatal("StateBits(0101) hit the absorbing state on an 11-free word")
	}
}

// TestAppendVertexStatesPanicsOutOfRange covers the dimension guard.
func TestAppendVertexStatesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for d out of range")
		}
	}()
	New(bitstr.MustParse("11")).AppendVertexStates(nil, nil, bitstr.MaxLen+1)
}
