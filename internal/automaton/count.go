package automaton

import (
	"math/big"
)

// CountScratch holds the ping-pong DP buffers of the counting
// recurrences, sized to the automaton on first use and reused across
// calls: the m-state vertex planes, the m²-state edge-pair planes and
// the m⁴-state square planes. A cold CountSeq over d = 0..40 for |f| = 3
// allocates ~12.6k big.Int slices without a scratch; through a warm one
// the per-dimension cost is just the result values. A CountScratch is
// not safe for concurrent use; sweeps keep one per worker (see
// core.Scratch).
type CountScratch struct {
	v1, v2 []big.Int // vertex DP, m states
	p1, p2 []big.Int // pair DP, m² states
	q1, q2 []big.Int // square DP, m⁴ states
}

// plane returns buf resized to n values, all zeroed, growing the backing
// array only when the automaton outgrows it.
func plane(buf []big.Int, n int) []big.Int {
	if cap(buf) < n {
		return make([]big.Int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i].SetInt64(0)
	}
	return buf
}

func sumPlane(v []big.Int) *big.Int {
	total := new(big.Int)
	for i := range v {
		total.Add(total, &v[i])
	}
	return total
}

// CountVertices returns |V(Q_d(f))|: the number of binary words of length d
// that avoid the factor f. The computation is a dynamic program over the
// automaton states and is exact for any d (big.Int arithmetic).
func (a *DFA) CountVertices(d int) *big.Int {
	var cs CountScratch
	return a.CountVerticesInto(&cs, d)
}

// CountVerticesInto is CountVertices drawing its DP planes from the
// scratch. The returned value is freshly allocated and independent of
// the scratch.
func (a *DFA) CountVerticesInto(cs *CountScratch, d int) *big.Int {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	cs.v1 = plane(cs.v1, a.m)
	cs.v2 = plane(cs.v2, a.m)
	dp, next := cs.v1, cs.v2
	dp[0].SetInt64(1)
	for pos := 0; pos < d; pos++ {
		for s := range next {
			next[s].SetInt64(0)
		}
		a.stepVertices(dp, next)
		dp, next = next, dp
	}
	cs.v1, cs.v2 = dp, next
	return sumPlane(dp)
}

// stepVertices advances the vertex DP by one position.
func (a *DFA) stepVertices(dp, next []big.Int) {
	for s := 0; s < a.m; s++ {
		if dp[s].Sign() == 0 {
			continue
		}
		for c := 0; c < 2; c++ {
			t := a.delta[s][c]
			if t == a.m {
				continue
			}
			next[t].Add(&next[t], &dp[s])
		}
	}
}

// CountVerticesSeq returns |V(Q_d(f))| for d = 0..dmax as a slice indexed by
// d. It shares the DP across dimensions, so it is cheaper than dmax+1
// independent CountVertices calls.
func (a *DFA) CountVerticesSeq(dmax int) []*big.Int {
	var cs CountScratch
	return a.CountVerticesSeqInto(&cs, dmax)
}

// CountVerticesSeqInto is CountVerticesSeq drawing its DP planes from
// the scratch.
func (a *DFA) CountVerticesSeqInto(cs *CountScratch, dmax int) []*big.Int {
	out := make([]*big.Int, dmax+1)
	cs.v1 = plane(cs.v1, a.m)
	cs.v2 = plane(cs.v2, a.m)
	dp, next := cs.v1, cs.v2
	dp[0].SetInt64(1)
	out[0] = sumPlane(dp)
	for d := 1; d <= dmax; d++ {
		for s := range next {
			next[s].SetInt64(0)
		}
		a.stepVertices(dp, next)
		dp, next = next, dp
		out[d] = sumPlane(dp)
	}
	cs.v1, cs.v2 = dp, next
	return out
}

// CountEdges returns |E(Q_d(f))|: the number of unordered pairs of f-avoiding
// words of length d at Hamming distance 1.
//
// The DP walks both endpoints of an edge simultaneously. Before the (unique)
// position where they differ both endpoints share one automaton state; at the
// divergence position the lexicographically smaller endpoint reads 0 and the
// larger reads 1 (counting each edge exactly once); afterwards both read the
// same bits but may occupy different states.
func (a *DFA) CountEdges(d int) *big.Int {
	var cs CountScratch
	return a.CountEdgesInto(&cs, d)
}

// CountEdgesInto is CountEdges drawing its DP planes from the scratch.
func (a *DFA) CountEdgesInto(cs *CountScratch, d int) *big.Int {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	m := a.m
	// dpSame[s]: runs where the endpoints have not yet diverged.
	// dpPair[sa*m+sb]: runs after divergence; sa tracks the 0-endpoint.
	cs.v1 = plane(cs.v1, m)
	cs.v2 = plane(cs.v2, m)
	cs.p1 = plane(cs.p1, m*m)
	cs.p2 = plane(cs.p2, m*m)
	dpSame, nxSame := cs.v1, cs.v2
	dpPair, nxPair := cs.p1, cs.p2
	dpSame[0].SetInt64(1)
	for pos := 0; pos < d; pos++ {
		for i := range nxSame {
			nxSame[i].SetInt64(0)
		}
		for i := range nxPair {
			nxPair[i].SetInt64(0)
		}
		for s := 0; s < m; s++ {
			if dpSame[s].Sign() == 0 {
				continue
			}
			// Both endpoints read the same bit.
			for c := 0; c < 2; c++ {
				t := a.delta[s][c]
				if t == a.m {
					continue
				}
				nxSame[t].Add(&nxSame[t], &dpSame[s])
			}
			// Diverge here: smaller endpoint reads 0, larger reads 1.
			ta, tb := a.delta[s][0], a.delta[s][1]
			if ta != a.m && tb != a.m {
				nxPair[ta*m+tb].Add(&nxPair[ta*m+tb], &dpSame[s])
			}
		}
		for sa := 0; sa < m; sa++ {
			for sb := 0; sb < m; sb++ {
				v := &dpPair[sa*m+sb]
				if v.Sign() == 0 {
					continue
				}
				for c := 0; c < 2; c++ {
					ta, tb := a.delta[sa][c], a.delta[sb][c]
					if ta == a.m || tb == a.m {
						continue
					}
					nxPair[ta*m+tb].Add(&nxPair[ta*m+tb], v)
				}
			}
		}
		dpSame, nxSame = nxSame, dpSame
		dpPair, nxPair = nxPair, dpPair
	}
	cs.v1, cs.v2 = dpSame, nxSame
	cs.p1, cs.p2 = dpPair, nxPair
	return sumPlane(dpPair)
}

// CountSquares returns |S(Q_d(f))|: the number of 4-cycles of Q_d(f). A
// square of the hypercube is determined by a pair of positions i < j and the
// values of the remaining bits, with all four words required to avoid f.
//
// The DP runs in three phases: before position i a single shared state;
// between i and j two states (bit 0 and bit 1 at position i); after j four
// states, one per combination of bits at i and j.
func (a *DFA) CountSquares(d int) *big.Int {
	var cs CountScratch
	return a.CountSquaresInto(&cs, d)
}

// CountSquaresInto is CountSquares drawing its DP planes from the
// scratch.
func (a *DFA) CountSquaresInto(cs *CountScratch, d int) *big.Int {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	m := a.m
	cs.v1 = plane(cs.v1, m) // before i
	cs.v2 = plane(cs.v2, m)
	cs.p1 = plane(cs.p1, m*m) // between i and j: (s0, s1)
	cs.p2 = plane(cs.p2, m*m)
	cs.q1 = plane(cs.q1, m*m*m*m) // after j: (s00, s01, s10, s11)
	cs.q2 = plane(cs.q2, m*m*m*m)
	dp1, nx1 := cs.v1, cs.v2
	dp2, nx2 := cs.p1, cs.p2
	dp4, nx4 := cs.q1, cs.q2
	dp1[0].SetInt64(1)
	at := func(s00, s01, s10, s11 int) int { return ((s00*m+s01)*m+s10)*m + s11 }
	for pos := 0; pos < d; pos++ {
		for i := range nx1 {
			nx1[i].SetInt64(0)
		}
		for i := range nx2 {
			nx2[i].SetInt64(0)
		}
		for i := range nx4 {
			nx4[i].SetInt64(0)
		}
		for s := 0; s < m; s++ {
			if dp1[s].Sign() == 0 {
				continue
			}
			for c := 0; c < 2; c++ {
				t := a.delta[s][c]
				if t != a.m {
					nx1[t].Add(&nx1[t], &dp1[s])
				}
			}
			// This position is i: branch on the bit at i.
			t0, t1 := a.delta[s][0], a.delta[s][1]
			if t0 != a.m && t1 != a.m {
				nx2[t0*m+t1].Add(&nx2[t0*m+t1], &dp1[s])
			}
		}
		for s0 := 0; s0 < m; s0++ {
			for s1 := 0; s1 < m; s1++ {
				v := &dp2[s0*m+s1]
				if v.Sign() == 0 {
					continue
				}
				for c := 0; c < 2; c++ {
					t0, t1 := a.delta[s0][c], a.delta[s1][c]
					if t0 == a.m || t1 == a.m {
						continue
					}
					nx2[t0*m+t1].Add(&nx2[t0*m+t1], v)
				}
				// This position is j: branch on the bit at j in both copies.
				s00, s01 := a.delta[s0][0], a.delta[s0][1]
				s10, s11 := a.delta[s1][0], a.delta[s1][1]
				if s00 != a.m && s01 != a.m && s10 != a.m && s11 != a.m {
					k := at(s00, s01, s10, s11)
					nx4[k].Add(&nx4[k], v)
				}
			}
		}
		for s00 := 0; s00 < m; s00++ {
			for s01 := 0; s01 < m; s01++ {
				for s10 := 0; s10 < m; s10++ {
					for s11 := 0; s11 < m; s11++ {
						v := &dp4[at(s00, s01, s10, s11)]
						if v.Sign() == 0 {
							continue
						}
						for c := 0; c < 2; c++ {
							t00, t01 := a.delta[s00][c], a.delta[s01][c]
							t10, t11 := a.delta[s10][c], a.delta[s11][c]
							if t00 == a.m || t01 == a.m || t10 == a.m || t11 == a.m {
								continue
							}
							k := at(t00, t01, t10, t11)
							nx4[k].Add(&nx4[k], v)
						}
					}
				}
			}
		}
		dp1, nx1 = nx1, dp1
		dp2, nx2 = nx2, dp2
		dp4, nx4 = nx4, dp4
	}
	cs.v1, cs.v2 = dp1, nx1
	cs.p1, cs.p2 = dp2, nx2
	cs.q1, cs.q2 = dp4, nx4
	return sumPlane(dp4)
}
