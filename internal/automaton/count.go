package automaton

import (
	"math/big"
)

// CountVertices returns |V(Q_d(f))|: the number of binary words of length d
// that avoid the factor f. The computation is a dynamic program over the
// automaton states and is exact for any d (big.Int arithmetic).
func (a *DFA) CountVertices(d int) *big.Int {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	dp := make([]*big.Int, a.m)
	next := make([]*big.Int, a.m)
	for s := range dp {
		dp[s] = new(big.Int)
		next[s] = new(big.Int)
	}
	dp[0].SetInt64(1)
	for pos := 0; pos < d; pos++ {
		for s := range next {
			next[s].SetInt64(0)
		}
		for s := 0; s < a.m; s++ {
			if dp[s].Sign() == 0 {
				continue
			}
			for c := 0; c < 2; c++ {
				t := a.delta[s][c]
				if t == a.m {
					continue
				}
				next[t].Add(next[t], dp[s])
			}
		}
		dp, next = next, dp
	}
	total := new(big.Int)
	for s := 0; s < a.m; s++ {
		total.Add(total, dp[s])
	}
	return total
}

// CountVerticesSeq returns |V(Q_d(f))| for d = 0..dmax as a slice indexed by
// d. It shares the DP across dimensions, so it is cheaper than dmax+1
// independent CountVertices calls.
func (a *DFA) CountVerticesSeq(dmax int) []*big.Int {
	out := make([]*big.Int, dmax+1)
	dp := make([]*big.Int, a.m)
	next := make([]*big.Int, a.m)
	for s := range dp {
		dp[s] = new(big.Int)
		next[s] = new(big.Int)
	}
	dp[0].SetInt64(1)
	sum := func(v []*big.Int) *big.Int {
		t := new(big.Int)
		for _, x := range v {
			t.Add(t, x)
		}
		return t
	}
	out[0] = sum(dp)
	for d := 1; d <= dmax; d++ {
		for s := range next {
			next[s].SetInt64(0)
		}
		for s := 0; s < a.m; s++ {
			if dp[s].Sign() == 0 {
				continue
			}
			for c := 0; c < 2; c++ {
				t := a.delta[s][c]
				if t == a.m {
					continue
				}
				next[t].Add(next[t], dp[s])
			}
		}
		dp, next = next, dp
		out[d] = sum(dp)
	}
	return out
}

// CountEdges returns |E(Q_d(f))|: the number of unordered pairs of f-avoiding
// words of length d at Hamming distance 1.
//
// The DP walks both endpoints of an edge simultaneously. Before the (unique)
// position where they differ both endpoints share one automaton state; at the
// divergence position the lexicographically smaller endpoint reads 0 and the
// larger reads 1 (counting each edge exactly once); afterwards both read the
// same bits but may occupy different states.
func (a *DFA) CountEdges(d int) *big.Int {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	m := a.m
	// dpSame[s]: runs where the endpoints have not yet diverged.
	// dpPair[sa*m+sb]: runs after divergence; sa tracks the 0-endpoint.
	dpSame := newBigs(m)
	dpPair := newBigs(m * m)
	nxSame := newBigs(m)
	nxPair := newBigs(m * m)
	dpSame[0].SetInt64(1)
	for pos := 0; pos < d; pos++ {
		zero(nxSame)
		zero(nxPair)
		for s := 0; s < m; s++ {
			if dpSame[s].Sign() == 0 {
				continue
			}
			// Both endpoints read the same bit.
			for c := 0; c < 2; c++ {
				t := a.delta[s][c]
				if t == a.m {
					continue
				}
				nxSame[t].Add(nxSame[t], dpSame[s])
			}
			// Diverge here: smaller endpoint reads 0, larger reads 1.
			ta, tb := a.delta[s][0], a.delta[s][1]
			if ta != a.m && tb != a.m {
				nxPair[ta*m+tb].Add(nxPair[ta*m+tb], dpSame[s])
			}
		}
		for sa := 0; sa < m; sa++ {
			for sb := 0; sb < m; sb++ {
				v := dpPair[sa*m+sb]
				if v.Sign() == 0 {
					continue
				}
				for c := 0; c < 2; c++ {
					ta, tb := a.delta[sa][c], a.delta[sb][c]
					if ta == a.m || tb == a.m {
						continue
					}
					nxPair[ta*m+tb].Add(nxPair[ta*m+tb], v)
				}
			}
		}
		dpSame, nxSame = nxSame, dpSame
		dpPair, nxPair = nxPair, dpPair
	}
	total := new(big.Int)
	for _, v := range dpPair {
		total.Add(total, v)
	}
	return total
}

// CountSquares returns |S(Q_d(f))|: the number of 4-cycles of Q_d(f). A
// square of the hypercube is determined by a pair of positions i < j and the
// values of the remaining bits, with all four words required to avoid f.
//
// The DP runs in three phases: before position i a single shared state;
// between i and j two states (bit 0 and bit 1 at position i); after j four
// states, one per combination of bits at i and j.
func (a *DFA) CountSquares(d int) *big.Int {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	m := a.m
	dp1 := newBigs(m)             // before i
	dp2 := newBigs(m * m)         // between i and j: (s0, s1)
	dp4 := newBigs(m * m * m * m) // after j: (s00, s01, s10, s11)
	nx1 := newBigs(m)
	nx2 := newBigs(m * m)
	nx4 := newBigs(m * m * m * m)
	dp1[0].SetInt64(1)
	at := func(s00, s01, s10, s11 int) int { return ((s00*m+s01)*m+s10)*m + s11 }
	for pos := 0; pos < d; pos++ {
		zero(nx1)
		zero(nx2)
		zero(nx4)
		for s := 0; s < m; s++ {
			if dp1[s].Sign() == 0 {
				continue
			}
			for c := 0; c < 2; c++ {
				t := a.delta[s][c]
				if t != a.m {
					nx1[t].Add(nx1[t], dp1[s])
				}
			}
			// This position is i: branch on the bit at i.
			t0, t1 := a.delta[s][0], a.delta[s][1]
			if t0 != a.m && t1 != a.m {
				nx2[t0*m+t1].Add(nx2[t0*m+t1], dp1[s])
			}
		}
		for s0 := 0; s0 < m; s0++ {
			for s1 := 0; s1 < m; s1++ {
				v := dp2[s0*m+s1]
				if v.Sign() == 0 {
					continue
				}
				for c := 0; c < 2; c++ {
					t0, t1 := a.delta[s0][c], a.delta[s1][c]
					if t0 == a.m || t1 == a.m {
						continue
					}
					nx2[t0*m+t1].Add(nx2[t0*m+t1], v)
				}
				// This position is j: branch on the bit at j in both copies.
				s00, s01 := a.delta[s0][0], a.delta[s0][1]
				s10, s11 := a.delta[s1][0], a.delta[s1][1]
				if s00 != a.m && s01 != a.m && s10 != a.m && s11 != a.m {
					k := at(s00, s01, s10, s11)
					nx4[k].Add(nx4[k], v)
				}
			}
		}
		for s00 := 0; s00 < m; s00++ {
			for s01 := 0; s01 < m; s01++ {
				for s10 := 0; s10 < m; s10++ {
					for s11 := 0; s11 < m; s11++ {
						v := dp4[at(s00, s01, s10, s11)]
						if v.Sign() == 0 {
							continue
						}
						for c := 0; c < 2; c++ {
							t00, t01 := a.delta[s00][c], a.delta[s01][c]
							t10, t11 := a.delta[s10][c], a.delta[s11][c]
							if t00 == a.m || t01 == a.m || t10 == a.m || t11 == a.m {
								continue
							}
							k := at(t00, t01, t10, t11)
							nx4[k].Add(nx4[k], v)
						}
					}
				}
			}
		}
		dp1, nx1 = nx1, dp1
		dp2, nx2 = nx2, dp2
		dp4, nx4 = nx4, dp4
	}
	total := new(big.Int)
	for _, v := range dp4 {
		total.Add(total, v)
	}
	return total
}

func newBigs(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}

func zero(v []*big.Int) {
	for _, x := range v {
		x.SetInt64(0)
	}
}
