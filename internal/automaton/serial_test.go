package automaton

import (
	"encoding/binary"
	"strings"
	"testing"

	"gfcube/internal/bitstr"
)

func w(s string) bitstr.Word { return bitstr.MustParse(s) }

// Serialize → load must reproduce the ranker exactly: same serialized
// bytes, same total, same rank/unrank answers on every vertex.
func TestRankerSerialRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		f string
		d int
	}{
		{"11", 10}, {"11", 0}, {"101", 9}, {"0110", 12}, {"1", 6},
	} {
		dfa := New(w(tc.f))
		orig := dfa.Ranker(tc.d)
		blob := orig.AppendBinary(nil)
		got, err := LoadRanker(dfa, blob)
		if err != nil {
			t.Fatalf("f=%s d=%d: LoadRanker: %v", tc.f, tc.d, err)
		}
		if string(got.AppendBinary(nil)) != string(blob) {
			t.Fatalf("f=%s d=%d: reserialization differs", tc.f, tc.d)
		}
		if got.TotalU64() != orig.TotalU64() || got.D() != orig.D() {
			t.Fatalf("f=%s d=%d: total/d mismatch", tc.f, tc.d)
		}
		for r := uint64(0); r < orig.TotalU64(); r++ {
			ow, err1 := orig.UnrankU64(r)
			gw, err2 := got.UnrankU64(r)
			if err1 != nil || err2 != nil || ow != gw {
				t.Fatalf("f=%s d=%d rank %d: unrank %v/%v vs %v/%v", tc.f, tc.d, r, ow, err1, gw, err2)
			}
			if rr, ok := got.RankBits(ow.Bits); !ok || rr != r {
				t.Fatalf("f=%s d=%d: rank(unrank(%d)) = %d, %v", tc.f, tc.d, r, rr, ok)
			}
		}
	}
}

// A ranker loaded from an artifact marks its table shared; Reset must
// reallocate rather than write through potentially read-only memory.
func TestLoadedRankerResetReallocates(t *testing.T) {
	dfa := New(w("11"))
	blob := dfa.Ranker(8).AppendBinary(nil)
	rk, err := LoadRanker(dfa, blob)
	if err != nil {
		t.Fatal(err)
	}
	shared := rk.SuffixTable()
	rk.Reset(dfa, 8)
	if &rk.SuffixTable()[0] == &shared[0] {
		t.Error("Reset on a loaded ranker reused the shared table")
	}
	if rk.TotalU64() != dfa.Ranker(8).TotalU64() {
		t.Error("Reset after load computed a wrong total")
	}
}

// Every corruption class must be rejected with an error, never a
// wrong-answering ranker.
func TestLoadRankerRejectsCorruption(t *testing.T) {
	dfa := New(w("11"))
	blob := dfa.Ranker(8).AppendBinary(nil)

	mut := func(name string, f func([]byte) []byte, wantSub string) {
		t.Helper()
		b := f(append([]byte(nil), blob...))
		if _, err := LoadRanker(dfa, b); err == nil {
			t.Errorf("%s: corrupted payload accepted", name)
		} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q missing %q", name, err, wantSub)
		}
	}

	mut("truncated", func(b []byte) []byte { return b[:len(b)-8] }, "entries")
	mut("ragged length", func(b []byte) []byte { return b[:len(b)-3] }, "8-multiple")
	mut("empty", func(b []byte) []byte { return nil }, "")
	mut("huge d", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b, 63)
		return b
	}, "out of range")
	mut("wrong state count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 7)
		return b
	}, "states")
	mut("broken base case", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:], 9) // suffix[0][0] must be 1
		return b
	}, "base case")
	mut("broken recurrence", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[len(b)-8:], 1<<40)
		return b
	}, "")
	mut("wrong total", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 5)
		return b
	}, "total")

	// Loading against the wrong automaton (the "wrong class key" case at
	// the payload layer) must also fail: table shape depends on |f|.
	if _, err := LoadRanker(New(w("101")), blob); err == nil {
		t.Error("ranker for f=11 accepted by automaton for f=101")
	}
}
