package automaton

import (
	"fmt"
	"math/big"

	"gfcube/internal/bitstr"
)

// Ranker provides constant-memory rank/unrank between the f-free words of
// length d (in increasing packed order) and the integers 0..|V(Q_d(f))|-1.
//
// For f = 11 this is exactly the Zeckendorf addressing Hsu used for the
// Fibonacci cube as an interconnection network: node i corresponds to the
// i-th word of the Fibonacci numeration system. The generalization works for
// any forbidden factor via the counting DP: suffixCount[s][k] is the number
// of f-free completions of length k starting from automaton state s.
type Ranker struct {
	dfa *DFA
	d   int
	// suffix[s][k] = number of ways to extend a run in state s by k more
	// symbols without seeing the factor.
	suffix [][]*big.Int
	total  *big.Int
}

// NewRanker prepares rank/unrank tables for words of length d avoiding f.
func NewRanker(f bitstr.Word, d int) *Ranker {
	if d < 0 {
		panic("automaton: negative dimension")
	}
	dfa := New(f)
	m := dfa.m
	suffix := make([][]*big.Int, m)
	for s := range suffix {
		suffix[s] = make([]*big.Int, d+1)
		suffix[s][0] = big.NewInt(1)
	}
	for k := 1; k <= d; k++ {
		for s := 0; s < m; s++ {
			total := new(big.Int)
			for c := 0; c < 2; c++ {
				t := dfa.delta[s][c]
				if t == m {
					continue
				}
				total.Add(total, suffix[t][k-1])
			}
			suffix[s][k] = total
		}
	}
	return &Ranker{dfa: dfa, d: d, suffix: suffix, total: new(big.Int).Set(suffix[0][d])}
}

// Total returns |V(Q_d(f))|.
func (r *Ranker) Total() *big.Int { return new(big.Int).Set(r.total) }

// Rank returns the index of w in the increasing enumeration of f-free words
// of length d. It returns an error if w has the wrong length or contains the
// factor.
func (r *Ranker) Rank(w bitstr.Word) (*big.Int, error) {
	if w.Len() != r.d {
		return nil, fmt.Errorf("automaton: word length %d, ranker dimension %d", w.Len(), r.d)
	}
	rank := new(big.Int)
	s := 0
	for i := 0; i < r.d; i++ {
		bit := w.Bit(i)
		if bit == 1 {
			// All words with 0 at this position (and the same prefix) come
			// first.
			t0 := r.dfa.delta[s][0]
			if t0 != r.dfa.m {
				rank.Add(rank, r.suffix[t0][r.d-1-i])
			}
		}
		s = r.dfa.delta[s][bit]
		if s == r.dfa.m {
			return nil, fmt.Errorf("automaton: word %s contains the factor %s", w, r.dfa.factor)
		}
	}
	return rank, nil
}

// Unrank returns the word of the given index. It returns an error if the
// index is out of range [0, Total).
func (r *Ranker) Unrank(idx *big.Int) (bitstr.Word, error) {
	if idx.Sign() < 0 || idx.Cmp(r.total) >= 0 {
		return bitstr.Word{}, fmt.Errorf("automaton: rank %s out of range [0, %s)", idx, r.total)
	}
	rem := new(big.Int).Set(idx)
	var bits uint64
	s := 0
	for i := 0; i < r.d; i++ {
		k := r.d - 1 - i
		t0 := r.dfa.delta[s][0]
		var zeroCount *big.Int
		if t0 == r.dfa.m {
			zeroCount = new(big.Int)
		} else {
			zeroCount = r.suffix[t0][k]
		}
		if rem.Cmp(zeroCount) < 0 {
			s = t0
		} else {
			rem.Sub(rem, zeroCount)
			bits |= 1 << uint(k)
			s = r.dfa.delta[s][1]
		}
		if s == r.dfa.m {
			return bitstr.Word{}, fmt.Errorf("automaton: internal unrank error at position %d", i)
		}
	}
	return bitstr.Word{Bits: bits, N: r.d}, nil
}

// UnrankInt is Unrank for plain int indices.
func (r *Ranker) UnrankInt(idx int) (bitstr.Word, error) {
	return r.Unrank(big.NewInt(int64(idx)))
}
