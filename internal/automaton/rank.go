package automaton

import (
	"fmt"
	"math/big"

	"gfcube/internal/bitstr"
)

// Ranker provides constant-memory rank/unrank between the f-free words of
// length d (in increasing packed order) and the integers 0..|V(Q_d(f))|-1.
//
// For f = 11 this is exactly the Zeckendorf addressing Hsu used for the
// Fibonacci cube as an interconnection network: node i corresponds to the
// i-th word of the Fibonacci numeration system. The generalization works for
// any forbidden factor via the counting DP: suffix[s][k] is the number of
// f-free completions of length k starting from automaton state s.
//
// Words are packed values, so d never exceeds bitstr.MaxLen = 62 and every
// count in the table is bounded by 2^d <= 2^62: the whole DP fits in plain
// uint64 arithmetic. Rank, unrank and membership probes are O(d) table
// walks with no allocation; the *big.Int methods are thin wrappers kept for
// callers that mix ranks into arbitrary-precision pipelines. Counting for
// arbitrary d (beyond packed words) stays on the big.Int transfer-matrix
// API (CountVertices and friends).
type Ranker struct {
	dfa *DFA
	d   int
	// suffix is the m x (d+1) completion-count table, flattened row-major:
	// suffix[s*(d+1)+k] is the number of ways to extend a run in live state
	// s by k more symbols without seeing the factor.
	suffix []uint64
	total  uint64
	// shared marks a suffix table adopted zero-copy from a mapped artifact
	// (see LoadRanker): the memory may be read-only, so Reset must
	// reallocate instead of writing into it.
	shared bool
	// walkStates/walkRanks are FlipUpRanks scratch (prefix path of the
	// probed word), allocated on first use and reused.
	walkStates []int
	walkRanks  []uint64
}

// NewRanker prepares rank/unrank tables for words of length d avoiding f.
// It panics if d is outside [0, bitstr.MaxLen]: ranked words are packed
// values, so larger dimensions cannot be addressed.
func NewRanker(f bitstr.Word, d int) *Ranker {
	return New(f).Ranker(d)
}

// Ranker builds rank/unrank tables of dimension d over the automaton,
// sharing the already-built transition tables.
func (a *DFA) Ranker(d int) *Ranker {
	r := new(Ranker)
	r.Reset(a, d)
	return r
}

// Reset rebuilds the tables for automaton a and dimension d in place,
// reusing the suffix-table allocation when it has capacity. A zero Ranker
// is valid input; grid sweeps keep one Ranker per worker and Reset it per
// cell, making repeated cube constructions allocation-free.
func (r *Ranker) Reset(a *DFA, d int) {
	if d < 0 || d > bitstr.MaxLen {
		panic(fmt.Sprintf("automaton: ranker dimension %d out of range [0, %d]", d, bitstr.MaxLen))
	}
	m := a.m
	stride := d + 1
	need := m * stride
	if r.shared {
		// The current table aliases a mapped (possibly read-only) artifact:
		// drop it rather than write through it.
		r.suffix, r.shared = nil, false
	}
	if cap(r.suffix) < need {
		r.suffix = make([]uint64, need)
	} else {
		r.suffix = r.suffix[:need]
	}
	r.dfa, r.d = a, d
	for s := 0; s < m; s++ {
		r.suffix[s*stride] = 1
	}
	for k := 1; k <= d; k++ {
		for s := 0; s < m; s++ {
			var total uint64
			for c := 0; c < 2; c++ {
				if t := a.delta[s][c]; t != m {
					total += r.suffix[t*stride+k-1]
				}
			}
			r.suffix[s*stride+k] = total
		}
	}
	r.total = r.suffix[d] // completions of length d from the start state
}

// D returns the ranker's dimension.
func (r *Ranker) D() int { return r.d }

// TotalU64 returns |V(Q_d(f))|.
func (r *Ranker) TotalU64() uint64 { return r.total }

// Total returns |V(Q_d(f))| as a big.Int.
func (r *Ranker) Total() *big.Int { return new(big.Int).SetUint64(r.total) }

// RankBits returns the index of the word with packed value bits (length d
// implied) in the increasing enumeration of f-free words, and whether the
// word is f-free. This is the allocation-free hot path used for bulk
// membership-with-index probes such as cube edge construction.
func (r *Ranker) RankBits(bits uint64) (uint64, bool) {
	m, stride := r.dfa.m, r.d+1
	delta, suffix := r.dfa.delta, r.suffix
	var rank uint64
	s := 0
	for k := r.d - 1; k >= 0; k-- {
		row := &delta[s]
		if bits>>uint(k)&1 == 0 {
			s = row[0]
		} else {
			// All words with 0 at this position (and the same prefix) come
			// first.
			if t0 := row[0]; t0 != m {
				rank += suffix[t0*stride+k]
			}
			s = row[1]
		}
		if s == m {
			return 0, false
		}
	}
	return rank, true
}

// FlipUpRanks visits every increasing single-bit flip of an f-free word
// (packed value bits, length d implied): for each position holding a 0
// whose flip to 1 yields another f-free word, fn receives the 0-based
// position from the left and the flipped word's rank. Flips are visited
// rightmost position first, i.e. in increasing flipped packed value —
// the edge order of explicit cube construction. It returns false without
// calling fn if the word itself contains the factor.
//
// The word's prefix state/rank path is computed once and shared across
// the probes, so a probe flipping position p costs O(d-p) instead of the
// O(d) of an independent RankBits call — about half the table walks of
// the naive loop, and no binary search anywhere.
//
// FlipUpRanks reuses internal scratch and must not be called from
// multiple goroutines on one Ranker; the pure query methods (RankBits,
// RankU64, UnrankU64 and the big.Int wrappers) stay read-only and safe
// for concurrent use.
func (r *Ranker) FlipUpRanks(bits uint64, fn func(pos int, rank uint64)) bool {
	d, m, stride := r.d, r.dfa.m, r.d+1
	delta, suffix := r.dfa.delta, r.suffix
	if cap(r.walkStates) <= d {
		r.walkStates = make([]int, d+1)
		r.walkRanks = make([]uint64, d+1)
	}
	// states[p] / pranks[p]: DFA state and rank contribution of the first
	// p characters.
	states, pranks := r.walkStates[:d+1], r.walkRanks[:d+1]
	states[0], pranks[0] = 0, 0
	s := 0
	var rank uint64
	for p := 0; p < d; p++ {
		k := d - 1 - p
		if bits>>uint(k)&1 == 1 {
			if t0 := delta[s][0]; t0 != m {
				rank += suffix[t0*stride+k]
			}
			s = delta[s][1]
		} else {
			s = delta[s][0]
		}
		if s == m {
			return false
		}
		states[p+1] = s
		pranks[p+1] = rank
	}
	for p := d - 1; p >= 0; p-- {
		k := d - 1 - p
		if bits>>uint(k)&1 == 1 {
			continue
		}
		// Set the 0 at position p: every word sharing the prefix with a 0
		// here precedes the flipped word.
		s := states[p]
		flipped := pranks[p] + suffix[delta[s][0]*stride+k]
		s = delta[s][1]
		for q := p + 1; q < d; q++ {
			if s == m {
				break
			}
			kq := d - 1 - q
			if bits>>uint(kq)&1 == 1 {
				if z := delta[s][0]; z != m {
					flipped += suffix[z*stride+kq]
				}
				s = delta[s][1]
			} else {
				s = delta[s][0]
			}
		}
		if s != m {
			fn(p, flipped)
		}
	}
	return true
}

// RankU64 returns the index of w in the increasing enumeration of f-free
// words of length d. It returns an error if w has the wrong length or
// contains the factor.
func (r *Ranker) RankU64(w bitstr.Word) (uint64, error) {
	if w.Len() != r.d {
		return 0, fmt.Errorf("automaton: word length %d, ranker dimension %d", w.Len(), r.d)
	}
	rank, ok := r.RankBits(w.Bits)
	if !ok {
		return 0, fmt.Errorf("automaton: word %s contains the factor %s", w, r.dfa.factor)
	}
	return rank, nil
}

// Rank is RankU64 returning a big.Int.
func (r *Ranker) Rank(w bitstr.Word) (*big.Int, error) {
	rank, err := r.RankU64(w)
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetUint64(rank), nil
}

// UnrankU64 returns the word of the given index. It returns an error if the
// index is out of range [0, TotalU64).
func (r *Ranker) UnrankU64(idx uint64) (bitstr.Word, error) {
	if idx >= r.total {
		return bitstr.Word{}, fmt.Errorf("automaton: rank %d out of range [0, %d)", idx, r.total)
	}
	m := r.dfa.m
	stride := r.d + 1
	rem := idx
	var bits uint64
	s := 0
	for k := r.d - 1; k >= 0; k-- {
		t0 := r.dfa.delta[s][0]
		var zeroCount uint64
		if t0 != m {
			zeroCount = r.suffix[t0*stride+k]
		}
		if rem < zeroCount {
			s = t0
		} else {
			rem -= zeroCount
			bits |= 1 << uint(k)
			s = r.dfa.delta[s][1]
		}
		if s == m {
			return bitstr.Word{}, fmt.Errorf("automaton: internal unrank error at position %d", r.d-1-k)
		}
	}
	return bitstr.Word{Bits: bits, N: r.d}, nil
}

// Unrank is UnrankU64 for big.Int indices.
func (r *Ranker) Unrank(idx *big.Int) (bitstr.Word, error) {
	if idx.Sign() < 0 || !idx.IsUint64() || idx.Uint64() >= r.total {
		return bitstr.Word{}, fmt.Errorf("automaton: rank %s out of range [0, %d)", idx, r.total)
	}
	return r.UnrankU64(idx.Uint64())
}

// UnrankInt is Unrank for plain int indices.
func (r *Ranker) UnrankInt(idx int) (bitstr.Word, error) {
	if idx < 0 {
		return bitstr.Word{}, fmt.Errorf("automaton: rank %d out of range [0, %d)", idx, r.total)
	}
	return r.UnrankU64(uint64(idx))
}
