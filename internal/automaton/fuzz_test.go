package automaton

import (
	"testing"

	"gfcube/internal/bitstr"
)

// FuzzAvoidsAgainstNaive drives the DFA with arbitrary factor/word pairs
// and cross-checks the naive bit-window scan.
func FuzzAvoidsAgainstNaive(f *testing.F) {
	f.Add(uint64(0b11), 2, uint64(0b1101), 4)
	f.Add(uint64(0b101), 3, uint64(0b11010), 5)
	f.Fuzz(func(t *testing.T, fb uint64, fn int, wb uint64, wn int) {
		if fn < 1 || fn > 10 || wn < 0 || wn > 30 {
			t.Skip()
		}
		factor := bitstr.Word{Bits: fb & (^uint64(0) >> uint(64-fn)), N: fn}
		var w bitstr.Word
		if wn > 0 {
			w = bitstr.Word{Bits: wb & (^uint64(0) >> uint(64-wn)), N: wn}
		}
		a := New(factor)
		if got, want := a.Avoids(w), !w.HasFactor(factor); got != want {
			t.Fatalf("Avoids(%s, f=%s) = %v, want %v", w, factor, got, want)
		}
	})
}

// FuzzRankerRoundTrip checks rank/unrank inversion for arbitrary factors
// and dimensions, on the uint64 fast path and the big.Int wrappers alike.
func FuzzRankerRoundTrip(f *testing.F) {
	f.Add(uint64(0b11), 2, 8, uint64(5))
	f.Fuzz(func(t *testing.T, fb uint64, fn int, d int, idx uint64) {
		if fn < 1 || fn > 6 || d < 0 || d > 24 {
			t.Skip()
		}
		factor := bitstr.Word{Bits: fb & (^uint64(0) >> uint(64-fn)), N: fn}
		r := NewRanker(factor, d)
		total := r.TotalU64()
		if total == 0 {
			t.Skip() // e.g. factor "0" at d >= 1 leaves ... 1^d only; total >= 1 actually
		}
		if r.Total().Uint64() != total {
			t.Fatalf("TotalU64 %d disagrees with Total %s", total, r.Total())
		}
		i := idx % total
		w, err := r.UnrankInt(int(i))
		if err != nil {
			t.Fatalf("Unrank(%d) with total %d: %v", i, total, err)
		}
		if w64, err := r.UnrankU64(i); err != nil || w64 != w {
			t.Fatalf("UnrankU64(%d) = %v (err %v), wrapper %v", i, w64, err, w)
		}
		back, err := r.Rank(w)
		if err != nil || back.Uint64() != i {
			t.Fatalf("Rank(Unrank(%d)) = %v (err %v)", i, back, err)
		}
		if u, ok := r.RankBits(w.Bits); !ok || u != i {
			t.Fatalf("RankBits(%s) = %d, %v, want %d", w, u, ok, i)
		}
		// FlipUpRanks must agree with independent RankBits probes on every
		// increasing flip.
		want := map[int]uint64{}
		for p := 0; p < d; p++ {
			if w.Bit(p) == 1 {
				continue
			}
			if u, ok := r.RankBits(w.Flip(p).Bits); ok {
				want[p] = u
			}
		}
		got := map[int]uint64{}
		if !r.FlipUpRanks(w.Bits, func(pos int, rank uint64) { got[pos] = rank }) {
			t.Fatalf("FlipUpRanks rejected the f-free word %s", w)
		}
		if len(got) != len(want) {
			t.Fatalf("FlipUpRanks visited %d flips, want %d", len(got), len(want))
		}
		for p, u := range want {
			if got[p] != u {
				t.Fatalf("FlipUpRanks(%s) at %d = %d, want %d", w, p, got[p], u)
			}
		}
	})
}

// FuzzCountsConsistent checks that the counting DP stays consistent with
// enumeration on arbitrary small instances.
func FuzzCountsConsistent(f *testing.F) {
	f.Add(uint64(0b110), 3, 7)
	f.Fuzz(func(t *testing.T, fb uint64, fn int, d int) {
		if fn < 1 || fn > 6 || d < 0 || d > 12 {
			t.Skip()
		}
		factor := bitstr.Word{Bits: fb & (^uint64(0) >> uint(64-fn)), N: fn}
		a := New(factor)
		if got, want := a.CountVertices(d).Int64(), int64(len(a.Vertices(d))); got != want {
			t.Fatalf("f=%s d=%d: DP %d, enumeration %d", factor, d, got, want)
		}
	})
}
