package automaton

import (
	"math/big"
	"math/rand"
	"testing"

	"gfcube/internal/bitstr"
)

func TestAvoidsMatchesNaive(t *testing.T) {
	factors := []string{"1", "0", "11", "10", "101", "110", "1010", "1101", "11010", "10110", "111", "1001"}
	for _, fs := range factors {
		f := bitstr.MustParse(fs)
		a := New(f)
		bitstr.ForEach(10, func(w bitstr.Word) bool {
			want := !w.HasFactor(f)
			if got := a.Avoids(w); got != want {
				t.Fatalf("Avoids(%s, f=%s) = %v, want %v", w, fs, got, want)
			}
			return true
		})
	}
}

func TestAvoidsRandomLong(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(40)
		m := 1 + rng.Intn(7)
		w := bitstr.Word{Bits: rng.Uint64() & (^uint64(0) >> uint(64-n)), N: n}
		f := bitstr.Word{Bits: rng.Uint64() & (^uint64(0) >> uint(64-m)), N: m}
		if got, want := New(f).Avoids(w), !w.HasFactor(f); got != want {
			t.Fatalf("Avoids(%s, f=%s) = %v, want %v", w, f, got, want)
		}
	}
}

func TestNewPanicsOnEmptyFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(empty) did not panic")
		}
	}()
	New(bitstr.Word{})
}

func TestEnumerateMatchesFilter(t *testing.T) {
	for _, fs := range []string{"11", "101", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		a := New(f)
		for d := 0; d <= 9; d++ {
			var want []uint64
			bitstr.ForEach(d, func(w bitstr.Word) bool {
				if !w.HasFactor(f) {
					want = append(want, w.Bits)
				}
				return true
			})
			got := a.Vertices(d)
			if len(got) != len(want) {
				t.Fatalf("f=%s d=%d: %d vertices, want %d", fs, d, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("f=%s d=%d: vertex %d = %d, want %d (order mismatch)", fs, d, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	a := New(bitstr.MustParse("11"))
	count := 0
	a.Enumerate(8, func(bitstr.Word) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestCountVerticesFibonacci(t *testing.T) {
	// |V(Q_d(11))| = F_{d+2} with F_1 = F_2 = 1 (Fibonacci cube order).
	a := New(bitstr.MustParse("11"))
	fib := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610}
	for d := 0; d <= 12; d++ {
		want := fib[d+1] // F_{d+2} with 0-indexed slice holding F_1..
		if got := a.CountVertices(d); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("|V(Γ_%d)| = %s, want %d", d, got, want)
		}
	}
}

func TestCountVerticesMatchesEnumeration(t *testing.T) {
	for _, fs := range []string{"1", "11", "10", "101", "110", "111", "1010", "1100", "11010", "10101"} {
		a := New(bitstr.MustParse(fs))
		for d := 0; d <= 11; d++ {
			want := int64(len(a.Vertices(d)))
			if got := a.CountVertices(d); got.Cmp(big.NewInt(want)) != 0 {
				t.Errorf("f=%s d=%d: DP count %s, enumeration %d", fs, d, got, want)
			}
		}
	}
}

func TestCountVerticesSeqConsistent(t *testing.T) {
	for _, fs := range []string{"11", "110", "1010"} {
		a := New(bitstr.MustParse(fs))
		seq := a.CountVerticesSeq(20)
		for d := 0; d <= 20; d++ {
			if seq[d].Cmp(a.CountVertices(d)) != 0 {
				t.Errorf("f=%s: seq[%d] = %s != CountVertices = %s", fs, d, seq[d], a.CountVertices(d))
			}
		}
	}
}

// brute-force edge and square counts by enumeration, for cross-checking DPs.
func bruteEdges(f bitstr.Word, d int) int64 {
	a := New(f)
	verts := a.Vertices(d)
	inV := make(map[uint64]bool, len(verts))
	for _, v := range verts {
		inV[v] = true
	}
	var edges int64
	for _, v := range verts {
		for i := 0; i < d; i++ {
			u := v ^ (uint64(1) << uint(i))
			if u > v && inV[u] {
				edges++
			}
		}
	}
	return edges
}

func bruteSquares(f bitstr.Word, d int) int64 {
	a := New(f)
	verts := a.Vertices(d)
	inV := make(map[uint64]bool, len(verts))
	for _, v := range verts {
		inV[v] = true
	}
	var squares int64
	for _, v := range verts {
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				bi := uint64(1) << uint(i)
				bj := uint64(1) << uint(j)
				// v is the base word with both bits 0.
				if v&bi != 0 || v&bj != 0 {
					continue
				}
				if inV[v|bi] && inV[v|bj] && inV[v|bi|bj] {
					squares++
				}
			}
		}
	}
	return squares
}

func TestCountEdgesMatchesEnumeration(t *testing.T) {
	for _, fs := range []string{"1", "11", "10", "101", "110", "111", "1100", "1010", "11010", "10110"} {
		f := bitstr.MustParse(fs)
		a := New(f)
		for d := 0; d <= 10; d++ {
			want := bruteEdges(f, d)
			if got := a.CountEdges(d); got.Cmp(big.NewInt(want)) != 0 {
				t.Errorf("f=%s d=%d: edge DP %s, enumeration %d", fs, d, got, want)
			}
		}
	}
}

func TestCountSquaresMatchesEnumeration(t *testing.T) {
	for _, fs := range []string{"11", "101", "110", "111", "1100", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		a := New(f)
		for d := 0; d <= 10; d++ {
			want := bruteSquares(f, d)
			if got := a.CountSquares(d); got.Cmp(big.NewInt(want)) != 0 {
				t.Errorf("f=%s d=%d: square DP %s, enumeration %d", fs, d, got, want)
			}
		}
	}
}

func TestCountHypercubeDegenerate(t *testing.T) {
	// For d < |f| the cube is the full hypercube: 2^d vertices, d*2^{d-1}
	// edges, C(d,2)*2^{d-2} squares.
	a := New(bitstr.MustParse("11111"))
	for d := 0; d <= 4; d++ {
		if got := a.CountVertices(d); got.Int64() != 1<<uint(d) {
			t.Errorf("d=%d vertices %s", d, got)
		}
		we := int64(0)
		if d >= 1 {
			we = int64(d) * (1 << uint(d-1))
		}
		if got := a.CountEdges(d); got.Int64() != we {
			t.Errorf("d=%d edges %s want %d", d, got, we)
		}
		ws := int64(0)
		if d >= 2 {
			ws = int64(d*(d-1)/2) * (1 << uint(d-2))
		}
		if got := a.CountSquares(d); got.Int64() != ws {
			t.Errorf("d=%d squares %s want %d", d, got, ws)
		}
	}
}

func TestStepTable(t *testing.T) {
	// Hand-checked automaton for f = 101.
	a := New(bitstr.MustParse("101"))
	// state 0: seen nothing useful. on 1 -> 1, on 0 -> 0.
	if a.Step(0, 1) != 1 || a.Step(0, 0) != 0 {
		t.Error("state 0 transitions wrong")
	}
	// state 1: seen "1". on 0 -> 2, on 1 -> 1.
	if a.Step(1, 0) != 2 || a.Step(1, 1) != 1 {
		t.Error("state 1 transitions wrong")
	}
	// state 2: seen "10". on 1 -> 3 (absorbing), on 0 -> 0.
	if a.Step(2, 1) != 3 || a.Step(2, 0) != 0 {
		t.Error("state 2 transitions wrong")
	}
}

func TestFactorAccessor(t *testing.T) {
	f := bitstr.MustParse("1101")
	a := New(f)
	if a.Factor() != f || a.States() != 4 {
		t.Error("accessors wrong")
	}
}

func BenchmarkEnumerateFibonacciD20(b *testing.B) {
	a := New(bitstr.MustParse("11"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		a.Enumerate(20, func(bitstr.Word) bool { n++; return true })
		if n != 17711 { // F_22
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkCountVerticesD60(b *testing.B) {
	a := New(bitstr.MustParse("11010"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.CountVertices(60)
	}
}

func BenchmarkCountSquaresD40(b *testing.B) {
	a := New(bitstr.MustParse("110"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.CountSquares(40)
	}
}
