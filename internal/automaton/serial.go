package automaton

import (
	"encoding/binary"
	"fmt"

	"gfcube/internal/bitstr"
	"gfcube/internal/memview"
)

// Serialization of rank tables for the artifact store. The payload is a
// fixed little-endian uint64 sequence with no framing of its own (the
// store wraps it in a checksummed header):
//
//	uint64 d      ranked dimension
//	uint64 m      automaton live-state count (= |f|)
//	uint64 total  |V(Q_d(f))| = suffix[d]
//	uint64 suffix[m*(d+1)]  completion counts, row-major as in Ranker
//
// LoadRanker re-verifies the full counting recurrence against the
// automaton, so a table that decodes successfully is provably identical
// to a freshly computed one: corruption that survives the store checksum
// still fails closed here, never into wrong ranks.

// SuffixTable exposes the flat m x (d+1) completion-count table, row
// major, for serialization. The returned slice is the ranker's live
// table; callers must not modify it.
func (r *Ranker) SuffixTable() []uint64 { return r.suffix }

// AppendBinary appends the ranker's serialized form to dst and returns
// the extended slice.
func (r *Ranker) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.d))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.dfa.m))
	dst = binary.LittleEndian.AppendUint64(dst, r.total)
	for _, v := range r.suffix {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// LoadRanker reconstructs a Ranker over automaton a from data written by
// AppendBinary, adopting the table zero-copy when the platform allows.
// The table is validated in full — dimensions, base cases, the counting
// recurrence, and the total — so any error means the caller must fall
// back to computing; a nil error means query answers are byte-identical
// to a rebuilt ranker. The loaded table may alias read-only mapped
// memory: Reset on the result reallocates instead of writing through it.
func LoadRanker(a *DFA, data []byte) (*Ranker, error) {
	vals, ok := memview.Uint64(data)
	if !ok || len(vals) < 3 {
		return nil, fmt.Errorf("automaton: ranker payload %d bytes, want 8-multiple >= 24", len(data))
	}
	d, m, total := vals[0], vals[1], vals[2]
	if d > bitstr.MaxLen {
		return nil, fmt.Errorf("automaton: ranker dimension %d out of range [0, %d]", d, bitstr.MaxLen)
	}
	if int(m) != a.m {
		return nil, fmt.Errorf("automaton: ranker has %d states, automaton for %s has %d", m, a.factor, a.m)
	}
	stride := int(d) + 1
	suffix := vals[3:]
	if len(suffix) != a.m*stride {
		return nil, fmt.Errorf("automaton: ranker table has %d entries, want %d", len(suffix), a.m*stride)
	}
	for s := 0; s < a.m; s++ {
		if suffix[s*stride] != 1 {
			return nil, fmt.Errorf("automaton: ranker base case broken at state %d", s)
		}
	}
	for k := 1; k <= int(d); k++ {
		for s := 0; s < a.m; s++ {
			var want uint64
			for c := 0; c < 2; c++ {
				if t := a.delta[s][c]; t != a.m {
					want += suffix[t*stride+k-1]
				}
			}
			if suffix[s*stride+k] != want {
				return nil, fmt.Errorf("automaton: ranker recurrence broken at state %d length %d", s, k)
			}
		}
	}
	if total != suffix[d] {
		return nil, fmt.Errorf("automaton: ranker total %d, table says %d", total, suffix[d])
	}
	return &Ranker{dfa: a, d: int(d), suffix: suffix, total: total, shared: true}, nil
}
