package bitstr

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics, accepts exactly the {0,1}
// strings of admissible length, and round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "10", "11010", "101x", strings.Repeat("1", 70)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w, err := Parse(s)
		valid := len(s) <= MaxLen
		for i := 0; valid && i < len(s); i++ {
			if s[i] != '0' && s[i] != '1' {
				valid = false
			}
		}
		if valid != (err == nil) {
			t.Fatalf("Parse(%q): err=%v but validity=%v", s, err, valid)
		}
		if err == nil && len(s) > 0 && w.String() != s {
			t.Fatalf("round trip %q -> %q", s, w.String())
		}
	})
}

// FuzzFactorAgainstStrings checks HasFactor and FactorCount against the
// strings package on arbitrary word/factor pairs.
func FuzzFactorAgainstStrings(f *testing.F) {
	f.Add(uint64(0b11010), 5, uint64(0b10), 2)
	f.Add(uint64(0), 1, uint64(1), 1)
	f.Fuzz(func(t *testing.T, wb uint64, wn int, fb uint64, fn int) {
		if wn < 1 || wn > 20 || fn < 1 || fn > 8 {
			t.Skip()
		}
		w := Word{Bits: wb & (^uint64(0) >> uint(64-wn)), N: wn}
		fac := Word{Bits: fb & (^uint64(0) >> uint(64-fn)), N: fn}
		if got, want := w.HasFactor(fac), strings.Contains(w.String(), fac.String()); got != want {
			t.Fatalf("HasFactor(%s, %s) = %v, want %v", w, fac, got, want)
		}
		// Count overlapping occurrences the slow way.
		wc, fs := w.String(), fac.String()
		count := 0
		for i := 0; i+len(fs) <= len(wc); i++ {
			if wc[i:i+len(fs)] == fs {
				count++
			}
		}
		if got := w.FactorCount(fac); got != count {
			t.Fatalf("FactorCount(%s, %s) = %d, want %d", w, fac, got, count)
		}
	})
}

// FuzzBlocksRoundTrip checks the block decomposition invariants on
// arbitrary words.
func FuzzBlocksRoundTrip(f *testing.F) {
	f.Add(uint64(0b1100011), 7)
	f.Fuzz(func(t *testing.T, bits uint64, n int) {
		if n < 0 || n > MaxLen {
			t.Skip()
		}
		var w Word
		if n == 0 {
			w = Word{}
		} else {
			w = Word{Bits: bits & (^uint64(0) >> uint(64-n)), N: n}
		}
		if FromBlocks(w.Blocks()) != w {
			t.Fatalf("blocks round trip failed for %s", w)
		}
	})
}
