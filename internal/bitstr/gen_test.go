package bitstr

import "testing"

func TestForEachCountsAll(t *testing.T) {
	for n := 0; n <= 8; n++ {
		count := 0
		ForEach(n, func(Word) bool { count++; return true })
		if count != 1<<uint(n) {
			t.Errorf("ForEach(%d) visited %d words", n, count)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	done := ForEach(6, func(Word) bool { count++; return count < 5 })
	if done || count != 5 {
		t.Errorf("early stop: done=%v count=%d", done, count)
	}
}

func TestAllOrdering(t *testing.T) {
	words := All(4)
	if len(words) != 16 {
		t.Fatalf("All(4) has %d words", len(words))
	}
	for i := 1; i < len(words); i++ {
		if !words[i-1].Less(words[i]) {
			t.Fatalf("All(4) not sorted at %d", i)
		}
	}
}

func TestAllOfLenUpTo(t *testing.T) {
	words := AllOfLenUpTo(3)
	if len(words) != 2+4+8 {
		t.Fatalf("AllOfLenUpTo(3) has %d words", len(words))
	}
}

func TestCanonicalOfLenCounts(t *testing.T) {
	// Number of complement+reversal classes of binary strings: orbits under
	// a group of order 4 acting on 2^n strings. By Burnside the counts for
	// n = 1..5 are 1, 2, 3, 6, 10, and Table 1 of the paper lists exactly
	// that many factors per length (1, 2, 3, 6 and 10 rows).
	want := map[int]int{1: 1, 2: 2, 3: 3, 4: 6, 5: 10}
	for n, expect := range want {
		got := len(CanonicalOfLen(n))
		if got != expect {
			t.Errorf("CanonicalOfLen(%d) = %d classes, want %d", n, got, expect)
		}
	}
}

func TestCanonicalRepresentativeExamples(t *testing.T) {
	// 11 and 00 are complements: one class. 10 and 01 are reverses (and
	// complements): one class.
	if CanonicalRepresentative(MustParse("11")) != CanonicalRepresentative(MustParse("00")) {
		t.Error("11 and 00 should share a class")
	}
	if CanonicalRepresentative(MustParse("10")) != CanonicalRepresentative(MustParse("01")) {
		t.Error("10 and 01 should share a class")
	}
	// The paper's example: Q_d(110s...) classes — 1100 ~ 0011 ~ 1100^R=0011.
	if CanonicalRepresentative(MustParse("1100")) != CanonicalRepresentative(MustParse("0011")) {
		t.Error("1100 and 0011 should share a class")
	}
}

func TestFamilyConstructors(t *testing.T) {
	cases := []struct {
		got  Word
		want string
	}{
		{OnesZeros(2, 3), "11000"},
		{OnesZerosOnes(1, 1, 1), "101"},
		{OnesZerosOnes(2, 2, 1), "11001"},
		{Alternating(3), "101010"},
		{AlternatingOne(2), "10101"},
		{AlternatingMid(1, 1), "10110"},
		{TwoOnesBlocks(2), "110110"},
	}
	for _, c := range cases {
		if c.got.String() != c.want {
			t.Errorf("family constructor: got %s, want %s", c.got, c.want)
		}
	}
}

func TestFibonacciFactorIsSpecialCase(t *testing.T) {
	// Γ_d = Q_d(11): the Fibonacci factor is 1^2 and also OnesZeros(2, 0).
	if Ones(2) != MustParse("11") || OnesZeros(2, 0) != MustParse("11") {
		t.Error("Fibonacci factor construction broken")
	}
}
