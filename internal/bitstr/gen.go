package bitstr

// ForEach calls fn for every word of length n in increasing packed-value
// order. It stops early and returns false if fn returns false; otherwise it
// returns true after the full sweep.
func ForEach(n int, fn func(Word) bool) bool {
	if n < 0 || n > MaxLen {
		panic(ErrTooLong)
	}
	total := uint64(1) << uint(n)
	for v := uint64(0); v < total; v++ {
		if !fn(Word{Bits: v, N: n}) {
			return false
		}
	}
	return true
}

// All returns every word of length n in increasing packed-value order. For
// large n prefer ForEach, which does not materialize the slice.
func All(n int) []Word {
	out := make([]Word, 0, 1<<uint(n))
	ForEach(n, func(w Word) bool {
		out = append(out, w)
		return true
	})
	return out
}

// AllOfLenUpTo returns every nonempty word of length at most n, shortest
// first. Used to sweep forbidden factors in classification experiments.
func AllOfLenUpTo(n int) []Word {
	var out []Word
	for l := 1; l <= n; l++ {
		out = append(out, All(l)...)
	}
	return out
}

// CanonicalRepresentative returns the least word, in (length, value) order,
// of the equivalence class of w under complementation and reversal. The
// graphs Q_d(f), Q_d(f̄), Q_d(f^R) and Q_d(f̄^R) are pairwise isomorphic
// (Lemmas 2.2 and 2.3 of the paper), so classification experiments need only
// consider canonical representatives.
func CanonicalRepresentative(w Word) Word {
	best := w
	for _, cand := range []Word{w.Complement(), w.Reverse(), w.Complement().Reverse()} {
		if cand.Less(best) {
			best = cand
		}
	}
	return best
}

// IsCanonical reports whether w is the canonical representative of its
// complement/reversal class.
func IsCanonical(w Word) bool { return CanonicalRepresentative(w) == w }

// CanonicalOfLen returns the canonical representatives of all
// complement/reversal classes of words of length n, in increasing value order.
func CanonicalOfLen(n int) []Word {
	var out []Word
	ForEach(n, func(w Word) bool {
		if IsCanonical(w) {
			out = append(out, w)
		}
		return true
	})
	return out
}

// The named families of forbidden factors studied in Sections 3-5 of the
// paper. Each constructor returns the factor as a Word.

// OnesZeros returns 1^r 0^s (Theorem 3.3).
func OnesZeros(r, s int) Word { return Ones(r).Concat(Zeros(s)) }

// OnesZerosOnes returns 1^r 0^s 1^t (Proposition 3.2).
func OnesZerosOnes(r, s, t int) Word {
	return ConcatAll(Ones(r), Zeros(s), Ones(t))
}

// Alternating returns (10)^s (Theorem 4.4).
func Alternating(s int) Word { return Repeat(MustParse("10"), s) }

// AlternatingOne returns (10)^s 1 (Proposition 4.1).
func AlternatingOne(s int) Word { return Alternating(s).Concat(Ones(1)) }

// AlternatingMid returns (10)^r 1 (10)^s (Proposition 4.2).
func AlternatingMid(r, s int) Word {
	return ConcatAll(Alternating(r), Ones(1), Alternating(s))
}

// TwoOnesBlocks returns 1^s 0 1^s 0 (Theorem 4.3).
func TwoOnesBlocks(s int) Word {
	return ConcatAll(Ones(s), Zeros(1), Ones(s), Zeros(1))
}
