package bitstr

import (
	"testing"
	"testing/quick"
)

func TestQuickComplementInvolution(t *testing.T) {
	prop := func(w Word) bool { return w.Complement().Complement() == w }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	prop := func(w Word) bool { return w.Reverse().Reverse() == w }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementReverseCommute(t *testing.T) {
	prop := func(w Word) bool { return w.Complement().Reverse() == w.Reverse().Complement() }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOnesCountComplement(t *testing.T) {
	prop := func(w Word) bool { return w.OnesCount()+w.Complement().OnesCount() == w.N }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickXorSelfInverse(t *testing.T) {
	prop := func(w, o Word) bool {
		if o.N != w.N {
			o = Word{Bits: o.Bits & (^uint64(0) >> uint(64-w.N)), N: w.N}
		}
		return w.Xor(o).Xor(o) == w
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHammingIsXorWeight(t *testing.T) {
	prop := func(w, o Word) bool {
		if o.N != w.N {
			o = Word{Bits: o.Bits & (^uint64(0) >> uint(64-w.N)), N: w.N}
		}
		return w.HammingDistance(o) == w.Xor(o).OnesCount()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFlipChangesExactlyOneBit(t *testing.T) {
	prop := func(w Word) bool {
		for i := 0; i < w.N; i++ {
			if w.HammingDistance(w.Flip(i)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Factor-duality properties from Lemmas 2.2 and 2.3 of the paper: f is a
// factor of b iff f̄ is a factor of b̄, and iff f^R is a factor of b^R.
func TestQuickFactorComplementDuality(t *testing.T) {
	prop := func(w, f Word) bool {
		if f.N > w.N {
			w, f = f, w
		}
		return w.HasFactor(f) == w.Complement().HasFactor(f.Complement())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFactorReverseDuality(t *testing.T) {
	prop := func(w, f Word) bool {
		if f.N > w.N {
			w, f = f, w
		}
		return w.HasFactor(f) == w.Reverse().HasFactor(f.Reverse())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixSuffixConcat(t *testing.T) {
	prop := func(w Word) bool {
		for k := 0; k <= w.N; k++ {
			if w.Prefix(k).Concat(w.Suffix(w.N-k)) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBlocksRoundTrip(t *testing.T) {
	prop := func(w Word) bool { return FromBlocks(w.Blocks()) == w }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBlocksAlternate(t *testing.T) {
	prop := func(w Word) bool {
		bl := w.Blocks()
		total := 0
		for i, b := range bl {
			total += b.Len
			if b.Len < 1 {
				return false
			}
			if i > 0 && bl[i-1].Bit == b.Bit {
				return false
			}
		}
		return total == w.N
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	prop := func(w Word) bool {
		got, err := Parse(w.String())
		return err == nil && got == w
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalIdempotent(t *testing.T) {
	prop := func(w Word) bool {
		c := CanonicalRepresentative(w)
		return CanonicalRepresentative(c) == c && !c.Less(CanonicalRepresentative(w)) == true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalClassInvariant(t *testing.T) {
	prop := func(w Word) bool {
		c := CanonicalRepresentative(w)
		return CanonicalRepresentative(w.Complement()) == c &&
			CanonicalRepresentative(w.Reverse()) == c &&
			CanonicalRepresentative(w.Complement().Reverse()) == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
