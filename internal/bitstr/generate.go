package bitstr

import (
	"math/rand"
	"reflect"
)

// Generate implements testing/quick.Generator: property-based tests across
// the module draw structurally valid random words (length 1..20) instead of
// raw struct values.
func (Word) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 1 + rng.Intn(20)
	return reflect.ValueOf(Word{Bits: rng.Uint64() & (^uint64(0) >> uint(64-n)), N: n})
}

// Random returns a uniformly random word of the given length.
func Random(rng *rand.Rand, n int) Word {
	if n == 0 {
		return Word{}
	}
	if n < 0 || n > MaxLen {
		panic(ErrTooLong)
	}
	return Word{Bits: rng.Uint64() & (^uint64(0) >> uint(64-n)), N: n}
}
