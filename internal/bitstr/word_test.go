package bitstr

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		bits uint64
		n    int
	}{
		{"", 0, 0},
		{"0", 0, 1},
		{"1", 1, 1},
		{"10", 2, 2},
		{"01", 1, 2},
		{"11", 3, 2},
		{"101", 5, 3},
		{"0000", 0, 4},
		{"1111", 15, 4},
		{"11010", 26, 5},
	}
	for _, c := range cases {
		w, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if w.Bits != c.bits || w.N != c.n {
			t.Errorf("Parse(%q) = {%d,%d}, want {%d,%d}", c.in, w.Bits, w.N, c.bits, c.n)
		}
		if c.in != "" && w.String() != c.in {
			t.Errorf("String() round trip: got %q want %q", w.String(), c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("10x1"); err == nil {
		t.Error("Parse accepted invalid character")
	}
	if _, err := Parse(strings.Repeat("1", MaxLen+1)); err != ErrTooLong {
		t.Errorf("Parse over-long: got %v, want ErrTooLong", err)
	}
}

func TestEmptyWordString(t *testing.T) {
	if got := (Word{}).String(); got != "ε" {
		t.Errorf("empty word renders as %q", got)
	}
}

func TestBitIndexing(t *testing.T) {
	w := MustParse("10110")
	want := []uint64{1, 0, 1, 1, 0}
	for i, b := range want {
		if w.Bit(i) != b {
			t.Errorf("Bit(%d) = %d, want %d", i, w.Bit(i), b)
		}
	}
}

func TestSetBitAndFlip(t *testing.T) {
	w := MustParse("0000")
	w = w.SetBit(1, 1)
	if w.String() != "0100" {
		t.Fatalf("SetBit: got %s", w)
	}
	w = w.Flip(1)
	if w.String() != "0000" {
		t.Fatalf("Flip back: got %s", w)
	}
	w = w.Flip(3)
	if w.String() != "0001" {
		t.Fatalf("Flip last: got %s", w)
	}
	// SetBit with the value already present is a no-op.
	if w.SetBit(3, 1) != w {
		t.Error("SetBit(3,1) changed a word that already had bit 3 set")
	}
}

func TestE(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := E(i, 5)
		if e.OnesCount() != 1 || e.Bit(i) != 1 {
			t.Errorf("E(%d,5) = %s", i, e)
		}
	}
	// b + e_i flips exactly bit i (paper Section 2).
	b := MustParse("10101")
	for i := 0; i < 5; i++ {
		if b.Xor(E(i, 5)) != b.Flip(i) {
			t.Errorf("b+e_%d != Flip(%d)", i+1, i)
		}
	}
}

func TestComplement(t *testing.T) {
	cases := map[string]string{
		"11":    "00",
		"10":    "01",
		"11010": "00101",
		"0":     "1",
	}
	for in, want := range cases {
		if got := MustParse(in).Complement().String(); got != want {
			t.Errorf("Complement(%s) = %s, want %s", in, got, want)
		}
	}
	if (Word{}).Complement() != (Word{}) {
		t.Error("complement of empty word not empty")
	}
}

func TestReverse(t *testing.T) {
	cases := map[string]string{
		"10":    "01",
		"110":   "011",
		"11010": "01011",
		"1111":  "1111",
	}
	for in, want := range cases {
		if got := MustParse(in).Reverse().String(); got != want {
			t.Errorf("Reverse(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	a := MustParse("10110")
	b := MustParse("00111")
	if d := a.HammingDistance(b); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestConcatRepeat(t *testing.T) {
	if got := MustParse("10").Concat(MustParse("11")).String(); got != "1011" {
		t.Errorf("Concat = %s", got)
	}
	if got := Repeat(MustParse("10"), 3).String(); got != "101010" {
		t.Errorf("Repeat = %s", got)
	}
	if got := ConcatAll(Ones(2), Zeros(3), Ones(1)).String(); got != "110001" {
		t.Errorf("ConcatAll = %s", got)
	}
	if Repeat(MustParse("10"), 0) != (Word{}) {
		t.Error("Repeat k=0 should be empty")
	}
}

func TestOnesZeros(t *testing.T) {
	if Ones(4).String() != "1111" || Zeros(3).String() != "000" {
		t.Error("Ones/Zeros wrong")
	}
	if Ones(0) != (Word{}) || Zeros(0) != (Word{}) {
		t.Error("zero-length Ones/Zeros should be empty")
	}
}

func TestPrefixSuffixFactor(t *testing.T) {
	w := MustParse("110100")
	if w.Prefix(3).String() != "110" {
		t.Errorf("Prefix = %s", w.Prefix(3))
	}
	if w.Suffix(3).String() != "100" {
		t.Errorf("Suffix = %s", w.Suffix(3))
	}
	if w.Factor(1, 4).String() != "1010" {
		t.Errorf("Factor = %s", w.Factor(1, 4))
	}
	if w.Prefix(0) != (Word{}) || w.Suffix(0) != (Word{}) {
		t.Error("zero-length prefix/suffix should be empty")
	}
	if w.Prefix(6) != w || w.Suffix(6) != w {
		t.Error("full-length prefix/suffix should be the word itself")
	}
}

func TestHasFactor(t *testing.T) {
	cases := []struct {
		w, f string
		want bool
	}{
		{"11010", "11", true},
		{"11010", "101", true},
		{"11010", "111", false},
		{"10101", "1010", true},
		{"10101", "0100", false},
		{"0", "1", false},
		{"1", "1", true},
		{"110", "110", true},
		{"110", "1100", false},
	}
	for _, c := range cases {
		if got := MustParse(c.w).HasFactor(MustParse(c.f)); got != c.want {
			t.Errorf("HasFactor(%s, %s) = %v, want %v", c.w, c.f, got, c.want)
		}
	}
	if !MustParse("101").HasFactor(Word{}) {
		t.Error("empty factor should occur in every word")
	}
}

func TestHasFactorVsStringsContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(16)
		m := 1 + rng.Intn(6)
		w := Word{Bits: rng.Uint64() & (^uint64(0) >> uint(64-n)), N: n}
		f := Word{Bits: rng.Uint64() & (^uint64(0) >> uint(64-m)), N: m}
		want := strings.Contains(w.String(), f.String())
		if got := w.HasFactor(f); got != want {
			t.Fatalf("HasFactor(%s,%s) = %v, strings.Contains says %v", w, f, got, want)
		}
	}
}

func TestFactorCount(t *testing.T) {
	if got := MustParse("10101").FactorCount(MustParse("101")); got != 2 {
		t.Errorf("overlapping count = %d, want 2", got)
	}
	if got := MustParse("1111").FactorCount(MustParse("11")); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := MustParse("000").FactorCount(MustParse("1")); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
	if got := MustParse("101").FactorCount(Word{}); got != 4 {
		t.Errorf("empty-factor count = %d, want 4", got)
	}
}

func TestBlocks(t *testing.T) {
	w := MustParse("1100011")
	got := w.Blocks()
	want := []Block{{1, 2}, {0, 3}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("blocks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d = %v, want %v", i, got[i], want[i])
		}
	}
	if w.BlockCount() != 3 {
		t.Errorf("BlockCount = %d", w.BlockCount())
	}
	if len((Word{}).Blocks()) != 0 {
		t.Error("empty word should have no blocks")
	}
	if FromBlocks(got) != w {
		t.Error("FromBlocks does not invert Blocks")
	}
}

func TestLessOrdering(t *testing.T) {
	a, b := MustParse("1"), MustParse("00")
	if !a.Less(b) {
		t.Error("shorter word should order first")
	}
	c, d := MustParse("01"), MustParse("10")
	if !c.Less(d) || d.Less(c) {
		t.Error("same-length ordering by value broken")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	w := MustParse("101")
	assertPanics("Bit out of range", func() { w.Bit(3) })
	assertPanics("Flip negative", func() { w.Flip(-1) })
	assertPanics("Xor length mismatch", func() { w.Xor(MustParse("10")) })
	assertPanics("New bad length", func() { New(0, MaxLen+1) })
	assertPanics("New overflow value", func() { New(4, 2) })
	assertPanics("Prefix out of range", func() { w.Prefix(4) })
	assertPanics("Factor out of range", func() { w.Factor(2, 2) })
	assertPanics("Concat too long", func() { Ones(40).Concat(Ones(40)) })
}

func TestOnesCount(t *testing.T) {
	if MustParse("10110").OnesCount() != 3 {
		t.Error("OnesCount wrong")
	}
}
