// Package bitstr implements fixed-length binary strings (words) packed into
// machine integers, together with the string operations used throughout the
// generalized Fibonacci cube literature: complementation, reversal, factor
// (substring) tests, block decomposition, and single-bit flips.
//
// A Word of length n stores its bits so that the most significant used bit is
// the first (leftmost) character of the string, i.e. the integer value of the
// Bits field equals the value of the word read as a binary numeral. Positions
// are 0-based from the left, so Bit(0) is the first character b1 of the
// paper's notation b1 b2 ... bd.
package bitstr

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// MaxLen is the maximum supported word length. Words are packed in a uint64;
// two bits of headroom are kept so that intermediate shifts never overflow.
const MaxLen = 62

// Word is a binary string of length N packed into Bits. The zero value is the
// empty word.
type Word struct {
	Bits uint64
	N    int
}

// ErrTooLong is returned when a requested word length exceeds MaxLen.
var ErrTooLong = errors.New("bitstr: word length exceeds MaxLen")

// New returns the word of length n whose packed value is bits. It panics if n
// is out of range or bits has set bits beyond the low n positions; this is a
// programming error, not an input error.
func New(bits uint64, n int) Word {
	if n < 0 || n > MaxLen {
		panic(fmt.Sprintf("bitstr.New: length %d out of range [0,%d]", n, MaxLen))
	}
	if n < 64 && bits>>uint(n) != 0 {
		panic(fmt.Sprintf("bitstr.New: value %b does not fit in %d bits", bits, n))
	}
	return Word{Bits: bits, N: n}
}

// Parse converts a string of '0' and '1' characters into a Word.
func Parse(s string) (Word, error) {
	if len(s) > MaxLen {
		return Word{}, ErrTooLong
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		v <<= 1
		switch s[i] {
		case '1':
			v |= 1
		case '0':
		default:
			return Word{}, fmt.Errorf("bitstr: invalid character %q at position %d", s[i], i)
		}
	}
	return Word{Bits: v, N: len(s)}, nil
}

// MustParse is Parse that panics on error; for use with constant strings.
func MustParse(s string) Word {
	w, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return w
}

// String renders the word as a string of '0' and '1' characters.
func (w Word) String() string {
	if w.N == 0 {
		return "ε"
	}
	var b strings.Builder
	b.Grow(w.N)
	for i := 0; i < w.N; i++ {
		if w.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Len returns the number of bits in the word.
func (w Word) Len() int { return w.N }

// IsEmpty reports whether the word has length zero.
func (w Word) IsEmpty() bool { return w.N == 0 }

// Bit returns the bit at 0-based position i from the left (b_{i+1} in the
// paper's 1-based notation).
func (w Word) Bit(i int) uint64 {
	w.check(i)
	return (w.Bits >> uint(w.N-1-i)) & 1
}

// SetBit returns a copy of w with position i set to v (0 or 1).
func (w Word) SetBit(i int, v uint64) Word {
	w.check(i)
	mask := uint64(1) << uint(w.N-1-i)
	if v&1 == 1 {
		w.Bits |= mask
	} else {
		w.Bits &^= mask
	}
	return w
}

// Flip returns w + e_{i+1}: the word with the bit at 0-based position i
// reversed, all other bits unchanged.
func (w Word) Flip(i int) Word {
	w.check(i)
	w.Bits ^= uint64(1) << uint(w.N-1-i)
	return w
}

// E returns the word e_{i+1} of length n: 1 at 0-based position i and 0
// elsewhere.
func E(i, n int) Word {
	w := New(0, n)
	return w.SetBit(i, 1)
}

// Xor returns the bitwise sum modulo 2 of two words of equal length (the
// paper's b + c).
func (w Word) Xor(o Word) Word {
	w.checkSameLen(o)
	w.Bits ^= o.Bits
	return w
}

// Complement returns the bitwise complement of the word.
func (w Word) Complement() Word {
	if w.N == 0 {
		return w
	}
	w.Bits = ^w.Bits & (^uint64(0) >> uint(64-w.N))
	return w
}

// Reverse returns the word read right to left (b^R in the paper).
func (w Word) Reverse() Word {
	r := uint64(0)
	for i := 0; i < w.N; i++ {
		r = r<<1 | (w.Bits>>uint(i))&1
	}
	return Word{Bits: r, N: w.N}
}

// OnesCount returns the number of 1 bits in the word.
func (w Word) OnesCount() int { return bits.OnesCount64(w.Bits) }

// HammingDistance returns the number of positions in which two equal-length
// words differ; this equals their distance in the hypercube Q_n.
func (w Word) HammingDistance(o Word) int {
	w.checkSameLen(o)
	return bits.OnesCount64(w.Bits ^ o.Bits)
}

// Concat returns the concatenation of w followed by o.
func (w Word) Concat(o Word) Word {
	if w.N+o.N > MaxLen {
		panic(ErrTooLong)
	}
	return Word{Bits: w.Bits<<uint(o.N) | o.Bits, N: w.N + o.N}
}

// ConcatAll concatenates any number of words left to right.
func ConcatAll(ws ...Word) Word {
	out := Word{}
	for _, w := range ws {
		out = out.Concat(w)
	}
	return out
}

// Repeat returns the word w concatenated with itself k times (w^k).
func Repeat(w Word, k int) Word {
	out := Word{}
	for i := 0; i < k; i++ {
		out = out.Concat(w)
	}
	return out
}

// Ones returns the word 1^s.
func Ones(s int) Word {
	if s > MaxLen {
		panic(ErrTooLong)
	}
	if s == 0 {
		return Word{}
	}
	return Word{Bits: ^uint64(0) >> uint(64-s), N: s}
}

// Zeros returns the word 0^s.
func Zeros(s int) Word { return New(0, s) }

// Prefix returns the first k characters of the word.
func (w Word) Prefix(k int) Word {
	if k < 0 || k > w.N {
		panic(fmt.Sprintf("bitstr: prefix length %d out of range for word of length %d", k, w.N))
	}
	return Word{Bits: w.Bits >> uint(w.N-k), N: k}
}

// Suffix returns the last k characters of the word.
func (w Word) Suffix(k int) Word {
	if k < 0 || k > w.N {
		panic(fmt.Sprintf("bitstr: suffix length %d out of range for word of length %d", k, w.N))
	}
	if k == 0 {
		return Word{}
	}
	return Word{Bits: w.Bits & (^uint64(0) >> uint(64-k)), N: k}
}

// Factor returns the factor (substring) of length m starting at 0-based
// position i.
func (w Word) Factor(i, m int) Word {
	if i < 0 || m < 0 || i+m > w.N {
		panic(fmt.Sprintf("bitstr: factor [%d,%d) out of range for word of length %d", i, i+m, w.N))
	}
	return w.Suffix(w.N - i).Prefix(m)
}

// HasFactor reports whether f occurs as a factor (contiguous substring) of w.
// The empty word is a factor of every word.
func (w Word) HasFactor(f Word) bool {
	if f.N == 0 {
		return true
	}
	if f.N > w.N {
		return false
	}
	mask := ^uint64(0) >> uint(64-f.N)
	for shift := 0; shift <= w.N-f.N; shift++ {
		if (w.Bits>>uint(w.N-f.N-shift))&mask == f.Bits {
			return true
		}
	}
	return false
}

// FactorCount returns the number of (possibly overlapping) occurrences of f
// in w. For the empty factor it returns len(w)+1.
func (w Word) FactorCount(f Word) int {
	if f.N == 0 {
		return w.N + 1
	}
	if f.N > w.N {
		return 0
	}
	mask := ^uint64(0) >> uint(64-f.N)
	count := 0
	for shift := 0; shift <= w.N-f.N; shift++ {
		if (w.Bits>>uint(w.N-f.N-shift))&mask == f.Bits {
			count++
		}
	}
	return count
}

// Block is a maximal run of equal characters in a word.
type Block struct {
	Bit uint64 // 0 or 1
	Len int    // run length, >= 1
}

// Blocks returns the block decomposition of the word: the non-extendable
// sequences of contiguous equal digits, left to right.
func (w Word) Blocks() []Block {
	if w.N == 0 {
		return nil
	}
	var out []Block
	cur := Block{Bit: w.Bit(0), Len: 1}
	for i := 1; i < w.N; i++ {
		b := w.Bit(i)
		if b == cur.Bit {
			cur.Len++
			continue
		}
		out = append(out, cur)
		cur = Block{Bit: b, Len: 1}
	}
	return append(out, cur)
}

// BlockCount returns the number of blocks of the word.
func (w Word) BlockCount() int { return len(w.Blocks()) }

// FromBlocks reconstructs a word from a block decomposition.
func FromBlocks(blocks []Block) Word {
	out := Word{}
	for _, b := range blocks {
		if b.Bit == 1 {
			out = out.Concat(Ones(b.Len))
		} else {
			out = out.Concat(Zeros(b.Len))
		}
	}
	return out
}

// Less orders words first by length, then by packed value; a convenient total
// order for canonical enumeration.
func (w Word) Less(o Word) bool {
	if w.N != o.N {
		return w.N < o.N
	}
	return w.Bits < o.Bits
}

func (w Word) check(i int) {
	if i < 0 || i >= w.N {
		panic(fmt.Sprintf("bitstr: position %d out of range for word of length %d", i, w.N))
	}
}

func (w Word) checkSameLen(o Word) {
	if w.N != o.N {
		panic(fmt.Sprintf("bitstr: length mismatch %d vs %d", w.N, o.N))
	}
}
