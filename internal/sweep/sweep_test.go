package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gfcube/internal/core"
)

// fakeTasks builds n class-granular tasks (the engine never inspects the
// class for synthetic workloads).
func fakeTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{D: i}
	}
	return tasks
}

// Results must arrive in task order no matter how workers interleave. The
// staggered sleep makes late tasks finish first without a reorder buffer.
func TestStreamDeterministicOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 8} {
		fn := func(ctx context.Context, s *core.Scratch, task Task) (any, error) {
			time.Sleep(time.Duration((n-task.Seq)%7) * time.Millisecond)
			return task.Seq * 10, nil
		}
		var got []Result
		for r := range Stream(context.Background(), fakeTasks(n), fn, Options{Workers: workers}) {
			got = append(got, r)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i, r := range got {
			if r.Seq != i || r.Value.(int) != i*10 {
				t.Fatalf("workers=%d: result %d has Seq=%d Value=%v", workers, i, r.Seq, r.Value)
			}
		}
	}
}

// Parallel and serial runs of a real grid must be byte-for-byte identical.
func TestClassifyGridMatchesSerial(t *testing.T) {
	spec := GridSpec{MaxLen: 4, MaxD: 8, Method: core.MethodExact}
	serial := core.ClassifyAll(4, core.GridOptions{MaxD: 8, Method: core.MethodExact})
	for _, workers := range []int{1, 4} {
		cells, err := ClassifyGrid(context.Background(), spec, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(cells) != len(serial) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(cells), len(serial))
		}
		for i := range cells {
			if cells[i].Rep != serial[i].Rep || cells[i].D != serial[i].D ||
				cells[i].Isometric != serial[i].Isometric {
				t.Errorf("workers=%d cell %d: parallel %+v vs serial %+v",
					workers, i, cells[i], serial[i])
			}
		}
	}
}

// Cancellation mid-grid: the stream closes early and Run reports the
// context error with an ordered prefix of results.
func TestRunCancellationMidGrid(t *testing.T) {
	const n = 40
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	started := 0
	fn := func(ctx context.Context, s *core.Scratch, task Task) (any, error) {
		mu.Lock()
		started++
		if started == n/4 {
			cancel()
		}
		mu.Unlock()
		return task.Seq, nil
	}
	results, err := Run(ctx, fakeTasks(n), fn, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) >= n {
		t.Fatalf("expected a strict prefix, got all %d results", len(results))
	}
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("result %d has Seq=%d: prefix not ordered", i, r.Seq)
		}
	}
}

// A cancelled classification grid surfaces the context error.
func TestClassifyGridCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ClassifyGrid(ctx, GridSpec{MaxLen: 5, MaxD: 9}, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Progress reports are serialized, monotone and complete.
func TestProgressReporting(t *testing.T) {
	const n = 25
	var calls []int
	fn := func(ctx context.Context, s *core.Scratch, task Task) (any, error) { return nil, nil }
	_, err := Run(context.Background(), fakeTasks(n), fn, Options{
		Workers:  4,
		Progress: func(done, total int) { calls = append(calls, done*1000+total) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("%d progress calls, want %d", len(calls), n)
	}
	for i, c := range calls {
		if c != (i+1)*1000+n {
			t.Fatalf("call %d reported %d/%d, want %d/%d", i, c/1000, c%1000, i+1, n)
		}
	}
}

// Worker errors are attached to their result and surfaced by the grid
// wrappers.
func TestTaskErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("boom")
	fn := func(ctx context.Context, s *core.Scratch, task Task) (any, error) {
		if task.Seq == 3 {
			return nil, boom
		}
		return task.Seq, nil
	}
	results, err := Run(context.Background(), fakeTasks(8), fn, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if (r.Err != nil) != (i == 3) {
			t.Errorf("result %d: err = %v", i, r.Err)
		}
	}
}

func TestEmptyTaskList(t *testing.T) {
	results, err := Run(context.Background(), nil, func(ctx context.Context, s *core.Scratch, task Task) (any, error) {
		return nil, nil
	}, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("got %d results, err %v", len(results), err)
	}
}
