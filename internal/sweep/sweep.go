// Package sweep implements a parallel batch-execution engine for the
// (d, f)-grid workloads that dominate this repository: the Table 1
// classification census, counting sequences, exact isometry checks with
// witnesses, and f-dimension searches. Every downstream result of the paper
// (counting recurrences, the E11 conjecture check, the length-6 census) is
// a sweep over the same grid, so the engine is the shared substrate for the
// HTTP batch endpoints, the gfc-survey command and the CI benchmark
// fixture.
//
// The engine fans tasks across a bounded worker pool. Each worker owns one
// core.Scratch, so cube construction and BFS run allocation-free after
// warm-up. Tasks are handed out column-affine: a contiguous run of tasks
// on the same factor class goes to one worker as a unit, so the scratch's
// incremental column builder turns each ascending-d class column into a
// chain of O(|V|+|E|) extension steps instead of independent from-scratch
// builds (see core.ColumnBuilder). Results are re-sequenced before
// delivery: consumers always see them in task order regardless of which
// worker finished first, which makes parallel runs byte-for-byte
// comparable with serial ones. Cancellation is cooperative — pending
// tasks (including the unstarted remainder of an in-flight column) are
// abandoned when the context is done, and the stream closes after
// in-flight cells drain.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"time"

	"gfcube/internal/core"
)

// Task is one unit of grid work: a forbidden-factor class and, for
// cell-granular workloads, a dimension. Seq is assigned by the engine from
// the task's position in the input slice and defines the delivery order.
type Task struct {
	Seq   int
	Class core.Class
	D     int // -1 for class-granular tasks that scan a dimension range
}

// Result pairs a task with its workload-specific payload.
type Result struct {
	Task
	Value   any
	Err     error
	Elapsed time.Duration
}

// Func computes one task. The scratch is owned by the calling worker and
// reused across its tasks; implementations must not retain it.
type Func func(ctx context.Context, s *core.Scratch, t Task) (any, error)

// Options tunes an engine run. The zero value is usable.
type Options struct {
	// Workers bounds the pool size; zero or negative defaults to
	// runtime.GOMAXPROCS(0), so unset means "use the machine". One worker
	// reproduces the serial execution exactly; on a single-CPU runner
	// every setting degenerates to that, so parallel speedups need real
	// cores (see bench_test.go).
	Workers int
	// Buffer is the capacity of the delivery channel (default Workers).
	Buffer int
	// Progress, when non-nil, is called after every completed task with the
	// number of tasks finished so far and the total. Calls are serialized.
	Progress func(done, total int)
	// Provider, when non-nil, is installed on every worker's Scratch so
	// cube construction resolves through it (e.g. a store-backed
	// compute-or-load provider) instead of always building from scratch.
	Provider core.Provider
	// IsoDedup makes the grid workloads (ClassifyGrid, Survey, DegreeGrid,
	// WienerGrid) compute each cell once per verified iso-congruence group
	// and fan the result out to the member classes, instead of once per
	// canonical class. Output is byte-identical either way; see iso.go.
	IsoDedup bool
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Buffer < 1 {
		o.Buffer = o.Workers
	}
	return o
}

// Stream fans tasks across the worker pool and delivers results on the
// returned channel in task order (ascending input position), closing it
// when every task has been delivered or the context is cancelled. On
// cancellation the delivered results form a prefix of the task list;
// workers finish their in-flight task and stop.
func Stream(ctx context.Context, tasks []Task, fn Func, opts Options) <-chan Result {
	opts = opts.withDefaults()
	out := make(chan Result, opts.Buffer)
	go run(ctx, tasks, fn, opts, out)
	return out
}

// Run is Stream collected into a slice. When ctx is cancelled mid-grid it
// returns the ordered prefix of results computed so far together with the
// context error.
func Run(ctx context.Context, tasks []Task, fn Func, opts Options) ([]Result, error) {
	results := make([]Result, 0, len(tasks))
	for r := range Stream(ctx, tasks, fn, opts) {
		results = append(results, r)
	}
	if err := ctx.Err(); err != nil && len(results) < len(tasks) {
		return results, err
	}
	return results, nil
}

func run(ctx context.Context, tasks []Task, fn Func, opts Options, out chan<- Result) {
	defer close(out)
	if len(tasks) == 0 {
		return
	}
	workers := opts.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	feed := make(chan []Task)
	done := make(chan Result, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := core.NewScratch()
			s.Provider = opts.Provider
			for grp := range feed {
				for _, t := range grp {
					// Per-cell check so cancellation abandons the rest of a
					// column, not just the rest of the grid.
					if ctx.Err() != nil {
						break
					}
					start := time.Now()
					v, err := fn(ctx, s, t)
					done <- Result{Task: t, Value: v, Err: err, Elapsed: time.Since(start)}
				}
			}
		}()
	}
	// Seq is assigned on a copy so grouped subslices can be fed without
	// mutating the caller's tasks.
	seqd := make([]Task, len(tasks))
	for i, t := range tasks {
		t.Seq = i
		seqd[i] = t
	}
	go func() {
		defer close(feed)
		for lo := 0; lo < len(seqd); {
			// A group is a maximal contiguous run on one factor class — an
			// ascending-d column in grid order, which is what the scratch's
			// column builder extends incrementally. Tasks without a class
			// (engine tests, synthetic workloads) stay cell-granular.
			hi := lo + 1
			if rep := seqd[lo].Class.Rep; rep.Len() > 0 {
				for hi < len(seqd) && seqd[hi].Class.Rep == rep {
					hi++
				}
			}
			// The explicit Err check makes cancellation prompt: once cancel
			// returns, no further group is handed out, even if a worker is
			// already waiting on the feed channel.
			if ctx.Err() != nil {
				return
			}
			select {
			case feed <- seqd[lo:hi]:
			case <-ctx.Done():
				return
			}
			lo = hi
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	// Re-sequence: hold out-of-order completions until their predecessors
	// arrive, so delivery order equals task order. Once the context is
	// cancelled, keep draining workers but stop delivering.
	pending := make(map[int]Result, workers)
	next, finished := 0, 0
	cancelled := false
	for r := range done {
		finished++
		if opts.Progress != nil {
			opts.Progress(finished, len(tasks))
		}
		if cancelled {
			continue
		}
		pending[r.Seq] = r
		for !cancelled {
			nr, ok := pending[next]
			if !ok {
				break
			}
			if ctx.Err() != nil {
				cancelled = true
				break
			}
			delete(pending, next)
			select {
			case out <- nr:
				next++
			case <-ctx.Done():
				cancelled = true
			}
		}
	}
}

// CellTasks expands a grid spec into cell-granular tasks: canonical classes
// in (length, value) order, dimensions ascending within each class — the
// same order core.ClassifyAll emits.
func CellTasks(minLen, maxLen, minD, maxD int) []Task {
	if minD < 1 {
		minD = 1
	}
	var tasks []Task
	for _, cl := range core.Classes(minLen, maxLen) {
		for d := minD; d <= maxD; d++ {
			tasks = append(tasks, Task{Class: cl, D: d})
		}
	}
	return tasks
}

// ClassTasks expands a grid spec into class-granular tasks (one per
// canonical class, D = -1) for workloads that scan dimensions internally.
func ClassTasks(minLen, maxLen int) []Task {
	var tasks []Task
	for _, cl := range core.Classes(minLen, maxLen) {
		tasks = append(tasks, Task{Class: cl, D: -1})
	}
	return tasks
}
