package sweep

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"gfcube/internal/core"
	"gfcube/internal/graph"
)

// Spec validation errors surface before any work is scheduled.
func TestBadGridSpecs(t *testing.T) {
	ctx := context.Background()
	if _, err := ClassifyGrid(ctx, GridSpec{MinLen: 4, MaxLen: 2, MaxD: 8}, Options{}); err == nil {
		t.Error("MaxLen < MinLen accepted")
	}
	if _, err := ClassifyGrid(ctx, GridSpec{MaxLen: 3, MinD: 9, MaxD: 5}, Options{}); err == nil {
		t.Error("MaxD < MinD accepted")
	}
	if _, err := Survey(ctx, GridSpec{MinLen: 4, MaxLen: 2, MaxD: 8}, Options{}); err == nil {
		t.Error("survey with MaxLen < MinLen accepted")
	}
	if _, err := CountGrid(ctx, 3, 2, 10, Options{}); err == nil {
		t.Error("count grid with maxLen < minLen accepted")
	}
	if _, err := CountGrid(ctx, 1, 2, -1, Options{}); err == nil {
		t.Error("count grid with negative maxD accepted")
	}
	if _, err := FDimGrid(ctx, graph.Path(3), 3, 2, 8, Options{}); err == nil {
		t.Error("fdim grid with maxLen < minLen accepted")
	}
	if _, err := FDimGrid(ctx, graph.Path(3), 1, 2, 0, Options{}); err == nil {
		t.Error("fdim grid with maxD < 1 accepted")
	}
}

// Cancelled contexts propagate out of every grid wrapper.
func TestGridWrappersCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Survey(ctx, GridSpec{MaxLen: 4, MaxD: 8}, Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("survey: err = %v", err)
	}
	if _, err := CountGrid(ctx, 1, 4, 50, Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("count: err = %v", err)
	}
	if _, err := FDimGrid(ctx, graph.Path(4), 1, 3, 8, Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("fdim: err = %v", err)
	}
}

// MinD below 1 is normalized rather than rejected, matching core.
func TestCellTasksNormalizesMinD(t *testing.T) {
	a := CellTasks(1, 2, 0, 3)
	b := CellTasks(1, 2, 1, 3)
	if len(a) != len(b) {
		t.Fatalf("minD=0 produced %d tasks, minD=1 produced %d", len(a), len(b))
	}
	for i := range a {
		if a[i].D != b[i].D || a[i].Class != b[i].Class {
			t.Fatalf("task %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Unset (or negative) Workers must default to runtime.GOMAXPROCS(0) —
// "use the machine" — with Buffer following Workers; explicit settings
// win.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if want := runtime.GOMAXPROCS(0); o.Workers != want {
		t.Fatalf("default Workers = %d, want GOMAXPROCS = %d", o.Workers, want)
	}
	if o.Buffer != o.Workers {
		t.Fatalf("default Buffer = %d, want Workers = %d", o.Buffer, o.Workers)
	}
	if o := (Options{Workers: -3}).withDefaults(); o.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative Workers defaulted to %d, want GOMAXPROCS", o.Workers)
	}
	o = Options{Workers: 3, Buffer: 9}.withDefaults()
	if o.Workers != 3 || o.Buffer != 9 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}

// A quick-method grid agrees with exact on a slice containing both
// verdicts (exercises the screen-then-confirm path end to end).
func TestClassifyGridQuickMethod(t *testing.T) {
	spec := GridSpec{MinLen: 3, MaxLen: 3, MaxD: 7, Method: core.MethodQuick}
	quick, err := ClassifyGrid(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec.Method = core.MethodExact
	exact, err := ClassifyGrid(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if quick[i].Isometric != exact[i].Isometric {
			t.Errorf("f=%s d=%d: quick %v vs exact %v",
				exact[i].Rep, exact[i].D, quick[i].Isometric, exact[i].Isometric)
		}
	}
}
