package sweep

import (
	"context"
	"reflect"
	"testing"

	"gfcube/internal/core"
)

// Iso-dedup is an optimization with a hard contract: output byte-identical
// to the non-deduped oracle. Every test here runs the same spec through
// both paths and diffs with reflect.DeepEqual, which follows the Witness
// pointers and big.Int payloads.

func TestClassifyGridIsoMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec GridSpec
	}{
		{"exact-len4-d7", GridSpec{MaxLen: 4, MaxD: 7, Method: core.MethodExact}},
		{"exact-len5-d7", GridSpec{MaxLen: 5, MaxD: 7, Method: core.MethodExact}},
		{"screen-len5-d9", GridSpec{MaxLen: 5, MaxD: 9, Method: core.MethodScreen}},
		{"quick-len3-5-d3-8", GridSpec{MinLen: 3, MaxLen: 5, MinD: 3, MaxD: 8, Method: core.MethodQuick}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && tc.spec.MaxD > 7 {
				t.Skip("large grid")
			}
			want, err := ClassifyGrid(context.Background(), tc.spec, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				got, err := ClassifyGrid(context.Background(), tc.spec, Options{Workers: workers, IsoDedup: true})
				if err != nil {
					t.Fatal(err)
				}
				diffCells(t, got, want)
			}
		})
	}
}

func diffCells(t *testing.T, got, want []core.Cell) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cell %d (%s d=%d): iso-dedup %+v, oracle %+v",
				i, want[i].Rep, want[i].D, got[i], want[i])
		}
	}
}

func TestSurveyIsoMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec GridSpec
	}{
		{"len5-d9", GridSpec{MaxLen: 5, MaxD: 9, Method: core.MethodExact}},
		{"len2-4-d4-8", GridSpec{MinLen: 2, MaxLen: 4, MinD: 4, MaxD: 8, Method: core.MethodScreen}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && tc.spec.MaxD > 8 {
				t.Skip("large survey")
			}
			want, err := Survey(context.Background(), tc.spec, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Survey(context.Background(), tc.spec, Options{Workers: 4, IsoDedup: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iso-dedup survey diverges:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestDegreeGridIsoMatchesOracle(t *testing.T) {
	spec := GridSpec{MaxLen: 5, MaxD: 8}
	want, err := DegreeGrid(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DegreeGrid(context.Background(), spec, Options{Workers: 4, IsoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("iso-dedup degree grid diverges from oracle")
	}
	// Fanned Dist slices must not alias their leader's.
	for i := range got {
		for j := range got {
			if i != j && len(got[i].Dist) > 0 && len(got[j].Dist) > 0 &&
				&got[i].Dist[0] == &got[j].Dist[0] {
				t.Fatalf("cells %d and %d share a Dist backing array", i, j)
			}
		}
	}
}

func TestWienerGridIsoMatchesOracle(t *testing.T) {
	spec := GridSpec{MaxLen: 4, MaxD: 7}
	want, err := WienerGrid(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := WienerGrid(context.Background(), spec, Options{Workers: 4, IsoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Class != w.Class || g.D != w.D || g.Order != w.Order ||
			g.Connected != w.Connected || g.Match != w.Match || g.MeanDist != w.MeanDist ||
			g.Wiener.Cmp(w.Wiener) != 0 || g.WienerHamming.Cmp(w.WienerHamming) != 0 {
			t.Errorf("cell %d (%s d=%d): iso-dedup %+v, oracle %+v", i, w.Class.Rep, w.D, g, w)
		}
	}
	for i := range got {
		for j := range got {
			if i != j && (got[i].Wiener == got[j].Wiener || got[i].WienerHamming == got[j].WienerHamming) {
				t.Fatalf("cells %d and %d share a big.Int", i, j)
			}
		}
	}
}

// TestIsoDedupComputeReduction pins the acceptance bar of the iso-dedup
// mode: on the |f| <= 5, d <= 7 classification grid it must decide at
// least 2x fewer cells than the complement/reversal symmetry alone. The
// cell counts are asserted exactly so the census cannot silently shrink:
// 154 grid cells fold into 68 congruence-group leaders, and 4 member
// cells come back in phase 2 for their own negative witnesses — 72
// decided cells, a 2.14x reduction.
func TestIsoDedupComputeReduction(t *testing.T) {
	spec := GridSpec{MaxLen: 5, MaxD: 7, Method: core.MethodExact}
	d0, f0 := IsoCounters()
	cells, err := ClassifyGrid(context.Background(), spec, Options{Workers: 4, IsoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	d1, f1 := IsoCounters()
	total := len(cells)
	dedup, fanout := int(d1-d0), int(f1-f0)
	computed := total - fanout
	if total != 154 || dedup != 86 || fanout != 82 || computed != 72 {
		t.Errorf("total=%d dedup=%d fanout=%d computed=%d, want 154/86/82/72",
			total, dedup, fanout, computed)
	}
	if 2*computed > total {
		t.Errorf("iso-dedup decided %d of %d cells; want at least a 2x reduction", computed, total)
	}
}

func TestIsoClassGrid(t *testing.T) {
	rows, err := IsoClassGrid(context.Background(), GridSpec{MaxLen: 5, MaxD: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows: %d, want 7", len(rows))
	}
	// Group counts of the verified |f| <= 5 census, d = 1..7.
	wantGroups := []int{2, 3, 5, 8, 11, 17, 22}
	for i, row := range rows {
		if row.D != i+1 || row.Classes != 22 {
			t.Fatalf("row %d: D=%d Classes=%d, want D=%d Classes=22", i, row.D, row.Classes, i+1)
		}
		if row.Groups != wantGroups[i] {
			t.Errorf("d=%d: %d groups, want %d", row.D, row.Groups, wantGroups[i])
		}
		if len(row.Members) != row.Groups {
			t.Errorf("d=%d: %d member lists for %d groups", row.D, len(row.Members), row.Groups)
		}
		seen := 0
		for _, g := range row.Members {
			seen += len(g)
		}
		if seen != row.Classes {
			t.Errorf("d=%d: member lists cover %d classes, want %d", row.D, seen, row.Classes)
		}
	}
}
