package sweep

import (
	"context"
	"testing"

	"gfcube/internal/core"
)

// TestClassifyGridColumnAffinity checks that the engine's column-affine
// scheduling actually feeds each class column to one scratch: a cell grid
// must cost exactly one from-scratch build per class (the column head)
// and serve every later dimension incrementally, at any worker count.
func TestClassifyGridColumnAffinity(t *testing.T) {
	const maxLen, maxD = 3, 8
	classes := len(core.Classes(1, maxLen))
	for _, workers := range []int{1, 4} {
		r0, b0 := core.ColumnCounters()
		if _, err := ClassifyGrid(context.Background(),
			GridSpec{MaxLen: maxLen, MaxD: maxD, Method: core.MethodExact},
			Options{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		r1, b1 := core.ColumnCounters()
		if got, want := b1-b0, uint64(classes); got != want {
			t.Errorf("workers=%d: %d rebuilds, want one per class (%d)", workers, got, want)
		}
		if got, want := r1-r0, uint64(classes*(maxD-1)); got != want {
			t.Errorf("workers=%d: %d column reuses, want %d", workers, got, want)
		}
	}
}
