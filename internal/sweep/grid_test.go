package sweep

import (
	"context"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/isometry"
)

// Symmetry-dedup correctness: expanding the deduplicated grid over every
// member of each class must agree with classifying each word of the naive
// full grid individually (Lemmas 2.2/2.3 in action). Exact checks for
// lengths <= 5; the cheaper screen for the length-6 layer.
func TestClassifyGridAgreesWithNaiveFullGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive grid comparison")
	}
	check := func(minLen, maxLen, maxD int, method core.Method) {
		t.Helper()
		spec := GridSpec{MinLen: minLen, MaxLen: maxLen, MaxD: maxD, Method: method}
		cells, err := ClassifyGrid(context.Background(), spec, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Index the deduplicated verdicts by (canonical rep, d).
		type key struct {
			rep bitstr.Word
			d   int
		}
		verdict := make(map[key]bool, len(cells))
		for _, c := range cells {
			verdict[key{c.Rep, c.D}] = c.Isometric
		}
		// Naive full grid: every word individually, no symmetry.
		naive := 0
		for n := minLen; n <= maxLen; n++ {
			bitstr.ForEach(n, func(f bitstr.Word) bool {
				rep := bitstr.CanonicalRepresentative(f)
				for d := 1; d <= maxD; d++ {
					var iso bool
					c := core.New(d, f)
					if method == core.MethodScreen {
						_, found := c.HasCriticalPair(3)
						iso = !found
					} else {
						iso = c.IsIsometricSerial().Isometric
					}
					naive++
					got, ok := verdict[key{rep, d}]
					if !ok {
						t.Fatalf("no deduplicated cell for f=%s (rep %s) d=%d", f, rep, d)
					}
					if got != iso {
						t.Errorf("f=%s d=%d: naive %v, deduplicated grid %v", f, d, iso, got)
					}
				}
				return true
			})
		}
		// The dedup must save work: one column per class, not per word.
		if len(cells)*2 > naive {
			t.Errorf("dedup did %d cells for %d naive cells: expected < 1/2", len(cells), naive)
		}
	}
	check(1, 5, 8, core.MethodExact)
	check(6, 6, 9, core.MethodScreen)
}

// The parallel survey reproduces the E13 length-6 census (survey_test.go in
// core, and the paper's Table 1 extension).
func TestSurveyLength6Census(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive survey")
	}
	rows, err := Survey(context.Background(),
		GridSpec{MinLen: 6, MaxLen: 6, MaxD: 11, Method: core.MethodExact},
		Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("length-6 classes: %d, want 20", len(rows))
	}
	good := 0
	hist := map[int]int{}
	for _, r := range rows {
		if r.FirstFail == 0 {
			good++
		} else {
			hist[r.FirstFail]++
		}
	}
	if good != 6 {
		t.Errorf("good classes: %d, want 6", good)
	}
	for d, n := range map[int]int{7: 6, 8: 4, 9: 3, 10: 1} {
		if hist[d] != n {
			t.Errorf("first failures at d=%d: %d, want %d", d, hist[d], n)
		}
	}
}

// Counting rows agree with the serial DP and the Fibonacci identities.
func TestCountGrid(t *testing.T) {
	rows, err := CountGrid(context.Background(), 1, 3, 20, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.Classes(1, 3)) {
		t.Fatalf("rows: %d, want %d", len(rows), len(core.Classes(1, 3)))
	}
	for _, r := range rows {
		want := core.CountSeq(20, r.Class.Rep)
		if len(r.Seq) != len(want) {
			t.Fatalf("f=%s: %d entries, want %d", r.Class.Rep, len(r.Seq), len(want))
		}
		for d := range want {
			if r.Seq[d].V.Cmp(want[d].V) != 0 || r.Seq[d].E.Cmp(want[d].E) != 0 || r.Seq[d].S.Cmp(want[d].S) != 0 {
				t.Errorf("f=%s d=%d: sweep counts differ from serial DP", r.Class.Rep, d)
			}
		}
	}
}

// Wiener cells agree with direct per-cube computation, and the
// exact-vs-Hamming verdict lines up with the isometry check.
func TestWienerGrid(t *testing.T) {
	ctx := context.Background()
	spec := GridSpec{MinLen: 2, MaxLen: 3, MinD: 1, MaxD: 7}
	cells, err := WienerGrid(ctx, spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := len(core.Classes(2, 3)) * 7
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	s := core.NewScratch()
	for _, cell := range cells {
		c := s.Cube(context.Background(), cell.D, cell.Class.Rep)
		exact, connected := c.WienerExactWorkers(1)
		if cell.Connected != connected || cell.Wiener.Cmp(exact) != 0 {
			t.Errorf("f=%s d=%d: cell %s/%v, direct %s/%v",
				cell.Class.Rep, cell.D, cell.Wiener, cell.Connected, exact, connected)
		}
		if cell.WienerHamming.Cmp(core.WienerHamming(cell.D, cell.Class.Rep)) != 0 {
			t.Errorf("f=%s d=%d: Hamming sum mismatch", cell.Class.Rep, cell.D)
		}
		if cell.Match != (cell.Connected && cell.Wiener.Cmp(cell.WienerHamming) == 0) {
			t.Errorf("f=%s d=%d: Match inconsistent", cell.Class.Rep, cell.D)
		}
		// The verdict must line up with exact isometry: isometric cells
		// always match; mismatching connected cells are non-isometric.
		iso := s.IsIsometric(c).Isometric
		if iso && !cell.Match {
			t.Errorf("f=%s d=%d: isometric cell does not match", cell.Class.Rep, cell.D)
		}
		if cell.Order != int64(c.N()) {
			t.Errorf("f=%s d=%d: order %d", cell.Class.Rep, cell.D, cell.Order)
		}
	}
	// The {010, 101} class flips to mismatch exactly at d = 4 (Prop. 3.2).
	for _, cell := range cells {
		if cell.Class.Rep.String() == "010" {
			if cell.Match != (cell.D <= 3) {
				t.Errorf("f=010 d=%d: match=%v", cell.D, cell.Match)
			}
		}
	}
	if _, err := WienerGrid(ctx, GridSpec{MinLen: 2, MaxLen: 1, MinD: 1, MaxD: 3}, Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// f-dimension rows agree with the serial search on small guests.
func TestFDimGrid(t *testing.T) {
	g := graph.Path(4)
	rows, err := FDimGrid(context.Background(), g, 2, 3, 6, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want := isometry.FDim(g, r.Class.Rep, 6)
		if r.Found != want.Found || r.Dim != want.Dim {
			t.Errorf("f=%s: sweep (%d,%v) vs serial (%d,%v)",
				r.Class.Rep, r.Dim, r.Found, want.Dim, want.Found)
		}
	}
}

// Survey honors MinD: starting the scan above a class's first failure
// reports the first failure at or after MinD, not the global one.
func TestSurveyHonorsMinD(t *testing.T) {
	// 101 first fails at d = 4 (Proposition 3.2) and keeps failing.
	spec := GridSpec{MinLen: 3, MaxLen: 3, MinD: 6, MaxD: 8, Method: core.MethodExact}
	rows, err := Survey(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Class.Rep == bitstr.MustParse("010") { // canonical rep of 101's class
			if r.FirstFail != 6 {
				t.Errorf("scan from MinD=6: first fail %d, want 6", r.FirstFail)
			}
		}
	}
}
