package sweep

import (
	"context"
	"testing"

	"gfcube/internal/core"
)

// TestDegreeGridMatchesExplicit cross-checks the graph-free degree cells
// against the explicit cube's degree machinery on the full length <= 3
// grid.
func TestDegreeGridMatchesExplicit(t *testing.T) {
	spec := GridSpec{MaxLen: 3, MinD: 1, MaxD: 8}
	cells, err := DegreeGrid(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(core.Classes(1, 3)) * 8; len(cells) != want {
		t.Fatalf("cells: %d, want %d", len(cells), want)
	}
	s := core.NewScratch()
	for _, cell := range cells {
		c := s.Cube(context.Background(), cell.D, cell.Class.Rep)
		if cell.Order != c.Order() {
			t.Fatalf("f=%s d=%d: order %d, explicit %d", cell.Class.Rep, cell.D, cell.Order, c.Order())
		}
		wantMin, wantMax := c.DegreeStats()
		if cell.MinDeg != wantMin || cell.MaxDeg != wantMax {
			t.Fatalf("f=%s d=%d: degrees [%d,%d], explicit [%d,%d]",
				cell.Class.Rep, cell.D, cell.MinDeg, cell.MaxDeg, wantMin, wantMax)
		}
		dist := c.DegreeDistribution()
		for k := range dist {
			if int64(dist[k]) != cell.Dist[k] {
				t.Fatalf("f=%s d=%d: degree %d count %d, explicit %d",
					cell.Class.Rep, cell.D, k, cell.Dist[k], dist[k])
			}
		}
	}
}

func TestDegreeGridBadSpec(t *testing.T) {
	if _, err := DegreeGrid(context.Background(), GridSpec{MaxLen: 0}, Options{}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestDegreeGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DegreeGrid(ctx, GridSpec{MaxLen: 4, MinD: 1, MaxD: 10}, Options{}); err == nil {
		t.Error("cancelled grid returned no error")
	}
}
