package sweep

import (
	"context"
	"testing"

	"gfcube/internal/core"
)

// verifyE02 checks a grid result against the paper's Table 1; the sweep
// benchmark must never get faster by getting wrong.
func verifyE02(b *testing.B, cells []core.Cell) {
	b.Helper()
	if len(cells) != len(core.Table1)*9 {
		b.Fatalf("cells: %d, want %d", len(cells), len(core.Table1)*9)
	}
	for _, cell := range cells {
		row, ok := core.Table1Lookup(cell.Rep)
		if !ok {
			b.Fatalf("no Table 1 row for %s", cell.Rep)
		}
		if (row.VerdictFor(cell.D) == core.Isometric) != cell.Isometric {
			b.Fatalf("Table 1 mismatch at %s d=%d", cell.Rep, cell.D)
		}
	}
}

// BenchmarkSweepClassify is the CI regression fixture for the sweep engine:
// the E02 workload (exact classification of every factor class of length
// <= 5 for d = 1..9) on the serial reference path and through the engine at
// 1 and 8 workers. The serial-vs-parallel8 ratio is the engine's speedup;
// on a W-core box it should approach min(W, 8) x.
//
// Single-CPU runners (GOMAXPROCS=1 containers — the PR 2 dev box, small CI
// executors): expect NO parallel speedup there. serial, parallel1 and
// parallel8 should all land within noise of each other, with parallel
// variants paying only the small fan-out/re-sequencing overhead. The
// benchmark-regression gate compares each variant against its own
// baseline, so a single-CPU baseline stays meaningful; just don't read
// the parallel8/serial ratio as the engine's speedup unless the box has
// cores to spare.
func BenchmarkSweepClassify(b *testing.B) {
	spec := GridSpec{MaxLen: 5, MaxD: 9, Method: core.MethodExact}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			verifyE02(b, core.ClassifyAll(5, core.GridOptions{MaxD: 9, Method: core.MethodExact}))
		}
	})
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "parallel1", 8: "parallel8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cells, err := ClassifyGrid(context.Background(), spec, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				verifyE02(b, cells)
			}
		})
	}
}

// BenchmarkSweepClassifyIsoDedup measures the congruence-deduplicated
// classification sweep against the symmetry-only baseline on the largest
// grid where the iso partition still halves the work: |f| <= 5, d <= 7
// (154 cells, 68 group leaders, 4 witness recomputes — 72 decided cells,
// a 2.14x reduction; at d <= 9 the d >= 8 dimensions are all singleton
// groups and the ratio decays to 1.77x). Both variants verify against the
// oracle so the dedup path can never win by diverging; cells/op reports
// how many cells each variant actually decided.
func BenchmarkSweepClassifyIsoDedup(b *testing.B) {
	spec := GridSpec{MaxLen: 5, MaxD: 7, Method: core.MethodExact}
	oracle, err := ClassifyGrid(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"baseline", Options{Workers: 1}},
		{"isodedup", Options{Workers: 1, IsoDedup: true}},
		{"isodedup8", Options{Workers: 8, IsoDedup: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var decided int
			for i := 0; i < b.N; i++ {
				_, f0 := IsoCounters()
				cells, err := ClassifyGrid(context.Background(), spec, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(cells) != len(oracle) {
					b.Fatalf("cells: %d, want %d", len(cells), len(oracle))
				}
				for j := range cells {
					if cells[j].Class != oracle[j].Class || cells[j].D != oracle[j].D ||
						cells[j].Isometric != oracle[j].Isometric {
						b.Fatalf("cell %d diverges from oracle", j)
					}
				}
				_, f1 := IsoCounters()
				decided = len(cells) - int(f1-f0) // fanned cells were not decided
			}
			b.ReportMetric(float64(decided), "cells/op")
		})
	}
}

// BenchmarkSweepSurvey measures the class-granular survey (the gfc-survey
// workload) at length 6 with the critical-pair screen.
func BenchmarkSweepSurvey(b *testing.B) {
	spec := GridSpec{MinLen: 6, MaxLen: 6, MaxD: 10, Method: core.MethodScreen}
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "serial", 8: "parallel8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := Survey(context.Background(), spec, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 20 {
					b.Fatalf("rows: %d", len(rows))
				}
			}
		})
	}
}
