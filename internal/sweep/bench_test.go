package sweep

import (
	"context"
	"testing"

	"gfcube/internal/core"
)

// verifyE02 checks a grid result against the paper's Table 1; the sweep
// benchmark must never get faster by getting wrong.
func verifyE02(b *testing.B, cells []core.Cell) {
	b.Helper()
	if len(cells) != len(core.Table1)*9 {
		b.Fatalf("cells: %d, want %d", len(cells), len(core.Table1)*9)
	}
	for _, cell := range cells {
		row, ok := core.Table1Lookup(cell.Rep)
		if !ok {
			b.Fatalf("no Table 1 row for %s", cell.Rep)
		}
		if (row.VerdictFor(cell.D) == core.Isometric) != cell.Isometric {
			b.Fatalf("Table 1 mismatch at %s d=%d", cell.Rep, cell.D)
		}
	}
}

// BenchmarkSweepClassify is the CI regression fixture for the sweep engine:
// the E02 workload (exact classification of every factor class of length
// <= 5 for d = 1..9) on the serial reference path and through the engine at
// 1 and 8 workers. The serial-vs-parallel8 ratio is the engine's speedup;
// on a W-core box it should approach min(W, 8) x.
//
// Single-CPU runners (GOMAXPROCS=1 containers — the PR 2 dev box, small CI
// executors): expect NO parallel speedup there. serial, parallel1 and
// parallel8 should all land within noise of each other, with parallel
// variants paying only the small fan-out/re-sequencing overhead. The
// benchmark-regression gate compares each variant against its own
// baseline, so a single-CPU baseline stays meaningful; just don't read
// the parallel8/serial ratio as the engine's speedup unless the box has
// cores to spare.
func BenchmarkSweepClassify(b *testing.B) {
	spec := GridSpec{MaxLen: 5, MaxD: 9, Method: core.MethodExact}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			verifyE02(b, core.ClassifyAll(5, core.GridOptions{MaxD: 9, Method: core.MethodExact}))
		}
	})
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "parallel1", 8: "parallel8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cells, err := ClassifyGrid(context.Background(), spec, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				verifyE02(b, cells)
			}
		})
	}
}

// BenchmarkSweepSurvey measures the class-granular survey (the gfc-survey
// workload) at length 6 with the critical-pair screen.
func BenchmarkSweepSurvey(b *testing.B) {
	spec := GridSpec{MinLen: 6, MaxLen: 6, MaxD: 10, Method: core.MethodScreen}
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "serial", 8: "parallel8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := Survey(context.Background(), spec, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 20 {
					b.Fatalf("rows: %d", len(rows))
				}
			}
		})
	}
}
