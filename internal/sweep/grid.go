package sweep

import (
	"context"
	"fmt"
	"math/big"

	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/isometry"
)

// GridSpec bounds a classification grid: factor lengths MinLen..MaxLen,
// dimensions MinD..MaxD, and the per-cell decision method.
type GridSpec struct {
	MinLen, MaxLen int
	MinD, MaxD     int
	Method         core.Method
}

func (sp GridSpec) normalized() (GridSpec, error) {
	if sp.MinLen < 1 {
		sp.MinLen = 1
	}
	if sp.MinD < 1 {
		sp.MinD = 1
	}
	if sp.MaxLen < sp.MinLen {
		return sp, fmt.Errorf("sweep: MaxLen %d < MinLen %d", sp.MaxLen, sp.MinLen)
	}
	if sp.MaxD < sp.MinD {
		return sp, fmt.Errorf("sweep: MaxD %d < MinD %d", sp.MaxD, sp.MinD)
	}
	return sp, nil
}

// collect runs the tasks and unwraps the ordered results into their
// workload-specific payload type, failing on the first task error.
func collect[T any](ctx context.Context, tasks []Task, fn Func, opts Options) ([]T, error) {
	results, err := Run(ctx, tasks, fn, opts)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out = append(out, r.Value.(T))
	}
	return out, nil
}

// classifyFn is the per-cell task body of ClassifyGrid, shared with the
// iso-dedup path so representative cells and recomputed member cells run
// the exact same code as the oracle.
func classifyFn(spec GridSpec) Func {
	return func(ctx context.Context, s *core.Scratch, t Task) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return core.ClassifyCell(ctx, s, t.Class, t.D, spec.Method), nil
	}
}

// ClassifyGrid evaluates the full (class, d) grid in parallel and returns
// the cells in the same deterministic order as the serial
// core.ClassifyAll: classes in (length, value) order, d ascending. This is
// the E02 workload (Table 1) generalized to arbitrary bounds. With
// opts.IsoDedup the grid is computed once per congruence group and fanned
// out (see classifyGridIso); the output is identical either way.
func ClassifyGrid(ctx context.Context, spec GridSpec, opts Options) ([]core.Cell, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	if opts.IsoDedup {
		return classifyGridIso(ctx, spec, opts)
	}
	tasks := CellTasks(spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD)
	return collect[core.Cell](ctx, tasks, classifyFn(spec), opts)
}

// SurveyRow is the per-class summary of a first-failure survey: the
// smallest dimension at which Q_d(f) stops being isometric in Q_d, or 0
// when no failure was found up to MaxD ("good"), plus the paper's verdict.
type SurveyRow struct {
	Class     core.Class
	FirstFail int
	// Theory is the reason of the paper's classification at MaxD, or "-"
	// when the paper's results do not decide the class.
	Theory string
}

// surveyFn is the per-class task body of Survey: scan for the first
// failing dimension, then attach the paper's verdict.
func surveyFn(spec GridSpec) Func {
	return func(ctx context.Context, s *core.Scratch, t Task) (any, error) {
		row := SurveyRow{Class: t.Class, Theory: surveyTheory(t.Class, spec.MaxD)}
		start := t.Class.Rep.Len() + 1
		if spec.MinD > start {
			start = spec.MinD
		}
		for d := start; d <= spec.MaxD; d++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if cell := core.ClassifyCell(ctx, s, t.Class, d, spec.Method); !cell.Isometric {
				row.FirstFail = d
				break
			}
		}
		return row, nil
	}
}

// surveyTheory is the Theory column of one survey row: the paper's
// classification reason, or "-" when the paper does not decide the class.
// It depends on the class label, so the iso-dedup path evaluates it per
// member instead of copying it from the group leader.
func surveyTheory(cl core.Class, maxD int) string {
	if c := core.Classify(cl.Rep, maxD); c.Verdict != core.Unknown {
		return c.Reason
	}
	return "-"
}

// Survey runs the gfc-survey workload: for every canonical class of length
// MinLen..MaxLen, scan d = max(MinD, |f|+1) .. MaxD until the first
// non-isometric dimension (d <= |f| is always isometric by Lemma 2.1, so
// the scan skips it). One task per class; within a task the scan stops at
// the first failure, exactly like the serial survey, so no
// symmetry-redundant or post-failure work is done. With opts.IsoDedup one
// scan per band-congruence group replaces the per-class scans (see
// surveyIso).
func Survey(ctx context.Context, spec GridSpec, opts Options) ([]SurveyRow, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	if opts.IsoDedup {
		return surveyIso(ctx, spec, opts)
	}
	tasks := ClassTasks(spec.MinLen, spec.MaxLen)
	return collect[SurveyRow](ctx, tasks, surveyFn(spec), opts)
}

// CountRow is the counting sequence of one factor class: exact vertex,
// edge and square counts of Q_d(f) for d = 0..MaxD via the transfer-matrix
// DP (no cube construction, so MaxD may be large).
type CountRow struct {
	Class core.Class
	Seq   []core.BigCounts // index d
}

// CountGrid computes counting sequences for every canonical class of
// length MinLen..MaxLen, one task per class.
func CountGrid(ctx context.Context, minLen, maxLen, maxD int, opts Options) ([]CountRow, error) {
	if maxLen < minLen || maxD < 0 {
		return nil, fmt.Errorf("sweep: bad count grid [%d,%d] x d<=%d", minLen, maxLen, maxD)
	}
	tasks := ClassTasks(minLen, maxLen)
	return collect[CountRow](ctx, tasks, func(ctx context.Context, s *core.Scratch, t Task) (any, error) {
		seq, err := s.CountSeq(ctx, maxD, t.Class.Rep)
		if err != nil {
			return nil, err
		}
		return CountRow{Class: t.Class, Seq: seq}, nil
	}, opts)
}

// DegreeCell is the order and degree profile of one (class, d) grid cell.
type DegreeCell struct {
	Class core.Class
	D     int
	Order int64
	// MinDeg and MaxDeg are the extreme vertex degrees (0 when the cube
	// has a single isolated vertex).
	MinDeg, MaxDeg int
	// Dist[k] is the number of vertices of degree k, k = 0..d — the
	// observability profile of the follow-up literature.
	Dist []int64
}

// DegreeGrid computes order and degree statistics for every (class, d)
// cell on the implicit DFA-rank backend: cells that only need counts and
// degrees never build a graph — no edge arena, no CSR — so per-cell
// memory stays O(|f|·d) plus the d+1 counters, where the explicit path
// materializes every edge. The spec's Method is ignored (there is no
// verdict to decide). Enumeration still visits every vertex, so MaxD
// stays in enumerable range.
func DegreeGrid(ctx context.Context, spec GridSpec, opts Options) ([]DegreeCell, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	if opts.IsoDedup {
		return degreeGridIso(ctx, spec, opts)
	}
	tasks := CellTasks(spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD)
	return collect[DegreeCell](ctx, tasks, degreeFn(), opts)
}

// degreeFn is the per-cell task body of DegreeGrid.
func degreeFn() Func {
	return func(ctx context.Context, _ *core.Scratch, t Task) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		im := core.NewImplicit(t.D, t.Class.Rep)
		cell := DegreeCell{Class: t.Class, D: t.D, Order: im.Order(), Dist: im.DegreeDistribution()}
		cell.MinDeg, cell.MaxDeg = -1, 0
		for k, n := range cell.Dist {
			if n == 0 {
				continue
			}
			if cell.MinDeg < 0 {
				cell.MinDeg = k
			}
			cell.MaxDeg = k
		}
		if cell.MinDeg < 0 {
			cell.MinDeg = 0
		}
		return cell, nil
	}
}

// WienerCell pairs, for one (class, d) grid cell, the exact BFS Wiener
// index of Q_d(f) with the closed-form Hamming-distance sum.
type WienerCell struct {
	Class core.Class
	D     int
	Order int64
	// Connected reports whether Q_d(f) is connected; Wiener covers only
	// reachable pairs when it is not.
	Connected bool
	// Wiener is the exact Wiener index (sum of shortest-path distances
	// over unordered pairs) from the MS-BFS sweep.
	Wiener *big.Int
	// WienerHamming is the sum of pairwise Hamming distances from the
	// transfer-matrix DP. It equals Wiener exactly when graph distances
	// coincide with Hamming distances (in particular on isometric cubes)
	// and is strictly smaller on connected non-isometric ones.
	WienerHamming *big.Int
	// Match is Connected && Wiener == WienerHamming — the per-cell
	// cross-check the grid exists for.
	Match bool
	// MeanDist is the mean shortest-path distance over unordered pairs
	// (0 for cells with fewer than two vertices, -1 when disconnected).
	MeanDist float64
}

// WienerGrid computes exact and Hamming Wiener indices for every
// (class, d) cell. Cells build the explicit cube (so MaxD is bounded by
// the build cap) and run the distance sweep on the worker's scratch
// MS-BFS engine, serially per cell — the grid itself is already fanned
// across the pool. The spec's Method is ignored; the Wiener comparison is
// its own verdict.
func WienerGrid(ctx context.Context, spec GridSpec, opts Options) ([]WienerCell, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	if opts.IsoDedup {
		return wienerGridIso(ctx, spec, opts)
	}
	tasks := CellTasks(spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD)
	return collect[WienerCell](ctx, tasks, wienerFn(), opts)
}

// wienerFn is the per-cell task body of WienerGrid.
func wienerFn() Func {
	return func(ctx context.Context, s *core.Scratch, t Task) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := s.Cube(ctx, t.D, t.Class.Rep)
		cell := WienerCell{Class: t.Class, D: t.D, Order: c.Order()}
		cell.Wiener, cell.Connected = s.WienerExact(c)
		cell.WienerHamming = core.WienerHamming(t.D, t.Class.Rep)
		cell.Match = cell.Connected && cell.Wiener.Cmp(cell.WienerHamming) == 0
		switch {
		case !cell.Connected:
			cell.MeanDist = -1
		case c.N() >= 2:
			pairs := float64(c.N()) * float64(c.N()-1) / 2
			w, _ := new(big.Float).SetInt(cell.Wiener).Float64()
			cell.MeanDist = w / pairs
		}
		return cell, nil
	}
}

// FDimRow is the f-dimension of a guest graph under one factor class.
type FDimRow struct {
	Class core.Class
	Dim   int
	Found bool
}

// FDimGrid computes dim_f(g) for every canonical class of length
// MinLen..MaxLen, searching host dimensions up to maxD. One task per
// class.
func FDimGrid(ctx context.Context, g *graph.Graph, minLen, maxLen, maxD int, opts Options) ([]FDimRow, error) {
	if maxLen < minLen || maxD < 1 {
		return nil, fmt.Errorf("sweep: bad fdim grid [%d,%d] x d<=%d", minLen, maxLen, maxD)
	}
	tasks := ClassTasks(minLen, maxLen)
	return collect[FDimRow](ctx, tasks, func(ctx context.Context, s *core.Scratch, t Task) (any, error) {
		res, err := isometry.FDimCtx(ctx, g, t.Class.Rep, maxD)
		if err != nil {
			return nil, err
		}
		return FDimRow{Class: t.Class, Dim: res.Dim, Found: res.Found}, nil
	}, opts)
}
