package sweep

import (
	"context"
	"math/big"
	"sync/atomic"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/iso"
)

// Iso-dedup execution. The complement/reversal symmetry already folds the
// factor universe ~4x (core.Classes); the iso package's verified
// Hamming-congruence partition folds the surviving grid further, because
// distinct canonical classes can still induce congruent cubes at a given
// dimension (e.g. Q_5(0001) and Q_5(0011)). The paths below compute each
// grid cell once per congruence group and fan the payload out to the
// member classes. Everything fanned is congruence-invariant — verdicts,
// orders, degree profiles, connectivity, both Wiener sums, first-failure
// dimensions — so the output is byte-identical to the non-deduped oracle.
// The two payload components that are NOT invariant are recomputed per
// member: violating-pair witnesses (concrete vertex labels) and the
// survey's Theory column (the paper's per-class citation).

// isoDedupTotal counts member cells whose computation was elided because a
// congruence-group leader covers them; isoFanoutTotal counts the result
// copies actually delivered for such cells. The difference is the number
// of member cells that were recomputed after all to restore a
// label-dependent witness. Exported to /metrics as
// gfc_sweep_iso_dedup_total and gfc_sweep_iso_fanout_total.
var (
	isoDedupTotal  atomic.Uint64
	isoFanoutTotal atomic.Uint64
)

// IsoCounters reports the process-wide iso-dedup tallies: cells whose
// computation was planned away (dedup) and result copies delivered by
// fan-out (fanout). dedup - fanout cells were recomputed for witnesses.
func IsoCounters() (dedup, fanout uint64) {
	return isoDedupTotal.Load(), isoFanoutTotal.Load()
}

// isoPlan maps every cell of a (class, d) grid to the cell that computes
// it. Cells are indexed i = classIndex*nD + dIndex — the CellTasks /
// ClassifyGrid output order — and rep[i] is the index of the congruence
// leader's cell at the same dimension (rep[i] == i for leaders). Leaders
// are grid-first within their group, so rep[i] <= i always.
type isoPlan struct {
	classes []core.Class
	nD      int
	minD    int
	rep     []int
}

func planIso(spec GridSpec) *isoPlan {
	classes := core.Classes(spec.MinLen, spec.MaxLen)
	nD := spec.MaxD - spec.MinD + 1
	p := &isoPlan{classes: classes, nD: nD, minD: spec.MinD, rep: make([]int, len(classes)*nD)}
	idx := make(map[bitstr.Word]int, len(classes))
	for ci, cl := range classes {
		idx[cl.Rep] = ci
	}
	for di := 0; di < nD; di++ {
		part := iso.At(spec.MinD+di, classes)
		for ci := range classes {
			li := idx[part.Leader(classes[ci].Rep)]
			p.rep[ci*nD+di] = li*nD + di
		}
	}
	return p
}

// repTasks lists the leader cells in grid order. Contiguous same-class
// runs survive the filtering, so the engine's column-affine grouping still
// applies.
func (p *isoPlan) repTasks() []Task {
	var tasks []Task
	for i, r := range p.rep {
		if r == i {
			tasks = append(tasks, Task{Class: p.classes[i/p.nD], D: p.minD + i%p.nD})
		}
	}
	return tasks
}

// classifyGridIso is ClassifyGrid deduplicated by congruence groups in two
// phases. Phase 1 computes the leader cells. Members of positive
// (isometric) leaders are fanned as-is — a positive cell is fully
// determined by (class, d, verdict). Members of negative leaders inherit
// the verdict but not the witness, whose vertex labels are specific to the
// leader's cube; phase 2 recomputes those member cells so each reports its
// own deterministic violating pair, exactly as the oracle would.
func classifyGridIso(ctx context.Context, spec GridSpec, opts Options) ([]core.Cell, error) {
	plan := planIso(spec)
	fn := classifyFn(spec)
	repCells, err := collect[core.Cell](ctx, plan.repTasks(), fn, opts)
	if err != nil {
		return nil, err
	}
	cells := make([]core.Cell, len(plan.rep))
	k := 0
	for i, r := range plan.rep {
		if r == i {
			cells[i] = repCells[k]
			k++
		}
	}
	var redo []Task
	var redoIdx []int
	var dedup, fanout uint64
	for i, r := range plan.rep {
		if r == i {
			continue
		}
		dedup++
		cl, d := plan.classes[i/plan.nD], plan.minD+i%plan.nD
		if cells[r].Isometric {
			cells[i] = core.Cell{Class: cl, D: d, Isometric: true}
			fanout++
			continue
		}
		redo = append(redo, Task{Class: cl, D: d})
		redoIdx = append(redoIdx, i)
	}
	if len(redo) > 0 {
		redoCells, err := collect[core.Cell](ctx, redo, fn, opts)
		if err != nil {
			return nil, err
		}
		for j, i := range redoIdx {
			cells[i] = redoCells[j]
		}
	}
	isoDedupTotal.Add(dedup)
	isoFanoutTotal.Add(fanout)
	return cells, nil
}

// degreeGridIso is DegreeGrid deduplicated by congruence groups. Order and
// the degree histogram are congruence invariants (a congruence is a graph
// isomorphism), so every member cell is a relabeled copy of its leader's;
// the Dist slice is cloned so cells do not alias.
func degreeGridIso(ctx context.Context, spec GridSpec, opts Options) ([]DegreeCell, error) {
	plan := planIso(spec)
	repCells, err := collect[DegreeCell](ctx, plan.repTasks(), degreeFn(), opts)
	if err != nil {
		return nil, err
	}
	cells := make([]DegreeCell, len(plan.rep))
	k := 0
	for i, r := range plan.rep {
		if r == i {
			cells[i] = repCells[k]
			k++
		}
	}
	var dedup uint64
	for i, r := range plan.rep {
		if r == i {
			continue
		}
		dedup++
		cell := cells[r]
		cell.Class = plan.classes[i/plan.nD]
		cell.Dist = append([]int64(nil), cells[r].Dist...)
		cells[i] = cell
	}
	isoDedupTotal.Add(dedup)
	isoFanoutTotal.Add(dedup)
	return cells, nil
}

// wienerGridIso is WienerGrid deduplicated by congruence groups. The exact
// Wiener index transfers because a congruence preserves graph distances;
// the Hamming sum transfers because it preserves Hamming distances — both
// directions of the same certificate. The big.Int payloads are cloned so
// cells do not alias.
func wienerGridIso(ctx context.Context, spec GridSpec, opts Options) ([]WienerCell, error) {
	plan := planIso(spec)
	repCells, err := collect[WienerCell](ctx, plan.repTasks(), wienerFn(), opts)
	if err != nil {
		return nil, err
	}
	cells := make([]WienerCell, len(plan.rep))
	k := 0
	for i, r := range plan.rep {
		if r == i {
			cells[i] = repCells[k]
			k++
		}
	}
	var dedup uint64
	for i, r := range plan.rep {
		if r == i {
			continue
		}
		dedup++
		cell := cells[r]
		cell.Class = plan.classes[i/plan.nD]
		cell.Wiener = new(big.Int).Set(cells[r].Wiener)
		cell.WienerHamming = new(big.Int).Set(cells[r].WienerHamming)
		cells[i] = cell
	}
	isoDedupTotal.Add(dedup)
	isoFanoutTotal.Add(dedup)
	return cells, nil
}

// surveyIso is Survey deduplicated by the band congruence partition: one
// first-failure scan per group over [MinD, MaxD]. Band congruence holds at
// every dimension of the band, so the leader's verdict at each scanned d
// transfers to every member; dimensions below a member's own scan start
// are isometric unconditionally (Lemma 2.1). FirstFail therefore transfers
// exactly. The Theory column cites the paper per class label, so it is
// evaluated per member rather than copied.
func surveyIso(ctx context.Context, spec GridSpec, opts Options) ([]SurveyRow, error) {
	classes := core.Classes(spec.MinLen, spec.MaxLen)
	part := iso.Band(spec.MinD, spec.MaxD, classes)
	var tasks []Task
	leadIdx := make(map[bitstr.Word]int)
	for _, cl := range classes {
		if part.Leader(cl.Rep) == cl.Rep {
			leadIdx[cl.Rep] = len(tasks)
			tasks = append(tasks, Task{Class: cl, D: -1})
		}
	}
	repRows, err := collect[SurveyRow](ctx, tasks, surveyFn(spec), opts)
	if err != nil {
		return nil, err
	}
	rows := make([]SurveyRow, len(classes))
	var dedup uint64
	for i, cl := range classes {
		lead := part.Leader(cl.Rep)
		rep := repRows[leadIdx[lead]]
		if lead == cl.Rep {
			rows[i] = rep
			continue
		}
		dedup++
		rows[i] = SurveyRow{
			Class:     cl,
			FirstFail: rep.FirstFail,
			Theory:    surveyTheory(cl, spec.MaxD),
		}
	}
	isoDedupTotal.Add(dedup)
	isoFanoutTotal.Add(dedup)
	return rows, nil
}

// IsoClassRow is the congruence partition of one dimension of a grid:
// every canonical class grouped with the classes whose Q_d(f) it is
// congruent to. Members list representative strings, group leader first,
// groups in grid order. This is the payload of /v1/sweep/isoclasses.
type IsoClassRow struct {
	D       int        `json:"d"`
	Classes int        `json:"classes"`
	Groups  int        `json:"groups"`
	Members [][]string `json:"members"`
}

// IsoClassGrid reports the per-dimension congruence partitions of the
// spec's grid without computing any cells — the planning view of the
// iso-dedup sweeps above. The spec's Method is ignored.
func IsoClassGrid(ctx context.Context, spec GridSpec) ([]IsoClassRow, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	classes := core.Classes(spec.MinLen, spec.MaxLen)
	rows := make([]IsoClassRow, 0, spec.MaxD-spec.MinD+1)
	for d := spec.MinD; d <= spec.MaxD; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := iso.At(d, classes)
		row := IsoClassRow{D: d, Classes: len(classes), Groups: p.NumGroups()}
		for _, g := range p.Groups {
			members := make([]string, len(g.Members))
			for i, m := range g.Members {
				members[i] = m.Rep.String()
			}
			row.Members = append(row.Members, members)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
