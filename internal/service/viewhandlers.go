package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gfcube/internal/bitstr"
)

// Addressing endpoints: DFA-rank queries served by the implicit backend
// (core.Implicit) for any dimension up to bitstr.MaxLen = 62, regardless
// of MaxBuildDim — no cube is ever constructed, only the O(|f|·d) ranker
// tables, which the cube LRU caches per (f, d). Ranks are decimal strings
// in the JSON: they reach 2^62, beyond the exact-integer range of JSON
// consumers that read numbers as float64.

func formatRank(r int64) string { return strconv.FormatInt(r, 10) }

// handleRank serves the index of a vertex word in the increasing
// enumeration of V(Q_d(f)) — the generalized Zeckendorf address.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 1, bitstr.MaxLen)
	if err != nil {
		return err
	}
	word, err := parseWordParam(r, "w", d)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("rank|%s|%d|%s", f.s, d, word)
	lane := key[:strings.LastIndexByte(key, '|')]
	v, cached, err := s.batched(r, "rank", lane, key, rankReq{word: word, key: key},
		s.rankExec(f, d),
		func(ctx context.Context) (any, error) {
			view, src, err := s.implicitView(ctx, f, d)
			if err != nil {
				return nil, err
			}
			resp, err := rankOne(view, f, d, word)
			if err != nil {
				return nil, err
			}
			resp.Source = string(src)
			return resp, nil
		})
	if err != nil {
		return err
	}
	if p, ok := v.(prerendered); ok {
		writePrerendered(w, p, elapsedSince(start))
		return nil
	}
	resp := v.(RankResponse)
	resp.Cached = cached
	if cached {
		resp.Source = cacheSource(resp.Source)
	}
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleUnrank serves the vertex word with a given rank.
func (s *Server) handleUnrank(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 1, bitstr.MaxLen)
	if err != nil {
		return err
	}
	rank, err := parseRankParam(r, "r")
	if err != nil {
		return err
	}
	key := fmt.Sprintf("unrank|%s|%d|%d", f.s, d, rank)
	lane := key[:strings.LastIndexByte(key, '|')]
	v, cached, err := s.batched(r, "unrank", lane, key, unrankReq{rank: rank, key: key},
		s.unrankExec(f, d),
		func(ctx context.Context) (any, error) {
			view, src, err := s.implicitView(ctx, f, d)
			if err != nil {
				return nil, err
			}
			resp, err := unrankOne(view, f, d, rank)
			if err != nil {
				return nil, err
			}
			resp.Source = string(src)
			return resp, nil
		})
	if err != nil {
		return err
	}
	if p, ok := v.(prerendered); ok {
		writePrerendered(w, p, elapsedSince(start))
		return nil
	}
	resp := v.(UnrankResponse)
	resp.Cached = cached
	if cached {
		resp.Source = cacheSource(resp.Source)
	}
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleNeighbors serves the adjacency list of one vertex: every f-free
// single-bit flip with its rank, in flip-position order.
func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 1, bitstr.MaxLen)
	if err != nil {
		return err
	}
	word, err := parseWordParam(r, "w", d)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("neighbors|%s|%d|%s", f.s, d, word)
	lane := key[:strings.LastIndexByte(key, '|')]
	v, cached, err := s.batched(r, "neighbors", lane, key, neighborsReq{word: word, key: key},
		s.neighborsExec(f, d),
		func(ctx context.Context) (any, error) {
			view, src, err := s.implicitView(ctx, f, d)
			if err != nil {
				return nil, err
			}
			resp, err := neighborsOne(view, f, d, word)
			if err != nil {
				return nil, err
			}
			resp.Source = string(src)
			return resp, nil
		})
	if err != nil {
		return err
	}
	resp := v.(NeighborsResponse)
	resp.Cached = cached
	if cached {
		resp.Source = cacheSource(resp.Source)
	}
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}
