package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/store"
)

// Admin surface for the artifact store: GET /v1/admin/store snapshots the
// inventory and counters, POST /v1/admin/warm preloads backends so the
// first real request after a restart never pays a build.

// handleAdminStore serves the artifact-store snapshot.
func (s *Server) handleAdminStore(w http.ResponseWriter, r *http.Request) error {
	if s.store == nil {
		return notFound("artifact store disabled (start with -store-dir or -warm-pack)")
	}
	writeJSON(w, http.StatusOK, StoreStatsResponse{
		Stats:    s.store.Stats(),
		Computed: s.provider.Computed(),
		WarmPack: s.pack,
	})
	return nil
}

// handleAdminWarm resolves a list of (f, d) backends through the store
// provider: every artifact touched becomes resident in the store's
// mapping cache, so later requests load it without re-reading or
// re-verifying. Warming bypasses the bounded view LRU on purpose — a
// whole pack would thrash it — and runs under one worker-pool slot with
// the standard job deadline, so it cannot starve live traffic.
func (s *Server) handleAdminWarm(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	if s.store == nil {
		return notFound("artifact store disabled (start with -store-dir or -warm-pack)")
	}
	var req WarmRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		return badRequest("invalid warm request body: %v", err)
	}
	if !req.Pack && len(req.Factors) == 0 {
		return badRequest("warm request must set pack:true or list factors")
	}

	type target struct {
		f bitstr.Word
		d int
	}
	var targets []target
	if req.Pack {
		if s.pack == nil {
			return notFound("no warm pack mounted (start with -warm-pack)")
		}
		for n := s.pack.MinLen; n <= s.pack.MaxLen; n++ {
			for bits := uint64(0); bits < 1<<uint(n); bits++ {
				for d := 1; d <= s.pack.MaxD; d++ {
					targets = append(targets, target{f: bitstr.Word{Bits: bits, N: n}, d: d})
				}
			}
		}
	}
	if len(req.Factors) > 0 {
		minD, maxD := req.MinD, req.MaxD
		if minD < 1 {
			minD = 1
		}
		if maxD <= 0 {
			maxD = 12
		}
		if maxD > bitstr.MaxLen {
			maxD = bitstr.MaxLen
		}
		if maxD < minD {
			return badRequest("maxD=%d below minD=%d", maxD, minD)
		}
		for _, raw := range req.Factors {
			if len(raw) > s.cfg.MaxFactorLen {
				return badRequest("factor longer than %d bits", s.cfg.MaxFactorLen)
			}
			fw, err := bitstr.Parse(raw)
			if err != nil {
				return badRequest("invalid factor %q: %v", raw, err)
			}
			if fw.Len() == 0 {
				return badRequest("factor must be nonempty")
			}
			for d := minD; d <= maxD; d++ {
				targets = append(targets, target{f: fw, d: d})
			}
		}
	}

	// One pool slot for the whole warm run, same detached deadline as any
	// other job: a warm cannot outlive 2x the job timeout and queues
	// behind live work like everything else.
	ctx := context.WithoutCancel(r.Context())
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 2*s.cfg.JobTimeout)
		defer cancel()
	}
	v, err := s.pool.Run(ctx, func(ctx context.Context) (any, error) {
		var resp WarmResponse
		tally := func(src core.Source) {
			resp.Warmed++
			if src == core.SourceStore {
				resp.Store++
			} else {
				resp.Computed++
			}
		}
		for _, t := range targets {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("warm aborted after %d/%d backends: %w", resp.Warmed, len(targets), err)
			}
			_, src, err := s.provider.Implicit(ctx, t.d, t.f)
			if err != nil {
				return nil, err
			}
			tally(src)
			if req.Cubes && t.d <= s.cfg.MaxBuildDim {
				_, src, err := s.provider.Cube(ctx, t.d, t.f)
				if err != nil {
					return nil, err
				}
				tally(src)
			}
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(WarmResponse)
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// warmVerdicts preloads the warm pack's precomputed verdict sidecar into
// the result cache at startup: counts, classifications and exact
// isometry verdicts for every canonical class cell of the pack grid.
// Entries are keyed exactly like the live handlers' cache keys, so a
// request for a canonical representative is served from the pack without
// touching a backend; responses carry Source "store" (preserved across
// cache hits by cacheSource). Requests for non-canonical class members
// resolve through the store's artifacts instead.
func (s *Server) warmVerdicts(verdicts []store.Verdict) {
	for _, v := range verdicts {
		fw, err := bitstr.Parse(v.Factor)
		if err != nil {
			continue // a sidecar row the reader cannot key; skip, never guess
		}
		count := CountResponse{
			Factor: v.Factor, D: v.D,
			V: v.V, E: v.E, S: v.S,
			Backend: "dp",
			Source:  string(core.SourceStore),
		}
		s.cache.Put(fmt.Sprintf("count|%s|%d", v.Factor, v.D), count)
		classify := ClassifyResponse{
			Factor: v.Factor, D: v.D,
			Verdict: v.Verdict, Reason: v.Reason,
		}
		if row, ok := core.Table1Lookup(fw); ok {
			classify.Table1 = &Table1Info{
				Representative: row.Factor,
				UpTo:           row.UpTo,
				Citation:       row.Citation,
			}
		}
		s.cache.Put(fmt.Sprintf("classify|%s|%d", v.Factor, v.D), classify)
		iso := IsometricResponse{
			Factor: v.Factor, D: v.D, Isometric: v.Isometric,
			U: v.WitnessU, V: v.WitnessV,
			CubeDist: v.CubeDist, HammingDist: v.HammingDist,
		}
		s.cache.Put(fmt.Sprintf("iso|%s|%d", v.Factor, v.D), iso)
	}
}
