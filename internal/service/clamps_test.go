package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
)

// Constructor clamps: degenerate sizes are raised to 1 instead of
// panicking or deadlocking.
func TestCacheAndPoolClamps(t *testing.T) {
	c := NewCache(0, 0)
	c.Put("k", 1)
	if v, ok := c.Get("k"); !ok || v.(int) != 1 {
		t.Fatalf("clamped cache lost its entry")
	}
	p := NewPool(0, 0)
	if p.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", p.Workers())
	}
	if p.AvgLatency() != 0 {
		t.Fatalf("avg latency before any job: %v", p.AvgLatency())
	}
	if _, err := p.Run(context.Background(), func(ctx context.Context) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// writeError maps sentinel errors onto their HTTP statuses.
func TestWriteErrorStatuses(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{ErrPoolSaturated, 503},
		{context.DeadlineExceeded, 504},
		{context.Canceled, 499},
		{errors.New("anything else"), 500},
		{badRequest("nope"), 400},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if rec.Code != tc.code {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.Code, tc.code)
		}
	}
}
