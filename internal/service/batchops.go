package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/network"
)

// Batch executors for the coalesced endpoints. Each exec serves a whole
// lane dispatch — one (operation, f, d) class — under a single worker
// pool slot and a single backend resolution: the implicit DFA-rank view
// (or the counting DP) is fetched once, then every rider is answered in
// a tight loop. This is exactly the amortization the backends were built
// for: after one O(|f|·d) table resolution a rank probe is a handful of
// table walks, so the marginal cost of the 2nd..Nth concurrent request
// in a class is nanoseconds instead of a full trip through the
// singleflight/pool machinery.
//
// The per-item helpers (rankOne, countOne, ...) are shared with the solo
// compute path used when batching is disabled, so both paths return
// byte-identical responses.

// prerendered is a response pre-encoded by a batch exec: head holds the
// JSON through the "backend" field, and the handler appends the
// per-request cached/elapsed tail. Rendering inside the exec loop
// replaces the reflection-based encoder with straight byte appends for
// the hot addressed ops — a large slice of per-request CPU — while the
// typed response still lands in the result cache, so cache hits replay
// through the generic encoder. The byte format mirrors
// json.Encoder.SetIndent("", "  ") exactly (asserted by the
// batched-vs-solo equivalence test); all rendered fields are validated
// [01]+ words, decimal ranks, or fixed backend names, so no JSON
// escaping is ever needed.
type prerendered struct {
	head []byte
	resp any
}

// renderRankHead encodes a RankResponse through its "source" field.
func renderRankHead(r *RankResponse) []byte {
	b := make([]byte, 0, 160+len(r.Factor)+len(r.Word)+len(r.Rank)+len(r.Order))
	b = append(b, "{\n  \"factor\": \""...)
	b = append(b, r.Factor...)
	b = append(b, "\",\n  \"d\": "...)
	b = strconv.AppendInt(b, int64(r.D), 10)
	b = append(b, ",\n  \"word\": \""...)
	b = append(b, r.Word...)
	b = append(b, "\",\n  \"rank\": \""...)
	b = append(b, r.Rank...)
	b = append(b, "\",\n  \"order\": \""...)
	b = append(b, r.Order...)
	b = append(b, "\",\n  \"backend\": \""...)
	b = append(b, r.Backend...)
	b = append(b, "\",\n  \"source\": \""...)
	b = append(b, r.Source...)
	b = append(b, "\","...)
	return b
}

// renderUnrankHead encodes an UnrankResponse through its "source" field.
func renderUnrankHead(r *UnrankResponse) []byte {
	b := make([]byte, 0, 160+len(r.Factor)+len(r.Word)+len(r.Rank)+len(r.Order))
	b = append(b, "{\n  \"factor\": \""...)
	b = append(b, r.Factor...)
	b = append(b, "\",\n  \"d\": "...)
	b = strconv.AppendInt(b, int64(r.D), 10)
	b = append(b, ",\n  \"rank\": \""...)
	b = append(b, r.Rank...)
	b = append(b, "\",\n  \"word\": \""...)
	b = append(b, r.Word...)
	b = append(b, "\",\n  \"order\": \""...)
	b = append(b, r.Order...)
	b = append(b, "\",\n  \"backend\": \""...)
	b = append(b, r.Backend...)
	b = append(b, "\",\n  \"source\": \""...)
	b = append(b, r.Source...)
	b = append(b, "\","...)
	return b
}

// writePrerendered completes a pre-encoded response with the per-request
// cached/elapsed tail, byte-identical to the generic writeJSON output.
func writePrerendered(w http.ResponseWriter, p prerendered, elapsed string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	buf := append(p.head, "\n  \"cached\": false,\n  \"elapsed\": \""...)
	buf = append(buf, elapsed...)
	buf = append(buf, "\"\n}\n"...)
	_, _ = w.Write(buf)
}

// Per-operation payloads riding in batches.
type rankReq struct {
	word bitstr.Word
	key  string
}

type unrankReq struct {
	rank int64
	key  string
}

type neighborsReq struct {
	word bitstr.Word
	key  string
}

type countReq struct {
	key string
}

type routeReq struct {
	src, dst bitstr.Word
	key      string
}

// batched serves one request through the micro-batching front: result
// cache fast path, then lane submission. With batching disabled it falls
// back to the solo cache/singleflight/pool path. It annotates the
// request's metrics sample with the cache/batch facts.
func (s *Server) batched(r *http.Request, op, laneKey, cacheKey string, req any, exec BatchExec, solo func(ctx context.Context) (any, error)) (any, bool, error) {
	sample := sampleFrom(r.Context())
	if s.batcher == nil {
		v, cached, err := s.compute(r.Context(), cacheKey, solo)
		if sample != nil {
			sample.CacheHit = cached
		}
		return v, cached, err
	}
	if v, ok := s.cache.Get(cacheKey); ok {
		if sample != nil {
			sample.CacheHit = true
		}
		return v, true, nil
	}
	v, fl, err := s.batcher.Submit(r.Context(), op, laneKey, req, exec)
	if sample != nil {
		sample.BatchSize = fl.BatchSize
		sample.QueueWait = fl.QueueWait
	}
	return v, false, err
}

// runBatch acquires one worker-pool slot for the whole batch, bounded by
// the same detached deadline as the solo compute path. A batch-level
// failure (saturated pool, backend resolution error) resolves every
// still-unresolved item with that error; per-item failures are the exec
// body's business.
func (s *Server) runBatch(items []*BatchItem, fn func(ctx context.Context) error) {
	ctx := context.Background()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 2*s.cfg.JobTimeout)
		defer cancel()
	}
	_, err := s.pool.Run(ctx, func(ctx context.Context) (any, error) {
		return nil, fn(ctx)
	})
	if err != nil {
		for _, it := range items {
			it.Resolve(nil, err)
		}
	}
}

// rankOne answers one /v1/rank query on a resolved view.
func rankOne(view *core.Implicit, f factorParam, d int, w bitstr.Word) (RankResponse, error) {
	rank, ok := view.RankWord(w)
	if !ok {
		return RankResponse{}, badRequest("w=%s is not a vertex of Q_%d(%s): it contains the factor", w, d, f.s)
	}
	return RankResponse{
		Factor: f.s, D: d, Word: w.String(),
		Rank: formatRank(rank), Order: formatRank(view.Order()),
		Backend: "implicit",
	}, nil
}

func (s *Server) rankExec(f factorParam, d int) BatchExec {
	return func(items []*BatchItem) {
		s.runBatch(items, func(ctx context.Context) error {
			view, src, err := s.implicitView(ctx, f, d)
			if err != nil {
				return err
			}
			for _, it := range items {
				if err := it.Ctx.Err(); err != nil {
					it.Resolve(nil, err)
					continue
				}
				rq := it.Req.(rankReq)
				resp, err := rankOne(view, f, d, rq.word)
				if err != nil {
					it.Resolve(nil, err)
					continue
				}
				resp.Source = string(src)
				s.cache.Put(rq.key, resp)
				it.Resolve(prerendered{head: renderRankHead(&resp), resp: resp}, nil)
			}
			return nil
		})
	}
}

// unrankOne answers one /v1/unrank query on a resolved view.
func unrankOne(view *core.Implicit, f factorParam, d int, rank int64) (UnrankResponse, error) {
	w, ok := view.UnrankWord(rank)
	if !ok {
		return UnrankResponse{}, badRequest("r=%d out of range [0, %d)", rank, view.Order())
	}
	return UnrankResponse{
		Factor: f.s, D: d, Rank: formatRank(rank),
		Word: w.String(), Order: formatRank(view.Order()),
		Backend: "implicit",
	}, nil
}

func (s *Server) unrankExec(f factorParam, d int) BatchExec {
	return func(items []*BatchItem) {
		s.runBatch(items, func(ctx context.Context) error {
			view, src, err := s.implicitView(ctx, f, d)
			if err != nil {
				return err
			}
			for _, it := range items {
				if err := it.Ctx.Err(); err != nil {
					it.Resolve(nil, err)
					continue
				}
				rq := it.Req.(unrankReq)
				resp, err := unrankOne(view, f, d, rq.rank)
				if err != nil {
					it.Resolve(nil, err)
					continue
				}
				resp.Source = string(src)
				s.cache.Put(rq.key, resp)
				it.Resolve(prerendered{head: renderUnrankHead(&resp), resp: resp}, nil)
			}
			return nil
		})
	}
}

// neighborsOne answers one /v1/neighbors query on a resolved view.
func neighborsOne(view *core.Implicit, f factorParam, d int, w bitstr.Word) (NeighborsResponse, error) {
	if !view.Contains(w) {
		return NeighborsResponse{}, badRequest("w=%s is not a vertex of Q_%d(%s): it contains the factor", w, d, f.s)
	}
	resp := NeighborsResponse{
		Factor: f.s, D: d, Word: w.String(),
		Order: formatRank(view.Order()), Backend: "implicit",
	}
	view.NeighborsOf(w, func(rank int64, u bitstr.Word) bool {
		resp.Neighbors = append(resp.Neighbors, Neighbor{Rank: formatRank(rank), Word: u.String()})
		return true
	})
	resp.Degree = len(resp.Neighbors)
	return resp, nil
}

func (s *Server) neighborsExec(f factorParam, d int) BatchExec {
	return func(items []*BatchItem) {
		s.runBatch(items, func(ctx context.Context) error {
			view, src, err := s.implicitView(ctx, f, d)
			if err != nil {
				return err
			}
			for _, it := range items {
				if err := it.Ctx.Err(); err != nil {
					it.Resolve(nil, err)
					continue
				}
				rq := it.Req.(neighborsReq)
				resp, err := neighborsOne(view, f, d, rq.word)
				if err != nil {
					it.Resolve(nil, err)
					continue
				}
				resp.Source = string(src)
				s.cache.Put(rq.key, resp)
				it.Resolve(resp, nil)
			}
			return nil
		})
	}
}

// countOne answers one /v1/count query. It computes on the canonical
// class representative — |V|, |E|, |S| are invariant under the
// complement/reversal symmetry (the maps are cube isomorphisms), so the
// whole class shares one DP run and one cache entry. The caller-facing
// Factor field is overwritten per request by the handler.
func (s *Server) countOne(ctx context.Context, f factorParam, d int) (CountResponse, error) {
	cf := f.canonical()
	bc, err := core.CountCtx(ctx, d, cf.w)
	if err != nil {
		return CountResponse{}, err
	}
	resp := CountResponse{
		Factor: cf.s, D: d,
		V: bc.V.String(), E: bc.E.String(), S: bc.S.String(),
		Backend: "dp",
		// The DP always runs fresh — the count itself is never loaded from
		// disk, only warm-pack sidecar entries carry Source "store".
		Source: string(core.SourceComputed),
	}
	if d <= bitstr.MaxLen {
		view, _, err := s.implicitView(ctx, cf, d)
		if err != nil {
			return CountResponse{}, err
		}
		if got := strconv.FormatInt(view.Order(), 10); got != resp.V {
			return CountResponse{}, fmt.Errorf("count mismatch for Q_%d(%s): implicit |V| = %s, DP |V| = %s", d, cf.s, got, resp.V)
		}
		resp.Backend = "implicit+dp"
	}
	return resp, nil
}

// countExec fuses a whole lane of count requests — by construction all
// for the same (canonical class, d) — into one DP run.
func (s *Server) countExec(f factorParam, d int, cacheKey string) BatchExec {
	return func(items []*BatchItem) {
		s.runBatch(items, func(ctx context.Context) error {
			resp, err := s.countOne(ctx, f, d)
			if err != nil {
				return err
			}
			s.cache.Put(cacheKey, resp)
			for _, it := range items {
				it.Resolve(resp, nil)
			}
			return nil
		})
	}
}

// wordRouteOne answers one word-router /v1/route query on a resolved
// router.
func wordRouteOne(rt *network.ViewRouter, f factorParam, d int, src, dst bitstr.Word) RouteResponse {
	resp := RouteResponse{
		Factor: f.s, D: d,
		Src: src.String(), Dst: dst.String(), Router: "word",
		Backend: "implicit",
	}
	hops, ok := rt.RouteWords(src, dst, 0)
	resp.Delivered = ok
	if ok {
		resp.Hops = len(hops) - 1
		if h := src.HammingDistance(dst); h > 0 {
			resp.Stretch = float64(resp.Hops) / float64(h)
		}
		for _, hp := range hops {
			resp.Path = append(resp.Path, hp.Word.String())
			resp.Ranks = append(resp.Ranks, formatRank(hp.Rank))
		}
	}
	return resp
}

func (s *Server) routeExec(f factorParam, d int) BatchExec {
	return func(items []*BatchItem) {
		s.runBatch(items, func(ctx context.Context) error {
			view, _, err := s.implicitView(ctx, f, d)
			if err != nil {
				return err
			}
			rt := network.NewViewRouter(view)
			for _, it := range items {
				if err := it.Ctx.Err(); err != nil {
					it.Resolve(nil, err)
					continue
				}
				rq := it.Req.(routeReq)
				resp := wordRouteOne(rt, f, d, rq.src, rq.dst)
				s.cache.Put(rq.key, resp)
				it.Resolve(resp, nil)
			}
			return nil
		})
	}
}
