package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gfcube/internal/fabric"
)

func fabricTestSpec(t *testing.T) fabric.Spec {
	t.Helper()
	sp, err := fabric.Spec{Op: fabric.OpClassify, MinLen: 1, MaxLen: 2, MinD: 1, MaxD: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func postLease(t *testing.T, url string, req fabric.LeaseRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/fabric/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestFabricLeaseLifecycleOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	sp := fabricTestSpec(t)
	cells := sp.Cells()

	resp, body := postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "L1", TTLMs: 60_000, Spec: sp, Cells: cells})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease grant: status %d: %s", resp.StatusCode, body)
	}
	var lr fabric.LeaseResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Renewed || lr.Total != len(cells) {
		t.Fatalf("grant response: %+v", lr)
	}

	// Idempotent re-POST renews.
	resp, body = postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "L1", TTLMs: 60_000, Spec: sp, Cells: cells})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease renew: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if !lr.Renewed {
		t.Fatal("re-POST of live lease was not a renewal")
	}

	// Same ID for a different shard: 409 conflict in the v1 envelope.
	resp, body = postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "L1", TTLMs: 60_000, Spec: sp, Cells: cells[:1]})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting lease: status %d: %s", resp.StatusCode, body)
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeConflict {
		t.Fatalf("conflicting lease: code %q, want %q", envelope.Error.Code, CodeConflict)
	}

	// Drain reports until the lease completes.
	drained := 0
	from := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		var rr fabric.ReportResponse
		code := getJSON(t, ts.URL+"/v1/fabric/report?lease=L1&from="+strconv.Itoa(from)+"&max=4", &rr)
		if code != http.StatusOK {
			t.Fatalf("report: status %d", code)
		}
		drained += len(rr.Cells)
		from = rr.Next
		if rr.Done && len(rr.Cells) == 0 {
			if rr.Err != "" {
				t.Fatalf("lease failed: %s", rr.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if drained != len(cells) {
		t.Fatalf("drained %d cells, want %d", drained, len(cells))
	}

	// Unknown lease: 404 not_found.
	if code := getJSON(t, ts.URL+"/v1/fabric/report?lease=ghost", nil); code != http.StatusNotFound {
		t.Fatalf("unknown lease report: status %d, want 404", code)
	}

	// Cancel via DELETE.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fabric/lease?lease=L1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}

	// The /stats fabric section and /metrics worker counters reflect it.
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Fabric == nil {
		t.Fatal("stats has no fabric section despite worker mode enabled")
	}
	if stats.Fabric.Leases != 1 || stats.Fabric.Renewals != 1 || stats.Fabric.Cancels != 1 {
		t.Fatalf("fabric stats: %+v", stats.Fabric)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := mbuf.String()
	for _, want := range []string{
		"gfc_fabric_worker_leases_total 1",
		"gfc_fabric_worker_renewals_total 1",
		"gfc_fabric_worker_cancels_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestFabricDisabled(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, JobTimeout: time.Minute, FabricDisabled: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	sp := fabricTestSpec(t)
	resp, body := postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "L1", TTLMs: 60_000, Spec: sp, Cells: sp.Cells()})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("lease on disabled fabric: status %d: %s", resp.StatusCode, body)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Fabric != nil {
		t.Fatal("stats reports a fabric section with worker mode disabled")
	}
}

// TestFabricCoordinatorAgainstServe is the tentpole integration check at
// package level: a coordinator drives two gfc-serve instances purely over
// HTTP and the chained ledger's result set is byte-identical to the
// single-process oracle.
func TestFabricCoordinatorAgainstServe(t *testing.T) {
	sp := fabricTestSpec(t)
	var urls []string
	for i := 0; i < 2; i++ {
		s := mustNew(t, Config{Workers: 2, JobTimeout: time.Minute})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	path := t.TempDir() + "/run.gfcl"
	l, err := fabric.CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	co, err := fabric.NewCoordinator(sp, l, fabric.Options{
		Workers: []fabric.Worker{
			fabric.NewRemoteWorker("w0", urls[0], nil, 3, time.Millisecond),
			fabric.NewRemoteWorker("w1", urls[1], nil, 3, time.Millisecond),
		},
		Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := fabric.ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fabric.Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("coordinator-over-HTTP result set differs from oracle")
	}
	scan, err := fabric.VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Damaged || scan.Duplicates != 0 {
		t.Fatalf("ledger after remote run: damaged=%v dups=%d", scan.Damaged, scan.Duplicates)
	}
}

func TestFabricHandlerErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	sp := fabricTestSpec(t)

	expectEnvelope := func(t *testing.T, resp *http.Response, body []byte, status int, code string) {
		t.Helper()
		if resp.StatusCode != status {
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, status, body)
		}
		var envelope ErrorResponse
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Fatalf("non-envelope error body %q: %v", body, err)
		}
		if envelope.Error.Code != code {
			t.Fatalf("envelope code %q, want %q", envelope.Error.Code, code)
		}
	}
	do := func(t *testing.T, method, url string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Lease body that is not JSON.
	resp, err := http.Post(ts.URL+"/v1/fabric/lease", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	expectEnvelope(t, resp, buf.Bytes(), http.StatusBadRequest, CodeBadRequest)

	// Lease body whose spec does not normalize.
	bad := fabricTestSpec(t)
	bad.MaxLen = 0
	resp2, body := postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "B1", TTLMs: 60_000, Spec: bad, Cells: sp.Cells()})
	expectEnvelope(t, resp2, body, http.StatusBadRequest, CodeBadRequest)

	// Report and cancel need a lease parameter.
	resp2, body = do(t, http.MethodGet, ts.URL+"/v1/fabric/report")
	expectEnvelope(t, resp2, body, http.StatusBadRequest, CodeBadRequest)
	resp2, body = do(t, http.MethodDelete, ts.URL+"/v1/fabric/lease")
	expectEnvelope(t, resp2, body, http.StatusBadRequest, CodeBadRequest)

	// Unknown leases are 404 on both report and cancel; the client
	// treats the cancel 404 as idempotent success.
	resp2, body = do(t, http.MethodGet, ts.URL+"/v1/fabric/report?lease=ghost")
	expectEnvelope(t, resp2, body, http.StatusNotFound, CodeNotFound)
	resp2, _ = do(t, http.MethodDelete, ts.URL+"/v1/fabric/lease?lease=ghost")
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel of unknown lease: status %d", resp2.StatusCode)
	}

	// Cursor parameters must be integers in range.
	resp3, body := postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "C1", TTLMs: 60_000, Spec: sp, Cells: sp.Cells()})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("lease grant: status %d: %s", resp3.StatusCode, body)
	}
	resp2, body = do(t, http.MethodGet, ts.URL+"/v1/fabric/report?lease=C1&from=banana")
	expectEnvelope(t, resp2, body, http.StatusBadRequest, CodeBadRequest)
	resp2, body = do(t, http.MethodGet, ts.URL+"/v1/fabric/report?lease=C1&max=-2")
	expectEnvelope(t, resp2, body, http.StatusBadRequest, CodeBadRequest)
}

func TestFabricLeaseCapOverloads(t *testing.T) {
	s := mustNew(t, Config{
		Workers:         2,
		JobTimeout:      time.Minute,
		FabricMaxLeases: 1,
		FabricCellDelay: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sp := fabricTestSpec(t)
	cells := sp.Cells()

	resp, body := postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "L1", TTLMs: 60_000, Spec: sp, Cells: cells})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first lease: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postLease(t, ts.URL, fabric.LeaseRequest{LeaseID: "L2", TTLMs: 60_000, Spec: sp, Cells: cells})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lease past cap: status %d: %s", resp.StatusCode, body)
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Fatalf("envelope code %q, want %q", envelope.Error.Code, CodeOverloaded)
	}
}
