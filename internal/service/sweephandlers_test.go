package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// The classification grid endpoint must reproduce the paper's Table 1:
// maxlen=5, maxd=9 is exactly the E02 experiment.
func TestSweepClassifyEndpointTable1(t *testing.T) {
	ts, _ := newTestServer(t)
	var got SweepClassifyResponse
	url := ts.URL + "/v1/sweep/classify?maxlen=5&maxd=9&method=exact"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if len(got.Cells) != len(core.Table1)*9 {
		t.Fatalf("cells: %d, want %d", len(got.Cells), len(core.Table1)*9)
	}
	for _, cell := range got.Cells {
		row, ok := core.Table1Lookup(bitstr.MustParse(cell.Factor))
		if !ok {
			t.Fatalf("cell factor %s not in Table 1", cell.Factor)
		}
		if want := row.VerdictFor(cell.D) == core.Isometric; cell.Isometric != want {
			t.Errorf("f=%s d=%d: endpoint says isometric=%v, Table 1 says %v",
				cell.Factor, cell.D, cell.Isometric, want)
		}
		if !cell.Isometric && cell.U == "" {
			t.Errorf("f=%s d=%d: negative cell without witness", cell.Factor, cell.D)
		}
	}
	// Spot-check a famous row: 101 fails exactly from d = 4 (Prop. 3.2).
	for _, cell := range got.Cells {
		if cell.Factor == "101" {
			if cell.Isometric != (cell.D <= 3) {
				t.Errorf("f=101 d=%d: isometric=%v", cell.D, cell.Isometric)
			}
		}
	}

	// The identical grid must come from the cache on the second hit.
	var again SweepClassifyResponse
	getJSON(t, url, &again)
	if !again.Cached {
		t.Errorf("second identical sweep not served from cache")
	}
}

// The streaming variant emits the same cells as NDJSON in the same order.
func TestSweepClassifyStream(t *testing.T) {
	ts, _ := newTestServer(t)
	var batch SweepClassifyResponse
	getJSON(t, ts.URL+"/v1/sweep/classify?maxlen=3&maxd=6&method=exact", &batch)

	resp, err := http.Get(ts.URL + "/v1/sweep/classify?maxlen=3&maxd=6&method=exact&stream=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var streamed []SweepCell
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var cell SweepCell
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		streamed = append(streamed, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch.Cells) {
		t.Fatalf("streamed %d cells, batch returned %d", len(streamed), len(batch.Cells))
	}
	for i := range streamed {
		if streamed[i] != batch.Cells[i] {
			t.Errorf("cell %d: streamed %+v vs batch %+v", i, streamed[i], batch.Cells[i])
		}
	}
}

// The survey endpoint must reproduce the Table 1 first-failure structure
// for length <= 5: exactly 11 of the 22 classes are good for every d, and
// the paper gives each class's failure dimension.
func TestSweepSurveyEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got SweepSurveyResponse
	url := ts.URL + "/v1/sweep/survey?maxlen=5&maxd=9&method=exact"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if len(got.Rows) != len(core.Table1) {
		t.Fatalf("rows: %d, want %d", len(got.Rows), len(core.Table1))
	}
	for _, row := range got.Rows {
		t1, ok := core.Table1Lookup(bitstr.MustParse(row.Factor))
		if !ok {
			t.Fatalf("row factor %s not in Table 1", row.Factor)
		}
		wantFail := 0
		if t1.UpTo != core.AllD && t1.UpTo < 9 {
			wantFail = t1.UpTo + 1
		}
		if row.FirstFail != wantFail {
			t.Errorf("f=%s: first fail %d, want %d (%s)", row.Factor, row.FirstFail, wantFail, t1.Citation)
		}
	}
	good := 0
	for _, r := range core.Table1 {
		if r.UpTo == core.AllD || r.UpTo >= 9 {
			good++
		}
	}
	if got.Good != good {
		t.Errorf("good = %d, want %d", got.Good, good)
	}
}

// Surveys with different mind values must not share a cache entry, and
// the scan start is honored: a class that first fails at d=4 reports its
// first failure >= mind when the scan starts above 4.
func TestSweepSurveyMindCacheKey(t *testing.T) {
	ts, _ := newTestServer(t)
	var low, high SweepSurveyResponse
	getJSON(t, ts.URL+"/v1/sweep/survey?minlen=3&maxlen=3&maxd=8&method=exact", &low)
	getJSON(t, ts.URL+"/v1/sweep/survey?minlen=3&maxlen=3&mind=6&maxd=8&method=exact", &high)
	if high.Cached {
		t.Fatalf("mind=6 survey served from the mind=1 cache entry")
	}
	firstFail := func(r SweepSurveyResponse, factor string) int {
		for _, row := range r.Rows {
			if row.Factor == factor {
				return row.FirstFail
			}
		}
		t.Fatalf("factor %s missing", factor)
		return 0
	}
	// 010 (the class of 101) first fails at d = 4 (Proposition 3.2).
	if got := firstFail(low, "010"); got != 4 {
		t.Errorf("default scan: first fail %d, want 4", got)
	}
	if got := firstFail(high, "010"); got != 6 {
		t.Errorf("mind=6 scan: first fail %d, want 6", got)
	}
}

// Counting rows must match the serial DP (Fibonacci numbers for f = 11).
func TestSweepCountEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got SweepCountResponse
	url := ts.URL + "/v1/sweep/count?maxlen=2&maxd=10"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	// Classes of length <= 2: "1" and {"11", "10"} -> 3 canonical classes.
	if len(got.Rows) != len(core.Classes(1, 2)) {
		t.Fatalf("rows: %d, want %d", len(got.Rows), len(core.Classes(1, 2)))
	}
	for _, row := range got.Rows {
		if len(row.V) != 11 {
			t.Fatalf("f=%s: %d entries, want 11", row.Factor, len(row.V))
		}
		if row.Factor == "11" && row.V[10] != "144" {
			t.Errorf("|V(Γ_10)| = %s, want 144", row.V[10])
		}
	}
}

// The f-dimension grid endpoint sweeps factors for one guest.
func TestSweepFDimEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got SweepFDimResponse
	url := ts.URL + "/v1/sweep/fdim?graph=path&n=4&maxlen=2&maxd=8"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if got.Guest != "path(4)" {
		t.Errorf("guest = %q", got.Guest)
	}
	for _, row := range got.Rows {
		if row.Factor == "11" && (!row.Found || row.Dim < 3) {
			t.Errorf("dim_11(P_4) = %+v, want found at d >= 3", row)
		}
	}
}

// The Wiener endpoint must report exact-vs-Hamming agreement following
// the isometry classification: f=101 matches exactly up to d=3.
func TestSweepWienerEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got SweepWienerResponse
	url := ts.URL + "/v1/sweep/wiener?minlen=3&maxlen=3&maxd=6"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if want := len(core.Classes(3, 3)) * 6; len(got.Cells) != want {
		t.Fatalf("cells: %d, want %d", len(got.Cells), want)
	}
	seen010 := false
	for _, cell := range got.Cells {
		if cell.Wiener == "" || cell.WienerHamming == "" {
			t.Fatalf("f=%s d=%d: empty Wiener strings", cell.Factor, cell.D)
		}
		if cell.Match != (cell.Connected && cell.Wiener == cell.WienerHamming) {
			t.Errorf("f=%s d=%d: match flag inconsistent", cell.Factor, cell.D)
		}
		// 010 is the canonical representative of the {010, 101} class,
		// which stops being isometric (hence matching) at d = 4.
		if cell.Factor == "010" {
			seen010 = true
			if cell.Match != (cell.D <= 3) {
				t.Errorf("f=010 d=%d: match=%v", cell.D, cell.Match)
			}
		}
	}
	if !seen010 {
		t.Fatal("factor 010 missing from grid")
	}
	var again SweepWienerResponse
	getJSON(t, url, &again)
	if !again.Cached {
		t.Error("second identical wiener sweep not served from cache")
	}
}

func TestSweepBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	urls := []string{
		"/v1/sweep/classify?maxlen=0",
		"/v1/sweep/classify?maxlen=99",
		"/v1/sweep/classify?maxd=99",
		"/v1/sweep/classify?method=bogus",
		"/v1/sweep/classify?minlen=5&maxlen=3",
		"/v1/sweep/classify?workers=1000",
		"/v1/sweep/survey?method=bogus",
		"/v1/sweep/count?maxd=100000",
		"/v1/sweep/fdim?maxlen=3", // missing guest graph
	}
	for _, u := range urls {
		var e ErrorResponse
		if code := getJSON(t, ts.URL+u, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", u, code, e.Error.Message)
		}
	}
}

// Concurrent identical sweeps are singleflighted: every client sees the
// same payload and the grid is computed once.
func TestSweepSingleflight(t *testing.T) {
	ts, s := newTestServer(t)
	const clients = 8
	url := ts.URL + "/v1/sweep/classify?maxlen=4&maxd=8&method=exact"
	type res struct {
		cells int
		err   error
	}
	ch := make(chan res, clients)
	for i := 0; i < clients; i++ {
		go func() {
			var got SweepClassifyResponse
			code := getJSON(t, url, &got)
			if code != http.StatusOK {
				ch <- res{err: fmt.Errorf("status %d", code)}
				return
			}
			ch <- res{cells: len(got.Cells)}
		}()
	}
	want := len(core.Classes(1, 4)) * 8
	for i := 0; i < clients; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.cells != want {
			t.Fatalf("client saw %d cells, want %d", r.cells, want)
		}
	}
	if completed := s.pool.Completed(); completed > 1 {
		t.Errorf("%d pool jobs for %d identical sweeps, want 1 (singleflight)", completed, clients)
	}
}

// A mid-stream failure must end the NDJSON body with a terminal error
// record carrying the same stable code the v1 envelope would have used —
// here a job deadline far too short for the grid, so the stream dies with
// code "timeout". Every preceding line is still a valid cell.
func TestSweepClassifyStreamTerminalErrorRecord(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/sweep/classify?maxlen=8&maxd=14&method=exact&stream=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (headers are out before the failure)", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream: not even a terminal error record")
	}
	var terminal ErrorResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil || terminal.Error.Code == "" {
		t.Fatalf("last line is not a terminal error record: %q (err %v)", lines[len(lines)-1], err)
	}
	if terminal.Error.Code != CodeTimeout {
		t.Errorf("terminal record code %q, want %q", terminal.Error.Code, CodeTimeout)
	}
	for _, line := range lines[:len(lines)-1] {
		var cell SweepCell
		if err := json.Unmarshal([]byte(line), &cell); err != nil {
			t.Errorf("non-terminal line is not a cell: %q", line)
		}
	}
}

// iso=true must serve the exact same grid as the plain sweep (the
// iso-dedup contract), under a distinct cache key, and the isoclasses
// endpoint must report the verified census partition sizes.
func TestSweepIsoDedupEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	var plain, deduped SweepClassifyResponse
	getJSON(t, ts.URL+"/v1/sweep/classify?maxlen=5&maxd=7&method=exact", &plain)
	url := ts.URL + "/v1/sweep/classify?maxlen=5&maxd=7&method=exact&iso=true"
	if code := getJSON(t, url, &deduped); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if deduped.Cached {
		t.Fatalf("iso=true shared the plain sweep's cache entry")
	}
	if len(plain.Cells) != len(deduped.Cells) {
		t.Fatalf("iso=true returned %d cells, plain %d", len(deduped.Cells), len(plain.Cells))
	}
	for i := range plain.Cells {
		if plain.Cells[i] != deduped.Cells[i] {
			t.Errorf("cell %d: iso %+v vs plain %+v", i, deduped.Cells[i], plain.Cells[i])
		}
	}

	var survey, surveyIso SweepSurveyResponse
	getJSON(t, ts.URL+"/v1/sweep/survey?maxlen=4&maxd=8&method=exact", &survey)
	getJSON(t, ts.URL+"/v1/sweep/survey?maxlen=4&maxd=8&method=exact&iso=true", &surveyIso)
	if len(survey.Rows) != len(surveyIso.Rows) {
		t.Fatalf("iso survey returned %d rows, plain %d", len(surveyIso.Rows), len(survey.Rows))
	}
	for i := range survey.Rows {
		if survey.Rows[i] != surveyIso.Rows[i] {
			t.Errorf("row %d: iso %+v vs plain %+v", i, surveyIso.Rows[i], survey.Rows[i])
		}
	}

	var classes SweepIsoClassesResponse
	if code := getJSON(t, ts.URL+"/v1/sweep/isoclasses?maxlen=5&maxd=7", &classes); code != http.StatusOK {
		t.Fatalf("isoclasses: status %d", code)
	}
	wantGroups := []int{2, 3, 5, 8, 11, 17, 22}
	if len(classes.Rows) != len(wantGroups) {
		t.Fatalf("isoclasses rows: %d, want %d", len(classes.Rows), len(wantGroups))
	}
	for i, row := range classes.Rows {
		if row.Classes != 22 || row.Groups != wantGroups[i] {
			t.Errorf("d=%d: %d groups of %d classes, want %d of 22", row.D, row.Groups, row.Classes, wantGroups[i])
		}
	}

	// The dedup counters must now be visible on /stats and /metrics.
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.IsoDedup == 0 || stats.IsoFanout == 0 {
		t.Errorf("stats iso counters not populated: dedup=%d fanout=%d", stats.IsoDedup, stats.IsoFanout)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	body := string(buf[:n])
	for _, metric := range []string{"gfc_sweep_iso_dedup_total", "gfc_sweep_iso_fanout_total"} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	// Bad iso values are rejected.
	var errResp ErrorResponse
	if code := getJSON(t, ts.URL+"/v1/sweep/classify?maxlen=3&maxd=5&iso=banana", &errResp); code != http.StatusBadRequest {
		t.Errorf("iso=banana: status %d, want 400", code)
	}
}
