package service

import (
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gfcube/internal/core"
	"gfcube/internal/fabric"
	"gfcube/internal/store"
	"gfcube/internal/sweep"
)

// Observability layer: flat per-request samples recorded into lock-cheap
// aggregates, rendered as Prometheus text format by /metrics.
//
// Everything on the record path is a handful of atomic adds and stores —
// no mutex, no allocation — so instrumenting the hot endpoints costs
// nanoseconds per request:
//
//   - cumulative log-scale latency histograms (power-of-two buckets from
//     1µs), one per endpoint, Prometheus-histogram compatible;
//   - a sliding window of the most recent latencies per endpoint (a
//     lock-free ring), from which /metrics computes p50/p99 at scrape
//     time — quantiles over recent traffic, not over process lifetime;
//   - batch occupancy and queue-wait histograms per operation, plus
//     dispatch/shed counters;
//   - request counters by endpoint and status class.
//
// Cache hit rates and worker-pool gauges are pulled from the live Cache
// and Pool at scrape time rather than double-counted here.

// latBuckets are power-of-two nanosecond histogram bounds: bucket i
// covers latencies < 1µs·2^i, the last bucket is +Inf.
const (
	latBucketCount = 26 // 1µs << 25 ≈ 33.5s, beyond any JobTimeout
	windowSize     = 512
)

// latBucketIndex maps a duration to its histogram bucket.
func latBucketIndex(d time.Duration) int {
	us := uint64(d) / 1000
	i := bits.Len64(us) // 0 for sub-µs, else floor(log2(us))+1
	if i >= latBucketCount {
		i = latBucketCount - 1
	}
	return i
}

// latBucketBound returns bucket i's upper bound in seconds.
func latBucketBound(i int) float64 {
	return float64(uint64(1000)<<i) / 1e9
}

// histogram is a cumulative log-scale latency histogram.
type histogram struct {
	buckets  [latBucketCount]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[latBucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// window is a lock-free ring of the most recent latency samples. Slots
// hold nanoseconds+1 so zero means "never written"; writes may race on a
// wrapped slot and one sample wins — fine for quantile estimation.
type window struct {
	next  atomic.Uint64
	slots [windowSize]atomic.Int64
}

func (w *window) record(d time.Duration) {
	i := (w.next.Add(1) - 1) % windowSize
	w.slots[i].Store(int64(d) + 1)
}

// snapshot returns the recorded samples in the window, unsorted.
func (w *window) snapshot() []time.Duration {
	out := make([]time.Duration, 0, windowSize)
	for i := range w.slots {
		if v := w.slots[i].Load(); v > 0 {
			out = append(out, time.Duration(v-1))
		}
	}
	return out
}

// quantiles returns the qs quantiles (each in [0, 1]) of the window's
// samples, or nil when the window is empty.
func (w *window) quantiles(qs ...float64) []time.Duration {
	xs := w.snapshot()
	if len(xs) == 0 {
		return nil
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		k := int(q * float64(len(xs)-1))
		out[i] = xs[k]
	}
	return out
}

// statusClass buckets an HTTP status code for the request counters.
func statusClass(code int) int {
	switch {
	case code < 300:
		return 0 // 2xx
	case code < 500:
		return 1 // 4xx (and the odd 3xx)
	default:
		return 2 // 5xx
	}
}

var statusClassLabel = [3]string{"2xx", "4xx", "5xx"}

// endpointMetrics aggregates one endpoint's traffic.
type endpointMetrics struct {
	name     string
	requests [3]atomic.Uint64 // by statusClass
	latency  histogram
	recent   window
}

// occBuckets are the batch-occupancy histogram bounds (inclusive): a
// batch of n lands in the first bucket with bound >= n.
var occBuckets = [...]int{1, 2, 4, 8, 16, 32, 64}

// batchOpMetrics aggregates one batched operation's dispatches.
type batchOpMetrics struct {
	op        string
	batches   atomic.Uint64
	items     atomic.Uint64 // requests that rode a dispatched batch
	shed      atomic.Uint64 // submissions rejected by a full queue
	occupancy [len(occBuckets) + 1]atomic.Uint64
	queueWait histogram
}

// RequestSample is the flat per-request timing/outcome record. Handlers
// annotate the batching fields; the instrument middleware fills the rest
// and records the sample.
type RequestSample struct {
	Endpoint  string
	Code      int
	Latency   time.Duration
	QueueWait time.Duration
	BatchSize int  // 0 when the request did not ride a batch
	CacheHit  bool // served from the result cache (LRU or joined flight)
}

// Metrics is the server-wide registry. Endpoint and operation sets are
// fixed at construction so the record path is map-lookup + atomics with
// no locking.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	ops       map[string]*batchOpMetrics
	cacheHits atomic.Uint64 // result-cache hits observed by handlers
}

// NewMetrics builds a registry for the given endpoint paths and batched
// operation names. Samples for unregistered endpoints are dropped.
func NewMetrics(endpoints, ops []string) *Metrics {
	m := &Metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		ops:       make(map[string]*batchOpMetrics, len(ops)),
	}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{name: e}
	}
	for _, op := range ops {
		m.ops[op] = &batchOpMetrics{op: op}
	}
	return m
}

// Record folds one request sample into the aggregates.
func (m *Metrics) Record(s *RequestSample) {
	em := m.endpoints[s.Endpoint]
	if em == nil {
		return
	}
	em.requests[statusClass(s.Code)].Add(1)
	em.latency.observe(s.Latency)
	em.recent.record(s.Latency)
	if s.CacheHit {
		m.cacheHits.Add(1)
	}
}

// RecordBatch folds one dispatched batch: its occupancy (counting every
// rider, including ones canceled while queued) and the queue wait of each
// live item.
func (m *Metrics) RecordBatch(op string, size int, live []*BatchItem) {
	om := m.ops[op]
	if om == nil {
		return
	}
	om.batches.Add(1)
	om.items.Add(uint64(size))
	slot := len(occBuckets)
	for i, bound := range occBuckets {
		if size <= bound {
			slot = i
			break
		}
	}
	om.occupancy[slot].Add(1)
	for _, it := range live {
		om.queueWait.observe(it.wait)
	}
}

// RecordShed counts one submission rejected by a full lane queue.
func (m *Metrics) RecordShed(op string) {
	if om := m.ops[op]; om != nil {
		om.shed.Add(1)
	}
}

// BatchTotals reports lifetime dispatch/item/shed counts over every
// operation (for /stats).
func (m *Metrics) BatchTotals() (batches, items, shed uint64) {
	for _, om := range m.ops {
		batches += om.batches.Load()
		items += om.items.Load()
		shed += om.shed.Load()
	}
	return
}

// sortedEndpoints and sortedOps give deterministic render order.
func (m *Metrics) sortedEndpoints() []*endpointMetrics {
	out := make([]*endpointMetrics, 0, len(m.endpoints))
	for _, em := range m.endpoints {
		out = append(out, em)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (m *Metrics) sortedOps() []*batchOpMetrics {
	out := make([]*batchOpMetrics, 0, len(m.ops))
	for _, om := range m.ops {
		out = append(out, om)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].op < out[j].op })
	return out
}

func writeHistogram(b *strings.Builder, name, labels string, h *histogram) {
	cum := uint64(0)
	for i := 0; i < latBucketCount-1; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, latBucketBound(i), cum)
	}
	cum += h.buckets[latBucketCount-1].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(b, "%s_sum{%s} %g\n", name, strings.TrimSuffix(labels, ","), float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), h.count.Load())
}

// Render writes the whole registry in Prometheus text exposition format.
// cache, pool, batcher, st, provider and fabricHost contribute their live
// gauges and counters; any of them may be nil.
func (m *Metrics) Render(cache *Cache, pool *Pool, batcher *Batcher, st *store.Store, provider *store.Provider, fabricHost *fabric.Host) string {
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP gfc_uptime_seconds Time since server start.\n# TYPE gfc_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "gfc_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(&b, "# HELP gfc_requests_total Requests by endpoint and status class.\n# TYPE gfc_requests_total counter\n")
	for _, em := range m.sortedEndpoints() {
		for cls, label := range statusClassLabel {
			if n := em.requests[cls].Load(); n > 0 {
				fmt.Fprintf(&b, "gfc_requests_total{endpoint=%q,code=%q} %d\n", em.name, label, n)
			}
		}
	}

	fmt.Fprintf(&b, "# HELP gfc_request_duration_seconds Request latency by endpoint.\n# TYPE gfc_request_duration_seconds histogram\n")
	for _, em := range m.sortedEndpoints() {
		if em.latency.count.Load() == 0 {
			continue
		}
		writeHistogram(&b, "gfc_request_duration_seconds", fmt.Sprintf("endpoint=%q,", em.name), &em.latency)
	}

	fmt.Fprintf(&b, "# HELP gfc_request_latency_seconds Latency quantiles over the most recent %d requests per endpoint.\n# TYPE gfc_request_latency_seconds gauge\n", windowSize)
	for _, em := range m.sortedEndpoints() {
		if qs := em.recent.quantiles(0.5, 0.99); qs != nil {
			fmt.Fprintf(&b, "gfc_request_latency_seconds{endpoint=%q,quantile=\"0.5\"} %g\n", em.name, qs[0].Seconds())
			fmt.Fprintf(&b, "gfc_request_latency_seconds{endpoint=%q,quantile=\"0.99\"} %g\n", em.name, qs[1].Seconds())
		}
	}

	fmt.Fprintf(&b, "# HELP gfc_batches_total Dispatched batches by operation.\n# TYPE gfc_batches_total counter\n")
	fmt.Fprintf(&b, "# HELP gfc_batched_requests_total Requests dispatched inside a batch.\n# TYPE gfc_batched_requests_total counter\n")
	fmt.Fprintf(&b, "# HELP gfc_batch_shed_total Submissions shed by a full lane queue.\n# TYPE gfc_batch_shed_total counter\n")
	for _, om := range m.sortedOps() {
		fmt.Fprintf(&b, "gfc_batches_total{op=%q} %d\n", om.op, om.batches.Load())
		fmt.Fprintf(&b, "gfc_batched_requests_total{op=%q} %d\n", om.op, om.items.Load())
		fmt.Fprintf(&b, "gfc_batch_shed_total{op=%q} %d\n", om.op, om.shed.Load())
	}

	fmt.Fprintf(&b, "# HELP gfc_batch_occupancy Batch size at dispatch by operation.\n# TYPE gfc_batch_occupancy histogram\n")
	for _, om := range m.sortedOps() {
		if om.batches.Load() == 0 {
			continue
		}
		cum := uint64(0)
		for i, bound := range occBuckets {
			cum += om.occupancy[i].Load()
			fmt.Fprintf(&b, "gfc_batch_occupancy_bucket{op=%q,le=\"%d\"} %d\n", om.op, bound, cum)
		}
		cum += om.occupancy[len(occBuckets)].Load()
		fmt.Fprintf(&b, "gfc_batch_occupancy_bucket{op=%q,le=\"+Inf\"} %d\n", om.op, cum)
		fmt.Fprintf(&b, "gfc_batch_occupancy_sum{op=%q} %d\n", om.op, om.items.Load())
		fmt.Fprintf(&b, "gfc_batch_occupancy_count{op=%q} %d\n", om.op, om.batches.Load())
	}

	fmt.Fprintf(&b, "# HELP gfc_batch_queue_wait_seconds Time requests waited in a lane queue before dispatch.\n# TYPE gfc_batch_queue_wait_seconds histogram\n")
	for _, om := range m.sortedOps() {
		if om.queueWait.count.Load() == 0 {
			continue
		}
		writeHistogram(&b, "gfc_batch_queue_wait_seconds", fmt.Sprintf("op=%q,", om.op), &om.queueWait)
	}

	if cache != nil {
		hits, misses := cache.Stats()
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(&b, "# HELP gfc_cache_hits_total Result-cache hits (LRU or joined flight).\n# TYPE gfc_cache_hits_total counter\ngfc_cache_hits_total %d\n", hits)
		fmt.Fprintf(&b, "# HELP gfc_cache_misses_total Result-cache misses.\n# TYPE gfc_cache_misses_total counter\ngfc_cache_misses_total %d\n", misses)
		fmt.Fprintf(&b, "# HELP gfc_cache_hit_rate Lifetime result-cache hit rate.\n# TYPE gfc_cache_hit_rate gauge\ngfc_cache_hit_rate %g\n", rate)
		fmt.Fprintf(&b, "# HELP gfc_cache_entries Resident result-cache entries.\n# TYPE gfc_cache_entries gauge\ngfc_cache_entries %d\n", cache.Len())
	}
	if pool != nil {
		fmt.Fprintf(&b, "# HELP gfc_pool_workers Worker-pool slots.\n# TYPE gfc_pool_workers gauge\ngfc_pool_workers %d\n", pool.Workers())
		fmt.Fprintf(&b, "# HELP gfc_pool_in_flight Jobs currently executing.\n# TYPE gfc_pool_in_flight gauge\ngfc_pool_in_flight %d\n", pool.InFlight())
		fmt.Fprintf(&b, "# HELP gfc_pool_completed_total Jobs completed.\n# TYPE gfc_pool_completed_total counter\ngfc_pool_completed_total %d\n", pool.Completed())
		fmt.Fprintf(&b, "# HELP gfc_pool_rejected_total Jobs that never got a slot.\n# TYPE gfc_pool_rejected_total counter\ngfc_pool_rejected_total %d\n", pool.Rejected())
	}
	if batcher != nil {
		fmt.Fprintf(&b, "# HELP gfc_batch_lanes Live batch lanes.\n# TYPE gfc_batch_lanes gauge\ngfc_batch_lanes %d\n", batcher.Lanes())
	}
	if st != nil {
		stats := st.Stats()
		fmt.Fprintf(&b, "# HELP gfc_store_hits_total Artifact loads served from disk or the mapping cache.\n# TYPE gfc_store_hits_total counter\ngfc_store_hits_total %d\n", stats.Hits)
		fmt.Fprintf(&b, "# HELP gfc_store_misses_total Artifact loads that found no artifact.\n# TYPE gfc_store_misses_total counter\ngfc_store_misses_total %d\n", stats.Misses)
		fmt.Fprintf(&b, "# HELP gfc_store_writes_total Artifacts written back after compute.\n# TYPE gfc_store_writes_total counter\ngfc_store_writes_total %d\n", stats.Writes)
		fmt.Fprintf(&b, "# HELP gfc_store_corrupt_total Artifacts that failed validation and fell back to compute.\n# TYPE gfc_store_corrupt_total counter\ngfc_store_corrupt_total %d\n", stats.Corrupt)
		fmt.Fprintf(&b, "# HELP gfc_store_evictions_total Artifacts evicted by the size cap.\n# TYPE gfc_store_evictions_total counter\ngfc_store_evictions_total %d\n", stats.Evictions)
		fmt.Fprintf(&b, "# HELP gfc_store_artifacts Artifacts on disk in the store directory.\n# TYPE gfc_store_artifacts gauge\ngfc_store_artifacts %d\n", stats.Artifacts)
		fmt.Fprintf(&b, "# HELP gfc_store_bytes Artifact bytes on disk in the store directory.\n# TYPE gfc_store_bytes gauge\ngfc_store_bytes %d\n", stats.Bytes)
		fmt.Fprintf(&b, "# HELP gfc_store_pack_artifacts Artifacts in the mounted warm pack.\n# TYPE gfc_store_pack_artifacts gauge\ngfc_store_pack_artifacts %d\n", stats.PackArtifacts)
		fmt.Fprintf(&b, "# HELP gfc_store_pack_bytes Artifact bytes in the mounted warm pack.\n# TYPE gfc_store_pack_bytes gauge\ngfc_store_pack_bytes %d\n", stats.PackBytes)
		fmt.Fprintf(&b, "# HELP gfc_store_resident Artifacts mapped in memory.\n# TYPE gfc_store_resident gauge\ngfc_store_resident %d\n", stats.Resident)
	}
	if provider != nil {
		fmt.Fprintf(&b, "# HELP gfc_store_computed_total Backends built from scratch (store misses and corruption fallbacks).\n# TYPE gfc_store_computed_total counter\ngfc_store_computed_total %d\n", provider.Computed())
	}
	// Column-cache effectiveness of the sweep scratches in this process:
	// constructions served incrementally off a cached class column vs
	// rebuilt from scratch (see core.ColumnCounters).
	colReuse, colRebuild := core.ColumnCounters()
	fmt.Fprintf(&b, "# HELP gfc_sweep_column_reuse_total Cube constructions served incrementally off a cached class column.\n# TYPE gfc_sweep_column_reuse_total counter\ngfc_sweep_column_reuse_total %d\n", colReuse)
	fmt.Fprintf(&b, "# HELP gfc_sweep_column_rebuild_total Cube constructions rebuilt from scratch (cold builder, new factor or dimension jump).\n# TYPE gfc_sweep_column_rebuild_total counter\ngfc_sweep_column_rebuild_total %d\n", colRebuild)
	// Iso-dedup effectiveness of iso=true sweeps in this process (see
	// sweep.IsoCounters): dedup - fanout cells were recomputed to restore
	// label-dependent witnesses.
	isoDedup, isoFanout := sweep.IsoCounters()
	fmt.Fprintf(&b, "# HELP gfc_sweep_iso_dedup_total Grid cells elided because a congruence-group leader covers them.\n# TYPE gfc_sweep_iso_dedup_total counter\ngfc_sweep_iso_dedup_total %d\n", isoDedup)
	fmt.Fprintf(&b, "# HELP gfc_sweep_iso_fanout_total Result copies delivered to member classes by iso fan-out.\n# TYPE gfc_sweep_iso_fanout_total counter\ngfc_sweep_iso_fanout_total %d\n", isoFanout)
	if fabricHost != nil {
		fs := fabricHost.Stats()
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_active_leases Live fabric leases on this worker.\n# TYPE gfc_fabric_worker_active_leases gauge\ngfc_fabric_worker_active_leases %d\n", fs.Active)
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_leases_total Fabric leases granted.\n# TYPE gfc_fabric_worker_leases_total counter\ngfc_fabric_worker_leases_total %d\n", fs.Leases)
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_renewals_total Fabric lease renewals.\n# TYPE gfc_fabric_worker_renewals_total counter\ngfc_fabric_worker_renewals_total %d\n", fs.Renewals)
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_cells_total Sweep cells computed under fabric leases.\n# TYPE gfc_fabric_worker_cells_total counter\ngfc_fabric_worker_cells_total %d\n", fs.Cells)
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_reports_total Report fetches served.\n# TYPE gfc_fabric_worker_reports_total counter\ngfc_fabric_worker_reports_total %d\n", fs.Reports)
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_cancels_total Leases revoked by the coordinator.\n# TYPE gfc_fabric_worker_cancels_total counter\ngfc_fabric_worker_cancels_total %d\n", fs.Cancels)
		fmt.Fprintf(&b, "# HELP gfc_fabric_worker_expired_total Leases that died without renewal.\n# TYPE gfc_fabric_worker_expired_total counter\ngfc_fabric_worker_expired_total %d\n", fs.Expired)
	}
	return b.String()
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.metrics.Render(s.cache, s.pool, s.batcher, s.store, s.provider, s.fabric)))
}
