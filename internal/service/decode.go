package service

import (
	"net/http"
	"strconv"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Shared request decoding for the v1 endpoints. Every handler parses its
// query through these helpers, so parameter names, bounds checks and
// error wording are defined exactly once.

// factorParam is a validated forbidden-factor query parameter. The
// canonical complement/reversal class representative is resolved once at
// parse time, so cache keys and batch lanes key on it without
// re-deriving it per request (previously the class-invariant handlers
// re-resolved it even on cache hits).
type factorParam struct {
	s      string
	w      bitstr.Word
	canon  string
	canonW bitstr.Word
}

// canonical returns the factorParam of the class representative itself.
func (f factorParam) canonical() factorParam {
	return factorParam{s: f.canon, w: f.canonW, canon: f.canon, canonW: f.canonW}
}

func (s *Server) parseFactor(r *http.Request) (factorParam, error) {
	raw := r.URL.Query().Get("f")
	if raw == "" {
		return factorParam{}, badRequest("missing required parameter f (forbidden factor, e.g. f=11)")
	}
	if len(raw) > s.cfg.MaxFactorLen {
		return factorParam{}, badRequest("factor longer than %d bits", s.cfg.MaxFactorLen)
	}
	w, err := bitstr.Parse(raw)
	if err != nil {
		return factorParam{}, badRequest("invalid factor %q: %v", raw, err)
	}
	if w.Len() == 0 {
		return factorParam{}, badRequest("factor must be nonempty")
	}
	cw := bitstr.CanonicalRepresentative(w)
	return factorParam{s: raw, w: w, canon: cw.String(), canonW: cw}, nil
}

// decodeFD parses the (f, d) pair shared by every addressed endpoint,
// bounding d to [minD, maxD]. A negative default makes d required.
func (s *Server) decodeFD(r *http.Request, defD, minD, maxD int) (factorParam, int, error) {
	f, err := s.parseFactor(r)
	if err != nil {
		return factorParam{}, 0, err
	}
	d, err := parseIntParam(r, "d", defD, minD, maxD)
	if err != nil {
		return factorParam{}, 0, err
	}
	return f, d, nil
}

func parseIntParam(r *http.Request, name string, def, min, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if def < min {
			return 0, badRequest("missing required parameter %s", name)
		}
		// A server configured with tight caps (e.g. a low MaxBuildDim) must
		// bound defaulted parameters too, not just explicit ones.
		if def > max {
			def = max
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("invalid %s=%q: not an integer", name, raw)
	}
	if v < min || v > max {
		return 0, badRequest("%s=%d out of range [%d, %d]", name, v, min, max)
	}
	return v, nil
}

func parseWordParam(r *http.Request, name string, d int) (bitstr.Word, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return bitstr.Word{}, badRequest("missing required parameter %s (a %d-bit binary word)", name, d)
	}
	w, err := bitstr.Parse(raw)
	if err != nil {
		return bitstr.Word{}, badRequest("invalid %s=%q: %v", name, raw, err)
	}
	if w.Len() != d {
		return bitstr.Word{}, badRequest("%s must have length d=%d, got %d", name, d, w.Len())
	}
	return w, nil
}

// parseRankParam parses a nonnegative int64 query parameter (a vertex
// rank).
func parseRankParam(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, badRequest("missing required parameter %s (a vertex rank)", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, badRequest("invalid %s=%q: want a nonnegative integer rank", name, raw)
	}
	return v, nil
}

// cacheSource maps a cached response's recorded Source to the one served
// on a result-cache hit: "cache", except that warm-pack/store provenance
// is preserved — a hit on an entry that was loaded from the store still
// reports "store", which is what the warm-start accounting observes.
func cacheSource(src string) string {
	if src == string(core.SourceStore) {
		return src
	}
	return string(core.SourceCache)
}
