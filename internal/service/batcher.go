package service

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Micro-batching front for the hot query endpoints. The backends are
// batch-native — the implicit DFA-rank tables answer any number of
// rank/unrank/neighbor probes for a (d, f) class after one table
// resolution, and the counting DP is a pure function of the canonical
// class — yet without a coalescer every concurrent request pays the
// per-request coordination cost (cache singleflight bookkeeping, worker
// pool slot handoff, context plumbing) on its own. The Batcher collects
// concurrent requests for the same (operation, canonical d, f) lane into
// one backend invocation and fans the per-request results back out over
// response channels.
//
// Shape: each lane owns a bounded queue and a dispatcher goroutine. The
// first request into an idle lane starts a batch window; the dispatcher
// collects followers until the batch is full (BatchSize) or the window
// expires (MaxWait), then executes the whole batch under a single worker
// pool slot. A full queue sheds load immediately (503 + Retry-After at
// the HTTP layer) instead of building an unbounded backlog. Canceled
// requests are skipped at dispatch without poisoning the rest of their
// batch. Close drains every queued request before returning, so graceful
// shutdown never abandons an accepted request.

// ErrBatchQueueFull is returned by Submit when a lane's queue is at
// capacity; the HTTP layer maps it to 503 with a Retry-After header.
var ErrBatchQueueFull = errors.New("service: batch queue full")

// ErrBatcherClosed is returned by Submit after Close; it also maps to 503.
var ErrBatcherClosed = errors.New("service: batcher shutting down")

// errBatchUnresolved guards against an exec function that returns without
// resolving an item; it should be unreachable.
var errBatchUnresolved = errors.New("service: batch exec left item unresolved")

// BatchExec executes one dispatched batch. Every item passed in is live
// (its context had not expired at dispatch); exec must call Resolve on
// each. Items the exec cannot serve individually should be resolved with
// their error — one bad item must not fail the batch.
type BatchExec func(items []*BatchItem)

// BatchItem is one request riding in a batch.
type BatchItem struct {
	// Ctx is the submitting request's context. Exec functions should check
	// it per item: a canceled item is skipped, not computed.
	Ctx context.Context
	// Req is the operation-specific request payload.
	Req any

	enqueued  time.Time
	wait      time.Duration // queue wait, set at dispatch
	batchSize int           // dispatched batch size, set at dispatch
	val       any
	err       error
	resolved  bool
	done      chan struct{}
}

// Resolve delivers the item's result to its waiting request. Exec
// functions must call it exactly once per item; the dispatcher resolves
// stragglers with an internal error as a bug guard.
func (it *BatchItem) Resolve(val any, err error) {
	if it.resolved {
		return
	}
	it.resolved = true
	it.val, it.err = val, err
	close(it.done)
}

// Flight reports how a submitted request traveled: the size of the batch
// it was dispatched in and how long it waited in the lane queue.
type Flight struct {
	BatchSize int
	QueueWait time.Duration
}

// BatcherConfig tunes the coalescer. The zero value gets defaults from
// withDefaults.
type BatcherConfig struct {
	// BatchSize is the largest batch dispatched at once (default 32).
	BatchSize int
	// MaxWait bounds how long the first request of a batch waits for
	// followers (default 500µs). It is the latency floor a lone uncached
	// request pays for coalescing.
	MaxWait time.Duration
	// QueueLimit bounds queued requests per lane; submissions beyond it
	// are shed (default 4 × BatchSize).
	QueueLimit int
	// IdleAfter retires a lane's dispatcher goroutine after inactivity
	// (default 5s); lanes are recreated on demand, so retirement only
	// bounds idle goroutines, never sheds work.
	IdleAfter time.Duration
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 500 * time.Microsecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4 * c.BatchSize
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 5 * time.Second
	}
	return c
}

// Batcher coalesces concurrent same-lane requests into single backend
// invocations.
type Batcher struct {
	cfg     BatcherConfig
	metrics *Metrics // optional; records occupancy, queue wait, sheds

	mu     sync.Mutex
	lanes  map[string]*lane
	closed bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

type lane struct {
	op   string // metrics label, e.g. "rank"
	key  string // full lane key, e.g. "rank|11|32"
	ch   chan *BatchItem
	exec BatchExec // fixed by the lane's first Submit
	// inflight bounds concurrent dispatches so the dispatcher can collect
	// the next batch while the previous one executes — without it, a
	// closed-loop client sees alternating collect/execute bubbles.
	inflight chan struct{}
}

// NewBatcher returns a Batcher with cfg (zero value accepted). metrics
// may be nil.
func NewBatcher(cfg BatcherConfig, metrics *Metrics) *Batcher {
	return &Batcher{
		cfg:     cfg.withDefaults(),
		metrics: metrics,
		lanes:   make(map[string]*lane),
		quit:    make(chan struct{}),
	}
}

// Submit enqueues req on the (op, key) lane and blocks until the batch
// executor resolves it or ctx is done. All submissions sharing a lane key
// must pass an equivalent exec: the lane runs the exec captured at its
// creation.
func (b *Batcher) Submit(ctx context.Context, op, key string, req any, exec BatchExec) (any, Flight, error) {
	it := &BatchItem{Ctx: ctx, Req: req, enqueued: time.Now(), done: make(chan struct{})}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, Flight{}, ErrBatcherClosed
	}
	l := b.lanes[key]
	if l == nil {
		l = &lane{
			op: op, key: key,
			ch:       make(chan *BatchItem, b.cfg.QueueLimit),
			exec:     exec,
			inflight: make(chan struct{}, 2),
		}
		b.lanes[key] = l
		b.wg.Add(1)
		go b.runLane(l)
	}
	select {
	case l.ch <- it:
		b.mu.Unlock()
	default:
		b.mu.Unlock()
		if b.metrics != nil {
			b.metrics.RecordShed(op)
		}
		return nil, Flight{}, ErrBatchQueueFull
	}

	select {
	case <-it.done:
		return it.val, Flight{BatchSize: it.batchSize, QueueWait: it.wait}, it.err
	case <-ctx.Done():
		// The dispatcher will see the expired context and resolve the item
		// without computing it; nobody is left to read that resolution.
		return nil, Flight{}, ctx.Err()
	}
}

// Close stops accepting new submissions, drains every queued request
// through its lane's exec, and waits for the dispatchers to exit.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.quit)
	b.mu.Unlock()
	b.wg.Wait()
}

// Lanes returns the number of live lanes (for /stats).
func (b *Batcher) Lanes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lanes)
}

// runLane is the per-lane dispatcher: collect a batch, execute, repeat;
// retire after IdleAfter with no traffic.
func (b *Batcher) runLane(l *lane) {
	defer b.wg.Done()
	idle := time.NewTimer(b.cfg.IdleAfter)
	defer idle.Stop()
	for {
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(b.cfg.IdleAfter)
		select {
		case it := <-l.ch:
			batch := b.collect(l, it)
			// Execute off the dispatcher loop so the next batch collects
			// while this one runs; the worker pool still bounds total
			// backend concurrency.
			l.inflight <- struct{}{}
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				defer func() { <-l.inflight }()
				b.dispatch(l, batch)
			}()
		case <-b.quit:
			b.drain(l)
			return
		case <-idle.C:
			// Retire the lane — unless a Submit raced the timer and already
			// holds a queue slot. Submit sends while holding b.mu, so under
			// the lock the queue length is authoritative.
			b.mu.Lock()
			if len(l.ch) > 0 {
				b.mu.Unlock()
				continue
			}
			delete(b.lanes, l.key)
			b.mu.Unlock()
			return
		}
	}
}

// collect gathers a batch starting from first: followers are accepted
// until the batch is full or MaxWait passes. On shutdown the window is
// cut short so queued requests drain promptly.
func (b *Batcher) collect(l *lane, first *BatchItem) []*BatchItem {
	batch := append(make([]*BatchItem, 0, b.cfg.BatchSize), first)
	if b.cfg.BatchSize == 1 {
		return batch
	}
	window := time.NewTimer(b.cfg.MaxWait)
	defer window.Stop()
	for len(batch) < b.cfg.BatchSize {
		select {
		case it := <-l.ch:
			batch = append(batch, it)
		case <-window.C:
			return batch
		case <-b.quit:
			return batch
		}
	}
	return batch
}

// dispatch filters expired items out of the batch, hands the rest to the
// lane's exec under one invocation, and guards against unresolved items.
func (b *Batcher) dispatch(l *lane, batch []*BatchItem) {
	now := time.Now()
	live := batch[:0]
	for _, it := range batch {
		it.batchSize = len(batch)
		it.wait = now.Sub(it.enqueued)
		if it.Ctx.Err() != nil {
			// Canceled while queued: skip it without poisoning the batch.
			it.Resolve(nil, it.Ctx.Err())
			continue
		}
		live = append(live, it)
	}
	if b.metrics != nil {
		b.metrics.RecordBatch(l.op, len(batch), live)
	}
	if len(live) > 0 {
		l.exec(live)
	}
	for _, it := range live {
		it.Resolve(nil, errBatchUnresolved)
	}
}

// drain serves everything still queued on l at shutdown, in batches, then
// exits. New submissions are already rejected by Close, so this
// terminates.
func (b *Batcher) drain(l *lane) {
	for {
		select {
		case it := <-l.ch:
			batch := append(make([]*BatchItem, 0, b.cfg.BatchSize), it)
			for len(batch) < b.cfg.BatchSize {
				select {
				case more := <-l.ch:
					batch = append(batch, more)
				default:
					goto flush
				}
			}
		flush:
			b.dispatch(l, batch)
		default:
			return
		}
	}
}
