package service

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The remaining guest-graph kinds, traffic patterns and routers: these are
// thin dispatch arms, exercised here so a broken wiring cannot hide.
func TestGuestGraphKinds(t *testing.T) {
	ts, _ := newTestServer(t)
	var fd FDimResponse
	if code := getJSON(t, ts.URL+"/v1/fdim?f=11&graph=grid&p=2&q=2&maxd=8", &fd); code != http.StatusOK {
		t.Fatalf("grid guest: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/fdim?f=11&graph=star&n=3&maxd=8", &fd); code != http.StatusOK {
		t.Fatalf("star guest: status %d", code)
	}
	var e ErrorResponse
	if code := getJSON(t, ts.URL+"/v1/fdim?f=11&graph=cycle&n=2", &e); code != http.StatusBadRequest {
		t.Fatalf("cycle n=2: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/fdim?f=11", &e); code != http.StatusBadRequest {
		t.Fatalf("missing graph: status %d", code)
	}
}

func TestSimulatePatternsAndRouters(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, q := range []string{
		"pattern=permutation&router=oracle",
		"pattern=hotspot&count=16",
	} {
		var got SimulateResponse
		url := ts.URL + "/v1/simulate?f=11&d=5&seed=3&" + q
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("%s: status %d", q, code)
		}
		if got.Packets == 0 {
			t.Errorf("%s: no packets simulated", q)
		}
	}
	var e ErrorResponse
	if code := getJSON(t, ts.URL+"/v1/simulate?f=11&d=5&router=bogus", &e); code != http.StatusBadRequest {
		t.Fatalf("bogus router: status %d", code)
	}
}

func TestBroadcastAndHamiltonErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	var e ErrorResponse
	if code := getJSON(t, ts.URL+"/v1/broadcast?f=11&d=4&root=0110", &e); code != http.StatusBadRequest {
		t.Fatalf("root containing factor: status %d", code)
	}
	var h HamiltonResponse
	if code := getJSON(t, ts.URL+"/v1/hamilton?f=11&d=3&cycle=true", &h); code != http.StatusOK {
		t.Fatalf("hamilton cycle: status %d", code)
	}
}

func TestWordParamValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	urls := []string{
		"/v1/route?f=11&d=4&src=01x0&dst=0000",             // bad characters
		"/v1/route?f=11&d=4&src=010&dst=0000",              // wrong length
		"/v1/route?f=11&d=4&dst=0000",                      // missing src
		"/v1/count?f=" + strings.Repeat("10", 20) + "&d=4", // factor over MaxFactorLen
		"/v1/count?f=&d=4",                                 // empty factor
	}
	for _, u := range urls {
		var e ErrorResponse
		if code := getJSON(t, ts.URL+u, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, code)
		}
	}
}

// Config.withDefaults clamps and fills every knob.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Addr == "" || c.Workers < 1 || c.JobTimeout <= 0 || c.MaxBuildDim < 1 {
		t.Fatalf("unfilled defaults: %+v", c)
	}
	if got := (Config{MaxBuildDim: 99}).withDefaults().MaxBuildDim; got != 30 {
		t.Fatalf("MaxBuildDim clamped to %d, want 30", got)
	}
}

// Server lifecycle: ListenAndServe on a real port, then graceful Shutdown.
func TestServerLifecycle(t *testing.T) {
	s := mustNew(t, Config{Addr: "127.0.0.1:0"})
	if s.Addr() != "127.0.0.1:0" {
		t.Fatalf("Addr = %q", s.Addr())
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe() }()
	time.Sleep(50 * time.Millisecond) // let the listener come up
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("ListenAndServe returned %v, want ErrServerClosed", err)
	}
}
