package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fuzzReq is the payload for FuzzBatcher submissions.
type fuzzReq struct {
	lane int
	val  int
}

// fuzzOracle is the serial reference the batch exec must reproduce for
// every request, regardless of how arrivals were coalesced.
func fuzzOracle(lane, val int) int { return lane*1000 + val }

// FuzzBatcher throws random arrival patterns, lane spreads, batch-size /
// queue-limit configurations, cancellations, and an optional mid-stream
// Close at the Batcher, and checks that every submission either resolves
// to the serial-oracle value or fails with one of the documented errors.
// The race detector (make fuzz-smoke runs per-target `go test -fuzz`)
// covers the coalescing paths: window expiry, full-batch flush, overflow
// shedding, and shutdown drain.
func FuzzBatcher(f *testing.F) {
	f.Add(uint8(2), uint8(4), false, []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), uint8(1), false, []byte{0x80, 0x41, 0x80, 0x41})
	f.Add(uint8(7), uint8(2), true, []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Add(uint8(33), uint8(0), false, []byte{})
	f.Fuzz(func(t *testing.T, rawBatch, rawQueue uint8, closeMidway bool, data []byte) {
		cfg := BatcherConfig{
			BatchSize:  int(rawBatch%8) + 1,
			QueueLimit: int(rawQueue%16) + 1,
			MaxWait:    200 * time.Microsecond,
			IdleAfter:  50 * time.Millisecond,
		}
		b := NewBatcher(cfg, nil)
		exec := func(items []*BatchItem) {
			for _, it := range items {
				if err := it.Ctx.Err(); err != nil {
					it.Resolve(nil, err)
					continue
				}
				req := it.Req.(fuzzReq)
				it.Resolve(fuzzOracle(req.lane, req.val), nil)
			}
		}

		if len(data) > 64 {
			data = data[:64]
		}
		var wg sync.WaitGroup
		for i, raw := range data {
			lane := int(raw) % 3
			val := int(raw&0x7f) + i // distinct per submission within a lane
			canceled := raw&0x80 != 0
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := context.Background()
				if canceled {
					c, cancel := context.WithCancel(ctx)
					cancel() // canceled before (or while) queued
					ctx = c
				}
				got, flight, err := b.Submit(ctx, "fuzz", fmt.Sprintf("fuzz|%d", lane),
					fuzzReq{lane: lane, val: val}, exec)
				switch {
				case err == nil:
					if got != fuzzOracle(lane, val) {
						t.Errorf("lane %d val %d: got %v, want %d", lane, val, got, fuzzOracle(lane, val))
					}
					if flight.BatchSize < 1 || flight.BatchSize > cfg.BatchSize {
						t.Errorf("batch size %d outside [1, %d]", flight.BatchSize, cfg.BatchSize)
					}
				case errors.Is(err, ErrBatchQueueFull),
					errors.Is(err, ErrBatcherClosed),
					errors.Is(err, context.Canceled):
					// Documented outcomes under load, shutdown, or cancellation.
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		if closeMidway {
			b.Close() // races the submissions; they see served or ErrBatcherClosed
		}
		wg.Wait()
		b.Close()
		if _, _, err := b.Submit(context.Background(), "fuzz", "fuzz|0", fuzzReq{}, exec); !errors.Is(err, ErrBatcherClosed) {
			t.Errorf("Submit after Close: err = %v, want ErrBatcherClosed", err)
		}
	})
}
