package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoExec resolves every live item with its own request value — the
// identity executor used by the unit tests. Items canceled mid-queue are
// resolved with their context error, mirroring the real exec functions.
func echoExec(items []*BatchItem) {
	for _, it := range items {
		if err := it.Ctx.Err(); err != nil {
			it.Resolve(nil, err)
			continue
		}
		it.Resolve(it.Req, nil)
	}
}

func TestBatcherCoalescesConcurrentSubmits(t *testing.T) {
	b := NewBatcher(BatcherConfig{BatchSize: 8, MaxWait: 5 * time.Millisecond}, nil)
	defer b.Close()

	const n = 32
	var wg sync.WaitGroup
	var maxBatch atomic.Int64
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, fl, err := b.Submit(context.Background(), "op", "lane", i, echoExec)
			errs[i] = err
			if err == nil && v.(int) != i {
				errs[i] = fmt.Errorf("got %v, want %d", v, i)
			}
			if int64(fl.BatchSize) > maxBatch.Load() {
				maxBatch.Store(int64(fl.BatchSize))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if maxBatch.Load() < 2 {
		t.Errorf("no coalescing observed: max batch size %d, want >= 2", maxBatch.Load())
	}
}

func TestBatcherMaxWaitFlushesPartialBatch(t *testing.T) {
	// BatchSize far above the submitted count: only the MaxWait window can
	// flush the batch.
	b := NewBatcher(BatcherConfig{BatchSize: 64, MaxWait: 2 * time.Millisecond}, nil)
	defer b.Close()

	start := time.Now()
	var wg sync.WaitGroup
	sizes := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, fl, err := b.Submit(context.Background(), "op", "lane", i, echoExec)
			if err != nil || v.(int) != i {
				t.Errorf("submit %d: v=%v err=%v", i, v, err)
			}
			sizes[i] = fl.BatchSize
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("partial batch took %v; MaxWait expiry did not flush", elapsed)
	}
	for i, sz := range sizes {
		if sz < 1 || sz > 3 {
			t.Errorf("item %d rode batch of size %d, want 1..3", i, sz)
		}
	}
}

func TestBatcherSingleRequestFastPath(t *testing.T) {
	b := NewBatcher(BatcherConfig{BatchSize: 32, MaxWait: time.Millisecond}, nil)
	defer b.Close()

	start := time.Now()
	v, fl, err := b.Submit(context.Background(), "op", "lane", 42, echoExec)
	if err != nil || v.(int) != 42 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if fl.BatchSize != 1 {
		t.Errorf("lone request rode batch of size %d, want 1", fl.BatchSize)
	}
	// A lone request pays at most the MaxWait window (plus scheduling
	// slack), never an unbounded wait for followers that are not coming.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("lone request took %v, want ~MaxWait", elapsed)
	}
}

func TestBatcherBatchSizeOneSkipsWindow(t *testing.T) {
	b := NewBatcher(BatcherConfig{BatchSize: 1, MaxWait: time.Hour}, nil)
	defer b.Close()
	v, fl, err := b.Submit(context.Background(), "op", "lane", 7, echoExec)
	if err != nil || v.(int) != 7 || fl.BatchSize != 1 {
		t.Fatalf("v=%v fl=%+v err=%v", v, fl, err)
	}
}

func TestBatcherQueueOverflowSheds(t *testing.T) {
	release := make(chan struct{})
	slow := func(items []*BatchItem) {
		<-release
		echoExec(items)
	}
	b := NewBatcher(BatcherConfig{BatchSize: 1, MaxWait: time.Millisecond, QueueLimit: 2}, nil)
	defer b.Close()

	// First submit occupies the dispatcher (blocked in slow); the next two
	// fill the queue; everything beyond must shed.
	var wg sync.WaitGroup
	errsCh := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := b.Submit(context.Background(), "op", "lane", i, slow)
			errsCh <- err
		}(i)
	}
	// Give the flood time to pile up, then release the executor.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errsCh)

	shed, served := 0, 0
	for err := range errsCh {
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrBatchQueueFull):
			shed++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed == 0 {
		t.Error("no submissions shed despite QueueLimit=2 and 8 concurrent submits")
	}
	if served == 0 {
		t.Error("every submission shed; queue admitted nothing")
	}
}

func TestBatcherShedMapsTo503WithRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, ErrBatchQueueFull)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("503 shed response missing Retry-After header")
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Message == "" {
		t.Fatalf("shed body not an ErrorResponse: %v (%s)", err, rec.Body.String())
	}
	if e.Error.Code != CodeOverloaded {
		t.Errorf("shed error code %q, want %q", e.Error.Code, CodeOverloaded)
	}
	if e.Error.RetryAfterMs <= 0 {
		t.Errorf("shed error missing retry_after_ms: %+v", e.Error)
	}

	rec = httptest.NewRecorder()
	writeError(rec, ErrBatcherClosed)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("batcher-closed: status=%d retry-after=%q, want 503 + header", rec.Code, rec.Header().Get("Retry-After"))
	}
}

func TestBatcherCanceledItemDoesNotPoisonBatch(t *testing.T) {
	// Hold the dispatcher on a first sacrificial batch so follow-up items
	// queue; cancel one of them while queued.
	release := make(chan struct{})
	gate := func(items []*BatchItem) {
		<-release
		echoExec(items)
	}
	b := NewBatcher(BatcherConfig{BatchSize: 4, MaxWait: time.Millisecond, QueueLimit: 16}, nil)
	defer b.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := b.Submit(context.Background(), "op", "lane", -1, gate); err != nil {
			t.Errorf("sacrificial submit: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // dispatcher now blocked in gate

	ctx, cancel := context.WithCancel(context.Background())
	results := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			itemCtx := context.Background()
			if i == 2 {
				itemCtx = ctx
			}
			v, _, err := b.Submit(itemCtx, "op", "lane", i, gate)
			if err == nil && v.(int) != i {
				err = fmt.Errorf("cross-wired result: got %v want %d", v, i)
			}
			results[i] = err
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // all four queued behind the gate
	cancel()                          // item 2 canceled while queued
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range results {
		if i == 2 {
			if !errors.Is(err, context.Canceled) {
				t.Errorf("canceled item: err = %v, want context.Canceled", err)
			}
			continue
		}
		if err != nil {
			t.Errorf("item %d poisoned by neighbor's cancellation: %v", i, err)
		}
	}
}

func TestBatcherCloseDrainsQueuedItems(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	var once sync.Once
	slow := func(items []*BatchItem) {
		once.Do(func() {
			started <- struct{}{}
			<-release
		})
		echoExec(items)
	}
	b := NewBatcher(BatcherConfig{BatchSize: 2, MaxWait: time.Millisecond, QueueLimit: 32}, nil)

	const n = 10
	var wg sync.WaitGroup
	errs := make([]error, n)
	submit := func(i int) {
		defer wg.Done()
		v, _, err := b.Submit(context.Background(), "op", "lane", i, slow)
		if err == nil && v.(int) != i {
			err = fmt.Errorf("got %v want %d", v, i)
		}
		errs[i] = err
	}
	wg.Add(1)
	go submit(0)
	<-started // first batch executing; followers will queue behind it
	for i := 1; i < n; i++ {
		wg.Add(1)
		go submit(i)
	}
	// Let the followers reach the lane queue (the dispatcher is blocked, so
	// they cannot be served yet) before shutting down.
	time.Sleep(100 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	<-closed

	for i, err := range errs {
		if err != nil {
			t.Errorf("queued item %d not drained on Close: %v", i, err)
		}
	}
	if _, _, err := b.Submit(context.Background(), "op", "lane", 99, slow); !errors.Is(err, ErrBatcherClosed) {
		t.Errorf("submit after Close: err = %v, want ErrBatcherClosed", err)
	}
	// Close is idempotent.
	b.Close()
}

func TestBatcherLaneRetiresWhenIdle(t *testing.T) {
	b := NewBatcher(BatcherConfig{BatchSize: 4, MaxWait: time.Millisecond, IdleAfter: 20 * time.Millisecond}, nil)
	defer b.Close()

	if _, _, err := b.Submit(context.Background(), "op", "lane", 1, echoExec); err != nil {
		t.Fatal(err)
	}
	if got := b.Lanes(); got != 1 {
		t.Fatalf("lanes after submit = %d, want 1", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Lanes() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle lane never retired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A retired lane is recreated transparently.
	if v, _, err := b.Submit(context.Background(), "op", "lane", 2, echoExec); err != nil || v.(int) != 2 {
		t.Fatalf("submit after retirement: v=%v err=%v", v, err)
	}
}

func TestServerShutdownClosesBatcher(t *testing.T) {
	s := mustNew(t, Config{Workers: 2})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	_, _, err := s.batcher.Submit(context.Background(), "rank", "lane", 0, echoExec)
	if !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("submit after shutdown: err = %v, want ErrBatcherClosed", err)
	}
}

// TestBatchedEndpointsMatchSoloPath drives the batched endpoints on two
// servers — batching on and off — and requires byte-identical payloads
// (modulo the Elapsed timing field), so coalescing can never change an
// answer.
func TestBatchedEndpointsMatchSoloPath(t *testing.T) {
	batched := httptest.NewServer(mustNew(t, Config{Workers: 4, JobTimeout: time.Minute}).Handler())
	defer batched.Close()
	solo := httptest.NewServer(mustNew(t, Config{Workers: 4, JobTimeout: time.Minute, BatchDisabled: true}).Handler())
	defer solo.Close()

	queries := []string{
		"/v1/rank?f=11&d=10&w=0101010101",
		"/v1/rank?f=11&d=10&w=1010101010",
		"/v1/unrank?f=11&d=10&r=0",
		"/v1/unrank?f=11&d=10&r=143",
		"/v1/neighbors?f=11&d=8&w=01010101",
		"/v1/count?f=11&d=10",
		"/v1/count?f=00&d=10",
		"/v1/count?f=101&d=200",
		"/v1/route?f=11&d=10&src=0000000000&dst=0101010101",
		"/v1/rank?f=11&d=10&w=1100000000", // contains the factor: 400
		"/v1/unrank?f=11&d=10&r=144",      // out of range: 400
	}
	strip := func(body []byte) string {
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("bad json: %v (%s)", err, body)
		}
		delete(m, "elapsed")
		delete(m, "cached")
		out, _ := json.Marshal(m)
		return string(out)
	}
	for _, q := range queries {
		get := func(base string) (int, string) {
			resp, err := http.Get(base + q)
			if err != nil {
				t.Fatalf("GET %s: %v", q, err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, strip(body)
		}
		bCode, bBody := get(batched.URL)
		sCode, sBody := get(solo.URL)
		if bCode != sCode {
			t.Errorf("%s: batched status %d, solo status %d", q, bCode, sCode)
		}
		if bBody != sBody {
			t.Errorf("%s:\n  batched: %s\n  solo:    %s", q, bBody, sBody)
		}
	}
}

// TestCountCanonicalClassSharesCache verifies the canonicalization hoist:
// counts are keyed by the complement/reversal class, so f=11 and its
// complement f=00 share one cache entry while each response still echoes
// the factor the client asked about.
func TestCountCanonicalClassSharesCache(t *testing.T) {
	ts, _ := newTestServer(t)
	var first, second CountResponse
	if code := getJSON(t, ts.URL+"/v1/count?f=11&d=12", &first); code != http.StatusOK {
		t.Fatalf("first status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/count?f=00&d=12", &second); code != http.StatusOK {
		t.Fatalf("second status %d", code)
	}
	if !second.Cached {
		t.Error("complement factor missed the canonical-class cache entry")
	}
	if first.Factor != "11" || second.Factor != "00" {
		t.Errorf("factor echo broken: %q, %q", first.Factor, second.Factor)
	}
	if first.V != second.V || first.E != second.E || first.S != second.S {
		t.Errorf("class invariance broken: %+v vs %+v", first, second)
	}
}

// TestBatchedHammer floods one (d, f) class with concurrent addressing
// traffic and checks every answer, plus that the metrics actually saw
// multi-request batches.
func TestBatchedHammer(t *testing.T) {
	s := mustNew(t, Config{Workers: 4, JobTimeout: time.Minute, CacheCapacity: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := i % 144
			var resp UnrankResponse
			url := fmt.Sprintf("%s/v1/unrank?f=11&d=10&r=%d", ts.URL, r)
			if code := getJSON(t, url, &resp); code != http.StatusOK {
				t.Errorf("rank %d: status %d", r, code)
				return
			}
			if resp.Rank != fmt.Sprint(r) || resp.Order != "144" {
				t.Errorf("rank %d: got %+v", r, resp)
			}
		}(i)
	}
	wg.Wait()
	batches, items, _ := s.metrics.BatchTotals()
	if items == 0 || batches == 0 {
		t.Fatalf("hammer produced no batched traffic: batches=%d items=%d", batches, items)
	}
	body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, `gfc_batched_requests_total{op="unrank"}`) {
		t.Error("/metrics missing unrank batch counters")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
