package service

import (
	"container/list"
	"context"
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// ErrFlightPanicked is delivered to singleflight waiters whose leader's
// computation panicked; the panic itself propagates on the leader's
// goroutine.
var ErrFlightPanicked = errors.New("service: in-flight computation panicked")

// Cache is a sharded LRU result cache with singleflight deduplication:
// concurrent Do calls for the same key block on one computation instead of
// repeating it. Keys are hashed to shards so unrelated requests never
// contend on the same mutex. Successful results are cached; errors are not,
// so a failed or cancelled computation can be retried.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flightCall
}

type cacheEntry struct {
	key string
	val any
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns a cache with the given shard count and per-shard LRU
// capacity. Both are clamped to at least 1.
func NewCache(shards, capacityPerShard int) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capacityPerShard < 1 {
		capacityPerShard = 1
	}
	c := &Cache{shards: make([]cacheShard, shards), seed: maphash.MakeSeed()}
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = capacityPerShard
		s.items = make(map[string]*list.Element)
		s.order = list.New()
		s.inflight = make(map[string]*flightCall)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a value, evicting the least recently used entry when the shard
// is full.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(key, val)
}

func (s *cacheShard) put(key string, val any) {
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, val: val})
	for s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
}

// Do returns the cached value for key, or computes it with fn, deduplicating
// concurrent calls: while one caller (the leader) runs fn, followers for the
// same key wait for its result instead of recomputing. cached reports
// whether the value was served without running fn in this call (an LRU hit
// or a joined flight).
//
// fn runs with the leader's context; a follower whose own ctx is done stops
// waiting and returns ctx.Err() while the leader keeps computing. A leader
// error is propagated to every waiter and nothing is cached, so the next
// call retries.
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, cached bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, true, nil
	}
	if call, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-call.done:
			return call.val, true, call.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c.misses.Add(1)
	call := &flightCall{done: make(chan struct{})}
	s.inflight[key] = call
	s.mu.Unlock()

	// The flight must be torn down even if fn panics: otherwise the stale
	// inflight entry would block every future Do for this key forever. On
	// panic the waiters get an error and the panic propagates to the leader.
	finished := false
	defer func() {
		if !finished {
			call.val, call.err = nil, ErrFlightPanicked
		}
		s.mu.Lock()
		delete(s.inflight, key)
		if call.err == nil {
			s.put(key, call.val)
		}
		s.mu.Unlock()
		close(call.done)
	}()
	call.val, call.err = fn(ctx)
	finished = true
	return call.val, false, call.err
}

// Len returns the total number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns cumulative hit and miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
