package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrPoolSaturated is returned when a job cannot acquire a worker slot
// before its context expires.
var ErrPoolSaturated = errors.New("service: worker pool saturated")

// Pool bounds the number of heavy computations running at once. Jobs run on
// the caller's goroutine after acquiring one of a fixed number of slots, so
// back-pressure is exerted directly on the HTTP handler: when every slot is
// busy, new jobs wait until one frees or their context expires. Every job
// additionally runs under a per-job timeout so a pathological input cannot
// hold a slot forever.
type Pool struct {
	slots      chan struct{}
	jobTimeout time.Duration

	inFlight   atomic.Int64
	completed  atomic.Uint64
	rejected   atomic.Uint64
	totalNanos atomic.Int64
}

// NewPool returns a pool with the given number of slots and per-job timeout.
// workers is clamped to at least 1; timeout <= 0 disables the per-job
// deadline.
func NewPool(workers int, timeout time.Duration) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers), jobTimeout: timeout}
}

// Run executes fn under a worker slot and the pool's per-job timeout.
// It returns ErrPoolSaturated (wrapping the context error) when no slot
// frees before ctx is done.
func (p *Pool) Run(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.rejected.Add(1)
		return nil, errors.Join(ErrPoolSaturated, ctx.Err())
	}
	defer func() { <-p.slots }()

	if p.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.jobTimeout)
		defer cancel()
	}

	p.inFlight.Add(1)
	start := time.Now()
	val, err := fn(ctx)
	p.totalNanos.Add(int64(time.Since(start)))
	p.inFlight.Add(-1)
	p.completed.Add(1)
	return val, err
}

// Workers returns the slot count.
func (p *Pool) Workers() int { return cap(p.slots) }

// InFlight returns the number of jobs currently executing.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// Completed returns the number of jobs that finished (successfully or not).
func (p *Pool) Completed() uint64 { return p.completed.Load() }

// Rejected returns the number of jobs that never got a slot.
func (p *Pool) Rejected() uint64 { return p.rejected.Load() }

// AvgLatency returns the mean job execution time, zero when no job has
// completed.
func (p *Pool) AvgLatency() time.Duration {
	n := p.completed.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(p.totalNanos.Load() / int64(n))
}
