package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3, 0)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Run(context.Background(), func(context.Context) (any, error) {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil, nil
			})
			if err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs, pool bound is 3", got)
	}
	if got := p.Completed(); got != 24 {
		t.Fatalf("Completed = %d, want 24", got)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", got)
	}
}

func TestPoolJobTimeout(t *testing.T) {
	p := NewPool(1, 10*time.Millisecond)
	_, err := p.Run(context.Background(), func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if p.AvgLatency() <= 0 {
		t.Fatalf("AvgLatency = %v, want > 0 after a completed job", p.AvgLatency())
	}
}

func TestPoolSaturation(t *testing.T) {
	p := NewPool(1, 0)
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = p.Run(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-block
			return nil, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Run(ctx, func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("err = %v, want ErrPoolSaturated", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also wrap context.Canceled", err)
	}
	if got := p.Rejected(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	close(block)
}
