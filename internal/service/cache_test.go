package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetPutEviction(t *testing.T) {
	c := NewCache(1, 2) // one shard so eviction order is deterministic
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatalf("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestCachePutUpdatesExisting(t *testing.T) {
	c := NewCache(1, 2)
	c.Put("a", 1)
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want 2", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestCacheDoComputesOnceThenHits(t *testing.T) {
	c := NewCache(4, 8)
	var calls atomic.Int64
	fn := func(context.Context) (any, error) {
		calls.Add(1)
		return "value", nil
	}
	v, cached, err := c.Do(context.Background(), "k", fn)
	if err != nil || cached || v.(string) != "value" {
		t.Fatalf("first Do = %v, %v, %v; want value, false, nil", v, cached, err)
	}
	v, cached, err = c.Do(context.Background(), "k", fn)
	if err != nil || !cached || v.(string) != "value" {
		t.Fatalf("second Do = %v, %v, %v; want value, true, nil", v, cached, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestCacheDoSingleflight(t *testing.T) {
	c := NewCache(4, 8)
	const waiters = 32
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "shared", func(context.Context) (any, error) {
				calls.Add(1)
				<-release // hold the flight open until all goroutines have joined
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under concurrent identical requests, want 1", n)
	}
	for i, v := range results {
		if v.(int) != 42 {
			t.Fatalf("waiter %d got %v, want 42", i, v)
		}
	}
}

func TestCacheDoErrorNotCached(t *testing.T) {
	c := NewCache(1, 4)
	boom := errors.New("boom")
	var calls int
	fn := func(context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, cached, err := c.Do(context.Background(), "k", fn)
	if err != nil || cached || v.(string) != "ok" {
		t.Fatalf("retry Do = %v, %v, %v; want ok, false, nil (errors must not be cached)", v, cached, err)
	}
}

func TestCacheDoPanicDoesNotPoisonKey(t *testing.T) {
	c := NewCache(1, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic in fn must propagate to the leader")
			}
		}()
		_, _, _ = c.Do(context.Background(), "k", func(context.Context) (any, error) {
			panic("boom")
		})
	}()
	// The flight must have been torn down: a retry computes fresh instead of
	// blocking on the dead leader.
	v, cached, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "ok", nil
	})
	if err != nil || cached || v.(string) != "ok" {
		t.Fatalf("Do after panic = %v, %v, %v; want ok, false, nil", v, cached, err)
	}
}

func TestCacheDoFollowerCancellation(t *testing.T) {
	c := NewCache(1, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "slow", func(context.Context) (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "slow", func(context.Context) (any, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := NewCache(8, 16)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				v, _, err := c.Do(context.Background(), key, func(context.Context) (any, error) {
					return i % 32, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				_ = v
				c.Get(key)
				c.Len()
			}
		}(g)
	}
	wg.Wait()
}
