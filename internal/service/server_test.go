package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// mustNew builds a Server or fails the test; every config in this
// package's tests is expected to be valid.
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	s := mustNew(t, Config{Workers: 4, JobTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// getJSON fetches url and decodes the body into out, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
}

func TestCountEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	tests := []struct {
		f       string
		d       int
		v, e, s string
	}{
		// |V(Γ_10)| = F_12 = 144 (Fibonacci cube order).
		{"11", 10, "144", "", ""},
		// Q_5(1) keeps only 0^5.
		{"1", 5, "1", "0", "0"},
		{"11", 0, "1", "0", "0"},
	}
	for _, tc := range tests {
		var got CountResponse
		url := fmt.Sprintf("%s/v1/count?f=%s&d=%d", ts.URL, tc.f, tc.d)
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if got.V != tc.v {
			t.Errorf("count(%s, %d).V = %s, want %s", tc.f, tc.d, got.V, tc.v)
		}
		if tc.e != "" && got.E != tc.e {
			t.Errorf("count(%s, %d).E = %s, want %s", tc.f, tc.d, got.E, tc.e)
		}
		if tc.s != "" && got.S != tc.s {
			t.Errorf("count(%s, %d).S = %s, want %s", tc.f, tc.d, got.S, tc.s)
		}
	}

	// Cross-check a larger instance against the library directly.
	var got CountResponse
	getJSON(t, ts.URL+"/v1/count?f=110&d=40", &got)
	want := core.Count(40, bitstr.MustParse("110"))
	if got.V != want.V.String() || got.E != want.E.String() || got.S != want.S.String() {
		t.Errorf("count(110, 40) = %s/%s/%s, want %s/%s/%s",
			got.V, got.E, got.S, want.V, want.E, want.S)
	}
}

func TestCountCacheHit(t *testing.T) {
	ts, _ := newTestServer(t)
	url := ts.URL + "/v1/count?f=11&d=50"
	var first, second CountResponse
	getJSON(t, url, &first)
	getJSON(t, url, &second)
	if first.Cached {
		t.Fatalf("first request reported cached=true")
	}
	if !second.Cached {
		t.Fatalf("second identical request not served from cache")
	}
	if first.V != second.V || first.E != second.E || first.S != second.S {
		t.Fatalf("cached answer differs: %+v vs %+v", first, second)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	tests := []struct {
		f       string
		d       int
		verdict string
	}{
		{"11", 9, "isometric"},
		{"101", 4, "not isometric"},
		{"1100", 9, "not isometric"}, // Theorem 3.3(ii): isometric only up to d = 6
		{"1010", 12, "isometric"},    // Theorem 4.4
	}
	for _, tc := range tests {
		var got ClassifyResponse
		url := fmt.Sprintf("%s/v1/classify?f=%s&d=%d", ts.URL, tc.f, tc.d)
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if got.Verdict != tc.verdict {
			t.Errorf("classify(%s, %d) = %q (%s), want %q", tc.f, tc.d, got.Verdict, got.Reason, tc.verdict)
		}
		if got.Reason == "" {
			t.Errorf("classify(%s, %d): empty reason", tc.f, tc.d)
		}
		if got.Table1 == nil {
			t.Errorf("classify(%s, %d): missing Table 1 row for short factor", tc.f, tc.d)
		}
	}
	var got ClassifyResponse
	getJSON(t, ts.URL+"/v1/classify?f=101&d=4", &got)
	if got.Table1.Representative != "101" || got.Table1.UpTo != 3 {
		t.Errorf("Table1 row = %+v, want representative 101 up to d = 3", got.Table1)
	}
}

func TestIsometricEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var pos IsometricResponse
	getJSON(t, ts.URL+"/v1/isometric?f=11&d=7", &pos)
	if !pos.Isometric {
		t.Fatalf("Γ_7 must be isometric, got %+v", pos)
	}
	var neg IsometricResponse
	getJSON(t, ts.URL+"/v1/isometric?f=101&d=4", &neg)
	if neg.Isometric {
		t.Fatalf("Q_4(101) must not be isometric")
	}
	if neg.U == "" || neg.V == "" {
		t.Fatalf("negative answer must carry a witness pair, got %+v", neg)
	}
}

func TestFDimEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// dim_f(C_6) in Q_d(11): the 6-cycle embeds isometrically in some small
	// Fibonacci cube; the endpoint must find the minimal dimension.
	var got FDimResponse
	url := ts.URL + "/v1/fdim?f=11&graph=cycle&n=6&maxd=8"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if !got.Found {
		t.Fatalf("C_6 should embed by d = 8: %+v", got)
	}
	if got.Dim < 3 {
		t.Fatalf("dim_f(C_6) = %d is impossibly small", got.Dim)
	}
}

func TestRouteEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var word RouteResponse
	getJSON(t, ts.URL+"/v1/route?f=11&d=8&src=00000000&dst=10101010&router=word", &word)
	if !word.Delivered || word.Hops != 4 {
		t.Fatalf("word route = %+v, want delivered in 4 hops", word)
	}
	if len(word.Path) != 5 {
		t.Fatalf("path has %d vertices, want 5", len(word.Path))
	}
	if word.Stretch != 1 {
		t.Fatalf("stretch = %v, want 1 on an isometric cube", word.Stretch)
	}
	for _, router := range []string{"greedy", "oracle", "deroute"} {
		var got RouteResponse
		url := fmt.Sprintf("%s/v1/route?f=11&d=6&src=000000&dst=101010&router=%s", ts.URL, router)
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if !got.Delivered || got.Hops != 3 {
			t.Fatalf("%s route = %+v, want delivered in 3 hops", router, got)
		}
	}
}

func TestSimulateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got SimulateResponse
	url := ts.URL + "/v1/simulate?f=11&d=6&pattern=uniform&count=40&seed=7"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if got.Packets != 40 {
		t.Fatalf("packets = %d, want 40", got.Packets)
	}
	if got.Delivered != got.Packets || got.Stuck != 0 || got.Undelivered != 0 {
		t.Fatalf("greedy on isometric Γ_6 must deliver everything: %+v", got)
	}
}

func TestBroadcastEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got BroadcastResponse
	getJSON(t, ts.URL+"/v1/broadcast?f=11&d=5&root=00000", &got)
	// |V(Γ_5)| = F_7 = 13; the BFS tree reaches everyone with n-1 messages.
	if got.Nodes != 13 || got.Reached != 13 || got.Messages != 12 {
		t.Fatalf("broadcast = %+v, want 13 nodes reached with 12 messages", got)
	}
}

func TestHamiltonEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var got HamiltonResponse
	url := ts.URL + "/v1/hamilton?f=11&d=4"
	if code := getJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if got.Outcome != "found" {
		t.Fatalf("Γ_4 has a Hamiltonian path, got %+v", got)
	}
	if len(got.Order) != 8 { // F_6 = 8 vertices
		t.Fatalf("order has %d vertices, want 8", len(got.Order))
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	urls := []string{
		"/v1/count",                            // missing f
		"/v1/count?f=11",                       // missing d
		"/v1/count?f=2x&d=4",                   // not binary
		"/v1/count?f=11&d=-1",                  // negative d
		"/v1/count?f=11&d=200001",              // over MaxCountDim
		"/v1/isometric?f=11&d=25",              // over MaxBuildDim
		"/v1/route?f=11&d=4&src=0110&dst=0000", // src contains factor
		"/v1/route?f=11&d=4&src=0000&dst=0101&router=bogus",
		"/v1/simulate?f=11&d=4&pattern=bogus",
		"/v1/fdim?f=11&graph=bogus&n=4",
	}
	for _, u := range urls {
		var e ErrorResponse
		if code := getJSON(t, ts.URL+u, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", u, code, e.Error.Message)
		}
		if e.Error.Code != CodeBadRequest {
			t.Errorf("%s: error code %q, want %q", u, e.Error.Code, CodeBadRequest)
		}
		if e.Error.Message == "" {
			t.Errorf("%s: empty error message", u)
		}
	}
}

// TestConcurrentHammer fires many identical and mixed requests at the
// service from many goroutines; run with -race it demonstrates the cache,
// singleflight and pool are data-race free, and that every client observes
// the same answer.
func TestConcurrentHammer(t *testing.T) {
	ts, s := newTestServer(t)
	const goroutines = 32
	const iters = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	answers := make(map[string]struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var c CountResponse
				if code := getJSON(t, ts.URL+"/v1/count?f=11&d=64", &c); code != http.StatusOK {
					t.Errorf("count: status %d", code)
					return
				}
				mu.Lock()
				answers[c.V+"/"+c.E+"/"+c.S] = struct{}{}
				mu.Unlock()
				// Interleave other endpoints to exercise shard mixing.
				var cl ClassifyResponse
				if code := getJSON(t, fmt.Sprintf("%s/v1/classify?f=1100&d=%d", ts.URL, 7+i%3), &cl); code != http.StatusOK {
					t.Errorf("classify: status %d", code)
					return
				}
				var rr RouteResponse
				if code := getJSON(t, ts.URL+"/v1/route?f=11&d=8&src=00000000&dst=10101010&router=word", &rr); code != http.StatusOK {
					t.Errorf("route: status %d", code)
					return
				}
				if !rr.Delivered || rr.Hops != 4 {
					t.Errorf("route under load = %+v", rr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(answers) != 1 {
		t.Fatalf("concurrent clients observed %d distinct count answers: %v", len(answers), answers)
	}
	// |V(Γ_64)| = F_66.
	var c CountResponse
	getJSON(t, ts.URL+"/v1/count?f=11&d=64", &c)
	if want := core.Count(64, bitstr.MustParse("11")).V.String(); c.V != want {
		t.Fatalf("V = %s, want %s", c.V, want)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.CacheHits == 0 {
		t.Fatalf("hammer produced no cache hits: %+v", st)
	}
	if st.Requests == 0 || st.Workers != 4 {
		t.Fatalf("stats = %+v, want requests > 0 and 4 workers", st)
	}
	if st.CacheHitRate <= 0 || st.CacheHitRate > 1 {
		t.Fatalf("hit rate = %v out of (0, 1]", st.CacheHitRate)
	}
	_ = s
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	getJSON(t, ts.URL+"/v1/count?f=11&d=8", nil)
	getJSON(t, ts.URL+"/v1/count?f=11&d=8", nil)
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Requests != 2 {
		t.Errorf("requests = %d, want 2", st.Requests)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("cache stats = %d/%d, want 1 hit, 1 miss", st.CacheHits, st.CacheMisses)
	}
	if st.CompletedJobs != 1 {
		t.Errorf("completed jobs = %d, want 1 (second request was a cache hit)", st.CompletedJobs)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", st.UptimeSeconds)
	}
}
