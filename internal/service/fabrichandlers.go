package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"gfcube/internal/fabric"
)

// Fabric worker mode: gfc-serve hosts shard leases for a gfc-sweepd
// coordinator. The three routes speak the work-lease protocol defined by
// internal/fabric's wire types; lease execution itself happens on a
// fabric.Host sharing the server's artifact-store provider, so leased
// cells warm (and are warmed by) the same store as interactive traffic.
//
//	POST   /v1/fabric/lease            grant or renew a lease
//	GET    /v1/fabric/report?lease=ID&from=K&max=M
//	DELETE /v1/fabric/lease?lease=ID   revoke a lease
//
// Errors use the v1 envelope: an unknown lease is not_found, re-granting
// a live lease ID for a different shard is conflict, and a host at its
// lease cap is overloaded with a retry hint — which the coordinator's
// retry/backoff treats as transient.

// maxLeaseBody bounds the lease request body; a shard of MaxCells cells
// stays far below it.
const maxLeaseBody = 32 << 20

// fabricError maps fabric lease errors onto the v1 envelope.
func fabricError(err error) error {
	switch {
	case errors.Is(err, fabric.ErrLeaseNotFound):
		return &apiError{status: http.StatusNotFound, code: CodeNotFound, msg: err.Error()}
	case errors.Is(err, fabric.ErrLeaseConflict):
		return &apiError{status: http.StatusConflict, code: CodeConflict, msg: err.Error()}
	case errors.Is(err, fabric.ErrHostBusy):
		return &apiError{status: http.StatusServiceUnavailable, code: CodeOverloaded, msg: err.Error()}
	default:
		return badRequest("%v", err)
	}
}

// requireFabric returns the lease host, or not_found when worker mode is
// disabled.
func (s *Server) requireFabric() (*fabric.Host, error) {
	if s.fabric == nil {
		return nil, notFound("fabric worker mode is disabled")
	}
	return s.fabric, nil
}

// handleFabricLease grants or renews a lease (POST). Re-posting a live
// lease ID with the same spec and cell count extends its deadline and
// restarts nothing, so coordinator renewals are idempotent.
func (s *Server) handleFabricLease(w http.ResponseWriter, r *http.Request) error {
	h, err := s.requireFabric()
	if err != nil {
		return err
	}
	var req fabric.LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLeaseBody)).Decode(&req); err != nil {
		return badRequest("invalid lease request: %v", err)
	}
	state, err := h.Start(req.Spec, req.LeaseID, req.Cells, time.Duration(req.TTLMs)*time.Millisecond)
	if err != nil {
		return fabricError(err)
	}
	writeJSON(w, http.StatusOK, fabric.LeaseResponse{
		LeaseID:    state.LeaseID,
		Total:      state.Total,
		Renewed:    state.Renewed,
		DeadlineMs: state.Deadline.UnixMilli(),
	})
	return nil
}

// handleFabricCancel revokes a lease (DELETE). Compute stops; results
// already produced stay fetchable for the host's grace period.
func (s *Server) handleFabricCancel(w http.ResponseWriter, r *http.Request) error {
	h, err := s.requireFabric()
	if err != nil {
		return err
	}
	id := r.URL.Query().Get("lease")
	if id == "" {
		return badRequest("missing lease parameter")
	}
	if err := h.Cancel(id); err != nil {
		return fabricError(err)
	}
	writeJSON(w, http.StatusOK, fabric.CancelResponse{LeaseID: id, Canceled: true})
	return nil
}

// handleFabricReport streams completed cells from the report cursor.
func (s *Server) handleFabricReport(w http.ResponseWriter, r *http.Request) error {
	h, err := s.requireFabric()
	if err != nil {
		return err
	}
	id := r.URL.Query().Get("lease")
	if id == "" {
		return badRequest("missing lease parameter")
	}
	from, err := parseIntParam(r, "from", 0, 0, 1<<30)
	if err != nil {
		return err
	}
	max, err := parseIntParam(r, "max", 0, 0, 1<<20)
	if err != nil {
		return err
	}
	chunk, err := h.Report(id, from, max)
	if err != nil {
		return fabricError(err)
	}
	resp := fabric.ReportResponse{
		LeaseID: chunk.LeaseID,
		From:    chunk.From,
		Next:    chunk.Next,
		Total:   chunk.Total,
		Done:    chunk.Done,
		Err:     chunk.Err,
	}
	for _, p := range chunk.Payloads {
		resp.Cells = append(resp.Cells, fabric.ReportWireCell{Payload: p})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
