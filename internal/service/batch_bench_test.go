package service

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

func randWord11(r *rand.Rand, d int) []byte {
	buf := make([]byte, d)
	for i := range buf {
		buf[i] = byte('0' + r.Intn(2))
		if i > 0 && buf[i-1] == '1' && buf[i] == '1' {
			buf[i] = '0'
		}
	}
	return buf
}

func benchRankHTTP(b *testing.B, disabled bool) {
	srv := mustNew(b, Config{Addr: ":0", MaxBuildDim: 12, BatchDisabled: disabled})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(42))
		for pb.Next() {
			resp, err := http.Get(fmt.Sprintf("%s/v1/rank?f=11&d=32&w=%s", ts.URL, randWord11(r, 32)))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}

func benchRankHandler(b *testing.B, disabled bool) {
	srv := mustNew(b, Config{Addr: ":0", MaxBuildDim: 12, BatchDisabled: disabled})
	h := srv.Handler()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(42))
		for pb.Next() {
			req := httptest.NewRequest("GET", fmt.Sprintf("/v1/rank?f=11&d=32&w=%s", randWord11(r, 32)), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
}

func BenchmarkRankHTTPBatched(b *testing.B)      { benchRankHTTP(b, false) }
func BenchmarkRankHTTPUnbatched(b *testing.B)    { benchRankHTTP(b, true) }
func BenchmarkRankHandlerBatched(b *testing.B)   { benchRankHandler(b, false) }
func BenchmarkRankHandlerUnbatched(b *testing.B) { benchRankHandler(b, true) }
