package service

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func TestRankUnrankEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	// Small instance, cross-checked against the explicit cube.
	c := core.New(8, bitstr.MustParse("11"))
	for i := int64(0); i < c.Order(); i += 5 {
		w, _ := c.UnrankWord(i)
		var rr RankResponse
		url := fmt.Sprintf("%s/v1/rank?f=11&d=8&w=%s", ts.URL, w)
		if code := getJSON(t, url, &rr); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if rr.Rank != fmt.Sprint(i) || rr.Backend != "implicit" {
			t.Fatalf("rank(%s) = %s backend %s, want %d/implicit", w, rr.Rank, rr.Backend, i)
		}
		var ur UnrankResponse
		url = fmt.Sprintf("%s/v1/unrank?f=11&d=8&r=%d", ts.URL, i)
		if code := getJSON(t, url, &ur); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if ur.Word != w.String() {
			t.Fatalf("unrank(%d) = %s, want %s", i, ur.Word, w)
		}
	}
}

func TestRankEndpointFullWidth(t *testing.T) {
	ts, _ := newTestServer(t)
	// d = 62 — ~10^13 vertices, no construction possible. Round-trip a
	// known address through both endpoints.
	var ur UnrankResponse
	url := ts.URL + "/v1/unrank?f=11&d=62&r=5303104928861"
	if code := getJSON(t, url, &ur); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if ur.Order != "10610209857723" {
		t.Fatalf("order = %s, want F_64 = 10610209857723", ur.Order)
	}
	var rr RankResponse
	url = fmt.Sprintf("%s/v1/rank?f=11&d=62&w=%s", ts.URL, ur.Word)
	if code := getJSON(t, url, &rr); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if rr.Rank != "5303104928861" {
		t.Fatalf("rank round-trip = %s, want 5303104928861", rr.Rank)
	}
}

func TestNeighborsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var nr NeighborsResponse
	url := ts.URL + "/v1/neighbors?f=11&d=6&w=010010"
	if code := getJSON(t, url, &nr); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	c := core.New(6, bitstr.MustParse("11"))
	wantDeg, _ := c.DegreeOf(bitstr.MustParse("010010"))
	if nr.Degree != wantDeg || len(nr.Neighbors) != wantDeg {
		t.Fatalf("degree = %d (%d neighbors), want %d", nr.Degree, len(nr.Neighbors), wantDeg)
	}
	// Every reported neighbor must match the explicit cube's ranks.
	for _, n := range nr.Neighbors {
		w := bitstr.MustParse(n.Word)
		rank, ok := c.RankWord(w)
		if !ok || fmt.Sprint(rank) != n.Rank {
			t.Fatalf("neighbor %s has rank %s, explicit %d/%v", n.Word, n.Rank, rank, ok)
		}
	}
	// Full-width neighbors work too.
	url = ts.URL + "/v1/neighbors?f=11&d=62&w=" + "01" + "0101010101010101010101010101010101010101010101010101010101" + "01"
	var big NeighborsResponse
	if code := getJSON(t, url, &big); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if big.Degree != len(big.Neighbors) || big.Degree == 0 {
		t.Fatalf("full-width degree = %d with %d neighbors", big.Degree, len(big.Neighbors))
	}
}

func TestAddressingEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, url := range []string{
		"/v1/rank?f=11&d=8&w=11000000",    // contains factor
		"/v1/rank?f=11&d=8&w=000",         // wrong length
		"/v1/rank?f=11&d=8",               // missing w
		"/v1/rank?f=11&d=63&w=0",          // d beyond MaxLen
		"/v1/unrank?f=11&d=8&r=-1",        // negative rank
		"/v1/unrank?f=11&d=8&r=55",        // out of range (F_10 = 55)
		"/v1/unrank?f=11&d=8&r=x",         // not a number
		"/v1/unrank?f=11&d=8",             // missing r
		"/v1/neighbors?f=11&d=6&w=110000", // not a vertex
		"/v1/neighbors?f=&d=6&w=000000",   // missing factor
	} {
		if code := getJSON(t, ts.URL+url, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, code)
		}
	}
}

func TestRouteEndpointImplicit(t *testing.T) {
	ts, _ := newTestServer(t)
	// Beyond MaxBuildDim (default 20): the word router serves d = 62 with
	// per-hop ranks and no construction.
	src := "00" + "0000000000000000000000000000000000000000000000000000000000" + "00"
	dst := "10" + "1010101010101010101010101010101010101010101010101010101010" + "10"
	var rr RouteResponse
	url := fmt.Sprintf("%s/v1/route?f=11&d=62&src=%s&dst=%s&router=word", ts.URL, src, dst)
	if code := getJSON(t, url, &rr); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if !rr.Delivered || rr.Backend != "implicit" {
		t.Fatalf("delivered=%v backend=%s, want true/implicit", rr.Delivered, rr.Backend)
	}
	if rr.Hops != 31 { // Hamming distance of the endpoints
		t.Fatalf("hops = %d, want 31", rr.Hops)
	}
	if len(rr.Path) != len(rr.Ranks) || len(rr.Path) != rr.Hops+1 {
		t.Fatalf("path/ranks lengths %d/%d, want %d", len(rr.Path), len(rr.Ranks), rr.Hops+1)
	}
	if rr.Ranks[0] != "0" {
		t.Fatalf("src rank = %s, want 0", rr.Ranks[0])
	}
	// Small-d word routes also report ranks that the explicit cube
	// confirms.
	var small RouteResponse
	url = ts.URL + "/v1/route?f=11&d=8&src=00000000&dst=10101010&router=word"
	if code := getJSON(t, url, &small); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	c := core.New(8, bitstr.MustParse("11"))
	for i, ws := range small.Path {
		rank, ok := c.RankWord(bitstr.MustParse(ws))
		if !ok || fmt.Sprint(rank) != small.Ranks[i] {
			t.Fatalf("hop %d: rank %s, explicit %d/%v", i, small.Ranks[i], rank, ok)
		}
	}
	// The cube-backed routers stay bounded by MaxBuildDim.
	if code := getJSON(t, ts.URL+"/v1/route?f=11&d=25&src=0&dst=0&router=greedy", nil); code != http.StatusBadRequest {
		t.Errorf("greedy router accepted d beyond MaxBuildDim: %d", code)
	}
	// And the word router rejects d beyond bitstr.MaxLen.
	if code := getJSON(t, ts.URL+"/v1/route?f=11&d=63&src=0&dst=0&router=word", nil); code != http.StatusBadRequest {
		t.Errorf("word router accepted d=63: %d", code)
	}
}

func TestCountBackendField(t *testing.T) {
	ts, _ := newTestServer(t)
	var small CountResponse
	getJSON(t, ts.URL+"/v1/count?f=11&d=40", &small)
	if small.Backend != "implicit+dp" {
		t.Fatalf("count d=40 backend = %q, want implicit+dp", small.Backend)
	}
	if small.V != "267914296" { // F_42
		t.Fatalf("count d=40 V = %s, want 267914296", small.V)
	}
	var large CountResponse
	getJSON(t, ts.URL+"/v1/count?f=11&d=100", &large)
	if large.Backend != "dp" {
		t.Fatalf("count d=100 backend = %q, want dp", large.Backend)
	}
}

func TestSweepDegreesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp SweepDegreesResponse
	url := ts.URL + "/v1/sweep/degrees?maxlen=2&maxd=6&workers=2"
	if code := getJSON(t, url, &resp); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if want := len(core.Classes(1, 2)) * 6; len(resp.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(resp.Cells), want)
	}
	s := core.NewScratch()
	for _, cell := range resp.Cells {
		c := s.Cube(context.Background(), cell.D, bitstr.MustParse(cell.Factor))
		if cell.Order != fmt.Sprint(c.Order()) {
			t.Fatalf("f=%s d=%d: order %s, explicit %d", cell.Factor, cell.D, cell.Order, c.Order())
		}
		mn, mx := c.DegreeStats()
		if cell.MinDeg != mn || cell.MaxDeg != mx {
			t.Fatalf("f=%s d=%d: degrees [%d,%d], explicit [%d,%d]",
				cell.Factor, cell.D, cell.MinDeg, cell.MaxDeg, mn, mx)
		}
	}
	// Bad grid bounds surface as 400s.
	if code := getJSON(t, ts.URL+"/v1/sweep/degrees?maxlen=9", nil); code != http.StatusBadRequest {
		t.Errorf("oversized maxlen accepted: %d", code)
	}
}
