package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/store"
)

func mustUnmarshal(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("decode: %v\nbody: %s", err, data)
	}
}

// testPack generates a small warm-start pack into the test's temp dir;
// the grid (|f| <= 2, d <= 5) keeps generation well under a second.
func testPack(t *testing.T) (string, store.Manifest) {
	t.Helper()
	dir := t.TempDir()
	man, err := store.Generate(dir, store.PackOptions{MinLen: 1, MaxLen: 2, MaxD: 5})
	if err != nil {
		t.Fatalf("generating test pack: %v", err)
	}
	return dir, man
}

// freeWord returns an f-free word of length d (rank 0 of Q_d(f)).
func freeWord(t *testing.T, f bitstr.Word, d int) string {
	t.Helper()
	w, ok := core.NewImplicit(d, f).UnrankWord(0)
	if !ok {
		t.Fatalf("Q_%d(%s) is empty", d, f)
	}
	return w.String()
}

// TestWarmPackServesWithZeroRebuilds is the warm-start acceptance test:
// a freshly started server mounted on a pack must answer one query per
// packed (f, d) class entirely from artifacts — store hits equal to the
// request count, zero computed backends — with every response
// attributing source "store".
func TestWarmPackServesWithZeroRebuilds(t *testing.T) {
	dir, man := testPack(t)
	s := mustNew(t, Config{Workers: 4, JobTimeout: time.Minute, WarmPack: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	requests := 0
	for n := man.MinLen; n <= man.MaxLen; n++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			f := bitstr.Word{Bits: bits, N: n}
			for d := 1; d <= man.MaxD; d++ {
				var resp RankResponse
				url := fmt.Sprintf("%s/v1/rank?f=%s&d=%d&w=%s", ts.URL, f, d, freeWord(t, f, d))
				if code := getJSON(t, url, &resp); code != http.StatusOK {
					t.Fatalf("rank %s d=%d: status %d", f, d, code)
				}
				if resp.Source != string(core.SourceStore) {
					t.Fatalf("rank %s d=%d: source %q, want store", f, d, resp.Source)
				}
				requests++
			}
		}
	}

	var admin StoreStatsResponse
	if code := getJSON(t, ts.URL+"/v1/admin/store", &admin); code != http.StatusOK {
		t.Fatalf("admin/store: status %d", code)
	}
	if admin.Computed != 0 {
		t.Errorf("warm server rebuilt %d backends, want 0", admin.Computed)
	}
	if admin.Hits != uint64(requests) {
		t.Errorf("store hits %d, want %d (one per packed class request)", admin.Hits, requests)
	}
	if admin.Corrupt != 0 || admin.Misses != 0 {
		t.Errorf("warm sweep recorded corrupt=%d misses=%d", admin.Corrupt, admin.Misses)
	}
	if admin.WarmPack == nil || admin.WarmPack.MaxD != man.MaxD {
		t.Errorf("admin warmPack = %+v, want mounted manifest", admin.WarmPack)
	}

	// /stats carries the same store section.
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	if st.Store == nil || st.Store.Hits != admin.Hits {
		t.Errorf("/stats store section = %+v, want hits %d", st.Store, admin.Hits)
	}
}

// The verdict sidecar preloads counts, classifications and isometry
// verdicts: requests for packed cells are cache hits attributed to the
// store, and their values agree with fresh computation.
func TestWarmPackVerdictCache(t *testing.T) {
	dir, man := testPack(t)
	s := mustNew(t, Config{Workers: 4, JobTimeout: time.Minute, WarmPack: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, cl := range core.Classes(man.MinLen, man.MaxLen) {
		rep := cl.Rep.String()
		for d := 1; d <= man.MaxD; d++ {
			var count CountResponse
			if code := getJSON(t, fmt.Sprintf("%s/v1/count?f=%s&d=%d", ts.URL, rep, d), &count); code != http.StatusOK {
				t.Fatalf("count %s d=%d: status %d", rep, d, code)
			}
			if !count.Cached || count.Source != string(core.SourceStore) {
				t.Errorf("count %s d=%d: cached=%v source=%q, want warm hit", rep, d, count.Cached, count.Source)
			}
			if bc := core.Count(d, cl.Rep); count.V != bc.V.String() {
				t.Errorf("count %s d=%d: V=%s, want %s", rep, d, count.V, bc.V)
			}
			var iso IsometricResponse
			if code := getJSON(t, fmt.Sprintf("%s/v1/isometric?f=%s&d=%d", ts.URL, rep, d), &iso); code != http.StatusOK {
				t.Fatalf("isometric %s d=%d: status %d", rep, d, code)
			}
			if !iso.Cached {
				t.Errorf("isometric %s d=%d missed the warm verdict cache", rep, d)
			}
			var cls ClassifyResponse
			if code := getJSON(t, fmt.Sprintf("%s/v1/classify?f=%s&d=%d", ts.URL, rep, d), &cls); code != http.StatusOK {
				t.Fatalf("classify %s d=%d: status %d", rep, d, code)
			}
			if !cls.Cached {
				t.Errorf("classify %s d=%d missed the warm verdict cache", rep, d)
			}
		}
	}
	// A non-canonical class member shares the count entry (class-invariant)
	// and still echoes its own factor.
	var count CountResponse
	if code := getJSON(t, ts.URL+"/v1/count?f=00&d=3", &count); code != http.StatusOK {
		t.Fatal("count for complement member failed")
	}
	if !count.Cached || count.Factor != "00" {
		t.Errorf("complement member: cached=%v factor=%q", count.Cached, count.Factor)
	}
}

// Source attribution on a store-less server: first resolution is
// computed, repeats come from the result cache.
func TestSourceFieldComputedThenCache(t *testing.T) {
	ts, _ := newTestServer(t)
	var first, second RankResponse
	url := ts.URL + "/v1/rank?f=11&d=10&w=0101010101"
	if code := getJSON(t, url, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Source != string(core.SourceComputed) {
		t.Errorf("first source %q, want computed", first.Source)
	}
	if code := getJSON(t, url, &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !second.Cached || second.Source != string(core.SourceCache) {
		t.Errorf("second: cached=%v source=%q, want cache hit", second.Cached, second.Source)
	}
}

// Admin warm: computes-and-stores on the first pass, loads on the
// second; input validation fails closed.
func TestAdminWarmEndpoint(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, JobTimeout: time.Minute, StoreDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, WarmResponse, ErrorResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/warm", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var warm WarmResponse
		var apiErr ErrorResponse
		buf := new(bytes.Buffer)
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			mustUnmarshal(t, buf.Bytes(), &warm)
		} else {
			mustUnmarshal(t, buf.Bytes(), &apiErr)
		}
		return resp.StatusCode, warm, apiErr
	}

	code, warm, _ := post(`{"factors":["11"],"minD":1,"maxD":4,"cubes":true}`)
	if code != http.StatusOK {
		t.Fatalf("warm: status %d", code)
	}
	if warm.Warmed != 8 || warm.Computed != 8 || warm.Store != 0 {
		t.Fatalf("cold warm pass: %+v, want 8 computed", warm)
	}
	code, warm, _ = post(`{"factors":["11"],"minD":1,"maxD":4,"cubes":true}`)
	if code != http.StatusOK || warm.Store != 8 || warm.Computed != 0 {
		t.Fatalf("second warm pass: status %d %+v, want 8 from store", code, warm)
	}

	for body, wantCode := range map[string]int{
		`{}`:                                   http.StatusBadRequest, // neither pack nor factors
		`{"pack":true}`:                        http.StatusNotFound,   // no pack mounted
		`not json`:                             http.StatusBadRequest,
		`{"factors":["2x"]}`:                   http.StatusBadRequest,
		`{"factors":[""]}`:                     http.StatusBadRequest,
		`{"factors":["11"],"minD":5,"maxD":2}`: http.StatusBadRequest,
	} {
		if code, _, apiErr := post(body); code != wantCode {
			t.Errorf("warm %q: status %d (%+v), want %d", body, code, apiErr, wantCode)
		}
	}
}

// The admin surface 404s with a stable error code when no store is
// configured, including under -store-disabled.
func TestAdminStoreDisabled(t *testing.T) {
	dir, _ := testPack(t)
	for name, cfg := range map[string]Config{
		"no store":       {Workers: 2, JobTimeout: time.Minute},
		"store disabled": {Workers: 2, JobTimeout: time.Minute, WarmPack: dir, StoreDisabled: true},
	} {
		ts := httptest.NewServer(mustNew(t, cfg).Handler())
		var e ErrorResponse
		if code := getJSON(t, ts.URL+"/v1/admin/store", &e); code != http.StatusNotFound {
			t.Errorf("%s: admin/store status %d, want 404", name, code)
		}
		if e.Error.Code != CodeNotFound {
			t.Errorf("%s: error code %q, want %q", name, e.Error.Code, CodeNotFound)
		}
		ts.Close()
	}
}

// A mounted pack that cannot be trusted is a startup error, not a
// silently degraded server.
func TestWarmPackStartupValidation(t *testing.T) {
	if _, err := New(Config{WarmPack: t.TempDir()}); err == nil {
		t.Error("pack directory without a manifest accepted at startup")
	}
	if _, err := New(Config{WarmPack: "/nonexistent/pack"}); err == nil {
		t.Error("missing pack directory accepted at startup")
	}
}

// Store counters surface in the Prometheus exposition.
func TestMetricsExposeStore(t *testing.T) {
	dir, _ := testPack(t)
	s := mustNew(t, Config{Workers: 2, JobTimeout: time.Minute, WarmPack: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/v1/rank?f=11&d=4&w=0101", nil); code != http.StatusOK {
		t.Fatalf("rank: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"gfc_store_hits_total 1",
		"gfc_store_misses_total 0",
		"gfc_store_corrupt_total 0",
		"gfc_store_computed_total 0",
		"gfc_store_pack_artifacts",
		"gfc_store_resident 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
