package service

import (
	"gfcube/internal/fabric"
	"gfcube/internal/store"
	"gfcube/internal/sweep"
)

// Response envelopes for the JSON API. Exact counts are decimal strings
// because |V(Q_d(f))| overflows every fixed-width integer long before the
// dimensions the transfer-matrix DP handles.

// ErrorBody is the error object of the v1 error envelope. Code is one of
// the stable machine-readable codes in errors.go (bad_request, not_found,
// overloaded, timeout, canceled, internal); Message is human-readable and
// free to change. RetryAfterMs accompanies overloaded errors and mirrors
// the Retry-After header.
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// CountResponse reports exact vertex/edge/square counts of Q_d(f).
type CountResponse struct {
	Factor string `json:"factor"`
	D      int    `json:"d"`
	V      string `json:"v"`
	E      string `json:"e"`
	S      string `json:"s"`
	// Backend is "implicit+dp" when d fits the implicit DFA-rank backend
	// (d <= 62), whose uint64 tables independently confirm |V|; "dp" when
	// only the arbitrary-dimension big-int DP applies.
	Backend string `json:"backend"`
	// Source reports where the answer came from: "computed" (built this
	// request), "store" (loaded from a disk artifact or the warm pack) or
	// "cache" (served from the in-memory result cache).
	Source  string `json:"source"`
	Cached  bool   `json:"cached"`
	Elapsed string `json:"elapsed"`
}

// RankResponse reports the DFA-rank address of one vertex word. Ranks and
// orders are decimal strings: they reach 2^62, beyond exact float64 JSON
// integers.
type RankResponse struct {
	Factor  string `json:"factor"`
	D       int    `json:"d"`
	Word    string `json:"word"`
	Rank    string `json:"rank"`
	Order   string `json:"order"`
	Backend string `json:"backend"`
	Source  string `json:"source"` // computed | store | cache
	Cached  bool   `json:"cached"`
	Elapsed string `json:"elapsed"`
}

// UnrankResponse reports the vertex word at one rank.
type UnrankResponse struct {
	Factor  string `json:"factor"`
	D       int    `json:"d"`
	Rank    string `json:"rank"`
	Word    string `json:"word"`
	Order   string `json:"order"`
	Backend string `json:"backend"`
	Source  string `json:"source"` // computed | store | cache
	Cached  bool   `json:"cached"`
	Elapsed string `json:"elapsed"`
}

// Neighbor is one adjacent vertex, rank-addressed.
type Neighbor struct {
	Rank string `json:"rank"`
	Word string `json:"word"`
}

// NeighborsResponse reports the adjacency list of one vertex in
// flip-position order.
type NeighborsResponse struct {
	Factor    string     `json:"factor"`
	D         int        `json:"d"`
	Word      string     `json:"word"`
	Degree    int        `json:"degree"`
	Neighbors []Neighbor `json:"neighbors"`
	Order     string     `json:"order"`
	Backend   string     `json:"backend"`
	Source    string     `json:"source"` // computed | store | cache
	Cached    bool       `json:"cached"`
	Elapsed   string     `json:"elapsed"`
}

// ClassifyResponse reports the paper's embeddability classification of
// (f, d), plus the Table 1 row covering f when |f| <= 5.
type ClassifyResponse struct {
	Factor  string      `json:"factor"`
	D       int         `json:"d"`
	Verdict string      `json:"verdict"`
	Reason  string      `json:"reason"`
	Table1  *Table1Info `json:"table1,omitempty"`
	Cached  bool        `json:"cached"`
	Elapsed string      `json:"elapsed"`
}

// Table1Info is the Table 1 row covering the factor's complement/reversal
// class.
type Table1Info struct {
	Representative string `json:"representative"`
	UpTo           int    `json:"upTo"` // -1 means isometric for every d
	Citation       string `json:"citation"`
}

// IsometricResponse reports an exact embeddability check on the explicitly
// constructed cube.
type IsometricResponse struct {
	Factor    string `json:"factor"`
	D         int    `json:"d"`
	Isometric bool   `json:"isometric"`
	// Witness of a violation for negative answers.
	U           string `json:"u,omitempty"`
	V           string `json:"v,omitempty"`
	CubeDist    int32  `json:"cubeDist,omitempty"`
	HammingDist int32  `json:"hammingDist,omitempty"`
	Cached      bool   `json:"cached"`
	Elapsed     string `json:"elapsed"`
}

// FDimResponse reports an f-dimension computation for a standard guest
// graph.
type FDimResponse struct {
	Factor  string `json:"factor"`
	Guest   string `json:"guest"`
	Dim     int    `json:"dim"`
	Found   bool   `json:"found"`
	MaxD    int    `json:"maxD"`
	Cached  bool   `json:"cached"`
	Elapsed string `json:"elapsed"`
}

// RouteResponse reports one routed path between two vertex words. For the
// word router Path and Ranks are parallel: Ranks[i] is the DFA-rank
// address of Path[i] (decimal string), and Backend reports "implicit" —
// the route is computed without any cube construction at any d <= 62.
type RouteResponse struct {
	Factor    string   `json:"factor"`
	D         int      `json:"d"`
	Src       string   `json:"src"`
	Dst       string   `json:"dst"`
	Router    string   `json:"router"`
	Backend   string   `json:"backend"`
	Delivered bool     `json:"delivered"`
	Hops      int      `json:"hops"`
	Stretch   float64  `json:"stretch,omitempty"`
	Path      []string `json:"path,omitempty"`
	Ranks     []string `json:"ranks,omitempty"`
	Cached    bool     `json:"cached"`
	Elapsed   string   `json:"elapsed"`
}

// SimulateResponse reports a synchronous store-and-forward traffic run.
type SimulateResponse struct {
	Factor      string  `json:"factor"`
	D           int     `json:"d"`
	Pattern     string  `json:"pattern"`
	Router      string  `json:"router"`
	Seed        int64   `json:"seed"`
	Packets     int     `json:"packets"`
	Delivered   int     `json:"delivered"`
	Stuck       int     `json:"stuck"`
	Undelivered int     `json:"undelivered"`
	Rounds      int     `json:"rounds"`
	TotalHops   int     `json:"totalHops"`
	MaxHops     int     `json:"maxHops"`
	AvgLatency  float64 `json:"avgLatency"`
	MaxQueue    int     `json:"maxQueue"`
	Cached      bool    `json:"cached"`
	Elapsed     string  `json:"elapsed"`
}

// BroadcastResponse reports a one-to-all broadcast from a root vertex.
type BroadcastResponse struct {
	Factor   string `json:"factor"`
	D        int    `json:"d"`
	Root     string `json:"root"`
	Rounds   int    `json:"rounds"`
	Messages int    `json:"messages"`
	Reached  int    `json:"reached"`
	Nodes    int    `json:"nodes"`
	Cached   bool   `json:"cached"`
	Elapsed  string `json:"elapsed"`
}

// HamiltonResponse reports a bounded Hamiltonian path/cycle search.
type HamiltonResponse struct {
	Factor  string  `json:"factor"`
	D       int     `json:"d"`
	Cycle   bool    `json:"cycle"`
	Outcome string  `json:"outcome"` // found | none | inconclusive
	Order   []int32 `json:"order,omitempty"`
	Cached  bool    `json:"cached"`
	Elapsed string  `json:"elapsed"`
}

// SweepCell is one (factor class, d) cell of a classification grid.
type SweepCell struct {
	Factor    string `json:"factor"`    // canonical class representative
	ClassSize int    `json:"classSize"` // words sharing the verdict by symmetry
	D         int    `json:"d"`
	Isometric bool   `json:"isometric"`
	// Witness of a violation (or critical pair) for negative verdicts.
	U           string `json:"u,omitempty"`
	V           string `json:"v,omitempty"`
	CubeDist    int32  `json:"cubeDist,omitempty"`
	HammingDist int32  `json:"hammingDist,omitempty"`
}

// SweepClassifyResponse reports a full classification grid in deterministic
// order: classes shortest-first then by value, d ascending within a class.
type SweepClassifyResponse struct {
	MinLen  int         `json:"minLen"`
	MaxLen  int         `json:"maxLen"`
	MinD    int         `json:"minD"`
	MaxD    int         `json:"maxD"`
	Method  string      `json:"method"`
	Workers int         `json:"workers"`
	Cells   []SweepCell `json:"cells"`
	Cached  bool        `json:"cached"`
	Elapsed string      `json:"elapsed"`
}

// SweepSurveyRow is the first-failure summary of one factor class.
type SweepSurveyRow struct {
	Factor    string `json:"factor"`
	ClassSize int    `json:"classSize"`
	// FirstFail is the smallest d with a non-isometric verdict, 0 when the
	// class stays isometric ("good") up to maxd.
	FirstFail int    `json:"firstFail"`
	Theory    string `json:"theory"`
}

// SweepSurveyResponse reports a first-failure survey with the histogram
// printed by gfc-survey.
type SweepSurveyResponse struct {
	MinLen    int              `json:"minLen"`
	MaxLen    int              `json:"maxLen"`
	MaxD      int              `json:"maxD"`
	Method    string           `json:"method"`
	Workers   int              `json:"workers"`
	Rows      []SweepSurveyRow `json:"rows"`
	Good      int              `json:"good"`
	Histogram map[int]int      `json:"histogram"` // first-fail d -> classes
	Cached    bool             `json:"cached"`
	Elapsed   string           `json:"elapsed"`
}

// SweepCountRow is the counting sequence of one factor class; index d,
// decimal strings (the counts overflow fixed-width integers quickly).
type SweepCountRow struct {
	Factor    string   `json:"factor"`
	ClassSize int      `json:"classSize"`
	V         []string `json:"v"`
	E         []string `json:"e"`
	S         []string `json:"s"`
}

// SweepCountResponse reports counting sequences for a factor grid.
type SweepCountResponse struct {
	MinLen  int             `json:"minLen"`
	MaxLen  int             `json:"maxLen"`
	MaxD    int             `json:"maxD"`
	Workers int             `json:"workers"`
	Rows    []SweepCountRow `json:"rows"`
	Cached  bool            `json:"cached"`
	Elapsed string          `json:"elapsed"`
}

// SweepFDimRow is the f-dimension of the guest under one factor class.
type SweepFDimRow struct {
	Factor    string `json:"factor"`
	ClassSize int    `json:"classSize"`
	Dim       int    `json:"dim"`
	Found     bool   `json:"found"`
}

// SweepFDimResponse reports a guest graph's f-dimension across a factor
// grid, smallest dimension first.
type SweepFDimResponse struct {
	Guest   string         `json:"guest"`
	MinLen  int            `json:"minLen"`
	MaxLen  int            `json:"maxLen"`
	MaxD    int            `json:"maxD"`
	Workers int            `json:"workers"`
	Rows    []SweepFDimRow `json:"rows"`
	Cached  bool           `json:"cached"`
	Elapsed string         `json:"elapsed"`
}

// SweepDegreeCell is the order and degree profile of one (class, d) cell,
// computed on the implicit backend (no graph construction).
type SweepDegreeCell struct {
	Factor    string  `json:"factor"`
	ClassSize int     `json:"classSize"`
	D         int     `json:"d"`
	Order     string  `json:"order"`
	MinDeg    int     `json:"minDeg"`
	MaxDeg    int     `json:"maxDeg"`
	Dist      []int64 `json:"dist"` // index = degree
}

// SweepDegreesResponse reports a degree-profile grid in deterministic
// order: classes shortest-first then by value, d ascending.
type SweepDegreesResponse struct {
	MinLen  int               `json:"minLen"`
	MaxLen  int               `json:"maxLen"`
	MinD    int               `json:"minD"`
	MaxD    int               `json:"maxD"`
	Workers int               `json:"workers"`
	Cells   []SweepDegreeCell `json:"cells"`
	Cached  bool              `json:"cached"`
	Elapsed string            `json:"elapsed"`
}

// SweepWienerCell cross-checks the exact BFS Wiener index of one
// (class, d) cell against the closed-form Hamming sum. Values are decimal
// strings (they overflow fixed-width integers quickly).
type SweepWienerCell struct {
	Factor    string `json:"factor"`
	ClassSize int    `json:"classSize"`
	D         int    `json:"d"`
	Order     string `json:"order"`
	Connected bool   `json:"connected"`
	// Wiener is the exact shortest-path sum; WienerHamming the Hamming
	// lower bound; Match reports their equality on a connected cell.
	Wiener        string  `json:"wiener"`
	WienerHamming string  `json:"wienerHamming"`
	Match         bool    `json:"match"`
	MeanDist      float64 `json:"meanDist"`
}

// SweepWienerResponse reports a Wiener-index grid in deterministic order:
// classes shortest-first then by value, d ascending.
type SweepWienerResponse struct {
	MinLen  int               `json:"minLen"`
	MaxLen  int               `json:"maxLen"`
	MinD    int               `json:"minD"`
	MaxD    int               `json:"maxD"`
	Workers int               `json:"workers"`
	Cells   []SweepWienerCell `json:"cells"`
	Cached  bool              `json:"cached"`
	Elapsed string            `json:"elapsed"`
}

// SweepIsoClassesResponse reports the per-dimension iso-congruence
// partitions of a grid: for each d, how the canonical factor classes
// group under verified Hamming congruence of their cubes. Rows are in
// ascending d; member lists are in grid order, group leader first.
type SweepIsoClassesResponse struct {
	MinLen  int                 `json:"minLen"`
	MaxLen  int                 `json:"maxLen"`
	MinD    int                 `json:"minD"`
	MaxD    int                 `json:"maxD"`
	Rows    []sweep.IsoClassRow `json:"rows"`
	Cached  bool                `json:"cached"`
	Elapsed string              `json:"elapsed"`
}

// StatsResponse is the /stats ("metrics") payload.
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptimeSeconds"`
	Requests        uint64  `json:"requests"`
	Errors          uint64  `json:"errors"`
	CacheHits       uint64  `json:"cacheHits"`
	CacheMisses     uint64  `json:"cacheMisses"`
	CacheHitRate    float64 `json:"cacheHitRate"`
	CacheEntries    int     `json:"cacheEntries"`
	CubeCacheLen    int     `json:"cubeCacheEntries"`
	Workers         int     `json:"workers"`
	InFlightJobs    int64   `json:"inFlightJobs"`
	CompletedJobs   uint64  `json:"completedJobs"`
	RejectedJobs    uint64  `json:"rejectedJobs"`
	AvgJobLatencyMs float64 `json:"avgJobLatencyMs"`
	// Micro-batching front counters (see /metrics for the full
	// per-operation histograms).
	Batches         uint64 `json:"batches"`
	BatchedRequests uint64 `json:"batchedRequests"`
	BatchShed       uint64 `json:"batchShed"`
	BatchLanes      int    `json:"batchLanes"`
	// Sweep column-cache effectiveness (process-wide): cube constructions
	// served incrementally off a cached class column vs rebuilt from
	// scratch. See core.ColumnCounters.
	ColumnReuse   uint64 `json:"sweepColumnReuse"`
	ColumnRebuild uint64 `json:"sweepColumnRebuild"`
	// Iso-dedup effectiveness (process-wide): member cells whose compute
	// was elided by a congruence-group leader vs result copies delivered
	// by fan-out; the difference was recomputed for per-member witnesses.
	// See sweep.IsoCounters.
	IsoDedup  uint64 `json:"sweepIsoDedup"`
	IsoFanout uint64 `json:"sweepIsoFanout"`
	// Store is the artifact-store snapshot, absent when the store is
	// disabled.
	Store *StoreStatsResponse `json:"store,omitempty"`
	// Fabric is the worker-mode lease host snapshot, absent when fabric
	// worker mode is disabled.
	Fabric *fabric.HostStats `json:"fabric,omitempty"`
}

// StoreStatsResponse is the artifact-store section of /stats and the body
// of GET /v1/admin/store: the disk inventory and lifetime counters plus
// the provider's compute count and the mounted warm-pack manifest.
type StoreStatsResponse struct {
	store.Stats
	// Computed counts backends built from scratch (store misses and
	// corruption fallbacks); a pure warm start keeps it at zero.
	Computed uint64          `json:"computed"`
	WarmPack *store.Manifest `json:"warmPack,omitempty"`
}

// WarmRequest is the body of POST /v1/admin/warm. Either Pack requests
// preloading every artifact of the mounted warm pack, or Factors lists
// explicit forbidden factors to warm across dimensions [MinD, MaxD]
// (defaults 1..12). Cubes additionally warms explicit cube artifacts
// (bounded by the server's MaxBuildDim); rankers are always warmed.
type WarmRequest struct {
	Pack    bool     `json:"pack"`
	Factors []string `json:"factors"`
	MinD    int      `json:"minD"`
	MaxD    int      `json:"maxD"`
	Cubes   bool     `json:"cubes"`
}

// WarmResponse reports a warm run: how many (f, d) backends were
// resolved, split by where they came from.
type WarmResponse struct {
	Warmed   int    `json:"warmed"`
	Store    int    `json:"store"`
	Computed int    `json:"computed"`
	Elapsed  string `json:"elapsed"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
}
