package service

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestLatBucketIndexMonotonic(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{10 * time.Minute, latBucketCount - 1},
	}
	for _, tc := range cases {
		if got := latBucketIndex(tc.d); got != tc.want {
			t.Errorf("latBucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	prev := -1
	for d := time.Microsecond; d < time.Minute; d *= 2 {
		i := latBucketIndex(d)
		if i < prev {
			t.Fatalf("bucket index not monotonic at %v", d)
		}
		prev = i
	}
	if latBucketBound(0) != 1e-6 {
		t.Errorf("bucket 0 bound = %g, want 1e-6", latBucketBound(0))
	}
}

func TestWindowQuantiles(t *testing.T) {
	var w window
	if qs := w.quantiles(0.5); qs != nil {
		t.Fatalf("empty window quantiles = %v, want nil", qs)
	}
	for i := 1; i <= 100; i++ {
		w.record(time.Duration(i) * time.Millisecond)
	}
	qs := w.quantiles(0.0, 0.5, 0.99, 1.0)
	if qs[0] != time.Millisecond {
		t.Errorf("min = %v, want 1ms", qs[0])
	}
	if qs[1] < 45*time.Millisecond || qs[1] > 55*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", qs[1])
	}
	if qs[3] != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", qs[3])
	}
	// Overflow the ring: only the most recent windowSize samples remain.
	for i := 0; i < windowSize; i++ {
		w.record(time.Second)
	}
	qs = w.quantiles(0.0)
	if qs[0] != time.Second {
		t.Errorf("after overwrite min = %v, want 1s", qs[0])
	}
}

func TestStatusClass(t *testing.T) {
	for code, want := range map[int]int{200: 0, 204: 0, 400: 1, 404: 1, 499: 1, 500: 2, 503: 2, 504: 2} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %d, want %d", code, got, want)
		}
	}
}

func TestMetricsRecordAndRender(t *testing.T) {
	m := NewMetrics([]string{"/v1/rank"}, []string{"rank"})
	m.Record(&RequestSample{Endpoint: "/v1/rank", Code: 200, Latency: 3 * time.Millisecond, CacheHit: true})
	m.Record(&RequestSample{Endpoint: "/v1/rank", Code: 400, Latency: time.Millisecond})
	m.Record(&RequestSample{Endpoint: "/v1/rank", Code: 503, Latency: time.Millisecond})
	m.Record(&RequestSample{Endpoint: "/nope", Code: 200, Latency: time.Millisecond}) // dropped

	items := []*BatchItem{{wait: 100 * time.Microsecond}, {wait: 200 * time.Microsecond}}
	m.RecordBatch("rank", 3, items) // one rider canceled before dispatch
	m.RecordBatch("nope", 3, items) // dropped
	m.RecordShed("rank")
	m.RecordShed("nope") // dropped

	batches, n, shed := m.BatchTotals()
	if batches != 1 || n != 3 || shed != 1 {
		t.Fatalf("BatchTotals = (%d, %d, %d), want (1, 3, 1)", batches, n, shed)
	}

	out := m.Render(nil, nil, nil, nil, nil, nil)
	for _, want := range []string{
		`gfc_requests_total{endpoint="/v1/rank",code="2xx"} 1`,
		`gfc_requests_total{endpoint="/v1/rank",code="4xx"} 1`,
		`gfc_requests_total{endpoint="/v1/rank",code="5xx"} 1`,
		`gfc_request_duration_seconds_count{endpoint="/v1/rank"} 3`,
		`gfc_request_latency_seconds{endpoint="/v1/rank",quantile="0.5"}`,
		`gfc_request_latency_seconds{endpoint="/v1/rank",quantile="0.99"}`,
		`gfc_batches_total{op="rank"} 1`,
		`gfc_batched_requests_total{op="rank"} 3`,
		`gfc_batch_shed_total{op="rank"} 1`,
		`gfc_batch_occupancy_bucket{op="rank",le="4"} 1`,
		`gfc_batch_occupancy_bucket{op="rank",le="+Inf"} 1`,
		`gfc_batch_queue_wait_seconds_count{op="rank"} 2`,
		"gfc_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
}

func TestMetricsOccupancyBuckets(t *testing.T) {
	m := NewMetrics(nil, []string{"op"})
	for _, size := range []int{1, 2, 3, 8, 33, 1000} {
		m.RecordBatch("op", size, nil)
	}
	om := m.ops["op"]
	wantCounts := map[int]uint64{0: 1, 1: 1, 2: 1, 3: 1, 6: 1, len(occBuckets): 1}
	for slot, want := range wantCounts {
		if got := om.occupancy[slot].Load(); got != want {
			t.Errorf("occupancy slot %d = %d, want %d", slot, got, want)
		}
	}
}

func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	ts, _ := newTestServer(t)
	// Drive a little traffic so histograms render.
	var cr CountResponse
	if code := getJSON(t, ts.URL+"/v1/count?f=11&d=10", &cr); code != http.StatusOK {
		t.Fatalf("count status %d", code)
	}
	getJSON(t, ts.URL+"/v1/count?f=11&d=10", &cr) // cache hit
	getJSON(t, ts.URL+"/v1/rank?f=zz&d=4", nil)   // 400

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`gfc_requests_total{endpoint="/v1/count",code="2xx"} 2`,
		`gfc_requests_total{endpoint="/v1/rank",code="4xx"} 1`,
		`gfc_request_duration_seconds_bucket{endpoint="/v1/count"`,
		"gfc_cache_hits_total",
		"gfc_cache_hit_rate",
		"gfc_pool_workers",
		"gfc_batch_lanes",
		"# TYPE gfc_sweep_column_reuse_total counter",
		"# TYPE gfc_sweep_column_rebuild_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestStatusWriterForwardsFlush(t *testing.T) {
	rec := &flushRecorder{}
	sw := &statusWriter{ResponseWriter: rec}
	sw.WriteHeader(http.StatusTeapot)
	sw.WriteHeader(http.StatusOK) // first code wins
	if sw.code != http.StatusTeapot {
		t.Errorf("code = %d, want 418", sw.code)
	}
	sw.Flush()
	if !rec.flushed {
		t.Error("Flush not forwarded to the underlying writer")
	}
}

type flushRecorder struct {
	header  http.Header
	flushed bool
}

func (f *flushRecorder) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}
func (f *flushRecorder) Write(b []byte) (int, error) { return len(b), nil }
func (f *flushRecorder) WriteHeader(int)             {}
func (f *flushRecorder) Flush()                      { f.flushed = true }
