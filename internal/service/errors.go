package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// The v1 error envelope: every non-2xx reply is
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": N?}}
//
// with a stable machine-readable code. Clients branch on the code (and
// the HTTP status); the message is diagnostic text and free to change.
const (
	// CodeBadRequest: the request is malformed or out of the server's
	// configured bounds (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeNotFound: the addressed resource does not exist — e.g. the
	// artifact store is disabled, or no warm pack is mounted (HTTP 404).
	CodeNotFound = "not_found"
	// CodeOverloaded: the worker pool or batch queue shed the request;
	// retry after RetryAfterMs (HTTP 503).
	CodeOverloaded = "overloaded"
	// CodeTimeout: the job deadline fired before the computation finished
	// (HTTP 504).
	CodeTimeout = "timeout"
	// CodeCanceled: the client went away mid-request (HTTP 499).
	CodeCanceled = "canceled"
	// CodeConflict: the request names a resource that exists with
	// different content — e.g. re-granting a fabric lease ID for a
	// different shard (HTTP 409).
	CodeConflict = "conflict"
	// CodeInternal: everything else (HTTP 500).
	CodeInternal = "internal"
)

// apiError carries an HTTP status and a stable error code with a message.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, code: CodeNotFound, msg: fmt.Sprintf(format, args...)}
}

// classifyError maps err onto the envelope's status, code and optional
// retry hint. It is shared by writeError and by the sweep endpoints'
// terminal NDJSON error records, so streamed and unary failures carry the
// same machine-readable codes.
func classifyError(err error) (status int, code string, retryAfterMs int64) {
	status, code = http.StatusInternalServerError, CodeInternal
	var httpErr *apiError
	switch {
	case errors.As(err, &httpErr):
		status = httpErr.status
		code = httpErr.code
	case errors.Is(err, ErrBatchQueueFull), errors.Is(err, ErrBatcherClosed), errors.Is(err, ErrPoolSaturated):
		// Shed load is retryable: the queue drains in at most a few batch
		// windows, so tell well-behaved clients when to come back.
		status = http.StatusServiceUnavailable
		code = CodeOverloaded
		retryAfterMs = 1000
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		code = CodeTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
		code = CodeCanceled
	}
	return status, code, retryAfterMs
}

// writeError renders err as the v1 error envelope, mapping the service's
// sentinel errors onto statuses and codes.
func writeError(w http.ResponseWriter, err error) {
	status, code, retryAfterMs := classifyError(err)
	if retryAfterMs > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfterMs/1000, 10))
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{
		Code:         code,
		Message:      err.Error(),
		RetryAfterMs: retryAfterMs,
	}})
}
