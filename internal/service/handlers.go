package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/hamilton"
	"gfcube/internal/isometry"
	"gfcube/internal/network"
)

func elapsedSince(t time.Time) string { return time.Since(t).Round(time.Microsecond).String() }

// handleCount serves exact |V|, |E|, |S| of Q_d(f) via the transfer-matrix
// DP — no cube construction, so d may be large (far beyond MaxBuildDim).
// Up to d = bitstr.MaxLen the cached implicit backend independently
// recomputes |V| on its uint64 tables; a disagreement between the two
// pipelines is a server error, so every served count in that range is
// double-checked. Counts are invariant under the complement/reversal
// symmetry, so the cache key and the batch lane are the canonical class:
// concurrent requests anywhere in the class fuse into one DP run, and a
// whole class shares one cache entry.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 0, s.cfg.MaxCountDim)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("count|%s|%d", f.canon, d)
	v, cached, err := s.batched(r, "count", key, key, countReq{key: key},
		s.countExec(f, d, key),
		func(ctx context.Context) (any, error) {
			resp, err := s.countOne(ctx, f, d)
			if err != nil {
				return nil, err
			}
			return resp, nil
		})
	if err != nil {
		return err
	}
	resp := v.(CountResponse)
	resp.Factor = f.s // the canonical-class cache entry serves the whole class
	resp.Cached = cached
	if cached {
		resp.Source = cacheSource(resp.Source)
	}
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleClassify serves the paper's embeddability classification and the
// Table 1 row for the factor's symmetry class.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 0, 1<<30)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("classify|%s|%d", f.s, d)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		cl := core.Classify(f.w, d)
		resp := ClassifyResponse{
			Factor: f.s, D: d,
			Verdict: cl.Verdict.String(), Reason: cl.Reason,
		}
		if row, ok := core.Table1Lookup(f.w); ok {
			resp.Table1 = &Table1Info{
				Representative: row.Factor,
				UpTo:           row.UpTo,
				Citation:       row.Citation,
			}
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(ClassifyResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleIsometric serves the exact embeddability check on the explicitly
// constructed cube (critical-pair screen, then parallel BFS verification).
func (s *Server) handleIsometric(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 0, s.cfg.MaxBuildDim)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("iso|%s|%d", f.s, d)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		c, _, err := s.cube(ctx, f, d)
		if err != nil {
			return nil, err
		}
		res, err := c.IsIsometricQuickCtx(ctx)
		if err != nil {
			return nil, err
		}
		resp := IsometricResponse{Factor: f.s, D: d, Isometric: res.Isometric}
		if !res.Isometric {
			resp.U = res.U.String()
			resp.V = res.V.String()
			resp.CubeDist = res.CubeDist
			resp.HammingDist = res.HammingDist
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(IsometricResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// guestGraph builds the standard guest graphs of the Section 7 experiments.
func guestGraph(r *http.Request) (*graph.Graph, string, error) {
	kind := r.URL.Query().Get("graph")
	switch kind {
	case "path", "cycle", "star":
		n, err := parseIntParam(r, "n", -1, 1, 24)
		if err != nil {
			return nil, "", err
		}
		switch kind {
		case "path":
			return graph.Path(n), fmt.Sprintf("path(%d)", n), nil
		case "cycle":
			if n < 3 {
				return nil, "", badRequest("cycle requires n >= 3")
			}
			return graph.Cycle(n), fmt.Sprintf("cycle(%d)", n), nil
		default:
			return graph.Star(n), fmt.Sprintf("star(%d)", n), nil
		}
	case "grid":
		p, err := parseIntParam(r, "p", -1, 1, 6)
		if err != nil {
			return nil, "", err
		}
		q, err := parseIntParam(r, "q", -1, 1, 6)
		if err != nil {
			return nil, "", err
		}
		return graph.Grid(p, q), fmt.Sprintf("grid(%dx%d)", p, q), nil
	case "":
		return nil, "", badRequest("missing required parameter graph (path|cycle|star|grid)")
	default:
		return nil, "", badRequest("unknown graph kind %q (want path|cycle|star|grid)", kind)
	}
}

// handleFDim serves dim_f(G) for a standard guest graph G.
func (s *Server) handleFDim(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, err := s.parseFactor(r)
	if err != nil {
		return err
	}
	g, label, err := guestGraph(r)
	if err != nil {
		return err
	}
	maxD, err := parseIntParam(r, "maxd", 12, 1, s.cfg.MaxBuildDim)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("fdim|%s|%s|%d", f.s, label, maxD)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		res, err := isometry.FDimCtx(ctx, g, f.w, maxD)
		if err != nil {
			return nil, err
		}
		return FDimResponse{
			Factor: f.s, Guest: label,
			Dim: res.Dim, Found: res.Found, MaxD: maxD,
		}, nil
	})
	if err != nil {
		return err
	}
	resp := v.(FDimResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleRoute serves a single routed walk between two vertex words. The
// "word" router runs on the implicit DFA-rank backend — no cube
// construction, any dimension up to bitstr.MaxLen = 62, per-hop ranks in
// the trace; the cube-backed routers (greedy, oracle, deroute) build
// Q_d(f) and stay bounded by MaxBuildDim.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, err := s.parseFactor(r)
	if err != nil {
		return err
	}
	router := r.URL.Query().Get("router")
	if router == "" {
		router = "word"
	}
	maxBuild := s.cfg.MaxBuildDim
	maxD := maxBuild
	if router == "word" {
		maxD = bitstr.MaxLen
	}
	d, err := parseIntParam(r, "d", -1, 1, maxD)
	if err != nil {
		return err
	}
	src, err := parseWordParam(r, "src", d)
	if err != nil {
		return err
	}
	dst, err := parseWordParam(r, "dst", d)
	if err != nil {
		return err
	}
	if src.HasFactor(f.w) || dst.HasFactor(f.w) {
		return badRequest("src and dst must avoid the factor %s", f.s)
	}
	key := fmt.Sprintf("route|%s|%d|%s|%s|%s", f.s, d, router, src, dst)
	if router == "word" {
		// The word router is batch-native: one view resolution per lane
		// dispatch routes every rider.
		lane := fmt.Sprintf("route|%s|%d", f.s, d)
		v, cached, err := s.batched(r, "route", lane, key, routeReq{src: src, dst: dst, key: key},
			s.routeExec(f, d),
			func(ctx context.Context) (any, error) {
				view, _, err := s.implicitView(ctx, f, d)
				if err != nil {
					return nil, err
				}
				return wordRouteOne(network.NewViewRouter(view), f, d, src, dst), nil
			})
		if err != nil {
			return err
		}
		resp := v.(RouteResponse)
		resp.Cached = cached
		resp.Elapsed = elapsedSince(start)
		writeJSON(w, http.StatusOK, resp)
		return nil
	}
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		resp := RouteResponse{
			Factor: f.s, D: d,
			Src: src.String(), Dst: dst.String(), Router: router,
			Backend: "explicit",
		}
		c, _, err := s.cube(ctx, f, d)
		if err != nil {
			return nil, err
		}
		n := network.New(c)
		si, _ := c.Rank(src)
		di, _ := c.Rank(dst)
		var rr network.RouteResult
		switch router {
		case "greedy":
			rr = n.Route(network.NewGreedyRouter(n), si, di, 0)
		case "oracle":
			rr = n.Route(network.NewOracleRouter(n), si, di, 0)
		case "deroute":
			rr = network.NewDerouteRouter(n).RouteDeroute(si, di, 0)
		default:
			return nil, badRequest("unknown router %q (want word|greedy|oracle|deroute)", router)
		}
		resp.Delivered = rr.Delivered
		resp.Hops = rr.Hops
		resp.Stretch = rr.Stretch
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(RouteResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSimulate runs the synchronous store-and-forward simulator over a
// standard traffic pattern.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 1, s.cfg.MaxBuildDim)
	if err != nil {
		return err
	}
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		pattern = "uniform"
	}
	router := r.URL.Query().Get("router")
	if router == "" {
		router = "greedy"
	}
	count, err := parseIntParam(r, "count", 256, 1, 1<<16)
	if err != nil {
		return err
	}
	seed, err := parseIntParam(r, "seed", 1, 0, 1<<30)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("sim|%s|%d|%s|%s|%d|%d", f.s, d, pattern, router, count, seed)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		c, _, err := s.cube(ctx, f, d)
		if err != nil {
			return nil, err
		}
		n := network.New(c)
		if n.Size() == 0 {
			return nil, badRequest("Q_%d(%s) has no vertices", d, f.s)
		}
		var pairs [][2]int
		switch pattern {
		case "uniform":
			pairs = n.UniformPairs(count, int64(seed))
		case "permutation":
			pairs = n.PermutationPairs(int64(seed))
		case "hotspot":
			pairs = n.HotspotPairs(count, 0, 0.5, int64(seed))
		default:
			return nil, badRequest("unknown pattern %q (want uniform|permutation|hotspot)", pattern)
		}
		var rt network.Router
		switch router {
		case "greedy":
			rt = network.NewGreedyRouter(n)
		case "oracle":
			rt = network.NewOracleRouter(n)
		default:
			return nil, badRequest("unknown router %q (want greedy|oracle)", router)
		}
		res, err := n.SimulateCtx(ctx, network.MakePackets(pairs), rt, network.SimConfig{})
		if err != nil {
			return nil, err
		}
		return SimulateResponse{
			Factor: f.s, D: d, Pattern: pattern, Router: router, Seed: int64(seed),
			Packets: res.Packets, Delivered: res.Delivered, Stuck: res.Stuck,
			Undelivered: res.Undelivered, Rounds: res.Rounds,
			TotalHops: res.TotalHops, MaxHops: res.MaxHops,
			AvgLatency: res.AvgLatency, MaxQueue: res.MaxQueue,
		}, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SimulateResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleBroadcast runs a one-to-all BFS-tree broadcast from a root word.
func (s *Server) handleBroadcast(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, d, err := s.decodeFD(r, -1, 1, s.cfg.MaxBuildDim)
	if err != nil {
		return err
	}
	root, err := parseWordParam(r, "root", d)
	if err != nil {
		return err
	}
	if root.HasFactor(f.w) {
		return badRequest("root must avoid the factor %s", f.s)
	}
	key := fmt.Sprintf("bcast|%s|%d|%s", f.s, d, root)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		c, _, err := s.cube(ctx, f, d)
		if err != nil {
			return nil, err
		}
		n := network.New(c)
		ri, _ := c.Rank(root)
		res := n.Broadcast(ri)
		return BroadcastResponse{
			Factor: f.s, D: d, Root: root.String(),
			Rounds: res.Rounds, Messages: res.Messages,
			Reached: res.Reached, Nodes: n.Size(),
		}, nil
	})
	if err != nil {
		return err
	}
	resp := v.(BroadcastResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleHamilton runs the bounded Hamiltonian path/cycle search.
func (s *Server) handleHamilton(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	f, err := s.parseFactor(r)
	if err != nil {
		return err
	}
	maxD := s.cfg.MaxBuildDim
	if maxD > 18 {
		maxD = 18 // backtracking search; keep the state space sane
	}
	d, err := parseIntParam(r, "d", -1, 0, maxD)
	if err != nil {
		return err
	}
	cycle := r.URL.Query().Get("cycle") == "true"
	budget, err := parseIntParam(r, "budget", 0, 0, 1<<30)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("ham|%s|%d|%t|%d", f.s, d, cycle, budget)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		c, _, err := s.cube(ctx, f, d)
		if err != nil {
			return nil, err
		}
		var order []int32
		var res hamilton.Result
		if cycle {
			order, res = hamilton.CycleCtx(ctx, c.Graph(), int64(budget))
		} else {
			order, res = hamilton.PathCtx(ctx, c.Graph(), int64(budget))
		}
		// A Found/None verdict is valid even if the deadline fired on the
		// way out; only an Inconclusive caused by cancellation is an error.
		if res == hamilton.Inconclusive {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		return HamiltonResponse{
			Factor: f.s, D: d, Cycle: cycle,
			Outcome: res.String(), Order: order,
		}, nil
	})
	if err != nil {
		return err
	}
	resp := v.(HamiltonResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}
