package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"time"

	"gfcube/internal/core"
	"gfcube/internal/sweep"
)

// Batch ("sweep") endpoints: whole (d, f)-grid computations fanned across
// the sweep engine's worker pool. A sweep occupies one slot of the
// service's bounded job pool (so concurrent sweeps exert back-pressure like
// any heavy request) and parallelizes internally with its own workers;
// results are cached and singleflighted like every other endpoint, so a
// herd of clients asking for the same grid computes it once.

// maxSweepWorkers caps the per-request parallelism knob.
const maxSweepWorkers = 32

// parseSweepGrid parses the shared grid parameters of the sweep endpoints.
func (s *Server) parseSweepGrid(r *http.Request, maxLenCap, maxDCap int) (sweep.GridSpec, error) {
	var spec sweep.GridSpec
	maxLen, err := parseIntParam(r, "maxlen", 5, 1, maxLenCap)
	if err != nil {
		return spec, err
	}
	minLen, err := parseIntParam(r, "minlen", 1, 1, maxLen)
	if err != nil {
		return spec, err
	}
	maxD, err := parseIntParam(r, "maxd", 9, 1, maxDCap)
	if err != nil {
		return spec, err
	}
	minD, err := parseIntParam(r, "mind", 1, 1, maxD)
	if err != nil {
		return spec, err
	}
	method := core.MethodExact
	if raw := r.URL.Query().Get("method"); raw != "" {
		method, err = core.ParseMethod(raw)
		if err != nil {
			return spec, badRequest("%v", err)
		}
	}
	spec = sweep.GridSpec{MinLen: minLen, MaxLen: maxLen, MinD: minD, MaxD: maxD, Method: method}
	return spec, nil
}

// parseIsoDedup parses the optional iso parameter: iso=true runs the grid
// in iso-dedup mode (one compute per congruence group, fanned out to
// members — byte-identical output, see sweep.Options.IsoDedup).
func parseIsoDedup(r *http.Request) (bool, error) {
	switch raw := r.URL.Query().Get("iso"); raw {
	case "", "false":
		return false, nil
	case "true":
		return true, nil
	default:
		return false, badRequest("iso: %q is not a boolean (want true|false)", raw)
	}
}

// parseWorkers parses the optional workers parameter (0 = GOMAXPROCS,
// subject to the same cap as explicit values).
func parseWorkers(r *http.Request) (int, error) {
	w, err := parseIntParam(r, "workers", 0, 0, maxSweepWorkers)
	if err != nil {
		return 0, err
	}
	if w == 0 {
		if w = runtime.GOMAXPROCS(0); w > maxSweepWorkers {
			w = maxSweepWorkers
		}
	}
	return w, nil
}

func sweepCellJSON(c core.Cell) SweepCell {
	out := SweepCell{
		Factor:    c.Rep.String(),
		ClassSize: c.Size,
		D:         c.D,
		Isometric: c.Isometric,
	}
	if c.Witness != nil {
		out.U = c.Witness.U.String()
		out.V = c.Witness.V.String()
		out.CubeDist = c.Witness.CubeDist
		out.HammingDist = c.Witness.HammingDist
	}
	return out
}

// handleSweepClassify serves the full classification grid — the Table 1
// computation generalized to arbitrary bounds, deduplicated by the
// complement/reversal symmetry. With stream=true the cells are written as
// NDJSON in deterministic grid order as the engine emits them, bypassing
// the cache.
func (s *Server) handleSweepClassify(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	// Exact cell checks build Q_d(f) explicitly: keep d within the build cap
	// and factor length moderate (the class count doubles per length step).
	spec, err := s.parseSweepGrid(r, 8, min(s.cfg.MaxBuildDim, 14))
	if err != nil {
		return err
	}
	workers, err := parseWorkers(r)
	if err != nil {
		return err
	}
	isoDedup, err := parseIsoDedup(r)
	if err != nil {
		return err
	}
	if r.URL.Query().Get("stream") == "true" {
		// Streaming emits cells as the engine finishes them; iso fan-out
		// would have to buffer whole groups, so the stream path always
		// computes plainly (same bytes either way).
		return s.streamSweepClassify(w, r, spec, workers)
	}
	key := fmt.Sprintf("sweep/classify|%d|%d|%d|%d|%s|iso=%v", spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD, spec.Method, isoDedup)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		cells, err := sweep.ClassifyGrid(ctx, spec, sweep.Options{Workers: workers, IsoDedup: isoDedup})
		if err != nil {
			return nil, err
		}
		resp := SweepClassifyResponse{
			MinLen: spec.MinLen, MaxLen: spec.MaxLen,
			MinD: spec.MinD, MaxD: spec.MaxD,
			Method: spec.Method.String(),
			Cells:  make([]SweepCell, 0, len(cells)),
		}
		for _, c := range cells {
			resp.Cells = append(resp.Cells, sweepCellJSON(c))
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepClassifyResponse)
	resp.Workers = workers
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// streamSweepClassify writes one NDJSON line per grid cell, flushing as
// results arrive (in deterministic grid order). The sweep still runs under
// a pool slot and the per-job timeout.
func (s *Server) streamSweepClassify(w http.ResponseWriter, r *http.Request, spec sweep.GridSpec, workers int) error {
	tasks := sweep.CellTasks(spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD)
	_, err := s.pool.Run(r.Context(), func(ctx context.Context) (any, error) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		results := sweep.Stream(ctx, tasks, func(ctx context.Context, sc *core.Scratch, t sweep.Task) (any, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return core.ClassifyCell(ctx, sc, t.Class, t.D, spec.Method), nil
		}, sweep.Options{Workers: workers})
		for res := range results {
			if res.Err != nil {
				return nil, res.Err
			}
			if err := enc.Encode(sweepCellJSON(res.Value.(core.Cell))); err != nil {
				return nil, err
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return nil, ctx.Err()
	})
	if err != nil && errors.Is(err, ErrPoolSaturated) {
		return err // no bytes written yet: the client gets a proper 503
	}
	if err != nil {
		// Headers are already out, so the status cannot change; instead the
		// stream ends with a terminal error record carrying the same stable
		// code the v1 envelope would have used. Consumers distinguish a
		// complete sweep (all cell lines, no error line) from a failed one
		// (trailing {"error": ...} line) and from a torn transport
		// (truncated body, no error line).
		writeStreamError(w, err)
	}
	return nil
}

// writeStreamError appends the terminal NDJSON error record of a failed
// stream: an ErrorResponse envelope as the final line.
func writeStreamError(w http.ResponseWriter, err error) {
	_, code, retryAfterMs := classifyError(err)
	enc := json.NewEncoder(w)
	_ = enc.Encode(ErrorResponse{Error: ErrorBody{
		Code:         code,
		Message:      err.Error(),
		RetryAfterMs: retryAfterMs,
	}})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleSweepSurvey serves the first-failure survey: for each factor class,
// the smallest d at which Q_d(f) stops being isometric (0 = good up to
// maxd), with the per-dimension histogram reported by gfc-survey.
func (s *Server) handleSweepSurvey(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	spec, err := s.parseSweepGrid(r, 8, min(s.cfg.MaxBuildDim, 14))
	if err != nil {
		return err
	}
	workers, err := parseWorkers(r)
	if err != nil {
		return err
	}
	isoDedup, err := parseIsoDedup(r)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("sweep/survey|%d|%d|%d|%d|%s|iso=%v", spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD, spec.Method, isoDedup)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		rows, err := sweep.Survey(ctx, spec, sweep.Options{Workers: workers, IsoDedup: isoDedup})
		if err != nil {
			return nil, err
		}
		resp := SweepSurveyResponse{
			MinLen: spec.MinLen, MaxLen: spec.MaxLen, MaxD: spec.MaxD,
			Method:    spec.Method.String(),
			Rows:      make([]SweepSurveyRow, 0, len(rows)),
			Histogram: map[int]int{},
		}
		for _, row := range rows {
			resp.Rows = append(resp.Rows, SweepSurveyRow{
				Factor:    row.Class.Rep.String(),
				ClassSize: row.Class.Size,
				FirstFail: row.FirstFail,
				Theory:    row.Theory,
			})
			if row.FirstFail == 0 {
				resp.Good++
			} else {
				resp.Histogram[row.FirstFail]++
			}
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepSurveyResponse)
	resp.Workers = workers
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSweepCount serves counting sequences (exact |V|, |E|, |S| for
// d = 0..maxd via the transfer-matrix DP) for every factor class up to
// maxlen. No cube construction, so maxd may be much larger than the build
// cap.
func (s *Server) handleSweepCount(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	maxLen, err := parseIntParam(r, "maxlen", 4, 1, 8)
	if err != nil {
		return err
	}
	minLen, err := parseIntParam(r, "minlen", 1, 1, maxLen)
	if err != nil {
		return err
	}
	maxD, err := parseIntParam(r, "maxd", 30, 0, 400)
	if err != nil {
		return err
	}
	workers, err := parseWorkers(r)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("sweep/count|%d|%d|%d", minLen, maxLen, maxD)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		rows, err := sweep.CountGrid(ctx, minLen, maxLen, maxD, sweep.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		resp := SweepCountResponse{MinLen: minLen, MaxLen: maxLen, MaxD: maxD}
		for _, row := range rows {
			jr := SweepCountRow{Factor: row.Class.Rep.String(), ClassSize: row.Class.Size}
			for _, bc := range row.Seq {
				jr.V = append(jr.V, bc.V.String())
				jr.E = append(jr.E, bc.E.String())
				jr.S = append(jr.S, bc.S.String())
			}
			resp.Rows = append(resp.Rows, jr)
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepCountResponse)
	resp.Workers = workers
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSweepDegrees serves order and degree profiles — |V|, min/max
// degree and the full degree distribution — for every (class, d) cell.
// The cells run on the implicit DFA-rank backend: no graph is ever built,
// so the grid is bounded by enumeration cost rather than by MaxBuildDim.
func (s *Server) handleSweepDegrees(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	spec, err := s.parseSweepGrid(r, 8, 16)
	if err != nil {
		return err
	}
	workers, err := parseWorkers(r)
	if err != nil {
		return err
	}
	isoDedup, err := parseIsoDedup(r)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("sweep/degrees|%d|%d|%d|%d|iso=%v", spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD, isoDedup)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		cells, err := sweep.DegreeGrid(ctx, spec, sweep.Options{Workers: workers, IsoDedup: isoDedup})
		if err != nil {
			return nil, err
		}
		resp := SweepDegreesResponse{
			MinLen: spec.MinLen, MaxLen: spec.MaxLen,
			MinD: spec.MinD, MaxD: spec.MaxD,
			Cells: make([]SweepDegreeCell, 0, len(cells)),
		}
		for _, c := range cells {
			resp.Cells = append(resp.Cells, SweepDegreeCell{
				Factor:    c.Class.Rep.String(),
				ClassSize: c.Class.Size,
				D:         c.D,
				Order:     formatRank(c.Order),
				MinDeg:    c.MinDeg,
				MaxDeg:    c.MaxDeg,
				Dist:      c.Dist,
			})
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepDegreesResponse)
	resp.Workers = workers
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSweepWiener serves the Wiener-index cross-check grid: for every
// (class, d) cell, the exact BFS Wiener index of Q_d(f) (MS-BFS sweep of
// the explicit graph) next to the closed-form Hamming-distance sum, with
// the match verdict. On isometric cubes the two agree; on connected
// non-isometric ones the exact value is strictly larger.
func (s *Server) handleSweepWiener(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	// Exact cells build Q_d(f) explicitly and sweep all-pairs distances;
	// keep the grid within the classification bounds.
	spec, err := s.parseSweepGrid(r, 8, min(s.cfg.MaxBuildDim, 14))
	if err != nil {
		return err
	}
	workers, err := parseWorkers(r)
	if err != nil {
		return err
	}
	isoDedup, err := parseIsoDedup(r)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("sweep/wiener|%d|%d|%d|%d|iso=%v", spec.MinLen, spec.MaxLen, spec.MinD, spec.MaxD, isoDedup)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		cells, err := sweep.WienerGrid(ctx, spec, sweep.Options{Workers: workers, IsoDedup: isoDedup})
		if err != nil {
			return nil, err
		}
		resp := SweepWienerResponse{
			MinLen: spec.MinLen, MaxLen: spec.MaxLen,
			MinD: spec.MinD, MaxD: spec.MaxD,
			Cells: make([]SweepWienerCell, 0, len(cells)),
		}
		for _, c := range cells {
			resp.Cells = append(resp.Cells, SweepWienerCell{
				Factor:        c.Class.Rep.String(),
				ClassSize:     c.Class.Size,
				D:             c.D,
				Order:         formatRank(c.Order),
				Connected:     c.Connected,
				Wiener:        c.Wiener.String(),
				WienerHamming: c.WienerHamming.String(),
				Match:         c.Match,
				MeanDist:      c.MeanDist,
			})
		}
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepWienerResponse)
	resp.Workers = workers
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSweepIsoClasses serves the per-dimension congruence partitions of
// a grid: for each d, the canonical factor classes grouped by verified
// Hamming congruence of their Q_d(f) — the planning view behind iso=true
// sweeps. No cells are computed; bounds follow the verified census
// (maxlen <= 6, maxd <= 12).
func (s *Server) handleSweepIsoClasses(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	maxLen, err := parseIntParam(r, "maxlen", 5, 1, 6)
	if err != nil {
		return err
	}
	minLen, err := parseIntParam(r, "minlen", 1, 1, maxLen)
	if err != nil {
		return err
	}
	maxD, err := parseIntParam(r, "maxd", 9, 1, 12)
	if err != nil {
		return err
	}
	minD, err := parseIntParam(r, "mind", 1, 1, maxD)
	if err != nil {
		return err
	}
	spec := sweep.GridSpec{MinLen: minLen, MaxLen: maxLen, MinD: minD, MaxD: maxD}
	key := fmt.Sprintf("sweep/isoclasses|%d|%d|%d|%d", minLen, maxLen, minD, maxD)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		rows, err := sweep.IsoClassGrid(ctx, spec)
		if err != nil {
			return nil, err
		}
		return SweepIsoClassesResponse{
			MinLen: minLen, MaxLen: maxLen,
			MinD: minD, MaxD: maxD,
			Rows: rows,
		}, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepIsoClassesResponse)
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSweepFDim serves the f-dimension of one guest graph under every
// factor class up to maxlen (Section 7 batched over factors).
func (s *Server) handleSweepFDim(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	g, label, err := guestGraph(r)
	if err != nil {
		return err
	}
	maxLen, err := parseIntParam(r, "maxlen", 3, 1, 6)
	if err != nil {
		return err
	}
	minLen, err := parseIntParam(r, "minlen", 1, 1, maxLen)
	if err != nil {
		return err
	}
	maxD, err := parseIntParam(r, "maxd", 12, 1, s.cfg.MaxBuildDim)
	if err != nil {
		return err
	}
	workers, err := parseWorkers(r)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("sweep/fdim|%s|%d|%d|%d", label, minLen, maxLen, maxD)
	v, cached, err := s.compute(r.Context(), key, func(ctx context.Context) (any, error) {
		rows, err := sweep.FDimGrid(ctx, g, minLen, maxLen, maxD, sweep.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		resp := SweepFDimResponse{Guest: label, MinLen: minLen, MaxLen: maxLen, MaxD: maxD}
		for _, row := range rows {
			resp.Rows = append(resp.Rows, SweepFDimRow{
				Factor:    row.Class.Rep.String(),
				ClassSize: row.Class.Size,
				Dim:       row.Dim,
				Found:     row.Found,
			})
		}
		// Factors for which the guest has no f-dimension at all sort last;
		// within each group order by dimension then factor for readability.
		sort.SliceStable(resp.Rows, func(i, j int) bool {
			a, b := resp.Rows[i], resp.Rows[j]
			if a.Found != b.Found {
				return a.Found
			}
			if a.Dim != b.Dim {
				return a.Dim < b.Dim
			}
			return a.Factor < b.Factor
		})
		return resp, nil
	})
	if err != nil {
		return err
	}
	resp := v.(SweepFDimResponse)
	resp.Workers = workers
	resp.Cached = cached
	resp.Elapsed = elapsedSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}
