// Package service implements gfc-serve: an HTTP JSON API over the
// generalized-Fibonacci-cube library. The expensive computations — exact
// counting via the transfer-matrix DP, explicit cube construction, exact
// isometry checks, f-dimension search, routing and traffic simulation,
// Hamiltonian search — sit behind a sharded LRU result cache with
// singleflight deduplication and a bounded worker pool with per-request
// timeouts. The hot addressing endpoints additionally run behind a
// micro-batching front (see batcher.go) that fuses concurrent same-class
// traffic into single backend invocations, and every request is recorded
// into the lock-cheap aggregates served by /metrics (see metrics.go), so
// the service stays responsive and observable under concurrent load.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"gfcube/internal/core"
	"gfcube/internal/fabric"
	"gfcube/internal/store"
	"gfcube/internal/sweep"
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// Workers bounds concurrent heavy jobs (default GOMAXPROCS).
	Workers int
	// JobTimeout is the per-job compute deadline (default 30s).
	JobTimeout time.Duration
	// CacheShards and CacheCapacity size the result cache (defaults 16
	// shards x 256 entries).
	CacheShards   int
	CacheCapacity int
	// CubeCacheCapacity bounds the number of explicitly constructed cubes
	// kept in memory across requests (default 32 per shard, 4 shards).
	CubeCacheCapacity int
	// MaxBuildDim caps d for endpoints that construct Q_d(f) explicitly
	// (default 20; hard limit core.MaxBuildDim = 30). Addressing and word
	// routing are not bound by it: they run on the implicit DFA-rank
	// backend up to d = bitstr.MaxLen = 62.
	MaxBuildDim int
	// MaxCountDim caps d for the counting DP (default 100000).
	MaxCountDim int
	// MaxFactorLen caps |f| (default 24).
	MaxFactorLen int
	// Batch tunes the micro-batching front on the hot query endpoints
	// (/v1/rank, /v1/unrank, /v1/neighbors, /v1/count, word-router
	// /v1/route); see BatcherConfig for the knobs and defaults.
	Batch BatcherConfig
	// BatchDisabled turns the batching front off: every request computes
	// solo through the cache/singleflight/pool path (the pre-batching
	// behavior). Exists for A/B load comparisons.
	BatchDisabled bool
	// StoreDir is the read-write artifact store directory: cube and ranker
	// backends load from it when a valid artifact exists and write back
	// when computed. Empty (with no WarmPack) disables the store.
	StoreDir string
	// WarmPack mounts a read-only warm-start pack directory (built by
	// gfc-pack): its artifacts back the store read path and its verdict
	// sidecar is preloaded into the result cache at startup.
	WarmPack string
	// StoreMaxBytes caps StoreDir's size (see store.Config.MaxBytes).
	StoreMaxBytes int64
	// StoreDisabled forces pure-compute operation even when StoreDir or
	// WarmPack is set. Exists for cold/warm A/B load comparisons.
	StoreDisabled bool
	// FabricDisabled turns off worker mode: the /v1/fabric endpoints
	// answer 404 and no lease host is created.
	FabricDisabled bool
	// FabricWorkers bounds the sweep workers each fabric lease computes
	// with (default 1: parallelism comes from the coordinator leasing
	// many shards).
	FabricWorkers int
	// FabricMaxLeases bounds concurrently live leases (default 16).
	FabricMaxLeases int
	// FabricCellDelay pauses lease compute before every cell. Fault
	// injection for the fabric-gate CI job; zero in production.
	FabricCellDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 256
	}
	if c.CubeCacheCapacity <= 0 {
		c.CubeCacheCapacity = 32
	}
	if c.MaxBuildDim <= 0 {
		c.MaxBuildDim = 20
	}
	if c.MaxBuildDim > core.MaxBuildDim {
		c.MaxBuildDim = core.MaxBuildDim
	}
	if c.MaxCountDim <= 0 {
		c.MaxCountDim = 100000
	}
	if c.MaxFactorLen <= 0 {
		c.MaxFactorLen = 24
	}
	c.Batch = c.Batch.withDefaults()
	return c
}

// batchOps are the operations behind the micro-batching front; the list
// fixes the op label set of the batch metrics.
var batchOps = []string{"count", "neighbors", "rank", "route", "unrank"}

// endpointPaths are the instrumented routes; the list fixes the endpoint
// label set of the request metrics.
var endpointPaths = []string{
	"/v1/count", "/v1/rank", "/v1/unrank", "/v1/neighbors",
	"/v1/classify", "/v1/isometric", "/v1/fdim", "/v1/route",
	"/v1/simulate", "/v1/broadcast", "/v1/hamilton",
	"/v1/sweep/classify", "/v1/sweep/survey", "/v1/sweep/count",
	"/v1/sweep/fdim", "/v1/sweep/degrees", "/v1/sweep/wiener",
	"/v1/sweep/isoclasses",
	"/v1/fabric/lease", "/v1/fabric/report",
	"/v1/admin/store", "/v1/admin/warm",
}

// Server is the gfc-serve HTTP service.
type Server struct {
	cfg      Config
	cache    *Cache // JSON result cache
	cubes    *Cache // backend view cache (cubes + implicit rankers)
	pool     *Pool
	batcher  *Batcher        // nil when batching is disabled
	store    *store.Store    // nil when the store is disabled
	provider *store.Provider // never nil; degenerates to compute
	pack     *store.Manifest // mounted warm-pack manifest, nil without one
	fabric   *fabric.Host    // nil when worker mode is disabled
	metrics  *Metrics
	start    time.Time

	requests atomic.Uint64
	errors   atomic.Uint64

	http *http.Server
}

// New builds a Server from cfg (zero value accepted). It fails only on
// store configuration errors: an unreadable store directory, or a
// missing/corrupt warm-pack manifest or verdict sidecar — a mounted pack
// that cannot be trusted is a startup error, not something to limp past.
// Artifact-level corruption, in contrast, never fails anything: it falls
// back to compute at request time.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheShards, cfg.CacheCapacity),
		cubes:   NewCache(4, cfg.CubeCacheCapacity),
		pool:    NewPool(cfg.Workers, cfg.JobTimeout),
		metrics: NewMetrics(endpointPaths, batchOps),
		start:   time.Now(),
	}
	if !cfg.StoreDisabled && (cfg.StoreDir != "" || cfg.WarmPack != "") {
		st, err := store.Open(store.Config{Dir: cfg.StoreDir, PackDir: cfg.WarmPack, MaxBytes: cfg.StoreMaxBytes})
		if err != nil {
			return nil, err
		}
		s.store = st
		if cfg.WarmPack != "" {
			man, err := store.LoadManifest(cfg.WarmPack)
			if err != nil {
				return nil, err
			}
			s.pack = &man
			verdicts, err := store.LoadVerdicts(cfg.WarmPack)
			if err != nil {
				return nil, err
			}
			s.warmVerdicts(verdicts)
		}
	}
	s.provider = store.NewProvider(s.store)
	if !cfg.FabricDisabled {
		s.fabric = fabric.NewHost(fabric.HostConfig{
			Workers:   cfg.FabricWorkers,
			MaxLeases: cfg.FabricMaxLeases,
			Provider:  s.provider,
			CellDelay: cfg.FabricCellDelay,
		})
	}
	if !cfg.BatchDisabled {
		s.batcher = NewBatcher(cfg.Batch, s.metrics)
	}
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// Handler returns the route table; it is exported for tests and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/count", s.instrument("/v1/count", s.handleCount))
	mux.HandleFunc("GET /v1/rank", s.instrument("/v1/rank", s.handleRank))
	mux.HandleFunc("GET /v1/unrank", s.instrument("/v1/unrank", s.handleUnrank))
	mux.HandleFunc("GET /v1/neighbors", s.instrument("/v1/neighbors", s.handleNeighbors))
	mux.HandleFunc("GET /v1/classify", s.instrument("/v1/classify", s.handleClassify))
	mux.HandleFunc("GET /v1/isometric", s.instrument("/v1/isometric", s.handleIsometric))
	mux.HandleFunc("GET /v1/fdim", s.instrument("/v1/fdim", s.handleFDim))
	mux.HandleFunc("GET /v1/route", s.instrument("/v1/route", s.handleRoute))
	mux.HandleFunc("GET /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	mux.HandleFunc("GET /v1/broadcast", s.instrument("/v1/broadcast", s.handleBroadcast))
	mux.HandleFunc("GET /v1/hamilton", s.instrument("/v1/hamilton", s.handleHamilton))
	mux.HandleFunc("GET /v1/sweep/classify", s.instrument("/v1/sweep/classify", s.handleSweepClassify))
	mux.HandleFunc("GET /v1/sweep/survey", s.instrument("/v1/sweep/survey", s.handleSweepSurvey))
	mux.HandleFunc("GET /v1/sweep/count", s.instrument("/v1/sweep/count", s.handleSweepCount))
	mux.HandleFunc("GET /v1/sweep/fdim", s.instrument("/v1/sweep/fdim", s.handleSweepFDim))
	mux.HandleFunc("GET /v1/sweep/degrees", s.instrument("/v1/sweep/degrees", s.handleSweepDegrees))
	mux.HandleFunc("GET /v1/sweep/wiener", s.instrument("/v1/sweep/wiener", s.handleSweepWiener))
	mux.HandleFunc("GET /v1/sweep/isoclasses", s.instrument("/v1/sweep/isoclasses", s.handleSweepIsoClasses))
	mux.HandleFunc("POST /v1/fabric/lease", s.instrument("/v1/fabric/lease", s.handleFabricLease))
	mux.HandleFunc("DELETE /v1/fabric/lease", s.instrument("/v1/fabric/lease", s.handleFabricCancel))
	mux.HandleFunc("GET /v1/fabric/report", s.instrument("/v1/fabric/report", s.handleFabricReport))
	mux.HandleFunc("GET /v1/admin/store", s.instrument("/v1/admin/store", s.handleAdminStore))
	mux.HandleFunc("POST /v1/admin/warm", s.instrument("/v1/admin/warm", s.handleAdminWarm))
	return mux
}

// ListenAndServe runs the HTTP server until Shutdown or a listener error.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Shutdown drains in-flight requests and stops the server: first the HTTP
// listener (handlers blocked on batch lanes keep being served while they
// drain), then the batching front.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	if s.batcher != nil {
		s.batcher.Close()
	}
	if s.fabric != nil {
		s.fabric.Close()
	}
	return err
}

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// sampleKey carries the request's RequestSample through context so
// handlers can annotate batching/cache facts the middleware cannot see.
type sampleKey struct{}

func sampleFrom(ctx context.Context) *RequestSample {
	s, _ := ctx.Value(sampleKey{}).(*RequestSample)
	return s
}

// statusWriter captures the response status for the request metrics. It
// forwards Flush so the streaming sweep handlers still see a Flusher.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request/error accounting and the
// per-request metrics sample.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Add(1)
		sample := &RequestSample{Endpoint: endpoint}
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), sampleKey{}, sample))
		if err := h(sw, r); err != nil {
			s.errors.Add(1)
			writeError(sw, err)
		}
		sample.Code = sw.code
		if sample.Code == 0 {
			sample.Code = http.StatusOK
		}
		sample.Latency = time.Since(start)
		s.metrics.Record(sample)
	}
}

// compute runs fn behind the result cache (singleflight) and the worker
// pool, and reports whether the value came from cache. The computation is
// detached from the leader request's cancellation so that one client's
// disconnect cannot fail the deduplicated followers (and the finished
// result still lands in the cache); it stays bounded by a deadline covering
// slot acquisition plus the pool's own per-job timeout.
func (s *Server) compute(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, bool, error) {
	return s.cache.Do(ctx, key, func(ctx context.Context) (any, error) {
		detached := context.WithoutCancel(ctx)
		if s.cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			detached, cancel = context.WithTimeout(detached, 2*s.cfg.JobTimeout)
			defer cancel()
		}
		return s.pool.Run(detached, fn)
	})
}

// cubeEntry and implEntry pair a resolved backend with where the
// provider got it, so LRU-cached views keep reporting their provenance.
type cubeEntry struct {
	c   *core.Cube
	src core.Source
}

type implEntry struct {
	im  *core.Implicit
	src core.Source
}

// cube returns the explicitly constructed Q_d(f), resolving it through
// the artifact-store provider (load-or-compute) at most once per (f, d)
// across concurrent requests. The Source is "store" or "computed" when
// this call resolved the view, "cache" when the view LRU already held it.
func (s *Server) cube(ctx context.Context, f factorParam, d int) (*core.Cube, core.Source, error) {
	key := fmt.Sprintf("cube|%s|%d", f.s, d)
	v, cached, err := s.cubes.Do(ctx, key, func(ctx context.Context) (any, error) {
		c, src, err := s.provider.Cube(ctx, d, f.w)
		if err != nil {
			return nil, err
		}
		return cubeEntry{c: c, src: src}, nil
	})
	if err != nil {
		return nil, core.SourceComputed, err
	}
	e := v.(cubeEntry)
	if cached {
		return e.c, core.SourceCache, nil
	}
	return e.c, e.src, nil
}

// implicitView returns the implicit DFA-rank backend for Q_d(f),
// resolving its O(|f|·d) ranker tables through the artifact-store
// provider at most once per (f, d) across concurrent requests. The
// addressing endpoints (/v1/rank, /v1/unrank, /v1/neighbors) and word
// routing always use it — the tables are far cheaper than any explicit
// construction, the answers agree exactly with the explicit cube, and d
// may exceed MaxBuildDim all the way to bitstr.MaxLen. The tables share
// the LRU that caches constructed cubes; Source semantics match cube.
func (s *Server) implicitView(ctx context.Context, f factorParam, d int) (*core.Implicit, core.Source, error) {
	key := fmt.Sprintf("impl|%s|%d", f.s, d)
	v, cached, err := s.cubes.Do(ctx, key, func(ctx context.Context) (any, error) {
		im, src, err := s.provider.Implicit(ctx, d, f.w)
		if err != nil {
			return nil, err
		}
		return implEntry{im: im, src: src}, nil
	})
	if err != nil {
		return nil, core.SourceComputed, err
	}
	e := v.(implEntry)
	if cached {
		return e.im, core.SourceCache, nil
	}
	return e.im, e.src, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	batches, batched, shed := s.metrics.BatchTotals()
	colReuse, colRebuild := core.ColumnCounters()
	isoDedup, isoFanout := sweep.IsoCounters()
	lanes := 0
	if s.batcher != nil {
		lanes = s.batcher.Lanes()
	}
	resp := StatsResponse{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheHitRate:    rate,
		CacheEntries:    s.cache.Len(),
		CubeCacheLen:    s.cubes.Len(),
		Workers:         s.pool.Workers(),
		InFlightJobs:    s.pool.InFlight(),
		CompletedJobs:   s.pool.Completed(),
		RejectedJobs:    s.pool.Rejected(),
		AvgJobLatencyMs: float64(s.pool.AvgLatency()) / float64(time.Millisecond),
		Batches:         batches,
		BatchedRequests: batched,
		BatchShed:       shed,
		BatchLanes:      lanes,
		ColumnReuse:     colReuse,
		ColumnRebuild:   colRebuild,
		IsoDedup:        isoDedup,
		IsoFanout:       isoFanout,
	}
	if s.store != nil {
		resp.Store = &StoreStatsResponse{
			Stats:    s.store.Stats(),
			Computed: s.provider.Computed(),
			WarmPack: s.pack,
		}
	}
	if s.fabric != nil {
		fs := s.fabric.Stats()
		resp.Fabric = &fs
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
