package core

import (
	"gfcube/internal/bitstr"
)

// CriticalPair is a pair of p-critical words for Q_d(f) in the sense of
// Section 2: vertices b, c of Q_d(f) with Hamming distance p >= 2 such that
// none of the neighbors of b in the hypercube interval I(b,c) belongs to
// Q_d(f), or none of the neighbors of c in I(b,c) does. By Lemma 2.4 the
// existence of such a pair certifies Q_d(f) is not isometric in Q_d.
type CriticalPair struct {
	B, C bitstr.Word
	P    int
}

// FindCriticalPair searches for a p-critical pair and returns the first one
// found (scanning vertices in increasing packed order, positions
// lexicographically). ok is false if no p-critical pair exists.
func (c *Cube) FindCriticalPair(p int) (CriticalPair, bool) {
	pairs := c.findCritical(p, 1)
	if len(pairs) == 0 {
		return CriticalPair{}, false
	}
	return pairs[0], true
}

// CriticalPairs returns up to limit p-critical pairs (all of them if
// limit <= 0).
func (c *Cube) CriticalPairs(p, limit int) []CriticalPair {
	return c.findCritical(p, limit)
}

func (c *Cube) findCritical(p, limit int) []CriticalPair {
	if p < 2 {
		panic("core: critical pairs require p >= 2")
	}
	if p > c.d {
		return nil
	}
	var out []CriticalPair
	var rec func(start, k int, b, diff uint64) bool
	// blockedSide reports whether every neighbor of x in I(x, y) is missing
	// from the cube, where y = x ^ diff. The neighbors of x in the interval
	// are exactly the words x with one differing bit flipped.
	blockedSide := func(x, diff uint64) bool {
		for m := diff; m != 0; m &= m - 1 {
			if _, ok := c.rank(x ^ (m & -m)); ok {
				return false
			}
		}
		return true
	}
	var base uint64
	rec = func(start, k int, b, diff uint64) bool {
		if k == p {
			cBits := b ^ diff
			if _, ok := c.rank(cBits); !ok {
				return true
			}
			if blockedSide(b, diff) || blockedSide(cBits, diff) {
				out = append(out, CriticalPair{
					B: bitstr.Word{Bits: b, N: c.d},
					C: bitstr.Word{Bits: cBits, N: c.d},
					P: p,
				})
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		for pos := start; pos < c.d; pos++ {
			if !rec(pos+1, k+1, b, diff|uint64(1)<<uint(c.d-1-pos)) {
				return false
			}
		}
		return true
	}
	for _, v := range c.verts {
		base = v
		// Each unordered pair {b, c} is generated twice (once from each
		// endpoint). To count each once, only accept b < c = b ^ diff;
		// flipping a set of positions of b yields a larger word exactly when
		// the leftmost flipped bit of b is 0. Rather than encode that in the
		// recursion, we filter below: the recursion starts from b and the
		// pair is kept only if b < c.
		if !rec(0, 0, base, 0) {
			break
		}
	}
	// Deduplicate mirrored pairs (b,c) vs (c,b): keep pairs with B < C and
	// drop exact duplicates.
	seen := make(map[[2]uint64]bool, len(out))
	dedup := out[:0]
	for _, pr := range out {
		b, cc := pr.B, pr.C
		if cc.Less(b) {
			b, cc = cc, b
		}
		key := [2]uint64{b.Bits, cc.Bits}
		if seen[key] {
			continue
		}
		seen[key] = true
		pr.B, pr.C = b, cc
		dedup = append(dedup, pr)
	}
	return dedup
}

// HasCriticalPair reports whether any p-critical pair exists for
// 2 <= p <= maxP.
func (c *Cube) HasCriticalPair(maxP int) (CriticalPair, bool) {
	for p := 2; p <= maxP && p <= c.d; p++ {
		if pair, ok := c.FindCriticalPair(p); ok {
			return pair, true
		}
	}
	return CriticalPair{}, false
}
