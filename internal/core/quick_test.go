package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
)

// smallFactor draws a random nonempty factor of length 2..5 and a dimension
// 1..9 for randomized structural properties.
func smallFactor(rng *rand.Rand) (bitstr.Word, int) {
	n := 2 + rng.Intn(4)
	f := bitstr.Random(rng, n)
	return f, 1 + rng.Intn(9)
}

func TestQuickCountsInvariantUnderSymmetry(t *testing.T) {
	// |V|, |E|, |S| of Q_d(f) are invariant under complementing and
	// reversing f (Lemmas 2.2, 2.3 via isomorphism).
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		f, d := smallFactor(rng)
		base := Count(d, f)
		for _, g := range []bitstr.Word{f.Complement(), f.Reverse(), f.Complement().Reverse()} {
			other := Count(d, g)
			if base.V.Cmp(other.V) != 0 || base.E.Cmp(other.E) != 0 || base.S.Cmp(other.S) != 0 {
				t.Fatalf("counts differ between %s and %s at d=%d", f, g, d)
			}
		}
	}
}

func TestQuickIsometryInvariantUnderSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 25; iter++ {
		f, d := smallFactor(rng)
		if d > 8 {
			d = 8
		}
		base := New(d, f).IsIsometric().Isometric
		for _, g := range []bitstr.Word{f.Complement(), f.Reverse()} {
			if got := New(d, g).IsIsometric().Isometric; got != base {
				t.Fatalf("isometry differs between %s (%v) and %s (%v) at d=%d", f, base, g, got, d)
			}
		}
	}
}

func TestQuickDPMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 60; iter++ {
		f, d := smallFactor(rng)
		c := New(d, f)
		explicit := c.CountsExplicit()
		dp := Count(d, f)
		if dp.V.Int64() != explicit.V || dp.E.Int64() != explicit.E || dp.S.Int64() != explicit.S {
			t.Fatalf("DP vs explicit mismatch for f=%s d=%d", f, d)
		}
	}
}

func TestQuickVertexMonotonicity(t *testing.T) {
	// Adding a dimension never shrinks the vertex set: |V(Q_{d+1}(f))| >=
	// |V(Q_d(f))| (append a bit that extends some vertex).
	prop := func(f bitstr.Word) bool {
		if f.Len() < 2 {
			return true
		}
		a := automaton.New(f)
		seq := a.CountVerticesSeq(12)
		for d := 1; d <= 12; d++ {
			if seq[d].Cmp(seq[d-1]) < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(34))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubcubeInclusion(t *testing.T) {
	// If g is a factor of f then avoiding g is stricter than avoiding f:
	// V(Q_d(g)) is a subset of V(Q_d(f)).
	rng := rand.New(rand.NewSource(35))
	for iter := 0; iter < 50; iter++ {
		f := bitstr.Random(rng, 3+rng.Intn(3))
		// Take g = a proper factor of f.
		glen := 1 + rng.Intn(f.Len()-1)
		start := rng.Intn(f.Len() - glen + 1)
		g := f.Factor(start, glen)
		d := 1 + rng.Intn(9)
		cg := New(d, g)
		cf := New(d, f)
		for i := 0; i < cg.N(); i++ {
			if !cf.Contains(cg.Word(i)) {
				t.Fatalf("V(Q_%d(%s)) not contained in V(Q_%d(%s)): %s", d, g, d, f, cg.Word(i))
			}
		}
		if cg.N() > cf.N() {
			t.Fatalf("|V(Q_%d(%s))| > |V(Q_%d(%s))|", d, g, d, f)
		}
	}
}

func TestQuickDegreeBound(t *testing.T) {
	// Every vertex of Q_d(f) has degree at most d, and the number of edges
	// satisfies the handshake bound |E| <= d|V|/2.
	rng := rand.New(rand.NewSource(36))
	for iter := 0; iter < 40; iter++ {
		f, d := smallFactor(rng)
		c := New(d, f)
		if c.Graph().MaxDegree() > d {
			t.Fatalf("degree exceeds d for f=%s d=%d", f, d)
		}
		if 2*c.M() > d*c.N() {
			t.Fatalf("handshake bound violated for f=%s d=%d", f, d)
		}
	}
}

func TestQuickIsometricImpliesDiameterD(t *testing.T) {
	// Proposition 6.1 on random instances: if Q_d(f) is isometric, nontrivial
	// and f is not 10/01-like, diameter = max degree = d.
	rng := rand.New(rand.NewSource(37))
	checked := 0
	for iter := 0; iter < 120 && checked < 25; iter++ {
		f, d := smallFactor(rng)
		if d <= f.Len() || f.OnesCount() == 0 || f.OnesCount() == f.Len() {
			// Need f with both symbols for the "two 1s" hypothesis to have
			// a chance; skip trivial dimensions.
			continue
		}
		if f.Len() == 2 {
			continue // 10/01 are the excluded path cases
		}
		c := New(d, f)
		if !c.IsIsometric().Isometric {
			continue
		}
		checked++
		st := c.Graph().Stats()
		if int(st.Diameter) != d || c.Graph().MaxDegree() != d {
			t.Fatalf("Prop 6.1 violated for f=%s d=%d: diam=%d maxdeg=%d",
				f, d, st.Diameter, c.Graph().MaxDegree())
		}
	}
	if checked == 0 {
		t.Skip("no isometric instances drawn")
	}
}

func TestQuickCriticalScreenSoundOnRandom(t *testing.T) {
	// Lemma 2.4 on random instances: a critical pair implies non-isometry.
	rng := rand.New(rand.NewSource(38))
	for iter := 0; iter < 30; iter++ {
		f, d := smallFactor(rng)
		if d > 8 {
			d = 8
		}
		c := New(d, f)
		if _, found := c.HasCriticalPair(3); found {
			if c.IsIsometric().Isometric {
				t.Fatalf("critical pair on isometric cube f=%s d=%d", f, d)
			}
		}
	}
}
