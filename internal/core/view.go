package core

import (
	"gfcube/internal/bitstr"
)

// CubeView is the backend-independent query interface over Q_d(f): the
// DFA-rank addressing layer shared by the explicit graph (Cube) and the
// implicit backend (Implicit). It exposes exactly the queries that can be
// answered without global state — Hsu's point about the Fibonacci cube as
// an interconnection topology: nodes are addressed by (generalized)
// Zeckendorf numeration and probed with local factor tests.
//
// Vertex identity is the pair (rank, word): ranks index the increasing
// packed-value enumeration of the f-free words of length d, words are the
// binary addresses themselves. Both backends answer every query below in
// O(d) to O(d^2) time; they differ in construction cost (the explicit cube
// materializes the CSR graph, the implicit backend only the O(|f|·d)
// counting tables) and in the extra queries the materialized graph
// supports (BFS distances, isometry checks, simulation).
type CubeView interface {
	// D returns the dimension d.
	D() int
	// Factor returns the forbidden factor f.
	Factor() bitstr.Word
	// Order returns |V(Q_d(f))|. It always fits an int64: d <= 62.
	Order() int64
	// Contains reports whether w is a vertex (length d, avoids f).
	Contains(w bitstr.Word) bool
	// RankWord returns the index of w in the increasing enumeration of
	// vertices, and whether w is a vertex at all.
	RankWord(w bitstr.Word) (int64, bool)
	// UnrankWord returns the vertex word with the given rank, and whether
	// the rank is in range [0, Order()).
	UnrankWord(r int64) (bitstr.Word, bool)
	// DegreeOf returns the number of neighbors of w in Q_d(f), and whether
	// w is a vertex.
	DegreeOf(w bitstr.Word) (int, bool)
	// NeighborsOf calls fn for every neighbor of w in flip-position order
	// (position 0, the leftmost bit, first) with the neighbor's rank and
	// word. It returns false if w is not a vertex or fn stopped the
	// iteration early, true after a complete sweep.
	NeighborsOf(w bitstr.Word, fn func(rank int64, u bitstr.Word) bool) bool
}

// Both backends satisfy the interface.
var (
	_ CubeView = (*Cube)(nil)
	_ CubeView = (*Implicit)(nil)
)

// NewView returns a query backend for Q_d(f): the explicit cube when
// d <= maxBuild (clamped to MaxBuildDim), the implicit DFA-rank backend
// beyond. Callers that need the materialized graph (distances, isometry,
// simulation) must type-assert to *Cube; pure addressing workloads —
// rank, unrank, neighbors, degree, routing — work against either.
func NewView(d int, f bitstr.Word, maxBuild int) CubeView {
	if maxBuild < 0 || maxBuild > MaxBuildDim {
		maxBuild = MaxBuildDim
	}
	if d <= maxBuild {
		return New(d, f)
	}
	return NewImplicit(d, f)
}

// Order returns |V| as an int64, part of the CubeView interface.
func (c *Cube) Order() int64 { return int64(len(c.verts)) }

// RankWord is Rank with the CubeView signature.
func (c *Cube) RankWord(w bitstr.Word) (int64, bool) {
	i, ok := c.Rank(w)
	return int64(i), ok
}

// UnrankWord returns the vertex word with the given rank, bounds-checked.
func (c *Cube) UnrankWord(r int64) (bitstr.Word, bool) {
	if r < 0 || r >= int64(len(c.verts)) {
		return bitstr.Word{}, false
	}
	return c.Word(int(r)), true
}

// DegreeOf returns the degree of the vertex with word w.
func (c *Cube) DegreeOf(w bitstr.Word) (int, bool) {
	i, ok := c.Rank(w)
	if !ok {
		return 0, false
	}
	return c.g.Degree(i), true
}

// NeighborsOf visits the neighbors of w in flip-position order. The
// canonical order matches the implicit backend exactly, so responses are
// byte-for-byte identical whichever backend serves them.
func (c *Cube) NeighborsOf(w bitstr.Word, fn func(rank int64, u bitstr.Word) bool) bool {
	if _, ok := c.Rank(w); !ok {
		return false
	}
	for bit := 0; bit < c.d; bit++ {
		u := w.Flip(bit)
		if j, ok := c.rank(u.Bits); ok {
			if !fn(int64(j), u) {
				return false
			}
		}
	}
	return true
}
