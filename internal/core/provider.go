package core

import (
	"context"

	"gfcube/internal/bitstr"
)

// Source attributes where a resolved backend (or a response derived from
// one) came from. The values appear verbatim in the service's `source`
// response field.
type Source string

const (
	// SourceComputed means the backend was built from scratch this request.
	SourceComputed Source = "computed"
	// SourceStore means the backend was loaded from a disk artifact.
	SourceStore Source = "store"
	// SourceCache means an in-memory cache already held the answer.
	SourceCache Source = "cache"
)

// Provider is the compute-or-load seam for cube backends: everything
// that needs a Q_d(f) backend — the service view cache, the sweep
// engine, CLIs — resolves through a Provider, so a disk artifact store
// can substitute loads for builds without the call sites knowing.
// Implementations must be safe for concurrent use and must return
// backends that answer queries identically to freshly computed ones.
type Provider interface {
	// Cube resolves the explicit backend for Q_d(f); d must be within
	// [0, MaxBuildDim] and f nonempty (callers validate, as with New).
	Cube(ctx context.Context, d int, f bitstr.Word) (*Cube, Source, error)
	// Implicit resolves the DFA-rank backend for Q_d(f); d must be within
	// [0, bitstr.MaxLen] and f nonempty.
	Implicit(ctx context.Context, d int, f bitstr.Word) (*Implicit, Source, error)
}

// Compute is the Provider that always builds from scratch — the
// behavior of the system with no store configured.
type Compute struct{}

// Cube builds Q_d(f) explicitly.
func (Compute) Cube(ctx context.Context, d int, f bitstr.Word) (*Cube, Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, SourceComputed, err
	}
	return New(d, f), SourceComputed, nil
}

// Implicit builds the DFA-rank backend.
func (Compute) Implicit(ctx context.Context, d int, f bitstr.Word) (*Implicit, Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, SourceComputed, err
	}
	return NewImplicit(d, f), SourceComputed, nil
}

var _ Provider = Compute{}
