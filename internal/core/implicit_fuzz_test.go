package core

import (
	"testing"

	"gfcube/internal/bitstr"
)

// FuzzImplicitVsExplicit cross-checks the implicit DFA-rank backend
// against the explicit cube on arbitrary (factor, dimension, probe word)
// triples: membership, rank, unrank round-trip, degree and the full
// neighbor sweep must agree exactly.
func FuzzImplicitVsExplicit(f *testing.F) {
	f.Add(uint64(0b11), 2, 8, uint64(0b10100101))
	f.Add(uint64(0b101), 3, 10, uint64(17))
	f.Fuzz(func(t *testing.T, fb uint64, fn int, d int, wb uint64) {
		if fn < 1 || fn > 4 || d < 0 || d > 12 {
			t.Skip()
		}
		factor := bitstr.Word{Bits: fb & (^uint64(0) >> uint(64-fn)), N: fn}
		var w bitstr.Word
		if d > 0 {
			w = bitstr.Word{Bits: wb & (^uint64(0) >> uint(64-d)), N: d}
		}
		ex := New(d, factor)
		im := NewImplicit(d, factor)
		if ex.Order() != im.Order() {
			t.Fatalf("order %d vs %d", ex.Order(), im.Order())
		}
		if got, want := im.Contains(w), ex.Contains(w); got != want {
			t.Fatalf("Contains(%s) = %v, explicit %v", w, got, want)
		}
		er, eok := ex.RankWord(w)
		ir, iok := im.RankWord(w)
		if eok != iok || (eok && er != ir) {
			t.Fatalf("RankWord(%s) = %d/%v vs %d/%v", w, er, eok, ir, iok)
		}
		if eok {
			back, ok := im.UnrankWord(ir)
			if !ok || back != w {
				t.Fatalf("UnrankWord(%d) = %s/%v, want %s", ir, back, ok, w)
			}
			edeg, _ := ex.DegreeOf(w)
			ideg, _ := im.DegreeOf(w)
			if edeg != ideg {
				t.Fatalf("DegreeOf(%s) = %d vs %d", w, ideg, edeg)
			}
			var ex2, im2 []int64
			ex.NeighborsOf(w, func(r int64, _ bitstr.Word) bool { ex2 = append(ex2, r); return true })
			im.NeighborsOf(w, func(r int64, _ bitstr.Word) bool { im2 = append(im2, r); return true })
			if len(ex2) != len(im2) {
				t.Fatalf("neighbor counts %d vs %d", len(ex2), len(im2))
			}
			for i := range ex2 {
				if ex2[i] != im2[i] {
					t.Fatalf("neighbor %d: rank %d vs %d", i, ex2[i], im2[i])
				}
			}
		}
	})
}
