package core

import (
	"fmt"

	"gfcube/internal/bitstr"
)

// Verdict is the embeddability status of Q_d(f) in Q_d predicted by the
// paper's theory.
type Verdict int

const (
	// Isometric: the paper proves Q_d(f) is an isometric subgraph of Q_d.
	Isometric Verdict = iota
	// NotIsometric: the paper proves it is not.
	NotIsometric
	// Unknown: the paper's results do not decide this (d, f) pair.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Isometric:
		return "isometric"
	case NotIsometric:
		return "not isometric"
	default:
		return "unknown"
	}
}

// Classification is a verdict together with the result of the paper that
// yields it.
type Classification struct {
	Verdict Verdict
	Reason  string
}

// Classify returns the embeddability of Q_d(f) in Q_d as predicted by the
// paper's theory: Lemma 2.1, Propositions 3.1, 3.2, 4.1, 4.2, 5.1 and
// Theorems 3.3, 4.3, 4.4, including the in-text computer-checked cases, all
// applied up to the complement/reversal symmetries of Lemmas 2.2 and 2.3.
// For factor/dimension pairs outside the paper's results the verdict is
// Unknown.
func Classify(f bitstr.Word, d int) Classification {
	if f.Len() == 0 {
		panic("core: empty forbidden factor")
	}
	if d <= f.Len() {
		return Classification{Isometric, "Lemma 2.1 (d <= |f|)"}
	}
	variants := []bitstr.Word{f, f.Complement(), f.Reverse(), f.Complement().Reverse()}
	best := Classification{Unknown, "not covered by the paper's results"}
	for _, g := range variants {
		if cl, ok := classifyVariant(g, d); ok {
			if cl.Verdict != Unknown {
				return cl
			}
			best = cl
		}
	}
	return best
}

// classifyVariant matches g against the families of Sections 3-5 in their
// stated orientation (leading 1s). ok reports whether any family matched.
func classifyVariant(g bitstr.Word, d int) (Classification, bool) {
	blocks := g.Blocks()
	switch len(blocks) {
	case 1:
		if blocks[0].Bit == 1 {
			return Classification{Isometric, "Proposition 3.1 (f = 1^s)"}, true
		}
	case 2:
		if blocks[0].Bit != 1 {
			break
		}
		r, s := blocks[0].Len, blocks[1].Len
		if s == 1 {
			return Classification{Isometric, "Theorem 3.3(i) (f = 1^r 0)"}, true
		}
		if r == 1 {
			// 1 0^s: the reverse-complement is 1^s 0, Theorem 3.3(i); this
			// orientation is matched when the caller passes that variant.
			break
		}
		if r == 2 {
			if d <= s+4 {
				return Classification{Isometric, "Theorem 3.3(ii) (f = 1^2 0^s, d <= s+4)"}, true
			}
			return Classification{NotIsometric, "Theorem 3.3(ii) (f = 1^2 0^s, d > s+4)"}, true
		}
		if s == 2 {
			// 1^r 0^2 with r >= 3: symmetric to 1^2 0^r via complement and
			// reversal; apply Theorem 3.3(ii) with s' = r.
			if d <= r+4 {
				return Classification{Isometric, "Theorem 3.3(ii) via Lemmas 2.2/2.3 (f ~ 1^2 0^r, d <= r+4)"}, true
			}
			return Classification{NotIsometric, "Theorem 3.3(ii) via Lemmas 2.2/2.3 (f ~ 1^2 0^r, d > r+4)"}, true
		}
		// r, s >= 3.
		if d <= 2*r+2*s-3 {
			return Classification{Isometric, "Theorem 3.3(iii) (f = 1^r 0^s, d <= 2r+2s-3)"}, true
		}
		return Classification{NotIsometric, "Theorem 3.3(iii) (f = 1^r 0^s, d > 2r+2s-3)"}, true
	case 3:
		if blocks[0].Bit == 1 && blocks[2].Bit == 1 {
			// 1^r 0^s 1^t is non-embeddable for every d >= r+s+t+1 = |f|+1
			// (Proposition 3.2); the d <= |f| case was already handled.
			return Classification{NotIsometric, "Proposition 3.2 (f = 1^r 0^s 1^t, d > |f|)"}, true
		}
	}

	// Special string of Proposition 5.1.
	if g == bitstr.MustParse("11010") {
		return Classification{Isometric, "Proposition 5.1 (f = 11010)"}, true
	}

	// 1^s 0 1^s 0 (Theorem 4.3), s >= 2.
	if n := g.Len(); n >= 6 && n%2 == 0 {
		s := n/2 - 1
		if s >= 2 && g == bitstr.TwoOnesBlocks(s) {
			return Classification{Isometric, "Theorem 4.3 (f = 1^s 0 1^s 0)"}, true
		}
	}

	// (10)^s (Theorem 4.4).
	if n := g.Len(); n%2 == 0 && n >= 2 && g == bitstr.Alternating(n/2) {
		return Classification{Isometric, "Theorem 4.4 (f = (10)^s)"}, true
	}

	// (10)^s 1 (Proposition 4.1), s >= 2; s = 1 is 101, Proposition 3.2.
	if n := g.Len(); n%2 == 1 && n >= 5 && g == bitstr.AlternatingOne((n-1)/2) {
		s := (n - 1) / 2
		if d >= 4*s {
			return Classification{NotIsometric, "Proposition 4.1 (f = (10)^s 1, d >= 4s)"}, true
		}
		if s == 2 {
			// 10101: computer check of Table 1 for d = 6, 7.
			return Classification{Isometric, "Table 1 computer check (f = 10101, d <= 7)"}, true
		}
		return Classification{Unknown, "gap |f| < d < 4s of Proposition 4.1"}, true
	}

	// (10)^r 1 (10)^s (Proposition 4.2), r, s >= 1.
	if n := g.Len(); n%2 == 1 && n >= 5 {
		for r := 1; 2*r+1 < n; r++ {
			s := (n - 2*r - 1) / 2
			if s < 1 || 2*r+1+2*s != n {
				continue
			}
			if g == bitstr.AlternatingMid(r, s) {
				if d >= 2*r+2*s+3 {
					return Classification{NotIsometric, "Proposition 4.2 (f = (10)^r 1 (10)^s, d >= 2r+2s+3)"}, true
				}
				if r == 1 && s == 1 {
					// 10110: computer check of Table 1 for d = 6.
					return Classification{Isometric, "Table 1 computer check (f = 10110, d = 6)"}, true
				}
				return Classification{Unknown, "gap d = 2r+2s+2 of Proposition 4.2"}, true
			}
		}
	}

	return Classification{}, false
}

// Witness pairs used in the paper's non-embeddability proofs. Each function
// returns the two words for the base dimension stated in the proof, padded
// with leading 1s up to dimension d as the proofs prescribe. The tests
// verify that the pairs are indeed p-critical for Q_d(f), reproducing the
// proofs computationally.

// pad1 prepends 1s to bring w up to length d.
func pad1(w bitstr.Word, d int) bitstr.Word {
	if w.Len() > d {
		panic(fmt.Sprintf("core: witness longer (%d) than dimension %d", w.Len(), d))
	}
	return bitstr.Ones(d - w.Len()).Concat(w)
}

// WitnessProp32 returns the 2-critical words of Proposition 3.2 for
// f = 1^r 0^s 1^t in dimension d >= r+s+t+1:
// b = 1^r 1 0^{s-1} 1 1^t, c = 1^r 0 0^{s-1} 0 1^t.
func WitnessProp32(r, s, t, d int) (b, c bitstr.Word) {
	b = bitstr.ConcatAll(bitstr.Ones(r), bitstr.Ones(1), bitstr.Zeros(s-1), bitstr.Ones(1), bitstr.Ones(t))
	c = bitstr.ConcatAll(bitstr.Ones(r), bitstr.Zeros(1), bitstr.Zeros(s-1), bitstr.Zeros(1), bitstr.Ones(t))
	return pad1(b, d), pad1(c, d)
}

// WitnessThm33Case1 returns the 3-critical words used for f = 1^2 0^2 in
// dimension d >= 7: b = 1^2 10 10^2, c = 1^2 01 00^2.
func WitnessThm33Case1(d int) (b, c bitstr.Word) {
	b = bitstr.MustParse("1110100")
	c = bitstr.MustParse("1101000")
	return pad1(b, d), pad1(c, d)
}

// WitnessThm33Case2 returns the 2-critical words used for f = 1^r 0^s
// (r > 2 or s > 2) in dimension d >= 2r+2s-2:
// b = 1^r 0^{s-2} 1 0 1^{r-2} 0^s, c = 1^r 0^{s-2} 0 1 1^{r-2} 0^s.
func WitnessThm33Case2(r, s, d int) (b, c bitstr.Word) {
	b = bitstr.ConcatAll(bitstr.Ones(r), bitstr.Zeros(s-2), bitstr.MustParse("10"), bitstr.Ones(r-2), bitstr.Zeros(s))
	c = bitstr.ConcatAll(bitstr.Ones(r), bitstr.Zeros(s-2), bitstr.MustParse("01"), bitstr.Ones(r-2), bitstr.Zeros(s))
	return pad1(b, d), pad1(c, d)
}

// WitnessThm33Case1Inner returns the 2-critical words used inside the claim
// of Theorem 3.3 for f = 1^2 0^s (s >= 4, d > s+4) with k = d-s-4:
// b = 1^2 0^k 1 0 0^s, c = 1^2 0^k 0 1 0^s.
func WitnessThm33Case1Inner(s, d int) (b, c bitstr.Word) {
	k := d - s - 4
	b = bitstr.ConcatAll(bitstr.Ones(2), bitstr.Zeros(k), bitstr.MustParse("10"), bitstr.Zeros(s))
	c = bitstr.ConcatAll(bitstr.Ones(2), bitstr.Zeros(k), bitstr.MustParse("01"), bitstr.Zeros(s))
	return b, c
}

// WitnessProp41 returns the 2-critical words of Proposition 4.1 for
// f = (10)^s 1 (s >= 2) in dimension d >= 4s:
// b = (10)^{s-1} 100 (10)^{s-1} 1, c = (10)^{s-1} 111 (10)^{s-1} 1.
func WitnessProp41(s, d int) (b, c bitstr.Word) {
	b = bitstr.ConcatAll(bitstr.Alternating(s-1), bitstr.MustParse("100"), bitstr.Alternating(s-1), bitstr.Ones(1))
	c = bitstr.ConcatAll(bitstr.Alternating(s-1), bitstr.MustParse("111"), bitstr.Alternating(s-1), bitstr.Ones(1))
	return pad1(b, d), pad1(c, d)
}

// WitnessProp42 returns the 2-critical words of Proposition 4.2 for
// f = (10)^r 1 (10)^s in dimension d >= 2r+2s+3:
// b = (10)^r 100 (10)^s, c = (10)^r 111 (10)^s.
func WitnessProp42(r, s, d int) (b, c bitstr.Word) {
	b = bitstr.ConcatAll(bitstr.Alternating(r), bitstr.MustParse("100"), bitstr.Alternating(s))
	c = bitstr.ConcatAll(bitstr.Alternating(r), bitstr.MustParse("111"), bitstr.Alternating(s))
	return pad1(b, d), pad1(c, d)
}

// IsCriticalPair checks the Section 2 definition directly: b and c are
// vertices at Hamming distance p >= 2 such that all neighbors of b inside
// I(b,c), or all neighbors of c inside I(b,c), are missing from the cube.
func (c *Cube) IsCriticalPair(b, cc bitstr.Word) bool {
	if !c.Contains(b) || !c.Contains(cc) {
		return false
	}
	diff := b.Bits ^ cc.Bits
	if p := b.HammingDistance(cc); p < 2 {
		return false
	}
	blocked := func(x uint64) bool {
		for m := diff; m != 0; m &= m - 1 {
			if _, ok := c.rank(x ^ (m & -m)); ok {
				return false
			}
		}
		return true
	}
	return blocked(b.Bits) || blocked(cc.Bits)
}
