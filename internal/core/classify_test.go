package core

import (
	"testing"

	"gfcube/internal/bitstr"
)

// The theoretical classifier must agree with Table 1 on every factor of
// length at most 5 (not only canonical representatives) and every dimension
// where the theory speaks.
func TestClassifyMatchesTable1(t *testing.T) {
	for length := 1; length <= 5; length++ {
		for _, f := range bitstr.All(length) {
			row, ok := Table1Lookup(f)
			if !ok {
				t.Fatalf("no Table 1 row for %s", f)
			}
			for d := 1; d <= 12; d++ {
				want := row.VerdictFor(d)
				got := Classify(f, d)
				if got.Verdict == Unknown {
					t.Errorf("Classify(%s, %d) is Unknown; Table 1 decides every |f| <= 5", f, d)
					continue
				}
				if got.Verdict != want {
					t.Errorf("Classify(%s, %d) = %v (%s), Table 1 says %v",
						f, d, got.Verdict, got.Reason, want)
				}
			}
		}
	}
}

// The classifier must agree with the exact computation wherever it claims a
// verdict, for every factor of length at most 6 and d <= 9. Length-6 factors
// exercise the infinite families beyond the Table 1 data.
func TestClassifyAgainstExactLength6(t *testing.T) {
	for _, f := range bitstr.CanonicalOfLen(6) {
		for d := 7; d <= 9; d++ {
			cl := Classify(f, d)
			if cl.Verdict == Unknown {
				continue
			}
			res := New(d, f).IsIsometric()
			got := NotIsometric
			if res.Isometric {
				got = Isometric
			}
			if got != cl.Verdict {
				t.Errorf("f=%s d=%d: theory says %v (%s), computation says %v",
					f, d, cl.Verdict, cl.Reason, got)
			}
		}
	}
}

func TestClassifyFamilies(t *testing.T) {
	cases := []struct {
		f    bitstr.Word
		d    int
		want Verdict
	}{
		{bitstr.Ones(4), 20, Isometric},                  // Prop 3.1
		{bitstr.OnesZeros(5, 1), 20, Isometric},          // Thm 3.3(i)
		{bitstr.OnesZeros(2, 5), 9, Isometric},           // Thm 3.3(ii): d <= s+4
		{bitstr.OnesZeros(2, 5), 10, NotIsometric},       // Thm 3.3(ii): d > s+4
		{bitstr.OnesZeros(3, 4), 11, Isometric},          // Thm 3.3(iii): d <= 2r+2s-3 = 11
		{bitstr.OnesZeros(3, 4), 12, NotIsometric},       // Thm 3.3(iii)
		{bitstr.OnesZerosOnes(2, 3, 2), 8, NotIsometric}, // Prop 3.2: d > |f|
		{bitstr.Alternating(4), 25, Isometric},           // Thm 4.4
		{bitstr.TwoOnesBlocks(3), 25, Isometric},         // Thm 4.3
		{bitstr.MustParse("11010"), 25, Isometric},       // Prop 5.1
		{bitstr.AlternatingOne(3), 12, NotIsometric},     // Prop 4.1: d >= 4s = 12
		{bitstr.AlternatingMid(2, 1), 9, NotIsometric},   // Prop 4.2: d >= 2r+2s+3 = 9
	}
	for _, cs := range cases {
		got := Classify(cs.f, cs.d)
		if got.Verdict != cs.want {
			t.Errorf("Classify(%s, %d) = %v (%s), want %v", cs.f, cs.d, got.Verdict, got.Reason, cs.want)
		}
	}
}

func TestClassifySymmetryInvariance(t *testing.T) {
	// Classification must be invariant under complement and reversal
	// (Lemmas 2.2, 2.3).
	for _, f := range bitstr.All(5) {
		for d := 6; d <= 9; d++ {
			base := Classify(f, d).Verdict
			for _, g := range []bitstr.Word{f.Complement(), f.Reverse(), f.Complement().Reverse()} {
				if got := Classify(g, d).Verdict; got != base {
					t.Errorf("Classify not symmetric: f=%s (%v) vs %s (%v), d=%d", f, base, g, got, d)
				}
			}
		}
	}
}

func TestClassifyGapsAreUnknown(t *testing.T) {
	// (10)^3 1: |f| = 7, Prop 4.1 applies for d >= 12; the gap 8..11 is
	// undecided by the paper.
	f := bitstr.AlternatingOne(3)
	for d := 8; d <= 11; d++ {
		if got := Classify(f, d); got.Verdict != Unknown {
			t.Errorf("Classify(%s, %d) = %v, want Unknown", f, d, got.Verdict)
		}
	}
	// (10)^2 1 (10)^1: |f| = 7, Prop 4.2 applies for d >= 9; d = 8 is a gap.
	f = bitstr.AlternatingMid(2, 1)
	if got := Classify(f, 8); got.Verdict != Unknown {
		t.Errorf("Classify(%s, 8) = %v, want Unknown", f, got.Verdict)
	}
}

func TestTable1Lookup(t *testing.T) {
	// Lookup must work for non-canonical variants too: 00 is the complement
	// of 11, 01011 the reversal of 11010.
	row, ok := Table1Lookup(w("00"))
	if !ok || row.Factor != "11" {
		t.Errorf("lookup(00) = %+v", row)
	}
	row, ok = Table1Lookup(w("01011"))
	if !ok || row.Factor != "11010" {
		t.Errorf("lookup(01011) = %+v", row)
	}
	if _, ok := Table1Lookup(w("110100")); ok {
		t.Error("lookup should fail for |f| = 6")
	}
}

func TestVerdictString(t *testing.T) {
	if Isometric.String() != "isometric" || NotIsometric.String() != "not isometric" || Unknown.String() != "unknown" {
		t.Error("verdict strings wrong")
	}
}

// E11: Conjecture 8.1 — if Q_d(f) embeds isometrically for all d then so
// does Q_d(ff). Verified computationally for the good factors of length <= 3
// and d up to 11.
func TestE11Conjecture81(t *testing.T) {
	good := []string{"1", "11", "10", "111", "110"}
	for _, fs := range good {
		f := w(fs)
		ff := f.Concat(f)
		for d := 1; d <= 11; d++ {
			if res := New(d, ff).IsIsometric(); !res.Isometric {
				t.Errorf("Conjecture 8.1 counterexample: f=%s, ff=%s, d=%d", fs, ff, d)
			}
		}
	}
}
