package core

import (
	"reflect"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/fib"
)

func w(s string) bitstr.Word { return bitstr.MustParse(s) }

func TestFig1Q4_101Structure(t *testing.T) {
	// Figure 1 of the paper shows Q_4(101). Exactly 4 of the 16 words of
	// length 4 contain 101 (1010, 1011, 0101, 1101), leaving 12 vertices.
	c := New(4, w("101"))
	if c.N() != 12 {
		t.Fatalf("|V(Q_4(101))| = %d, want 12", c.N())
	}
	for _, missing := range []string{"1010", "1011", "0101", "1101"} {
		if c.Contains(w(missing)) {
			t.Errorf("%s should not be a vertex", missing)
		}
	}
	for _, present := range []string{"0000", "1111", "1100", "0011", "1001"} {
		if !c.Contains(w(present)) {
			t.Errorf("%s should be a vertex", present)
		}
	}
	// The graph is connected and bipartite (it is a subgraph of Q_4 and the
	// figure shows one component).
	if !c.Graph().IsConnected() {
		t.Error("Q_4(101) should be connected")
	}
	if ok, _ := c.Graph().IsBipartite(); !ok {
		t.Error("Q_4(101) should be bipartite")
	}
}

func TestFibonacciCubeOrder(t *testing.T) {
	// |V(Γ_d)| = F_{d+2}.
	for d := 0; d <= 14; d++ {
		c := Fibonacci(d)
		if uint64(c.N()) != fib.F(d+2) {
			t.Errorf("|V(Γ_%d)| = %d, want %d", d, c.N(), fib.F(d+2))
		}
	}
}

func TestDegenerateDimensions(t *testing.T) {
	// d < |f|: Q_d(f) is the full hypercube.
	c := New(3, w("1111"))
	if c.N() != 8 || c.M() != 12 {
		t.Errorf("Q_3(1111) = (%d, %d), want full Q_3 (8, 12)", c.N(), c.M())
	}
	// d = |f|: hypercube minus one vertex.
	c = New(3, w("111"))
	if c.N() != 7 {
		t.Errorf("Q_3(111) has %d vertices, want 7", c.N())
	}
	// d = 0: the empty word is the single vertex.
	c = New(0, w("11"))
	if c.N() != 1 || c.M() != 0 {
		t.Error("Q_0(f) should be K_1")
	}
	// f = 1: removing every word containing a 1 leaves only 0^d.
	c = New(5, w("1"))
	if c.N() != 1 {
		t.Errorf("Q_5(1) has %d vertices, want 1", c.N())
	}
}

func TestPathCase(t *testing.T) {
	// Q_d(10) is the path P_{d+1} (proof of Theorem 3.3(i)).
	for d := 1; d <= 8; d++ {
		c := New(d, w("10"))
		if c.N() != d+1 || c.M() != d {
			t.Fatalf("Q_%d(10): n=%d m=%d, want path on %d vertices", d, c.N(), c.M(), d+1)
		}
		if got := c.Graph().MaxDegree(); got > 2 {
			t.Fatalf("Q_%d(10) has a vertex of degree %d; not a path", d, got)
		}
		if !c.Graph().IsConnected() {
			t.Fatalf("Q_%d(10) disconnected", d)
		}
	}
}

func TestRankWordRoundTrip(t *testing.T) {
	c := New(7, w("110"))
	for i := 0; i < c.N(); i++ {
		word := c.Word(i)
		j, ok := c.Rank(word)
		if !ok || j != i {
			t.Fatalf("rank round trip failed at %d", i)
		}
	}
	if _, ok := c.Rank(w("1100000")); ok {
		t.Error("Rank accepted a word containing the factor")
	}
	if _, ok := c.Rank(w("000")); ok {
		t.Error("Rank accepted a word of wrong length")
	}
}

func TestWordsSortedAndAvoidFactor(t *testing.T) {
	c := New(8, w("1010"))
	words := c.Words()
	if len(words) != c.N() {
		t.Fatal("Words length mismatch")
	}
	for i, word := range words {
		if word.HasFactor(w("1010")) {
			t.Errorf("vertex %s contains factor", word)
		}
		if i > 0 && !words[i-1].Less(word) {
			t.Error("Words not sorted")
		}
	}
}

func TestEdgesAreHammingOne(t *testing.T) {
	c := New(7, w("101"))
	c.Graph().Edges(func(u, v int) {
		if c.HammingDist(u, v) != 1 {
			t.Errorf("edge {%s, %s} not Hamming-adjacent", c.Word(u), c.Word(v))
		}
	})
}

// Lemma 2.2: Q_d(f) is isomorphic to Q_d(f̄) via complementation.
func TestLemma22ComplementIsomorphism(t *testing.T) {
	for _, fs := range []string{"11", "110", "101", "1100", "11010"} {
		f := w(fs)
		for d := 1; d <= 9; d++ {
			a := New(d, f)
			b := New(d, f.Complement())
			if a.N() != b.N() || a.M() != b.M() {
				t.Fatalf("f=%s d=%d: (%d,%d) vs (%d,%d)", fs, d, a.N(), a.M(), b.N(), b.M())
			}
			// The explicit bijection b -> b̄ maps edges to edges.
			a.Graph().Edges(func(u, v int) {
				cu := a.Word(u).Complement()
				cv := a.Word(v).Complement()
				iu, ok1 := b.Rank(cu)
				iv, ok2 := b.Rank(cv)
				if !ok1 || !ok2 || !b.Graph().HasEdge(iu, iv) {
					t.Fatalf("f=%s d=%d: complement bijection broke edge {%s,%s}", fs, d, a.Word(u), a.Word(v))
				}
			})
			if !reflect.DeepEqual(a.Graph().DegreeSequence(), b.Graph().DegreeSequence()) {
				t.Fatalf("f=%s d=%d: degree sequences differ", fs, d)
			}
		}
	}
}

// Lemma 2.3: Q_d(f) is isomorphic to Q_d(f^R) via reversal.
func TestLemma23ReversalIsomorphism(t *testing.T) {
	for _, fs := range []string{"110", "1100", "11010", "10110"} {
		f := w(fs)
		for d := 1; d <= 9; d++ {
			a := New(d, f)
			b := New(d, f.Reverse())
			if a.N() != b.N() || a.M() != b.M() {
				t.Fatalf("f=%s d=%d: counts differ", fs, d)
			}
			a.Graph().Edges(func(u, v int) {
				ru := a.Word(u).Reverse()
				rv := a.Word(v).Reverse()
				iu, ok1 := b.Rank(ru)
				iv, ok2 := b.Rank(rv)
				if !ok1 || !ok2 || !b.Graph().HasEdge(iu, iv) {
					t.Fatalf("f=%s d=%d: reversal bijection broke an edge", fs, d)
				}
			})
		}
	}
}

func TestCountsExplicitMatchesDP(t *testing.T) {
	for _, fs := range []string{"11", "110", "101", "1100", "1010", "11010"} {
		f := w(fs)
		for d := 0; d <= 10; d++ {
			c := New(d, f)
			explicit := c.CountsExplicit()
			dp := Count(d, f)
			if dp.V.Int64() != explicit.V || dp.E.Int64() != explicit.E || dp.S.Int64() != explicit.S {
				t.Fatalf("f=%s d=%d: DP (%s,%s,%s) vs explicit (%d,%d,%d)",
					fs, d, dp.V, dp.E, dp.S, explicit.V, explicit.E, explicit.S)
			}
		}
	}
}

func TestNewPanics(t *testing.T) {
	assert := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assert("empty factor", func() { New(3, bitstr.Word{}) })
	assert("negative d", func() { New(-1, w("11")) })
	assert("huge d", func() { New(31, w("11")) })
}

func TestProposition61DegreeAndDiameter(t *testing.T) {
	// For embeddable f (|f| > 1, f != 10, 01), max degree and diameter of
	// Q_d(f) are both d.
	cases := []struct {
		f string
		d int
	}{
		{"11", 6}, {"111", 6}, {"110", 6}, {"1010", 7}, {"11010", 7}, {"1100", 6},
	}
	for _, cs := range cases {
		c := New(cs.d, w(cs.f))
		st := c.Graph().Stats()
		if got := c.Graph().MaxDegree(); got != cs.d {
			t.Errorf("f=%s d=%d: max degree %d, want %d", cs.f, cs.d, got, cs.d)
		}
		if int(st.Diameter) != cs.d {
			t.Errorf("f=%s d=%d: diameter %d, want %d", cs.f, cs.d, st.Diameter, cs.d)
		}
	}
}
