package core

import (
	"sync/atomic"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Column-cache effectiveness counters, exported on the service and fabric
// /metrics+/stats surfaces. A "reuse" is a cell served off the cached
// column (same-d hit or a single-step extension); a "rebuild" is a cell
// that had to construct from scratch (new factor, a dimension jump, or a
// cold builder).
var (
	columnReuse   atomic.Uint64
	columnRebuild atomic.Uint64
)

// ColumnCounters returns the process-wide column-cache counters.
func ColumnCounters() (reuse, rebuild uint64) {
	return columnReuse.Load(), columnRebuild.Load()
}

// ColumnBuilder constructs the cubes of one grid column Q_0(f), Q_1(f), ...
// incrementally, exploiting the paper's recursive decomposition: the
// vertices of Q_{d+1}(f) are exactly the f-free one-bit extensions of the
// vertices of Q_d(f), and its edges are the edges of Q_d(f) lifted through
// the extension map plus the perfect-matching-style cross layer u·0 ~ u·1
// (the generalization of Hsu's Γ_d = 0Γ_{d-1} + 10Γ_{d-2}).
//
// Each cached vertex is annotated with the DFA state its word drives the
// factor automaton to, so the step to d+1 is a single O(|V_{d+1}|) filter
// (one delta step per child, drop the dead ones) followed by an
// O(|V|+|E|) edge lift that assembles the new CSR arena directly in
// sorted order — no re-enumeration, no re-ranking, no edge sort. See
// docs/incremental-build.md for why the emitted order is already sorted.
//
// Advance with the same factor and d equal to the cached dimension or one
// above it reuses the column; anything else falls back to a from-scratch
// rebuild (which also re-seeds the column). Produced cubes are
// byte-identical to New's and own their memory; the builder only retains
// scratch. Not safe for concurrent use: one per worker, like Scratch.
type ColumnBuilder struct {
	dfa  *automaton.DFA
	f    bitstr.Word
	cube *Cube

	// states[i] is the DFA state reached by cube.verts[i]; valid only when
	// annotated is true (cubes adopted from a store load are annotated
	// lazily, so a column that never extends pays nothing).
	states    []uint8
	annotated bool

	// Per-extension scratch, reused across steps.
	child0, child1 []int32 // old index -> new index of the 0/1-child, -1 if dead
	statesBuf      []uint8
	vertsBuf       []uint64
	csr            *graph.CSRBuilder
	eb             *graph.Builder // rebuild path's edge arena
}

// NewColumnBuilder returns an empty builder; buffers grow on first use.
func NewColumnBuilder() *ColumnBuilder {
	return &ColumnBuilder{csr: graph.NewCSRBuilder()}
}

// CanAdvance reports whether Advance(d, f) would be served off the cached
// column (a reuse) rather than a from-scratch rebuild.
func (b *ColumnBuilder) CanAdvance(d int, f bitstr.Word) bool {
	return b.cube != nil && b.f == f && d >= 0 && d <= MaxBuildDim &&
		(d == b.cube.d || d == b.cube.d+1)
}

// Advance returns Q_d(f), incrementally when the request continues the
// cached column and from scratch otherwise. The returned cube owns its
// memory and stays valid across further builder use.
func (b *ColumnBuilder) Advance(d int, f bitstr.Word) *Cube {
	checkBuild(d, f)
	if b.cube != nil && b.f == f {
		switch d {
		case b.cube.d:
			columnReuse.Add(1)
			return b.cube
		case b.cube.d + 1:
			if !b.annotated {
				b.annotate()
			}
			b.extend()
			columnReuse.Add(1)
			return b.cube
		}
	}
	columnRebuild.Add(1)
	b.rebuild(d, f)
	return b.cube
}

// Adopt seeds the column with an externally produced cube (typically a
// store load), so a following Advance to d or d+1 is incremental. The
// state annotation is recomputed lazily on the first extension.
func (b *ColumnBuilder) Adopt(c *Cube) {
	b.dfa, b.f, b.cube, b.annotated = c.dfa, c.f, c, false
}

// annotate recomputes the DFA state of every cached vertex by replaying
// each word through the automaton: O(|V|·d), paid once per adopted cube
// and only if the column actually extends past it.
func (b *ColumnBuilder) annotate() {
	verts, d := b.cube.verts, b.cube.d
	if cap(b.states) < len(verts) {
		b.states = make([]uint8, len(verts))
	} else {
		b.states = b.states[:len(verts)]
	}
	for i, v := range verts {
		b.states[i] = uint8(b.dfa.StateBits(v, d))
	}
	b.annotated = true
}

// rebuild constructs Q_d(f) from scratch through the builder's scratch
// buffers and re-seeds the column with it, annotation included for free
// (the enumeration records each word's final DFA state as it goes).
func (b *ColumnBuilder) rebuild(d int, f bitstr.Word) {
	if b.dfa == nil || b.f != f {
		b.dfa = automaton.New(f)
		b.f = f
	}
	b.vertsBuf, b.states = b.dfa.AppendVertexStates(b.vertsBuf[:0], b.states[:0], d)
	verts := make([]uint64, len(b.vertsBuf))
	copy(verts, b.vertsBuf)
	rk := b.dfa.Ranker(d)
	if b.eb == nil {
		b.eb = graph.NewBuilder(len(verts))
	} else {
		b.eb.Reset(len(verts))
	}
	g := buildEdges(verts, rk, b.eb)
	b.cube = &Cube{d: d, f: f, dfa: b.dfa, rk: rk, verts: verts, g: g}
	b.annotated = true
}

// extend steps the cached column from d to d+1.
//
// Vertices: enumerating the old vertices in increasing order and emitting
// the surviving 0-child before the surviving 1-child yields the new
// enumeration already in increasing packed order, because v<<1|c is
// strictly monotone in (v, c).
//
// Edges: an edge of Q_{d+1}(f) either differs in the last position — the
// cross edge u·0 ~ u·1, present iff both children survive — or differs in
// an earlier position, in which case both endpoints share the trailing
// bit c and their length-d prefixes are f-free (f-free words are closed
// under prefixes) and adjacent in Q_d(f): it is the lift {u·c, v·c} of an
// old edge {u, v}. So the new edge set is a filter over the old CSR plus
// a zip over the child maps, never touching the rank tables.
//
// The new CSR is assembled directly in sorted order: with a = child0(u)
// and b = child1(u) = a+1, the sorted neighbor list of a is
// child0(w < u) ++ [b] ++ child0(w > u) over old neighbors w, and the
// list of b is child1(w < u) ++ [a] ++ child1(w > u), since the child
// maps are monotone with child0(u) < child1(u) < child0(u+1). One degree
// pass and one emit pass, no sort, no dedup.
func (b *ColumnBuilder) extend() {
	old := b.cube
	oldVerts := old.verts
	og := old.g
	n := len(oldVerts)
	dead := b.dfa.States() // absorbing state m

	if cap(b.child0) < n {
		b.child0 = make([]int32, n)
		b.child1 = make([]int32, n)
	} else {
		b.child0 = b.child0[:n]
		b.child1 = b.child1[:n]
	}
	child0, child1 := b.child0, b.child1

	// Pass 1: child survival, new indices and new states.
	b.statesBuf = b.statesBuf[:0]
	nn := 0
	for i := 0; i < n; i++ {
		s := int(b.states[i])
		if t := b.dfa.Step(s, 0); t != dead {
			child0[i] = int32(nn)
			b.statesBuf = append(b.statesBuf, uint8(t))
			nn++
		} else {
			child0[i] = -1
		}
		if t := b.dfa.Step(s, 1); t != dead {
			child1[i] = int32(nn)
			b.statesBuf = append(b.statesBuf, uint8(t))
			nn++
		} else {
			child1[i] = -1
		}
	}

	// Pass 2: the new vertex enumeration, exact-size (the cube owns it).
	verts := make([]uint64, nn)
	j := 0
	for i, v := range oldVerts {
		if child0[i] >= 0 {
			verts[j] = v << 1
			j++
		}
		if child1[i] >= 0 {
			verts[j] = v<<1 | 1
			j++
		}
	}

	// Degree pass: cross layer, then each old edge seen once (w > u).
	b.csr.Reset(nn)
	for i := 0; i < n; i++ {
		if child0[i] >= 0 && child1[i] >= 0 {
			b.csr.AddDegree(int(child0[i]), 1)
			b.csr.AddDegree(int(child1[i]), 1)
		}
	}
	for u := 0; u < n; u++ {
		for _, w32 := range og.Neighbors(u) {
			w := int(w32)
			if w <= u {
				continue
			}
			if child0[u] >= 0 && child0[w] >= 0 {
				b.csr.AddDegree(int(child0[u]), 1)
				b.csr.AddDegree(int(child0[w]), 1)
			}
			if child1[u] >= 0 && child1[w] >= 0 {
				b.csr.AddDegree(int(child1[u]), 1)
				b.csr.AddDegree(int(child1[w]), 1)
			}
		}
	}
	b.csr.Seal()

	// Emit pass, per the sorted merge order derived above. adj is sorted,
	// so one scan finds the below/above-u split (no self loops).
	for u := 0; u < n; u++ {
		adj := og.Neighbors(u)
		k := 0
		for k < len(adj) && int(adj[k]) < u {
			k++
		}
		if a := child0[u]; a >= 0 {
			for _, w := range adj[:k] {
				if c0 := child0[w]; c0 >= 0 {
					b.csr.Emit(int(a), int(c0))
				}
			}
			if bb := child1[u]; bb >= 0 {
				b.csr.Emit(int(a), int(bb))
			}
			for _, w := range adj[k:] {
				if c0 := child0[w]; c0 >= 0 {
					b.csr.Emit(int(a), int(c0))
				}
			}
		}
		if bb := child1[u]; bb >= 0 {
			for _, w := range adj[:k] {
				if c1 := child1[w]; c1 >= 0 {
					b.csr.Emit(int(bb), int(c1))
				}
			}
			if a := child0[u]; a >= 0 {
				b.csr.Emit(int(bb), int(a))
			}
			for _, w := range adj[k:] {
				if c1 := child1[w]; c1 >= 0 {
					b.csr.Emit(int(bb), int(c1))
				}
			}
		}
	}
	g := b.csr.Build()

	d := old.d + 1
	b.cube = &Cube{d: d, f: b.f, dfa: b.dfa, rk: b.dfa.Ranker(d), verts: verts, g: g}
	b.states, b.statesBuf = b.statesBuf, b.states
	b.annotated = true
}
