package core

import (
	"context"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Scratch holds the reusable per-worker state for repeated cube
// constructions and isometry checks across a (d, f) grid: the column
// builder's incremental cube cache (automaton, vertex states, edge-lift
// scratch) and the MS-BFS engine's bitset planes. A fresh construction of
// Q_20(11) costs ~53k allocations; through a warm Scratch the next column
// cell costs a handful (the cube's own retained memory), and when the
// cell continues the current column it skips enumeration and edge ranking
// entirely (see ColumnBuilder).
//
// A Scratch is not safe for concurrent use; allocate one per goroutine.
// The sweep engine does exactly that, one per worker.
type Scratch struct {
	col *ColumnBuilder
	ms  *graph.MSBFS
	cnt automaton.CountScratch

	// Provider, when non-nil, is consulted by Cube before building: a
	// store-backed provider substitutes artifact loads for constructions,
	// which is how grid sweeps warm-start. A load that fails for any
	// reason falls through to the normal build path. Cells that continue
	// the current column skip the provider — the incremental step is
	// cheaper than a load.
	Provider Provider
}

// NewScratch returns an empty scratch area; buffers grow on first use.
func NewScratch() *Scratch {
	return &Scratch{col: NewColumnBuilder()}
}

// Cube is New(d, f) with incremental reuse: cells that continue the
// cached column (same factor, dimension d or d+1 of the cached cube) are
// served by the column builder's O(|V|+|E|) step, and anything else
// rebuilds from scratch through recycled buffers, re-seeding the column.
// The context bounds provider loads only — cancellation between cells is
// the sweep engine's job, and a pure in-memory build is not interruptible.
// The returned cube owns its memory and remains valid after any further
// use of the scratch.
func (s *Scratch) Cube(ctx context.Context, d int, f bitstr.Word) *Cube {
	if f.Len() == 0 {
		panic("core: empty forbidden factor")
	}
	if s.col == nil {
		s.col = NewColumnBuilder()
	}
	if s.Provider != nil && !s.col.CanAdvance(d, f) {
		if c, _, err := s.Provider.Cube(ctx, d, f); err == nil {
			// Seed the column so the next cell of an ascending-d sweep
			// extends this load instead of rebuilding.
			s.col.Adopt(c)
			return c
		}
	}
	return s.col.Advance(d, f)
}

// engine returns the scratch MS-BFS engine retargeted at g.
func (s *Scratch) engine(g *graph.Graph) *graph.MSBFS {
	if s.ms == nil {
		s.ms = graph.NewMSBFS(g)
		return s.ms
	}
	s.ms.Reset(g)
	return s.ms
}

// Count is CountCtx drawing the transfer-matrix DP planes from the
// scratch, so repeated counting cells on one worker stop churning
// big.Int slices (see automaton.CountScratch).
func (s *Scratch) Count(ctx context.Context, d int, f bitstr.Word) (BigCounts, error) {
	return countCtx(ctx, &s.cnt, automaton.New(f), d)
}

// CountSeq is CountSeqCtx through the scratch's DP planes.
func (s *Scratch) CountSeq(ctx context.Context, dmax int, f bitstr.Word) ([]BigCounts, error) {
	return countSeqCtx(ctx, &s.cnt, dmax, f)
}

// IsIsometric is the exact single-threaded embeddability check of
// Cube.IsIsometricSerial with the MS-BFS planes drawn from the scratch.
// Like the serial variant it reports the violating pair with the smallest
// source rank, so results are deterministic. Sweeps parallelize across
// grid cells, one scratch per worker, rather than inside one check.
func (s *Scratch) IsIsometric(c *Cube) IsometryResult {
	return isIsometricSerial(c, s.engine(c.g))
}
