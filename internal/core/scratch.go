package core

import (
	"context"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Scratch holds the reusable buffers for repeated cube constructions and
// isometry checks across a (d, f) grid: the factor automaton of the last
// factor, the vertex-enumeration buffer, the graph builder's edge arena and
// the MS-BFS engine's bitset planes. A fresh construction of Q_20(11)
// costs ~53k allocations; through a warm Scratch it costs a handful (the
// cube's own retained memory).
//
// A Scratch is not safe for concurrent use; allocate one per goroutine.
// The sweep engine does exactly that, one per worker.
type Scratch struct {
	dfa     *automaton.DFA
	dfaF    bitstr.Word
	verts   []uint64
	rank    automaton.Ranker
	builder *graph.Builder
	ms      *graph.MSBFS

	// Provider, when non-nil, is consulted by Cube before building: a
	// store-backed provider substitutes artifact loads for constructions,
	// which is how grid sweeps warm-start. A load that fails for any
	// reason falls through to the normal build path.
	Provider Provider
}

// NewScratch returns an empty scratch area; buffers grow on first use.
func NewScratch() *Scratch {
	return &Scratch{builder: graph.NewBuilder(0)}
}

// Cube is New(d, f) with buffer reuse: the factor automaton is cached
// across calls with the same f (a grid sweeps many d per factor), and the
// enumeration and edge buffers are recycled. The returned cube owns its
// memory and remains valid after any further use of the scratch.
func (s *Scratch) Cube(d int, f bitstr.Word) *Cube {
	if f.Len() == 0 {
		panic("core: empty forbidden factor")
	}
	if s.Provider != nil {
		if c, _, err := s.Provider.Cube(context.Background(), d, f); err == nil {
			return c
		}
	}
	if s.dfa == nil || s.dfaF != f {
		s.dfa = automaton.New(f)
		s.dfaF = f
	}
	return build(d, f, s.dfa, s)
}

// ranker returns the scratch rank/unrank tables rebuilt for (dfa, d); the
// table allocation is reused across cells.
func (s *Scratch) ranker(dfa *automaton.DFA, d int) *automaton.Ranker {
	s.rank.Reset(dfa, d)
	return &s.rank
}

// engine returns the scratch MS-BFS engine retargeted at g.
func (s *Scratch) engine(g *graph.Graph) *graph.MSBFS {
	if s.ms == nil {
		s.ms = graph.NewMSBFS(g)
		return s.ms
	}
	s.ms.Reset(g)
	return s.ms
}

// IsIsometric is the exact single-threaded embeddability check of
// Cube.IsIsometricSerial with the MS-BFS planes drawn from the scratch.
// Like the serial variant it reports the violating pair with the smallest
// source rank, so results are deterministic. Sweeps parallelize across
// grid cells, one scratch per worker, rather than inside one check.
func (s *Scratch) IsIsometric(c *Cube) IsometryResult {
	return isIsometricSerial(c, s.engine(c.g))
}
