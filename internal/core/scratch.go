package core

import (
	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Scratch holds the reusable buffers for repeated cube constructions and
// isometry checks across a (d, f) grid: the factor automaton of the last
// factor, the vertex-enumeration buffer, the graph builder's edge arena and
// the BFS queue/distance vectors. A fresh construction of Q_20(11) costs
// ~53k allocations; through a warm Scratch it costs a handful (the cube's
// own retained memory).
//
// A Scratch is not safe for concurrent use; allocate one per goroutine.
// The sweep engine does exactly that, one per worker.
type Scratch struct {
	dfa     *automaton.DFA
	dfaF    bitstr.Word
	verts   []uint64
	rank    automaton.Ranker
	builder *graph.Builder
	trav    *graph.Traverser
	dist    []int32
}

// NewScratch returns an empty scratch area; buffers grow on first use.
func NewScratch() *Scratch {
	return &Scratch{builder: graph.NewBuilder(0)}
}

// Cube is New(d, f) with buffer reuse: the factor automaton is cached
// across calls with the same f (a grid sweeps many d per factor), and the
// enumeration and edge buffers are recycled. The returned cube owns its
// memory and remains valid after any further use of the scratch.
func (s *Scratch) Cube(d int, f bitstr.Word) *Cube {
	if f.Len() == 0 {
		panic("core: empty forbidden factor")
	}
	if s.dfa == nil || s.dfaF != f {
		s.dfa = automaton.New(f)
		s.dfaF = f
	}
	return build(d, f, s.dfa, s)
}

// ranker returns the scratch rank/unrank tables rebuilt for (dfa, d); the
// table allocation is reused across cells.
func (s *Scratch) ranker(dfa *automaton.DFA, d int) *automaton.Ranker {
	s.rank.Reset(dfa, d)
	return &s.rank
}

// distBuf returns a distance vector of length n backed by the scratch.
func (s *Scratch) distBuf(n int) []int32 {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
	}
	return s.dist[:n]
}

// traverser returns the scratch traverser retargeted at g.
func (s *Scratch) traverser(g *graph.Graph) *graph.Traverser {
	if s.trav == nil {
		s.trav = graph.NewTraverser(g)
		return s.trav
	}
	s.trav.Reset(g)
	return s.trav
}

// IsIsometric is the exact single-threaded embeddability check of
// Cube.IsIsometricSerial with the BFS buffers drawn from the scratch. Like
// the serial variant it reports the violating pair with the smallest source
// rank, so results are deterministic. Sweeps parallelize across grid cells,
// one scratch per worker, rather than inside one check.
func (s *Scratch) IsIsometric(c *Cube) IsometryResult {
	return isIsometricSerial(c, s.traverser(c.g), s.distBuf(c.N()))
}
