package core

import (
	"testing"

	"gfcube/internal/bitstr"
)

// collectNeighbors gathers a NeighborsOf sweep into parallel slices.
func collectNeighbors(v CubeView, w bitstr.Word) (ranks []int64, words []bitstr.Word, ok bool) {
	ok = v.NeighborsOf(w, func(r int64, u bitstr.Word) bool {
		ranks = append(ranks, r)
		words = append(words, u)
		return true
	})
	return ranks, words, ok
}

// TestImplicitMatchesExplicit is the full cross-check grid of the implicit
// backend against the explicit cube: every forbidden factor with |f| <= 4
// and every dimension d <= 12, comparing Order, Contains, RankWord,
// UnrankWord, DegreeOf and NeighborsOf on every vertex (and on non-vertex
// probes).
func TestImplicitMatchesExplicit(t *testing.T) {
	for fl := 1; fl <= 4; fl++ {
		bitstr.ForEach(fl, func(f bitstr.Word) bool {
			for d := 0; d <= 12; d++ {
				ex := New(d, f)
				im := NewImplicit(d, f)
				if ex.Order() != im.Order() {
					t.Fatalf("f=%s d=%d: order %d vs %d", f, d, ex.Order(), im.Order())
				}
				if ex.D() != im.D() || ex.Factor() != im.Factor() {
					t.Fatalf("f=%s d=%d: identity mismatch", f, d)
				}
				for i := int64(0); i < ex.Order(); i++ {
					ew, eok := ex.UnrankWord(i)
					iw, iok := im.UnrankWord(i)
					if !eok || !iok || ew != iw {
						t.Fatalf("f=%s d=%d: UnrankWord(%d) = %v/%v vs %v/%v", f, d, i, ew, eok, iw, iok)
					}
					er, eok := ex.RankWord(ew)
					ir, iok := im.RankWord(ew)
					if !eok || !iok || er != i || ir != i {
						t.Fatalf("f=%s d=%d: RankWord(%s) = %d/%v vs %d/%v, want %d", f, d, ew, er, eok, ir, iok, i)
					}
					if !ex.Contains(ew) || !im.Contains(ew) {
						t.Fatalf("f=%s d=%d: vertex %s not contained", f, d, ew)
					}
					edeg, eok := ex.DegreeOf(ew)
					ideg, iok := im.DegreeOf(ew)
					if !eok || !iok || edeg != ideg {
						t.Fatalf("f=%s d=%d: DegreeOf(%s) = %d/%v vs %d/%v", f, d, ew, edeg, eok, ideg, iok)
					}
					eranks, ewords, eok := collectNeighbors(ex, ew)
					iranks, iwords, iok := collectNeighbors(im, ew)
					if !eok || !iok || len(eranks) != len(iranks) {
						t.Fatalf("f=%s d=%d: neighbor sweep of %s differs: %d vs %d",
							f, d, ew, len(eranks), len(iranks))
					}
					if len(eranks) != edeg {
						t.Fatalf("f=%s d=%d: %s has %d neighbors but degree %d", f, d, ew, len(eranks), edeg)
					}
					for k := range eranks {
						if eranks[k] != iranks[k] || ewords[k] != iwords[k] {
							t.Fatalf("f=%s d=%d: neighbor %d of %s: (%d,%s) vs (%d,%s)",
								f, d, k, ew, eranks[k], ewords[k], iranks[k], iwords[k])
						}
					}
				}
				// Non-vertex probes fail identically on both backends.
				if d >= f.Len() {
					bad := bitstr.Word{}
					found := false
					bitstr.ForEach(d, func(w bitstr.Word) bool {
						if w.HasFactor(f) {
							bad, found = w, true
							return false
						}
						return true
					})
					if found {
						if _, ok := ex.RankWord(bad); ok {
							t.Fatalf("f=%s d=%d: explicit ranked non-vertex %s", f, d, bad)
						}
						if _, ok := im.RankWord(bad); ok {
							t.Fatalf("f=%s d=%d: implicit ranked non-vertex %s", f, d, bad)
						}
						if _, ok := im.DegreeOf(bad); ok {
							t.Fatalf("f=%s d=%d: implicit degree of non-vertex %s", f, d, bad)
						}
						if im.NeighborsOf(bad, func(int64, bitstr.Word) bool { return true }) {
							t.Fatalf("f=%s d=%d: implicit neighbors of non-vertex %s", f, d, bad)
						}
					}
				}
				if _, ok := ex.UnrankWord(ex.Order()); ok {
					t.Fatalf("f=%s d=%d: explicit unranked out-of-range", f, d)
				}
				if _, ok := im.UnrankWord(im.Order()); ok {
					t.Fatalf("f=%s d=%d: implicit unranked out-of-range", f, d)
				}
				if _, ok := im.UnrankWord(-1); ok {
					t.Fatalf("f=%s d=%d: implicit unranked negative", f, d)
				}
			}
			return true
		})
	}
}

func TestImplicitDegreeDistribution(t *testing.T) {
	for _, fs := range []string{"11", "101", "1100"} {
		f := bitstr.MustParse(fs)
		for _, d := range []int{0, 5, 10} {
			ex := New(d, f).DegreeDistribution()
			im := NewImplicit(d, f).DegreeDistribution()
			if len(ex) != len(im) {
				t.Fatalf("f=%s d=%d: distribution lengths %d vs %d", fs, d, len(ex), len(im))
			}
			for k := range ex {
				if int64(ex[k]) != im[k] {
					t.Fatalf("f=%s d=%d: degree %d count %d vs %d", fs, d, k, ex[k], im[k])
				}
			}
		}
	}
}

func TestImplicitLargeDimension(t *testing.T) {
	// Q_62(11): |V| = F_64 = 10610209857723, far beyond any construction.
	im := NewImplicit(62, bitstr.Ones(2))
	if im.Order() != 10610209857723 {
		t.Fatalf("|V(Q_62(11))| = %d, want 10610209857723", im.Order())
	}
	for _, r := range []int64{0, 1, im.Order() / 3, im.Order() - 1} {
		w, ok := im.UnrankWord(r)
		if !ok {
			t.Fatalf("UnrankWord(%d) failed", r)
		}
		if w.HasFactor(bitstr.Ones(2)) {
			t.Fatalf("UnrankWord(%d) = %s contains 11", r, w)
		}
		back, ok := im.RankWord(w)
		if !ok || back != r {
			t.Fatalf("RankWord(UnrankWord(%d)) = %d, %v", r, back, ok)
		}
		deg, ok := im.DegreeOf(w)
		if !ok || deg < 1 || deg > 62 {
			t.Fatalf("DegreeOf(%s) = %d, %v", w, deg, ok)
		}
		// Each neighbor ranks back to a valid address and is adjacent.
		seen := 0
		im.NeighborsOf(w, func(nr int64, u bitstr.Word) bool {
			seen++
			if u.HammingDistance(w) != 1 {
				t.Fatalf("neighbor %s not adjacent to %s", u, w)
			}
			if got, ok := im.UnrankWord(nr); !ok || got != u {
				t.Fatalf("neighbor rank %d does not unrank to %s", nr, u)
			}
			return true
		})
		if seen != deg {
			t.Fatalf("neighbor sweep saw %d, degree %d", seen, deg)
		}
	}
}

// TestViewEdgeBranches exercises the non-vertex and early-stop paths of
// both backends.
func TestViewEdgeBranches(t *testing.T) {
	f := bitstr.Ones(2)
	for _, v := range []CubeView{New(8, f), NewImplicit(8, f)} {
		bad := bitstr.MustParse("11000000")
		short := bitstr.MustParse("110")
		if _, ok := v.DegreeOf(bad); ok {
			t.Errorf("%T: degree of non-vertex", v)
		}
		if _, ok := v.DegreeOf(short); ok {
			t.Errorf("%T: degree of wrong-length word", v)
		}
		if _, ok := v.RankWord(short); ok {
			t.Errorf("%T: rank of wrong-length word", v)
		}
		if v.NeighborsOf(bad, func(int64, bitstr.Word) bool { return true }) {
			t.Errorf("%T: neighbors of non-vertex", v)
		}
		// Early stop: the sweep reports false and visits exactly once.
		calls := 0
		if v.NeighborsOf(bitstr.MustParse("01010101"), func(int64, bitstr.Word) bool {
			calls++
			return false
		}) {
			t.Errorf("%T: early-stopped sweep reported complete", v)
		}
		if calls != 1 {
			t.Errorf("%T: early stop visited %d neighbors", v, calls)
		}
	}
}

func TestNewViewSelectsBackend(t *testing.T) {
	f := bitstr.Ones(2)
	if _, ok := NewView(8, f, 20).(*Cube); !ok {
		t.Fatal("NewView(8) did not pick the explicit backend")
	}
	if _, ok := NewView(40, f, 20).(*Implicit); !ok {
		t.Fatal("NewView(40) did not pick the implicit backend")
	}
	// A nonsensical build cap clamps to MaxBuildDim rather than building
	// an impossible explicit cube.
	if _, ok := NewView(40, f, 100).(*Implicit); !ok {
		t.Fatal("NewView with oversized cap did not clamp")
	}
}

func TestNewImplicitPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty factor", func() { NewImplicit(4, bitstr.Word{}) }},
		{"dimension too large", func() { NewImplicit(bitstr.MaxLen+1, bitstr.Ones(2)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
