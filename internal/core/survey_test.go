package core

import (
	"testing"

	"gfcube/internal/bitstr"
)

// E13 (extension experiment): the Table 1 census continued to length 6.
// For each complement/reversal class, the first dimension where Q_d(f)
// stops being isometric in Q_d, computed exactly. This extends the paper's
// classification with new data and exposes two classes (001101, 011001 in
// canonical form) that are good through d = 11 but are not covered by the
// paper's theory.
func TestE13SurveyLength6(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive survey")
	}
	const maxD = 11
	firstFail := map[string]int{} // canonical factor -> first failing d (0 = good)
	for _, f := range bitstr.CanonicalOfLen(6) {
		fail := 0
		for d := 7; d <= maxD; d++ {
			if !New(d, f).IsIsometric().Isometric {
				fail = d
				break
			}
		}
		firstFail[f.String()] = fail
	}
	if len(firstFail) != 20 {
		t.Fatalf("length-6 classes: %d, want 20", len(firstFail))
	}
	good := 0
	hist := map[int]int{}
	for _, fail := range firstFail {
		if fail == 0 {
			good++
		} else {
			hist[fail]++
		}
	}
	if good != 6 {
		t.Errorf("good classes: %d, want 6", good)
	}
	wantHist := map[int]int{7: 6, 8: 4, 9: 3, 10: 1}
	for d, n := range wantHist {
		if hist[d] != n {
			t.Errorf("first failures at d=%d: %d, want %d", d, hist[d], n)
		}
	}
	// The six good classes, including the two not covered by the theory.
	wantGood := []string{"000000", "000001", "001001", "001101", "010101", "011001"}
	for _, s := range wantGood {
		if firstFail[s] != 0 {
			t.Errorf("class %s should be good up to d=%d, first fail %d", s, maxD, firstFail[s])
		}
	}
	// Wherever the theory speaks it must agree with the census.
	for s, fail := range firstFail {
		f := bitstr.MustParse(s)
		for d := 7; d <= maxD; d++ {
			cl := Classify(f, d)
			if cl.Verdict == Unknown {
				continue
			}
			computed := fail == 0 || d < fail
			if computed != (cl.Verdict == Isometric) {
				t.Errorf("f=%s d=%d: census %v, theory %v (%s)", s, d, computed, cl.Verdict, cl.Reason)
			}
		}
	}
}

// The critical-word screen agrees with the exact census on all of length 6.
func TestE13SurveyScreenAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive survey")
	}
	for _, f := range bitstr.CanonicalOfLen(6) {
		for d := 7; d <= 10; d++ {
			c := New(d, f)
			_, hasCrit := c.HasCriticalPair(3)
			exact := c.IsIsometric().Isometric
			if hasCrit == exact {
				t.Errorf("f=%s d=%d: screen %v vs exact %v disagree", f, d, !hasCrit, exact)
			}
		}
	}
}
