package core

import (
	"testing"

	"gfcube/internal/bitstr"
)

// Lemma 2.4 direction: whenever a p-critical pair exists, the exact check
// must report non-isometric.
func TestLemma24CriticalImpliesNotIsometric(t *testing.T) {
	for _, row := range Table1 {
		f := row.Word()
		for d := 1; d <= 9; d++ {
			c := New(d, f)
			if pair, ok := c.HasCriticalPair(3); ok {
				if res := c.IsIsometric(); res.Isometric {
					t.Errorf("f=%s d=%d: %d-critical pair (%s, %s) found but cube is isometric",
						row.Factor, d, pair.P, pair.B, pair.C)
				}
			}
		}
	}
}

// Observed converse (Klavžar-Shpectorov): on every tested instance,
// non-isometric implies a 2- or 3-critical pair exists.
func TestNonIsometricHas23CriticalPair(t *testing.T) {
	for _, row := range Table1 {
		f := row.Word()
		for d := 1; d <= 9; d++ {
			c := New(d, f)
			if res := c.IsIsometric(); !res.Isometric {
				if _, ok := c.HasCriticalPair(3); !ok {
					t.Errorf("f=%s d=%d: not isometric but no 2/3-critical pair", row.Factor, d)
				}
			}
		}
	}
}

func TestCriticalPairsAreVerified(t *testing.T) {
	c := New(6, w("101"))
	pairs := c.CriticalPairs(2, 0)
	if len(pairs) == 0 {
		t.Fatal("Q_6(101) should have 2-critical pairs")
	}
	for _, pr := range pairs {
		if !c.IsCriticalPair(pr.B, pr.C) {
			t.Errorf("reported pair (%s, %s) fails verification", pr.B, pr.C)
		}
		if pr.B.HammingDistance(pr.C) != 2 {
			t.Errorf("pair (%s, %s) not at distance 2", pr.B, pr.C)
		}
	}
}

func TestCriticalPairLimit(t *testing.T) {
	c := New(7, w("101"))
	all := c.CriticalPairs(2, 0)
	if len(all) < 2 {
		t.Skip("needs at least two pairs")
	}
	one := c.CriticalPairs(2, 1)
	if len(one) != 1 {
		t.Errorf("limit 1 returned %d pairs", len(one))
	}
}

// The explicit witness pairs from the paper's proofs must be critical.

func TestWitnessProp32(t *testing.T) {
	// f = 1^r 0^s 1^t, d >= r+s+t+1.
	for _, rst := range [][3]int{{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {2, 2, 1}, {1, 3, 1}, {3, 1, 1}} {
		r, s, tt := rst[0], rst[1], rst[2]
		f := bitstr.OnesZerosOnes(r, s, tt)
		for d := r + s + tt + 1; d <= r+s+tt+3; d++ {
			c := New(d, f)
			b, cc := WitnessProp32(r, s, tt, d)
			if !c.IsCriticalPair(b, cc) {
				t.Errorf("Prop 3.2 witness (%s, %s) not critical for f=%s d=%d", b, cc, f, d)
			}
		}
	}
}

func TestWitnessThm33Case1(t *testing.T) {
	// f = 1100, d >= 7: 3-critical words.
	f := w("1100")
	for d := 7; d <= 9; d++ {
		c := New(d, f)
		b, cc := WitnessThm33Case1(d)
		if b.HammingDistance(cc) != 3 {
			t.Fatalf("witness distance %d, want 3", b.HammingDistance(cc))
		}
		if !c.IsCriticalPair(b, cc) {
			t.Errorf("Thm 3.3 case 1 witness (%s, %s) not critical for d=%d", b, cc, d)
		}
	}
}

func TestWitnessThm33Case2(t *testing.T) {
	// f = 1^r 0^s with r > 2 or s > 2, d >= 2r+2s-2.
	for _, rs := range [][2]int{{3, 3}, {3, 4}, {4, 3}} {
		r, s := rs[0], rs[1]
		f := bitstr.OnesZeros(r, s)
		d := 2*r + 2*s - 2
		c := New(d, f)
		b, cc := WitnessThm33Case2(r, s, d)
		if !c.IsCriticalPair(b, cc) {
			t.Errorf("Thm 3.3 case 2 witness (%s, %s) not critical for f=%s d=%d", b, cc, f, d)
		}
	}
}

func TestWitnessThm33InnerCase(t *testing.T) {
	// f = 1^2 0^s, s >= 4, d > s+4.
	for _, s := range []int{4, 5} {
		f := bitstr.OnesZeros(2, s)
		for d := s + 5; d <= s+6; d++ {
			c := New(d, f)
			b, cc := WitnessThm33Case1Inner(s, d)
			if b.Len() != d {
				t.Fatalf("inner witness has length %d, want %d", b.Len(), d)
			}
			if !c.IsCriticalPair(b, cc) {
				t.Errorf("Thm 3.3 inner witness (%s, %s) not critical for f=%s d=%d", b, cc, f, d)
			}
		}
	}
}

func TestWitnessProp41(t *testing.T) {
	// f = (10)^s 1, s >= 2, d >= 4s.
	for _, s := range []int{2, 3} {
		f := bitstr.AlternatingOne(s)
		for d := 4 * s; d <= 4*s+1; d++ {
			if d > 12 {
				continue
			}
			c := New(d, f)
			b, cc := WitnessProp41(s, d)
			if !c.IsCriticalPair(b, cc) {
				t.Errorf("Prop 4.1 witness (%s, %s) not critical for f=%s d=%d", b, cc, f, d)
			}
		}
	}
}

func TestWitnessProp42(t *testing.T) {
	// f = (10)^r 1 (10)^s, d >= 2r+2s+3.
	for _, rs := range [][2]int{{1, 1}, {1, 2}, {2, 1}} {
		r, s := rs[0], rs[1]
		f := bitstr.AlternatingMid(r, s)
		d := 2*r + 2*s + 3
		c := New(d, f)
		b, cc := WitnessProp42(r, s, d)
		if !c.IsCriticalPair(b, cc) {
			t.Errorf("Prop 4.2 witness (%s, %s) not critical for f=%s d=%d", b, cc, f, d)
		}
	}
}

func TestIsCriticalPairRejectsNonCritical(t *testing.T) {
	c := Fibonacci(5) // isometric, so no pair should be critical
	words := c.Words()
	for i := 0; i < len(words); i++ {
		for j := i + 1; j < len(words); j++ {
			if c.IsCriticalPair(words[i], words[j]) {
				t.Fatalf("Γ_5 reported critical pair (%s, %s)", words[i], words[j])
			}
		}
	}
}

func TestFindCriticalPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p=1 did not panic")
		}
	}()
	New(4, w("11")).FindCriticalPair(1)
}
