package core

import (
	"gfcube/internal/bitstr"
	"gfcube/internal/hypercube"
)

// MedianWitness is a triple of vertices of Q_d(f) whose hypercube median is
// not a vertex of Q_d(f); it certifies that the cube is not a median closed
// subgraph of Q_d.
type MedianWitness struct {
	U, V, W bitstr.Word
	Median  bitstr.Word
}

// IsMedianClosed reports whether Q_d(f) is a median closed subgraph of Q_d:
// for every triple of vertices the (unique) hypercube median, the bitwise
// majority word, is also a vertex. For a negative answer the witness triple
// is returned. Proposition 6.4 proves this holds exactly when |f| = 2
// (paths and Fibonacci cubes), for d >= |f|.
//
// The check is exact and enumerates all triples; it is meant for the
// moderate cube sizes of the experiments (the cost is O(|V|^3) median
// lookups with early exit).
func (c *Cube) IsMedianClosed() (bool, MedianWitness) {
	n := c.N()
	for i := 0; i < n; i++ {
		wi := c.Word(i)
		for j := i + 1; j < n; j++ {
			wj := c.Word(j)
			for k := j + 1; k < n; k++ {
				wk := c.Word(k)
				m := hypercube.Median(wi, wj, wk)
				if !c.Contains(m) {
					return false, MedianWitness{U: wi, V: wj, W: wk, Median: m}
				}
			}
		}
	}
	return true, MedianWitness{}
}

// Prop64Witness constructs the non-median triple used in the proof of
// Proposition 6.4 for |f| >= 3 and d >= |f|. With g the complement of the
// last bit of f, the three words are obtained from f by complementing
// exactly one of its last three positions and appending d-|f| copies of g.
// They avoid f, are pairwise at distance 2, and their unique hypercube
// median (the bitwise majority) is f g...g, which contains f; the triple
// therefore certifies that Q_d(f) is not median closed.
func Prop64Witness(f bitstr.Word, d int) (x, y, z, median bitstr.Word) {
	n := f.Len()
	if n < 3 {
		panic("core: Prop64Witness needs |f| >= 3")
	}
	if d < n {
		panic("core: Prop64Witness needs d >= |f|")
	}
	g := f.Bit(n-1) ^ 1
	tail := bitstr.Zeros(0)
	for i := 0; i < d-n; i++ {
		tail = tail.Concat(bitstr.New(g, 1))
	}
	x = f.Flip(n - 1).Concat(tail)
	y = f.Flip(n - 2).Concat(tail)
	z = f.Flip(n - 3).Concat(tail)
	median = f.Concat(tail)
	return x, y, z, median
}
