package core

import (
	"context"
	"math/bits"
	"runtime"
	"sync"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// IsometryResult reports the outcome of an exact embeddability check.
type IsometryResult struct {
	Isometric bool
	// For a negative result, U and V are vertices of Q_d(f) whose distance
	// inside the cube exceeds their Hamming distance (or are disconnected).
	U, V bitstr.Word
	// CubeDist is the distance inside Q_d(f) (-1 when disconnected) and
	// HammingDist the distance in the host hypercube.
	CubeDist    int32
	HammingDist int32
}

// IsIsometric reports whether Q_d(f) is an isometric subgraph of Q_d, by the
// definition in Section 2: d_{Q_d(f)}(u,v) = d_{Q_d}(u,v) for every pair of
// vertices. The check runs one BFS per vertex, parallelized across
// runtime.GOMAXPROCS(0) workers, and stops at the first violation.
func (c *Cube) IsIsometric() IsometryResult {
	res, _ := c.IsIsometricCtx(context.Background())
	return res
}

// IsIsometricCtx is IsIsometric with cooperative cancellation: workers stop
// between BFS sweeps once ctx is done, and the context error is returned
// when the check was abandoned before reaching a verdict.
func (c *Cube) IsIsometricCtx(ctx context.Context) (IsometryResult, error) {
	n := c.N()
	if n <= 1 {
		return IsometryResult{Isometric: true}, nil
	}
	var (
		mu      sync.Mutex
		found   *IsometryResult
		wg      sync.WaitGroup
		sources = make(chan int, n)
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := graph.NewTraverser(c.g)
			dist := make([]int32, n)
			for src := range sources {
				if ctx.Err() != nil {
					continue
				}
				mu.Lock()
				stop := found != nil
				mu.Unlock()
				if stop {
					continue
				}
				t.BFS(src, dist)
				for v := 0; v < n; v++ {
					if v == src {
						continue
					}
					h := int32(bits.OnesCount64(c.verts[src] ^ c.verts[v]))
					if dist[v] != h {
						mu.Lock()
						if found == nil {
							found = &IsometryResult{
								Isometric:   false,
								U:           c.Word(src),
								V:           c.Word(v),
								CubeDist:    dist[v],
								HammingDist: h,
							}
						}
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	for src := 0; src < n; src++ {
		sources <- src
	}
	close(sources)
	wg.Wait()
	if found != nil {
		return *found, nil
	}
	if err := ctx.Err(); err != nil {
		return IsometryResult{}, err
	}
	return IsometryResult{Isometric: true}, nil
}

// IsIsometricSerial is the single-threaded variant of IsIsometric; it exists
// for the parallelism ablation benchmark and for deterministic witnesses
// (the violating pair with the smallest source rank).
func (c *Cube) IsIsometricSerial() IsometryResult {
	return isIsometricSerial(c, graph.NewTraverser(c.g), make([]int32, c.N()))
}

// isIsometricSerial is the exact serial check over caller-provided buffers:
// one BFS per source, Hamming comparison against every other vertex, first
// violation (smallest source rank) returned as the witness. Both the cold
// path (IsIsometricSerial) and the scratch path (Scratch.IsIsometric) run
// exactly this code.
func isIsometricSerial(c *Cube, t *graph.Traverser, dist []int32) IsometryResult {
	n := c.N()
	for src := 0; src < n; src++ {
		t.BFS(src, dist)
		for v := 0; v < n; v++ {
			if v == src {
				continue
			}
			h := int32(bits.OnesCount64(c.verts[src] ^ c.verts[v]))
			if dist[v] != h {
				return IsometryResult{
					Isometric:   false,
					U:           c.Word(src),
					V:           c.Word(v),
					CubeDist:    dist[v],
					HammingDist: h,
				}
			}
		}
	}
	return IsometryResult{Isometric: true}
}

// IsIsometricQuick decides embeddability for moderate d without building the
// full distance matrix: it first screens for 2- and 3-critical words (Lemma
// 2.4 gives non-embeddability immediately), then falls back to the exact
// check. On every instance tested in this repository the screen alone is
// conclusive for the negative cases, matching the follow-up literature
// (Klavžar-Shpectorov), but correctness never depends on that: a positive
// answer is always re-verified exactly.
func (c *Cube) IsIsometricQuick() IsometryResult {
	res, _ := c.IsIsometricQuickCtx(context.Background())
	return res
}

// IsIsometricQuickCtx is IsIsometricQuick with cooperative cancellation of
// the exact fallback check.
func (c *Cube) IsIsometricQuickCtx(ctx context.Context) (IsometryResult, error) {
	for p := 2; p <= 3; p++ {
		if pair, ok := c.FindCriticalPair(p); ok {
			return IsometryResult{
				Isometric:   false,
				U:           pair.B,
				V:           pair.C,
				CubeDist:    -2, // not computed by the screen
				HammingDist: int32(p),
			}, nil
		}
	}
	return c.IsIsometricCtx(ctx)
}
