package core

import (
	"context"
	"math/bits"
	"sync/atomic"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// IsometryResult reports the outcome of an exact embeddability check.
type IsometryResult struct {
	Isometric bool
	// For a negative result, U and V are vertices of Q_d(f) whose distance
	// inside the cube exceeds their Hamming distance (or are disconnected).
	U, V bitstr.Word
	// CubeDist is the distance inside Q_d(f) (-1 when disconnected) and
	// HammingDist the distance in the host hypercube.
	CubeDist    int32
	HammingDist int32
}

// IsIsometric reports whether Q_d(f) is an isometric subgraph of Q_d, by the
// definition in Section 2: d_{Q_d(f)}(u,v) = d_{Q_d}(u,v) for every pair of
// vertices. Distances come from the MS-BFS engine — 64 sources per bitset
// batch, batches fanned across runtime.GOMAXPROCS(0) workers — and the
// sweep sheds batches that can no longer improve the witness.
func (c *Cube) IsIsometric() IsometryResult {
	res, _ := c.IsIsometricCtx(context.Background())
	return res
}

// noWitness is the atomic witness-key sentinel (no violation found).
const noWitness = ^uint64(0)

// violationIn scans a distance block against Hamming distances and returns
// the first violating (source, vertex) pair in (source rank, vertex rank)
// order, if any. Unreachable vertices (-1) always violate, since distinct
// hypercube vertices are at finite Hamming distance.
func (c *Cube) violationIn(b *graph.DistBlock) (src, v int, bad bool) {
	n := b.N()
	for i, s := range b.Sources {
		row := b.Row(i)
		ws := c.verts[s]
		for v := 0; v < n; v++ {
			if v == int(s) {
				continue
			}
			if row[v] != int32(bits.OnesCount64(ws^c.verts[v])) {
				return int(s), v, true
			}
		}
	}
	return 0, 0, false
}

// IsIsometricCtx is IsIsometric with cooperative cancellation: remaining
// batches are shed once ctx is done, and the context error is returned
// whenever a batch was dropped because of cancellation — a witness found
// in a truncated sweep may not be the minimal one, so it is discarded
// rather than returned. On a nil error the reported witness is the
// violating pair with the lexicographically smallest (source, vertex)
// ranks — identical to the serial check — regardless of worker count or
// scheduling.
func (c *Cube) IsIsometricCtx(ctx context.Context) (IsometryResult, error) {
	n := c.N()
	if n <= 1 {
		return IsometryResult{Isometric: true}, nil
	}
	nn := uint64(n)
	var best atomic.Uint64
	best.Store(noWitness)
	var truncated atomic.Bool
	opts := graph.MSOptions{
		// A batch whose smallest source rank already exceeds the best
		// witness key cannot improve it; the witness keys of batch b start
		// at b·64·n. This keeps the early-exit cost of non-isometric
		// instances at one or two batches. The sound shed is checked first
		// so `truncated` is set only when cancellation drops a batch that
		// could still have mattered.
		Skip: func(batch int) bool {
			if uint64(batch)*graph.MSBatchSize*nn >= best.Load() {
				return true
			}
			if ctx.Err() != nil {
				truncated.Store(true)
				return true
			}
			return false
		},
	}
	_ = c.g.ForEachSourceBatchPar(nil, opts, func(_ int, b *graph.DistBlock) error {
		if s, v, bad := c.violationIn(b); bad {
			key := uint64(s)*nn + uint64(v)
			for {
				cur := best.Load()
				if key >= cur || best.CompareAndSwap(cur, key) {
					break
				}
			}
		}
		return nil
	})
	if truncated.Load() {
		return IsometryResult{}, ctx.Err()
	}
	if key := best.Load(); key != noWitness {
		s, v := int(key/nn), int(key%nn)
		return IsometryResult{
			Isometric:   false,
			U:           c.Word(s),
			V:           c.Word(v),
			CubeDist:    c.g.Dist(s, v),
			HammingDist: int32(bits.OnesCount64(c.verts[s] ^ c.verts[v])),
		}, nil
	}
	return IsometryResult{Isometric: true}, nil
}

// IsIsometricSerial is the single-threaded variant of IsIsometric; it exists
// for the parallelism ablation benchmark and for deterministic witnesses
// (the violating pair with the smallest source rank).
func (c *Cube) IsIsometricSerial() IsometryResult {
	return isIsometricSerial(c, graph.NewMSBFS(c.g))
}

// isIsometricSerial is the exact check over a caller-provided engine:
// batches of 64 consecutive sources in rank order, Hamming comparison
// against every other vertex, first violation (smallest source rank, then
// smallest vertex rank) returned as the witness. Both the cold path
// (IsIsometricSerial) and the scratch path (Scratch.IsIsometric) run
// exactly this code.
func isIsometricSerial(c *Cube, e *graph.MSBFS) IsometryResult {
	res := IsometryResult{Isometric: true}
	e.RunAll(func(b *graph.DistBlock) bool {
		s, v, bad := c.violationIn(b)
		if !bad {
			return true
		}
		res = IsometryResult{
			Isometric:   false,
			U:           c.Word(s),
			V:           c.Word(v),
			CubeDist:    b.Row(s - int(b.Sources[0]))[v],
			HammingDist: int32(bits.OnesCount64(c.verts[s] ^ c.verts[v])),
		}
		return false
	})
	return res
}

// IsIsometricQuick decides embeddability for moderate d without running the
// full distance sweep: it first screens for 2- and 3-critical words (Lemma
// 2.4 gives non-embeddability immediately), then falls back to the exact
// check. On every instance tested in this repository the screen alone is
// conclusive for the negative cases, matching the follow-up literature
// (Klavžar-Shpectorov), but correctness never depends on that: a positive
// answer is always re-verified exactly.
func (c *Cube) IsIsometricQuick() IsometryResult {
	res, _ := c.IsIsometricQuickCtx(context.Background())
	return res
}

// IsIsometricQuickCtx is IsIsometricQuick with cooperative cancellation of
// the exact fallback check.
func (c *Cube) IsIsometricQuickCtx(ctx context.Context) (IsometryResult, error) {
	for p := 2; p <= 3; p++ {
		if pair, ok := c.FindCriticalPair(p); ok {
			return IsometryResult{
				Isometric:   false,
				U:           pair.B,
				V:           pair.C,
				CubeDist:    -2, // not computed by the screen
				HammingDist: int32(p),
			}, nil
		}
	}
	return c.IsIsometricCtx(ctx)
}
