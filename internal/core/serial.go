package core

import (
	"encoding/binary"
	"fmt"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
	"gfcube/internal/memview"
)

// Artifact payloads for the two backends. Both are little-endian and
// 8-aligned section by section when the payload itself starts 8-aligned
// (the store guarantees this), so a mapped artifact is usable in place.
//
// Explicit cube (store kind "cube"):
//
//	uint64 d, flen, fbits   identity of Q_d(f)
//	uint64 nverts           |V|
//	uint64 verts[nverts]    sorted packed f-free words
//	graph CSR               see graph.AppendBinary
//
// Implicit backend (store kind "ranker"): exactly the Ranker payload of
// automaton.AppendBinary.
//
// Both Load paths re-verify the decoded structure against a freshly
// built factor automaton, so a load that succeeds answers every CubeView
// query byte-identically to a recomputed backend; anything else fails
// closed into an error and the caller recomputes. Note the payloads are
// keyed by the exact factor, not its canonical class representative:
// rank order is not invariant under the complement/reversal symmetry.

// AppendBinary appends the cube's serialized form — vertex enumeration
// plus CSR graph — to dst and returns the extended slice.
func (c *Cube) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.d))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.f.Len()))
	dst = binary.LittleEndian.AppendUint64(dst, c.f.Bits)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(c.verts)))
	for _, v := range c.verts {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return c.g.AppendBinary(dst)
}

// LoadCube reconstructs Q_d(f) from data written by Cube.AppendBinary,
// refusing anything that is not exactly the (d, f) the caller asked for.
// The vertex enumeration is verified against the factor automaton's rank
// tables (every listed word must be f-free with rank equal to its
// position, and the count must match the counting DP), and the graph is
// structurally validated by graph.LoadFrom. The vertex and adjacency
// arenas may alias read-only mapped memory.
func LoadCube(data []byte, d int, f bitstr.Word) (*Cube, error) {
	if f.Len() == 0 {
		return nil, fmt.Errorf("core: empty forbidden factor")
	}
	if d < 0 || d > MaxBuildDim {
		return nil, fmt.Errorf("core: explicit cube dimension %d out of range [0, %d]", d, MaxBuildDim)
	}
	if len(data) < 32 {
		return nil, fmt.Errorf("core: cube payload %d bytes, want >= 32", len(data))
	}
	gotD := binary.LittleEndian.Uint64(data)
	gotFlen := binary.LittleEndian.Uint64(data[8:])
	gotFbits := binary.LittleEndian.Uint64(data[16:])
	if gotD != uint64(d) || gotFlen != uint64(f.Len()) || gotFbits != f.Bits {
		return nil, fmt.Errorf("core: cube payload is for d=%d |f|=%d, want Q_%d(%s)", gotD, gotFlen, d, f)
	}
	nverts := binary.LittleEndian.Uint64(data[24:])
	dfa := automaton.New(f)
	rk := dfa.Ranker(d)
	if nverts != rk.TotalU64() {
		return nil, fmt.Errorf("core: cube payload lists %d vertices, counting DP says %d", nverts, rk.TotalU64())
	}
	vertsEnd := uint64(32) + 8*nverts
	if uint64(len(data)) < vertsEnd {
		return nil, fmt.Errorf("core: cube payload truncated in vertex section")
	}
	verts, ok := memview.Uint64(data[32:vertsEnd])
	if !ok {
		return nil, fmt.Errorf("core: misaligned vertex section")
	}
	for i, v := range verts {
		// rank(v) == i proves the list is exactly the increasing f-free
		// enumeration: f-freeness, sortedness and completeness in one probe.
		if r, ok := rk.RankBits(v); !ok || r != uint64(i) {
			return nil, fmt.Errorf("core: vertex %d of cube payload is out of place", i)
		}
	}
	g, err := graph.LoadFrom(data[vertsEnd:])
	if err != nil {
		return nil, err
	}
	if uint64(g.N()) != nverts {
		return nil, fmt.Errorf("core: cube graph has %d vertices, enumeration has %d", g.N(), nverts)
	}
	// The verification ranker doubles as the cube's Rank backend.
	return &Cube{d: d, f: f, dfa: dfa, rk: rk, verts: verts, g: g}, nil
}

// AppendBinary appends the implicit backend's serialized form — its rank
// tables — to dst and returns the extended slice.
func (im *Implicit) AppendBinary(dst []byte) []byte {
	return im.rk.AppendBinary(dst)
}

// LoadImplicit reconstructs the implicit backend for Q_d(f) from data
// written by Implicit.AppendBinary (equivalently, Ranker.AppendBinary).
// The rank tables are verified in full against a freshly built factor
// automaton; see automaton.LoadRanker.
func LoadImplicit(data []byte, d int, f bitstr.Word) (*Implicit, error) {
	if f.Len() == 0 {
		return nil, fmt.Errorf("core: empty forbidden factor")
	}
	if d < 0 || d > bitstr.MaxLen {
		return nil, fmt.Errorf("core: implicit dimension %d out of range [0, %d]", d, bitstr.MaxLen)
	}
	dfa := automaton.New(f)
	rk, err := automaton.LoadRanker(dfa, data)
	if err != nil {
		return nil, err
	}
	if rk.D() != d {
		return nil, fmt.Errorf("core: ranker payload is for d=%d, want %d", rk.D(), d)
	}
	return &Implicit{d: d, f: f, dfa: dfa, rk: rk}, nil
}
