package core

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/hypercube"
)

// E7 / Proposition 6.4: among generalized Fibonacci cubes with d >= |f|,
// exactly the |f| = 2 cases (paths and Fibonacci cubes) are median closed.
func TestE7Prop64MedianClosedLength2(t *testing.T) {
	for _, fs := range []string{"11", "10", "01", "00"} {
		f := w(fs)
		for d := 2; d <= 7; d++ {
			if ok, wit := New(d, f).IsMedianClosed(); !ok {
				t.Errorf("Q_%d(%s) should be median closed; witness (%s,%s,%s) -> %s",
					d, fs, wit.U, wit.V, wit.W, wit.Median)
			}
		}
	}
}

func TestE7Prop64NotMedianClosedLonger(t *testing.T) {
	for _, fs := range []string{"111", "110", "101", "1100", "1010", "1111", "11010"} {
		f := w(fs)
		for d := f.Len(); d <= f.Len()+2 && d <= 7; d++ {
			ok, wit := New(d, f).IsMedianClosed()
			if ok {
				t.Errorf("Q_%d(%s) should not be median closed", d, fs)
				continue
			}
			// The witness must be genuine.
			c := New(d, f)
			if !c.Contains(wit.U) || !c.Contains(wit.V) || !c.Contains(wit.W) {
				t.Error("witness vertices not in cube")
			}
			if c.Contains(wit.Median) {
				t.Error("witness median is in the cube")
			}
			if hypercube.Median(wit.U, wit.V, wit.W) != wit.Median {
				t.Error("witness median is not the majority word")
			}
		}
	}
}

// The constructive witness triple from the proof of Proposition 6.4.
func TestProp64WitnessConstruction(t *testing.T) {
	for _, fs := range []string{"111", "110", "101", "1100", "11010", "101010"} {
		f := w(fs)
		for d := f.Len(); d <= f.Len()+3 && d <= 12; d++ {
			x, y, z, m := Prop64Witness(f, d)
			c := New(d, f)
			for _, v := range []bitstr.Word{x, y, z} {
				if !c.Contains(v) {
					t.Errorf("f=%s d=%d: witness %s not a vertex", fs, d, v)
				}
			}
			if c.Contains(m) {
				t.Errorf("f=%s d=%d: median %s is a vertex, should contain f", fs, d, m)
			}
			if hypercube.Median(x, y, z) != m {
				t.Errorf("f=%s d=%d: majority of witnesses != claimed median", fs, d)
			}
			if x.HammingDistance(y) != 2 || y.HammingDistance(z) != 2 || x.HammingDistance(z) != 2 {
				t.Errorf("f=%s d=%d: witnesses not pairwise at distance 2", fs, d)
			}
		}
	}
}

func TestProp64WitnessPanics(t *testing.T) {
	assert := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assert("short factor", func() { Prop64Witness(w("11"), 5) })
	assert("d too small", func() { Prop64Witness(w("111"), 2) })
}

// Fibonacci cubes are median graphs ([12]); spot-check the stronger local
// property that the median of every triple of Γ_d vertices is a vertex.
func TestFibonacciCubesMedianClosed(t *testing.T) {
	for d := 1; d <= 8; d++ {
		if ok, _ := Fibonacci(d).IsMedianClosed(); !ok {
			t.Errorf("Γ_%d not median closed", d)
		}
	}
}
