package core

import (
	"sync"

	"gfcube/internal/bitstr"
)

// AllD marks a Table 1 row whose factor yields an isometric subgraph for
// every dimension d.
const AllD = -1

// Table1Row is one row of the paper's Table 1: the classification of
// embeddability of Q_d(f) for a forbidden factor of length at most 5, up to
// complement and reversal.
type Table1Row struct {
	// Factor is the representative string as printed in the paper.
	Factor string
	// UpTo is the largest d for which Q_d(f) is an isometric subgraph of
	// Q_d; AllD means isometric for every d.
	UpTo int
	// Citation is the result of the paper that settles the row.
	Citation string
}

// VerdictFor returns the row's verdict for dimension d.
func (r Table1Row) VerdictFor(d int) Verdict {
	if r.UpTo == AllD || d <= r.UpTo {
		return Isometric
	}
	return NotIsometric
}

// Word returns the row's factor as a parsed word.
func (r Table1Row) Word() bitstr.Word { return bitstr.MustParse(r.Factor) }

// Table1 is the full content of Table 1 ("Classification of embeddability of
// generalized Fibonacci cubes with forbidden factors of length at most 5"),
// one entry per complement/reversal class, transcribed from the paper.
var Table1 = []Table1Row{
	// Length 1.
	{"1", AllD, "Proposition 3.1"},
	// Length 2.
	{"11", AllD, "Proposition 3.1"},
	{"10", AllD, "Theorem 3.3(i)"},
	// Length 3.
	{"111", AllD, "Proposition 3.1"},
	{"110", AllD, "Theorem 3.3(i)"},
	{"101", 3, "Proposition 3.2"},
	// Length 4.
	{"1111", AllD, "Proposition 3.1"},
	{"1110", AllD, "Theorem 3.3(i)"},
	{"1100", 6, "Theorem 3.3(ii)"},
	{"1010", AllD, "Theorem 4.4"},
	{"1101", 4, "Proposition 3.2"},
	{"1001", 4, "Proposition 3.2"},
	// Length 5.
	{"11111", AllD, "Proposition 3.1"},
	{"11110", AllD, "Theorem 3.3(i)"},
	{"11100", 7, "Theorem 3.3(ii)"},
	{"11001", 5, "Proposition 3.2"},
	{"11101", 5, "Proposition 3.2"},
	{"11011", 5, "Proposition 3.2"},
	{"10001", 5, "Proposition 3.2"},
	{"10110", 6, "Lemma 2.1 + computer check (d = 6); Proposition 4.2 (d >= 7)"},
	{"10101", 7, "Lemma 2.1 + computer check (d = 6, 7); Proposition 4.1 (d >= 8)"},
	{"11010", AllD, "Proposition 5.1"},
}

// table1Index maps each row's canonical class representative to the row,
// built once on first lookup. Hot sweep paths (the E02 benchmark
// verifier, survey theory columns) call Table1Lookup per cell, so the
// old per-call rescan that recanonicalized all 22 rows was measurable.
var table1Index struct {
	once sync.Once
	m    map[bitstr.Word]Table1Row
}

// Table1Lookup returns the Table 1 row whose complement/reversal class
// contains f, and whether one exists (it does for every nonempty f with
// |f| <= 5).
func Table1Lookup(f bitstr.Word) (Table1Row, bool) {
	table1Index.once.Do(func() {
		table1Index.m = make(map[bitstr.Word]Table1Row, len(Table1))
		for _, row := range Table1 {
			table1Index.m[bitstr.CanonicalRepresentative(row.Word())] = row
		}
	})
	row, ok := table1Index.m[bitstr.CanonicalRepresentative(f)]
	return row, ok
}
