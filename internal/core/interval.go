package core

import (
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
	"gfcube/internal/hypercube"
)

// Interval returns I_{Q_d(f)}(u, v): the vertices lying on shortest u,v-paths
// inside the cube, in increasing packed order. For u, v in different
// components the interval is empty.
//
// When Q_d(f) is an isometric subgraph of Q_d, the interval coincides with
// the hypercube interval restricted to the cube's vertices:
// I_{Q_d(f)}(u,v) = I_{Q_d}(u,v) ∩ V(Q_d(f)); the tests verify this
// characterization on both isometric and non-isometric instances.
func (c *Cube) Interval(u, v bitstr.Word) []bitstr.Word {
	iu, ok1 := c.Rank(u)
	iv, ok2 := c.Rank(v)
	if !ok1 || !ok2 {
		return nil
	}
	t := graph.NewTraverser(c.g)
	du := make([]int32, c.N())
	dv := make([]int32, c.N())
	t.BFS(iu, du)
	t.BFS(iv, dv)
	if du[iv] == graph.Unreachable {
		return nil
	}
	target := du[iv]
	var out []bitstr.Word
	for i := 0; i < c.N(); i++ {
		if du[i] != graph.Unreachable && dv[i] != graph.Unreachable && du[i]+dv[i] == target {
			out = append(out, c.Word(i))
		}
	}
	return out
}

// IntervalMatchesHypercube reports whether I_{Q_d(f)}(u,v) equals
// I_{Q_d}(u,v) ∩ V(Q_d(f)) - true for every pair exactly when distances
// between u and v region behave isometrically.
func (c *Cube) IntervalMatchesHypercube(u, v bitstr.Word) bool {
	got := c.Interval(u, v)
	var want []bitstr.Word
	for _, w := range hypercube.Interval(u, v) {
		if c.Contains(w) {
			want = append(want, w)
		}
	}
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
