package core

import (
	"math/rand"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/hypercube"
)

func TestIntervalIsometricCharacterization(t *testing.T) {
	// On isometric cubes the cube interval equals the hypercube interval
	// restricted to cube vertices, for every pair.
	for _, fs := range []string{"11", "110", "1010"} {
		f := bitstr.MustParse(fs)
		c := New(7, f)
		if !c.IsIsometric().Isometric {
			t.Fatalf("expected isometric instance for f=%s", fs)
		}
		for i := 0; i < c.N(); i++ {
			for j := i + 1; j < c.N(); j++ {
				if !c.IntervalMatchesHypercube(c.Word(i), c.Word(j)) {
					t.Fatalf("f=%s: interval characterization fails at (%s, %s)",
						fs, c.Word(i), c.Word(j))
				}
			}
		}
	}
}

func TestIntervalNonIsometricViolation(t *testing.T) {
	// On a non-isometric cube the characterization must fail at the
	// isometry witness (the pair whose geodesics leave the hypercube
	// interval).
	c := New(5, bitstr.MustParse("101"))
	res := c.IsIsometricSerial()
	if res.Isometric {
		t.Fatal("Q_5(101) should not be isometric")
	}
	if c.IntervalMatchesHypercube(res.U, res.V) {
		t.Errorf("characterization should fail at witness (%s, %s)", res.U, res.V)
	}
}

func TestIntervalBasics(t *testing.T) {
	c := Fibonacci(6)
	u := bitstr.MustParse("000000")
	// I(u, u) = {u}.
	iv := c.Interval(u, u)
	if len(iv) != 1 || iv[0] != u {
		t.Errorf("I(u,u) = %v", iv)
	}
	// Interval of adjacent vertices is the pair itself.
	v := bitstr.MustParse("000001")
	iv = c.Interval(u, v)
	if len(iv) != 2 {
		t.Errorf("adjacent interval has %d vertices", len(iv))
	}
	// Non-vertices give nil.
	if c.Interval(bitstr.MustParse("110000"), u) != nil {
		t.Error("interval with non-vertex should be nil")
	}
}

func TestIntervalContainsMedianTriple(t *testing.T) {
	// In the median-closed Γ_d, the median of any triple lies in all three
	// pairwise intervals (spot-checked randomly).
	c := Fibonacci(8)
	rng := rand.New(rand.NewSource(3))
	inInterval := func(w bitstr.Word, iv []bitstr.Word) bool {
		for _, x := range iv {
			if x == w {
				return true
			}
		}
		return false
	}
	for iter := 0; iter < 25; iter++ {
		u := c.Word(rng.Intn(c.N()))
		v := c.Word(rng.Intn(c.N()))
		w := c.Word(rng.Intn(c.N()))
		m := hypercube.Median(u, v, w)
		if !c.Contains(m) {
			t.Fatalf("median %s missing from median-closed Γ_8", m)
		}
		if !inInterval(m, c.Interval(u, v)) || !inInterval(m, c.Interval(u, w)) || !inInterval(m, c.Interval(v, w)) {
			t.Fatalf("median %s outside a pairwise interval of (%s,%s,%s)", m, u, v, w)
		}
	}
}
