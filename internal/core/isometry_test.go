package core

import (
	"context"
	"testing"
)

// maxDExact bounds the exhaustive isometry sweeps; large enough to exercise
// every threshold appearing in Table 1 (the largest is d = 8 for 10101 and
// 11100).
const maxDExact = 10

// TestTable1AgainstExactCheck is the paper's Table 1, reproduced: for every
// row and every dimension up to maxDExact, the exact isometry check on the
// explicitly built Q_d(f) must agree with the table's classification.
func TestTable1AgainstExactCheck(t *testing.T) {
	for _, row := range Table1 {
		f := row.Word()
		for d := 1; d <= maxDExact; d++ {
			want := row.VerdictFor(d)
			res := New(d, f).IsIsometric()
			got := NotIsometric
			if res.Isometric {
				got = Isometric
			}
			if got != want {
				t.Errorf("Table 1 row %s, d=%d: computed %v, table says %v (witness %s-%s)",
					row.Factor, d, got, want, res.U, res.V)
			}
		}
	}
}

// TestTable1CoversAllClasses: Table 1 must contain exactly one row per
// complement/reversal class of factors of length 1..5.
func TestTable1CoversAllClasses(t *testing.T) {
	seen := make(map[string]int)
	for _, row := range Table1 {
		canon := row.Word()
		key := canonKey(canon)
		seen[key]++
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("class %s appears %d times in Table 1", key, n)
		}
	}
	want := map[int]int{1: 1, 2: 2, 3: 3, 4: 6, 5: 10}
	byLen := make(map[int]int)
	for _, row := range Table1 {
		byLen[len(row.Factor)]++
	}
	for l, n := range want {
		if byLen[l] != n {
			t.Errorf("Table 1 has %d rows of length %d, want %d", byLen[l], l, n)
		}
	}
}

func canonKey(f interface{ String() string }) string { return f.String() }

func TestSerialParallelAgree(t *testing.T) {
	for _, row := range Table1 {
		f := row.Word()
		for d := 1; d <= 8; d++ {
			c := New(d, f)
			p := c.IsIsometric()
			s := c.IsIsometricSerial()
			if p.Isometric != s.Isometric {
				t.Errorf("f=%s d=%d: parallel %v, serial %v", row.Factor, d, p.Isometric, s.Isometric)
			}
		}
	}
}

func TestIsometryWitnessIsValid(t *testing.T) {
	// For a negative result the reported pair must really violate isometry.
	c := New(5, w("101")) // not isometric for d >= 4
	res := c.IsIsometric()
	if res.Isometric {
		t.Fatal("Q_5(101) should not be isometric")
	}
	iu, ok1 := c.Rank(res.U)
	iv, ok2 := c.Rank(res.V)
	if !ok1 || !ok2 {
		t.Fatal("witness vertices not in cube")
	}
	if int32(res.HammingDist) != int32(res.U.HammingDistance(res.V)) {
		t.Error("reported Hamming distance wrong")
	}
	if got := c.Dist(iu, iv); got == int32(res.HammingDist) {
		t.Errorf("witness pair has cube distance %d equal to Hamming distance", got)
	}
}

func TestTrivialCubesIsometric(t *testing.T) {
	// Lemma 2.1: for d <= |f| the cube is isometric (it is Q_d or Q_d minus
	// a vertex).
	for _, fs := range []string{"101", "1001", "10101", "110010"} {
		f := w(fs)
		for d := 1; d <= f.Len(); d++ {
			if res := New(d, f).IsIsometric(); !res.Isometric {
				t.Errorf("Lemma 2.1 violated for f=%s d=%d", fs, d)
			}
		}
	}
}

func TestInTextComputerChecks(t *testing.T) {
	// The paper relies on four explicit computer checks; reproduce each.
	cases := []struct {
		f    string
		d    int
		want bool
	}{
		{"1100", 6, true},  // Theorem 3.3(ii), s = 2: "for d = 6, it is checked by computer"
		{"10110", 6, true}, // Table 1: Lemma 2.1 and computer check for d = 6
		{"10101", 6, true}, // Table 1: computer check for d = 6, 7
		{"10101", 7, true},
		{"1100", 7, false}, // complements of the checks: first failing dimensions
		{"10110", 7, false},
		{"10101", 8, false},
	}
	for _, cs := range cases {
		res := New(cs.d, w(cs.f)).IsIsometric()
		if res.Isometric != cs.want {
			t.Errorf("computer check f=%s d=%d: got %v, want %v", cs.f, cs.d, res.Isometric, cs.want)
		}
	}
}

func TestQuickScreenMatchesExact(t *testing.T) {
	// IsIsometricQuick (2/3-critical screening + exact fallback) must agree
	// with the exact check on every factor of length <= 4 and d <= 9.
	for _, row := range Table1 {
		if len(row.Factor) > 4 {
			continue
		}
		f := row.Word()
		for d := 1; d <= 9; d++ {
			c := New(d, f)
			q := c.IsIsometricQuick()
			e := c.IsIsometric()
			if q.Isometric != e.Isometric {
				t.Errorf("f=%s d=%d: quick %v, exact %v", row.Factor, d, q.Isometric, e.Isometric)
			}
		}
	}
}

func TestSingleVertexAndEmptyGraphIsometric(t *testing.T) {
	if res := New(6, w("1")).IsIsometric(); !res.Isometric {
		t.Error("one-vertex graph must be isometric")
	}
}

func TestIsIsometricCtxCancelled(t *testing.T) {
	// A pre-cancelled context must yield the context error and an empty
	// result — never a witness, which could be non-minimal when batches
	// were shed by cancellation rather than by the sound early-exit bound.
	c := New(9, w("101")) // non-isometric at d = 9: violations exist to find
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.IsIsometricCtx(ctx)
	if err == nil {
		t.Fatal("cancelled check returned nil error")
	}
	if res != (IsometryResult{}) {
		t.Errorf("cancelled check returned non-empty result %+v", res)
	}
	// An undisturbed context still reaches the serial witness.
	got, err := c.IsIsometricCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := c.IsIsometricSerial(); got != want {
		t.Errorf("parallel witness %+v differs from serial %+v", got, want)
	}
}
