package core

import (
	"fmt"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
)

// Implicit is the implicit DFA-rank backend for Q_d(f): it answers the
// CubeView queries — order, rank, unrank, membership, degree, neighbors —
// for any dimension up to bitstr.MaxLen = 62 from the factor automaton and
// its uint64 counting tables, in O(d) per rank/unrank/membership probe and
// O(d^2) per degree/neighbors sweep, with O(|f|·d) total memory. It never
// enumerates the up-to-2^62 vertex set, so a route query on Q_62(11) —
// F_64 ≈ 1.06·10^13 nodes — is a handful of table walks.
//
// This is the Zeckendorf node addressing of Hsu's Fibonacci-cube network
// generalized to arbitrary forbidden factors, promoted to a full cube
// backend: everything the explicit Cube can answer without materializing
// the graph, at dimensions far beyond explicit construction.
type Implicit struct {
	d   int
	f   bitstr.Word
	dfa *automaton.DFA
	rk  *automaton.Ranker
}

// NewImplicit builds the implicit backend for Q_d(f). The factor must be
// nonempty and 0 <= d <= bitstr.MaxLen. Construction costs O(|f|·d) time
// and memory (the automaton plus the counting tables).
func NewImplicit(d int, f bitstr.Word) *Implicit {
	if f.Len() == 0 {
		panic("core: empty forbidden factor")
	}
	if d < 0 || d > bitstr.MaxLen {
		panic(fmt.Sprintf("core: implicit backend limited to 0 <= d <= %d, got %d", bitstr.MaxLen, d))
	}
	dfa := automaton.New(f)
	return &Implicit{d: d, f: f, dfa: dfa, rk: dfa.Ranker(d)}
}

// D returns the dimension d.
func (im *Implicit) D() int { return im.d }

// Factor returns the forbidden factor f.
func (im *Implicit) Factor() bitstr.Word { return im.f }

// Order returns |V(Q_d(f))|.
func (im *Implicit) Order() int64 { return int64(im.rk.TotalU64()) }

// Contains reports whether w is a vertex of Q_d(f).
func (im *Implicit) Contains(w bitstr.Word) bool {
	return w.Len() == im.d && im.dfa.Avoids(w)
}

// RankWord returns the index of w in the increasing vertex enumeration.
func (im *Implicit) RankWord(w bitstr.Word) (int64, bool) {
	if w.Len() != im.d {
		return 0, false
	}
	r, ok := im.rk.RankBits(w.Bits)
	if !ok {
		return 0, false
	}
	return int64(r), true
}

// UnrankWord returns the vertex word with the given rank.
func (im *Implicit) UnrankWord(r int64) (bitstr.Word, bool) {
	if r < 0 || uint64(r) >= im.rk.TotalU64() {
		return bitstr.Word{}, false
	}
	w, err := im.rk.UnrankU64(uint64(r))
	if err != nil {
		return bitstr.Word{}, false
	}
	return w, true
}

// DegreeOf returns the number of single-bit flips of w that stay f-free.
func (im *Implicit) DegreeOf(w bitstr.Word) (int, bool) {
	if !im.Contains(w) {
		return 0, false
	}
	deg := 0
	for i := 0; i < im.d; i++ {
		if im.dfa.Avoids(w.Flip(i)) {
			deg++
		}
	}
	return deg, true
}

// NeighborsOf visits the f-free single-bit flips of w in flip-position
// order, each with its rank — the same canonical order as the explicit
// backend.
func (im *Implicit) NeighborsOf(w bitstr.Word, fn func(rank int64, u bitstr.Word) bool) bool {
	if !im.Contains(w) {
		return false
	}
	for i := 0; i < im.d; i++ {
		u := w.Flip(i)
		if r, ok := im.rk.RankBits(u.Bits); ok {
			if !fn(int64(r), u) {
				return false
			}
		}
	}
	return true
}

// DegreeDistribution returns how many vertices have each degree 0..d,
// computed by enumerating the vertex set with the automaton and probing
// each flip — no graph construction (no edge arena, no CSR), so the
// working memory stays O(|f|·d) plus the d+1 counters. Time is
// O(|V|·d^2): use it only at enumerable dimensions; the count-only
// queries (Order) remain O(d) at any dimension.
func (im *Implicit) DegreeDistribution() []int64 {
	out := make([]int64, im.d+1)
	im.dfa.Enumerate(im.d, func(w bitstr.Word) bool {
		deg := 0
		for i := 0; i < im.d; i++ {
			if im.dfa.Avoids(w.Flip(i)) {
				deg++
			}
		}
		out[deg]++
		return true
	})
	return out
}
