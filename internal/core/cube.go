// Package core implements the paper's primary contribution: the generalized
// Fibonacci cube Q_d(f), the graph obtained from the d-cube Q_d by removing
// every vertex that contains the binary string f as a factor (Ilić, Klavžar,
// Rho, "Generalized Fibonacci cubes").
//
// The package provides explicit construction of Q_d(f), exact isometric
// embeddability testing (is Q_d(f) an isometric subgraph of Q_d?), p-critical
// word search (Lemma 2.4), median-closure testing (Proposition 6.4), exact
// vertex/edge/square counting for arbitrary d, and the paper's classification
// theory for forbidden factors (Sections 3-5), including Table 1.
package core

import (
	"fmt"
	"math/bits"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// MaxBuildDim is the largest dimension supported by explicit construction:
// the vertex count is at most 2^d and the CSR graph materializes every
// edge. Queries at larger d go through the implicit DFA-rank backend
// (Implicit), which serves the CubeView interface up to bitstr.MaxLen.
const MaxBuildDim = 30

// Cube is an explicitly constructed generalized Fibonacci cube Q_d(f).
type Cube struct {
	d     int
	f     bitstr.Word
	dfa   *automaton.DFA
	rk    *automaton.Ranker // rank tables of (f, d); answers Rank in O(d)
	verts []uint64          // sorted packed values of the f-free words of length d
	g     *graph.Graph
}

// New constructs Q_d(f). The forbidden factor must be nonempty and d must be
// small enough for explicit construction (the vertex count is at most 2^d).
// Grid sweeps that construct many cubes should go through Scratch.Cube,
// which amortizes buffers and builds whole columns incrementally.
func New(d int, f bitstr.Word) *Cube {
	checkBuild(d, f)
	dfa := automaton.New(f)
	verts := dfa.Vertices(d)
	rk := dfa.Ranker(d)
	c := &Cube{d: d, f: f, dfa: dfa, rk: rk, verts: verts}
	c.g = buildEdges(verts, rk, graph.NewBuilder(len(verts)))
	return c
}

// checkBuild validates the arguments of explicit construction, shared by
// the from-scratch and column-incremental entry points.
func checkBuild(d int, f bitstr.Word) {
	if f.Len() == 0 {
		panic("core: empty forbidden factor")
	}
	if d < 0 || d > MaxBuildDim {
		panic(fmt.Sprintf("core: explicit construction limited to 0 <= d <= %d, got %d", MaxBuildDim, d))
	}
}

// buildEdges runs the from-scratch edge pass over a sorted vertex
// enumeration: each flipped word is ranked through the DFA counting tables
// instead of binary-searching verts per probe — FlipUpRanks shares the
// vertex's prefix walk across its probes, so membership test and neighbor
// index come out of one pass over in-cache tables.
func buildEdges(verts []uint64, rk *automaton.Ranker, b *graph.Builder) *graph.Graph {
	cur := 0
	emit := func(_ int, j uint64) { b.AddEdge(cur, int(j)) }
	for i, v := range verts {
		cur = i
		rk.FlipUpRanks(v, emit)
	}
	return b.Build()
}

// Fibonacci returns the Fibonacci cube Γ_d = Q_d(11).
func Fibonacci(d int) *Cube { return New(d, bitstr.Ones(2)) }

// D returns the dimension d.
func (c *Cube) D() int { return c.d }

// Factor returns the forbidden factor f.
func (c *Cube) Factor() bitstr.Word { return c.f }

// N returns the number of vertices |V(Q_d(f))|.
func (c *Cube) N() int { return len(c.verts) }

// M returns the number of edges |E(Q_d(f))|.
func (c *Cube) M() int { return c.g.M() }

// Graph returns the underlying graph; vertex i corresponds to Word(i).
func (c *Cube) Graph() *graph.Graph { return c.g }

// Word returns the binary string of the i-th vertex (in increasing packed
// order).
func (c *Cube) Word(i int) bitstr.Word {
	return bitstr.Word{Bits: c.verts[i], N: c.d}
}

// Words returns all vertex words in increasing packed order.
func (c *Cube) Words() []bitstr.Word {
	out := make([]bitstr.Word, len(c.verts))
	for i := range c.verts {
		out[i] = c.Word(i)
	}
	return out
}

// Rank returns the vertex index of the word w, and whether w is a vertex of
// the cube (i.e. has length d and avoids f).
func (c *Cube) Rank(w bitstr.Word) (int, bool) {
	if w.Len() != c.d {
		return 0, false
	}
	return c.rank(w.Bits)
}

// rank resolves a packed length-d word to its vertex index through the
// DFA rank tables: one O(d) walk over in-cache counting tables, the same
// machinery the build path uses, instead of a binary search over verts
// (whose log n probes each risk a cache miss on large cubes).
func (c *Cube) rank(v uint64) (int, bool) {
	r, ok := c.rk.RankBits(v)
	if !ok {
		return 0, false
	}
	return int(r), true
}

// Contains reports whether the word w is a vertex of the cube.
func (c *Cube) Contains(w bitstr.Word) bool {
	_, ok := c.Rank(w)
	return ok
}

// HammingDist returns the hypercube distance between vertices i and j, which
// is a lower bound for (and, when the cube is isometric, equal to) their
// distance in Q_d(f).
func (c *Cube) HammingDist(i, j int) int {
	return bits.OnesCount64(c.verts[i] ^ c.verts[j])
}

// Dist returns the graph distance between vertices i and j inside Q_d(f),
// or graph.Unreachable if they are in different components.
func (c *Cube) Dist(i, j int) int32 { return c.g.Dist(i, j) }

// DegreeStats returns the minimum and maximum vertex degrees.
func (c *Cube) DegreeStats() (min, max int) {
	return c.g.MinDegree(), c.g.MaxDegree()
}

// Counts holds the order, size and number of squares of a cube.
type Counts struct {
	V, E, S int64
}

// CountsExplicit computes vertex/edge/square counts from the explicit graph.
func (c *Cube) CountsExplicit() Counts {
	return Counts{V: int64(c.N()), E: int64(c.M()), S: int64(c.g.CountSquares())}
}

// DegreeDistribution returns how many vertices have each degree 0..d.
// For Fibonacci cubes this is the observability profile studied in the
// follow-up literature (paper reference [4]).
func (c *Cube) DegreeDistribution() []int {
	out := make([]int, c.d+1)
	for v := 0; v < c.N(); v++ {
		out[c.g.Degree(v)]++
	}
	return out
}
