package core

import (
	"encoding/binary"
	"testing"

	"gfcube/internal/bitstr"
)

// Explicit-cube payloads must round-trip byte-identically and answer
// every CubeView query exactly like the built cube.
func TestCubeSerialRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		f string
		d int
	}{
		{"11", 8}, {"101", 7}, {"0110", 9}, {"11", 0},
	} {
		f := w(tc.f)
		orig := New(tc.d, f)
		blob := orig.AppendBinary(nil)
		got, err := LoadCube(blob, tc.d, f)
		if err != nil {
			t.Fatalf("Q_%d(%s): LoadCube: %v", tc.d, tc.f, err)
		}
		if string(got.AppendBinary(nil)) != string(blob) {
			t.Fatalf("Q_%d(%s): reserialization differs", tc.d, tc.f)
		}
		if got.Order() != orig.Order() {
			t.Fatalf("Q_%d(%s): order %d, want %d", tc.d, tc.f, got.Order(), orig.Order())
		}
		oc, gc := orig.CountsExplicit(), got.CountsExplicit()
		if oc != gc {
			t.Fatalf("Q_%d(%s): counts %+v, want %+v", tc.d, tc.f, gc, oc)
		}
		for r := int64(0); r < orig.Order(); r++ {
			ow, _ := orig.UnrankWord(r)
			gw, ok := got.UnrankWord(r)
			if !ok || ow != gw {
				t.Fatalf("Q_%d(%s) rank %d: %v vs %v", tc.d, tc.f, r, ow, gw)
			}
		}
	}
}

func TestImplicitSerialRoundTrip(t *testing.T) {
	f := w("101")
	orig := NewImplicit(40, f)
	blob := orig.AppendBinary(nil)
	got, err := LoadImplicit(blob, 40, f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.AppendBinary(nil)) != string(blob) {
		t.Fatal("reserialization differs")
	}
	if got.Order() != orig.Order() {
		t.Fatalf("order %d, want %d", got.Order(), orig.Order())
	}
	for _, r := range []int64{0, 1, orig.Order() / 2, orig.Order() - 1} {
		ow, _ := orig.UnrankWord(r)
		gw, ok := got.UnrankWord(r)
		if !ok || ow != gw {
			t.Fatalf("rank %d: %v vs %v", r, ow, gw)
		}
	}
}

// The load paths refuse wrong identities and structural damage rather
// than building a backend over them.
func TestLoadCubeRejectsBadPayloads(t *testing.T) {
	f := w("11")
	blob := New(6, f).AppendBinary(nil)

	if _, err := LoadCube(blob, 6, bitstr.Word{}); err == nil {
		t.Error("empty factor accepted")
	}
	if _, err := LoadCube(blob, MaxBuildDim+1, f); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	if _, err := LoadCube(blob[:16], 6, f); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := LoadCube(blob, 7, f); err == nil {
		t.Error("payload for d=6 accepted as d=7")
	}
	if _, err := LoadCube(blob, 6, w("101")); err == nil {
		t.Error("payload for f=11 accepted as f=101 (wrong class key)")
	}

	mut := func(name string, f2 func([]byte) []byte) {
		t.Helper()
		if _, err := LoadCube(f2(append([]byte(nil), blob...)), 6, f); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	mut("wrong vertex count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:], 3)
		return b
	})
	mut("truncated vertex section", func(b []byte) []byte { return b[:40] })
	mut("out-of-place vertex", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[32:], 1<<5) // rank 0 slot must hold word 0…0
		return b
	})
	mut("graph truncated", func(b []byte) []byte { return b[:len(b)-4] })
}

func TestLoadImplicitRejectsBadPayloads(t *testing.T) {
	f := w("11")
	blob := NewImplicit(10, f).AppendBinary(nil)
	if _, err := LoadImplicit(blob, 10, bitstr.Word{}); err == nil {
		t.Error("empty factor accepted")
	}
	if _, err := LoadImplicit(blob, -1, f); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := LoadImplicit(blob, 11, f); err == nil {
		t.Error("payload for d=10 accepted as d=11")
	}
	if _, err := LoadImplicit(blob[:8], 10, f); err == nil {
		t.Error("truncated payload accepted")
	}
}
