package core

import (
	"context"
	"math/big"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/fib"
)

// BigCounts holds exact order, size and square counts for arbitrary d.
type BigCounts struct {
	V, E, S *big.Int
}

// Count returns the exact number of vertices, edges and squares of Q_d(f)
// for any d, without constructing the graph, via transfer-matrix dynamic
// programming over the factor automaton.
func Count(d int, f bitstr.Word) BigCounts {
	c, _ := CountCtx(context.Background(), d, f)
	return c
}

// CountCtx is Count with cooperative cancellation between the three DP
// passes: a long-running request can be abandoned after any of the vertex,
// edge or square computations.
func CountCtx(ctx context.Context, d int, f bitstr.Word) (BigCounts, error) {
	var cs automaton.CountScratch
	return countCtx(ctx, &cs, automaton.New(f), d)
}

func countCtx(ctx context.Context, cs *automaton.CountScratch, a *automaton.DFA, d int) (BigCounts, error) {
	var out BigCounts
	out.V = a.CountVerticesInto(cs, d)
	if err := ctx.Err(); err != nil {
		return BigCounts{}, err
	}
	out.E = a.CountEdgesInto(cs, d)
	if err := ctx.Err(); err != nil {
		return BigCounts{}, err
	}
	out.S = a.CountSquaresInto(cs, d)
	return out, nil
}

// CountSeq returns Count(d, f) for d = 0..dmax.
func CountSeq(dmax int, f bitstr.Word) []BigCounts {
	out, _ := CountSeqCtx(context.Background(), dmax, f)
	return out
}

// CountSeqCtx is CountSeq with cooperative cancellation between
// dimensions: a long batch job can be abandoned after any d. One DP
// scratch is shared across the whole sequence, so the per-dimension
// allocation cost is just the result values.
func CountSeqCtx(ctx context.Context, dmax int, f bitstr.Word) ([]BigCounts, error) {
	var cs automaton.CountScratch
	return countSeqCtx(ctx, &cs, dmax, f)
}

func countSeqCtx(ctx context.Context, cs *automaton.CountScratch, dmax int, f bitstr.Word) ([]BigCounts, error) {
	a := automaton.New(f)
	out := make([]BigCounts, dmax+1)
	for d := 0; d <= dmax; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := countCtx(ctx, cs, a, d)
		if err != nil {
			return nil, err
		}
		out[d] = c
	}
	return out, nil
}

// RecurrenceQ111 evaluates the recurrences (1)-(3) of Section 6 for
// G_d = Q_d(111):
//
//	|V(G_d)| = |V(G_{d-1})| + |V(G_{d-2})| + |V(G_{d-3})|
//	|E(G_d)| = |E(G_{d-1})| + |E(G_{d-2})| + |E(G_{d-3})| + |V(G_{d-2})| + 2|V(G_{d-3})|
//	|S(G_d)| = |S(G_{d-1})| + |S(G_{d-2})| + |S(G_{d-3})| + |E(G_{d-2})| + 2|E(G_{d-3})| + |V(G_{d-3})|
//
// with starting values |V| = 1, 2, 4; |E| = 0, 1, 4; |S| = 0, 0, 1 for
// d = 0, 1, 2. It returns the sequence for d = 0..dmax.
func RecurrenceQ111(dmax int) []BigCounts {
	out := make([]BigCounts, dmax+1)
	vStart := []int64{1, 2, 4}
	eStart := []int64{0, 1, 4}
	sStart := []int64{0, 0, 1}
	for d := 0; d <= dmax; d++ {
		if d <= 2 {
			out[d] = BigCounts{
				V: big.NewInt(vStart[d]),
				E: big.NewInt(eStart[d]),
				S: big.NewInt(sStart[d]),
			}
			continue
		}
		v := new(big.Int).Add(out[d-1].V, out[d-2].V)
		v.Add(v, out[d-3].V)

		e := new(big.Int).Add(out[d-1].E, out[d-2].E)
		e.Add(e, out[d-3].E)
		e.Add(e, out[d-2].V)
		e.Add(e, new(big.Int).Lsh(out[d-3].V, 1))

		s := new(big.Int).Add(out[d-1].S, out[d-2].S)
		s.Add(s, out[d-3].S)
		s.Add(s, out[d-2].E)
		s.Add(s, new(big.Int).Lsh(out[d-3].E, 1))
		s.Add(s, out[d-3].V)

		out[d] = BigCounts{V: v, E: e, S: s}
	}
	return out
}

// RecurrenceQ110 evaluates the recurrences (4)-(6) of Section 6 for
// H_d = Q_d(110):
//
//	|V(H_d)| = |V(H_{d-1})| + |V(H_{d-2})| + 1
//	|E(H_d)| = |E(H_{d-1})| + |E(H_{d-2})| + |V(H_{d-2})| + 2
//	|S(H_d)| = |S(H_{d-1})| + |S(H_{d-2})| + |E(H_{d-2})| + 1
//
// with starting values |V| = 1, 2; |E| = 0, 1; |S| = 0, 0 for d = 0, 1.
// It returns the sequence for d = 0..dmax.
func RecurrenceQ110(dmax int) []BigCounts {
	out := make([]BigCounts, dmax+1)
	for d := 0; d <= dmax; d++ {
		if d <= 1 {
			out[d] = BigCounts{
				V: big.NewInt(int64(d + 1)),
				E: big.NewInt(int64(d)),
				S: big.NewInt(0),
			}
			continue
		}
		v := new(big.Int).Add(out[d-1].V, out[d-2].V)
		v.Add(v, big.NewInt(1))

		e := new(big.Int).Add(out[d-1].E, out[d-2].E)
		e.Add(e, out[d-2].V)
		e.Add(e, big.NewInt(2))

		s := new(big.Int).Add(out[d-1].S, out[d-2].S)
		s.Add(s, out[d-2].E)
		s.Add(s, big.NewInt(1))

		out[d] = BigCounts{V: v, E: e, S: s}
	}
	return out
}

// ClosedFormsQ110 returns the closed-form values for H_d = Q_d(110):
// |V(H_d)| = F_{d+3} - 1, |E(H_d)| per Proposition 6.2 and |S(H_d)| per
// Proposition 6.3.
func ClosedFormsQ110(d int) BigCounts {
	v := new(big.Int).Sub(fib.Big(d+3), big.NewInt(1))
	return BigCounts{V: v, E: fib.EdgesH(d), S: fib.SquaresH(d)}
}

// FibonacciCubeCounts returns |V|, |E| and |S| of the Fibonacci cube
// Γ_d = Q_d(11), computed by the counting DP. Used by the Fig. 2 comparison
// (E5) together with the identities of the paper's final remark:
// |V(Q_d(110))| = |V(Γ_{d+1})| - 1, |E(Q_d(110))| = |E(Γ_{d+1})| - 1,
// |S(Q_d(110))| = |S(Γ_{d+1})|.
func FibonacciCubeCounts(d int) BigCounts {
	return Count(d, bitstr.Ones(2))
}
