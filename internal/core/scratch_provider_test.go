package core

import (
	"context"
	"errors"
	"testing"

	"gfcube/internal/bitstr"
)

// recordingProvider serves cubes via Compute and counts how often it is
// consulted; failing lets tests exercise the fallthrough-to-build path.
type recordingProvider struct {
	calls int
	fail  bool
}

func (p *recordingProvider) Cube(ctx context.Context, d int, f bitstr.Word) (*Cube, Source, error) {
	p.calls++
	if p.fail {
		return nil, SourceComputed, errors.New("provider down")
	}
	return Compute{}.Cube(ctx, d, f)
}

func (p *recordingProvider) Implicit(ctx context.Context, d int, f bitstr.Word) (*Implicit, Source, error) {
	return Compute{}.Implicit(ctx, d, f)
}

// TestScratchProviderColumnInterplay pins down the ordering contract of
// Scratch.Cube: the column cache is consulted before the provider (an
// extension step is cheaper than a load), a provider hit re-seeds the
// column via Adopt, and a provider failure falls through to a build.
func TestScratchProviderColumnInterplay(t *testing.T) {
	f := bitstr.MustParse("11")
	p := &recordingProvider{}
	s := &Scratch{Provider: p} // zero Scratch: col is built lazily
	ctx := context.Background()

	sameCube(t, s.Cube(ctx, 6, f), New(6, f))
	if p.calls != 1 {
		t.Fatalf("cold cell consulted the provider %d times, want 1", p.calls)
	}
	// d+1 continues the adopted column: the provider must be skipped and
	// the lazily annotated extension must be exact.
	sameCube(t, s.Cube(ctx, 7, f), New(7, f))
	if p.calls != 1 {
		t.Fatalf("column cell consulted the provider (%d calls), want the incremental step", p.calls)
	}
	// A dimension jump goes back to the provider.
	sameCube(t, s.Cube(ctx, 3, f), New(3, f))
	if p.calls != 2 {
		t.Fatalf("jump cell consulted the provider %d times, want 2", p.calls)
	}
	// Provider failure falls through to a from-scratch build.
	p.fail = true
	sameCube(t, s.Cube(ctx, 9, f), New(9, f))
	if p.calls != 3 {
		t.Fatalf("failing provider consulted %d times, want 3", p.calls)
	}
}

// TestScratchCubeEmptyFactorPanics covers the validation guard.
func TestScratchCubeEmptyFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for an empty factor")
		}
	}()
	NewScratch().Cube(context.Background(), 3, bitstr.Word{})
}
