package core

import (
	"context"
	"testing"

	"gfcube/internal/bitstr"
)

// A warm scratch must build cubes identical to the cold constructor, and
// earlier cubes must survive later scratch reuse.
func TestScratchCubeMatchesNew(t *testing.T) {
	s := NewScratch()
	type snap struct {
		c    *Cube
		n, m int
	}
	var built []snap
	for _, fs := range []string{"11", "101", "1100", "10101"} {
		f := bitstr.MustParse(fs)
		for d := 1; d <= 9; d++ {
			fresh := New(d, f)
			warm := s.Cube(context.Background(), d, f)
			if warm.N() != fresh.N() || warm.M() != fresh.M() {
				t.Fatalf("Q_%d(%s): scratch %d/%d vs fresh %d/%d vertices/edges",
					d, fs, warm.N(), warm.M(), fresh.N(), fresh.M())
			}
			for i := 0; i < warm.N(); i++ {
				if warm.Word(i) != fresh.Word(i) {
					t.Fatalf("Q_%d(%s): vertex %d differs", d, fs, i)
				}
			}
			built = append(built, snap{warm, warm.N(), warm.M()})
		}
	}
	// All previously built cubes must be untouched by subsequent builds.
	for i, b := range built {
		if b.c.N() != b.n || b.c.M() != b.m {
			t.Fatalf("cube %d mutated after scratch reuse: %d/%d -> %d/%d",
				i, b.n, b.m, b.c.N(), b.c.M())
		}
	}
}

// The scratch-backed exact check agrees with the serial checker, including
// the deterministic witness.
func TestScratchIsIsometricMatchesSerial(t *testing.T) {
	s := NewScratch()
	for _, fs := range []string{"11", "101", "1100", "1001", "10101"} {
		f := bitstr.MustParse(fs)
		for d := 1; d <= 9; d++ {
			c := New(d, f)
			want := c.IsIsometricSerial()
			got := s.IsIsometric(c)
			if got != want {
				t.Errorf("Q_%d(%s): scratch %+v vs serial %+v", d, fs, got, want)
			}
		}
	}
}

func TestClassesDedup(t *testing.T) {
	cls := Classes(1, 5)
	if len(cls) != len(Table1) {
		t.Fatalf("classes up to length 5: %d, want %d (Table 1 rows)", len(cls), len(Table1))
	}
	// Class sizes must cover every word of each length exactly once.
	byLen := map[int]int{}
	for _, cl := range cls {
		if !bitstr.IsCanonical(cl.Rep) {
			t.Errorf("representative %s is not canonical", cl.Rep)
		}
		byLen[cl.Rep.Len()] += cl.Size
	}
	for n := 1; n <= 5; n++ {
		if byLen[n] != 1<<uint(n) {
			t.Errorf("length %d class sizes sum to %d, want %d", n, byLen[n], 1<<uint(n))
		}
	}
}

// ClassifyAll at maxLen 5, d <= 9 must reproduce Table 1 (this is the E02
// experiment, deduplicated by symmetry).
func TestClassifyAllMatchesTable1(t *testing.T) {
	cells := ClassifyAll(5, GridOptions{MaxD: 9, Method: MethodExact})
	if len(cells) != len(Table1)*9 {
		t.Fatalf("cells: %d, want %d", len(cells), len(Table1)*9)
	}
	for _, cell := range cells {
		row, ok := Table1Lookup(cell.Rep)
		if !ok {
			t.Fatalf("no Table 1 row for %s", cell.Rep)
		}
		if want := row.VerdictFor(cell.D) == Isometric; cell.Isometric != want {
			t.Errorf("f=%s d=%d: got isometric=%v, Table 1 says %v", cell.Rep, cell.D, cell.Isometric, want)
		}
		if !cell.Isometric && cell.Witness == nil {
			t.Errorf("f=%s d=%d: negative cell without witness", cell.Rep, cell.D)
		}
	}
}

// The three methods agree on the full length <= 4 grid.
func TestClassifyAllMethodsAgree(t *testing.T) {
	exact := ClassifyAll(4, GridOptions{MaxD: 8, Method: MethodExact})
	screen := ClassifyAll(4, GridOptions{MaxD: 8, Method: MethodScreen})
	quick := ClassifyAll(4, GridOptions{MaxD: 8, Method: MethodQuick})
	if len(exact) != len(screen) || len(exact) != len(quick) {
		t.Fatalf("cell counts differ: %d/%d/%d", len(exact), len(screen), len(quick))
	}
	for i := range exact {
		if screen[i].Isometric != exact[i].Isometric || quick[i].Isometric != exact[i].Isometric {
			t.Errorf("f=%s d=%d: exact=%v screen=%v quick=%v", exact[i].Rep, exact[i].D,
				exact[i].Isometric, screen[i].Isometric, quick[i].Isometric)
		}
	}
}
