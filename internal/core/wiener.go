package core

import (
	"math/big"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// WienerHamming returns the sum over unordered vertex pairs of Q_d(f) of
// their HAMMING distance, computed exactly for any d: it equals
// sum over positions i of n_i(0) * n_i(1), where n_i(b) counts vertices
// with bit b at position i (each such pair differs at position i,
// contributing exactly 1 there).
//
// When Q_d(f) is an isometric subgraph of Q_d (graph distance = Hamming
// distance), this is the Wiener index of the cube and the mean distance is
// WienerHamming / C(|V|, 2). For non-isometric cubes it is a strict lower
// bound on the Wiener index.
func WienerHamming(d int, f bitstr.Word) *big.Int {
	a := automaton.New(f)
	total := new(big.Int)
	tmp := new(big.Int)
	for i := 0; i < d; i++ {
		n0 := countWithBit(a, d, i, 0)
		n1 := countWithBit(a, d, i, 1)
		tmp.Mul(n0, n1)
		total.Add(total, tmp)
	}
	return total
}

// countWithBit counts the f-free words of length d whose bit at position i
// (0-based from the left) is b, by the usual automaton DP with the choice
// pinned at position i.
func countWithBit(a *automaton.DFA, d, i int, b uint64) *big.Int {
	m := a.States()
	dp := make([]*big.Int, m)
	next := make([]*big.Int, m)
	for s := range dp {
		dp[s] = new(big.Int)
		next[s] = new(big.Int)
	}
	dp[0].SetInt64(1)
	for pos := 0; pos < d; pos++ {
		for s := range next {
			next[s].SetInt64(0)
		}
		for s := 0; s < m; s++ {
			if dp[s].Sign() == 0 {
				continue
			}
			for c := uint64(0); c < 2; c++ {
				if pos == i && c != b {
					continue
				}
				t := a.Step(s, c)
				if t == m {
					continue
				}
				next[t].Add(next[t], dp[s])
			}
		}
		dp, next = next, dp
	}
	total := new(big.Int)
	for _, v := range dp {
		total.Add(total, v)
	}
	return total
}

// WienerExact computes the true Wiener index of Q_d(f): the sum of
// shortest-path distances inside the cube over unordered vertex pairs,
// via a full MS-BFS sweep of the explicit graph. The boolean reports
// connectivity; for a disconnected cube the sum covers reachable pairs
// only.
//
// On isometric cubes WienerExact equals WienerHamming (graph distance is
// Hamming distance); on connected non-isometric cubes it is strictly
// larger, which is exactly the cross-check WienerGrid sweeps exploit.
// Unlike WienerHamming it requires the explicit graph, so d is bounded by
// MaxBuildDim.
func (c *Cube) WienerExact() (*big.Int, bool) {
	return c.WienerExactWorkers(0)
}

// WienerExactWorkers is WienerExact with an explicit MS-BFS worker count
// (0 = use the machine). It deliberately shares the Stats sweep (the
// eccentricity compare in that loop is noise next to the BFS); the
// serial scratch path below avoids even that. Grid sweeps, which already
// parallelize across cells, use Scratch.WienerExact.
func (c *Cube) WienerExactWorkers(workers int) (*big.Int, bool) {
	st := c.g.StatsWorkers(workers)
	return new(big.Int).SetUint64(st.SumDist), st.Connected
}

// WienerExact is Cube.WienerExact over the scratch MS-BFS engine: the
// allocation-free path for grid sweeps, which run one scratch per worker
// and one engine worker per cell. Only the distance sum and connectivity
// are aggregated (no eccentricities), batches of 64 consecutive sources
// in rank order.
func (s *Scratch) WienerExact(c *Cube) (*big.Int, bool) {
	n := c.N()
	var sum uint64
	conn := true
	s.engine(c.g).RunAll(func(b *graph.DistBlock) bool {
		for i, src := range b.Sources {
			row := b.Row(i)
			if int(b.Reached[i]) == n {
				for v := int(src) + 1; v < n; v++ {
					sum += uint64(row[v])
				}
			} else {
				conn = false
				for v := int(src) + 1; v < n; v++ {
					if d := row[v]; d != graph.Unreachable {
						sum += uint64(d)
					}
				}
			}
		}
		return true
	})
	return new(big.Int).SetUint64(sum), conn
}

// MeanHammingDistance returns WienerHamming normalized by the number of
// unordered pairs, as an exact rational. For isometric cubes this is the
// mean shortest-path distance of the network (the "avg dist" column of the
// interconnection tables), computable at dimensions far beyond explicit
// construction.
func MeanHammingDistance(d int, f bitstr.Word) *big.Rat {
	wiener := WienerHamming(d, f)
	n := automaton.New(f).CountVertices(d)
	pairs := new(big.Int).Mul(n, new(big.Int).Sub(n, big.NewInt(1)))
	pairs.Div(pairs, big.NewInt(2))
	if pairs.Sign() == 0 {
		return new(big.Rat)
	}
	return new(big.Rat).SetFrac(wiener, pairs)
}
