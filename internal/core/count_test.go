package core

import (
	"math/big"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/fib"
)

// E3: recurrences (1)-(3) for G_d = Q_d(111) against the exact DP counts and
// against explicitly built graphs.
func TestE3RecurrencesQ111(t *testing.T) {
	rec := RecurrenceQ111(30)
	dp := CountSeq(30, w("111"))
	for d := 0; d <= 30; d++ {
		if rec[d].V.Cmp(dp[d].V) != 0 || rec[d].E.Cmp(dp[d].E) != 0 || rec[d].S.Cmp(dp[d].S) != 0 {
			t.Errorf("d=%d: recurrence (%s,%s,%s) vs DP (%s,%s,%s)",
				d, rec[d].V, rec[d].E, rec[d].S, dp[d].V, dp[d].E, dp[d].S)
		}
	}
	for d := 0; d <= 12; d++ {
		c := New(d, w("111"))
		explicit := c.CountsExplicit()
		if rec[d].V.Int64() != explicit.V || rec[d].E.Int64() != explicit.E || rec[d].S.Int64() != explicit.S {
			t.Errorf("d=%d: recurrence vs explicit graph mismatch", d)
		}
	}
}

// Starting values quoted in Section 6 for G_d = Q_d(111).
func TestQ111StartingValues(t *testing.T) {
	rec := RecurrenceQ111(2)
	wantV := []int64{1, 2, 4}
	wantE := []int64{0, 1, 4}
	wantS := []int64{0, 0, 1}
	for d := 0; d <= 2; d++ {
		if rec[d].V.Int64() != wantV[d] || rec[d].E.Int64() != wantE[d] || rec[d].S.Int64() != wantS[d] {
			t.Errorf("d=%d starting values wrong: %+v", d, rec[d])
		}
	}
}

// E4: recurrences (4)-(6) for H_d = Q_d(110), the closed forms of
// Propositions 6.2/6.3 and the identity |V(H_d)| = F_{d+3} - 1.
func TestE4RecurrencesQ110(t *testing.T) {
	rec := RecurrenceQ110(40)
	dp := CountSeq(40, w("110"))
	for d := 0; d <= 40; d++ {
		if rec[d].V.Cmp(dp[d].V) != 0 || rec[d].E.Cmp(dp[d].E) != 0 || rec[d].S.Cmp(dp[d].S) != 0 {
			t.Errorf("d=%d: recurrence vs DP mismatch", d)
		}
	}
}

func TestE4ClosedForms(t *testing.T) {
	dp := CountSeq(40, w("110"))
	for d := 0; d <= 40; d++ {
		cf := ClosedFormsQ110(d)
		if cf.V.Cmp(dp[d].V) != 0 {
			t.Errorf("d=%d: |V| closed form %s, DP %s", d, cf.V, dp[d].V)
		}
		if cf.E.Cmp(dp[d].E) != 0 {
			t.Errorf("d=%d: Prop 6.2 gives %s, DP %s", d, cf.E, dp[d].E)
		}
		if cf.S.Cmp(dp[d].S) != 0 {
			t.Errorf("d=%d: Prop 6.3 gives %s, DP %s", d, cf.S, dp[d].S)
		}
	}
}

func TestE4ExplicitGraphs(t *testing.T) {
	for d := 0; d <= 12; d++ {
		c := New(d, w("110"))
		explicit := c.CountsExplicit()
		cf := ClosedFormsQ110(d)
		if cf.V.Int64() != explicit.V || cf.E.Int64() != explicit.E || cf.S.Int64() != explicit.S {
			t.Errorf("d=%d: closed forms (%s,%s,%s) vs explicit (%d,%d,%d)",
				d, cf.V, cf.E, cf.S, explicit.V, explicit.E, explicit.S)
		}
	}
}

// Final-remark identities: |V(Q_d(110))| = |V(Γ_{d+1})| - 1,
// |E(Q_d(110))| = |E(Γ_{d+1})| - 1, |S(Q_d(110))| = |S(Γ_{d+1})|.
func TestE5FinalRemarkIdentities(t *testing.T) {
	one := big.NewInt(1)
	for d := 0; d <= 25; d++ {
		h := Count(d, w("110"))
		g := FibonacciCubeCounts(d + 1)
		if new(big.Int).Add(h.V, one).Cmp(g.V) != 0 {
			t.Errorf("d=%d: |V(H_d)|+1 = %s != |V(Γ_{d+1})| = %s", d, h.V, g.V)
		}
		if new(big.Int).Add(h.E, one).Cmp(g.E) != 0 {
			t.Errorf("d=%d: |E(H_d)|+1 != |E(Γ_{d+1})|", d)
		}
		if h.S.Cmp(g.S) != 0 {
			t.Errorf("d=%d: |S(H_d)| != |S(Γ_{d+1})|", d)
		}
	}
}

// Fig. 2 confronts Γ_5 = Q_5(11) with Q_4(110): same order minus one, same
// squares, degree and diameter shifted by one.
func TestE5Fig2Comparison(t *testing.T) {
	gamma5 := Fibonacci(5)
	h4 := New(4, w("110"))
	if gamma5.N() != h4.N()+1 {
		t.Errorf("|V(Γ_5)| = %d, |V(Q_4(110))| = %d; want difference 1", gamma5.N(), h4.N())
	}
	if gamma5.M() != h4.M()+1 {
		t.Errorf("edge counts %d vs %d; want difference 1", gamma5.M(), h4.M())
	}
	if gamma5.Graph().CountSquares() != h4.Graph().CountSquares() {
		t.Error("square counts should be equal")
	}
	sg := gamma5.Graph().Stats()
	sh := h4.Graph().Stats()
	if sg.Diameter != 5 || sh.Diameter != 4 {
		t.Errorf("diameters %d, %d; want 5, 4", sg.Diameter, sh.Diameter)
	}
	if gamma5.Graph().MaxDegree() != 5 || h4.Graph().MaxDegree() != 4 {
		t.Error("max degrees should be 5 and 4")
	}
}

// |V(Q_d(1^k))| equals the k-bonacci number T^{(k)}_{d+k} (ICPP'93 family).
func TestKBonacciOrders(t *testing.T) {
	for k := 1; k <= 5; k++ {
		factor := bitstr.Ones(k)
		for d := 0; d <= 14; d++ {
			got := Count(d, factor).V
			want := fib.KBonacci(k, d+k)
			if got.Cmp(want) != 0 {
				t.Errorf("k=%d d=%d: |V| = %s, k-bonacci = %s", k, d, got, want)
			}
		}
	}
}

func TestCountSeqAgainstSingle(t *testing.T) {
	seq := CountSeq(15, w("1010"))
	for d := 0; d <= 15; d++ {
		single := Count(d, w("1010"))
		if seq[d].V.Cmp(single.V) != 0 || seq[d].E.Cmp(single.E) != 0 || seq[d].S.Cmp(single.S) != 0 {
			t.Errorf("d=%d: CountSeq disagrees with Count", d)
		}
	}
}
