package core

import (
	"context"
	"fmt"

	"gfcube/internal/bitstr"
)

// Method selects how a grid cell — one (f, d) pair — is decided by the
// survey machinery.
type Method int

const (
	// MethodExact builds Q_d(f) explicitly and runs the exact BFS
	// embeddability check (the definition in Section 2).
	MethodExact Method = iota
	// MethodScreen builds Q_d(f) and searches for 2- and 3-critical words
	// (Lemma 2.4). A hit proves non-embeddability; a miss is read as
	// embeddable, which agrees with the exact check on every instance in
	// this repository's census but is not a theorem.
	MethodScreen
	// MethodQuick screens first and confirms screen-positive (embeddable)
	// verdicts with the exact check, so every answer is proven.
	MethodQuick
)

func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodScreen:
		return "screen"
	case MethodQuick:
		return "quick"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts "exact", "screen" or "quick" into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "exact":
		return MethodExact, nil
	case "screen":
		return MethodScreen, nil
	case "quick":
		return MethodQuick, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (want exact|screen|quick)", s)
	}
}

// Class is one equivalence class of forbidden factors under complementation
// and reversal. Q_d(f) is isomorphic for all members of a class (Lemmas 2.2
// and 2.3), so grids are swept one representative per class — at most 1/4
// of the naive factor-by-factor work.
type Class struct {
	Rep  bitstr.Word // canonical representative (least in (length, value) order)
	Size int         // number of distinct words in the class: 1, 2 or 4
}

// ClassOf returns the class of f.
func ClassOf(f bitstr.Word) Class {
	rep := bitstr.CanonicalRepresentative(f)
	distinct := map[bitstr.Word]bool{rep: true}
	for _, v := range []bitstr.Word{rep.Complement(), rep.Reverse(), rep.Complement().Reverse()} {
		distinct[v] = true
	}
	return Class{Rep: rep, Size: len(distinct)}
}

// Classes returns the canonical classes of every factor length in
// [minLen, maxLen], shortest first, representatives in increasing packed
// value within a length. This is the deterministic grid order used by
// ClassifyAll and by the sweep engine.
func Classes(minLen, maxLen int) []Class {
	if minLen < 1 {
		minLen = 1
	}
	var out []Class
	for n := minLen; n <= maxLen; n++ {
		for _, rep := range bitstr.CanonicalOfLen(n) {
			out = append(out, ClassOf(rep))
		}
	}
	return out
}

// Cell is the decided classification of one (class, d) grid cell.
type Cell struct {
	Class
	D         int
	Isometric bool
	// Witness is the violating vertex pair for negative exact verdicts;
	// nil for positive verdicts and for unconfirmed screen verdicts.
	Witness *IsometryResult
}

// ClassifyCell decides one grid cell with the given method, drawing all
// construction and BFS buffers from the scratch. The context bounds the
// scratch's provider loads; see Scratch.Cube.
func ClassifyCell(ctx context.Context, s *Scratch, cl Class, d int, m Method) Cell {
	c := s.Cube(ctx, d, cl.Rep)
	cell := Cell{Class: cl, D: d}
	switch m {
	case MethodScreen, MethodQuick:
		if pair, found := c.HasCriticalPair(3); found {
			// Non-isometric by Lemma 2.4; report the critical pair as the
			// witness, with the same -2 "not computed" marker used by
			// IsIsometricQuick for the cube distance.
			cell.Witness = &IsometryResult{
				U: pair.B, V: pair.C,
				CubeDist: -2, HammingDist: int32(pair.P),
			}
			return cell
		}
		if m == MethodScreen {
			cell.Isometric = true
			return cell
		}
		fallthrough
	default:
		res := s.IsIsometric(c)
		cell.Isometric = res.Isometric
		if !res.Isometric {
			cell.Witness = &res
		}
		return cell
	}
}

// GridOptions bounds a classification grid. The zero value of MinLen and
// MinD defaults to 1; MaxD must be positive.
type GridOptions struct {
	MinLen int    // smallest factor length (default 1)
	MinD   int    // smallest dimension (default 1)
	MaxD   int    // largest dimension, inclusive
	Method Method // how each cell is decided
}

// ClassifyAll classifies the full (d, f) grid up to factor length maxLen —
// the Table 1 computation, extended to arbitrary bounds — deduplicated by
// the complement/reversal symmetry: one column of cells per canonical
// class, dimensions MinD..MaxD. Cells appear in deterministic order:
// classes as returned by Classes, d ascending within a class.
//
// ClassifyAll is the serial reference; the sweep package fans the same
// cells across a worker pool and must produce an identical slice.
func ClassifyAll(maxLen int, opts GridOptions) []Cell {
	minLen := opts.MinLen
	if minLen < 1 {
		minLen = 1
	}
	minD := opts.MinD
	if minD < 1 {
		minD = 1
	}
	if opts.MaxD < minD {
		panic(fmt.Sprintf("core: ClassifyAll needs MaxD >= %d, got %d", minD, opts.MaxD))
	}
	s := NewScratch()
	cls := Classes(minLen, maxLen)
	out := make([]Cell, 0, len(cls)*(opts.MaxD-minD+1))
	for _, cl := range cls {
		for d := minD; d <= opts.MaxD; d++ {
			out = append(out, ClassifyCell(context.Background(), s, cl, d, opts.Method))
		}
	}
	return out
}
