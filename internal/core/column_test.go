package core

import (
	"bytes"
	"context"
	"testing"

	"gfcube/internal/bitstr"
)

// allFactors returns every factor word of length 1..maxLen — the full
// grid, not just canonical representatives, so the equivalence sweep also
// exercises non-canonical columns.
func allFactors(maxLen int) []bitstr.Word {
	var out []bitstr.Word
	for n := 1; n <= maxLen; n++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			out = append(out, bitstr.Word{Bits: bits, N: n})
		}
	}
	return out
}

// sameCube asserts byte-identical serialized form: vertex enumeration and
// CSR graph, the strongest equivalence the store's artifact format can
// express.
func sameCube(t *testing.T, got, want *Cube) {
	t.Helper()
	if !bytes.Equal(got.AppendBinary(nil), want.AppendBinary(nil)) {
		t.Fatalf("Q_%d(%s): incremental cube differs from New", want.D(), want.Factor())
	}
}

// TestColumnBuilderMatchesNew walks every |f| <= 4 column from d = 0 to
// 12 through one ColumnBuilder per factor and demands byte-identical
// verts + CSR against from-scratch construction at every step.
func TestColumnBuilderMatchesNew(t *testing.T) {
	const maxD = 12
	for _, f := range allFactors(4) {
		b := NewColumnBuilder()
		for d := 0; d <= maxD; d++ {
			if d > 0 && !b.CanAdvance(d, f) {
				t.Fatalf("CanAdvance(%d, %s) = false mid-column", d, f)
			}
			sameCube(t, b.Advance(d, f), New(d, f))
		}
	}
}

// TestColumnBuilderRebuilds covers the fallback paths: dimension jumps in
// both directions and a factor switch must rebuild from scratch (bumping
// the rebuild counter) and still produce exact cubes, re-seeding the
// column so the next step is incremental again.
func TestColumnBuilderRebuilds(t *testing.T) {
	f1 := bitstr.MustParse("11")
	f2 := bitstr.MustParse("101")
	b := NewColumnBuilder()
	steps := []struct {
		d int
		f bitstr.Word
	}{
		{5, f1},  // cold: rebuild
		{3, f1},  // jump down: rebuild
		{9, f1},  // jump up: rebuild
		{10, f1}, // +1: reuse
		{10, f2}, // factor switch: rebuild
		{11, f2}, // +1: reuse
	}
	wantRebuilds := []bool{true, true, true, false, true, false}
	for i, st := range steps {
		r0, b0 := ColumnCounters()
		if can := b.CanAdvance(st.d, st.f); can != !wantRebuilds[i] {
			t.Fatalf("step %d: CanAdvance(%d, %s) = %v, want %v", i, st.d, st.f, can, !wantRebuilds[i])
		}
		sameCube(t, b.Advance(st.d, st.f), New(st.d, st.f))
		r1, b1 := ColumnCounters()
		if wantRebuilds[i] && (b1 != b0+1 || r1 != r0) {
			t.Fatalf("step %d: counters moved reuse %d->%d rebuild %d->%d, want a rebuild", i, r0, r1, b0, b1)
		}
		if !wantRebuilds[i] && (r1 != r0+1 || b1 != b0) {
			t.Fatalf("step %d: counters moved reuse %d->%d rebuild %d->%d, want a reuse", i, r0, r1, b0, b1)
		}
	}
}

// TestColumnBuilderSameDimHit asserts that re-requesting the cached cell
// returns the identical cube without any construction.
func TestColumnBuilderSameDimHit(t *testing.T) {
	f := bitstr.MustParse("110")
	b := NewColumnBuilder()
	c1 := b.Advance(8, f)
	r0, _ := ColumnCounters()
	c2 := b.Advance(8, f)
	r1, _ := ColumnCounters()
	if c1 != c2 {
		t.Fatal("same-cell Advance did not return the cached cube")
	}
	if r1 != r0+1 {
		t.Fatalf("same-cell Advance counted reuse %d -> %d, want +1", r0, r1)
	}
}

// TestColumnBuilderAdopt seeds the column with an externally built cube
// (the store-load path) and extends it: annotation is recomputed lazily
// and the extension must still be exact.
func TestColumnBuilderAdopt(t *testing.T) {
	f := bitstr.MustParse("1010")
	b := NewColumnBuilder()
	b.Adopt(New(7, f))
	if !b.CanAdvance(8, f) {
		t.Fatal("CanAdvance after Adopt = false")
	}
	sameCube(t, b.Advance(8, f), New(8, f))
	sameCube(t, b.Advance(9, f), New(9, f))
}

// TestScratchCubeColumnPath drives the public Scratch entry point down an
// ascending column and checks exactness plus Rank agreement (Rank now
// runs on the DFA ranker tables rather than binary search).
func TestScratchCubeColumnPath(t *testing.T) {
	f := bitstr.MustParse("111")
	s := NewScratch()
	ctx := context.Background()
	for d := 0; d <= 11; d++ {
		c := s.Cube(ctx, d, f)
		sameCube(t, c, New(d, f))
		for i := 0; i < c.N(); i++ {
			w := c.Word(i)
			if r, ok := c.Rank(w); !ok || r != i {
				t.Fatalf("d=%d: Rank(%s) = %d/%v, want %d", d, w, r, ok, i)
			}
		}
		if _, ok := c.Rank(bitstr.Ones(d + 1)); ok {
			t.Fatalf("d=%d: Rank accepted a word of the wrong length", d)
		}
		if d >= 3 {
			if _, ok := c.Rank(bitstr.Ones(d)); ok {
				t.Fatalf("d=%d: Rank accepted the all-ones word, which contains %s", d, f)
			}
		}
	}
}

// FuzzColumnBuild drives arbitrary (factor, start dimension, step count)
// columns through the incremental builder and cross-checks every produced
// cube byte-for-byte against from-scratch construction.
func FuzzColumnBuild(f *testing.F) {
	f.Add(uint64(0b11), 2, 0, 6)
	f.Add(uint64(0b1010), 4, 3, 5)
	f.Add(uint64(0b1), 1, 0, 4)
	f.Fuzz(func(t *testing.T, fb uint64, fn int, d0 int, steps int) {
		if fn < 1 || fn > 4 || d0 < 0 || d0 > 10 || steps < 0 || steps > 6 {
			t.Skip()
		}
		factor := bitstr.Word{Bits: fb & (^uint64(0) >> uint(64-fn)), N: fn}
		b := NewColumnBuilder()
		for d := d0; d <= d0+steps; d++ {
			got := b.Advance(d, factor)
			want := New(d, factor)
			if !bytes.Equal(got.AppendBinary(nil), want.AppendBinary(nil)) {
				t.Fatalf("Q_%d(%s): incremental cube differs from New", d, factor)
			}
		}
	})
}
