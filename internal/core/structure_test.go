package core

import (
	"testing"

	"gfcube/internal/bitstr"
)

// Eccentricity structure of Fibonacci cubes: 0^d is a center with
// eccentricity ⌈d/2⌉ (its farthest vertices are the maximum-weight
// alternating words), and the radius equals ⌈d/2⌉.
func TestFibonacciEccentricityStructure(t *testing.T) {
	for d := 1; d <= 10; d++ {
		c := Fibonacci(d)
		st := c.Graph().Stats()
		want := (d + 1) / 2
		zero, ok := c.Rank(bitstr.Zeros(d))
		if !ok {
			t.Fatalf("0^%d missing", d)
		}
		if int(st.Ecc[zero]) != want {
			t.Errorf("ecc(0^%d) = %d, want %d", d, st.Ecc[zero], want)
		}
		if int(st.Radius) != want {
			t.Errorf("radius(Γ_%d) = %d, want %d", d, st.Radius, want)
		}
		if int(st.Diameter) != d {
			t.Errorf("diameter(Γ_%d) = %d, want %d", d, st.Diameter, d)
		}
	}
}

// In an isometric Q_d(f), the eccentricity of 0^d equals the maximum weight
// of a vertex (distances are Hamming distances from 0).
func TestEccOfZeroIsMaxWeight(t *testing.T) {
	for _, fs := range []string{"11", "111", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		for d := 2; d <= 9; d++ {
			c := New(d, f)
			if !c.IsIsometric().Isometric {
				continue
			}
			zero, ok := c.Rank(bitstr.Zeros(d))
			if !ok {
				continue
			}
			maxW := 0
			for i := 0; i < c.N(); i++ {
				if w := c.Word(i).OnesCount(); w > maxW {
					maxW = w
				}
			}
			st := c.Graph().Stats()
			if int(st.Ecc[zero]) != maxW {
				t.Errorf("f=%s d=%d: ecc(0^d) = %d, max weight = %d", fs, d, st.Ecc[zero], maxW)
			}
		}
	}
}

// The average distance of Γ_d grows sublinearly relative to Q_d's d/2: the
// Fibonacci cube is "denser" metrically than the hypercube of equal
// dimension, one of the topology selling points.
func TestFibonacciAvgDistanceBelowHypercube(t *testing.T) {
	for d := 3; d <= 11; d++ {
		avg := Fibonacci(d).Graph().AvgDistance()
		n := float64(int(1) << uint(d))
		hyper := float64(d) / 2 * n / (n - 1) // exact Q_d mean over pairs
		if avg >= hyper {
			t.Errorf("Γ_%d avg distance %.3f not below Q_%d's %.3f", d, avg, d, hyper)
		}
	}
}

// Degree distribution invariants: the histogram sums to |V|, is supported
// on [min degree, d], and its first moment is 2|E|.
func TestDegreeDistribution(t *testing.T) {
	for _, fs := range []string{"11", "110", "101", "1010"} {
		f := bitstr.MustParse(fs)
		for d := 1; d <= 10; d++ {
			c := New(d, f)
			dist := c.DegreeDistribution()
			if len(dist) != d+1 {
				t.Fatalf("f=%s d=%d: histogram length %d", fs, d, len(dist))
			}
			total, moment := 0, 0
			for deg, n := range dist {
				total += n
				moment += deg * n
			}
			if total != c.N() {
				t.Errorf("f=%s d=%d: histogram sums to %d, |V| = %d", fs, d, total, c.N())
			}
			if moment != 2*c.M() {
				t.Errorf("f=%s d=%d: first moment %d, 2|E| = %d", fs, d, moment, 2*c.M())
			}
		}
	}
	// Γ_4 concretely: five degree-2, two degree-3 and one degree-4 vertex
	// (first moment 20 = 2|E(Γ_4)| = 2·10).
	dist := Fibonacci(4).DegreeDistribution()
	want := []int{0, 0, 5, 2, 1}
	for k := range want {
		if dist[k] != want[k] {
			t.Errorf("Γ_4 degree %d count = %d, want %d (full: %v)", k, dist[k], want[k], dist)
		}
	}
}

// Vertex weights partition Γ_d into levels of sizes C(d-k+1, k) (the
// Fibonacci-diagonal binomials); check the total and the extreme levels.
func TestFibonacciWeightLevels(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		out := 1
		for i := 0; i < k; i++ {
			out = out * (n - i) / (i + 1)
		}
		return out
	}
	for d := 1; d <= 12; d++ {
		c := Fibonacci(d)
		levels := make(map[int]int)
		for i := 0; i < c.N(); i++ {
			levels[c.Word(i).OnesCount()]++
		}
		total := 0
		for k, n := range levels {
			want := binom(d-k+1, k)
			if n != want {
				t.Errorf("Γ_%d: level %d has %d vertices, want C(%d,%d) = %d", d, k, n, d-k+1, k, want)
			}
			total += n
		}
		if total != c.N() {
			t.Errorf("levels do not partition Γ_%d", d)
		}
	}
}
