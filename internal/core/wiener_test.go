package core

import (
	"math/big"
	"testing"

	"gfcube/internal/bitstr"
)

func TestWienerHammingMatchesExplicit(t *testing.T) {
	// On isometric cubes the Hamming-Wiener index equals the graph Wiener
	// index (sum of BFS distances over pairs).
	for _, fs := range []string{"11", "111", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		for d := 1; d <= 9; d++ {
			c := New(d, f)
			if !c.IsIsometric().Isometric {
				continue
			}
			st := c.Graph().Stats()
			got := WienerHamming(d, f)
			if got.Cmp(new(big.Int).SetUint64(st.SumDist)) != 0 {
				t.Errorf("f=%s d=%d: Wiener DP %s, BFS sum %d", fs, d, got, st.SumDist)
			}
		}
	}
}

func TestWienerHammingLowerBoundNonIsometric(t *testing.T) {
	// On non-isometric cubes graph distances exceed Hamming distances for
	// some pair, so the DP is a strict lower bound.
	f := bitstr.MustParse("101")
	for d := 4; d <= 8; d++ {
		c := New(d, f)
		st := c.Graph().Stats()
		got := WienerHamming(d, f)
		if got.Cmp(new(big.Int).SetUint64(st.SumDist)) >= 0 {
			t.Errorf("d=%d: Hamming-Wiener %s not strictly below graph Wiener %d", d, got, st.SumDist)
		}
	}
}

func TestMeanHammingDistanceMatchesAvg(t *testing.T) {
	for d := 2; d <= 10; d++ {
		c := Fibonacci(d)
		exact := MeanHammingDistance(d, bitstr.Ones(2))
		approx, _ := exact.Float64()
		avg := c.Graph().AvgDistance()
		if diff := approx - avg; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Γ_%d: exact mean %f, BFS mean %f", d, approx, avg)
		}
	}
}

func TestMeanHammingDistanceLargeD(t *testing.T) {
	// The mean distance of Γ_d grows linearly with slope below 1/2 (the
	// hypercube's): check the d = 100 value lies in a sane window and that
	// the normalized mean is decreasing relative to d/2.
	mean100, _ := MeanHammingDistance(100, bitstr.Ones(2)).Float64()
	if mean100 <= 0 || mean100 >= 50 {
		t.Fatalf("mean distance of Γ_100 = %f out of range (0, 50)", mean100)
	}
	mean50, _ := MeanHammingDistance(50, bitstr.Ones(2)).Float64()
	if mean100/100 >= 0.5 || mean50/50 >= 0.5 {
		t.Error("normalized mean distance should stay below the hypercube's 1/2")
	}
}

func TestMeanHammingDegenerate(t *testing.T) {
	// A single-vertex cube has no pairs.
	if MeanHammingDistance(5, bitstr.MustParse("1")).Sign() != 0 {
		t.Error("mean distance of K_1 should be 0")
	}
}

func BenchmarkWienerD100(b *testing.B) {
	f := bitstr.Ones(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WienerHamming(100, f)
	}
}
