package core

import (
	"context"
	"math/big"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

func TestWienerHammingMatchesExplicit(t *testing.T) {
	// On isometric cubes the Hamming-Wiener index equals the graph Wiener
	// index (sum of BFS distances over pairs).
	for _, fs := range []string{"11", "111", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		for d := 1; d <= 9; d++ {
			c := New(d, f)
			if !c.IsIsometric().Isometric {
				continue
			}
			st := c.Graph().Stats()
			got := WienerHamming(d, f)
			if got.Cmp(new(big.Int).SetUint64(st.SumDist)) != 0 {
				t.Errorf("f=%s d=%d: Wiener DP %s, BFS sum %d", fs, d, got, st.SumDist)
			}
		}
	}
}

func TestWienerHammingLowerBoundNonIsometric(t *testing.T) {
	// On non-isometric cubes graph distances exceed Hamming distances for
	// some pair, so the DP is a strict lower bound.
	f := bitstr.MustParse("101")
	for d := 4; d <= 8; d++ {
		c := New(d, f)
		st := c.Graph().Stats()
		got := WienerHamming(d, f)
		if got.Cmp(new(big.Int).SetUint64(st.SumDist)) >= 0 {
			t.Errorf("d=%d: Hamming-Wiener %s not strictly below graph Wiener %d", d, got, st.SumDist)
		}
	}
}

// The full |f| <= 4, d <= 10 grid: MS-BFS distances (via WienerExact and
// Stats) must be bit-identical to serial Traverser.BFS sweeps, and the
// exact Wiener index must relate to the Hamming sum exactly as the
// isometry verdict predicts: equal when isometric, strictly larger when
// connected and non-isometric, and never smaller.
func TestWienerExactCrossCheckGrid(t *testing.T) {
	s := NewScratch()
	for _, cl := range Classes(1, 4) {
		for d := 1; d <= 10; d++ {
			c := s.Cube(context.Background(), d, cl.Rep)
			g := c.Graph()

			// Serial reference: Wiener sum + connectivity by plain BFS.
			tr := graph.NewTraverser(g)
			dist := make([]int32, c.N())
			var want uint64
			conn := true
			for src := 0; src < c.N(); src++ {
				tr.BFS(src, dist)
				for v := src + 1; v < c.N(); v++ {
					if dist[v] == graph.Unreachable {
						conn = false
						continue
					}
					want += uint64(dist[v])
				}
			}

			exact, connected := c.WienerExact()
			if connected != conn {
				t.Fatalf("f=%s d=%d: engine connectivity %v, serial %v", cl.Rep, d, connected, conn)
			}
			if exact.Cmp(new(big.Int).SetUint64(want)) != 0 {
				t.Fatalf("f=%s d=%d: WienerExact %s, serial sum %d", cl.Rep, d, exact, want)
			}
			// The scratch-engine path used by grid sweeps must agree.
			sExact, sConn := s.WienerExact(c)
			if sConn != conn || sExact.Cmp(exact) != 0 {
				t.Fatalf("f=%s d=%d: Scratch.WienerExact %s/%v, want %s/%v", cl.Rep, d, sExact, sConn, exact, conn)
			}

			ham := WienerHamming(d, cl.Rep)
			iso := s.IsIsometric(c).Isometric
			switch {
			case iso && exact.Cmp(ham) != 0:
				t.Errorf("f=%s d=%d: isometric but exact %s != Hamming %s", cl.Rep, d, exact, ham)
			case connected && !iso && exact.Cmp(ham) <= 0:
				t.Errorf("f=%s d=%d: non-isometric but exact %s not above Hamming %s", cl.Rep, d, exact, ham)
			case exact.Cmp(ham) < 0 && connected:
				t.Errorf("f=%s d=%d: exact %s below Hamming lower bound %s", cl.Rep, d, exact, ham)
			}
		}
	}
}

// MS-BFS blocks over cube graphs must agree with serial BFS on the same
// grid — the engine-level equivalence check on the structured (rather
// than random) inputs the repository actually sweeps.
func TestMSBFSMatchesSerialOnCubeGrid(t *testing.T) {
	s := NewScratch()
	for _, cl := range Classes(1, 4) {
		for d := 1; d <= 10; d++ {
			g := s.Cube(context.Background(), d, cl.Rep).Graph()
			tr := graph.NewTraverser(g)
			want := make([]int32, g.N())
			err := g.ForEachSourceBatch(nil, graph.MSOptions{}, func(b *graph.DistBlock) error {
				for i, src := range b.Sources {
					tr.BFS(int(src), want)
					row := b.Row(i)
					for v := range want {
						if row[v] != want[v] {
							t.Fatalf("f=%s d=%d src=%d v=%d: MS %d, serial %d", cl.Rep, d, src, v, row[v], want[v])
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMeanHammingDistanceMatchesAvg(t *testing.T) {
	for d := 2; d <= 10; d++ {
		c := Fibonacci(d)
		exact := MeanHammingDistance(d, bitstr.Ones(2))
		approx, _ := exact.Float64()
		avg := c.Graph().AvgDistance()
		if diff := approx - avg; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Γ_%d: exact mean %f, BFS mean %f", d, approx, avg)
		}
	}
}

func TestMeanHammingDistanceLargeD(t *testing.T) {
	// The mean distance of Γ_d grows linearly with slope below 1/2 (the
	// hypercube's): check the d = 100 value lies in a sane window and that
	// the normalized mean is decreasing relative to d/2.
	mean100, _ := MeanHammingDistance(100, bitstr.Ones(2)).Float64()
	if mean100 <= 0 || mean100 >= 50 {
		t.Fatalf("mean distance of Γ_100 = %f out of range (0, 50)", mean100)
	}
	mean50, _ := MeanHammingDistance(50, bitstr.Ones(2)).Float64()
	if mean100/100 >= 0.5 || mean50/50 >= 0.5 {
		t.Error("normalized mean distance should stay below the hypercube's 1/2")
	}
}

func TestMeanHammingDegenerate(t *testing.T) {
	// A single-vertex cube has no pairs.
	if MeanHammingDistance(5, bitstr.MustParse("1")).Sign() != 0 {
		t.Error("mean distance of K_1 should be 0")
	}
}

func BenchmarkWienerD100(b *testing.B) {
	f := bitstr.Ones(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WienerHamming(100, f)
	}
}
