package memview

import (
	"encoding/binary"
	"testing"
	"unsafe"
)

func TestUint64RoundTrip(t *testing.T) {
	want := []uint64{0, 1, 1<<62 - 3, ^uint64(0)}
	var data []byte
	for _, v := range want {
		data = binary.LittleEndian.AppendUint64(data, v)
	}
	got, ok := Uint64(data)
	if !ok || len(got) != len(want) {
		t.Fatalf("Uint64: ok=%v len=%d", ok, len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUint64ZeroCopyWhenAligned(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy fast path needs a little-endian host")
	}
	data := make([]byte, 16) // make([]byte) is at least 8-aligned
	binary.LittleEndian.PutUint64(data, 7)
	vals, ok := Uint64(data)
	if !ok {
		t.Fatal("aligned view rejected")
	}
	if unsafe.Pointer(&vals[0]) != unsafe.Pointer(&data[0]) {
		t.Error("aligned little-endian view copied instead of aliasing")
	}
}

func TestUint64MisalignedCopies(t *testing.T) {
	buf := make([]byte, 17)
	data := buf[1:] // 8k+1 offset: misaligned on every platform
	binary.LittleEndian.PutUint64(data, 42)
	binary.LittleEndian.PutUint64(data[8:], 43)
	vals, ok := Uint64(data)
	if !ok || vals[0] != 42 || vals[1] != 43 {
		t.Fatalf("misaligned decode: ok=%v vals=%v", ok, vals)
	}
	if hostLittleEndian && unsafe.Pointer(&vals[0]) == unsafe.Pointer(&data[0]) {
		t.Error("misaligned input must be decoded into a fresh slice")
	}
}

func TestUint64BadLength(t *testing.T) {
	if _, ok := Uint64(make([]byte, 12)); ok {
		t.Error("length not a multiple of 8 accepted")
	}
	vals, ok := Uint64(nil)
	if !ok || vals != nil {
		t.Errorf("empty input: vals=%v ok=%v", vals, ok)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	want := []int32{0, -1, 1 << 30, -(1 << 30)}
	var data []byte
	for _, v := range want {
		data = binary.LittleEndian.AppendUint32(data, uint32(v))
	}
	got, ok := Int32(data)
	if !ok || len(got) != len(want) {
		t.Fatalf("Int32: ok=%v len=%d", ok, len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestInt32MisalignedAndBadLength(t *testing.T) {
	buf := make([]byte, 9)
	data := buf[1:]
	neg := int32(-5)
	binary.LittleEndian.PutUint32(data, uint32(neg))
	binary.LittleEndian.PutUint32(data[4:], 6)
	vals, ok := Int32(data)
	if !ok || vals[0] != -5 || vals[1] != 6 {
		t.Fatalf("misaligned decode: ok=%v vals=%v", ok, vals)
	}
	if _, ok := Int32(make([]byte, 6)); ok {
		t.Error("length not a multiple of 4 accepted")
	}
	if vals, ok := Int32(nil); !ok || vals != nil {
		t.Errorf("empty input: vals=%v ok=%v", vals, ok)
	}
}
