// Package memview reinterprets byte slices as little-endian numeric
// slices for the artifact load path: a mapped artifact payload becomes a
// live []uint64 or []int32 table without copying whenever the host is
// little-endian and the bytes are naturally aligned, and decodes a copy
// otherwise. Writers always emit little-endian via encoding/binary, so
// artifacts are portable across hosts; only the zero-copy fast path is
// endianness- and alignment-dependent.
package memview

import (
	"encoding/binary"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian; only then can a little-endian file be viewed in place.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Uint64 returns data viewed as a []uint64. The view aliases data (no
// copy) when the host is little-endian and data is 8-byte aligned;
// otherwise the values are decoded into a fresh slice. ok is false when
// len(data) is not a multiple of 8.
func Uint64(data []byte) (vals []uint64, ok bool) {
	if len(data)%8 != 0 {
		return nil, false
	}
	if len(data) == 0 {
		return nil, true
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), len(data)/8), true
	}
	out := make([]uint64, len(data)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return out, true
}

// Int32 returns data viewed as a []int32, zero-copy when the host is
// little-endian and data is 4-byte aligned, decoded otherwise. ok is
// false when len(data) is not a multiple of 4.
func Int32(data []byte) (vals []int32, ok bool) {
	if len(data)%4 != 0 {
		return nil, false
	}
	if len(data) == 0 {
		return nil, true
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&data[0])), len(data)/4), true
	}
	out := make([]int32, len(data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return out, true
}
