package isometry

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// E14: subcube capacity. Γ_d hosts Q_{⌊(d+1)/2⌋} isometrically (the
// 0-interleaving embedding) and nothing larger - the hypercube-emulation
// claim of the Fibonacci-cube interconnection papers, verified exactly.
func TestE14LargestHypercubeInFibonacci(t *testing.T) {
	for d := 1; d <= 7; d++ {
		want := (d + 1) / 2
		got := LargestHypercube(core.Fibonacci(d), want+1)
		if got != want {
			t.Errorf("largest Q_k in Γ_%d: k = %d, want %d", d, got, want)
		}
	}
}

// Sparser factors admit larger subcubes: Q_d(111) hosts Q_k with
// k >= ⌊2(d+1)/3⌋ (interleave a 0 after every second coordinate).
func TestE14LargestHypercubeInQ111(t *testing.T) {
	for d := 2; d <= 6; d++ {
		gamma := LargestHypercube(core.Fibonacci(d), d)
		third := LargestHypercube(core.New(d, bitstr.Ones(3)), d)
		if third < gamma {
			t.Errorf("d=%d: Q_d(111) hosts Q_%d but Γ_d hosts Q_%d; order-3 cube should dominate", d, third, gamma)
		}
	}
}
