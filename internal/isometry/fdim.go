package isometry

import (
	"context"
	"fmt"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/hypercube"
)

// FDimResult reports an f-dimension computation: the smallest d such that G
// embeds isometrically into Q_d(f) (Section 7), together with a witnessing
// embedding.
type FDimResult struct {
	Dim       int
	Embedding []bitstr.Word // image of vertex i in Q_Dim(f)
	Found     bool
}

// FDim computes dim_f(G) exactly by searching dimensions lowerBound..maxD
// for an isometric embedding of g into Q_d(f). The embedding search is a
// backtracking placement in BFS order with full pairwise distance checking
// against the host cube's true distances (so it remains correct even for
// factors f where Q_d(f) is not isometric in Q_d).
//
// The search is exponential in the worst case and is intended for the small
// graphs of the Section 7 experiments (paths, cycles, stars, grids).
func FDim(g *graph.Graph, f bitstr.Word, maxD int) FDimResult {
	res, _ := FDimCtx(context.Background(), g, f, maxD)
	return res
}

// FDimCtx is FDim with cooperative cancellation between candidate host
// dimensions: when ctx is done before the search concludes, the context
// error is returned and the result is not meaningful.
func FDimCtx(ctx context.Context, g *graph.Graph, f bitstr.Word, maxD int) (FDimResult, error) {
	if g.N() == 0 {
		return FDimResult{Dim: 0, Found: true}, nil
	}
	lower := 0
	if g.N() > 1 {
		lower = 1
	}
	for d := lower; d <= maxD; d++ {
		if err := ctx.Err(); err != nil {
			return FDimResult{}, err
		}
		host := core.New(d, f)
		if host.N() < g.N() {
			continue
		}
		if emb, ok := embed(g, host); ok {
			return FDimResult{Dim: d, Embedding: emb, Found: true}, nil
		}
	}
	return FDimResult{Found: false}, nil
}

// embed searches for an isometric embedding of g into the host cube.
func embed(g *graph.Graph, host *core.Cube) ([]bitstr.Word, bool) {
	n := g.N()
	hn := host.N()
	// Distances inside g.
	gd := make([][]int32, n)
	t := graph.NewTraverser(g)
	for v := 0; v < n; v++ {
		gd[v] = make([]int32, n)
		t.BFS(v, gd[v])
		for _, dd := range gd[v] {
			if dd == graph.Unreachable {
				return nil, false // disconnected guests never embed isometrically
			}
		}
	}
	// Distances inside the host.
	hd := make([][]int32, hn)
	ht := graph.NewTraverser(host.Graph())
	for v := 0; v < hn; v++ {
		hd[v] = make([]int32, hn)
		ht.BFS(v, hd[v])
	}
	// Place guest vertices in BFS order from vertex 0 so every new vertex
	// has an already-placed neighbor: strong pruning.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, int(u))
			}
		}
	}
	img := make([]int, n)
	for i := range img {
		img[i] = -1
	}
	used := make([]bool, hn)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return true
		}
		v := order[k]
		for cand := 0; cand < hn; cand++ {
			if used[cand] {
				continue
			}
			ok := true
			for _, placed := range order[:k] {
				if hd[img[placed]][cand] != gd[placed][v] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			img[v] = cand
			used[cand] = true
			if rec(k + 1) {
				return true
			}
			used[cand] = false
			img[v] = -1
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	out := make([]bitstr.Word, n)
	for v := 0; v < n; v++ {
		out[v] = host.Word(img[v])
	}
	return out, true
}

// Prop71Expand implements the constructive embedding of Proposition 7.1:
// given hypercube coordinates of an isometric embedding of G into Q_k, it
// produces an isometric embedding into Q_{d'}(f) where
//
//   - d' = 2k-1 when 11 is a factor of f (insert 0 between consecutive bits),
//   - d' = 2k-1 when 00 is a factor of f (insert 1 between consecutive bits),
//   - d' = 3k-2 otherwise, for alternating f with |f| >= 3, f != 010, 101
//     as required by the proposition (insert 00 between consecutive bits).
//
// It returns the expanded coordinates and the target dimension d'.
func Prop71Expand(coords []bitstr.Word, f bitstr.Word) ([]bitstr.Word, int, error) {
	if len(coords) == 0 {
		return nil, 0, fmt.Errorf("isometry: empty embedding")
	}
	k := coords[0].Len()
	switch {
	case f.HasFactor(bitstr.MustParse("11")):
		return expandWith(coords, k, bitstr.Zeros(1)), 2*k - 1, nil
	case f.HasFactor(bitstr.MustParse("00")):
		return expandWith(coords, k, bitstr.Ones(1)), 2*k - 1, nil
	default:
		// f alternates; Proposition 7.1 requires |f| >= 3 and f != 010
		// (and by symmetry != 101): those cases have no valid dim_f.
		if f.Len() < 3 {
			return nil, 0, fmt.Errorf("isometry: Proposition 7.1 excludes f = %s", f)
		}
		return expandWith(coords, k, bitstr.Zeros(2)), 3*k - 2, nil
	}
}

func expandWith(coords []bitstr.Word, k int, sep bitstr.Word) []bitstr.Word {
	out := make([]bitstr.Word, len(coords))
	for i, c := range coords {
		var e bitstr.Word
		for j := 0; j < k; j++ {
			e = e.Concat(bitstr.New(c.Bit(j), 1))
			if j+1 < k {
				e = e.Concat(sep)
			}
		}
		out[i] = e
	}
	return out
}

// LargestHypercube returns the largest k <= maxK such that the hypercube
// Q_k embeds isometrically into the host cube. For Fibonacci cubes this is
// the "subcube capacity" claim of the interconnection-network line of work:
// Γ_d hosts Q_{⌊(d+1)/2⌋} (the 0-interleaving embedding of Proposition 7.1)
// and nothing larger.
func LargestHypercube(host *core.Cube, maxK int) int {
	best := 0
	for k := 1; k <= maxK; k++ {
		if 1<<uint(k) > host.N() {
			break
		}
		if _, ok := embed(hypercube.Build(k), host); !ok {
			break
		}
		best = k
	}
	return best
}

// VerifyEmbedding checks that the given words form an isometric embedding of
// g into Q_d(f): all words are vertices of the cube and the pairwise cube
// distances equal the guest distances.
func VerifyEmbedding(g *graph.Graph, f bitstr.Word, words []bitstr.Word) error {
	if len(words) != g.N() {
		return fmt.Errorf("isometry: embedding has %d words for %d vertices", len(words), g.N())
	}
	if g.N() == 0 {
		return nil
	}
	d := words[0].Len()
	host := core.New(d, f)
	idx := make([]int, len(words))
	for i, w := range words {
		j, ok := host.Rank(w)
		if !ok {
			return fmt.Errorf("isometry: word %s is not a vertex of Q_%d(%s)", w, d, f)
		}
		idx[i] = j
	}
	t := graph.NewTraverser(g)
	gd := make([]int32, g.N())
	for u := 0; u < g.N(); u++ {
		t.BFS(u, gd)
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if host.Dist(idx[u], idx[v]) != gd[v] {
				return fmt.Errorf("isometry: pair (%d,%d) maps to cube distance %d, guest distance %d",
					u, v, host.Dist(idx[u], idx[v]), gd[v])
			}
		}
	}
	return nil
}
