package isometry

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

func f11() bitstr.Word { return bitstr.MustParse("11") }

func TestFDimPathsFibonacci(t *testing.T) {
	// dim_11(P_2) = 1 (Γ_1 = K_2); dim_11(P_3) = 2 (Γ_2 = P_3); P_4 needs
	// Γ_3 (diameter 3); P_5 needs diameter 4, hence Γ_4.
	cases := []struct {
		n, want int
	}{
		{2, 1}, {3, 2}, {4, 3}, {5, 4},
	}
	for _, cs := range cases {
		res := FDim(graph.Path(cs.n), f11(), 6)
		if !res.Found || res.Dim != cs.want {
			t.Errorf("dim_11(P_%d) = %v (found %v), want %d", cs.n, res.Dim, res.Found, cs.want)
		}
		if err := VerifyEmbedding(graph.Path(cs.n), f11(), res.Embedding); err != nil {
			t.Errorf("P_%d embedding invalid: %v", cs.n, err)
		}
	}
}

func TestFDimCycleAndStar(t *testing.T) {
	// C_4 first appears isometrically in Γ_3; K_{1,3} too (center 000).
	res := FDim(graph.Cycle(4), f11(), 6)
	if !res.Found || res.Dim != 3 {
		t.Errorf("dim_11(C_4) = %d, want 3", res.Dim)
	}
	res = FDim(graph.Star(3), f11(), 6)
	if !res.Found || res.Dim != 3 {
		t.Errorf("dim_11(K_{1,3}) = %d, want 3", res.Dim)
	}
}

func TestFDimOddCycleNotFound(t *testing.T) {
	// Odd cycles embed in no hypercube, hence in no Q_d(f).
	res := FDim(graph.Cycle(5), f11(), 6)
	if res.Found {
		t.Error("C_5 should have no f-dimension")
	}
}

// E9 / Proposition 7.1: idim(G) <= dim_f(G) <= 3 idim(G) - 2, with the
// sharper 2 idim - 1 upper bound when f contains 11 or 00.
func TestE9Prop71Bounds(t *testing.T) {
	guests := map[string]*graph.Graph{
		"P3":   graph.Path(3),
		"P4":   graph.Path(4),
		"C4":   graph.Cycle(4),
		"K1_3": graph.Star(3),
	}
	factors := []string{"11", "111", "110"}
	for name, g := range guests {
		idim := Analyze(g).Idim()
		if idim <= 0 {
			t.Fatalf("%s: bad idim %d", name, idim)
		}
		for _, fs := range factors {
			f := bitstr.MustParse(fs)
			upper := 2*idim - 1 // all test factors contain 11
			res := FDim(g, f, upper)
			if !res.Found {
				t.Errorf("dim_%s(%s) not found within Prop 7.1 bound %d", fs, name, upper)
				continue
			}
			if res.Dim < idim {
				t.Errorf("dim_%s(%s) = %d below idim = %d", fs, name, res.Dim, idim)
			}
			if err := VerifyEmbedding(g, f, res.Embedding); err != nil {
				t.Errorf("%s into Q(%s): %v", name, fs, err)
			}
		}
	}
}

// The constructive expansion of Proposition 7.1 produces valid (if not
// minimal) embeddings.
func TestProp71ExpandElevenFactor(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"P5": graph.Path(5),
		"C6": graph.Cycle(6),
	} {
		a := Analyze(g)
		coords, err := a.Coordinates()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k := a.Idim()
		for _, fs := range []string{"11", "111", "1101"} {
			f := bitstr.MustParse(fs)
			exp, dim, err := Prop71Expand(coords, f)
			if err != nil {
				t.Fatalf("%s f=%s: %v", name, fs, err)
			}
			if dim != 2*k-1 {
				t.Errorf("%s f=%s: dim %d, want %d", name, fs, dim, 2*k-1)
			}
			if err := VerifyEmbedding(g, f, exp); err != nil {
				t.Errorf("%s f=%s: expanded embedding invalid: %v", name, fs, err)
			}
		}
	}
}

func TestProp71ExpandZeroZeroFactor(t *testing.T) {
	g := graph.Path(4)
	a := Analyze(g)
	coords, _ := a.Coordinates()
	f := bitstr.MustParse("100") // contains 00
	exp, dim, err := Prop71Expand(coords, f)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 2*a.Idim()-1 {
		t.Errorf("dim = %d", dim)
	}
	if err := VerifyEmbedding(g, f, exp); err != nil {
		t.Errorf("00-factor expansion invalid: %v", err)
	}
}

func TestProp71ExpandAlternatingFactor(t *testing.T) {
	g := graph.Path(4)
	a := Analyze(g)
	coords, _ := a.Coordinates()
	// f = 1010 alternates and contains neither 11 nor 00: the 3k-2 case.
	f := bitstr.MustParse("1010")
	exp, dim, err := Prop71Expand(coords, f)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 3*a.Idim()-2 {
		t.Errorf("dim = %d, want %d", dim, 3*a.Idim()-2)
	}
	if err := VerifyEmbedding(g, f, exp); err != nil {
		t.Errorf("alternating expansion invalid: %v", err)
	}
}

func TestProp71ExpandExcluded(t *testing.T) {
	g := graph.Path(3)
	coords, _ := Analyze(g).Coordinates()
	if _, _, err := Prop71Expand(coords, bitstr.MustParse("10")); err == nil {
		t.Error("f = 10 should be rejected (excluded by Proposition 7.1)")
	}
	if _, _, err := Prop71Expand(nil, bitstr.MustParse("11")); err == nil {
		t.Error("empty embedding should be rejected")
	}
}

func TestVerifyEmbeddingRejectsBad(t *testing.T) {
	g := graph.Path(3)
	// Wrong count.
	if err := VerifyEmbedding(g, f11(), []bitstr.Word{bitstr.MustParse("00")}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Word containing the factor.
	bad := []bitstr.Word{bitstr.MustParse("11"), bitstr.MustParse("01"), bitstr.MustParse("00")}
	if err := VerifyEmbedding(g, f11(), bad); err == nil {
		t.Error("factor-containing word accepted")
	}
	// Distances wrong: P3 mapped to three pairwise-adjacent... not possible
	// in a cube; use non-geodesic placement instead.
	bad = []bitstr.Word{bitstr.MustParse("00"), bitstr.MustParse("01"), bitstr.MustParse("00")}
	if err := VerifyEmbedding(g, f11(), bad); err == nil {
		t.Error("distance-violating embedding accepted")
	}
}

func TestFDimSingletonAndEmpty(t *testing.T) {
	res := FDim(graph.NewBuilder(1).Build(), f11(), 3)
	if !res.Found {
		t.Error("K_1 should embed")
	}
	res = FDim(graph.NewBuilder(0).Build(), f11(), 3)
	if !res.Found || res.Dim != 0 {
		t.Error("empty graph should embed at dimension 0")
	}
}
