package isometry

import (
	"runtime"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/graph"
	"gfcube/internal/hypercube"
)

func TestHypercubeThetaClasses(t *testing.T) {
	// Q_d has exactly d Θ*-classes (one per direction) and is a partial cube
	// of isometric dimension d.
	for d := 1; d <= 5; d++ {
		a := Analyze(hypercube.Build(d))
		if !a.IsPartialCube() {
			t.Fatalf("Q_%d not recognized as partial cube", d)
		}
		if a.Idim() != d {
			t.Errorf("idim(Q_%d) = %d", d, a.Idim())
		}
		if !a.ThetaTransitive {
			t.Errorf("Θ not transitive on Q_%d", d)
		}
	}
}

func TestFibonacciCubeIdim(t *testing.T) {
	// Γ_d is isometric in Q_d and uses every direction: idim(Γ_d) = d.
	for d := 1; d <= 8; d++ {
		a := Analyze(core.Fibonacci(d).Graph())
		if a.Idim() != d {
			t.Errorf("idim(Γ_%d) = %d, want %d", d, a.Idim(), d)
		}
	}
}

func TestTreeIdim(t *testing.T) {
	// In a tree every edge is its own Θ*-class: idim = number of edges.
	p := graph.Path(7)
	if a := Analyze(p); a.Idim() != 6 {
		t.Errorf("idim(P_7) = %d, want 6", a.Idim())
	}
	star := graph.Star(5)
	if a := Analyze(star); a.Idim() != 5 {
		t.Errorf("idim(K_{1,5}) = %d, want 5", a.Idim())
	}
	tree := graph.Tree([]int{0, 0, 0, 1, 1, 2})
	if a := Analyze(tree); a.Idim() != 5 {
		t.Errorf("idim(tree) = %d, want 5", a.Idim())
	}
}

func TestEvenCycleIdim(t *testing.T) {
	// C_{2k} is a partial cube with idim = k.
	for k := 2; k <= 5; k++ {
		a := Analyze(graph.Cycle(2 * k))
		if a.Idim() != k {
			t.Errorf("idim(C_%d) = %d, want %d", 2*k, a.Idim(), k)
		}
	}
}

func TestOddCycleNotPartialCube(t *testing.T) {
	a := Analyze(graph.Cycle(5))
	if a.IsPartialCube() {
		t.Error("C_5 is not bipartite, cannot be a partial cube")
	}
	if a.Bipartite {
		t.Error("C_5 reported bipartite")
	}
	if a.Idim() != -1 {
		t.Error("idim should be -1")
	}
}

func TestCompleteGraphNotPartialCube(t *testing.T) {
	if Analyze(graph.Complete(4)).IsPartialCube() {
		t.Error("K_4 is not a partial cube")
	}
}

// E8: the Section 8 remark. Q_d(101) for d >= 4 is connected and bipartite
// but Θ is not transitive, so by Winkler's theorem it is not an isometric
// subgraph of ANY hypercube Q_{d'}.
func TestE8Q101NotPartialCube(t *testing.T) {
	for d := 4; d <= 7; d++ {
		a := Analyze(core.New(d, bitstr.MustParse("101")).Graph())
		if !a.Connected || !a.Bipartite {
			t.Fatalf("Q_%d(101) should be connected and bipartite", d)
		}
		if a.ThetaTransitive {
			t.Errorf("Θ transitive on Q_%d(101); Section 8 argument predicts otherwise", d)
		}
		if a.IsPartialCube() {
			t.Errorf("Q_%d(101) recognized as partial cube", d)
		}
		// The defect witness must be genuine: same Θ*-class, not Θ-related.
		i, j := a.BadEdges[0], a.BadEdges[1]
		if i < 0 || j < 0 || a.Class[i] != a.Class[j] || a.Theta(i, j) {
			t.Errorf("bad-edge witness invalid for d=%d", d)
		}
	}
}

// By contrast, for d <= 3, Q_d(101) = Q_d (or Q_3 minus a vertex) and those
// are partial cubes.
func TestQ101SmallDimsArePartialCubes(t *testing.T) {
	for d := 1; d <= 3; d++ {
		a := Analyze(core.New(d, bitstr.MustParse("101")).Graph())
		if !a.IsPartialCube() {
			t.Errorf("Q_%d(101) should be a partial cube", d)
		}
	}
}

func TestCoordinatesRoundTrip(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"P6":     graph.Path(6),
		"C6":     graph.Cycle(6),
		"Γ5":     core.Fibonacci(5).Graph(),
		"grid23": graph.Grid(2, 3),
		"Q3":     hypercube.Build(3),
	}
	for name, g := range graphs {
		a := Analyze(g)
		coords, err := a.Coordinates()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if int(a.Dist(u, v)) != coords[u].HammingDistance(coords[v]) {
					t.Fatalf("%s: coordinates not isometric at (%d,%d)", name, u, v)
				}
			}
		}
		if coords[0].Len() != a.Idim() {
			t.Errorf("%s: coordinate length %d != idim %d", name, coords[0].Len(), a.Idim())
		}
	}
}

func TestCoordinatesFailsOnNonPartialCube(t *testing.T) {
	a := Analyze(graph.Complete(3))
	if _, err := a.Coordinates(); err == nil {
		t.Error("Coordinates should fail for K_3")
	}
}

// The streaming analysis must never materialize an n×n distance matrix:
// total allocation during Analyze of Γ_16 (n = 2584, matrix would be
// ~26.7 MB) must stay well under half the matrix footprint. GOMAXPROCS is
// pinned so the worker count (hence blocks in flight) is machine
// independent.
func TestAnalyzeAllocationBound(t *testing.T) {
	g := core.Fibonacci(16).Graph()
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	a := Analyze(g)
	runtime.ReadMemStats(&after)
	if a.Idim() != 16 {
		t.Fatalf("idim(Γ_16) = %d", a.Idim())
	}
	matrix := uint64(g.N()) * uint64(g.N()) * 4
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > matrix/2 {
		t.Errorf("Analyze allocated %d bytes total, over half an n×n matrix (%d)", alloc, matrix)
	}
}

// Post-analysis Dist and Theta run on the row LRU; they must agree with
// fresh BFS distances and with the streamed Θ classes, including far past
// the LRU capacity.
func TestAnalysisDistLRU(t *testing.T) {
	g := core.Fibonacci(9).Graph() // n = 89, beyond the 64-row LRU
	a := Analyze(g)
	n := g.N()
	dist := make([]int32, n)
	tr := graph.NewTraverser(g)
	for u := 0; u < n; u++ {
		tr.BFS(u, dist)
		for v := 0; v < n; v++ {
			if got := a.Dist(u, v); got != dist[v] {
				t.Fatalf("Dist(%d,%d) = %d, BFS %d", u, v, got, dist[v])
			}
		}
	}
	// Theta agrees with the class structure on a partial cube: same class
	// iff Θ-related.
	edges := a.Edges()
	for i := 0; i < len(edges); i += 7 {
		for j := i; j < len(edges); j += 13 {
			if got, want := a.Theta(i, j), a.Class[i] == a.Class[j]; got != want {
				t.Fatalf("Theta(%d,%d) = %v, classes %d/%d", i, j, got, a.Class[i], a.Class[j])
			}
		}
	}
}

func TestDisconnectedGraphDetected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	a := Analyze(b.Build())
	if a.Connected {
		t.Error("disconnected graph reported connected")
	}
	if a.IsPartialCube() {
		t.Error("disconnected graph cannot be a partial cube")
	}
}

// Every isometric Q_d(f) is a partial cube; its idim can be less than d when
// directions are unused, but for the Table 1 isometric cases with d > |f|
// all d directions appear.
func TestIsometricCubesArePartialCubes(t *testing.T) {
	for _, row := range core.Table1 {
		f := row.Word()
		for d := 1; d <= 7; d++ {
			if row.VerdictFor(d) != core.Isometric {
				continue
			}
			a := Analyze(core.New(d, f).Graph())
			if !a.IsPartialCube() {
				t.Errorf("isometric Q_%d(%s) not recognized as partial cube", d, row.Factor)
			}
		}
	}
}

// For isometric Q_d(f) with d > |f| and f containing at least two 1s (or two
// 0s, by symmetry), every hypercube direction carries at least one edge:
// the Θ*-class count recovers exactly d, and the Winkler coordinatization
// reconstructs words equivalent to the natural ones up to relabeling.
func TestIsometricCubesFullIdim(t *testing.T) {
	for _, row := range core.Table1 {
		f := row.Word()
		if f.Len() < 2 {
			continue
		}
		for d := f.Len() + 1; d <= 7; d++ {
			if row.VerdictFor(d) != core.Isometric {
				continue
			}
			a := Analyze(core.New(d, f).Graph())
			if got := a.Idim(); got != d {
				t.Errorf("idim(Q_%d(%s)) = %d, want %d", d, row.Factor, got, d)
			}
			coords, err := a.Coordinates()
			if err != nil {
				t.Errorf("Q_%d(%s): coordinatization failed: %v", d, row.Factor, err)
				continue
			}
			if coords[0].Len() != d {
				t.Errorf("Q_%d(%s): coordinate width %d", d, row.Factor, coords[0].Len())
			}
		}
	}
}
