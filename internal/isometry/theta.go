// Package isometry implements the partial-cube machinery of Sections 7 and 8
// of the paper: the Djoković-Winkler relation Θ on edges, its transitive
// closure Θ*, Winkler's partial-cube recognition (a connected bipartite graph
// embeds isometrically in a hypercube iff Θ is transitive), the isometric
// dimension idim(G), hypercube coordinatization, and the f-dimension
// dim_f(G) of Section 7 together with the constructive bounds of
// Proposition 7.1.
package isometry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Analysis is the result of the Θ-relation computation on a graph. Unlike
// earlier revisions it never materializes an n×n distance matrix: the Θ
// passes stream 64-source MS-BFS blocks, and post-analysis distance
// queries go through a small LRU of BFS rows.
type Analysis struct {
	g     *graph.Graph
	edges [][2]int32

	mu  sync.Mutex // guards lru
	lru *rowLRU

	// Class[i] is the Θ*-class of edge i; classes are 0..NumClasses-1.
	Class      []int
	NumClasses int
	// Bipartite and Connected are the preconditions of Winkler's theorem.
	Bipartite bool
	Connected bool
	// ThetaTransitive reports whether Θ equals its transitive closure Θ*.
	// By Winkler's theorem, a connected bipartite graph is a partial cube
	// iff this holds.
	ThetaTransitive bool
	// If !ThetaTransitive, BadEdges is a pair of edge indices in the same
	// Θ*-class that are not Θ-related.
	BadEdges [2]int
}

// errBadPairFound stops the transitivity stream at the first violation.
var errBadPairFound = errors.New("isometry: non-transitive pair found")

// Analyze computes the Θ relation, Θ*-classes and the Winkler transitivity
// test for a graph. Distances are streamed from the MS-BFS engine in
// blocks whose batching puts both endpoint rows of each edge in one block,
// so peak memory is O(n·64·workers) instead of the former O(n²) matrix;
// connectivity comes from the BFS visit count of g.IsConnected, not from
// scanning distance rows.
func Analyze(g *graph.Graph) *Analysis {
	a := &Analysis{g: g, edges: g.EdgeList()}
	a.Connected = g.IsConnected()
	a.Bipartite, _ = g.IsBipartite()
	a.lru = newRowLRU(g)
	a.ThetaTransitive = true
	a.BadEdges = [2]int{-1, -1}
	m := len(a.edges)
	a.Class = make([]int, m)
	if m == 0 {
		return a
	}
	batches := graph.EdgeBatches(a.edges)
	sources := graph.EdgeBatchSources(batches)

	// Pass 1: Θ over edge pairs. Each block owns a consecutive edge range
	// with both endpoint rows resident; every owned edge i is tested
	// against all j > i (each unordered pair exactly once, as in the
	// serial analysis) and related pairs merge in a lock-free union-find.
	uf := newAtomicUF(m)
	_ = g.ForEachBatchPar(sources, graph.MSOptions{}, func(_ int, b *graph.DistBlock) error {
		eb := batches[b.Batch]
		for i := eb.Lo; i < eb.Hi; i++ {
			rows := eb.Rows[i-eb.Lo]
			rx := b.Row(int(rows[0]))
			ry := b.Row(int(rows[1]))
			for j := i + 1; j < m; j++ {
				u, v := a.edges[j][0], a.edges[j][1]
				if rx[u]+ry[v] != rx[v]+ry[u] {
					uf.union(int32(i), int32(j))
				}
			}
		}
		return nil
	})
	// Class ids by first occurrence in edge order — identical to the
	// serial analysis regardless of union interleaving (the final
	// partition is order-independent).
	ids := make(map[int32]int)
	for i := 0; i < m; i++ {
		r := uf.find(int32(i))
		id, ok := ids[r]
		if !ok {
			id = len(ids)
			ids[r] = id
		}
		a.Class[i] = id
	}
	a.NumClasses = len(ids)

	// Pass 2: Winkler transitivity — every two edges in the same Θ*-class
	// must be Θ-related. Only same-class pairs are tested (classEdges
	// lists are ascending), blocks are consumed in batch order, and the
	// stream stops at the first violating pair, so the witness is the
	// lexicographically first (i, j), exactly as in the serial analysis.
	classEdges := make([][]int32, a.NumClasses)
	for i, c := range a.Class {
		classEdges[c] = append(classEdges[c], int32(i))
	}
	// A batch only needs its BFS if some owned edge has a later edge in
	// its class (class lists are ascending, so check each list's tail).
	// Trees and other all-singleton-class graphs shed the entire second
	// sweep this way.
	skipBatch := make([]bool, len(batches))
	for bi, eb := range batches {
		skip := true
		for i := eb.Lo; i < eb.Hi && skip; i++ {
			ce := classEdges[a.Class[i]]
			skip = ce[len(ce)-1] <= int32(i)
		}
		skipBatch[bi] = skip
	}
	_ = g.ForEachBatch(sources, graph.MSOptions{Skip: func(b int) bool { return skipBatch[b] }}, func(b *graph.DistBlock) error {
		eb := batches[b.Batch]
		for i := eb.Lo; i < eb.Hi; i++ {
			rows := eb.Rows[i-eb.Lo]
			rx := b.Row(int(rows[0]))
			ry := b.Row(int(rows[1]))
			for _, j32 := range classEdges[a.Class[i]] {
				j := int(j32)
				if j <= i {
					continue
				}
				u, v := a.edges[j][0], a.edges[j][1]
				if rx[u]+ry[v] == rx[v]+ry[u] {
					a.ThetaTransitive = false
					a.BadEdges = [2]int{i, j}
					return errBadPairFound
				}
			}
		}
		return nil
	})
	return a
}

// Theta exposes the Θ test on edge indices (after Analyze): edges i and j
// are related iff d(x,u) + d(y,v) != d(x,v) + d(y,u) for e_i = xy,
// e_j = uv. Distances come from the row LRU.
func (a *Analysis) Theta(i, j int) bool {
	if i == j {
		return true
	}
	x, y := a.edges[i][0], a.edges[i][1]
	u, v := a.edges[j][0], a.edges[j][1]
	a.mu.Lock()
	defer a.mu.Unlock()
	xu := a.lru.row(x)[u]
	yv := a.lru.row(y)[v]
	xv := a.lru.row(x)[v]
	yu := a.lru.row(y)[u]
	return xu+yv != xv+yu
}

// Edges returns the edge list the analysis indexes refer to.
func (a *Analysis) Edges() [][2]int32 { return a.edges }

// Dist returns the distance between two vertices. Rows are BFS'd on demand
// and kept in a fixed-size LRU, so repeated queries from the same source
// (the common access pattern) cost one lookup. Safe for concurrent use.
func (a *Analysis) Dist(u, v int) int32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lru.row(int32(u))[v]
}

// IsPartialCube applies Winkler's theorem: the graph embeds isometrically
// into some hypercube iff it is connected, bipartite and Θ is transitive.
func (a *Analysis) IsPartialCube() bool {
	return a.Connected && a.Bipartite && a.ThetaTransitive
}

// Idim returns the isometric dimension of the graph: the number of
// Θ*-classes if the graph is a partial cube, or -1 otherwise (the paper's
// idim(G) = ∞ case).
func (a *Analysis) Idim() int {
	if !a.IsPartialCube() {
		return -1
	}
	return a.NumClasses
}

// Coordinates returns an isometric embedding of a partial cube into
// Q_{idim(G)}: one word per vertex, one coordinate per Θ*-class. The side of
// each vertex relative to class k is determined by distance comparison with
// the endpoints of a representative edge of k (the halfspaces of a partial
// cube); side vectors and the final verification both stream MS-BFS blocks
// rather than consulting a distance matrix. The embedding is verified
// before being returned.
func (a *Analysis) Coordinates() ([]bitstr.Word, error) {
	if !a.IsPartialCube() {
		return nil, fmt.Errorf("isometry: graph is not a partial cube")
	}
	n := a.g.N()
	k := a.NumClasses
	if k > bitstr.MaxLen {
		return nil, fmt.Errorf("isometry: idim %d exceeds %d-bit words", k, bitstr.MaxLen)
	}
	// Representative edge per class, batched so each class's two endpoint
	// rows share a block.
	repEdges := make([][2]int32, k)
	seen := make([]bool, k)
	for e, cl := range a.Class {
		if !seen[cl] {
			seen[cl] = true
			repEdges[cl] = a.edges[e]
		}
	}
	batches := graph.EdgeBatches(repEdges)
	// side[cl*n+v] is 1 when v lies on the y-side of class cl's
	// representative edge xy. Distinct classes write distinct rows, so
	// blocks can be consumed concurrently.
	side := make([]int8, k*n)
	err := a.g.ForEachBatchPar(graph.EdgeBatchSources(batches), graph.MSOptions{}, func(_ int, b *graph.DistBlock) error {
		eb := batches[b.Batch]
		for cl := eb.Lo; cl < eb.Hi; cl++ {
			rows := eb.Rows[cl-eb.Lo]
			rx := b.Row(int(rows[0]))
			ry := b.Row(int(rows[1]))
			s := side[cl*n : (cl+1)*n]
			for v := 0; v < n; v++ {
				switch {
				case rx[v] < ry[v]:
					// x-side: bit 0.
				case rx[v] > ry[v]:
					s[v] = 1
				default:
					return fmt.Errorf("isometry: vertex %d equidistant from endpoints of class %d; not a partial cube", v, cl)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	coords := make([]bitstr.Word, n)
	for v := 0; v < n; v++ {
		var bits uint64
		for cl := 0; cl < k; cl++ {
			if side[cl*n+v] == 1 {
				bits |= 1 << uint(k-1-cl)
			}
		}
		coords[v] = bitstr.Word{Bits: bits, N: k}
	}
	// Verify: graph distance must equal Hamming distance of coordinates.
	err = a.g.ForEachSourceBatchPar(nil, graph.MSOptions{}, func(_ int, b *graph.DistBlock) error {
		for i, s := range b.Sources {
			row := b.Row(i)
			cs := coords[s]
			for v := int(s) + 1; v < n; v++ {
				if int(row[v]) != cs.HammingDistance(coords[v]) {
					return fmt.Errorf("isometry: coordinatization failed at pair (%d,%d)", s, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return coords, nil
}

// rowLRU caches BFS distance rows for the post-analysis Dist and Theta
// accessors: capacity-bounded, least-recently-used eviction, row storage
// recycled across evictions. It replaces the former n×n matrix.
type rowLRU struct {
	g    *graph.Graph
	t    *graph.Traverser
	rows map[int32]*lruRow
	tick uint64
}

type lruRow struct {
	dist []int32
	last uint64
}

// lruRowCap bounds the cached rows: 64·n int32 values, mirroring one
// MS-BFS block.
const lruRowCap = 64

func newRowLRU(g *graph.Graph) *rowLRU {
	return &rowLRU{g: g, rows: make(map[int32]*lruRow)}
}

// row returns the distance row of src, computing it by BFS on a miss. The
// returned slice is valid until the row is evicted; callers under the
// Analysis lock read single entries and never retain it.
func (c *rowLRU) row(src int32) []int32 {
	c.tick++
	if e, ok := c.rows[src]; ok {
		e.last = c.tick
		return e.dist
	}
	var e *lruRow
	if len(c.rows) >= lruRowCap {
		victim, oldest := int32(-1), ^uint64(0)
		for s, r := range c.rows {
			if r.last < oldest {
				oldest, victim = r.last, s
			}
		}
		e = c.rows[victim]
		delete(c.rows, victim)
	} else {
		e = &lruRow{dist: make([]int32, c.g.N())}
	}
	if c.t == nil {
		c.t = graph.NewTraverser(c.g)
	}
	c.t.BFS(int(src), e.dist)
	e.last = c.tick
	c.rows[src] = e
	return e.dist
}

// atomicUF is a lock-free union-find over edge indices (Anderson–Woll
// style): parents are updated with compare-and-swap, roots always link
// toward the smaller index, so the final representative of every class is
// its minimum edge — deterministic under any worker interleaving.
type atomicUF struct {
	parent []int32
}

func newAtomicUF(m int) *atomicUF {
	u := &atomicUF{parent: make([]int32, m)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *atomicUF) find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&u.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&u.parent[p])
		if gp == p {
			return p
		}
		// Path halving; a lost race just means another worker compressed.
		atomic.CompareAndSwapInt32(&u.parent[x], p, gp)
		x = gp
	}
}

func (u *atomicUF) union(x, y int32) {
	for {
		rx, ry := u.find(x), u.find(y)
		if rx == ry {
			return
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Link the larger root under the smaller; CAS failure means ry
		// was linked concurrently — re-find and retry.
		if atomic.CompareAndSwapInt32(&u.parent[ry], ry, rx) {
			return
		}
	}
}
