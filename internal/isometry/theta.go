// Package isometry implements the partial-cube machinery of Sections 7 and 8
// of the paper: the Djoković-Winkler relation Θ on edges, its transitive
// closure Θ*, Winkler's partial-cube recognition (a connected bipartite graph
// embeds isometrically in a hypercube iff Θ is transitive), the isometric
// dimension idim(G), hypercube coordinatization, and the f-dimension
// dim_f(G) of Section 7 together with the constructive bounds of
// Proposition 7.1.
package isometry

import (
	"fmt"

	"gfcube/internal/bitstr"
	"gfcube/internal/graph"
)

// Analysis is the result of the Θ-relation computation on a graph.
type Analysis struct {
	g     *graph.Graph
	edges [][2]int32
	dist  [][]int32

	// Class[i] is the Θ*-class of edge i; classes are 0..NumClasses-1.
	Class      []int
	NumClasses int
	// Bipartite and Connected are the preconditions of Winkler's theorem.
	Bipartite bool
	Connected bool
	// ThetaTransitive reports whether Θ equals its transitive closure Θ*.
	// By Winkler's theorem, a connected bipartite graph is a partial cube
	// iff this holds.
	ThetaTransitive bool
	// If !ThetaTransitive, BadEdges is a pair of edge indices in the same
	// Θ*-class that are not Θ-related.
	BadEdges [2]int
}

// Analyze computes distances, the Θ relation, Θ*-classes and the Winkler
// transitivity test for a connected graph. It panics on a disconnected
// graph only when asked for coordinates; Analyze itself records the defect.
func Analyze(g *graph.Graph) *Analysis {
	n := g.N()
	a := &Analysis{g: g, edges: g.EdgeList()}
	a.dist = make([][]int32, n)
	t := graph.NewTraverser(g)
	a.Connected = true
	for v := 0; v < n; v++ {
		a.dist[v] = make([]int32, n)
		t.BFS(v, a.dist[v])
		for _, d := range a.dist[v] {
			if d == graph.Unreachable {
				a.Connected = false
			}
		}
	}
	a.Bipartite, _ = g.IsBipartite()

	m := len(a.edges)
	parent := make([]int, m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if a.theta(i, j) {
				union(i, j)
			}
		}
	}
	a.Class = make([]int, m)
	next := 0
	ids := make(map[int]int)
	for i := 0; i < m; i++ {
		r := find(i)
		id, ok := ids[r]
		if !ok {
			id = next
			ids[r] = id
			next++
		}
		a.Class[i] = id
	}
	a.NumClasses = next

	// Transitivity: every two edges in the same Θ*-class must be Θ-related.
	a.ThetaTransitive = true
	a.BadEdges = [2]int{-1, -1}
outer:
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if a.Class[i] == a.Class[j] && !a.theta(i, j) {
				a.ThetaTransitive = false
				a.BadEdges = [2]int{i, j}
				break outer
			}
		}
	}
	return a
}

// theta reports whether edges i and j are in relation Θ:
// d(x,u) + d(y,v) != d(x,v) + d(y,u) for e_i = xy, e_j = uv.
func (a *Analysis) theta(i, j int) bool {
	if i == j {
		return true
	}
	x, y := a.edges[i][0], a.edges[i][1]
	u, v := a.edges[j][0], a.edges[j][1]
	return a.dist[x][u]+a.dist[y][v] != a.dist[x][v]+a.dist[y][u]
}

// Theta exposes the Θ test on edge indices (after Analyze).
func (a *Analysis) Theta(i, j int) bool { return a.theta(i, j) }

// Edges returns the edge list the analysis indexes refer to.
func (a *Analysis) Edges() [][2]int32 { return a.edges }

// Dist returns the precomputed distance between two vertices.
func (a *Analysis) Dist(u, v int) int32 { return a.dist[u][v] }

// IsPartialCube applies Winkler's theorem: the graph embeds isometrically
// into some hypercube iff it is connected, bipartite and Θ is transitive.
func (a *Analysis) IsPartialCube() bool {
	return a.Connected && a.Bipartite && a.ThetaTransitive
}

// Idim returns the isometric dimension of the graph: the number of
// Θ*-classes if the graph is a partial cube, or -1 otherwise (the paper's
// idim(G) = ∞ case).
func (a *Analysis) Idim() int {
	if !a.IsPartialCube() {
		return -1
	}
	return a.NumClasses
}

// Coordinates returns an isometric embedding of a partial cube into
// Q_{idim(G)}: one word per vertex, one coordinate per Θ*-class. The side of
// each vertex relative to class k is determined by distance comparison with
// the endpoints of a representative edge of k (the halfspaces of a partial
// cube). The embedding is verified before being returned.
func (a *Analysis) Coordinates() ([]bitstr.Word, error) {
	if !a.IsPartialCube() {
		return nil, fmt.Errorf("isometry: graph is not a partial cube")
	}
	n := a.g.N()
	k := a.NumClasses
	if k > bitstr.MaxLen {
		return nil, fmt.Errorf("isometry: idim %d exceeds %d-bit words", k, bitstr.MaxLen)
	}
	// Representative edge per class.
	rep := make([]int, k)
	for i := range rep {
		rep[i] = -1
	}
	for e, cl := range a.Class {
		if rep[cl] == -1 {
			rep[cl] = e
		}
	}
	coords := make([]bitstr.Word, n)
	for v := 0; v < n; v++ {
		var bits uint64
		for cl := 0; cl < k; cl++ {
			x, y := a.edges[rep[cl]][0], a.edges[rep[cl]][1]
			// v is on the y-side iff it is closer to y than to x; in a
			// partial cube every vertex is strictly closer to one endpoint.
			switch {
			case a.dist[v][x] < a.dist[v][y]:
				// bit 0
			case a.dist[v][x] > a.dist[v][y]:
				bits |= 1 << uint(k-1-cl)
			default:
				return nil, fmt.Errorf("isometry: vertex %d equidistant from endpoints of class %d; not a partial cube", v, cl)
			}
		}
		coords[v] = bitstr.Word{Bits: bits, N: k}
	}
	// Verify: graph distance must equal Hamming distance of coordinates.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if int(a.dist[u][v]) != coords[u].HammingDistance(coords[v]) {
				return nil, fmt.Errorf("isometry: coordinatization failed at pair (%d,%d)", u, v)
			}
		}
	}
	return coords, nil
}
