package store

import (
	"context"
	"sync/atomic"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Provider is the store-backed core.Provider: backends load from disk
// artifacts when present and valid, and are computed — then written
// through best-effort — otherwise. A Provider over a nil *Store
// degenerates to pure compute, so callers can wire it unconditionally.
type Provider struct {
	store    *Store
	computed atomic.Uint64
}

// NewProvider returns a Provider over s (which may be nil).
func NewProvider(s *Store) *Provider {
	return &Provider{store: s}
}

// Store returns the underlying store, nil when compute-only.
func (p *Provider) Store() *Store { return p.store }

// Computed returns how many backends were built from scratch (store
// misses and corruption fallbacks included). A warm start that never
// rebuilds keeps this at zero.
func (p *Provider) Computed() uint64 { return p.computed.Load() }

// Cube resolves the explicit backend for Q_d(f): artifact load if a
// valid one exists, else compute + write-through. Corruption at any
// layer falls back to compute; the error return is reserved for
// cancellation.
func (p *Provider) Cube(ctx context.Context, d int, f bitstr.Word) (*core.Cube, core.Source, error) {
	k := Key{Kind: KindCube, F: f, D: d}
	if p.store != nil && d >= 0 && d <= core.MaxBuildDim && f.Len() > 0 {
		if payload, err := p.store.Load(k); err == nil {
			c, err := core.LoadCube(payload, d, f)
			if err == nil {
				return c, core.SourceStore, nil
			}
			p.store.NoteCorrupt(k)
		}
		// Any load failure — miss, corruption, I/O — falls through to
		// compute: the store can degrade, answers cannot.
	}
	if err := ctx.Err(); err != nil {
		return nil, core.SourceComputed, err
	}
	c := core.New(d, f)
	p.computed.Add(1)
	if p.store != nil {
		_ = p.store.Save(k, c.AppendBinary(nil))
	}
	return c, core.SourceComputed, nil
}

// Implicit resolves the DFA-rank backend for Q_d(f), same contract as
// Cube.
func (p *Provider) Implicit(ctx context.Context, d int, f bitstr.Word) (*core.Implicit, core.Source, error) {
	k := Key{Kind: KindRanker, F: f, D: d}
	if p.store != nil && d >= 0 && f.Len() > 0 {
		if payload, err := p.store.Load(k); err == nil {
			im, err := core.LoadImplicit(payload, d, f)
			if err == nil {
				return im, core.SourceStore, nil
			}
			p.store.NoteCorrupt(k)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, core.SourceComputed, err
	}
	im := core.NewImplicit(d, f)
	p.computed.Add(1)
	if p.store != nil {
		_ = p.store.Save(k, im.AppendBinary(nil))
	}
	return im, core.SourceComputed, nil
}

var _ core.Provider = (*Provider)(nil)
