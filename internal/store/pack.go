package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Warm-start packs: a directory of artifacts covering a full (|f|, d)
// grid — one ranker and (where buildable) one cube artifact per factor
// word and dimension — plus two JSON sidecars: pack.json (the Manifest)
// and verdicts.json (precomputed classification/count/isometry verdicts
// per canonical class cell). cmd/gfc-pack generates the shipped pack
// (`make pack`); gfc-serve -warm-pack mounts one read-only.

// ManifestName and VerdictsName are the sidecar file names inside a
// pack directory.
const (
	ManifestName = "pack.json"
	VerdictsName = "verdicts.json"
)

// PackOptions bounds pack generation. Zero values default to the
// shipped grid: every factor with 1 <= |f| <= 5, dimensions 1..12.
type PackOptions struct {
	MinLen int
	MaxLen int
	MaxD   int
}

func (o PackOptions) withDefaults() PackOptions {
	if o.MinLen <= 0 {
		o.MinLen = 1
	}
	if o.MaxLen <= 0 {
		o.MaxLen = 5
	}
	if o.MaxD <= 0 {
		o.MaxD = 12
	}
	return o
}

// Manifest describes a pack: grid bounds and inventory.
type Manifest struct {
	FormatVersion int `json:"formatVersion"`
	MinLen        int `json:"minLen"`
	MaxLen        int `json:"maxLen"`
	MaxD          int `json:"maxD"`
	Artifacts     int `json:"artifacts"`
	Verdicts      int `json:"verdicts"`
}

// Verdict is one precomputed (canonical class, d) cell of the sidecar:
// exact counts (decimal strings — they overflow int64 quickly), the
// paper's theory classification, and the exact isometric-embeddability
// verdict with its witness. Verdicts are class-invariant (unlike the
// binary artifacts, which are per exact factor), so one row covers every
// complement/reversal variant of the representative.
type Verdict struct {
	Factor      string `json:"factor"` // canonical class representative
	ClassSize   int    `json:"classSize"`
	D           int    `json:"d"`
	V           string `json:"v"`
	E           string `json:"e"`
	S           string `json:"s"`
	Verdict     string `json:"verdict"` // theory classification
	Reason      string `json:"reason"`
	Isometric   bool   `json:"isometric"` // exact check (method quick)
	WitnessU    string `json:"u,omitempty"`
	WitnessV    string `json:"w,omitempty"`
	CubeDist    int32  `json:"cubeDist,omitempty"`
	HammingDist int32  `json:"hammingDist,omitempty"`
}

// Generate writes a complete warm-start pack into dir: artifacts for
// every factor word in the grid (each class member — rank tables are not
// class-invariant) and the verdict sidecar per canonical class. The
// verdict pass resolves its cubes through the just-written artifacts,
// exercising the load path on everything it ships.
func Generate(dir string, opts PackOptions) (Manifest, error) {
	opts = opts.withDefaults()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		return Manifest{}, err
	}
	defer st.Close()
	man := Manifest{
		FormatVersion: FormatVersion,
		MinLen:        opts.MinLen,
		MaxLen:        opts.MaxLen,
		MaxD:          opts.MaxD,
	}
	scratch := core.NewScratch()
	for n := opts.MinLen; n <= opts.MaxLen; n++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			f := bitstr.Word{Bits: bits, N: n}
			for d := 1; d <= opts.MaxD; d++ {
				im := core.NewImplicit(d, f)
				if err := st.Save(Key{Kind: KindRanker, F: f, D: d}, im.AppendBinary(nil)); err != nil {
					return Manifest{}, err
				}
				man.Artifacts++
				if d <= core.MaxBuildDim {
					c := scratch.Cube(context.Background(), d, f)
					if err := st.Save(Key{Kind: KindCube, F: f, D: d}, c.AppendBinary(nil)); err != nil {
						return Manifest{}, err
					}
					man.Artifacts++
				}
			}
		}
	}
	// The verdict pass loads every cube it touches from the artifacts
	// written above.
	scratch.Provider = NewProvider(st)
	var verdicts []Verdict
	for _, cl := range core.Classes(opts.MinLen, opts.MaxLen) {
		for d := 1; d <= opts.MaxD; d++ {
			bc := core.Count(d, cl.Rep)
			th := core.Classify(cl.Rep, d)
			cell := core.ClassifyCell(context.Background(), scratch, cl, d, core.MethodQuick)
			v := Verdict{
				Factor:    cl.Rep.String(),
				ClassSize: cl.Size,
				D:         d,
				V:         bc.V.String(),
				E:         bc.E.String(),
				S:         bc.S.String(),
				Verdict:   th.Verdict.String(),
				Reason:    th.Reason,
				Isometric: cell.Isometric,
			}
			if w := cell.Witness; w != nil {
				v.WitnessU = w.U.String()
				v.WitnessV = w.V.String()
				v.CubeDist = w.CubeDist
				v.HammingDist = w.HammingDist
			}
			verdicts = append(verdicts, v)
		}
	}
	man.Verdicts = len(verdicts)
	if err := writeJSONFile(filepath.Join(dir, VerdictsName), verdicts); err != nil {
		return Manifest{}, err
	}
	if err := writeJSONFile(filepath.Join(dir, ManifestName), man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads a pack directory's manifest.
func LoadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: bad pack manifest: %w", err)
	}
	if man.FormatVersion != FormatVersion {
		return Manifest{}, fmt.Errorf("store: pack format version %d, reader supports %d", man.FormatVersion, FormatVersion)
	}
	return man, nil
}

// LoadVerdicts reads a pack directory's verdict sidecar.
func LoadVerdicts(dir string) ([]Verdict, error) {
	data, err := os.ReadFile(filepath.Join(dir, VerdictsName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Verdict
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("store: bad verdict sidecar: %w", err)
	}
	return out, nil
}
