package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/iso"
)

// Warm-start packs: a directory of artifacts covering a full (|f|, d)
// grid — one ranker and (where buildable) one cube artifact per factor
// word and dimension — plus two JSON sidecars: pack.json (the Manifest)
// and verdicts.json (precomputed classification/count/isometry verdicts
// per canonical class cell). cmd/gfc-pack generates the shipped pack
// (`make pack`); gfc-serve -warm-pack mounts one read-only.

// ManifestName and VerdictsName are the sidecar file names inside a
// pack directory; IsoClassesName is the congruence-group membership
// manifest written only by iso packs.
const (
	ManifestName   = "pack.json"
	VerdictsName   = "verdicts.json"
	IsoClassesName = "isoclasses.json"
)

// PackOptions bounds pack generation. Zero values default to the
// shipped grid: every factor with 1 <= |f| <= 5, dimensions 1..12.
type PackOptions struct {
	MinLen int
	MaxLen int
	MaxD   int
	// Iso packs only iso-congruence group representatives: per dimension,
	// one ranker/cube artifact per verified congruence group (its leader
	// class's representative word) instead of one per factor word, plus an
	// isoclasses.json membership manifest. The verdict sidecar keeps full
	// per-class coverage — member verdicts are fanned out from their
	// leader's (witnesses recomputed, since vertex labels do not transfer)
	// and the sidecar bytes are identical to a non-iso pack's. Unpacked
	// member classes degrade to on-demand rebuild, never to wrong answers.
	Iso bool
}

func (o PackOptions) withDefaults() PackOptions {
	if o.MinLen <= 0 {
		o.MinLen = 1
	}
	if o.MaxLen <= 0 {
		o.MaxLen = 5
	}
	if o.MaxD <= 0 {
		o.MaxD = 12
	}
	return o
}

// Manifest describes a pack: grid bounds and inventory.
type Manifest struct {
	FormatVersion int `json:"formatVersion"`
	MinLen        int `json:"minLen"`
	MaxLen        int `json:"maxLen"`
	MaxD          int `json:"maxD"`
	Artifacts     int `json:"artifacts"`
	Verdicts      int `json:"verdicts"`
	// Iso-pack inventory: set only when the pack was generated with
	// PackOptions.Iso. IsoDeduped counts verdict cells transferred from a
	// congruence-group leader instead of being computed directly.
	Iso        bool `json:"iso,omitempty"`
	IsoDeduped int  `json:"isoDeduped,omitempty"`
}

// IsoGroupRow is one dimension of the isoclasses.json membership
// manifest: the verified congruence groups of the pack's canonical
// classes at that dimension. Members[g][0] is group g's leader — the
// class whose representative word the pack carries artifacts for.
type IsoGroupRow struct {
	D       int        `json:"d"`
	Groups  int        `json:"groups"`
	Members [][]string `json:"members"`
}

// Verdict is one precomputed (canonical class, d) cell of the sidecar:
// exact counts (decimal strings — they overflow int64 quickly), the
// paper's theory classification, and the exact isometric-embeddability
// verdict with its witness. Verdicts are class-invariant (unlike the
// binary artifacts, which are per exact factor), so one row covers every
// complement/reversal variant of the representative.
type Verdict struct {
	Factor      string `json:"factor"` // canonical class representative
	ClassSize   int    `json:"classSize"`
	D           int    `json:"d"`
	V           string `json:"v"`
	E           string `json:"e"`
	S           string `json:"s"`
	Verdict     string `json:"verdict"` // theory classification
	Reason      string `json:"reason"`
	Isometric   bool   `json:"isometric"` // exact check (method quick)
	WitnessU    string `json:"u,omitempty"`
	WitnessV    string `json:"w,omitempty"`
	CubeDist    int32  `json:"cubeDist,omitempty"`
	HammingDist int32  `json:"hammingDist,omitempty"`
}

// Generate writes a complete warm-start pack into dir: artifacts for
// every factor word in the grid (each class member — rank tables are not
// class-invariant) and the verdict sidecar per canonical class. The
// verdict pass resolves its cubes through the just-written artifacts,
// exercising the load path on everything it ships.
func Generate(dir string, opts PackOptions) (Manifest, error) {
	opts = opts.withDefaults()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		return Manifest{}, err
	}
	defer st.Close()
	man := Manifest{
		FormatVersion: FormatVersion,
		MinLen:        opts.MinLen,
		MaxLen:        opts.MaxLen,
		MaxD:          opts.MaxD,
	}
	scratch := core.NewScratch()
	classes := core.Classes(opts.MinLen, opts.MaxLen)
	if opts.Iso {
		man.Iso = true
		// One artifact set per congruence group per dimension: the group
		// leader's representative word stands in for every member.
		var isoRows []IsoGroupRow
		for d := 1; d <= opts.MaxD; d++ {
			part := iso.At(d, classes)
			row := IsoGroupRow{D: d, Groups: part.NumGroups()}
			for _, g := range part.Groups {
				if err := saveArtifacts(st, scratch, g.Leader.Rep, d, &man); err != nil {
					return Manifest{}, err
				}
				members := make([]string, len(g.Members))
				for i, m := range g.Members {
					members[i] = m.Rep.String()
				}
				row.Members = append(row.Members, members)
			}
			isoRows = append(isoRows, row)
		}
		if err := writeJSONFile(filepath.Join(dir, IsoClassesName), isoRows); err != nil {
			return Manifest{}, err
		}
	} else {
		for n := opts.MinLen; n <= opts.MaxLen; n++ {
			for bits := uint64(0); bits < 1<<uint(n); bits++ {
				f := bitstr.Word{Bits: bits, N: n}
				for d := 1; d <= opts.MaxD; d++ {
					if err := saveArtifacts(st, scratch, f, d, &man); err != nil {
						return Manifest{}, err
					}
				}
			}
		}
	}
	// The verdict pass loads every cube it touches from the artifacts
	// written above.
	scratch.Provider = NewProvider(st)
	verdicts, deduped := packVerdicts(scratch, classes, opts)
	man.Verdicts = len(verdicts)
	man.IsoDeduped = deduped
	if err := writeJSONFile(filepath.Join(dir, VerdictsName), verdicts); err != nil {
		return Manifest{}, err
	}
	if err := writeJSONFile(filepath.Join(dir, ManifestName), man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// saveArtifacts writes the ranker (and, where buildable, cube) artifact
// for one (factor word, dimension) cell, tallying the manifest.
func saveArtifacts(st *Store, scratch *core.Scratch, f bitstr.Word, d int, man *Manifest) error {
	im := core.NewImplicit(d, f)
	if err := st.Save(Key{Kind: KindRanker, F: f, D: d}, im.AppendBinary(nil)); err != nil {
		return err
	}
	man.Artifacts++
	if d <= core.MaxBuildDim {
		c := scratch.Cube(context.Background(), d, f)
		if err := st.Save(Key{Kind: KindCube, F: f, D: d}, c.AppendBinary(nil)); err != nil {
			return err
		}
		man.Artifacts++
	}
	return nil
}

// packVerdicts computes the sidecar rows in class-major, dimension-minor
// order. In iso mode each congruence-group leader is computed once per
// dimension and fanned out to its members: the counts and the isometric
// verdict transfer along the verified congruence, the theory
// classification is recomputed per member (it cites per-class
// structure), and non-isometric members rerun the exact check so their
// witness pair is expressed in their own vertex labels. The emitted
// rows are byte-identical either way.
func packVerdicts(scratch *core.Scratch, classes []core.Class, opts PackOptions) ([]Verdict, int) {
	if !opts.Iso {
		verdicts := make([]Verdict, 0, len(classes)*opts.MaxD)
		for _, cl := range classes {
			for d := 1; d <= opts.MaxD; d++ {
				verdicts = append(verdicts, computeVerdict(scratch, cl, d))
			}
		}
		return verdicts, 0
	}
	nD := opts.MaxD
	idx := make(map[bitstr.Word]int, len(classes))
	for i, cl := range classes {
		idx[cl.Rep] = i
	}
	cells := make([]Verdict, len(classes)*nD)
	deduped := 0
	for d := 1; d <= nD; d++ {
		part := iso.At(d, classes)
		for _, g := range part.Groups {
			lead := computeVerdict(scratch, g.Leader, d)
			cells[idx[g.Leader.Rep]*nD+d-1] = lead
			for _, m := range g.Members {
				if m.Rep == g.Leader.Rep {
					continue
				}
				deduped++
				v := lead
				v.Factor = m.Rep.String()
				v.ClassSize = m.Size
				th := core.Classify(m.Rep, d)
				v.Verdict = th.Verdict.String()
				v.Reason = th.Reason
				if !lead.Isometric {
					cell := core.ClassifyCell(context.Background(), scratch, m, d, core.MethodQuick)
					v.Isometric = cell.Isometric
					v.WitnessU, v.WitnessV, v.CubeDist, v.HammingDist = "", "", 0, 0
					if w := cell.Witness; w != nil {
						v.WitnessU = w.U.String()
						v.WitnessV = w.V.String()
						v.CubeDist = w.CubeDist
						v.HammingDist = w.HammingDist
					}
				}
				cells[idx[m.Rep]*nD+d-1] = v
			}
		}
	}
	return cells, deduped
}

// computeVerdict builds one sidecar row from scratch.
func computeVerdict(scratch *core.Scratch, cl core.Class, d int) Verdict {
	bc := core.Count(d, cl.Rep)
	th := core.Classify(cl.Rep, d)
	cell := core.ClassifyCell(context.Background(), scratch, cl, d, core.MethodQuick)
	v := Verdict{
		Factor:    cl.Rep.String(),
		ClassSize: cl.Size,
		D:         d,
		V:         bc.V.String(),
		E:         bc.E.String(),
		S:         bc.S.String(),
		Verdict:   th.Verdict.String(),
		Reason:    th.Reason,
		Isometric: cell.Isometric,
	}
	if w := cell.Witness; w != nil {
		v.WitnessU = w.U.String()
		v.WitnessV = w.V.String()
		v.CubeDist = w.CubeDist
		v.HammingDist = w.HammingDist
	}
	return v
}

// LoadIsoClasses reads an iso pack's membership manifest.
func LoadIsoClasses(dir string) ([]IsoGroupRow, error) {
	data, err := os.ReadFile(filepath.Join(dir, IsoClassesName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []IsoGroupRow
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("store: bad iso-class manifest: %w", err)
	}
	return out, nil
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads a pack directory's manifest.
func LoadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: bad pack manifest: %w", err)
	}
	if man.FormatVersion != FormatVersion {
		return Manifest{}, fmt.Errorf("store: pack format version %d, reader supports %d", man.FormatVersion, FormatVersion)
	}
	return man, nil
}

// LoadVerdicts reads a pack directory's verdict sidecar.
func LoadVerdicts(dir string) ([]Verdict, error) {
	data, err := os.ReadFile(filepath.Join(dir, VerdictsName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Verdict
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("store: bad verdict sidecar: %w", err)
	}
	return out, nil
}
