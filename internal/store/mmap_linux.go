//go:build linux

package store

import (
	"os"
	"syscall"
)

// mapFile returns the file's contents, memory-mapped read-only when
// possible so repeated loads across processes share the page cache;
// mapped reports whether unmapFile must eventually release the bytes.
// Any mmap failure falls back to a plain read.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, nil
	}
	if size == int64(int(size)) {
		if b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED); err == nil {
			return b, true, nil
		}
	}
	b, err := os.ReadFile(path)
	return b, false, err
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
