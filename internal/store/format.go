// Package store is the disk-backed, content-addressed artifact store for
// precomputed cube backends: serialized CSR adjacency arenas (explicit
// cubes) and flat DFA rank tables (implicit backends), wrapped in a
// versioned, checksummed container that is usable zero-copy via mmap and
// shared across processes through the page cache. A JSON sidecar of
// classification/count/isometry verdicts rides along in warm-start packs
// (see pack.go). Corrupted, truncated or mismatched artifacts fail
// closed into ErrCorrupt — callers recompute; they never serve a wrong
// answer from disk. See docs/artifact-format.md for the layout contract.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"gfcube/internal/bitstr"
)

// FormatVersion is the current artifact container version. Readers
// refuse any other version (fail closed, recompute); bump it on any
// layout change, including payload-level ones.
const FormatVersion = 1

// magic opens every artifact file: "gfcube artifact" + a format anchor.
const magic = "GFCART01"

// headerSize is the fixed container header length. It is a multiple of 8
// so the payload starts 8-aligned within the (page-aligned) mapping, as
// the zero-copy payload layouts require.
const headerSize = 72

// Kind says what a payload deserializes into.
type Kind uint32

const (
	// KindRanker is a flat DFA rank table (automaton.Ranker payload).
	KindRanker Kind = 1
	// KindCube is an explicit cube: vertex enumeration + CSR graph.
	KindCube Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindRanker:
		return "ranker"
	case KindCube:
		return "cube"
	default:
		return fmt.Sprintf("Kind(%d)", uint32(k))
	}
}

// Key identifies one artifact: the exact (d, f) pair plus the backend
// kind. Keys use the exact factor, not its canonical class
// representative: rank tables and vertex enumerations are not invariant
// under the complement/reversal symmetry (only the sidecar verdicts
// are), so each class member gets its own artifact.
type Key struct {
	Kind Kind
	F    bitstr.Word
	D    int
}

func (k Key) String() string {
	return fmt.Sprintf("%s|%s|%d", k.Kind, k.F, k.D)
}

// Filename returns the content-addressed file name for k: a hex prefix
// of the SHA-256 of the key string, so names are stable across runs,
// filesystem-safe for any factor, and collision-free in practice.
func (k Key) Filename() string {
	sum := sha256.Sum256([]byte("gfa1|" + k.String()))
	return hex.EncodeToString(sum[:12]) + ".gfa"
}

// ErrCorrupt wraps every decode failure: bad magic, wrong version, wrong
// key, truncation, checksum mismatch. A store load that returns it must
// be answered by recomputing.
var ErrCorrupt = errors.New("store: corrupt artifact")

// ErrNotFound reports a clean miss: no artifact file for the key.
var ErrNotFound = errors.New("store: artifact not found")

// EncodeArtifact wraps payload in the versioned, checksummed container
// for key k:
//
//	offset  size  field
//	0       8     magic "GFCART01"
//	8       4     format version (uint32)
//	12      4     kind (uint32)
//	16      4     d (uint32)
//	20      4     |f| (uint32)
//	24      8     f packed bits (uint64)
//	32      8     payload length (uint64)
//	40      32    SHA-256 of payload
//	72      ...   payload
//
// All integers little-endian.
func EncodeArtifact(k Key, payload []byte) []byte {
	out := make([]byte, headerSize, headerSize+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[8:], FormatVersion)
	binary.LittleEndian.PutUint32(out[12:], uint32(k.Kind))
	binary.LittleEndian.PutUint32(out[16:], uint32(k.D))
	binary.LittleEndian.PutUint32(out[20:], uint32(k.F.Len()))
	binary.LittleEndian.PutUint64(out[24:], k.F.Bits)
	binary.LittleEndian.PutUint64(out[32:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[40:], sum[:])
	return append(out, payload...)
}

// DecodeArtifact validates data as an artifact for exactly the key k and
// returns the payload, which aliases data (zero-copy). Every failure —
// truncation, bad magic, version or key mismatch, checksum mismatch —
// wraps ErrCorrupt; there is no partial success.
func DecodeArtifact(k Key, data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, reader supports %d", ErrCorrupt, v, FormatVersion)
	}
	kind := Kind(binary.LittleEndian.Uint32(data[12:]))
	d := binary.LittleEndian.Uint32(data[16:])
	flen := binary.LittleEndian.Uint32(data[20:])
	fbits := binary.LittleEndian.Uint64(data[24:])
	if kind != k.Kind || d != uint32(k.D) || flen != uint32(k.F.Len()) || fbits != k.F.Bits {
		return nil, fmt.Errorf("%w: artifact is %s|d=%d, want %s", ErrCorrupt, kind, d, k)
	}
	plen := binary.LittleEndian.Uint64(data[32:])
	if plen != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d, file holds %d", ErrCorrupt, plen, len(data)-headerSize)
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[40:72]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
