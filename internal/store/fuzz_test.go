package store

import (
	"bytes"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// FuzzArtifactDecode hammers the container decoder with arbitrary
// bytes. Invariants: never panic; on success the payload must re-encode
// to exactly the input (the header is a pure function of key + payload),
// so a decoder that accepts two different byte strings for one artifact
// — or silently tolerates damage — fails the round-trip check.
func FuzzArtifactDecode(f *testing.F) {
	key := Key{Kind: KindRanker, F: bitstr.MustParse("11"), D: 8}
	valid := EncodeArtifact(key, core.NewImplicit(8, bitstr.MustParse("11")).AppendBinary(nil))
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("GFCART01"))
	f.Add([]byte{})
	cube := EncodeArtifact(Key{Kind: KindCube, F: bitstr.MustParse("11"), D: 4},
		core.New(4, bitstr.MustParse("11")).AppendBinary(nil))
	f.Add(cube)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeArtifact(key, data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeArtifact(key, payload), data) {
			t.Fatalf("accepted artifact does not re-encode to itself (%d bytes)", len(data))
		}
	})
}
