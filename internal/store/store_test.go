package store

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func w(s string) bitstr.Word { return bitstr.MustParse(s) }

// TestArtifactRoundTripGrid is the round-trip property over the pack
// grid: for every factor with |f| <= 4 and every d <= 10, build both
// backends, serialize them through the store (save → mmap-load →
// decode), and require the loaded backend to be byte-identical — its
// reserialization equals the original bytes — and to answer queries
// exactly like the built one.
func TestArtifactRoundTripGrid(t *testing.T) {
	st, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for n := 1; n <= 4; n++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			f := bitstr.Word{Bits: bits, N: n}
			for d := 1; d <= 10; d++ {
				im := core.NewImplicit(d, f)
				rkKey := Key{Kind: KindRanker, F: f, D: d}
				rkBlob := im.AppendBinary(nil)
				if err := st.Save(rkKey, rkBlob); err != nil {
					t.Fatalf("%s: save: %v", rkKey, err)
				}
				payload, err := st.Load(rkKey)
				if err != nil {
					t.Fatalf("%s: load: %v", rkKey, err)
				}
				got, err := core.LoadImplicit(payload, d, f)
				if err != nil {
					t.Fatalf("%s: decode: %v", rkKey, err)
				}
				if string(got.AppendBinary(nil)) != string(rkBlob) {
					t.Fatalf("%s: loaded ranker reserializes differently", rkKey)
				}
				if got.Order() != im.Order() {
					t.Fatalf("%s: order %d, want %d", rkKey, got.Order(), im.Order())
				}
				for r := int64(0); r < im.Order(); r++ {
					ow, _ := im.UnrankWord(r)
					gw, ok := got.UnrankWord(r)
					if !ok || ow != gw {
						t.Fatalf("%s rank %d: %v vs %v", rkKey, r, ow, gw)
					}
				}

				c := core.New(d, f)
				cKey := Key{Kind: KindCube, F: f, D: d}
				cBlob := c.AppendBinary(nil)
				if err := st.Save(cKey, cBlob); err != nil {
					t.Fatalf("%s: save: %v", cKey, err)
				}
				payload, err = st.Load(cKey)
				if err != nil {
					t.Fatalf("%s: load: %v", cKey, err)
				}
				gc, err := core.LoadCube(payload, d, f)
				if err != nil {
					t.Fatalf("%s: decode: %v", cKey, err)
				}
				if string(gc.AppendBinary(nil)) != string(cBlob) {
					t.Fatalf("%s: loaded cube reserializes differently", cKey)
				}
				if gc.CountsExplicit() != c.CountsExplicit() {
					t.Fatalf("%s: counts differ", cKey)
				}
			}
		}
	}
	if st.Corrupt() != 0 || st.Misses() != 0 {
		t.Errorf("clean round trips recorded corrupt=%d misses=%d", st.Corrupt(), st.Misses())
	}
}

// A second Load of the same key must be served from the resident
// mapping (no re-read), and a Load of an absent key is a clean miss.
func TestStoreMappingCacheAndMiss(t *testing.T) {
	st, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	k := Key{Kind: KindRanker, F: w("11"), D: 8}
	if err := st.Save(k, core.NewImplicit(8, w("11")).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	p1, err := st.Load(k)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := st.Load(k)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Error("second load did not reuse the resident mapping")
	}
	if _, err := st.Load(Key{Kind: KindRanker, F: w("101"), D: 8}); !errors.Is(err, ErrNotFound) {
		t.Errorf("absent key: %v, want ErrNotFound", err)
	}
	s := st.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Writes != 1 || s.Resident != 1 {
		t.Errorf("stats %+v, want hits=2 misses=1 writes=1 resident=1", s)
	}
	if st.Hits() != s.Hits || st.Misses() != s.Misses || st.Corrupt() != s.Corrupt {
		t.Error("counter accessors disagree with Stats")
	}
}

// Save surfaces I/O failures instead of pretending to persist.
func TestSaveIOError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub")
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	k := Key{Kind: KindRanker, F: w("11"), D: 4}
	if err := st.Save(k, core.NewImplicit(4, w("11")).AppendBinary(nil)); err == nil {
		t.Error("Save into a vanished directory reported success")
	}
}

func TestPackOptionsDefaults(t *testing.T) {
	o := PackOptions{}.withDefaults()
	if o.MinLen != 1 || o.MaxLen != 5 || o.MaxD != 12 {
		t.Errorf("defaults %+v, want shipped grid 1..5 x 1..12", o)
	}
	o = PackOptions{MinLen: 2, MaxLen: 3, MaxD: 4}.withDefaults()
	if o.MinLen != 2 || o.MaxLen != 3 || o.MaxD != 4 {
		t.Errorf("explicit options rewritten: %+v", o)
	}
}

// corruptionCases damages a valid on-disk artifact in every way the
// format must detect.
var corruptionCases = []struct {
	name string
	mut  func(t *testing.T, path string)
}{
	{"truncated", func(t *testing.T, path string) {
		data := readFile(t, path)
		writeFile(t, path, data[:len(data)/2])
	}},
	{"flipped payload byte", func(t *testing.T, path string) {
		data := readFile(t, path)
		data[headerSize+3] ^= 0x40
		writeFile(t, path, data)
	}},
	{"flipped header byte", func(t *testing.T, path string) {
		data := readFile(t, path)
		data[2] ^= 0x01
		writeFile(t, path, data)
	}},
	{"wrong format version", func(t *testing.T, path string) {
		data := readFile(t, path)
		binary.LittleEndian.PutUint32(data[8:], FormatVersion+1)
		writeFile(t, path, data)
	}},
	{"empty file", func(t *testing.T, path string) {
		writeFile(t, path, nil)
	}},
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestProviderCorruptionFallsBackToCompute damages stored artifacts and
// requires the provider to (a) serve the exact computed answer anyway,
// (b) report Source "computed", (c) count the corruption, and (d) heal
// the directory by writing the recomputed artifact back.
func TestProviderCorruptionFallsBackToCompute(t *testing.T) {
	f, d := w("11"), 8
	want := core.NewImplicit(d, f)
	wantCube := core.New(d, f)
	for _, tc := range corruptionCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			rkKey := Key{Kind: KindRanker, F: f, D: d}
			cKey := Key{Kind: KindCube, F: f, D: d}
			if err := seed.Save(rkKey, want.AppendBinary(nil)); err != nil {
				t.Fatal(err)
			}
			if err := seed.Save(cKey, wantCube.AppendBinary(nil)); err != nil {
				t.Fatal(err)
			}
			seed.Close()
			tc.mut(t, filepath.Join(dir, rkKey.Filename()))
			tc.mut(t, filepath.Join(dir, cKey.Filename()))

			st, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			p := NewProvider(st)
			im, src, err := p.Implicit(context.Background(), d, f)
			if err != nil {
				t.Fatalf("Implicit: %v", err)
			}
			if src != core.SourceComputed {
				t.Errorf("source %q, want computed", src)
			}
			if im.Order() != want.Order() {
				t.Errorf("order %d, want %d", im.Order(), want.Order())
			}
			c, src, err := p.Cube(context.Background(), d, f)
			if err != nil {
				t.Fatalf("Cube: %v", err)
			}
			if src != core.SourceComputed {
				t.Errorf("cube source %q, want computed", src)
			}
			if c.CountsExplicit() != wantCube.CountsExplicit() {
				t.Errorf("cube counts differ from computed")
			}
			if st.Corrupt() < 2 {
				t.Errorf("corrupt counter %d, want >= 2", st.Corrupt())
			}
			if p.Computed() != 2 {
				t.Errorf("computed counter %d, want 2", p.Computed())
			}

			// The fallback wrote the recomputed artifacts back: a fresh
			// store must now serve both from disk.
			healed, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer healed.Close()
			hp := NewProvider(healed)
			if _, src, _ := hp.Implicit(context.Background(), d, f); src != core.SourceStore {
				t.Errorf("after heal: ranker source %q, want store", src)
			}
			if _, src, _ := hp.Cube(context.Background(), d, f); src != core.SourceStore {
				t.Errorf("after heal: cube source %q, want store", src)
			}
		})
	}
}

// A payload that passes the container checksum but is keyed for another
// (f, d) — the wrong-class-key case — must be rejected by the key check
// and fall back to compute.
func TestProviderWrongClassKeyFallsBack(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	other := Key{Kind: KindRanker, F: w("101"), D: 8}
	if err := seed.Save(other, core.NewImplicit(8, w("101")).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	seed.Close()
	// Masquerade the f=101 artifact as the f=11 one.
	mine := Key{Kind: KindRanker, F: w("11"), D: 8}
	if err := os.Rename(filepath.Join(dir, other.Filename()), filepath.Join(dir, mine.Filename())); err != nil {
		t.Fatal(err)
	}

	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := NewProvider(st)
	im, src, err := p.Implicit(context.Background(), 8, w("11"))
	if err != nil {
		t.Fatal(err)
	}
	if src != core.SourceComputed {
		t.Errorf("source %q, want computed", src)
	}
	if im.Order() != core.NewImplicit(8, w("11")).Order() {
		t.Error("wrong-keyed artifact leaked into answers")
	}
	if st.Corrupt() == 0 {
		t.Error("key mismatch not counted as corruption")
	}
}

// A provider with no store, and one whose guards reject the key, must
// compute without touching disk.
func TestProviderDegenerateCases(t *testing.T) {
	p := NewProvider(nil)
	if p.Store() != nil {
		t.Error("nil store not preserved")
	}
	im, src, err := p.Implicit(context.Background(), 6, w("11"))
	if err != nil || src != core.SourceComputed || im.Order() == 0 {
		t.Fatalf("nil-store Implicit: src=%q err=%v", src, err)
	}
	if _, src, err = p.Cube(context.Background(), 6, w("11")); err != nil || src != core.SourceComputed {
		t.Fatalf("nil-store Cube: src=%q err=%v", src, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.Implicit(ctx, 6, w("11")); err == nil {
		t.Error("canceled context not propagated")
	}
	if _, _, err := p.Cube(ctx, 6, w("11")); err == nil {
		t.Error("canceled context not propagated by Cube")
	}
}

// Read-only pack stores serve loads but never write, and corrupt pack
// artifacts are skipped in place, not deleted.
func TestReadOnlyPackStore(t *testing.T) {
	packDir := t.TempDir()
	seed, err := Open(Config{Dir: packDir})
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Kind: KindRanker, F: w("11"), D: 8}
	if err := seed.Save(k, core.NewImplicit(8, w("11")).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	k2 := Key{Kind: KindRanker, F: w("101"), D: 8}
	if err := seed.Save(k2, core.NewImplicit(8, w("101")).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	seed.Close()
	// Damage one pack artifact.
	path2 := filepath.Join(packDir, k2.Filename())
	data := readFile(t, path2)
	data[headerSize] ^= 0xff
	writeFile(t, path2, data)

	st, err := Open(Config{PackDir: packDir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Load(k); err != nil {
		t.Fatalf("pack load: %v", err)
	}
	if _, err := st.Load(k2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt pack load: %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path2); err != nil {
		t.Error("corrupt pack artifact was deleted; packs are read-only")
	}
	if err := st.Save(k2, core.NewImplicit(8, w("101")).AppendBinary(nil)); err != nil {
		t.Fatalf("Save on read-only store must be a silent no-op, got %v", err)
	}
	if st.Stats().Writes != 0 {
		t.Error("read-only store recorded a write")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("no-directory config accepted")
	}
	if _, err := Open(Config{PackDir: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing pack directory accepted")
	}
	file := filepath.Join(t.TempDir(), "f")
	writeFile(t, file, []byte("x"))
	if _, err := Open(Config{PackDir: file}); err == nil {
		t.Error("pack path that is a file accepted")
	}
}

// The MaxBytes cap evicts least-recently-modified artifacts on write.
func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	blob := core.NewImplicit(10, w("11")).AppendBinary(nil)
	one := int64(len(EncodeArtifact(Key{Kind: KindRanker, F: w("11"), D: 10}, blob)))
	st, err := Open(Config{Dir: dir, MaxBytes: 2 * one})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i, f := range []string{"11", "101", "110", "011"} {
		k := Key{Kind: KindRanker, F: w(f), D: 10}
		if err := st.Save(k, core.NewImplicit(10, w(f)).AppendBinary(nil)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	s := st.Stats()
	if s.Evictions == 0 {
		t.Error("cap exceeded but nothing evicted")
	}
	if s.Bytes > 2*one {
		t.Errorf("directory holds %d bytes, cap %d", s.Bytes, 2*one)
	}
	if s.Artifacts+int(s.Evictions) != 4 {
		t.Errorf("artifacts %d + evictions %d, want 4 total", s.Artifacts, s.Evictions)
	}
}

func TestNoteCorruptDropsMappingAndDeletes(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	k := Key{Kind: KindRanker, F: w("11"), D: 8}
	if err := st.Save(k, core.NewImplicit(8, w("11")).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(k); err != nil {
		t.Fatal(err)
	}
	st.NoteCorrupt(k)
	if st.Corrupt() != 1 {
		t.Errorf("corrupt counter %d, want 1", st.Corrupt())
	}
	if _, err := os.Stat(filepath.Join(dir, k.Filename())); !os.IsNotExist(err) {
		t.Error("NoteCorrupt left the artifact on disk")
	}
	if _, err := st.Load(k); !errors.Is(err, ErrNotFound) {
		t.Errorf("load after NoteCorrupt: %v, want ErrNotFound", err)
	}
}

func TestStoreClosedRefusesLoads(t *testing.T) {
	st, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Kind: KindRanker, F: w("11"), D: 4}
	if err := st.Save(k, core.NewImplicit(4, w("11")).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(k); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(k); err == nil {
		t.Error("closed store served a load")
	}
}

func TestKeyNames(t *testing.T) {
	k := Key{Kind: KindCube, F: w("0110"), D: 9}
	if k.String() != "cube|0110|9" {
		t.Errorf("String = %q", k.String())
	}
	if k.Filename() != (Key{Kind: KindCube, F: w("0110"), D: 9}).Filename() {
		t.Error("Filename not deterministic")
	}
	if k.Filename() == (Key{Kind: KindRanker, F: w("0110"), D: 9}).Filename() {
		t.Error("kinds share a filename")
	}
	if Kind(9).String() == KindCube.String() {
		t.Error("unknown kind renders as cube")
	}
}
