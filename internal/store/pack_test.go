package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Generate must produce a complete, loadable pack: every grid artifact
// present and valid, manifest inventory exact, verdict sidecar matching
// fresh computation.
func TestPackGenerate(t *testing.T) {
	dir := t.TempDir()
	opts := PackOptions{MinLen: 1, MaxLen: 3, MaxD: 5}
	man, err := Generate(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if man.FormatVersion != FormatVersion || man.MinLen != 1 || man.MaxLen != 3 || man.MaxD != 5 {
		t.Fatalf("manifest %+v", man)
	}
	// Grid: (2 + 4 + 8) words x 5 dims x 2 kinds (all d <= MaxBuildDim here).
	if want := 14 * 5 * 2; man.Artifacts != want {
		t.Errorf("artifacts %d, want %d", man.Artifacts, want)
	}

	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != man {
		t.Errorf("LoadManifest %+v, want %+v", got, man)
	}

	// Every artifact must load through a read-only pack store.
	st, err := Open(Config{PackDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := NewProvider(st)
	for n := 1; n <= 3; n++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			f := bitstr.Word{Bits: bits, N: n}
			for d := 1; d <= 5; d++ {
				if _, src, err := p.Implicit(context.Background(), d, f); err != nil || src != core.SourceStore {
					t.Fatalf("ranker %s d=%d: src=%q err=%v", f, d, src, err)
				}
				if _, src, err := p.Cube(context.Background(), d, f); err != nil || src != core.SourceStore {
					t.Fatalf("cube %s d=%d: src=%q err=%v", f, d, src, err)
				}
			}
		}
	}
	if p.Computed() != 0 {
		t.Errorf("%d rebuilds while loading a complete pack", p.Computed())
	}

	verdicts, err := LoadVerdicts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != man.Verdicts {
		t.Fatalf("%d verdicts, manifest says %d", len(verdicts), man.Verdicts)
	}
	// Spot-check every row against fresh computation.
	for _, v := range verdicts {
		f := bitstr.MustParse(v.Factor)
		bc := core.Count(v.D, f)
		if v.V != bc.V.String() || v.E != bc.E.String() || v.S != bc.S.String() {
			t.Errorf("%s d=%d: counts (%s,%s,%s), want (%s,%s,%s)",
				v.Factor, v.D, v.V, v.E, v.S, bc.V, bc.E, bc.S)
		}
		th := core.Classify(f, v.D)
		if v.Verdict != th.Verdict.String() {
			t.Errorf("%s d=%d: verdict %q, want %q", v.Factor, v.D, v.Verdict, th.Verdict)
		}
	}
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := LoadManifest(t.TempDir()); err == nil {
		t.Error("missing manifest accepted")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, ManifestName), []byte("{not json"))
	if _, err := LoadManifest(dir); err == nil {
		t.Error("malformed manifest accepted")
	}
	writeFile(t, filepath.Join(dir, ManifestName), []byte(`{"formatVersion": 99}`))
	if _, err := LoadManifest(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version manifest: %v", err)
	}
	if _, err := LoadVerdicts(t.TempDir()); err == nil {
		t.Error("missing verdicts accepted")
	}
	writeFile(t, filepath.Join(dir, VerdictsName), []byte("[{]"))
	if _, err := LoadVerdicts(dir); err == nil {
		t.Error("malformed verdicts accepted")
	}
}

func TestGenerateBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(file, PackOptions{MaxLen: 1, MaxD: 1}); err == nil {
		t.Error("pack generation into a file path succeeded")
	}
}

// An iso pack must carry fewer artifacts (one set per congruence group
// per dimension), a membership manifest covering every class, and a
// verdict sidecar byte-identical to the non-iso pack's.
func TestPackGenerateIso(t *testing.T) {
	opts := PackOptions{MinLen: 1, MaxLen: 3, MaxD: 5}
	plainDir, isoDir := t.TempDir(), t.TempDir()
	plain, err := Generate(plainDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Iso = true
	man, err := Generate(isoDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Iso {
		t.Error("manifest not marked iso")
	}
	if man.Artifacts >= plain.Artifacts {
		t.Errorf("iso pack has %d artifacts, plain %d — no reduction", man.Artifacts, plain.Artifacts)
	}
	if man.Verdicts != plain.Verdicts {
		t.Errorf("iso pack has %d verdicts, plain %d — coverage lost", man.Verdicts, plain.Verdicts)
	}
	if man.IsoDeduped == 0 {
		t.Error("iso pack reports zero deduped verdict cells")
	}

	// The verdict sidecar fans out to full coverage and must be
	// byte-identical to direct computation.
	a, err := os.ReadFile(filepath.Join(plainDir, VerdictsName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(isoDir, VerdictsName))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("iso verdict sidecar differs from the plain pack's")
	}

	// Membership manifest: one row per dimension, every canonical class
	// present exactly once, leaders are the packed artifacts.
	rows, err := LoadIsoClasses(isoDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != opts.MaxD {
		t.Fatalf("%d manifest rows, want %d", len(rows), opts.MaxD)
	}
	classes := core.Classes(opts.MinLen, opts.MaxLen)
	st, err := Open(Config{PackDir: isoDir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := NewProvider(st)
	for i, row := range rows {
		if row.D != i+1 || row.Groups != len(row.Members) {
			t.Fatalf("row %d: %+v", i, row)
		}
		seen := make(map[string]bool)
		for _, g := range row.Members {
			if len(g) == 0 {
				t.Fatalf("d=%d: empty group", row.D)
			}
			for _, m := range g {
				if seen[m] {
					t.Fatalf("d=%d: class %s in two groups", row.D, m)
				}
				seen[m] = true
			}
			lead := bitstr.MustParse(g[0])
			if _, src, err := p.Implicit(context.Background(), row.D, lead); err != nil || src != core.SourceStore {
				t.Fatalf("leader ranker %s d=%d: src=%q err=%v", g[0], row.D, src, err)
			}
		}
		if len(seen) != len(classes) {
			t.Fatalf("d=%d: %d classes in manifest, want %d", row.D, len(seen), len(classes))
		}
	}
	if p.Computed() != 0 {
		t.Errorf("%d rebuilds while loading leader artifacts", p.Computed())
	}
}
