package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Config configures a Store. At least one of Dir and PackDir must be
// set.
type Config struct {
	// Dir is the read-write artifact directory: loads consult it first
	// and computed misses are written back to it. Empty means read-only
	// operation (loads come only from PackDir, Save is a no-op).
	Dir string
	// PackDir is an optional read-only warm-start pack directory,
	// consulted when Dir has no artifact. Corrupt pack artifacts are
	// reported but never deleted.
	PackDir string
	// MaxBytes caps the artifact bytes in Dir; when a write pushes the
	// directory over the cap, least-recently-modified artifacts are
	// deleted (and counted as evictions) until it fits. 0 means no cap.
	MaxBytes int64
}

// Store is the disk artifact store. Loads are served zero-copy from a
// per-store mapping cache: each artifact file is mapped (or read) once
// and the validated payload is reused for the store's lifetime, so the
// memory bound is the set of distinct artifacts touched — the same
// artifacts whose backends the caller retains anyway. Close releases
// every mapping; callers must not use loaded payloads (or backends built
// over them) after Close.
//
// All methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu   sync.Mutex
	maps map[string]*mapping // by absolute file path
	done bool

	hits      atomic.Uint64
	misses    atomic.Uint64
	writes    atomic.Uint64
	corrupt   atomic.Uint64
	evictions atomic.Uint64
}

// mapping is one validated, resident artifact file.
type mapping struct {
	data    []byte // whole file
	payload []byte // checksummed payload view into data
	mapped  bool   // true when data must be munmap'd
}

// Open creates the store, creating Dir if necessary.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" && cfg.PackDir == "" {
		return nil, fmt.Errorf("store: no directory configured")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if cfg.PackDir != "" {
		if st, err := os.Stat(cfg.PackDir); err != nil {
			return nil, fmt.Errorf("store: warm pack: %w", err)
		} else if !st.IsDir() {
			return nil, fmt.Errorf("store: warm pack %s is not a directory", cfg.PackDir)
		}
	}
	return &Store{cfg: cfg, maps: make(map[string]*mapping)}, nil
}

// Close unmaps every resident artifact. The store must not be used —
// and backends loaded from it must not be queried — afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for path, m := range s.maps {
		if m.mapped {
			if err := unmapFile(m.data); err != nil && first == nil {
				first = err
			}
		}
		delete(s.maps, path)
	}
	s.done = true
	return first
}

// Load returns the validated payload of the artifact for k, mapping the
// file on first touch and serving the resident payload afterwards. It
// returns ErrNotFound on a clean miss and an error wrapping ErrCorrupt
// when an artifact exists but fails validation; either way the caller
// computes. A corrupt artifact in Dir is deleted so a later write-back
// heals it; corrupt pack artifacts are left in place and skipped.
func (s *Store) Load(k Key) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("store: closed")
	}
	name := k.Filename()
	var corrupt error
	for _, dir := range []string{s.cfg.Dir, s.cfg.PackDir} {
		if dir == "" {
			continue
		}
		path := filepath.Join(dir, name)
		if m, ok := s.maps[path]; ok {
			s.hits.Add(1)
			return m.payload, nil
		}
		data, mapped, err := mapFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("store: %w", err)
		}
		payload, err := DecodeArtifact(k, data)
		if err != nil {
			if mapped {
				_ = unmapFile(data)
			}
			s.corrupt.Add(1)
			corrupt = err
			if dir == s.cfg.Dir {
				_ = os.Remove(path)
			}
			continue
		}
		s.maps[path] = &mapping{data: data, payload: payload, mapped: mapped}
		s.hits.Add(1)
		return payload, nil
	}
	if corrupt != nil {
		return nil, corrupt
	}
	s.misses.Add(1)
	return nil, ErrNotFound
}

// NoteCorrupt records that the payload Load returned for k failed
// downstream (structural) validation: the mapping is dropped, the Dir
// copy deleted so a write-back heals it, and the corrupt counter
// incremented. Downstream validation is deterministic, so no concurrent
// loader can be holding a usable backend over the dropped mapping.
func (s *Store) NoteCorrupt(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corrupt.Add(1)
	name := k.Filename()
	for _, dir := range []string{s.cfg.Dir, s.cfg.PackDir} {
		if dir == "" {
			continue
		}
		path := filepath.Join(dir, name)
		if m, ok := s.maps[path]; ok {
			if m.mapped {
				_ = unmapFile(m.data)
			}
			delete(s.maps, path)
		}
		if dir == s.cfg.Dir {
			_ = os.Remove(path)
		}
	}
}

// Save atomically writes the artifact for k into Dir (temp file +
// rename), then enforces the MaxBytes cap. With no Dir configured it is
// a no-op, so read-only stores accept write-through calls silently.
func (s *Store) Save(k Key, payload []byte) error {
	if s.cfg.Dir == "" {
		return nil
	}
	blob := EncodeArtifact(k, payload)
	tmp, err := os.CreateTemp(s.cfg.Dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.cfg.Dir, k.Filename())); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	s.enforceCap()
	return nil
}

// enforceCap deletes least-recently-modified artifacts from Dir until
// the directory fits MaxBytes. Deleting a currently-mapped artifact is
// safe: the mapping (and the page cache behind it) outlives the
// directory entry, and the in-memory mapping cache keeps serving it.
func (s *Store) enforceCap() {
	if s.cfg.MaxBytes <= 0 {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	var files []entry
	var total int64
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".gfa" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{filepath.Join(s.cfg.Dir, e.Name()), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= s.cfg.MaxBytes {
			return
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.evictions.Add(1)
		}
	}
}

// Stats is a point-in-time snapshot of the store: on-disk inventory
// (scanned per call) plus lifetime counters.
type Stats struct {
	Dir           string `json:"dir,omitempty"`
	Pack          string `json:"pack,omitempty"`
	Artifacts     int    `json:"artifacts"`
	Bytes         int64  `json:"bytes"`
	PackArtifacts int    `json:"packArtifacts"`
	PackBytes     int64  `json:"packBytes"`
	Resident      int    `json:"resident"` // artifacts mapped in memory
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Writes        uint64 `json:"writes"`
	Corrupt       uint64 `json:"corrupt"`
	Evictions     uint64 `json:"evictions"`
}

// Stats scans the directories and snapshots the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Dir:       s.cfg.Dir,
		Pack:      s.cfg.PackDir,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Corrupt:   s.corrupt.Load(),
		Evictions: s.evictions.Load(),
	}
	st.Artifacts, st.Bytes = scanDir(s.cfg.Dir)
	st.PackArtifacts, st.PackBytes = scanDir(s.cfg.PackDir)
	s.mu.Lock()
	st.Resident = len(s.maps)
	s.mu.Unlock()
	return st
}

func scanDir(dir string) (count int, bytes int64) {
	if dir == "" {
		return 0, 0
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".gfa" {
			continue
		}
		if info, err := e.Info(); err == nil {
			count++
			bytes += info.Size()
		}
	}
	return count, bytes
}

// Hits returns the lifetime artifact-load hit count.
func (s *Store) Hits() uint64 { return s.hits.Load() }

// Misses returns the lifetime clean-miss count.
func (s *Store) Misses() uint64 { return s.misses.Load() }

// Corrupt returns the lifetime count of artifacts that failed
// validation and fell back to compute.
func (s *Store) Corrupt() uint64 { return s.corrupt.Load() }
