//go:build !linux

package store

import "os"

// mapFile reads the file's contents; on non-linux platforms the store
// skips mmap and pays one copy per artifact load. mapped is always
// false, so unmapFile is never called on these bytes.
func mapFile(path string) (data []byte, mapped bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

// unmapFile is unreachable on non-linux builds (mapFile never maps).
func unmapFile([]byte) error { return nil }
