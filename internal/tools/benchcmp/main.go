// Command benchcmp is the CI benchmark-regression gate: it compares two
// `go test -bench` outputs and fails (exit 1) when any benchmark matched by
// -filter regressed by more than -threshold.
//
// Both files may contain several runs per benchmark (-count=N); the
// comparator takes the minimum ns/op per benchmark, which is the standard
// low-noise statistic for regression gating (the minimum is the run least
// disturbed by scheduling noise). Benchmarks present in only one file are
// reported but never fail the gate, so adding or retiring benchmarks does
// not require a lockstep baseline update. By default ratios are normalized
// by the median paired ratio, so a baseline recorded on a different
// machine class (dev box vs CI runner) does not shift every benchmark into
// false regression; see compare for the trade-off.
//
// Usage:
//
//	benchcmp -baseline bench-baseline.txt -current bench-full.txt \
//	         -threshold 1.25 -filter '^BenchmarkE[0-9]'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"text/tabwriter"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkE02_Table1_Classification-8   20   69046217 ns/op   49 B/op ...
//
// The -8 GOMAXPROCS suffix is stripped so baselines transfer between
// differently sized runners of the same machine class.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse returns the minimum ns/op per benchmark name in the file.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := best[m[1]]; !ok || ns < cur {
			best[m[1]] = ns
		}
	}
	return best, sc.Err()
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// median returns the median of a non-empty slice (sorted in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// compare renders the comparison table to out and returns the list of
// gated regressions beyond the threshold.
//
// When normalize is true and at least three benchmarks are paired, every
// ratio is divided by the median ratio before the threshold check. A
// baseline recorded on a different machine class shifts all ratios by the
// machines' speed difference; the median cancels that shift while a
// genuine single-benchmark regression still sticks out. The cost is that a
// uniform slowdown across every benchmark reads as machine skew — for
// same-machine comparisons pass -normalize=false to gate on raw ratios.
func compare(baselinePath, currentPath string, threshold float64, filter string, normalize bool, out io.Writer) ([]string, error) {
	if threshold <= 1 {
		return nil, fmt.Errorf("threshold %v must exceed 1", threshold)
	}
	gate, err := regexp.Compile(filter)
	if err != nil {
		return nil, fmt.Errorf("bad -filter: %v", err)
	}
	baseline, err := parse(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	current, err := parse(currentPath)
	if err != nil {
		return nil, fmt.Errorf("current: %v", err)
	}
	if len(baseline) == 0 {
		return nil, fmt.Errorf("baseline %s contains no benchmark lines", baselinePath)
	}
	if len(current) == 0 {
		return nil, fmt.Errorf("current %s contains no benchmark lines", currentPath)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	// Machine-speed calibration: the median current/baseline ratio over
	// every paired benchmark.
	calib := 1.0
	if normalize {
		var ratios []float64
		for name, b := range baseline {
			if c, ok := current[name]; ok {
				ratios = append(ratios, c/b)
			}
		}
		if len(ratios) >= 3 {
			calib = median(ratios)
			fmt.Fprintf(out, "calibration: median ratio %.2fx over %d paired benchmarks (normalized out)\n", calib, len(ratios))
		} else {
			fmt.Fprintf(out, "calibration: only %d paired benchmarks, gating on raw ratios\n", len(ratios))
		}
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tbaseline\tcurrent\tratio\tverdict")
	var regressions []string
	type delta struct {
		name   string
		ratio  float64
		magn   float64 // |ratio - 1|, the sort key for the summary
		gated  bool
		before float64
		after  float64
	}
	var deltas []delta
	for _, name := range names {
		b, hasB := baseline[name]
		c, hasC := current[name]
		switch {
		case !hasC:
			fmt.Fprintf(w, "%s\t%s\t-\t-\tmissing from current (ignored)\n", name, fmtNs(b))
		case !hasB:
			fmt.Fprintf(w, "%s\t-\t%s\t-\tnew, no baseline (ignored)\n", name, fmtNs(c))
		default:
			ratio := c / b / calib
			verdict := "ok"
			if !gate.MatchString(name) {
				verdict = "ungated"
			} else if ratio > threshold {
				verdict = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %s -> %s (%.2fx > %.2fx)",
					name, fmtNs(b), fmtNs(c), ratio, threshold))
			}
			d := delta{name: name, ratio: ratio, magn: ratio - 1, gated: gate.MatchString(name), before: b, after: c}
			if d.magn < 0 {
				d.magn = -d.magn
			}
			deltas = append(deltas, d)
			fmt.Fprintf(w, "%s\t%s\t%s\t%.2fx\t%s\n", name, fmtNs(b), fmtNs(c), ratio, verdict)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	// Top-5 movers, largest calibrated change first: the at-a-glance
	// summary for the CI job log, covering speedups as well as slowdowns.
	if len(deltas) > 0 {
		sort.Slice(deltas, func(i, j int) bool { return deltas[i].magn > deltas[j].magn })
		fmt.Fprintf(out, "\ntop deltas (of %d paired benchmarks):\n", len(deltas))
		for i, d := range deltas {
			if i == 5 {
				break
			}
			dir := "slower"
			if d.ratio < 1 {
				dir = "faster"
			}
			tag := ""
			if !d.gated {
				tag = " [ungated]"
			}
			fmt.Fprintf(out, "  %-44s %s -> %s  %.2fx %s%s\n",
				d.name, fmtNs(d.before), fmtNs(d.after), d.ratio, dir, tag)
		}
	}
	return regressions, nil
}

// run executes the gate and returns the process exit code.
func run(baselinePath, currentPath string, threshold float64, filter string, normalize bool, out io.Writer) int {
	regressions, err := compare(baselinePath, currentPath, threshold, filter, normalize, out)
	if err != nil {
		fmt.Fprintln(out, "benchcmp:", err)
		return 2
	}
	if len(regressions) > 0 {
		fmt.Fprintln(out)
		for _, r := range regressions {
			fmt.Fprintln(out, "FAIL", r)
		}
		fmt.Fprintf(out, "\n%d benchmark(s) regressed beyond %.0f%%. If the slowdown is intended\n", len(regressions), (threshold-1)*100)
		fmt.Fprintln(out, "(algorithmic trade-off, new verification work), refresh the baseline:")
		fmt.Fprintln(out, "    make bench-full && cp bench-full.txt bench-baseline.txt")
		fmt.Fprintln(out, "on the CI runner class and commit it with the change that explains it.")
		return 1
	}
	fmt.Fprintf(out, "\nall gated benchmarks within %.0f%% of baseline\n", (threshold-1)*100)
	return 0
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "bench-baseline.txt", "committed baseline bench output")
	currentPath := flag.String("current", "bench-full.txt", "freshly measured bench output")
	threshold := flag.Float64("threshold", 1.25, "fail when current/baseline exceeds this ratio")
	filter := flag.String("filter", `^BenchmarkE[0-9]`, "regexp of benchmark names the gate applies to")
	normalize := flag.Bool("normalize", true, "divide ratios by the median paired ratio, cancelling baseline/runner machine-speed skew (use =false for same-machine comparisons)")
	flag.Parse()
	os.Exit(run(*baselinePath, *currentPath, *threshold, *filter, *normalize, os.Stdout))
}
