package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseTakesMinAcrossCounts(t *testing.T) {
	path := writeBench(t, "bench.txt", `
goos: linux
BenchmarkE01_Foo-8     	      16	  70000000 ns/op	 100 B/op	 5 allocs/op
BenchmarkE01_Foo-8     	      16	  65000000 ns/op	 100 B/op	 5 allocs/op
BenchmarkE01_Foo-8     	      16	  69000000 ns/op	 100 B/op	 5 allocs/op
BenchmarkSweepClassify/serial         	       1	  45253341 ns/op
BenchmarkSweepClassify/parallel8      	       1	  44125853 ns/op
PASS
`)
	got, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkE01_Foo"] != 65000000 {
		t.Errorf("min ns/op = %v, want 65000000", got["BenchmarkE01_Foo"])
	}
	// Sub-benchmark names keep their slash suffix; the -procs suffix is
	// stripped only from the end.
	if got["BenchmarkSweepClassify/serial"] != 45253341 {
		t.Errorf("serial = %v", got["BenchmarkSweepClassify/serial"])
	}
	if got["BenchmarkSweepClassify/parallel8"] != 44125853 {
		t.Errorf("parallel8 = %v", got["BenchmarkSweepClassify/parallel8"])
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	path := writeBench(t, "bench.txt", "ok  \tgfcube\t0.5s\n?\tgfcube/cmd\t[no test files]\n")
	got, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from non-benchmark lines", got)
	}
}

func TestRunGate(t *testing.T) {
	baseline := writeBench(t, "baseline.txt", `
BenchmarkE01_Foo-8	10	100000 ns/op
BenchmarkE02_Bar-8	10	200000 ns/op
BenchmarkUngated-8	10	100000 ns/op
BenchmarkGone-8  	10	100000 ns/op
`)
	// E01 within threshold, ungated slowdown ignored, new benchmark
	// ignored, missing benchmark ignored: exit 0.
	okCurrent := writeBench(t, "ok.txt", `
BenchmarkE01_Foo-8	10	110000 ns/op
BenchmarkE02_Bar-8	10	190000 ns/op
BenchmarkUngated-8	10	900000 ns/op
BenchmarkNew-8   	10	100000 ns/op
`)
	var out strings.Builder
	if code := run(baseline, okCurrent, 1.25, `^BenchmarkE[0-9]`, false, &out); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"ungated", "new, no baseline", "missing from current"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// The job-log summary leads with the biggest mover: the 9x ungated
	// slowdown, tagged as such.
	if !strings.Contains(out.String(), "top deltas (of 3 paired benchmarks):") {
		t.Errorf("output missing top-delta summary:\n%s", out.String())
	}
	first := ""
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "slower") || strings.Contains(line, "faster") {
			first = line
			break
		}
	}
	if !strings.Contains(first, "BenchmarkUngated") || !strings.Contains(first, "9.00x slower [ungated]") {
		t.Errorf("top delta line wrong: %q", first)
	}

	// A gated regression beyond 25% fails with exit 1 and names the culprit.
	badCurrent := writeBench(t, "bad.txt", `
BenchmarkE01_Foo-8	10	140000 ns/op
BenchmarkE02_Bar-8	10	200000 ns/op
`)
	out.Reset()
	if code := run(baseline, badCurrent, 1.25, `^BenchmarkE[0-9]`, false, &out); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkE01_Foo") {
		t.Errorf("regression not named:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL BenchmarkE02_Bar") {
		t.Errorf("false positive on E02:\n%s", out.String())
	}

	// Bad inputs exit 2.
	if code := run(baseline, filepath.Join(t.TempDir(), "nope.txt"), 1.25, `E`, false, &out); code != 2 {
		t.Errorf("missing current file: exit %d, want 2", code)
	}
	empty := writeBench(t, "empty.txt", "no benchmarks here\n")
	if code := run(empty, okCurrent, 1.25, `E`, false, &out); code != 2 {
		t.Errorf("empty baseline: exit %d, want 2", code)
	}
	if code := run(baseline, okCurrent, 0.8, `E`, false, &out); code != 2 {
		t.Errorf("threshold <= 1: exit %d, want 2", code)
	}
	if code := run(baseline, okCurrent, 1.25, `([`, false, &out); code != 2 {
		t.Errorf("bad filter: exit %d, want 2", code)
	}
}

// Median-ratio normalization cancels uniform machine-speed skew but still
// catches the benchmark that regressed relative to its peers.
func TestRunNormalized(t *testing.T) {
	baseline := writeBench(t, "baseline.txt", `
BenchmarkE01_A-8	10	100000 ns/op
BenchmarkE02_B-8	10	100000 ns/op
BenchmarkE03_C-8	10	100000 ns/op
BenchmarkE04_D-8	10	100000 ns/op
`)
	// A runner twice as slow across the board: without normalization every
	// gated benchmark is a 2x "regression"; with it, none are.
	slowRunner := writeBench(t, "slow.txt", `
BenchmarkE01_A-8	10	200000 ns/op
BenchmarkE02_B-8	10	205000 ns/op
BenchmarkE03_C-8	10	195000 ns/op
BenchmarkE04_D-8	10	200000 ns/op
`)
	var out strings.Builder
	if code := run(baseline, slowRunner, 1.25, `^BenchmarkE[0-9]`, true, &out); code != 0 {
		t.Fatalf("uniform skew flagged as regression (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "calibration: median ratio") {
		t.Errorf("calibration line missing:\n%s", out.String())
	}

	// Same slow runner, but E03 regressed 4x relative to its peers.
	realRegression := writeBench(t, "bad.txt", `
BenchmarkE01_A-8	10	200000 ns/op
BenchmarkE02_B-8	10	205000 ns/op
BenchmarkE03_C-8	10	800000 ns/op
BenchmarkE04_D-8	10	200000 ns/op
`)
	out.Reset()
	if code := run(baseline, realRegression, 1.25, `^BenchmarkE[0-9]`, true, &out); code != 1 {
		t.Fatalf("relative regression not caught (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkE03_C") {
		t.Errorf("E03 not named:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL BenchmarkE01_A") {
		t.Errorf("false positive on E01:\n%s", out.String())
	}

	// Fewer than three paired benchmarks: falls back to raw gating.
	tiny := writeBench(t, "tiny-base.txt", "BenchmarkE01_A-8\t10\t100000 ns/op\n")
	tinySlow := writeBench(t, "tiny-cur.txt", "BenchmarkE01_A-8\t10\t200000 ns/op\n")
	out.Reset()
	if code := run(tiny, tinySlow, 1.25, `^BenchmarkE[0-9]`, true, &out); code != 1 {
		t.Fatalf("tiny pairing should gate raw (exit %d):\n%s", code, out.String())
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[float64]string{
		500:    "500ns",
		1500:   "1.50µs",
		2.5e6:  "2.50ms",
		3.21e9: "3.21s",
		6.9e7:  "69.00ms",
	}
	for ns, want := range cases {
		if got := fmtNs(ns); got != want {
			t.Errorf("fmtNs(%v) = %q, want %q", ns, got, want)
		}
	}
}
