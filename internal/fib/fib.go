// Package fib provides Fibonacci, k-step Fibonacci (k-bonacci) and Lucas
// numbers in both uint64 and big.Int arithmetic, together with the
// convolution identities used by the enumeration results of the paper
// (Propositions 6.2 and 6.3).
//
// Convention: F_1 = F_2 = 1, matching the paper ("|V(H_d)| = F_{d+3} - 1,
// where F_d are the Fibonacci numbers"). F_0 = 0.
package fib

import (
	"fmt"
	"math/big"
)

// MaxUint64Index is the largest n for which F_n fits in a uint64 (F_93).
const MaxUint64Index = 93

// F returns the n-th Fibonacci number F_n with F_0 = 0, F_1 = F_2 = 1.
// It panics if n is negative or F_n overflows uint64 (n > MaxUint64Index).
func F(n int) uint64 {
	if n < 0 {
		panic(fmt.Sprintf("fib: negative index %d", n))
	}
	if n > MaxUint64Index {
		panic(fmt.Sprintf("fib: F(%d) overflows uint64; use Big", n))
	}
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// Big returns F_n as a big.Int, valid for any n >= 0.
func Big(n int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("fib: negative index %d", n))
	}
	a, b := big.NewInt(0), big.NewInt(1)
	for i := 0; i < n; i++ {
		a.Add(a, b)
		a, b = b, a
	}
	return a
}

// Seq returns F_0..F_n as a slice of big.Ints.
func Seq(n int) []*big.Int {
	out := make([]*big.Int, n+1)
	a, b := big.NewInt(0), big.NewInt(1)
	for i := 0; i <= n; i++ {
		out[i] = new(big.Int).Set(a)
		a.Add(a, b)
		a, b = b, a
	}
	return out
}

// Lucas returns the n-th Lucas number L_n with L_0 = 2, L_1 = 1.
func Lucas(n int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("fib: negative index %d", n))
	}
	a, b := big.NewInt(2), big.NewInt(1)
	for i := 0; i < n; i++ {
		a.Add(a, b)
		a, b = b, a
	}
	return a
}

// KBonacci returns the n-th k-step Fibonacci number T^{(k)}_n with the
// standard seed T_0 = ... = T_{k-2} = 0, T_{k-1} = 1 and
// T_n = sum_{i=1..k} T_{n-i}. For k = 2 this is the ordinary Fibonacci
// sequence with T_n = F_n.
//
// The order of the ICPP'93 generalized Fibonacci cube of order k is
// |V(Q_d(1^k))| = T^{(k)}_{d+k}: for k = 2 this recovers F_{d+2}, and for
// k = 3 the tribonacci counts 1, 2, 4, 7, 13, ... of Section 6, Eq. (1).
func KBonacci(k, n int) *big.Int {
	if k < 1 {
		panic(fmt.Sprintf("fib: k-bonacci needs k >= 1, got %d", k))
	}
	if n < 0 {
		panic(fmt.Sprintf("fib: negative index %d", n))
	}
	window := make([]*big.Int, k)
	for i := range window {
		window[i] = new(big.Int)
	}
	window[k-1].SetInt64(1)
	if n < k {
		// T_n is directly one of the seed values.
		return new(big.Int).Set(window[n])
	}
	for i := k; i <= n; i++ {
		next := new(big.Int)
		for _, w := range window {
			next.Add(next, w)
		}
		copy(window, window[1:])
		window[k-1] = next
	}
	return window[k-1]
}

// Convolution returns sum_{i=1}^{n} F_i * F_{m-i} for the given n and m,
// the Fibonacci convolution appearing in Proposition 6.2:
// |E(Q_d(110))| = -1 + sum_{i=1}^{d+1} F_i F_{d+2-i}.
func Convolution(n, m int) *big.Int {
	seq := Seq(m)
	total := new(big.Int)
	tmp := new(big.Int)
	for i := 1; i <= n; i++ {
		if m-i < 0 {
			break
		}
		tmp.Mul(seq[i], seq[m-i])
		total.Add(total, tmp)
	}
	return total
}

// EdgesH returns the closed form of Proposition 6.2 evaluated via
// [12, Corollary 4]: |E(H_d)| = -1 + ((d+1) F_{d+2} + 2(d+2) F_{d+1}) / 5.
func EdgesH(d int) *big.Int {
	seq := Seq(d + 2)
	t1 := new(big.Int).Mul(big.NewInt(int64(d+1)), seq[d+2])
	t2 := new(big.Int).Mul(big.NewInt(int64(2*(d+2))), seq[d+1])
	t1.Add(t1, t2)
	q, r := new(big.Int).QuoRem(t1, big.NewInt(5), new(big.Int))
	if r.Sign() != 0 {
		panic(fmt.Sprintf("fib: EdgesH(%d) not divisible by 5; identity violated", d))
	}
	return q.Sub(q, big.NewInt(1))
}

// SquaresH returns the closed form of Proposition 6.3:
//
//	|S(H_d)| = -(3(d+1)/25) F_{d+2} + ((d+1)^2/10 + 3(d+1)/50 - 1/25) F_{d+1}.
//
// All arithmetic is carried out over the rationals; the result is exact.
func SquaresH(d int) *big.Int {
	seq := Seq(d + 2)
	n := big.NewRat(int64(d+1), 1)
	f2 := new(big.Rat).SetInt(seq[d+2])
	f1 := new(big.Rat).SetInt(seq[d+1])

	termA := new(big.Rat).Mul(big.NewRat(-3, 25), n)
	termA.Mul(termA, f2)

	nSq := new(big.Rat).Mul(n, n)
	coefB := new(big.Rat).Mul(nSq, big.NewRat(1, 10))
	coefB.Add(coefB, new(big.Rat).Mul(n, big.NewRat(3, 50)))
	coefB.Sub(coefB, big.NewRat(1, 25))
	termB := new(big.Rat).Mul(coefB, f1)

	sum := new(big.Rat).Add(termA, termB)
	if !sum.IsInt() {
		panic(fmt.Sprintf("fib: SquaresH(%d) is not an integer; identity violated", d))
	}
	return new(big.Int).Set(sum.Num())
}
