package fib

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestFSmall(t *testing.T) {
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for n, w := range want {
		if got := F(n); got != w {
			t.Errorf("F(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestFMaxIndex(t *testing.T) {
	// F_93 = 12200160415121876738 fits in uint64; check against big.Int.
	if got, want := F(MaxUint64Index), Big(MaxUint64Index); new(big.Int).SetUint64(got).Cmp(want) != 0 {
		t.Errorf("F(93) = %d, big says %s", got, want)
	}
}

func TestFPanics(t *testing.T) {
	for _, n := range []int{-1, MaxUint64Index + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("F(%d) did not panic", n)
				}
			}()
			F(n)
		}()
	}
}

func TestBigMatchesF(t *testing.T) {
	for n := 0; n <= 90; n++ {
		if Big(n).Uint64() != F(n) {
			t.Fatalf("Big(%d) != F(%d)", n, n)
		}
	}
}

func TestSeq(t *testing.T) {
	seq := Seq(20)
	if len(seq) != 21 {
		t.Fatalf("Seq(20) has %d entries", len(seq))
	}
	for n, v := range seq {
		if v.Uint64() != F(n) {
			t.Errorf("Seq[%d] = %s", n, v)
		}
	}
}

func TestLucas(t *testing.T) {
	want := []int64{2, 1, 3, 4, 7, 11, 18, 29, 47, 76, 123}
	for n, w := range want {
		if got := Lucas(n); got.Int64() != w {
			t.Errorf("Lucas(%d) = %s, want %d", n, got, w)
		}
	}
}

func TestLucasFibonacciIdentity(t *testing.T) {
	// L_n = F_{n-1} + F_{n+1}.
	for n := 1; n <= 30; n++ {
		want := new(big.Int).Add(Big(n-1), Big(n+1))
		if Lucas(n).Cmp(want) != 0 {
			t.Errorf("L_%d != F_%d + F_%d", n, n-1, n+1)
		}
	}
}

func TestKBonacciK2IsFibonacci(t *testing.T) {
	for n := 0; n <= 40; n++ {
		if KBonacci(2, n).Cmp(Big(n)) != 0 {
			t.Errorf("T^(2)_%d = %s != F_%d = %s", n, KBonacci(2, n), n, Big(n))
		}
	}
}

func TestKBonacciTribonacci(t *testing.T) {
	// T^(3): 0, 0, 1, 1, 2, 4, 7, 13, 24, 44, 81.
	want := []int64{0, 0, 1, 1, 2, 4, 7, 13, 24, 44, 81}
	for n, w := range want {
		if got := KBonacci(3, n); got.Int64() != w {
			t.Errorf("T^(3)_%d = %s, want %d", n, got, w)
		}
	}
}

func TestKBonacciRecurrence(t *testing.T) {
	for k := 2; k <= 5; k++ {
		for n := k; n <= 25; n++ {
			sum := new(big.Int)
			for i := 1; i <= k; i++ {
				sum.Add(sum, KBonacci(k, n-i))
			}
			if KBonacci(k, n).Cmp(sum) != 0 {
				t.Errorf("k=%d n=%d: recurrence violated", k, n)
			}
		}
	}
}

func TestKBonacciSeed(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for n := 0; n < k-1; n++ {
			if KBonacci(k, n).Sign() != 0 {
				t.Errorf("T^(%d)_%d should be 0", k, n)
			}
		}
		if KBonacci(k, k-1).Int64() != 1 {
			t.Errorf("T^(%d)_%d should be 1", k, k-1)
		}
	}
}

func TestConvolutionSmall(t *testing.T) {
	// sum_{i=1}^{2} F_i F_{3-i} = F_1 F_2 + F_2 F_1 = 2.
	if got := Convolution(2, 3); got.Int64() != 2 {
		t.Errorf("Convolution(2,3) = %s", got)
	}
	// Proposition 6.2 base cases: |E(H_0)| = -1 + sum_{i=1}^{1} F_i F_{2-i} = 0;
	// |E(H_1)| = -1 + F_1 F_2 + F_2 F_1 = 1.
	e0 := new(big.Int).Sub(Convolution(1, 2), big.NewInt(1))
	e1 := new(big.Int).Sub(Convolution(2, 3), big.NewInt(1))
	if e0.Int64() != 0 || e1.Int64() != 1 {
		t.Errorf("Prop 6.2 base cases: %s, %s", e0, e1)
	}
}

func TestEdgesHMatchesConvolution(t *testing.T) {
	// The closed form of [12, Corollary 4] equals the convolution form of
	// Proposition 6.2 for all d.
	for d := 0; d <= 60; d++ {
		conv := new(big.Int).Sub(Convolution(d+1, d+2), big.NewInt(1))
		if EdgesH(d).Cmp(conv) != 0 {
			t.Errorf("d=%d: EdgesH=%s convolution=%s", d, EdgesH(d), conv)
		}
	}
}

func TestSquaresHSmall(t *testing.T) {
	// Hand-computed from recurrence (6): S_0=0, S_1=0, S_2=1, and
	// S_d = S_{d-1} + S_{d-2} + E_{d-2} + 1.
	e := func(d int) *big.Int { return EdgesH(d) }
	want := []*big.Int{big.NewInt(0), big.NewInt(0), big.NewInt(1)}
	for d := 3; d <= 30; d++ {
		s := new(big.Int).Add(want[d-1], want[d-2])
		s.Add(s, e(d-2))
		s.Add(s, big.NewInt(1))
		want = append(want, s)
	}
	for d := 0; d <= 30; d++ {
		if SquaresH(d).Cmp(want[d]) != 0 {
			t.Errorf("SquaresH(%d) = %s, want %s", d, SquaresH(d), want[d])
		}
	}
}

func TestQuickFibonacciAddition(t *testing.T) {
	// F_{m+n} = F_m F_{n+1} + F_{m-1} F_n.
	prop := func(m, n uint8) bool {
		mi, ni := int(m%50)+1, int(n%50)
		lhs := Big(mi + ni)
		rhs := new(big.Int).Mul(Big(mi), Big(ni+1))
		rhs.Add(rhs, new(big.Int).Mul(Big(mi-1), Big(ni)))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCassini(t *testing.T) {
	// F_{n-1} F_{n+1} - F_n^2 = (-1)^n.
	prop := func(n uint8) bool {
		ni := int(n%60) + 1
		lhs := new(big.Int).Mul(Big(ni-1), Big(ni+1))
		lhs.Sub(lhs, new(big.Int).Mul(Big(ni), Big(ni)))
		want := int64(1)
		if ni%2 == 1 {
			want = -1
		}
		return lhs.Int64() == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
