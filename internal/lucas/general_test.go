package lucas

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func TestCircularlyAvoids(t *testing.T) {
	cases := []struct {
		w, f string
		want bool
	}{
		{"1001", "11", false}, // wraps: positions 4,1
		{"1000", "11", true},
		{"0110", "11", false},
		{"10101", "101", false}, // linear hit
		{"10010", "101", false}, // wrap: 0·10 + 10 -> window 010|10... check circular occurrence
		{"01010", "11", true},
		{"00100", "101", true}, // circular windows: 001, 010, 100, 000, 000
	}
	for _, cs := range cases {
		got := CircularlyAvoids(bitstr.MustParse(cs.w), bitstr.MustParse(cs.f))
		// Brute-force circular check: rotate and test linear containment of
		// the factor in each rotation's prefix window.
		w := bitstr.MustParse(cs.w)
		f := bitstr.MustParse(cs.f)
		brute := true
		for r := 0; r < w.Len(); r++ {
			rot := w.Suffix(w.Len() - r).Concat(w.Prefix(r))
			if rot.Prefix(f.Len()) == f {
				brute = false
				break
			}
		}
		if got != brute {
			t.Fatalf("CircularlyAvoids(%s, %s) = %v, brute force %v", cs.w, cs.f, got, brute)
		}
		if got != cs.want {
			t.Errorf("CircularlyAvoids(%s, %s) = %v, want %v (adjust case)", cs.w, cs.f, got, cs.want)
		}
	}
}

func TestCircularAgainstRotationsRandom(t *testing.T) {
	// Property: w avoids f circularly iff no rotation of w starts with f.
	for d := 2; d <= 10; d++ {
		for _, fs := range []string{"11", "101", "110", "10"} {
			f := bitstr.MustParse(fs)
			if f.Len() > d {
				continue
			}
			bitstr.ForEach(d, func(w bitstr.Word) bool {
				brute := true
				for r := 0; r < d; r++ {
					rot := w.Suffix(d - r).Concat(w.Prefix(r))
					if rot.Prefix(f.Len()) == f {
						brute = false
						break
					}
				}
				if CircularlyAvoids(w, f) != brute {
					t.Fatalf("d=%d f=%s w=%s: mismatch", d, fs, w)
				}
				return true
			})
		}
	}
}

func TestNewGeneralRecoversClassicalLucas(t *testing.T) {
	for d := 1; d <= 10; d++ {
		classic := New(d)
		general := NewGeneral(d, bitstr.Ones(2))
		if classic.N() != general.N() || classic.M() != general.M() {
			t.Fatalf("d=%d: classical (%d,%d) vs general (%d,%d)",
				d, classic.N(), classic.M(), general.N(), general.M())
		}
		for i := 0; i < classic.N(); i++ {
			if classic.Word(i) != general.Word(i) {
				t.Fatalf("d=%d: vertex lists differ at %d", d, i)
			}
		}
	}
}

func TestGeneralLucasInsideGeneralFibonacci(t *testing.T) {
	// Λ_d(f) is an induced subgraph of Q_d(f).
	for _, fs := range []string{"11", "101", "110", "1010"} {
		f := bitstr.MustParse(fs)
		for d := f.Len(); d <= 9; d++ {
			l := NewGeneral(d, f)
			q := core.New(d, f)
			if l.N() > q.N() {
				t.Fatalf("f=%s d=%d: Λ larger than Q", fs, d)
			}
			for i := 0; i < l.N(); i++ {
				if !q.Contains(l.Word(i)) {
					t.Fatalf("f=%s d=%d: Λ vertex %s not in Q", fs, d, l.Word(i))
				}
			}
			l.Graph().Edges(func(u, v int) {
				iu, _ := q.Rank(l.Word(u))
				iv, _ := q.Rank(l.Word(v))
				if !q.Graph().HasEdge(iu, iv) {
					t.Fatalf("f=%s d=%d: Λ edge missing in Q", fs, d)
				}
			})
		}
	}
}

func TestGeneralLucasRotationInvariantVertexSet(t *testing.T) {
	// The circular vertex set is closed under rotation.
	f := bitstr.MustParse("110")
	d := 8
	l := NewGeneral(d, f)
	for i := 0; i < l.N(); i++ {
		w := l.Word(i)
		rot := w.Suffix(d - 1).Concat(w.Prefix(1))
		if _, ok := l.Rank(rot); !ok {
			t.Fatalf("rotation %s of vertex %s missing", rot, w)
		}
	}
}

func TestGeneralLucasIsometry(t *testing.T) {
	// Λ_d(11) is isometric in Q_d for the tested range; the non-isometric
	// factor 101 stays non-isometric (its Λ inherits critical structure for
	// large enough d) - record the computed behaviour.
	for d := 2; d <= 9; d++ {
		if !NewGeneral(d, bitstr.Ones(2)).IsIsometricInHypercube() {
			t.Errorf("Λ_%d(11) should be isometric", d)
		}
	}
}

func TestNewGeneralSmallFactorLongerThanD(t *testing.T) {
	// |f| > d: the circular window wraps repeatedly, so only 111 (whose
	// cyclic reading is 111111...) contains 1111.
	c := NewGeneral(3, bitstr.MustParse("1111"))
	if c.N() != 7 {
		t.Errorf("Λ_3(1111) has %d vertices, want 7", c.N())
	}
}

func TestNewGeneralPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty factor did not panic")
		}
	}()
	NewGeneral(4, bitstr.Word{})
}
