package lucas

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/hypercube"
	"gfcube/internal/isometry"
)

func TestOrderIsLucasNumber(t *testing.T) {
	// |V(Λ_d)| = L_d: 1, 3, 4, 7, 11, 18, 29, 47, ...
	want := []int{1, 1, 3, 4, 7, 11, 18, 29, 47, 76, 123}
	for d := 0; d <= 10; d++ {
		c := New(d)
		if c.N() != want[d] {
			t.Errorf("|V(Λ_%d)| = %d, want %d", d, c.N(), want[d])
		}
		if Count(d).Int64() != int64(want[d]) {
			t.Errorf("Count(%d) = %s", d, Count(d))
		}
	}
}

func TestAdmissible(t *testing.T) {
	cases := map[string]bool{
		"0":     true,
		"1":     false, // cyclic 11 with itself
		"10":    true,  // no linear 11, ends are 1 and 0
		"0110":  false, // linear 11
		"1001":  false, // cyclic: last 1 and first 1 adjacent
		"1000":  true,
		"0101":  true,
		"10101": false, // first and last both 1
		"01010": true,
	}
	for s, want := range cases {
		if got := Admissible(bitstr.MustParse(s)); got != want {
			t.Errorf("Admissible(%s) = %v, want %v", s, got, want)
		}
	}
}

func TestLucasInsideFibonacci(t *testing.T) {
	// Λ_d is the subgraph of Γ_d induced by the words not starting and
	// ending with 1; every Λ edge is a Γ edge.
	for d := 1; d <= 9; d++ {
		l := New(d)
		f := core.Fibonacci(d)
		for i := 0; i < l.N(); i++ {
			if !f.Contains(l.Word(i)) {
				t.Fatalf("Λ_%d vertex %s not in Γ_%d", d, l.Word(i), d)
			}
		}
		l.Graph().Edges(func(u, v int) {
			iu, _ := f.Rank(l.Word(u))
			iv, _ := f.Rank(l.Word(v))
			if !f.Graph().HasEdge(iu, iv) {
				t.Fatalf("Λ_%d edge missing in Γ_%d", d, d)
			}
		})
	}
}

func TestLucasIsometricInHypercube(t *testing.T) {
	for d := 1; d <= 10; d++ {
		if !New(d).IsIsometricInHypercube() {
			t.Errorf("Λ_%d should be isometric in Q_%d", d, d)
		}
	}
}

func TestLucasIsPartialCube(t *testing.T) {
	for d := 2; d <= 7; d++ {
		a := isometry.Analyze(New(d).Graph())
		if !a.IsPartialCube() {
			t.Errorf("Λ_%d not recognized as a partial cube", d)
		}
	}
}

func TestLucasMedianClosedInHypercube(t *testing.T) {
	// Lucas cubes are median graphs; the defining embedding is median
	// closed: the majority word of three admissible words is admissible
	// (verified exhaustively for d <= 7).
	for d := 1; d <= 7; d++ {
		c := New(d)
		n := c.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					m := hypercube.Median(c.Word(i), c.Word(j), c.Word(k))
					if !Admissible(m) {
						t.Fatalf("Λ_%d: median of (%s,%s,%s) = %s not admissible",
							d, c.Word(i), c.Word(j), c.Word(k), m)
					}
				}
			}
		}
	}
}

func TestLucasDiameter(t *testing.T) {
	// diam(Λ_d): for even d it is d (e.g. 1010...10 vs 0101...01); for odd
	// d >= 3 no two admissible words differ everywhere, so it is < d.
	// Check monotone growth and the even case exactly.
	for d := 2; d <= 10; d += 2 {
		st := New(d).Graph().Stats()
		if int(st.Diameter) != d {
			t.Errorf("diam(Λ_%d) = %d, want %d", d, st.Diameter, d)
		}
	}
	for d := 3; d <= 9; d += 2 {
		st := New(d).Graph().Stats()
		if int(st.Diameter) >= d {
			t.Errorf("diam(Λ_%d) = %d, want < %d", d, st.Diameter, d)
		}
	}
}

func TestLucasConnectedBipartite(t *testing.T) {
	for d := 1; d <= 10; d++ {
		g := New(d).Graph()
		if !g.IsConnected() {
			t.Errorf("Λ_%d disconnected", d)
		}
		if ok, _ := g.IsBipartite(); !ok {
			t.Errorf("Λ_%d not bipartite", d)
		}
	}
}

func TestRankRoundTrip(t *testing.T) {
	c := New(8)
	for i := 0; i < c.N(); i++ {
		j, ok := c.Rank(c.Word(i))
		if !ok || j != i {
			t.Fatalf("rank round trip failed at %d", i)
		}
	}
	if _, ok := c.Rank(bitstr.MustParse("10000001")); ok {
		t.Error("cyclically invalid word accepted")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}
