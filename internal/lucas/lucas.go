// Package lucas implements Lucas cubes, the cyclic siblings of Fibonacci
// cubes (paper reference [4]): Λ_d is the subgraph of Q_d induced by the
// binary strings with no two consecutive 1s *circularly* (no 11 factor, and
// not 1 in both the first and last position). |V(Λ_d)| is the Lucas number
// L_d. Lucas cubes are induced subgraphs of Fibonacci cubes and isometric
// subgraphs of hypercubes, which the package's tests verify computationally.
package lucas

import (
	"fmt"
	"math/big"
	"sort"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/fib"
	"gfcube/internal/graph"
)

// Cube is an explicitly constructed Lucas cube Λ_d.
type Cube struct {
	d     int
	verts []uint64
	g     *graph.Graph
}

// Admissible reports whether w is a Lucas-cube vertex: no 11 factor and not
// 1 at both ends (the cyclic adjacency).
func Admissible(w bitstr.Word) bool {
	if w.HasFactor(bitstr.Ones(2)) {
		return false
	}
	if w.Len() >= 1 && w.Bit(0) == 1 && w.Bit(w.Len()-1) == 1 {
		return false
	}
	return true
}

// New constructs Λ_d.
func New(d int) *Cube {
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("lucas: explicit construction limited to 0 <= d <= 30, got %d", d))
	}
	var verts []uint64
	if d == 0 {
		verts = []uint64{0}
	} else {
		dfa := automaton.New(bitstr.Ones(2))
		dfa.Enumerate(d, func(w bitstr.Word) bool {
			if Admissible(w) {
				verts = append(verts, w.Bits)
			}
			return true
		})
	}
	c := &Cube{d: d, verts: verts}
	b := graph.NewBuilder(len(verts))
	for i, v := range verts {
		for bit := 0; bit < d; bit++ {
			u := v ^ (uint64(1) << uint(bit))
			if u <= v {
				continue
			}
			if j, ok := c.rank(u); ok {
				b.AddEdge(i, j)
			}
		}
	}
	c.g = b.Build()
	return c
}

// D returns the dimension.
func (c *Cube) D() int { return c.d }

// N returns |V(Λ_d)|.
func (c *Cube) N() int { return len(c.verts) }

// M returns |E(Λ_d)|.
func (c *Cube) M() int { return c.g.M() }

// Graph returns the underlying graph.
func (c *Cube) Graph() *graph.Graph { return c.g }

// Word returns the i-th vertex word (increasing packed order).
func (c *Cube) Word(i int) bitstr.Word { return bitstr.Word{Bits: c.verts[i], N: c.d} }

// Rank returns the index of w and whether it is a vertex.
func (c *Cube) Rank(w bitstr.Word) (int, bool) {
	if w.Len() != c.d {
		return 0, false
	}
	return c.rank(w.Bits)
}

func (c *Cube) rank(v uint64) (int, bool) {
	i := sort.Search(len(c.verts), func(i int) bool { return c.verts[i] >= v })
	if i < len(c.verts) && c.verts[i] == v {
		return i, true
	}
	return 0, false
}

// Count returns |V(Λ_d)| without construction: L_d for d >= 1 (L_1 = 1,
// L_2 = 3), and 1 for d = 0.
func Count(d int) *big.Int {
	if d == 0 {
		return big.NewInt(1)
	}
	return fib.Lucas(d)
}

// CircularlyAvoids reports whether the cyclic word w avoids f: no window of
// length |f| in the circular reading of w equals f. The circular reading
// wraps as often as needed, so for |f| > len(w) the window passes over w
// multiple times (e.g. the length-1 word 1 does NOT circularly avoid 11).
func CircularlyAvoids(w, f bitstr.Word) bool {
	if f.Len() == 0 {
		return false
	}
	if w.Len() == 0 {
		return true
	}
	need := w.Len() + f.Len() - 1
	if need > bitstr.MaxLen {
		panic("lucas: circular window exceeds word capacity")
	}
	ext := w
	for ext.Len() < need {
		take := need - ext.Len()
		if take > w.Len() {
			take = w.Len()
		}
		ext = ext.Concat(w.Prefix(take))
	}
	return !ext.HasFactor(f)
}

// NewGeneral constructs the generalized Lucas cube Λ_d(f): the subgraph of
// Q_d induced by the words that avoid f circularly. Λ_d(11) is the classical
// Lucas cube; this is the construction of the authors' companion paper
// "Generalized Lucas cubes". Every Λ_d(f) is an induced subgraph of Q_d(f)
// (circular avoidance implies linear avoidance).
func NewGeneral(d int, f bitstr.Word) *Cube {
	if f.Len() == 0 {
		panic("lucas: empty forbidden factor")
	}
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("lucas: explicit construction limited to 0 <= d <= 30, got %d", d))
	}
	var verts []uint64
	if d == 0 {
		verts = []uint64{0}
	} else {
		// Linear avoidance is necessary for circular avoidance, so the DFA
		// prunes the enumeration even when |f| > d (where it prunes nothing
		// and every word is tested circularly).
		dfa := automaton.New(f)
		dfa.Enumerate(d, func(w bitstr.Word) bool {
			if CircularlyAvoids(w, f) {
				verts = append(verts, w.Bits)
			}
			return true
		})
	}
	c := &Cube{d: d, verts: verts}
	b := graph.NewBuilder(len(verts))
	for i, v := range verts {
		for bit := 0; bit < d; bit++ {
			u := v ^ (uint64(1) << uint(bit))
			if u <= v {
				continue
			}
			if j, ok := c.rank(u); ok {
				b.AddEdge(i, j)
			}
		}
	}
	c.g = b.Build()
	return c
}

// IsIsometricInHypercube checks, exactly, that Λ_d has the hypercube metric
// (distance equals Hamming distance for all vertex pairs).
func (c *Cube) IsIsometricInHypercube() bool {
	hostDist := func(a, b int) int32 {
		return int32(bitstr.Word{Bits: c.verts[a], N: c.d}.HammingDistance(bitstr.Word{Bits: c.verts[b], N: c.d}))
	}
	ids := make([]int, c.N())
	for i := range ids {
		ids[i] = i
	}
	ok, _, _ := c.g.IsIsometricSubgraphOf(hostDist, ids)
	return ok
}
