package network

import (
	"testing"
)

func TestSaturationSweep(t *testing.T) {
	n := NewFibonacci(8)
	points := n.Saturation([]int{1, 2, 4, 8}, NewGreedyRouter(n), 3)
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for i, p := range points {
		if p.Delivered != p.Packets {
			t.Errorf("load %d: delivered %d of %d", p.Load, p.Delivered, p.Packets)
		}
		if p.Packets != p.Load*n.Size() {
			t.Errorf("load %d: wrong packet count", p.Load)
		}
		if i > 0 && p.Rounds < points[i-1].Rounds {
			// Drain time must not decrease with strictly higher load (same
			// seed family; monotone up to tie).
			t.Errorf("rounds decreased from %d to %d as load grew", points[i-1].Rounds, p.Rounds)
		}
	}
	// Heavier load must visibly deepen queues.
	if points[3].MaxQueue <= points[0].MaxQueue {
		t.Errorf("max queue did not grow with load: %d vs %d", points[0].MaxQueue, points[3].MaxQueue)
	}
}

func TestSaturationOracleDrainsEverything(t *testing.T) {
	n := NewFibonacci(7)
	points := n.Saturation([]int{6}, NewOracleRouter(n), 11)
	if points[0].Delivered != points[0].Packets {
		t.Errorf("oracle stranded packets: %+v", points[0])
	}
	if points[0].AvgLatency <= 0 {
		t.Error("latency not recorded")
	}
}

func BenchmarkSaturationLoad8(b *testing.B) {
	n := NewFibonacci(9)
	r := NewGreedyRouter(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points := n.Saturation([]int{8}, r, 5)
		if points[0].Delivered != points[0].Packets {
			b.Fatal("stranded packets")
		}
	}
}
