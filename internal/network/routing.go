package network

import (
	"math/bits"

	"gfcube/internal/graph"
)

// Router decides, at each intermediate node, the next hop toward a
// destination. ok is false when the router has no productive move (possible
// for greedy routing on non-isometric cubes).
type Router interface {
	// NextHop returns the neighbor of cur to forward to on the way to dst.
	NextHop(cur, dst int) (next int, ok bool)
	// Name identifies the algorithm in reports.
	Name() string
}

// OracleRouter forwards along true shortest paths, using per-destination
// BFS trees precomputed over the actual cube graph. It is distance-optimal
// on any topology and serves as the baseline.
type OracleRouter struct {
	// toward[dst][cur] is the parent of cur in the BFS tree rooted at dst,
	// i.e. the next hop from cur toward dst; -1 when unreachable.
	toward [][]int32
}

// NewOracleRouter precomputes shortest-path next hops for all destinations.
func NewOracleRouter(n *Network) *OracleRouter {
	size := n.Size()
	r := &OracleRouter{toward: make([][]int32, size)}
	t := graph.NewTraverser(n.g)
	dist := make([]int32, size)
	parent := make([]int32, size)
	for dst := 0; dst < size; dst++ {
		t.BFSTree(dst, dist, parent)
		row := make([]int32, size)
		copy(row, parent)
		r.toward[dst] = row
	}
	return r
}

// NextHop implements Router.
func (r *OracleRouter) NextHop(cur, dst int) (int, bool) {
	if cur == dst {
		return cur, true
	}
	p := r.toward[dst][cur]
	if p < 0 {
		return 0, false
	}
	return int(p), true
}

// Name implements Router.
func (r *OracleRouter) Name() string { return "oracle" }

// GreedyRouter is the bit-fixing router implicit in the paper's isometry
// proofs: at each node it flips a bit in which the current address differs
// from the destination, preferring 1->0 corrections left to right, then
// 0->1 (the canonical-path order of Section 2), always requiring the
// intermediate word to be a cube vertex. On an isometric Q_d(f) it always
// finds a productive hop and delivers in exactly Hamming-distance many hops;
// on non-isometric cubes it can get stuck, which the experiments measure.
type GreedyRouter struct {
	net *Network
}

// NewGreedyRouter returns the greedy bit-fixing router for a network.
func NewGreedyRouter(n *Network) *GreedyRouter { return &GreedyRouter{net: n} }

// NextHop implements Router.
func (r *GreedyRouter) NextHop(cur, dst int) (int, bool) {
	if cur == dst {
		return cur, true
	}
	c := r.net.cube
	cw := c.Word(cur)
	dw := c.Word(dst)
	diff := cw.Bits ^ dw.Bits
	d := cw.Len()
	// Pass 1: clear 1-bits of cur that should be 0 (left to right).
	for i := 0; i < d; i++ {
		mask := uint64(1) << uint(d-1-i)
		if diff&mask != 0 && cw.Bits&mask != 0 {
			if j, ok := c.Rank(cw.Flip(i)); ok {
				return j, true
			}
		}
	}
	// Pass 2: set 0-bits that should be 1.
	for i := 0; i < d; i++ {
		mask := uint64(1) << uint(d-1-i)
		if diff&mask != 0 && cw.Bits&mask == 0 {
			if j, ok := c.Rank(cw.Flip(i)); ok {
				return j, true
			}
		}
	}
	return 0, false
}

// Name implements Router.
func (r *GreedyRouter) Name() string { return "greedy" }

// RouteResult describes a single source-destination routing attempt.
type RouteResult struct {
	Delivered bool
	Hops      int
	// Stretch is Hops divided by the Hamming distance (1.0 = optimal);
	// 0 when not delivered or src = dst.
	Stretch float64
}

// Route walks a packet from src to dst with the given router, bounded by
// maxHops (pass 0 for 4*d, a generous default).
func (n *Network) Route(r Router, src, dst, maxHops int) RouteResult {
	if maxHops <= 0 {
		maxHops = 4 * n.cube.D()
		if maxHops == 0 {
			maxHops = 4
		}
	}
	cur := src
	hops := 0
	for cur != dst {
		next, ok := r.NextHop(cur, dst)
		if !ok || next == cur {
			return RouteResult{Delivered: false, Hops: hops}
		}
		cur = next
		hops++
		if hops > maxHops {
			return RouteResult{Delivered: false, Hops: hops}
		}
	}
	res := RouteResult{Delivered: true, Hops: hops}
	if h := bits.OnesCount64(n.cube.Word(src).Bits ^ n.cube.Word(dst).Bits); h > 0 {
		res.Stretch = float64(hops) / float64(h)
	}
	return res
}

// RoutingStats aggregates Route over a set of (src, dst) pairs.
type RoutingStats struct {
	Attempts   int
	Delivered  int
	TotalHops  int
	MaxHops    int
	SumStretch float64
}

// SuccessRate returns the fraction of delivered packets.
func (s RoutingStats) SuccessRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Attempts)
}

// AvgStretch returns the mean stretch over delivered packets with src != dst.
func (s RoutingStats) AvgStretch() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return s.SumStretch / float64(s.Delivered)
}

// EvaluateRouting routes every given pair and aggregates.
func (n *Network) EvaluateRouting(r Router, pairs [][2]int) RoutingStats {
	var st RoutingStats
	for _, p := range pairs {
		res := n.Route(r, p[0], p[1], 0)
		st.Attempts++
		if res.Delivered {
			st.Delivered++
			st.TotalHops += res.Hops
			if res.Hops > st.MaxHops {
				st.MaxHops = res.Hops
			}
			st.SumStretch += res.Stretch
		}
	}
	return st
}
