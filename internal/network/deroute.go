package network

import (
	"gfcube/internal/graph"
)

// DerouteRouter is the greedy bit-fixing router extended with misrouting:
// when no productive hop exists (possible on non-isometric cubes, where
// greedy routing strands packets at critical words), it takes a sideways or
// backwards hop to the neighbor that minimizes the remaining Hamming
// distance, avoiding the immediately preceding vertex to prevent 2-cycles.
// The router is stateful per packet walk (it remembers the last vertex), so
// NextHop carries the previous hop explicitly via SetPrev; the simulator
// integration uses RouteDeroute instead.
type DerouteRouter struct {
	net    *Network
	greedy *GreedyRouter
}

// NewDerouteRouter returns the misrouting-capable greedy router.
func NewDerouteRouter(n *Network) *DerouteRouter {
	return &DerouteRouter{net: n, greedy: NewGreedyRouter(n)}
}

// Name identifies the algorithm in reports.
func (r *DerouteRouter) Name() string { return "greedy+deroute" }

// RouteDeroute walks from src to dst, preferring productive greedy hops and
// falling back to the best non-productive neighbor when stuck. A visited set
// prevents livelock; maxHops (0 = 6·d) bounds the walk.
func (r *DerouteRouter) RouteDeroute(src, dst, maxHops int) RouteResult {
	if maxHops <= 0 {
		maxHops = 6 * r.net.cube.D()
		if maxHops == 0 {
			maxHops = 6
		}
	}
	cur := src
	hops := 0
	visited := map[int]bool{src: true}
	g := r.net.g
	for cur != dst {
		if hops >= maxHops {
			return RouteResult{Delivered: false, Hops: hops}
		}
		next, ok := r.greedy.NextHop(cur, dst)
		if ok && next != cur && !visited[next] {
			cur = next
		} else {
			// Misroute: the unvisited neighbor closest to dst in Hamming
			// distance.
			best, bestDist := -1, 1<<30
			for _, nb := range g.Neighbors(cur) {
				if visited[int(nb)] {
					continue
				}
				hd := r.net.cube.HammingDist(int(nb), dst)
				if hd < bestDist {
					best, bestDist = int(nb), hd
				}
			}
			if best < 0 {
				return RouteResult{Delivered: false, Hops: hops}
			}
			cur = best
		}
		visited[cur] = true
		hops++
	}
	res := RouteResult{Delivered: true, Hops: hops}
	if h := r.net.cube.HammingDist(src, dst); h > 0 {
		res.Stretch = float64(hops) / float64(h)
	}
	return res
}

// EvaluateDeroute aggregates RouteDeroute over the pairs, mirroring
// EvaluateRouting.
func (n *Network) EvaluateDeroute(pairs [][2]int) RoutingStats {
	r := NewDerouteRouter(n)
	var st RoutingStats
	for _, p := range pairs {
		res := r.RouteDeroute(p[0], p[1], 0)
		st.Attempts++
		if res.Delivered {
			st.Delivered++
			st.TotalHops += res.Hops
			if res.Hops > st.MaxHops {
				st.MaxHops = res.Hops
			}
			st.SumStretch += res.Stretch
		}
	}
	return st
}

// FaultyRoute evaluates oracle re-routing on a degraded network: it rebuilds
// shortest-path tables on the surviving subgraph and reports success over
// the given pairs (pairs touching dead nodes count as failures). This is the
// dynamic complement of the static FaultTrial metrics.
func (n *Network) FaultyRoute(killed []int, pairs [][2]int) RoutingStats {
	dead := make(map[int]bool, len(killed))
	for _, v := range killed {
		dead[v] = true
	}
	keep := make([]int, 0, n.Size()-len(dead))
	for v := 0; v < n.Size(); v++ {
		if !dead[v] {
			keep = append(keep, v)
		}
	}
	sub, old := n.g.Subgraph(keep)
	newID := make(map[int]int, len(old))
	for i, v := range old {
		newID[v] = i
	}
	t := graph.NewTraverser(sub)
	var st RoutingStats
	for _, p := range pairs {
		st.Attempts++
		s, okS := newID[p[0]]
		d, okD := newID[p[1]]
		if !okS || !okD {
			continue // endpoint dead
		}
		// Early-exit pair BFS: verification stops as soon as the
		// destination settles instead of finishing a full sweep.
		hops := t.Dist(s, d)
		if hops == graph.Unreachable {
			continue
		}
		st.Delivered++
		st.TotalHops += int(hops)
		if int(hops) > st.MaxHops {
			st.MaxHops = int(hops)
		}
	}
	return st
}
