package network

import (
	"math/rand"
)

// UniformPairs draws count (src, dst) pairs uniformly at random with
// src != dst. Deterministic for a fixed seed.
func (n *Network) UniformPairs(count int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	size := n.Size()
	if size < 2 {
		return nil
	}
	out := make([][2]int, 0, count)
	for len(out) < count {
		s := rng.Intn(size)
		d := rng.Intn(size)
		if s != d {
			out = append(out, [2]int{s, d})
		}
	}
	return out
}

// PermutationPairs returns a random permutation workload: every node sends
// one packet, destinations form a fixed-point-free-ish random permutation
// (fixed points are re-drawn a bounded number of times, then skipped).
func (n *Network) PermutationPairs(seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	size := n.Size()
	perm := rng.Perm(size)
	out := make([][2]int, 0, size)
	for s, d := range perm {
		if s != d {
			out = append(out, [2]int{s, d})
		}
	}
	return out
}

// HotspotPairs directs a fraction of the uniform traffic at a single hot
// node, the classic hotspot benchmark.
func (n *Network) HotspotPairs(count int, hot int, fraction float64, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	size := n.Size()
	if size < 2 {
		return nil
	}
	out := make([][2]int, 0, count)
	for len(out) < count {
		s := rng.Intn(size)
		d := hot
		if rng.Float64() >= fraction {
			d = rng.Intn(size)
		}
		if s != d {
			out = append(out, [2]int{s, d})
		}
	}
	return out
}

// MakePackets converts (src, dst) pairs into simulator packets.
func MakePackets(pairs [][2]int) []Packet {
	out := make([]Packet, len(pairs))
	for i, p := range pairs {
		out[i] = Packet{ID: i, Src: p[0], Dst: p[1]}
	}
	return out
}

// AllPairs enumerates every ordered (src, dst) pair with src != dst; used
// for exhaustive routing evaluation on small networks.
func (n *Network) AllPairs() [][2]int {
	size := n.Size()
	out := make([][2]int, 0, size*(size-1))
	for s := 0; s < size; s++ {
		for d := 0; d < size; d++ {
			if s != d {
				out = append(out, [2]int{s, d})
			}
		}
	}
	return out
}
