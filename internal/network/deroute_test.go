package network

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func TestDerouteMatchesGreedyWhenUnneeded(t *testing.T) {
	// On an isometric cube deroute never engages: hop counts equal Hamming
	// distances, exactly like plain greedy.
	n := New(core.Fibonacci(7))
	r := NewDerouteRouter(n)
	for _, pair := range n.AllPairs() {
		res := r.RouteDeroute(pair[0], pair[1], 0)
		if !res.Delivered {
			t.Fatalf("deroute failed on %v", pair)
		}
		if res.Hops != n.Cube().HammingDist(pair[0], pair[1]) {
			t.Fatalf("deroute took %d hops for Hamming %d", res.Hops, n.Cube().HammingDist(pair[0], pair[1]))
		}
	}
}

func TestDerouteRecoversStrandedPairs(t *testing.T) {
	// On Q_6(101) plain greedy strands pairs; deroute must recover a strict
	// superset of greedy's deliveries (the network is connected, so the
	// oracle delivers 100%; deroute should close most of the gap).
	n := New(core.New(6, bitstr.MustParse("101")))
	pairs := n.AllPairs()
	greedy := n.EvaluateRouting(NewGreedyRouter(n), pairs)
	deroute := n.EvaluateDeroute(pairs)
	if greedy.SuccessRate() >= 1 {
		t.Skip("greedy unexpectedly perfect; nothing to recover")
	}
	if deroute.Delivered <= greedy.Delivered {
		t.Errorf("deroute delivered %d, greedy %d; expected improvement",
			deroute.Delivered, greedy.Delivered)
	}
	// Recovered routes pay with stretch: average stretch must be >= 1.
	if deroute.AvgStretch() < 1 {
		t.Errorf("avg stretch %f < 1", deroute.AvgStretch())
	}
}

func TestDerouteName(t *testing.T) {
	n := New(core.Fibonacci(3))
	if NewDerouteRouter(n).Name() != "greedy+deroute" {
		t.Error("name wrong")
	}
}

func TestFaultyRoute(t *testing.T) {
	n := New(core.Fibonacci(7))
	pairs := n.UniformPairs(200, 5)
	// No faults: everything routable at true shortest distance.
	st := n.FaultyRoute(nil, pairs)
	if st.Delivered != st.Attempts {
		t.Fatalf("no-fault routing incomplete: %+v", st)
	}
	// Kill one hub: pairs touching it fail, the rest keep working (Γ_7
	// minus a vertex stays connected).
	zero, _ := n.Cube().Rank(bitstr.Zeros(7))
	st = n.FaultyRoute([]int{zero}, pairs)
	touching := 0
	for _, p := range pairs {
		if p[0] == zero || p[1] == zero {
			touching++
		}
	}
	if st.Delivered != st.Attempts-touching {
		t.Errorf("faulty routing: delivered %d of %d with %d touching the dead node",
			st.Delivered, st.Attempts, touching)
	}
}

func TestFaultyRouteDisconnection(t *testing.T) {
	// On a path network, killing an interior node separates the two sides.
	n := New(core.New(6, bitstr.MustParse("10"))) // P_7
	pairs := [][2]int{{0, 6}, {0, 2}, {4, 6}}
	st := n.FaultyRoute([]int{3}, pairs)
	if st.Delivered != 2 {
		t.Errorf("expected exactly the same-side pairs to survive, got %d", st.Delivered)
	}
}
