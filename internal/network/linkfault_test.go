package network

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func TestLinkFaultTrial(t *testing.T) {
	n := NewFibonacci(6)
	// No faults.
	res := n.LinkFaultTrial(nil)
	if !res.SurvivorsConnected || res.LargestComponent != n.Size() {
		t.Errorf("no-fault link trial: %+v", res)
	}
	// Kill a single arbitrary link: Γ_6 must stay connected (it has no
	// bridges away from the small-d degenerate cases... verify computed).
	edges := n.Cube().Graph().EdgeList()
	res = n.LinkFaultTrial(edges[:1])
	if res.Killed != 1 {
		t.Errorf("killed %d", res.Killed)
	}
	if res.LargestComponent < n.Size()-1 {
		t.Errorf("single link fault shattered the network: %+v", res)
	}
}

func TestLinkFaultBridge(t *testing.T) {
	// Every edge of a path network is a bridge.
	n := New(core.New(5, bitstr.MustParse("10"))) // P_6
	edges := n.Cube().Graph().EdgeList()
	for _, e := range edges {
		res := n.LinkFaultTrial([][2]int32{e})
		if res.SurvivorsConnected {
			t.Errorf("removing path edge %v left it connected", e)
		}
	}
}

func TestRandomLinkFaults(t *testing.T) {
	n := NewFibonacci(8)
	st := n.RandomLinkFaults(4, 15, 7)
	if st.Trials != 15 || st.Killed != 4 {
		t.Fatalf("header wrong: %+v", st)
	}
	if st.MeanRoutable <= 0 || st.MeanRoutable > 1 {
		t.Errorf("mean routable %f", st.MeanRoutable)
	}
	// Node count is preserved under link faults.
	if st.MeanLargest > float64(n.Size()) {
		t.Errorf("largest component exceeds node count")
	}
}

func TestLinkFaultOrderInsensitive(t *testing.T) {
	// Edge pairs may arrive in either orientation.
	n := NewFibonacci(5)
	edges := n.Cube().Graph().EdgeList()
	e := edges[0]
	a := n.LinkFaultTrial([][2]int32{{e[0], e[1]}})
	b := n.LinkFaultTrial([][2]int32{{e[1], e[0]}})
	if a != b {
		t.Errorf("orientation changed the result: %+v vs %+v", a, b)
	}
}
