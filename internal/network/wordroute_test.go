package network

import (
	"math/rand"
	"testing"

	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// randomVertex draws a uniformly random f-free word of length d via the
// ranker (exact uniform sampling, no rejection).
func randomVertex(t *testing.T, rng *rand.Rand, f bitstr.Word, d int) bitstr.Word {
	t.Helper()
	r := automaton.NewRanker(f, d)
	idx := rng.Int63n(r.Total().Int64())
	w, err := r.UnrankInt(int(idx))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWordRouterOptimalOnIsometricLargeD(t *testing.T) {
	// d = 40 is far beyond explicit construction; on isometric factors the
	// word router must deliver in exactly Hamming-distance many hops.
	rng := rand.New(rand.NewSource(21))
	for _, fs := range []string{"11", "110", "1010", "11010"} {
		f := bitstr.MustParse(fs)
		r := NewWordRouter(f)
		for trial := 0; trial < 40; trial++ {
			src := randomVertex(t, rng, f, 40)
			dst := randomVertex(t, rng, f, 40)
			path, ok := r.Route(src, dst, 0)
			if !ok {
				t.Fatalf("f=%s: stuck from %s to %s", fs, src, dst)
			}
			if len(path)-1 != src.HammingDistance(dst) {
				t.Fatalf("f=%s: %d hops for Hamming distance %d", fs, len(path)-1, src.HammingDistance(dst))
			}
			// Every intermediate vertex is valid and consecutive vertices
			// are adjacent.
			for i, w := range path {
				if w.HasFactor(f) {
					t.Fatalf("f=%s: path leaves the cube at %s", fs, w)
				}
				if i > 0 && path[i-1].HammingDistance(w) != 1 {
					t.Fatalf("f=%s: non-adjacent consecutive path vertices", fs)
				}
			}
		}
	}
}

func TestWordRouterMatchesCubeGreedy(t *testing.T) {
	// At small d the word router and the cube-based greedy router take the
	// same path (they implement the same preference order).
	f := bitstr.MustParse("11")
	cube := core.New(8, f)
	n := New(cube)
	cubeGreedy := NewGreedyRouter(n)
	wordGreedy := NewWordRouter(f)
	for src := 0; src < cube.N(); src++ {
		for dst := 0; dst < cube.N(); dst++ {
			cur := src
			curWord := cube.Word(src)
			for cur != dst {
				nextIdx, ok1 := cubeGreedy.NextHop(cur, dst)
				nextWord, ok2 := wordGreedy.NextHop(curWord, cube.Word(dst))
				if ok1 != ok2 {
					t.Fatalf("routers disagree on feasibility at %s", curWord)
				}
				if cube.Word(nextIdx) != nextWord {
					t.Fatalf("routers diverge: cube %s vs word %s", cube.Word(nextIdx), nextWord)
				}
				cur, curWord = nextIdx, nextWord
			}
		}
	}
}

func TestWordRouterStuckOnCriticalPair(t *testing.T) {
	// The 2-critical pair of Proposition 3.2 for f = 101 blocks every
	// productive hop from either endpoint: the router must report failure.
	f := bitstr.MustParse("101")
	b, c := core.WitnessProp32(1, 1, 1, 4)
	r := NewWordRouter(f)
	if _, ok := r.NextHop(b, c); ok {
		t.Error("router should be stuck at a critical pair endpoint")
	}
	path, ok := r.Route(b, c, 0)
	if ok {
		t.Errorf("route should fail, got %v", path)
	}
}

func TestWordRouterRejectsInvalidEndpoints(t *testing.T) {
	r := NewWordRouter(bitstr.MustParse("11"))
	bad := bitstr.MustParse("1100")
	good := bitstr.MustParse("0000")
	if _, ok := r.Route(bad, good, 0); ok {
		t.Error("invalid source accepted")
	}
	if _, ok := r.Route(good, bad, 0); ok {
		t.Error("invalid destination accepted")
	}
}

func TestWordRouterSelfRoute(t *testing.T) {
	r := NewWordRouter(bitstr.MustParse("11"))
	w := bitstr.MustParse("01010")
	path, ok := r.Route(w, w, 0)
	if !ok || len(path) != 1 || path[0] != w {
		t.Error("self route should be the trivial path")
	}
}

func TestWordRouterDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	NewWordRouter(bitstr.MustParse("11")).Route(bitstr.MustParse("00"), bitstr.MustParse("000"), 0)
}

func BenchmarkWordRouteD50(b *testing.B) {
	f := bitstr.Ones(2)
	r := NewWordRouter(f)
	src := bitstr.Repeat(bitstr.MustParse("10"), 25)
	dst := bitstr.Repeat(bitstr.MustParse("01"), 25)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Route(src, dst, 0); !ok {
			b.Fatal("route failed")
		}
	}
}
