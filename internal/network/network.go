// Package network implements the interconnection-network substrate for
// generalized Fibonacci cubes. The Fibonacci cube was introduced as an
// interconnection topology (Hsu, IEEE TPDS 1993; the ICPP'93 line of work
// studied the Q_d(1^s) generalization), and this package provides what that
// evaluation setting requires: routing algorithms (a distance-optimal oracle
// and the greedy bit-fixing router implicit in the paper's isometry proofs),
// a synchronous store-and-forward message simulator, broadcast trees,
// standard traffic workloads, and fault injection.
package network

import (
	"fmt"

	"gfcube/internal/core"
	"gfcube/internal/graph"
)

// Network is a generalized Fibonacci cube viewed as a message-passing
// interconnection network. Nodes are cube vertices; links are cube edges;
// every link is full-duplex with capacity one packet per direction per
// round.
type Network struct {
	cube *core.Cube
	g    *graph.Graph
}

// New wraps a constructed cube as a network.
func New(cube *core.Cube) *Network {
	return &Network{cube: cube, g: cube.Graph()}
}

// NewFibonacci builds the Fibonacci cube network Γ_d.
func NewFibonacci(d int) *Network { return New(core.Fibonacci(d)) }

// Cube returns the underlying cube.
func (n *Network) Cube() *core.Cube { return n.cube }

// Size returns the number of nodes.
func (n *Network) Size() int { return n.g.N() }

// Links returns the number of links.
func (n *Network) Links() int { return n.g.M() }

// Metrics summarizes the static topology properties reported in
// interconnection-network evaluations.
type Metrics struct {
	Nodes       int
	Links       int
	MinDegree   int
	MaxDegree   int
	Diameter    int32
	Radius      int32
	AvgDistance float64
	Connected   bool
	Bipartite   bool
}

// Metrics computes the static topology metrics of the network.
func (n *Network) Metrics() Metrics {
	st := n.g.Stats()
	bip, _ := n.g.IsBipartite()
	m := Metrics{
		Nodes:     n.g.N(),
		Links:     n.g.M(),
		MinDegree: n.g.MinDegree(),
		MaxDegree: n.g.MaxDegree(),
		Diameter:  st.Diameter,
		Radius:    st.Radius,
		Connected: st.Connected,
		Bipartite: bip,
	}
	if st.Connected && m.Nodes > 1 {
		m.AvgDistance = float64(st.SumDist) / float64(m.Nodes*(m.Nodes-1)/2)
	}
	return m
}

// String formats the metrics as a single table row.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d m=%d deg=[%d,%d] diam=%d rad=%d avgdist=%.3f",
		m.Nodes, m.Links, m.MinDegree, m.MaxDegree, m.Diameter, m.Radius, m.AvgDistance)
}
