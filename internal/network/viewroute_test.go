package network

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// TestViewRouterBackendsAgree routes every vertex pair of Q_10(11) on the
// explicit and implicit backends: traces must be identical hop for hop.
func TestViewRouterBackendsAgree(t *testing.T) {
	f := bitstr.Ones(2)
	ex := core.New(10, f)
	im := core.NewImplicit(10, f)
	exr := NewViewRouter(ex)
	imr := NewViewRouter(im)
	n := ex.Order()
	for si := int64(0); si < n; si += 7 {
		for di := int64(0); di < n; di += 11 {
			eh, eok, err := exr.RouteRanks(si, di, 0)
			if err != nil {
				t.Fatal(err)
			}
			ih, iok, err := imr.RouteRanks(si, di, 0)
			if err != nil {
				t.Fatal(err)
			}
			if eok != iok || len(eh) != len(ih) {
				t.Fatalf("route %d->%d: %d hops/%v vs %d hops/%v", si, di, len(eh), eok, len(ih), iok)
			}
			for k := range eh {
				if eh[k] != ih[k] {
					t.Fatalf("route %d->%d hop %d: %+v vs %+v", si, di, k, eh[k], ih[k])
				}
			}
			if eok && eh[0].Rank != si {
				t.Fatalf("route %d->%d starts at rank %d", si, di, eh[0].Rank)
			}
			if eok && eh[len(eh)-1].Rank != di {
				t.Fatalf("route %d->%d ends at rank %d", si, di, eh[len(eh)-1].Rank)
			}
		}
	}
}

// TestViewRouterQ62 routes on the full-width Fibonacci cube — ~10^13
// nodes, impossible to construct — and checks distance-optimality (Γ_d is
// isometric) plus the rank consistency of every hop.
func TestViewRouterQ62(t *testing.T) {
	im := core.NewImplicit(62, bitstr.Ones(2))
	r := NewViewRouter(im)
	if r.View() != core.CubeView(im) {
		t.Fatal("View() does not return the backend")
	}
	total := im.Order()
	pairs := [][2]int64{
		{0, total - 1},
		{total / 7, 5 * total / 7},
		{1, total / 3},
	}
	for _, p := range pairs {
		hops, ok, err := r.RouteRanks(p[0], p[1], 0)
		if err != nil || !ok {
			t.Fatalf("route %d->%d failed: ok=%v err=%v", p[0], p[1], ok, err)
		}
		src, dst := hops[0].Word, hops[len(hops)-1].Word
		if got, want := len(hops)-1, src.HammingDistance(dst); got != want {
			t.Fatalf("route %d->%d: %d hops, Hamming distance %d", p[0], p[1], got, want)
		}
		for k, h := range hops {
			if w, ok := im.UnrankWord(h.Rank); !ok || w != h.Word {
				t.Fatalf("hop %d: rank %d does not address word %s", k, h.Rank, h.Word)
			}
			if k > 0 && hops[k-1].Word.HammingDistance(h.Word) != 1 {
				t.Fatalf("hop %d is not an edge", k)
			}
		}
	}
}

func TestViewRouterErrors(t *testing.T) {
	im := core.NewImplicit(8, bitstr.Ones(2))
	r := NewViewRouter(im)
	if got := NewWordRouter(bitstr.Ones(2)).Factor(); got != bitstr.Ones(2) {
		t.Errorf("WordRouter.Factor() = %s", got)
	}
	if _, _, err := r.RouteRanks(-1, 0, 0); err == nil {
		t.Error("negative src rank accepted")
	}
	if _, _, err := r.RouteRanks(0, im.Order(), 0); err == nil {
		t.Error("out-of-range dst rank accepted")
	}
	// Non-vertex word endpoints are rejected without a trace.
	bad := bitstr.MustParse("11000000")
	good := bitstr.MustParse("00000000")
	if hops, ok := r.RouteWords(bad, good, 0); ok || hops != nil {
		t.Error("factor-containing src accepted")
	}
	if hops, ok := r.RouteWords(good, bad, 0); ok || hops != nil {
		t.Error("factor-containing dst accepted")
	}
	// Wrong-length endpoints too.
	if _, ok := r.RouteWords(bitstr.MustParse("0"), good, 0); ok {
		t.Error("wrong-length src accepted")
	}
}
